package metrics

import "fmt"

// ClientStats is a snapshot of a client engine's cumulative counters:
// the Algorithm 1/3/4 protocol totals (reconciliations, remote and
// blind applications) plus the delivery-path internals added with the
// incremental reconciliation work (divergence-set rollback copies,
// buffered out-of-order batches, overflow drops). Produced by
// core.Client.Metrics and surfaced by cmd/seve-bench -experiment
// clientstats; Merge aggregates a fleet.
type ClientStats struct {
	// Protocol totals.
	Reconciliations int
	AppliedRemote   int
	AppliedBlind    int
	QueueLen        int

	// Batch-order restoration.
	BufferedBatches int
	DroppedBatches  int

	// Incremental reconciliation (Algorithm 3) internals.
	ReconcileCopies int
	DivergedObjects int
	InternedObjects int

	// Stable-store footprint.
	StableVersions int
	PrunedBelow    uint64

	// Session resume. Resumes counts accepted CatchUps (ResumesSnapshot
	// of them rebuilt the state from the snapshot payload); StaleBatches
	// counts already-applied batches dropped after a resume overlap;
	// OwnRedelivered counts own actions re-delivered by a post-snapshot
	// closure after they had already committed. ReconnectAttempts counts
	// transport-level dials (folded in by transport.Client.Metrics; zero
	// under the simulator glue).
	Resumes           int
	ResumesSnapshot   int
	StaleBatches      int
	OwnRedelivered    int
	ReconnectAttempts int

	// Superseding delivery queue (DESIGN.md §13), observed from the
	// client's side of the stream. Coalesced counts merged batches
	// applied (CoversFrom < ClientSeq); Superseded counts the individual
	// batch sequence numbers whose frames never arrived because a merge
	// or snapshot replaced them; SnapshotFallbacks counts mid-session
	// catch-ups accepted while the connection stayed up (folded in by
	// transport.Client.Metrics; zero under the simulator glue).
	Coalesced         int
	Superseded        int
	SnapshotFallbacks int
}

// Merge accumulates o into st. Gauges (queue length, buffered batches,
// diverged/interned objects, stable versions) sum across clients;
// PrunedBelow keeps the furthest point.
func (st *ClientStats) Merge(o ClientStats) {
	st.Reconciliations += o.Reconciliations
	st.AppliedRemote += o.AppliedRemote
	st.AppliedBlind += o.AppliedBlind
	st.QueueLen += o.QueueLen
	st.BufferedBatches += o.BufferedBatches
	st.DroppedBatches += o.DroppedBatches
	st.ReconcileCopies += o.ReconcileCopies
	st.DivergedObjects += o.DivergedObjects
	st.InternedObjects += o.InternedObjects
	st.StableVersions += o.StableVersions
	if o.PrunedBelow > st.PrunedBelow {
		st.PrunedBelow = o.PrunedBelow
	}
	st.Resumes += o.Resumes
	st.ResumesSnapshot += o.ResumesSnapshot
	st.StaleBatches += o.StaleBatches
	st.OwnRedelivered += o.OwnRedelivered
	st.ReconnectAttempts += o.ReconnectAttempts
	st.Coalesced += o.Coalesced
	st.Superseded += o.Superseded
	st.SnapshotFallbacks += o.SnapshotFallbacks
}

// Table renders the snapshot as a two-column table.
func (st ClientStats) Table() *Table {
	t := &Table{Title: "client engine counters", Header: []string{"counter", "value"}}
	row := func(name string, v interface{}) { t.AddRow(name, fmt.Sprint(v)) }
	row("reconciliations", st.Reconciliations)
	row("applied remote", st.AppliedRemote)
	row("applied blind", st.AppliedBlind)
	row("queue length", st.QueueLen)
	row("buffered batches", st.BufferedBatches)
	row("dropped batches (overflow)", st.DroppedBatches)
	row("reconcile rollback copies", st.ReconcileCopies)
	row("diverged objects", st.DivergedObjects)
	row("interned objects", st.InternedObjects)
	row("stable versions", st.StableVersions)
	row("pruned below", st.PrunedBelow)
	row("resumes", st.Resumes)
	row("resumes via snapshot", st.ResumesSnapshot)
	row("stale batches dropped", st.StaleBatches)
	row("own actions re-delivered", st.OwnRedelivered)
	row("reconnect attempts", st.ReconnectAttempts)
	row("coalesced batches applied", st.Coalesced)
	row("superseded batch seqs", st.Superseded)
	row("snapshot fallbacks", st.SnapshotFallbacks)
	return t
}

// String renders the snapshot via Table.
func (st ClientStats) String() string { return st.Table().String() }
