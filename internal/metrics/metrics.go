// Package metrics collects and formats the measurements the paper
// reports: response-time distributions (Figures 6, 7, 8, 10), traffic
// totals (Figure 9), and drop percentages (Table II).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Recorder accumulates scalar samples (milliseconds, bytes, counts).
// The zero value is ready to use.
type Recorder struct {
	samples []float64
	sorted  bool
}

// Add records one sample.
func (r *Recorder) Add(v float64) {
	r.samples = append(r.samples, v)
	r.sorted = false
}

// Count reports the number of samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Mean reports the arithmetic mean, or 0 with no samples.
func (r *Recorder) Mean() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range r.samples {
		sum += v
	}
	return sum / float64(len(r.samples))
}

func (r *Recorder) sort() {
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
}

// Percentile reports the p-th percentile (0 < p ≤ 100) using
// nearest-rank, or 0 with no samples.
func (r *Recorder) Percentile(p float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	rank := int(math.Ceil(p/100*float64(len(r.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(r.samples) {
		rank = len(r.samples) - 1
	}
	return r.samples[rank]
}

// Max reports the largest sample, or 0 with no samples.
func (r *Recorder) Max() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	return r.samples[len(r.samples)-1]
}

// Min reports the smallest sample, or 0 with no samples.
func (r *Recorder) Min() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	r.sort()
	return r.samples[0]
}

// Table is a printable experiment result: one header row plus data rows,
// matching the rows/series of the paper artifact it regenerates.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Ms formats a millisecond quantity compactly.
func Ms(v float64) string {
	switch {
	case v >= 10000:
		return fmt.Sprintf("%.0f", v)
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// KB formats a byte count in kilobytes (the unit of Figure 9).
func KB(bytes uint64) string {
	return fmt.Sprintf("%.1f", float64(bytes)/1000)
}

// Pct formats a percentage.
func Pct(num, den int) string {
	if den == 0 {
		return "0.00"
	}
	return fmt.Sprintf("%.2f", 100*float64(num)/float64(den))
}

// CSV renders the table as comma-separated values (header + rows), for
// feeding the regenerated figures into a plotting tool.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
