package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecorderBasics(t *testing.T) {
	var r Recorder
	if r.Count() != 0 || r.Mean() != 0 || r.Max() != 0 || r.Min() != 0 || r.Percentile(50) != 0 {
		t.Fatal("zero recorder not zero")
	}
	for _, v := range []float64{3, 1, 2} {
		r.Add(v)
	}
	if r.Count() != 3 {
		t.Fatalf("Count = %d", r.Count())
	}
	if r.Mean() != 2 {
		t.Fatalf("Mean = %v", r.Mean())
	}
	if r.Min() != 1 || r.Max() != 3 {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
	if r.Percentile(50) != 2 {
		t.Fatalf("P50 = %v", r.Percentile(50))
	}
	if r.Percentile(100) != 3 {
		t.Fatalf("P100 = %v", r.Percentile(100))
	}
	// Adding after a sort must keep working.
	r.Add(10)
	if r.Max() != 10 {
		t.Fatalf("Max after re-add = %v", r.Max())
	}
}

func TestPercentileProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var r Recorder
		n := rng.Intn(50) + 1
		for i := 0; i < n; i++ {
			r.Add(rng.Float64() * 100)
		}
		p50, p95, p99 := r.Percentile(50), r.Percentile(95), r.Percentile(99)
		return p50 <= p95 && p95 <= p99 && p99 <= r.Max() && r.Min() <= p50
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableString(t *testing.T) {
	tb := Table{Title: "Demo", Header: []string{"clients", "seve", "central"}}
	tb.AddRow("8", "480.12", "510.00")
	tb.AddRow("64", "481.00", "12000")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "clients") || !strings.Contains(out, "480.12") {
		t.Fatalf("content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if Ms(12345) != "12345" {
		t.Fatalf("Ms(12345) = %q", Ms(12345))
	}
	if Ms(123.456) != "123.5" {
		t.Fatalf("Ms(123.456) = %q", Ms(123.456))
	}
	if Ms(1.234) != "1.23" {
		t.Fatalf("Ms(1.234) = %q", Ms(1.234))
	}
	if KB(1500) != "1.5" {
		t.Fatalf("KB = %q", KB(1500))
	}
	if Pct(1, 8) != "12.50" {
		t.Fatalf("Pct = %q", Pct(1, 8))
	}
	if Pct(1, 0) != "0.00" {
		t.Fatalf("Pct div0 = %q", Pct(1, 0))
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Header: []string{"a", "b"}}
	tb.AddRow("1", `x,"y`)
	got := tb.CSV()
	want := "a,b\n1,\"x,\"\"y\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
