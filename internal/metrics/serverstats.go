package metrics

import "fmt"

// ServerStats is a snapshot of the server engine's cumulative counters:
// the protocol totals the paper reports (submissions, drops,
// completions) plus the analysis-engine internals (conflict-index hit
// rates, scan savings, compactions, push scheduler activity) that back
// the DESIGN.md performance claims. Produced by core.Server.Metrics and
// surfaced by cmd/seve-server on shutdown and cmd/seve-bench.
type ServerStats struct {
	// Protocol totals.
	TotalSubmitted   int
	TotalDropped     int
	CompletionsTaken int
	Installed        uint64
	QueueLen         int

	// Analysis-walk accounting. TotalQueueScans counts queue entries the
	// Algorithm 6/7 walks actually examined; ScanSavedEntries counts the
	// entries a full-queue walk would have examined on top of that (the
	// conflict index's savings).
	TotalQueueScans  int
	ScanSavedEntries int
	IndexLookups     int

	// Memory-bound maintenance.
	QueueCompactions  int
	WriterCompactions int
	InternedObjects   int
	TrackedClients    int

	// First Bound push scheduler.
	PushTicks         int
	PushParallelTicks int
	PushWorkers       int

	// Session resume (Config.ResumeWindow). ResumesSuffix counts
	// reconnects served by replaying the retained batch suffix;
	// ResumesSnapshot counts degradations to the full blind-write
	// snapshot; ResumesRejected counts unknown or stale tokens.
	// DuplicateSubmits counts re-submissions swallowed by the session's
	// action high-water mark; RetainedBatches gauges the batches
	// currently held across all session windows.
	ResumesSuffix    int
	ResumesSnapshot  int
	ResumesRejected  int
	DuplicateSubmits int
	RetainedBatches  int

	// Crash-restart recovery (DESIGN.md §15). ResumesRecovered counts
	// reconnects answered out of a journal-rebuilt session (either path);
	// StaleCompletions counts completion claims fenced because they
	// referenced a serial position the engine has not stamped — the
	// signature of a client acking state a crash rolled back.
	ResumesRecovered int
	StaleCompletions int

	// Durability pipeline (package durable). WALGroupCommits counts
	// journal groups fsync-acknowledged; WALCheckpoints counts epoch
	// snapshots cut by the committer. WALAppendErrors counts I/O failures
	// in the committer (after the first, behavior follows the degrade
	// policy); WALShedRecords counts journal records dropped because the
	// committer queue was full under DegradeShed — both mean the log is
	// no longer a faithful prefix of the engine. WALBehindSeq gauges how
	// far the durable install point trails the engine's (0 = fully
	// caught up at snapshot time).
	WALGroupCommits int
	WALCheckpoints  int
	WALAppendErrors int
	WALShedRecords  int
	WALBehindSeq    uint64

	// Transport delivery. WriteQueueDrops counts replies discarded
	// because the recipient's write queue was full (a client too slow to
	// drain its connection). Maintained by the transport layer, not the
	// engine; zero under the simulator.
	WriteQueueDrops int

	// Superseding delivery queue (DESIGN.md §13). FramesSuperseded counts
	// queued frames released because a newer frame replaced their content
	// in place; FramesCoalesced counts in-queue merges of contiguous
	// batches; SnapshotFallbacks counts mid-session blind-write catch-ups
	// issued when an overflowing queue could not be superseded safely.
	// MaxStaleObjects gauges the largest covered-object footprint any
	// client's queue accumulated while stale. The first two and the gauge
	// are transport-maintained; SnapshotFallbacks is counted by the
	// engine (it issues the Algorithm 6 rebuild).
	FramesSuperseded  int
	FramesCoalesced   int
	SnapshotFallbacks int
	MaxStaleObjects   int

	// Semantic integrity enforcement (internal/integrity, DESIGN.md
	// §16). ContractBreaches counts completions for actions whose
	// declared sets broke WS ⊆ RS; ForgedCompletions counts reported
	// writes outside the declared write set; AuditsRun counts sampled
	// (or repair-forced) re-executions against ζS, AuditDivergences the
	// ones that disagreed with the report, and RepairedResults the
	// positions installed from the server's own evaluation instead of
	// the forged report. QuarantinedClients counts verdicts issued;
	// QuarantineRejected counts submissions/completions refused from
	// already-quarantined clients. RateLimited, WriteSetViolations, and
	// RadiusViolations count influence-bound rejections.
	// OrphanCompletions counts positions a quarantined origin abandoned
	// that the server completed itself so the queue never wedges. An
	// honest fleet reports zero everywhere except AuditsRun.
	ContractBreaches   int
	ForgedCompletions  int
	AuditsRun          int
	AuditDivergences   int
	RepairedResults    int
	QuarantinedClients int
	QuarantineRejected int
	OrphanCompletions  int
	RateLimited        int
	WriteSetViolations int
	RadiusViolations   int
}

// Table renders the snapshot as a two-column table.
func (st ServerStats) Table() *Table {
	t := &Table{Title: "server engine counters", Header: []string{"counter", "value"}}
	row := func(name string, v interface{}) { t.AddRow(name, fmt.Sprint(v)) }
	row("submitted", st.TotalSubmitted)
	row("dropped", st.TotalDropped)
	row("completions taken", st.CompletionsTaken)
	row("installed", st.Installed)
	row("queue length", st.QueueLen)
	row("queue entries scanned", st.TotalQueueScans)
	row("scans saved by index", st.ScanSavedEntries)
	row("index lookups", st.IndexLookups)
	row("queue compactions", st.QueueCompactions)
	row("writer compactions", st.WriterCompactions)
	row("interned objects", st.InternedObjects)
	row("tracked clients", st.TrackedClients)
	row("push ticks", st.PushTicks)
	row("parallel push ticks", st.PushParallelTicks)
	row("configured push workers", st.PushWorkers)
	row("resumes (suffix replay)", st.ResumesSuffix)
	row("resumes (snapshot fallback)", st.ResumesSnapshot)
	row("resumes rejected", st.ResumesRejected)
	row("duplicate submits swallowed", st.DuplicateSubmits)
	row("retained batches", st.RetainedBatches)
	row("resumes (recovered session)", st.ResumesRecovered)
	row("stale completions fenced", st.StaleCompletions)
	row("wal group commits", st.WALGroupCommits)
	row("wal checkpoints", st.WALCheckpoints)
	row("wal append errors", st.WALAppendErrors)
	row("wal shed records", st.WALShedRecords)
	row("wal behind (seqs)", st.WALBehindSeq)
	row("write queue drops", st.WriteQueueDrops)
	row("frames superseded", st.FramesSuperseded)
	row("frames coalesced", st.FramesCoalesced)
	row("snapshot fallbacks", st.SnapshotFallbacks)
	row("max stale objects", st.MaxStaleObjects)
	row("contract breaches", st.ContractBreaches)
	row("forged completions", st.ForgedCompletions)
	row("audits run", st.AuditsRun)
	row("audit divergences", st.AuditDivergences)
	row("repaired results", st.RepairedResults)
	row("quarantined clients", st.QuarantinedClients)
	row("quarantine rejected", st.QuarantineRejected)
	row("orphan completions", st.OrphanCompletions)
	row("rate limited", st.RateLimited)
	row("write-set violations", st.WriteSetViolations)
	row("radius violations", st.RadiusViolations)
	return t
}

// String renders the snapshot via Table.
func (st ServerStats) String() string { return st.Table().String() }
