package metrics

import "fmt"

// LaneStats is one shard lane's share of the router's work.
type LaneStats struct {
	// Actions counts submissions routed to (and stamped through) this
	// lane.
	Actions int
	// OwnedObjects counts objects whose ownership the spatial partition
	// assigned to this lane.
	OwnedObjects int
}

// RouterStats is a snapshot of the shard router's cumulative counters:
// how submissions were routed across the spatial-partition lanes, how
// often epochs flushed and why, and how much reply planning actually ran
// on the shard workers. Produced by shard.Router.RouterMetrics and
// surfaced by cmd/seve-bench -experiment shardscale.
type RouterStats struct {
	// Shards is the configured lane count.
	Shards int

	// Routing totals. LocalActions were owned by a single lane;
	// CrossShardActions spanned partitions and were stamped on the
	// global sequencer lane (each one closes an epoch).
	LocalActions      int
	CrossShardActions int

	// Epoch accounting: total epochs flushed, and flush triggers by
	// cause — a cross-shard action arriving, a client switching lanes
	// mid-epoch, the epoch size cap, a non-submission message needing
	// settled state, and explicit Flush calls from the transport.
	Epochs            int
	CrossShardFlushes int
	LaneSwitchFlushes int
	SizeFlushes       int
	BarrierFlushes    int
	ExternalFlushes   int

	// ParallelPlans counts replies planned on shard worker goroutines
	// (epochs with a single active lane plan inline).
	ParallelPlans int

	// Phase timings, cumulative nanoseconds of engine compute. StampNs
	// and CommitNs are the sequential phases; PlanNs sums every lane's
	// planning time while PlanCritNs sums only each epoch's slowest lane
	// — the plan phase's critical path. On a machine with at least
	// Shards cores the wall clock of a flush approaches
	// stamp + critical-path plan + commit; the ratio
	// (Stamp+Plan+Commit)/(Stamp+PlanCrit+Commit) is therefore the
	// router's achievable speedup over the single lane on this workload,
	// hardware permitting.
	StampNs    int64
	PlanNs     int64
	PlanCritNs int64
	CommitNs   int64

	// PerLane breaks the routed work down by lane.
	PerLane []LaneStats
}

// Table renders the snapshot as a two-column table with one row block
// per lane.
func (st RouterStats) Table() *Table {
	t := &Table{Title: "shard router counters", Header: []string{"counter", "value"}}
	row := func(name string, v interface{}) { t.AddRow(name, fmt.Sprint(v)) }
	row("shards", st.Shards)
	row("local actions", st.LocalActions)
	row("cross-shard actions", st.CrossShardActions)
	row("epochs", st.Epochs)
	row("flushes: cross-shard", st.CrossShardFlushes)
	row("flushes: lane switch", st.LaneSwitchFlushes)
	row("flushes: size cap", st.SizeFlushes)
	row("flushes: barrier msg", st.BarrierFlushes)
	row("flushes: external", st.ExternalFlushes)
	row("parallel plans", st.ParallelPlans)
	row("stamp ms", fmt.Sprintf("%.2f", float64(st.StampNs)/1e6))
	row("plan ms (all lanes)", fmt.Sprintf("%.2f", float64(st.PlanNs)/1e6))
	row("plan ms (critical path)", fmt.Sprintf("%.2f", float64(st.PlanCritNs)/1e6))
	row("commit ms", fmt.Sprintf("%.2f", float64(st.CommitNs)/1e6))
	for i, ls := range st.PerLane {
		row(fmt.Sprintf("lane %d actions", i), ls.Actions)
		row(fmt.Sprintf("lane %d owned objects", i), ls.OwnedObjects)
	}
	return t
}

// String renders the snapshot via Table.
func (st RouterStats) String() string { return st.Table().String() }
