package metrics

import "fmt"

// LaneStats is one shard lane's share of the router's work.
type LaneStats struct {
	// Actions counts submissions routed to (and stamped through) this
	// lane.
	Actions int
	// OwnedObjects counts objects whose ownership the spatial partition
	// assigned to this lane.
	OwnedObjects int
}

// RouterStats is a snapshot of the shard router's cumulative counters:
// how submissions were routed across the spatial-partition lanes, how
// often epochs flushed and why, how many ran the partitioned per-lane
// pipeline, and where the pipeline's time went. Produced by
// shard.Router.RouterMetrics and surfaced by cmd/seve-bench
// -experiment shardscale.
type RouterStats struct {
	// Shards is the configured lane count.
	Shards int

	// Routing totals. LocalActions were owned by a single lane;
	// CrossShardActions rode the global sequencer lane (each one closes
	// an epoch) — either a genuinely partition-spanning footprint or an
	// empty one. SpanningActions counts only the former: the entries
	// that become cross-lane bridges and force fallback epochs while
	// live.
	LocalActions      int
	CrossShardActions int
	SpanningActions   int

	// Epoch accounting: total epochs flushed, and flush triggers by
	// cause — a cross-shard action arriving, a client switching lanes
	// mid-epoch, the epoch size cap, a non-submission message needing
	// settled state, and explicit Flush calls from the transport.
	Epochs            int
	CrossShardFlushes int
	LaneSwitchFlushes int
	SizeFlushes       int
	BarrierFlushes    int
	ExternalFlushes   int

	// Pipeline selection: epochs that ran the partitioned per-lane
	// pipeline (parallel stamp, plan, and commit over lane segments) vs
	// the global fallback (sequential stamp and commit; required while a
	// spanning bridge is live in the uncommitted queue).
	PartitionedEpochs int
	FallbackEpochs    int

	// LaneImbalance averages, over partitioned epochs, the busiest
	// lane's submission count divided by the per-lane mean — 1.0 is a
	// perfectly balanced epoch, Shards is everything on one lane. The
	// critical-path phase times approach total/Shards only as this
	// approaches 1.
	LaneImbalance float64

	// ParallelPlans counts replies planned with more than one lane
	// active in the epoch — the plans eligible for lane-parallel
	// execution (single-active-lane epochs run inline and are excluded).
	ParallelPlans int

	// Phase timings, cumulative nanoseconds of engine compute. The *Ns
	// totals sum every lane's time in a phase; the *CritNs totals sum
	// only each epoch's slowest lane — the phase's critical path.
	// Fallback epochs run stamp and commit sequentially, so they charge
	// those phases' total and critical-path counters equally. MergeNs is
	// the partitioned pipeline's sequential seal passes (SealStamp,
	// PreCommit, SealCommit) and InstallNs the completion-install pass
	// at the head of each flush. Write application inside an install
	// fans out per ζS segment, so InstallCritNs charges each install
	// only its elapsed time minus the overlap a parallel run would
	// reclaim (the segment tasks' summed duration less the slowest
	// task); the in-order bookkeeping remainder stays sequential. On a
	// machine with at least Shards cores the wall clock of flushing
	// approaches
	//
	//	StampCrit + PlanCrit + CommitCrit + Merge + InstallCrit
	//
	// while a single lane pays Stamp + Plan + Commit + Merge + Install;
	// the ratio of those two sums is the router's achievable speedup on
	// this workload, hardware permitting.
	StampNs       int64
	StampCritNs   int64
	PlanNs        int64
	PlanCritNs    int64
	CommitNs      int64
	CommitCritNs  int64
	MergeNs       int64
	InstallNs     int64
	InstallCritNs int64

	// PerLane breaks the routed work down by lane.
	PerLane []LaneStats
}

// Table renders the snapshot as a two-column table with one row block
// per lane.
func (st RouterStats) Table() *Table {
	t := &Table{Title: "shard router counters", Header: []string{"counter", "value"}}
	row := func(name string, v interface{}) { t.AddRow(name, fmt.Sprint(v)) }
	ms := func(name string, ns int64) { t.AddRow(name, fmt.Sprintf("%.2f", float64(ns)/1e6)) }
	row("shards", st.Shards)
	row("local actions", st.LocalActions)
	row("cross-shard actions", st.CrossShardActions)
	row("spanning actions", st.SpanningActions)
	row("epochs", st.Epochs)
	row("epochs: partitioned", st.PartitionedEpochs)
	row("epochs: fallback", st.FallbackEpochs)
	row("flushes: cross-shard", st.CrossShardFlushes)
	row("flushes: lane switch", st.LaneSwitchFlushes)
	row("flushes: size cap", st.SizeFlushes)
	row("flushes: barrier msg", st.BarrierFlushes)
	row("flushes: external", st.ExternalFlushes)
	row("lane imbalance", fmt.Sprintf("%.2f", st.LaneImbalance))
	row("parallel plans", st.ParallelPlans)
	ms("stamp ms (all lanes)", st.StampNs)
	ms("stamp ms (critical path)", st.StampCritNs)
	ms("plan ms (all lanes)", st.PlanNs)
	ms("plan ms (critical path)", st.PlanCritNs)
	ms("commit ms (all lanes)", st.CommitNs)
	ms("commit ms (critical path)", st.CommitCritNs)
	ms("merge ms", st.MergeNs)
	ms("install ms", st.InstallNs)
	ms("install ms (critical path)", st.InstallCritNs)
	for i, ls := range st.PerLane {
		row(fmt.Sprintf("lane %d actions", i), ls.Actions)
		row(fmt.Sprintf("lane %d owned objects", i), ls.OwnedObjects)
	}
	return t
}

// String renders the snapshot via Table.
func (st RouterStats) String() string { return st.Table().String() }
