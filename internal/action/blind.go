package action

import (
	"encoding/binary"
	"fmt"
	"math"

	"seve/internal/world"
)

// BlindWrite is the special action a = W(S, v) of Section III-C: "an
// action that unconditionally stores the values v into the object set S".
// The server prepends one to each closure batch (Algorithm 6, last line)
// to seed the client with the authoritative values, as of the server's
// install point, of the objects the client has never seen or whose queued
// writers were all already sent.
//
// By the paper's convention WS(a) = S and RS(a) = S.
type BlindWrite struct {
	id     ID
	writes []world.Write
}

// NewBlindWrite builds a blind write performing the given writes. The id
// should be unique among server-generated actions.
func NewBlindWrite(id ID, writes []world.Write) *BlindWrite {
	return &BlindWrite{id: id, writes: writes}
}

// ID returns the action's identity.
func (b *BlindWrite) ID() ID { return b.id }

// Kind returns KindBlindWrite.
func (b *BlindWrite) Kind() Kind { return KindBlindWrite }

// ReadSet returns S (by convention RS = WS for blind writes).
func (b *BlindWrite) ReadSet() world.IDSet { return b.WriteSet() }

// WriteSet returns S.
func (b *BlindWrite) WriteSet() world.IDSet {
	ids := make([]world.ObjectID, len(b.writes))
	for i, w := range b.writes {
		ids[i] = w.ID
	}
	return world.NewIDSet(ids...)
}

// Writes returns the write records the action will perform.
func (b *BlindWrite) Writes() []world.Write { return b.writes }

// Apply stores the values unconditionally. It never aborts.
func (b *BlindWrite) Apply(tx *world.Tx) bool {
	for _, w := range b.writes {
		tx.Write(w.ID, w.Val)
	}
	return true
}

// MarshalBody encodes the write records: count, then per record the
// object id, attribute count and attributes.
func (b *BlindWrite) MarshalBody() []byte {
	return b.AppendBody(make([]byte, 0, 4+len(b.writes)*16))
}

// AppendBody appends the MarshalBody encoding to buf.
func (b *BlindWrite) AppendBody(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.writes)))
	for _, w := range b.writes {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(w.ID))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(w.Val)))
		for _, f := range w.Val {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
	}
	return buf
}

// UnmarshalBlindWrite decodes the body produced by MarshalBody.
func UnmarshalBlindWrite(id ID, body []byte) (*BlindWrite, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("blind write body too short: %d bytes", len(body))
	}
	n := binary.LittleEndian.Uint32(body)
	body = body[4:]
	// Cap the allocation hint by what the body could actually hold (each
	// record is at least 10 bytes): n is untrusted input, and a forged
	// count must not pre-allocate gigabytes before the length checks in
	// the loop reject it.
	capHint := int(n)
	if max := len(body) / 10; capHint > max {
		capHint = max
	}
	writes := make([]world.Write, 0, capHint)
	for i := uint32(0); i < n; i++ {
		if len(body) < 10 {
			return nil, fmt.Errorf("blind write truncated at record %d", i)
		}
		oid := world.ObjectID(binary.LittleEndian.Uint64(body))
		attrs := int(binary.LittleEndian.Uint16(body[8:]))
		body = body[10:]
		if len(body) < attrs*8 {
			return nil, fmt.Errorf("blind write value truncated at record %d", i)
		}
		val := make(world.Value, attrs)
		for j := 0; j < attrs; j++ {
			val[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[j*8:]))
		}
		body = body[attrs*8:]
		writes = append(writes, world.Write{ID: oid, Val: val})
	}
	return &BlindWrite{id: id, writes: writes}, nil
}
