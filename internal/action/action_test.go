package action

import (
	"testing"

	"seve/internal/world"
)

// incr is a minimal test action: it reads object Target, adds Delta to
// attribute 0 and writes it back. If Target is unknown it aborts.
type incr struct {
	id     ID
	Target world.ObjectID
	Delta  float64
	// extraRead, if nonzero, is read but not written, widening RS.
	extraRead world.ObjectID
	// rogue makes Apply write outside the declared write set, for
	// CheckAccess tests.
	rogue bool
}

func (a *incr) ID() ID     { return a.id }
func (a *incr) Kind() Kind { return 100 }

func (a *incr) ReadSet() world.IDSet {
	if a.extraRead != 0 {
		return world.NewIDSet(a.Target, a.extraRead)
	}
	return world.NewIDSet(a.Target)
}

func (a *incr) WriteSet() world.IDSet { return world.NewIDSet(a.Target) }

func (a *incr) Apply(tx *world.Tx) bool {
	if a.extraRead != 0 {
		tx.Read(a.extraRead)
	}
	v, ok := tx.Read(a.Target)
	if !ok {
		return false
	}
	nv := v.Clone()
	nv[0] += a.Delta
	tx.Write(a.Target, nv)
	if a.rogue {
		//seve:vet-ignore rwset deliberate out-of-set write; this fixture exists to trip CheckAccess
		tx.Write(a.Target+1000, world.Value{1})
	}
	return true
}

func (a *incr) MarshalBody() []byte { return nil }

func TestEvalCommit(t *testing.T) {
	s := world.NewState()
	s.Set(1, world.Value{10})
	a := &incr{id: ID{Client: 1, Seq: 1}, Target: 1, Delta: 5}
	r := Eval(a, world.StateView{S: s})
	if !r.OK {
		t.Fatal("expected commit")
	}
	if len(r.Writes) != 1 || r.Writes[0].Val[0] != 15 {
		t.Fatalf("writes = %v", r.Writes)
	}
	// Eval must not mutate the underlying state.
	if v, _ := s.Get(1); v[0] != 10 {
		t.Fatal("Eval wrote through")
	}
}

func TestEvalAbortDiscardsWrites(t *testing.T) {
	s := world.NewState()
	a := &incr{id: ID{Client: 1, Seq: 1}, Target: 1, Delta: 5}
	r := Eval(a, world.StateView{S: s})
	if r.OK {
		t.Fatal("expected abort on unknown object")
	}
	if len(r.Writes) != 0 {
		t.Fatalf("aborted action leaked writes: %v", r.Writes)
	}
}

func TestResultEqual(t *testing.T) {
	r1 := Result{OK: true, Writes: []world.Write{{ID: 1, Val: world.Value{1}}}}
	r2 := Result{OK: true, Writes: []world.Write{{ID: 1, Val: world.Value{1}}}}
	if !r1.Equal(r2) {
		t.Fatal("identical results not equal")
	}
	r3 := Result{OK: true, Writes: []world.Write{{ID: 1, Val: world.Value{2}}}}
	if r1.Equal(r3) {
		t.Fatal("different values equal")
	}
	r4 := Result{OK: false}
	if r1.Equal(r4) {
		t.Fatal("commit equals abort")
	}
	r5 := Result{OK: true, Writes: []world.Write{{ID: 2, Val: world.Value{1}}}}
	if r1.Equal(r5) {
		t.Fatal("different ids equal")
	}
}

func TestResultClone(t *testing.T) {
	r := Result{OK: true, Writes: []world.Write{{ID: 1, Val: world.Value{1}}}}
	c := r.Clone()
	c.Writes[0].Val[0] = 9
	if r.Writes[0].Val[0] != 1 {
		t.Fatal("Clone aliases")
	}
}

func TestCheckAccess(t *testing.T) {
	s := world.NewState()
	s.Set(1, world.Value{0})
	s.Set(2, world.Value{0})

	good := &incr{id: ID{Client: 1, Seq: 1}, Target: 1, extraRead: 2}
	tx := world.NewTx(world.StateView{S: s})
	good.Apply(tx)
	if err := CheckAccess(good, tx); err != nil {
		t.Fatalf("good action flagged: %v", err)
	}

	rogue := &incr{id: ID{Client: 1, Seq: 2}, Target: 1, rogue: true}
	tx2 := world.NewTx(world.StateView{S: s})
	rogue.Apply(tx2)
	if err := CheckAccess(rogue, tx2); err == nil {
		t.Fatal("rogue write not flagged")
	}

	// An action reading outside RS is also flagged.
	sneaky := &incr{id: ID{Client: 1, Seq: 3}, Target: 1}
	tx3 := world.NewTx(world.StateView{S: s})
	sneaky.Apply(tx3)
	tx3.Read(2) // out-of-band read
	if err := CheckAccess(sneaky, tx3); err == nil {
		t.Fatal("rogue read not flagged")
	}
}

func TestBlindWriteApply(t *testing.T) {
	b := NewBlindWrite(ID{Client: OriginServer, Seq: 1}, []world.Write{
		{ID: 3, Val: world.Value{7, 8}},
		{ID: 1, Val: world.Value{9}},
	})
	if b.Kind() != KindBlindWrite {
		t.Fatal("wrong kind")
	}
	if !b.WriteSet().Equal(world.NewIDSet(1, 3)) {
		t.Fatalf("WriteSet = %v", b.WriteSet())
	}
	if !b.ReadSet().Equal(b.WriteSet()) {
		t.Fatal("RS(W(S,v)) must equal S")
	}
	r := Eval(b, world.StateView{S: world.NewState()})
	if !r.OK || len(r.Writes) != 2 {
		t.Fatalf("blind write result = %+v", r)
	}
}

func TestBlindWriteRoundTrip(t *testing.T) {
	b := NewBlindWrite(ID{Client: OriginServer, Seq: 42}, []world.Write{
		{ID: 3, Val: world.Value{7.5, -8}},
		{ID: 900, Val: world.Value{}},
	})
	body := b.MarshalBody()
	got, err := UnmarshalBlindWrite(b.ID(), body)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != b.ID() {
		t.Fatalf("id = %v", got.ID())
	}
	w := got.Writes()
	if len(w) != 2 || w[0].ID != 3 || !w[0].Val.Equal(world.Value{7.5, -8}) {
		t.Fatalf("writes = %v", w)
	}
	if w[1].ID != 900 || len(w[1].Val) != 0 {
		t.Fatalf("empty-value write = %v", w[1])
	}
}

func TestBlindWriteUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalBlindWrite(ID{}, []byte{1, 2}); err == nil {
		t.Fatal("short body accepted")
	}
	b := NewBlindWrite(ID{}, []world.Write{{ID: 1, Val: world.Value{1}}})
	body := b.MarshalBody()
	if _, err := UnmarshalBlindWrite(ID{}, body[:len(body)-3]); err == nil {
		t.Fatal("truncated value accepted")
	}
	if _, err := UnmarshalBlindWrite(ID{}, body[:6]); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestIDString(t *testing.T) {
	id := ID{Client: 3, Seq: 17}
	if id.String() != "a3.17" {
		t.Fatalf("String = %q", id.String())
	}
}

// TestResultCloneInto checks deep-copy semantics with buffer reuse: the
// destination must equal the source yet share no memory with it.
func TestResultCloneInto(t *testing.T) {
	src := Result{OK: true, Writes: []world.Write{
		{ID: 1, Val: world.Value{1, 2}},
		{ID: 2, Val: world.Value{3}},
	}}
	var dst Result
	src.CloneInto(&dst)
	if !dst.Equal(src) {
		t.Fatalf("CloneInto produced %+v", dst)
	}
	src.Writes[0].Val[0] = 99
	if dst.Writes[0].Val[0] != 1 {
		t.Fatal("CloneInto aliased source values")
	}
	src.Writes[0].Val[0] = 1

	// Refresh into the same destination with fewer, larger writes: the
	// buffers must be reused, not reallocated, and lengths must shrink.
	prevCap := cap(dst.Writes)
	small := Result{OK: false, Writes: []world.Write{{ID: 9, Val: world.Value{5, 6, 7}}}}
	small.CloneInto(&dst)
	if dst.OK || len(dst.Writes) != 1 || !dst.Writes[0].Val.Equal(world.Value{5, 6, 7}) {
		t.Fatalf("refresh = %+v", dst)
	}
	if cap(dst.Writes) != prevCap {
		t.Fatalf("CloneInto reallocated Writes: cap %d -> %d", prevCap, cap(dst.Writes))
	}
}

// TestEvalTxReuse checks the scratch-transaction evaluation loop: one Tx
// Reset per action, results cloned out between runs.
func TestEvalTxReuse(t *testing.T) {
	s := world.NewState()
	s.Set(1, world.Value{0})
	tx := world.NewTx(world.StateView{S: s})
	var kept []Result
	for i := 0; i < 3; i++ {
		tx.Reset(world.StateView{S: s})
		res := EvalTx(NewBlindWrite(ID{Seq: uint32(i)},
			[]world.Write{{ID: 1, Val: world.Value{float64(i)}}}), tx)
		var c Result
		res.CloneInto(&c)
		kept = append(kept, c)
	}
	for i, r := range kept {
		if !r.OK || r.Writes[0].Val[0] != float64(i) {
			t.Fatalf("kept[%d] = %+v (scratch reuse corrupted results)", i, r)
		}
	}
}
