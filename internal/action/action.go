// Package action defines the action abstraction at the heart of the
// paper's protocols: "an action consists of a read set RS(a), a write set
// WS(a) and the code that needs to be executed to compute values for
// WS(a) given values for RS(a)" (Section III-C), with the convention
// RS(a) ⊇ WS(a).
//
// Actions are deterministic: applying the same action to the same values
// of its read set always produces the same writes. That determinism is
// what lets every client replay the serialized action stream and arrive
// at the same stable state (Theorem 1), and what makes the optimistic /
// stable result comparison of Algorithm 1 meaningful.
package action

import (
	"fmt"

	"seve/internal/geom"
	"seve/internal/world"
)

// ClientID identifies a client program. The server is not a client;
// server-generated blind writes use OriginServer.
type ClientID int32

// OriginServer marks actions fabricated by the server (blind writes).
const OriginServer ClientID = -1

// ID uniquely identifies an action across the system: the originating
// client plus a client-local sequence number.
type ID struct {
	Client ClientID
	Seq    uint32
}

// String formats the id for diagnostics.
func (id ID) String() string { return fmt.Sprintf("a%d.%d", id.Client, id.Seq) }

// Kind discriminates action types on the wire; applications register
// their kinds with the wire codec.
type Kind uint16

// KindBlindWrite is reserved for server-generated blind writes.
const KindBlindWrite Kind = 0

// Action is a unit of world-state change. Implementations must be
// deterministic and must confine their accesses to the declared sets:
// every object read must be in ReadSet and every object written must be
// in WriteSet. The engines verify this in strict mode.
//
// Apply executes the action's code against tx. If the action detects a
// fatal conflict it must perform no writes and return false — "it detects
// a fatal conflict and behaves as a no-op to simulate aborting"
// (Section III-A, following Bayou).
type Action interface {
	// ID returns the action's globally unique identity.
	ID() ID
	// Kind returns the wire discriminator.
	Kind() Kind
	// ReadSet returns RS(a), declared before execution.
	ReadSet() world.IDSet
	// WriteSet returns WS(a) ⊆ RS(a), declared before execution.
	WriteSet() world.IDSet
	// Apply executes against tx and reports whether the action committed
	// (false = no-op abort).
	Apply(tx *world.Tx) bool
	// MarshalBody encodes the action's parameters (not its identity,
	// which the envelope carries).
	MarshalBody() []byte
}

// BodyAppender is optionally implemented by actions that can serialize
// their parameters into a caller-supplied buffer. The wire codec prefers
// it over MarshalBody: encoding then appends straight into the pooled
// frame buffer instead of allocating an intermediate body slice per
// envelope.
type BodyAppender interface {
	// AppendBody appends the MarshalBody encoding to buf and returns it.
	AppendBody(buf []byte) []byte
}

// Spatial is implemented by actions with a bounded area of influence —
// "a sphere centered at the point p̄A and radius rA" (Section III-D). The
// First Bound and Information Bound models require it; actions without it
// are conservatively treated as affecting everyone.
type Spatial interface {
	// Influence returns the action's maximum area of influence.
	Influence() geom.Circle
}

// Moving is optionally implemented by directed actions (arrows,
// projectiles) to enable the area-culling optimization of Section IV-B.
type Moving interface {
	// Motion returns the velocity vector v̄M of the action's influence
	// point, in world units per millisecond.
	Motion() geom.Vec
}

// Classed is optionally implemented to support inconsequential action
// elimination (Section IV-A): clients subscribe to interest classes, and
// the server skips pushing actions of classes a client is not interested
// in. Class 0 is "always interesting".
type Classed interface {
	// InterestClass returns the action's class bit (1..63); the server
	// tests it against each client's subscription mask.
	InterestClass() uint8
}

// Result is the observable effect of evaluating an action against some
// state: whether it committed, and the writes it performed. Algorithm 1
// compares the optimistic result v against the stable result u; equality
// of Results is that comparison.
type Result struct {
	OK     bool
	Writes []world.Write
}

// Equal reports whether two results are identical effects.
func (r Result) Equal(o Result) bool {
	if r.OK != o.OK || len(r.Writes) != len(o.Writes) {
		return false
	}
	for i := range r.Writes {
		if r.Writes[i].ID != o.Writes[i].ID || !r.Writes[i].Val.Equal(o.Writes[i].Val) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the result.
func (r Result) Clone() Result {
	c := Result{OK: r.OK, Writes: make([]world.Write, len(r.Writes))}
	for i, w := range r.Writes {
		c.Writes[i] = world.Write{ID: w.ID, Val: w.Val.Clone()}
	}
	return c
}

// CloneInto deep-copies r into dst, reusing dst's Writes slice and value
// buffers where capacity allows. The client engine's re-apply loop keeps
// one Result per queued action and refreshes it in place on every
// reconciliation instead of allocating a fresh clone.
func (r Result) CloneInto(dst *Result) {
	dst.OK = r.OK
	if cap(dst.Writes) < len(r.Writes) {
		grown := make([]world.Write, len(r.Writes))
		copy(grown, dst.Writes[:cap(dst.Writes)])
		dst.Writes = grown
	}
	dst.Writes = dst.Writes[:len(r.Writes)]
	for i, w := range r.Writes {
		dst.Writes[i].ID = w.ID
		dst.Writes[i].Val = append(dst.Writes[i].Val[:0], w.Val...)
	}
}

// Eval runs a against a view through a fresh transaction and packages the
// outcome as a Result. If the action aborts, any writes it buffered
// before detecting the conflict are discarded.
func Eval(a Action, view world.View) Result {
	return EvalTx(a, world.NewTx(view))
}

// EvalTx is Eval against a caller-supplied transaction, letting hot loops
// reuse one Reset scratch Tx across evaluations. The returned Result
// aliases tx's write log: it is valid only until the next Reset, so the
// caller must CloneInto anything it keeps.
func EvalTx(a Action, tx *world.Tx) Result {
	ok := a.Apply(tx)
	if !ok {
		return Result{OK: false}
	}
	return Result{OK: true, Writes: tx.Writes()}
}

// CheckAccess verifies that an executed transaction stayed within the
// action's declared sets; the engines call it in strict mode to catch
// application bugs that would silently break the closure analysis.
func CheckAccess(a Action, tx *world.Tx) error {
	rs, ws := a.ReadSet(), a.WriteSet()
	for _, id := range tx.ReadSet() {
		if !rs.Contains(id) {
			return fmt.Errorf("action %v read object %d outside declared RS %v", a.ID(), id, rs)
		}
	}
	for _, id := range tx.WriteSet() {
		if !ws.Contains(id) {
			return fmt.Errorf("action %v wrote object %d outside declared WS %v", a.ID(), id, ws)
		}
	}
	return nil
}

// Envelope wraps an action with its serialization metadata. Seq is the
// server-assigned position in the global queue ("a unique order number
// pos(a) that is a's position in the queue", Algorithm 2); it is zero
// until the server stamps it. Serial positions start at 1 so that
// position 0 can denote the initial world state in multiversion reads.
type Envelope struct {
	Seq    uint64
	Origin ClientID
	Act    Action
}
