package spatial

import (
	"math/rand"
	"testing"

	"seve/internal/geom"
)

func TestPartitionerRegionStable(t *testing.T) {
	p := NewPartitioner(100, 8)
	// Same cell → same shard, regardless of where in the cell.
	a := p.Region(geom.Vec{X: 10, Y: 10})
	b := p.Region(geom.Vec{X: 99, Y: 99})
	if a != b {
		t.Fatalf("positions in one cell mapped to shards %d and %d", a, b)
	}
	// Negative coordinates quantize to their own cells, not cell 0.
	if p.Region(geom.Vec{X: -1, Y: -1}) != p.Region(geom.Vec{X: -99, Y: -99}) {
		t.Fatal("negative cell split across shards")
	}
	for i := 0; i < 1000; i++ {
		v := geom.Vec{X: rand.Float64()*1e6 - 5e5, Y: rand.Float64()*1e6 - 5e5}
		if r := p.Region(v); r < 0 || r >= 8 {
			t.Fatalf("Region(%v) = %d out of range", v, r)
		}
	}
}

func TestPartitionerClamps(t *testing.T) {
	p := NewPartitioner(0, 0)
	if p.Shards() != 1 || p.CellSize() != 1 {
		t.Fatalf("clamped partitioner = %d shards cell %g", p.Shards(), p.CellSize())
	}
	if p.Region(geom.Vec{X: 123, Y: -456}) != 0 {
		t.Fatal("single shard partitioner returned nonzero region")
	}
}

// TestPartitionerBalance checks the anti-hot-spot claim: a compact
// crowd spanning a few cells, and a wide uniform scatter, must both use
// every shard rather than collapsing onto a stripe.
func TestPartitionerBalance(t *testing.T) {
	p := NewPartitioner(10, 4)
	counts := make([]int, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4000; i++ {
		v := geom.Vec{X: rng.Float64() * 200, Y: rng.Float64() * 200}
		counts[p.Region(v)]++
	}
	for s, c := range counts {
		if c < 400 {
			t.Fatalf("shard %d owns only %d/4000 of a compact crowd: %v", s, c, counts)
		}
	}
	// Diagonals must not align with the dealing (the plain (x+y) mod n
	// failure mode).
	diag := make([]int, 4)
	for i := 0; i < 64; i++ {
		diag[p.Region(geom.Vec{X: float64(i) * 10, Y: float64(i) * 10})]++
	}
	hit := 0
	for _, c := range diag {
		if c > 0 {
			hit++
		}
	}
	if hit < 2 {
		t.Fatalf("diagonal cells collapsed onto %d shard(s): %v", hit, diag)
	}
}

// TestLaneMapLeastLoaded pins the first-sight assignment policy: cells
// are dealt to the least-loaded lane, so any k distinct cells spread
// within one cell of perfectly even — the property that keeps the
// slowest lane (which bounds every parallel epoch phase) from owning a
// hashing accident. Repeating the lookups must not re-deal.
func TestLaneMapLeastLoaded(t *testing.T) {
	m := NewLaneMap(NewPartitioner(10, 4))
	var first []int
	for i := 0; i < 10; i++ {
		first = append(first, m.LaneOf(geom.Vec{X: float64(i) * 10, Y: 0}))
	}
	counts := m.CellCounts()
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Fatalf("least-loaded dealing left lanes uneven: %v", counts)
	}
	for i := 0; i < 10; i++ {
		if m.LaneOf(geom.Vec{X: float64(i)*10 + 5, Y: 5}) != first[i] {
			t.Fatalf("cell %d re-dealt on repeat lookup", i)
		}
	}
}

// TestLaneMapMigration is the lane-ownership-migration contract: a
// cell's lane is stable across lookups, MoveCell rebinds exactly the
// moved cell (future lookups see the new lane, per-lane cell counts
// shift by one), and every other cell keeps its original owner.
func TestLaneMapMigration(t *testing.T) {
	m := NewLaneMap(NewPartitioner(10, 4))
	hot := geom.Vec{X: 5, Y: 5}
	other := geom.Vec{X: 105, Y: 205}

	orig := m.LaneOf(hot)
	otherLane := m.LaneOf(other)
	for i := 0; i < 3; i++ {
		if m.LaneOf(hot) != orig {
			t.Fatal("lane assignment not stable across lookups")
		}
	}
	if got := m.CellCounts(); got[orig] < 1 {
		t.Fatalf("pinned cell not counted: %v", got)
	}

	dst := (orig + 1) % m.Shards()
	before := m.CellCounts()
	m.MoveCell(hot, dst)
	if got := m.LaneOf(hot); got != dst {
		t.Fatalf("after MoveCell: lane %d, want %d", got, dst)
	}
	after := m.CellCounts()
	if after[dst] != before[dst]+1 {
		t.Fatalf("destination count: %v -> %v", before, after)
	}
	if orig != dst && after[orig] != before[orig]-1 {
		t.Fatalf("source count: %v -> %v", before, after)
	}
	// The untouched cell keeps its owner; a same-lane or out-of-range
	// move is a no-op.
	if m.LaneOf(other) != otherLane {
		t.Fatal("migration moved an unrelated cell")
	}
	m.MoveCell(hot, dst)
	m.MoveCell(hot, -1)
	m.MoveCell(hot, m.Shards())
	if m.LaneOf(hot) != dst || m.CellCounts()[dst] != after[dst] {
		t.Fatal("no-op moves changed state")
	}

	// A cell never looked up can be pre-pinned by MoveCell.
	fresh := geom.Vec{X: -55, Y: -55}
	m.MoveCell(fresh, 2)
	if m.LaneOf(fresh) != 2 {
		t.Fatal("MoveCell did not pre-pin an unseen cell")
	}
}
