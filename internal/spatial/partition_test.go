package spatial

import (
	"math/rand"
	"testing"

	"seve/internal/geom"
)

func TestPartitionerRegionStable(t *testing.T) {
	p := NewPartitioner(100, 8)
	// Same cell → same shard, regardless of where in the cell.
	a := p.Region(geom.Vec{X: 10, Y: 10})
	b := p.Region(geom.Vec{X: 99, Y: 99})
	if a != b {
		t.Fatalf("positions in one cell mapped to shards %d and %d", a, b)
	}
	// Negative coordinates quantize to their own cells, not cell 0.
	if p.Region(geom.Vec{X: -1, Y: -1}) != p.Region(geom.Vec{X: -99, Y: -99}) {
		t.Fatal("negative cell split across shards")
	}
	for i := 0; i < 1000; i++ {
		v := geom.Vec{X: rand.Float64()*1e6 - 5e5, Y: rand.Float64()*1e6 - 5e5}
		if r := p.Region(v); r < 0 || r >= 8 {
			t.Fatalf("Region(%v) = %d out of range", v, r)
		}
	}
}

func TestPartitionerClamps(t *testing.T) {
	p := NewPartitioner(0, 0)
	if p.Shards() != 1 || p.CellSize() != 1 {
		t.Fatalf("clamped partitioner = %d shards cell %g", p.Shards(), p.CellSize())
	}
	if p.Region(geom.Vec{X: 123, Y: -456}) != 0 {
		t.Fatal("single shard partitioner returned nonzero region")
	}
}

// TestPartitionerBalance checks the anti-hot-spot claim: a compact
// crowd spanning a few cells, and a wide uniform scatter, must both use
// every shard rather than collapsing onto a stripe.
func TestPartitionerBalance(t *testing.T) {
	p := NewPartitioner(10, 4)
	counts := make([]int, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4000; i++ {
		v := geom.Vec{X: rng.Float64() * 200, Y: rng.Float64() * 200}
		counts[p.Region(v)]++
	}
	for s, c := range counts {
		if c < 400 {
			t.Fatalf("shard %d owns only %d/4000 of a compact crowd: %v", s, c, counts)
		}
	}
	// Diagonals must not align with the dealing (the plain (x+y) mod n
	// failure mode).
	diag := make([]int, 4)
	for i := 0; i < 64; i++ {
		diag[p.Region(geom.Vec{X: float64(i) * 10, Y: float64(i) * 10})]++
	}
	hit := 0
	for _, c := range diag {
		if c > 0 {
			hit++
		}
	}
	if hit < 2 {
		t.Fatalf("diagonal cells collapsed onto %d shard(s): %v", hit, diag)
	}
}
