// Package spatial provides uniform-grid spatial indexes over segments
// (walls) and points (avatars). Manhattan People move evaluation queries
// "the walls closest to the client's avatar and all other avatars within
// walk-able range" (Section V-A2); these indexes make those queries cheap
// enough to run hundreds of thousands of times per experiment.
package spatial

import (
	"math"

	"seve/internal/geom"
)

type cellKey struct{ x, y int32 }

// SegmentIndex is an immutable uniform grid over line segments. Build it
// once from the generated walls; lookups never mutate it, so a single
// index is safely shared by every simulated node.
type SegmentIndex struct {
	cell  float64
	segs  []geom.Segment
	cells map[cellKey][]int32
}

// NewSegmentIndex indexes segs with the given cell size. Cell size should
// be on the order of the query radius; Manhattan People uses the avatar
// visibility (30 units, Table I).
func NewSegmentIndex(segs []geom.Segment, cellSize float64) *SegmentIndex {
	if cellSize <= 0 {
		cellSize = 1
	}
	idx := &SegmentIndex{
		cell:  cellSize,
		segs:  segs,
		cells: make(map[cellKey][]int32),
	}
	for i, s := range segs {
		idx.eachCellOf(s, func(k cellKey) {
			idx.cells[k] = append(idx.cells[k], int32(i))
		})
	}
	return idx
}

func (idx *SegmentIndex) key(p geom.Vec) cellKey {
	return cellKey{int32(math.Floor(p.X / idx.cell)), int32(math.Floor(p.Y / idx.cell))}
}

// eachCellOf visits every cell overlapped by the segment's bounding box.
// Walls are short (length 10) relative to cell sizes, so the box is tight.
func (idx *SegmentIndex) eachCellOf(s geom.Segment, f func(cellKey)) {
	lo := geom.Vec{X: math.Min(s.A.X, s.B.X), Y: math.Min(s.A.Y, s.B.Y)}
	hi := geom.Vec{X: math.Max(s.A.X, s.B.X), Y: math.Max(s.A.Y, s.B.Y)}
	k0, k1 := idx.key(lo), idx.key(hi)
	for x := k0.x; x <= k1.x; x++ {
		for y := k0.y; y <= k1.y; y++ {
			f(cellKey{x, y})
		}
	}
}

// Len reports the number of indexed segments.
func (idx *SegmentIndex) Len() int { return len(idx.segs) }

// Segment returns the i-th indexed segment.
func (idx *SegmentIndex) Segment(i int) geom.Segment { return idx.segs[i] }

// Within appends to dst the indices of all segments whose distance to p is
// at most r, and returns the extended slice. Passing a reused dst[:0]
// avoids allocation in the per-move hot path.
func (idx *SegmentIndex) Within(p geom.Vec, r float64, dst []int32) []int32 {
	k0 := idx.key(geom.Vec{X: p.X - r, Y: p.Y - r})
	k1 := idx.key(geom.Vec{X: p.X + r, Y: p.Y + r})
	seen := map[int32]bool{}
	for x := k0.x; x <= k1.x; x++ {
		for y := k0.y; y <= k1.y; y++ {
			for _, i := range idx.cells[cellKey{x, y}] {
				if seen[i] {
					continue
				}
				seen[i] = true
				if idx.segs[i].DistTo(p) <= r {
					dst = append(dst, i)
				}
			}
		}
	}
	return dst
}

// CountWithin reports how many segments lie within r of p. This is the
// "visible walls" count that calibrates per-move compute cost (6.95 ms per
// 1000 visible walls, Section V-A2).
func (idx *SegmentIndex) CountWithin(p geom.Vec, r float64) int {
	k0 := idx.key(geom.Vec{X: p.X - r, Y: p.Y - r})
	k1 := idx.key(geom.Vec{X: p.X + r, Y: p.Y + r})
	seen := map[int32]bool{}
	n := 0
	for x := k0.x; x <= k1.x; x++ {
		for y := k0.y; y <= k1.y; y++ {
			for _, i := range idx.cells[cellKey{x, y}] {
				if seen[i] {
					continue
				}
				seen[i] = true
				if idx.segs[i].DistTo(p) <= r {
					n++
				}
			}
		}
	}
	return n
}

// PointIndex is a mutable uniform grid over identified points — the
// avatars. Updates move a point between cells in O(1) amortized.
type PointIndex struct {
	cell   float64
	points map[int64]geom.Vec
	cells  map[cellKey]map[int64]struct{}
}

// NewPointIndex returns an empty index with the given cell size.
func NewPointIndex(cellSize float64) *PointIndex {
	if cellSize <= 0 {
		cellSize = 1
	}
	return &PointIndex{
		cell:   cellSize,
		points: make(map[int64]geom.Vec),
		cells:  make(map[cellKey]map[int64]struct{}),
	}
}

func (idx *PointIndex) key(p geom.Vec) cellKey {
	return cellKey{int32(math.Floor(p.X / idx.cell)), int32(math.Floor(p.Y / idx.cell))}
}

// Upsert inserts or moves the point with the given id.
func (idx *PointIndex) Upsert(id int64, p geom.Vec) {
	if old, ok := idx.points[id]; ok {
		ok0, k1 := idx.key(old), idx.key(p)
		if ok0 == k1 {
			idx.points[id] = p
			return
		}
		delete(idx.cells[ok0], id)
	}
	idx.points[id] = p
	k := idx.key(p)
	cell, ok := idx.cells[k]
	if !ok {
		cell = make(map[int64]struct{})
		idx.cells[k] = cell
	}
	cell[id] = struct{}{}
}

// Remove deletes the point with the given id, if present.
func (idx *PointIndex) Remove(id int64) {
	p, ok := idx.points[id]
	if !ok {
		return
	}
	delete(idx.cells[idx.key(p)], id)
	delete(idx.points, id)
}

// Len reports the number of indexed points.
func (idx *PointIndex) Len() int { return len(idx.points) }

// Get returns the position of id and whether it is present.
func (idx *PointIndex) Get(id int64) (geom.Vec, bool) {
	p, ok := idx.points[id]
	return p, ok
}

// Within appends to dst the ids of all points within r of p (including a
// point exactly at p), and returns the extended slice.
func (idx *PointIndex) Within(p geom.Vec, r float64, dst []int64) []int64 {
	k0 := idx.key(geom.Vec{X: p.X - r, Y: p.Y - r})
	k1 := idx.key(geom.Vec{X: p.X + r, Y: p.Y + r})
	r2 := r * r
	for x := k0.x; x <= k1.x; x++ {
		for y := k0.y; y <= k1.y; y++ {
			for id := range idx.cells[cellKey{x, y}] {
				if idx.points[id].Dist2(p) <= r2 {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// CountWithin reports how many points lie within r of p.
func (idx *PointIndex) CountWithin(p geom.Vec, r float64) int {
	k0 := idx.key(geom.Vec{X: p.X - r, Y: p.Y - r})
	k1 := idx.key(geom.Vec{X: p.X + r, Y: p.Y + r})
	r2 := r * r
	n := 0
	for x := k0.x; x <= k1.x; x++ {
		for y := k0.y; y <= k1.y; y++ {
			for id := range idx.cells[cellKey{x, y}] {
				if idx.points[id].Dist2(p) <= r2 {
					n++
				}
			}
		}
	}
	return n
}
