package spatial

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"seve/internal/geom"
)

func TestSegmentIndexWithin(t *testing.T) {
	segs := []geom.Segment{
		{A: geom.Vec{X: 0, Y: 0}, B: geom.Vec{X: 10, Y: 0}},
		{A: geom.Vec{X: 100, Y: 100}, B: geom.Vec{X: 110, Y: 100}},
		{A: geom.Vec{X: 5, Y: 5}, B: geom.Vec{X: 5, Y: 15}},
	}
	idx := NewSegmentIndex(segs, 30)
	got := idx.Within(geom.Vec{X: 5, Y: 2}, 4, nil)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Within = %v, want [0 2]", got)
	}
	if n := idx.CountWithin(geom.Vec{X: 5, Y: 2}, 4); n != 2 {
		t.Fatalf("CountWithin = %d, want 2", n)
	}
	if idx.Len() != 3 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if idx.Segment(1).A.X != 100 {
		t.Fatalf("Segment(1) = %v", idx.Segment(1))
	}
}

// TestSegmentIndexMatchesBruteForce cross-checks the grid against a linear
// scan over random walls, including walls that span cell boundaries.
func TestSegmentIndexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var segs []geom.Segment
	for i := 0; i < 500; i++ {
		a := geom.Vec{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		dir := geom.Vec{X: rng.Float64()*2 - 1, Y: rng.Float64()*2 - 1}.Normalize()
		segs = append(segs, geom.Segment{A: a, B: a.Add(dir.Scale(10))})
	}
	idx := NewSegmentIndex(segs, 25)
	for trial := 0; trial < 50; trial++ {
		p := geom.Vec{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		r := rng.Float64() * 80
		got := idx.Within(p, r, nil)
		var want []int32
		for i, s := range segs {
			if s.DistTo(p) <= r {
				want = append(want, int32(i))
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d segments, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
		if n := idx.CountWithin(p, r); n != len(want) {
			t.Fatalf("trial %d: CountWithin = %d, want %d", trial, n, len(want))
		}
	}
}

func TestPointIndexBasics(t *testing.T) {
	idx := NewPointIndex(10)
	idx.Upsert(1, geom.Vec{X: 5, Y: 5})
	idx.Upsert(2, geom.Vec{X: 50, Y: 50})
	idx.Upsert(3, geom.Vec{X: 7, Y: 5})
	if idx.Len() != 3 {
		t.Fatalf("Len = %d", idx.Len())
	}
	got := idx.Within(geom.Vec{X: 5, Y: 5}, 3, nil)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Within = %v, want [1 3]", got)
	}
	if p, ok := idx.Get(2); !ok || p.X != 50 {
		t.Fatalf("Get(2) = %v, %v", p, ok)
	}
	if _, ok := idx.Get(99); ok {
		t.Fatal("Get(99) found a ghost")
	}
}

func TestPointIndexMoveAcrossCells(t *testing.T) {
	idx := NewPointIndex(10)
	idx.Upsert(1, geom.Vec{X: 5, Y: 5})
	idx.Upsert(1, geom.Vec{X: 95, Y: 95}) // crosses many cell boundaries
	if n := idx.CountWithin(geom.Vec{X: 5, Y: 5}, 3); n != 0 {
		t.Fatalf("stale point still indexed: count = %d", n)
	}
	if n := idx.CountWithin(geom.Vec{X: 95, Y: 95}, 1); n != 1 {
		t.Fatalf("moved point not found: count = %d", n)
	}
	if idx.Len() != 1 {
		t.Fatalf("Len = %d after move, want 1", idx.Len())
	}
}

func TestPointIndexMoveWithinCell(t *testing.T) {
	idx := NewPointIndex(100)
	idx.Upsert(1, geom.Vec{X: 5, Y: 5})
	idx.Upsert(1, geom.Vec{X: 6, Y: 6}) // same cell fast path
	got := idx.Within(geom.Vec{X: 6, Y: 6}, 0.5, nil)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Within after same-cell move = %v", got)
	}
}

func TestPointIndexRemove(t *testing.T) {
	idx := NewPointIndex(10)
	idx.Upsert(1, geom.Vec{X: 5, Y: 5})
	idx.Remove(1)
	idx.Remove(42) // removing an absent id is a no-op
	if idx.Len() != 0 {
		t.Fatalf("Len = %d after remove", idx.Len())
	}
	if n := idx.CountWithin(geom.Vec{X: 5, Y: 5}, 10); n != 0 {
		t.Fatalf("removed point still found")
	}
}

// TestPointIndexMatchesBruteForceProperty drives random upserts, removes
// and queries and cross-checks every query against a linear scan.
func TestPointIndexMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		idx := NewPointIndex(17)
		ref := map[int64]geom.Vec{}
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0, 1: // upsert
				id := int64(rng.Intn(40))
				p := geom.Vec{X: rng.Float64()*500 - 250, Y: rng.Float64()*500 - 250}
				idx.Upsert(id, p)
				ref[id] = p
			case 2: // remove
				id := int64(rng.Intn(40))
				idx.Remove(id)
				delete(ref, id)
			case 3: // query
				q := geom.Vec{X: rng.Float64()*500 - 250, Y: rng.Float64()*500 - 250}
				r := rng.Float64() * 100
				got := idx.Within(q, r, nil)
				want := 0
				for _, p := range ref {
					if p.Dist2(q) <= r*r {
						want++
					}
				}
				if len(got) != want || idx.CountWithin(q, r) != want {
					return false
				}
			}
		}
		return idx.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeCoordinates(t *testing.T) {
	// math.Floor-based keys must bucket negative coordinates correctly.
	idx := NewPointIndex(10)
	idx.Upsert(1, geom.Vec{X: -5, Y: -5})
	idx.Upsert(2, geom.Vec{X: 5, Y: 5})
	got := idx.Within(geom.Vec{X: -5, Y: -5}, 2, nil)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("negative-coordinate query = %v", got)
	}
	segs := []geom.Segment{{A: geom.Vec{X: -10, Y: -1}, B: geom.Vec{X: -2, Y: -1}}}
	sidx := NewSegmentIndex(segs, 10)
	if n := sidx.CountWithin(geom.Vec{X: -6, Y: -2}, 2); n != 1 {
		t.Fatalf("negative-coordinate segment query = %d, want 1", n)
	}
}

func TestZeroCellSizeDefaults(t *testing.T) {
	// Constructors must not divide by zero when handed a bad cell size.
	si := NewSegmentIndex(nil, 0)
	if si.Len() != 0 {
		t.Fatal("empty index not empty")
	}
	pi := NewPointIndex(-3)
	pi.Upsert(1, geom.Vec{X: 1, Y: 1})
	if pi.CountWithin(geom.Vec{X: 1, Y: 1}, 1) != 1 {
		t.Fatal("index with defaulted cell size lost a point")
	}
}
