package spatial

import (
	"math"

	"seve/internal/geom"
)

// Partitioner maps world positions to one of n shards through a uniform
// grid: space is cut into cells of the given size and cells are dealt to
// shards in a checkerboard stripe, so adjacent cells land on different
// shards and any compact crowd spreads across the fleet instead of
// hot-spotting one lane. The mapping is pure arithmetic — deterministic
// across runs, goroutines, and processes — which is what the shard
// router's reproducible merge order depends on.
type Partitioner struct {
	cell float64
	n    int
}

// NewPartitioner returns a partitioner over n shards with the given grid
// cell size. Cell size should be on the order of the influence reach so
// most actions fall inside a single owner's region; non-positive values
// default to 1, and n is clamped to at least 1.
func NewPartitioner(cellSize float64, n int) *Partitioner {
	if cellSize <= 0 {
		cellSize = 1
	}
	if n < 1 {
		n = 1
	}
	return &Partitioner{cell: cellSize, n: n}
}

// Shards reports the number of shards positions are dealt across.
func (p *Partitioner) Shards() int { return p.n }

// CellSize reports the grid edge length.
func (p *Partitioner) CellSize() float64 { return p.cell }

// Region returns the owning shard of position v, in [0, Shards()).
func (p *Partitioner) Region(v geom.Vec) int {
	k := keyOf(v, p.cell)
	// Mix the two cell coordinates so stripes do not align with either
	// axis (plain (x+y) mod n sends every diagonal to one shard).
	h := uint64(uint32(k.x))*0x9e3779b1 ^ uint64(uint32(k.y))*0x85ebca6b
	h ^= h >> 33
	h *= 0xc2b2ae3d27d4eb4f
	h ^= h >> 29
	return int(h % uint64(p.n))
}

// keyOf is the shared grid-cell quantization (see SegmentIndex.key).
func keyOf(v geom.Vec, cell float64) cellKey {
	return cellKey{int32(math.Floor(v.X / cell)), int32(math.Floor(v.Y / cell))}
}
