package spatial

import (
	"math"

	"seve/internal/geom"
)

// Partitioner maps world positions to one of n shards through a uniform
// grid: space is cut into cells of the given size and cells are dealt to
// shards in a checkerboard stripe, so adjacent cells land on different
// shards and any compact crowd spreads across the fleet instead of
// hot-spotting one lane. The mapping is pure arithmetic — deterministic
// across runs, goroutines, and processes — which is what the shard
// router's reproducible merge order depends on.
type Partitioner struct {
	cell float64
	n    int
}

// NewPartitioner returns a partitioner over n shards with the given grid
// cell size. Cell size should be on the order of the influence reach so
// most actions fall inside a single owner's region; non-positive values
// default to 1, and n is clamped to at least 1.
func NewPartitioner(cellSize float64, n int) *Partitioner {
	if cellSize <= 0 {
		cellSize = 1
	}
	if n < 1 {
		n = 1
	}
	return &Partitioner{cell: cellSize, n: n}
}

// Shards reports the number of shards positions are dealt across.
func (p *Partitioner) Shards() int { return p.n }

// CellSize reports the grid edge length.
func (p *Partitioner) CellSize() float64 { return p.cell }

// Region returns the owning shard of position v, in [0, Shards()).
func (p *Partitioner) Region(v geom.Vec) int {
	k := keyOf(v, p.cell)
	// Mix the two cell coordinates so stripes do not align with either
	// axis (plain (x+y) mod n sends every diagonal to one shard).
	h := uint64(uint32(k.x))*0x9e3779b1 ^ uint64(uint32(k.y))*0x85ebca6b
	h ^= h >> 33
	h *= 0xc2b2ae3d27d4eb4f
	h ^= h >> 29
	return int(h % uint64(p.n))
}

// keyOf is the shared grid-cell quantization (see SegmentIndex.key).
func keyOf(v geom.Vec, cell float64) cellKey {
	return cellKey{int32(math.Floor(v.X / cell)), int32(math.Floor(v.Y / cell))}
}

// LaneMap is the stable cell→lane ownership map the shard router (and
// through it the partitioned store) keys object ownership by. A cell is
// assigned on first lookup to the least-loaded lane — fewest pinned
// cells, preferring the Partitioner's arithmetic Region on a tie and
// the lowest lane index after that — and remembered, so a later
// rebalance (MoveCell) changes only the cells explicitly moved: every
// other cell — and every object already pinned through one — keeps its
// lane. Least-loaded beats the bare Region hash because the lanes a
// world actually uses are decided by a handful of occupied cells, not a
// uniform scatter: hashing 2n cells onto n lanes leaves some lane
// owning Θ(log n / log log n) of them, and the slowest lane bounds
// every parallel phase of the epoch pipeline. First sight happens on
// the router's sequential routing path, so assignments are a pure
// function of the submission stream — the determinism the reproducible
// merge order needs. That stability is what lets the router treat
// object→lane assignments as sticky while still allowing an operator
// (or a future load balancer) to migrate hot cells.
type LaneMap struct {
	part   *Partitioner
	cells  map[cellKey]int
	counts []int
}

// NewLaneMap returns a lane map over the partitioner's shards.
func NewLaneMap(part *Partitioner) *LaneMap {
	return &LaneMap{
		part:   part,
		cells:  make(map[cellKey]int),
		counts: make([]int, part.Shards()),
	}
}

// Shards reports the lane count.
func (m *LaneMap) Shards() int { return m.part.Shards() }

// LaneOf returns the owning lane of position v, pinning its cell on
// first sight to the least-loaded lane (ties prefer the arithmetic
// Region, then the lowest index).
func (m *LaneMap) LaneOf(v geom.Vec) int {
	k := keyOf(v, m.part.CellSize())
	if lane, ok := m.cells[k]; ok {
		return lane
	}
	lane := m.part.Region(v)
	for l, c := range m.counts {
		if c < m.counts[lane] {
			lane = l
		}
	}
	m.cells[k] = lane
	m.counts[lane]++
	return lane
}

// MoveCell reassigns the cell containing v to lane, pinning it if it
// was never looked up. Future LaneOf calls for the cell return lane;
// ownership already derived from the old assignment is not rewritten
// (the caller decides when in-flight state makes that safe).
func (m *LaneMap) MoveCell(v geom.Vec, lane int) {
	if lane < 0 || lane >= m.part.Shards() {
		return
	}
	k := keyOf(v, m.part.CellSize())
	if prev, ok := m.cells[k]; ok {
		if prev == lane {
			return
		}
		m.counts[prev]--
	}
	m.cells[k] = lane
	m.counts[lane]++
}

// CellCounts reports, per lane, how many pinned cells it owns.
func (m *LaneMap) CellCounts() []int {
	out := make([]int, len(m.counts))
	copy(out, m.counts)
	return out
}
