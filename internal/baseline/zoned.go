package baseline

import (
	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/geom"
	"seve/internal/wire"
	"seve/internal/world"
)

// ZoneGrid implements the zoning architecture of Section II-A: "the
// technique of geographically partitioning ('tiling') the virtual
// environment into areas small enough for a single server to handle."
// One ZoneServer per tile executes the game logic for actions submitted
// by clients standing in its tile (Central-style within the zone) and
// broadcasts the effects to every client and to its peer servers, whose
// replicas it keeps eventually current.
//
// The paper's criticism that this architecture makes measurable: "zones
// collapse if too many users crowd into a zone all at once" — crowd
// every avatar into one tile and its server saturates exactly like the
// single Central server, no matter how many idle peers exist.
type ZoneGrid struct {
	servers []*ZoneServer
	perRow  int
	tileW   float64
	tileH   float64
}

// NewZoneGrid tiles a width×height world into perRow×perRow zones.
func NewZoneGrid(width, height float64, perRow int, init *world.State) *ZoneGrid {
	if perRow < 1 {
		perRow = 1
	}
	g := &ZoneGrid{
		perRow: perRow,
		tileW:  width / float64(perRow),
		tileH:  height / float64(perRow),
	}
	for z := 0; z < perRow*perRow; z++ {
		g.servers = append(g.servers, &ZoneServer{zone: z, st: init.Clone()})
	}
	return g
}

// Zones reports the number of zone servers.
func (g *ZoneGrid) Zones() int { return len(g.servers) }

// Server returns the z-th zone server.
func (g *ZoneGrid) Server(z int) *ZoneServer { return g.servers[z] }

// ZoneOf maps a position to its tile index.
func (g *ZoneGrid) ZoneOf(p geom.Vec) int {
	col := int(p.X / g.tileW)
	row := int(p.Y / g.tileH)
	if col < 0 {
		col = 0
	}
	if col >= g.perRow {
		col = g.perRow - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= g.perRow {
		row = g.perRow - 1
	}
	return row*g.perRow + col
}

// RegisterClient announces a client to every zone (any zone may need to
// send it updates after a handoff).
func (g *ZoneGrid) RegisterClient(id action.ClientID) {
	for _, s := range g.servers {
		s.clients = append(s.clients, id)
	}
}

// ZoneServer executes game logic for one tile.
type ZoneServer struct {
	zone    int
	st      *world.State
	nextSeq uint64
	clients []action.ClientID

	executed int
}

// Zone returns the tile index.
func (s *ZoneServer) Zone() int { return s.zone }

// Executed reports how many actions this zone server evaluated — the
// load-balance (or collapse) evidence.
func (s *ZoneServer) Executed() int { return s.executed }

// State returns the server's replica (authoritative for its own tile).
func (s *ZoneServer) State() *world.State { return s.st }

// ZoneOutput extends Output with peer-server updates, which travel over
// the (fast, intra-datacenter) server-to-server links.
type ZoneOutput struct {
	Output
	// PeerUpdates go to every other zone server.
	PeerUpdates []wire.Msg
	// Executed actions, for compute-cost accounting.
	Executed []action.Action
}

// HandleSubmit executes the action against the zone's replica: a
// Completion to the origin (its commit), a blind-write Batch to every
// client, and the same Batch to peers so their replicas follow.
func (s *ZoneServer) HandleSubmit(from action.ClientID, m *wire.Submit) ZoneOutput {
	var out ZoneOutput
	env := m.Env
	env.Origin = from
	s.nextSeq++
	env.Seq = s.nextSeq

	res := action.Eval(env.Act, world.StateView{S: s.st})
	for _, w := range res.Writes {
		s.st.Set(w.ID, w.Val)
	}
	s.executed++
	out.Executed = append(out.Executed, env.Act)

	out.Replies = append(out.Replies, core.Reply{
		To:      from,
		Msg:     &wire.Completion{Seq: env.Seq, By: action.OriginServer, Res: res},
		Deliver: core.Delivery{Class: core.DeliveryOrdered},
	})
	if len(res.Writes) > 0 {
		bw := action.NewBlindWrite(action.ID{Client: action.OriginServer, Seq: uint32(env.Seq)}, res.Writes)
		batch := &wire.Batch{Envs: []action.Envelope{{
			Seq: env.Seq, Origin: action.OriginServer, Act: bw,
		}}}
		for _, cid := range s.clients {
			if cid != from {
				out.Replies = append(out.Replies, core.Reply{
					To: cid, Msg: batch,
					Deliver: core.Delivery{Class: core.DeliveryOrdered},
				})
			}
		}
		out.PeerUpdates = append(out.PeerUpdates, batch)
	}
	return out
}

// HandlePeerUpdate installs a peer zone's effects into this replica.
func (s *ZoneServer) HandlePeerUpdate(m *wire.Batch) {
	for _, env := range m.Envs {
		if bw, ok := env.Act.(*action.BlindWrite); ok {
			for _, w := range bw.Writes() {
				s.st.Set(w.ID, w.Val)
			}
		}
	}
}
