package baseline

import (
	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/wire"
	"seve/internal/world"
)

// LockServer implements the distributed-locking protocol family of
// Section II-B (Sun's Project Darkstar is the paper's example): "a
// client contacts the server for a lock … if it obtained all the
// necessary locks, the client executes the transaction on its local
// state and transmits the effect of the transaction to the server. The
// server then transmits this effect to all other clients."
//
// Locks are managed server-side (the paper's simpler variant). A
// submission write-locks every object in RS(a); conflicting submissions
// queue until release. The paper's criticism that this implementation
// makes measurable: "the minimum time required by a client to proceed to
// the next conflicting transaction is twice the round trip time" —
// request→grant is one RTT, effect→redistribution the second.
type LockServer struct {
	st      *world.State
	nextSeq uint64

	clients []action.ClientID

	// locked maps each object to the seq of the request holding it.
	locked map[world.ObjectID]uint64
	// waiting holds granted-pending requests in arrival order; a request
	// is granted when every object in its read set is free (all-or-
	// nothing acquisition, so no deadlock).
	waiting []*lockRequest
	// held maps seq → the locks a granted request holds.
	held map[uint64]world.IDSet

	granted, queued int
}

type lockRequest struct {
	seq  uint64
	from action.ClientID
	env  action.Envelope
}

// NewLockServer returns a lock server over the initial world.
func NewLockServer(init *world.State) *LockServer {
	return &LockServer{
		st:     init.Clone(),
		locked: make(map[world.ObjectID]uint64),
		held:   make(map[uint64]world.IDSet),
	}
}

// RegisterClient announces a client.
func (s *LockServer) RegisterClient(id action.ClientID) {
	s.clients = append(s.clients, id)
}

// State returns the authoritative state.
func (s *LockServer) State() *world.State { return s.st }

// Granted and Queued report how many requests were granted immediately
// versus made to wait — the contention the protocol serializes on.
func (s *LockServer) Granted() int { return s.granted }
func (s *LockServer) Queued() int  { return s.queued }

// HandleSubmit treats the submission as a lock request over RS(a).
func (s *LockServer) HandleSubmit(from action.ClientID, m *wire.Submit) Output {
	var out Output
	env := m.Env
	env.Origin = from
	s.nextSeq++
	env.Seq = s.nextSeq

	req := &lockRequest{seq: env.Seq, from: from, env: env}
	s.waiting = append(s.waiting, req)
	if !s.tryGrant(&out) {
		s.queued++
	}
	return out
}

// HandleEffect processes the executed transaction's effect: install into
// the authoritative state, broadcast to every other client, release the
// locks, and grant whoever was unblocked.
func (s *LockServer) HandleEffect(from action.ClientID, m *wire.Completion) Output {
	var out Output
	if m.Res.OK {
		for _, w := range m.Res.Writes {
			s.st.Set(w.ID, w.Val)
		}
	}
	// Redistribute the effect — including to the origin, whose receipt
	// is its commit confirmation (the second RTT).
	bw := action.NewBlindWrite(action.ID{Client: action.OriginServer, Seq: uint32(m.Seq)}, m.Res.Writes)
	for _, cid := range s.clients {
		out.Replies = append(out.Replies, core.Reply{
			To: cid,
			Msg: &wire.Batch{Envs: []action.Envelope{{
				Seq: m.Seq, Origin: from, Act: bw,
			}}},
			Deliver: core.Delivery{Class: core.DeliveryOrdered},
		})
	}
	// Release and re-grant.
	for _, id := range s.held[m.Seq] {
		delete(s.locked, id)
	}
	delete(s.held, m.Seq)
	for s.tryGrant(&out) {
	}
	return out
}

// tryGrant grants the earliest waiting request whose lock set is free.
// It reports whether any grant happened.
func (s *LockServer) tryGrant(out *Output) bool {
	for i, req := range s.waiting {
		rs := req.env.Act.ReadSet()
		free := true
		for _, id := range rs {
			if _, taken := s.locked[id]; taken {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		for _, id := range rs {
			s.locked[id] = req.seq
		}
		s.held[req.seq] = rs
		s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
		s.granted++
		out.Replies = append(out.Replies, core.Reply{
			To:      req.from,
			Msg:     &wire.LockGrant{Seq: req.seq, ActID: req.env.Act.ID()},
			Deliver: core.Delivery{Class: core.DeliveryOrdered},
		})
		return true
	}
	return false
}

// LockClient is the client side of the lock-based protocol: it holds its
// actions until granted, executes them against its local replica, and
// ships the effects back.
type LockClient struct {
	id   action.ClientID
	view *world.State

	pending map[action.ID]action.Action
	// grantedSeq maps the serialized position back to the action id, so
	// the effect broadcast can be recognized as the commit confirmation.
	grantedSeq map[uint64]action.ID
	nextSeq    uint32
}

// NewLockClient returns a client over the initial world.
func NewLockClient(id action.ClientID, init *world.State) *LockClient {
	return &LockClient{
		id:         id,
		view:       init.Clone(),
		pending:    make(map[action.ID]action.Action),
		grantedSeq: make(map[uint64]action.ID),
	}
}

// ID returns the client id.
func (c *LockClient) ID() action.ClientID { return c.id }

// View returns the client's replica.
func (c *LockClient) View() *world.State { return c.view }

// NextActionID mints an action identity.
func (c *LockClient) NextActionID() action.ID {
	c.nextSeq++
	return action.ID{Client: c.id, Seq: c.nextSeq}
}

// Submit records the action as pending and returns the lock request.
// Nothing is executed yet — under locking there is no optimistic layer;
// that is exactly the latency the paper's protocol removes.
func (c *LockClient) Submit(a action.Action) *wire.Submit {
	c.pending[a.ID()] = a
	return &wire.Submit{Env: action.Envelope{Origin: c.id, Act: a}}
}

// LockOutput is what a lock client produced in response to a message.
type LockOutput struct {
	ToServer []wire.Msg
	// Executed is the action evaluated under this grant, for cost
	// accounting.
	Executed action.Action
	// Commits are resolved local actions (on receipt of their own
	// effect broadcast).
	Commits []core.Commit
}

// HandleMsg processes a grant or an effect broadcast.
func (c *LockClient) HandleMsg(msg wire.Msg) LockOutput {
	var out LockOutput
	switch m := msg.(type) {
	case *wire.LockGrant:
		a, ok := c.pending[m.ActID]
		if !ok {
			return out
		}
		delete(c.pending, m.ActID)
		c.grantedSeq[m.Seq] = m.ActID
		res := action.Eval(a, world.StateView{S: c.view})
		// Locks guarantee exclusive access, so the local execution is
		// authoritative; apply it and ship the effect.
		for _, w := range res.Writes {
			c.view.Set(w.ID, w.Val)
		}
		out.Executed = a
		out.ToServer = append(out.ToServer, &wire.Completion{Seq: m.Seq, By: c.id, Res: res})
	case *wire.Batch:
		for _, env := range m.Envs {
			bw, ok := env.Act.(*action.BlindWrite)
			if !ok {
				continue
			}
			if env.Origin != c.id {
				// Another client's effect: install it.
				for _, w := range bw.Writes() {
					c.view.Set(w.ID, w.Val)
				}
				continue
			}
			// Our own effect coming back: the commit confirmation
			// (already applied at grant time).
			if actID, ok := c.grantedSeq[env.Seq]; ok {
				delete(c.grantedSeq, env.Seq)
				out.Commits = append(out.Commits, core.Commit{
					ActID: actID,
					Seq:   env.Seq,
					Res:   action.Result{OK: true, Writes: bw.Writes()},
				})
			}
		}
	}
	return out
}
