package baseline

import (
	"encoding/binary"
	"math"
	"testing"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/geom"
	"seve/internal/wire"
	"seve/internal/world"
)

// addAction mirrors the core test action: read rs, sum attr 0, write
// sum+delta into each ws object.
type addAction struct {
	id     action.ID
	rs, ws world.IDSet
	delta  float64
	pos    geom.Vec
	hasPos bool
}

const kindAdd action.Kind = 1001

func (a *addAction) ID() action.ID         { return a.id }
func (a *addAction) Kind() action.Kind     { return kindAdd }
func (a *addAction) ReadSet() world.IDSet  { return a.rs }
func (a *addAction) WriteSet() world.IDSet { return a.ws }

func (a *addAction) Apply(tx *world.Tx) bool {
	sum := 0.0
	for _, id := range a.rs {
		v, ok := tx.Read(id)
		if !ok {
			return false
		}
		sum += v[0]
	}
	for _, id := range a.ws {
		tx.Write(id, world.Value{sum + a.delta})
	}
	return true
}

func (a *addAction) MarshalBody() []byte {
	return binary.LittleEndian.AppendUint64(nil, math.Float64bits(a.delta))
}

func (a *addAction) Influence() geom.Circle {
	return geom.Circle{Center: a.pos, R: 5}
}

func initWorld(n int) *world.State {
	s := world.NewState()
	for i := 1; i <= n; i++ {
		s.Set(world.ObjectID(i), world.Value{float64(i)})
	}
	return s
}

func oracle(init *world.State, hist []action.Envelope) *world.State {
	st := init.Clone()
	for _, env := range hist {
		res := action.Eval(env.Act, world.StateView{S: st})
		for _, w := range res.Writes {
			st.Set(w.ID, w.Val)
		}
	}
	return st
}

func TestCentralExecutesAndReplies(t *testing.T) {
	init := initWorld(2)
	srv := NewCentralServer(init, 0, true)
	srv.RegisterClient(1)
	srv.RegisterClient(2)
	c1 := NewCentralClient(1, init)
	c2 := NewCentralClient(2, init)

	a := &addAction{id: c1.NextActionID(), rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 10, hasPos: true}
	out := srv.HandleSubmit(1, c1.Submit(a))
	if len(out.Executed) != 1 {
		t.Fatalf("executed = %d", len(out.Executed))
	}
	// Origin gets a Completion, the other client a Batch.
	var commits []core.Commit
	for _, r := range out.Replies {
		switch r.To {
		case 1:
			commits = append(commits, c1.HandleMsg(r.Msg)...)
		case 2:
			c2.HandleMsg(r.Msg)
		}
	}
	if len(commits) != 1 || !commits[0].Res.OK {
		t.Fatalf("commits = %+v", commits)
	}
	v, _ := srv.State().Get(1)
	if v[0] != 11 {
		t.Fatalf("server state = %v, want 11", v)
	}
	if v, _ := c1.View().Get(1); v[0] != 11 {
		t.Fatalf("origin view = %v, want 11", v)
	}
	if v, _ := c2.View().Get(1); v[0] != 11 {
		t.Fatalf("peer view = %v, want 11", v)
	}
	if !srv.State().Equal(oracle(init, srv.History())) {
		t.Fatal("central state diverged from oracle")
	}
}

func TestCentralVisibilityFiltersUpdates(t *testing.T) {
	init := initWorld(2)
	srv := NewCentralServer(init, 10, false)
	srv.RegisterClient(1)
	srv.RegisterClient(2)
	c1 := NewCentralClient(1, init)
	c2 := NewCentralClient(2, init)

	// Establish positions: client 1 at (0,0), client 2 at (100,0).
	a1 := &addAction{id: c1.NextActionID(), rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1, pos: geom.Vec{X: 0, Y: 0}}
	a2 := &addAction{id: c2.NextActionID(), rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 1, pos: geom.Vec{X: 100, Y: 0}}
	srv.HandleSubmit(1, c1.Submit(a1))
	out := srv.HandleSubmit(2, c2.Submit(a2))
	// Client 1 is 100 away from client 2's action: only the origin reply.
	for _, r := range out.Replies {
		if r.To == 1 {
			if _, isBatch := r.Msg.(*wire.Batch); isBatch {
				t.Fatal("far client received update batch")
			}
		}
	}
}

func TestBroadcastTotalOrderConvergence(t *testing.T) {
	init := initWorld(3)
	srv := NewBroadcastServer(true)
	cfg := NewBroadcastClientConfig()
	clients := map[action.ClientID]*core.Client{}
	for i := action.ClientID(1); i <= 3; i++ {
		srv.RegisterClient(i)
		clients[i] = core.NewClient(i, cfg, init)
	}
	// Conflicting submissions from all three clients, delivered after
	// all are stamped.
	var queued []core.Reply
	for i := action.ClientID(1); i <= 3; i++ {
		a := &addAction{id: clients[i].NextActionID(), rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: float64(i) * 10}
		m, _ := clients[i].Submit(a)
		out := srv.HandleSubmit(i, m)
		queued = append(queued, out.Replies...)
	}
	commits := 0
	for _, r := range queued {
		out := clients[r.To].HandleMsg(r.Msg)
		commits += len(out.Commits)
		if len(out.Violations) > 0 {
			t.Fatalf("violations: %v", out.Violations)
		}
	}
	if commits != 3 {
		t.Fatalf("commits = %d, want 3", commits)
	}
	want := oracle(init, srv.History())
	for i := action.ClientID(1); i <= 3; i++ {
		if !clients[i].Stable().LatestState().Equal(want) {
			t.Fatalf("client %d diverged from oracle", i)
		}
	}
}

func TestRingVisibilityFiltering(t *testing.T) {
	init := initWorld(3)
	srv := NewRingServer(50, true)
	cfg := NewRingClientConfig()
	clients := map[action.ClientID]*core.Client{}
	for i := action.ClientID(1); i <= 3; i++ {
		srv.RegisterClient(i)
		clients[i] = core.NewClient(i, cfg, init)
	}
	deliver := func(out Output) {
		for _, r := range out.Replies {
			clients[r.To].HandleMsg(r.Msg)
		}
	}
	// Establish positions: 1 at origin, 2 at 30 (visible), 3 at 200 (not).
	submit := func(cid action.ClientID, x float64, rs, ws world.IDSet, delta float64) {
		a := &addAction{id: clients[cid].NextActionID(), rs: rs, ws: ws, delta: delta, pos: geom.Vec{X: x}}
		m, _ := clients[cid].Submit(a)
		deliver(srv.HandleSubmit(cid, m))
	}
	submit(1, 0, world.NewIDSet(1), world.NewIDSet(1), 1)
	submit(2, 30, world.NewIDSet(2), world.NewIDSet(2), 1)
	submit(3, 200, world.NewIDSet(3), world.NewIDSet(3), 1)
	// Now client 1 acts on object 1 again: clients 2 sees it, 3 does not.
	before2 := clients[2].AppliedRemote()
	before3 := clients[3].AppliedRemote()
	submit(1, 0, world.NewIDSet(1), world.NewIDSet(1), 5)
	if clients[2].AppliedRemote() != before2+1 {
		t.Fatal("visible client did not receive the action")
	}
	if clients[3].AppliedRemote() != before3 {
		t.Fatal("far client received the action despite visibility filter")
	}
	if srv.Suppressed() == 0 {
		t.Fatal("no deliveries suppressed")
	}
}

// TestRingInconsistencyMeasured reproduces the paper's core criticism:
// with a chain of causally linked actions spanning beyond visibility, a
// RING client's state diverges from the serial oracle, and Divergence
// detects it.
func TestRingInconsistencyMeasured(t *testing.T) {
	init := initWorld(2)
	srv := NewRingServer(50, true)
	cfg := NewRingClientConfig()
	clients := map[action.ClientID]*core.Client{}
	for i := action.ClientID(1); i <= 2; i++ {
		srv.RegisterClient(i)
		clients[i] = core.NewClient(i, cfg, init)
	}
	deliver := func(out Output) {
		for _, r := range out.Replies {
			clients[r.To].HandleMsg(r.Msg)
		}
	}
	// Establish client 1's position at x=0 first (a client with unknown
	// position is conservatively treated as visible).
	a0 := &addAction{id: clients[1].NextActionID(), rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 1, pos: geom.Vec{X: 0}}
	m0, _ := clients[1].Submit(a0)
	deliver(srv.HandleSubmit(1, m0))

	// Client 2, far away (x=200), writes object 1 — client 1 never hears.
	a2 := &addAction{id: clients[2].NextActionID(), rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 100, pos: geom.Vec{X: 200}}
	m2, _ := clients[2].Submit(a2)
	deliver(srv.HandleSubmit(2, m2))
	// Client 1 (x=0) acts on object 1: its stable view of object 1 is
	// stale, so its result diverges from the oracle.
	a1 := &addAction{id: clients[1].NextActionID(), rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1, pos: geom.Vec{X: 0}}
	m1, _ := clients[1].Submit(a1)
	deliver(srv.HandleSubmit(1, m1))

	want := oracle(init, srv.History())
	held := clients[1].Stable().IDs()
	div := Divergence(clients[1].Stable(), held, want)
	if div == 0 {
		t.Fatal("RING client consistent despite missed causal action — filter not lossy?")
	}
	// A broadcast client over the same history would be consistent; the
	// oracle value differs from client 1's view on object 1 specifically.
	v, _ := clients[1].Stable().Get(1)
	ov, _ := want.Get(1)
	if v.Equal(ov) {
		t.Fatal("expected object 1 to diverge")
	}
}

func TestDivergenceZeroForConsistentView(t *testing.T) {
	st := initWorld(3)
	if d := Divergence(st, st.IDs(), st); d != 0 {
		t.Fatalf("self-divergence = %d", d)
	}
}
