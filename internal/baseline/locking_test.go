package baseline

import (
	"testing"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/wire"
	"seve/internal/world"
)

// lockLoop wires a LockServer and its clients synchronously.
type lockLoop struct {
	srv     *LockServer
	clients map[action.ClientID]*LockClient
	commits []core.Commit
}

func newLockLoop(init *world.State, n int) *lockLoop {
	l := &lockLoop{srv: NewLockServer(init), clients: map[action.ClientID]*LockClient{}}
	for i := 1; i <= n; i++ {
		id := action.ClientID(i)
		l.srv.RegisterClient(id)
		l.clients[id] = NewLockClient(id, init)
	}
	return l
}

func (l *lockLoop) pump(out Output) {
	for len(out.Replies) > 0 {
		rep := out.Replies[0]
		out.Replies = out.Replies[1:]
		co := l.clients[rep.To].HandleMsg(rep.Msg)
		l.commits = append(l.commits, co.Commits...)
		for _, m := range co.ToServer {
			eff := m.(*wire.Completion)
			more := l.srv.HandleEffect(rep.To, eff)
			out.Replies = append(out.Replies, more.Replies...)
		}
	}
}

func TestLockingSerializesConflicts(t *testing.T) {
	init := initWorld(1)
	l := newLockLoop(init, 2)

	a1 := &addAction{id: l.clients[1].NextActionID(), rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 10}
	a2 := &addAction{id: l.clients[2].NextActionID(), rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 100}

	// Both lock requests arrive before either effect: the second must
	// queue.
	out1 := l.srv.HandleSubmit(1, l.clients[1].Submit(a1))
	out2 := l.srv.HandleSubmit(2, l.clients[2].Submit(a2))
	if l.srv.Granted() != 1 || l.srv.Queued() != 1 {
		t.Fatalf("granted=%d queued=%d, want 1/1", l.srv.Granted(), l.srv.Queued())
	}
	l.pump(out1)
	l.pump(out2) // no grant was in out2; pump is a no-op for it

	if len(l.commits) != 2 {
		t.Fatalf("commits = %d, want 2", len(l.commits))
	}
	// Serial result: 1+10=11 then 11+100=111.
	v, _ := l.srv.State().Get(1)
	if v[0] != 111 {
		t.Fatalf("authoritative = %v, want 111", v)
	}
	for id, c := range l.clients {
		cv, _ := c.View().Get(1)
		if cv[0] != 111 {
			t.Fatalf("client %d view = %v, want 111", id, cv)
		}
	}
}

func TestLockingDisjointRunsConcurrently(t *testing.T) {
	init := initWorld(2)
	l := newLockLoop(init, 2)
	a1 := &addAction{id: l.clients[1].NextActionID(), rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1}
	a2 := &addAction{id: l.clients[2].NextActionID(), rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 1}
	l.srv.HandleSubmit(1, l.clients[1].Submit(a1))
	l.srv.HandleSubmit(2, l.clients[2].Submit(a2))
	if l.srv.Granted() != 2 || l.srv.Queued() != 0 {
		t.Fatalf("granted=%d queued=%d, want 2/0 for disjoint lock sets", l.srv.Granted(), l.srv.Queued())
	}
}

func TestLockingGrantForUnknownActionIgnored(t *testing.T) {
	c := NewLockClient(1, initWorld(1))
	out := c.HandleMsg(&wire.LockGrant{Seq: 9, ActID: action.ID{Client: 1, Seq: 99}})
	if len(out.ToServer) != 0 || out.Executed != nil {
		t.Fatal("phantom grant produced output")
	}
}

func TestOwnershipLocalCommitAndRelay(t *testing.T) {
	init := initWorld(2)
	owner := map[world.ObjectID]action.ClientID{1: 1, 2: 2}
	srv := NewOwnershipServer(owner, true)
	c1 := NewOwnershipClient(1, world.NewIDSet(1), init)
	c2 := NewOwnershipClient(2, world.NewIDSet(2), init)
	srv.RegisterClient(1)
	srv.RegisterClient(2)

	a := &addAction{id: c1.NextActionID(), rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 10}
	update, res, ok := c1.Execute(a)
	if !ok || !res.OK {
		t.Fatalf("owner's action refused: ok=%v res=%+v", ok, res)
	}
	// Local commit is instant.
	if v, _ := c1.View().Get(1); v[0] != 11 {
		t.Fatalf("owner view = %v, want 11", v)
	}
	out := srv.HandleUpdate(1, update)
	if len(out.Replies) != 1 || out.Replies[0].To != 2 {
		t.Fatalf("relay = %+v", out.Replies)
	}
	c2.HandleMsg(out.Replies[0].Msg)
	if v, _ := c2.View().Get(1); v[0] != 11 {
		t.Fatalf("cacher view = %v, want 11", v)
	}
}

func TestOwnershipRejectsForeignWrites(t *testing.T) {
	init := initWorld(2)
	c1 := NewOwnershipClient(1, world.NewIDSet(1), init)
	// Client 1 tries to write object 2, which it does not own.
	a := &addAction{id: c1.NextActionID(), rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 5}
	if _, _, ok := c1.Execute(a); ok {
		t.Fatal("foreign write executed")
	}
	if c1.Rejected() != 1 {
		t.Fatalf("client rejected = %d", c1.Rejected())
	}
	// And the server independently refuses a forged update.
	srv := NewOwnershipServer(map[world.ObjectID]action.ClientID{2: 2}, false)
	srv.RegisterClient(1)
	srv.RegisterClient(2)
	out := srv.HandleUpdate(1, &wire.Submit{Env: action.Envelope{Origin: 1, Act: a}})
	if len(out.Replies) != 0 {
		t.Fatal("forged update relayed")
	}
	if srv.Rejected() != 1 {
		t.Fatalf("server rejected = %d", srv.Rejected())
	}
}

// TestOwnershipStaleReadsDiverge: ownership caches are only eventually
// updated, so an owner acting on a cached (stale) read computes a value
// the serial oracle disagrees with — the consistency cost of the
// protocol family.
func TestOwnershipStaleReadsDiverge(t *testing.T) {
	init := initWorld(2)
	owner := map[world.ObjectID]action.ClientID{1: 1, 2: 2}
	srv := NewOwnershipServer(owner, true)
	c1 := NewOwnershipClient(1, world.NewIDSet(1), init)
	c2 := NewOwnershipClient(2, world.NewIDSet(2), init)
	srv.RegisterClient(1)
	srv.RegisterClient(2)

	// Client 2 bumps its object (2 → 2+50=52); the relay to client 1 is
	// IN FLIGHT (not yet delivered).
	u2, _, _ := c2.Execute(&addAction{id: c2.NextActionID(), rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 50})
	inflight := srv.HandleUpdate(2, u2)

	// Client 1 reads both objects and writes its own: it sees the STALE
	// object 2 (value 2, not 52).
	u1, res, _ := c1.Execute(&addAction{id: c1.NextActionID(), rs: world.NewIDSet(1, 2), ws: world.NewIDSet(1), delta: 0})
	srv.HandleUpdate(1, u1)
	// Serial order would give 1 + 52 = 53; the stale read gives 1+2=3.
	if res.Writes[0].Val[0] != 3 {
		t.Fatalf("expected stale result 3, got %v", res.Writes[0].Val)
	}

	// Deliver the in-flight relay and replay the oracle to confirm the
	// divergence is real and measurable.
	for _, rep := range inflight.Replies {
		if rep.To == 1 {
			c1.HandleMsg(rep.Msg)
		}
	}
	st := init.Clone()
	for _, env := range srv.History() {
		r := action.Eval(env.Act, world.StateView{S: st})
		for _, w := range r.Writes {
			st.Set(w.ID, w.Val)
		}
	}
	ov, _ := st.Get(1)
	if ov[0] == 3 {
		t.Fatal("oracle agrees with stale execution; test setup wrong")
	}
	if d := Divergence(c1.View(), world.NewIDSet(1), st); d != 1 {
		t.Fatalf("divergence = %d, want 1", d)
	}
}
