package baseline

import (
	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/geom"
	"seve/internal/wire"
	"seve/internal/world"
)

// RingServer is the RING-like architecture of Section V-B3: the server
// tracks each entity's position and forwards an action only to clients
// whose avatar is within the actor's visibility range. The origin always
// receives its own action back (the commit signal).
//
// This is the state of the art the paper criticizes in Section III-B:
// filtering by visibility is cheap — no closure computation — but
// actions outside an avatar's sight that causally affect it are silently
// lost, so client states diverge (Figures 2 and 3). Divergence measures
// exactly that.
type RingServer struct {
	nextSeq    uint64
	visibility float64
	clients    map[action.ClientID]*centralClientInfo
	order      []action.ClientID

	log           []action.Envelope
	recordHistory bool
	forwarded     int
	suppressed    int
}

// NewRingServer returns a RING relay with the given visibility range.
func NewRingServer(visibility float64, recordHistory bool) *RingServer {
	return &RingServer{
		visibility:    visibility,
		clients:       make(map[action.ClientID]*centralClientInfo),
		recordHistory: recordHistory,
	}
}

// RegisterClient announces a client.
func (s *RingServer) RegisterClient(id action.ClientID) {
	s.clients[id] = &centralClientInfo{}
	s.order = append(s.order, id)
}

// History returns the stamped envelopes in order, when recording.
func (s *RingServer) History() []action.Envelope { return s.log }

// Forwarded reports action deliveries sent; Suppressed reports deliveries
// skipped by the visibility filter. Their ratio is what makes RING cheap
// — and inconsistent.
func (s *RingServer) Forwarded() int  { return s.forwarded }
func (s *RingServer) Suppressed() int { return s.suppressed }

// HandleSubmit stamps the action and forwards it to the origin plus every
// client that can see the actor.
func (s *RingServer) HandleSubmit(from action.ClientID, m *wire.Submit) Output {
	var out Output
	env := m.Env
	env.Origin = from
	s.nextSeq++
	env.Seq = s.nextSeq
	if s.recordHistory {
		s.log = append(s.log, env)
	}

	var pos geom.Vec
	var hasPos bool
	if sp, ok := env.Act.(action.Spatial); ok {
		pos, hasPos = sp.Influence().Center, true
		if ci := s.clients[from]; ci != nil {
			ci.pos, ci.hasPos = pos, true
		}
	}

	for _, cid := range s.order {
		ci := s.clients[cid]
		visible := cid == from ||
			!hasPos || !ci.hasPos ||
			ci.pos.Dist(pos) <= s.visibility
		if !visible {
			s.suppressed++
			continue
		}
		s.forwarded++
		out.Replies = append(out.Replies, core.Reply{
			To:      cid,
			Msg:     &wire.Batch{Envs: []action.Envelope{env}},
			Deliver: core.Delivery{Class: core.DeliveryOrdered},
		})
	}
	return out
}

// NewRingClientConfig returns the core.Client configuration for RING
// clients: the basic protocol, non-strict — RING clients legitimately
// evaluate actions against incomplete state; that incompleteness is the
// architecture's documented flaw, not a harness bug.
func NewRingClientConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeBasic
	return cfg
}

// Divergence compares a client's stable view against the serial oracle
// state over the objects the client holds, returning how many of them
// differ. This quantifies the inconsistency the visibility filter causes
// (cf. Figure 3's dead-archer anomaly): SEVE and Broadcast score zero;
// RING does not.
func Divergence(clientView world.Reader, held world.IDSet, oracle *world.State) (diverged int) {
	for _, id := range held {
		cv, okC := clientView.Get(id)
		ov, okO := oracle.Get(id)
		if okC != okO || (okC && !cv.Equal(ov)) {
			diverged++
		}
	}
	return diverged
}
