package baseline

import (
	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/wire"
	"seve/internal/world"
)

// Ownership implements the object-ownership protocol family of
// Section II-B (RING, Cyberwalk, WAVES): "each object is owned and
// managed by exactly one client … Other clients are allowed to cache a
// version of the object, but are not allowed to make modifications to
// its state."
//
// The owner commits writes to its own objects locally and instantly —
// unbeatable response time — and the server merely re-distributes the
// new values to cachers. The two costs the paper criticizes are both
// measurable here: actions touching non-owned objects are REJECTED
// ("it does not allow for any kind of object contention"), and reads of
// cached objects are stale, so replicas diverge exactly like RING's.

// OwnershipServer assigns ownership and relays owner updates.
type OwnershipServer struct {
	nextSeq uint64
	clients []action.ClientID
	// owner maps each object to its owning client.
	owner map[world.ObjectID]action.ClientID

	log           []action.Envelope
	recordHistory bool
	rejected      int
}

// NewOwnershipServer returns a relay with the given ownership map.
func NewOwnershipServer(owner map[world.ObjectID]action.ClientID, recordHistory bool) *OwnershipServer {
	o := make(map[world.ObjectID]action.ClientID, len(owner))
	for k, v := range owner {
		o[k] = v
	}
	return &OwnershipServer{owner: o, recordHistory: recordHistory}
}

// RegisterClient announces a client.
func (s *OwnershipServer) RegisterClient(id action.ClientID) {
	s.clients = append(s.clients, id)
}

// Owner reports the owner of an object (0 = unowned).
func (s *OwnershipServer) Owner(id world.ObjectID) action.ClientID { return s.owner[id] }

// Rejected reports updates refused because the sender did not own every
// written object.
func (s *OwnershipServer) Rejected() int { return s.rejected }

// History returns the accepted envelopes in order, when recording.
func (s *OwnershipServer) History() []action.Envelope { return s.log }

// HandleUpdate validates ownership of the written objects and relays the
// effect to every cacher. The owner has already committed locally; a
// rejection is a fairness/abuse signal, not a rollback (the paper's
// "server is responsible for ensuring fairness in ownership").
func (s *OwnershipServer) HandleUpdate(from action.ClientID, m *wire.Submit) Output {
	var out Output
	env := m.Env
	env.Origin = from
	for _, id := range env.Act.WriteSet() {
		if s.owner[id] != from {
			s.rejected++
			return out
		}
	}
	s.nextSeq++
	env.Seq = s.nextSeq
	if s.recordHistory {
		s.log = append(s.log, env)
	}
	for _, cid := range s.clients {
		if cid == from {
			continue
		}
		out.Replies = append(out.Replies, core.Reply{
			To:      cid,
			Msg:     &wire.Batch{Envs: []action.Envelope{env}},
			Deliver: core.Delivery{Class: core.DeliveryOrdered},
		})
	}
	return out
}

// OwnershipClient executes actions over owned objects locally and caches
// everyone else's updates.
type OwnershipClient struct {
	id    action.ClientID
	view  *world.State
	owned world.IDSet

	nextSeq  uint32
	rejected int
}

// NewOwnershipClient returns a client owning the given objects.
func NewOwnershipClient(id action.ClientID, owned world.IDSet, init *world.State) *OwnershipClient {
	return &OwnershipClient{id: id, view: init.Clone(), owned: owned.Clone()}
}

// ID returns the client id.
func (c *OwnershipClient) ID() action.ClientID { return c.id }

// View returns the client's replica (own objects authoritative, others
// cached).
func (c *OwnershipClient) View() *world.State { return c.view }

// Rejected reports actions refused locally for writing non-owned
// objects.
func (c *OwnershipClient) Rejected() int { return c.rejected }

// NextActionID mints an action identity.
func (c *OwnershipClient) NextActionID() action.ID {
	c.nextSeq++
	return action.ID{Client: c.id, Seq: c.nextSeq}
}

// Execute runs the action if every written object is owned: the write
// commits locally and instantly, and an update for the server to relay
// is returned. If any written object is not owned the action is refused
// (nil update, ok=false) — the contention the paper shows this protocol
// family cannot express.
func (c *OwnershipClient) Execute(a action.Action) (update *wire.Submit, res action.Result, ok bool) {
	for _, id := range a.WriteSet() {
		if !c.owned.Contains(id) {
			c.rejected++
			return nil, action.Result{}, false
		}
	}
	res = action.Eval(a, world.StateView{S: c.view})
	for _, w := range res.Writes {
		c.view.Set(w.ID, w.Val)
	}
	return &wire.Submit{Env: action.Envelope{Origin: c.id, Act: a}}, res, true
}

// HandleMsg installs a relayed owner update into the cache.
func (c *OwnershipClient) HandleMsg(msg wire.Msg) []action.Action {
	m, ok := msg.(*wire.Batch)
	if !ok {
		return nil
	}
	var applied []action.Action
	for _, env := range m.Envs {
		// Re-execute the owner's action against the local cache: the
		// SIMNET/WAVES model where every workstation simulates every
		// received event. Writes land only on the owner's objects, so
		// ownership is preserved; reads of stale cache entries are the
		// protocol's documented inconsistency.
		res := action.Eval(env.Act, world.StateView{S: c.view})
		for _, w := range res.Writes {
			c.view.Set(w.ID, w.Val)
		}
		applied = append(applied, env.Act)
	}
	return applied
}
