package baseline

import (
	"testing"

	"seve/internal/action"
	"seve/internal/geom"
	"seve/internal/wire"
	"seve/internal/world"
)

func TestZoneOfTiling(t *testing.T) {
	g := NewZoneGrid(100, 100, 2, initWorld(1))
	if g.Zones() != 4 {
		t.Fatalf("zones = %d, want 4", g.Zones())
	}
	cases := []struct {
		p    geom.Vec
		zone int
	}{
		{geom.Vec{X: 10, Y: 10}, 0},
		{geom.Vec{X: 60, Y: 10}, 1},
		{geom.Vec{X: 10, Y: 60}, 2},
		{geom.Vec{X: 60, Y: 60}, 3},
		// Out-of-range positions clamp to edge tiles.
		{geom.Vec{X: -5, Y: -5}, 0},
		{geom.Vec{X: 500, Y: 500}, 3},
	}
	for _, c := range cases {
		if got := g.ZoneOf(c.p); got != c.zone {
			t.Errorf("ZoneOf(%v) = %d, want %d", c.p, got, c.zone)
		}
	}
	// Degenerate grid.
	g1 := NewZoneGrid(100, 100, 0, initWorld(1))
	if g1.Zones() != 1 {
		t.Fatalf("perRow 0 should clamp to 1 zone, got %d", g1.Zones())
	}
}

func TestZoneServerExecutesAndGossips(t *testing.T) {
	init := initWorld(2)
	g := NewZoneGrid(100, 100, 2, init)
	g.RegisterClient(1)
	g.RegisterClient(2)

	a := &addAction{id: action.ID{Client: 1, Seq: 1}, rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 10}
	out := g.Server(0).HandleSubmit(1, &wire.Submit{Env: action.Envelope{Origin: 1, Act: a}})

	if len(out.Executed) != 1 {
		t.Fatalf("executed = %d", len(out.Executed))
	}
	// Origin gets a Completion; the other client a Batch; peers one update.
	var gotCompletion, gotBatch bool
	for _, rep := range out.Replies {
		switch rep.Msg.(type) {
		case *wire.Completion:
			if rep.To != 1 {
				t.Fatalf("completion to %d", rep.To)
			}
			gotCompletion = true
		case *wire.Batch:
			if rep.To != 2 {
				t.Fatalf("batch to %d", rep.To)
			}
			gotBatch = true
		}
	}
	if !gotCompletion || !gotBatch {
		t.Fatalf("replies incomplete: completion=%v batch=%v", gotCompletion, gotBatch)
	}
	if len(out.PeerUpdates) != 1 {
		t.Fatalf("peer updates = %d", len(out.PeerUpdates))
	}
	// A peer installing the gossip converges on the value.
	g.Server(3).HandlePeerUpdate(out.PeerUpdates[0].(*wire.Batch))
	v, _ := g.Server(3).State().Get(1)
	if v[0] != 11 {
		t.Fatalf("peer replica = %v, want 11", v)
	}
	if g.Server(0).Executed() != 1 || g.Server(3).Executed() != 0 {
		t.Fatal("execution counters wrong")
	}
	if g.Server(0).Zone() != 0 {
		t.Fatal("zone index wrong")
	}
}
