package baseline

import (
	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/wire"
)

// BroadcastServer is the NPSNET/SIMNET stand-in: it timestamps each
// action and immediately relays it to every client, origin included (the
// origin's copy is its commit signal). O(N) messages per action — O(N²)
// per simulation step with N submitting clients — and every client
// evaluates every action, which is why the broadcast model's per-client
// compute "is comparable to the central server" (Section V-B1).
//
// Clients of the broadcast model are core.Client engines in ModeBasic:
// they evaluate everything in the server-assigned total order, exactly
// like the paper's first action-based protocol, just with eager delivery
// instead of delivery-on-submission.
type BroadcastServer struct {
	nextSeq       uint64
	clients       []action.ClientID
	log           []action.Envelope
	recordHistory bool
}

// NewBroadcastServer returns an empty broadcast relay.
func NewBroadcastServer(recordHistory bool) *BroadcastServer {
	return &BroadcastServer{recordHistory: recordHistory}
}

// RegisterClient announces a client.
func (s *BroadcastServer) RegisterClient(id action.ClientID) {
	s.clients = append(s.clients, id)
}

// History returns the stamped envelopes in order, when recording.
func (s *BroadcastServer) History() []action.Envelope { return s.log }

// HandleSubmit stamps the action and relays it to every client.
func (s *BroadcastServer) HandleSubmit(from action.ClientID, m *wire.Submit) Output {
	var out Output
	env := m.Env
	env.Origin = from
	s.nextSeq++
	env.Seq = s.nextSeq
	if s.recordHistory {
		s.log = append(s.log, env)
	}
	for _, cid := range s.clients {
		out.Replies = append(out.Replies, core.Reply{
			To:      cid,
			Msg:     &wire.Batch{Envs: []action.Envelope{env}},
			Deliver: core.Delivery{Class: core.DeliveryOrdered},
		})
	}
	return out
}

// NewBroadcastClientConfig returns the core.Client configuration used by
// broadcast-model clients: the basic protocol without strictness (the
// broadcast total order makes every replica serial, so strict mode adds
// only overhead).
func NewBroadcastClientConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeBasic
	return cfg
}
