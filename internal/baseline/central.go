// Package baseline implements the three architectures the paper
// evaluates SEVE against (Section V-B):
//
//   - Central — "an optimized version of a centralized system that
//     represents current online virtual worlds such as Second Life or
//     World of Warcraft": clients send inputs, the server executes all
//     game logic against the authoritative state and pushes resulting
//     object updates to interested clients.
//   - Broadcast — NPSNET/SIMNET: the server serializes and broadcasts
//     every action to every client; each client evaluates everything, so
//     per-client compute matches the central server's.
//   - RING — visibility-filtered forwarding: the server relays an action
//     only to clients whose avatar can see the actor. Fast, but
//     inconsistent (the Figure 3 arrow anomaly); package metrics
//     quantifies the divergence.
package baseline

import (
	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/geom"
	"seve/internal/wire"
	"seve/internal/world"
)

// CentralServer executes every action itself. Its Output.Executed slice
// is what the simulation adapter charges compute for — 7.44 ms per move
// in the paper's calibration, which is what makes the server saturate at
// ~32 clients in Figure 6.
type CentralServer struct {
	st      *world.State
	nextSeq uint64

	// visibility controls which clients receive an action's effects:
	// those whose avatar is within this distance of the action. Zero
	// means every client receives every update.
	visibility float64

	clients map[action.ClientID]*centralClientInfo
	order   []action.ClientID

	log           []action.Envelope
	recordHistory bool
}

type centralClientInfo struct {
	pos    geom.Vec
	hasPos bool
}

// NewCentralServer returns a central server over the initial world.
func NewCentralServer(init *world.State, visibility float64, recordHistory bool) *CentralServer {
	return &CentralServer{
		st:            init.Clone(),
		visibility:    visibility,
		clients:       make(map[action.ClientID]*centralClientInfo),
		recordHistory: recordHistory,
	}
}

// RegisterClient announces a client.
func (s *CentralServer) RegisterClient(id action.ClientID) {
	s.clients[id] = &centralClientInfo{}
	s.order = append(s.order, id)
}

// Output of a central server step.
type Output struct {
	Replies []core.Reply
	// Executed lists actions the server evaluated itself (Central only);
	// the adapter charges their full compute cost to the server.
	Executed []action.Action
}

// State returns the authoritative world state.
func (s *CentralServer) State() *world.State { return s.st }

// History returns the executed envelopes in order, when recording.
func (s *CentralServer) History() []action.Envelope { return s.log }

// HandleSubmit executes the action server-side and distributes its
// effects: the origin gets a Completion carrying the result (its commit
// signal); clients within visibility get the written values as a blind
// write.
func (s *CentralServer) HandleSubmit(from action.ClientID, m *wire.Submit) Output {
	var out Output
	env := m.Env
	env.Origin = from
	s.nextSeq++
	env.Seq = s.nextSeq

	if sp, ok := env.Act.(action.Spatial); ok {
		if ci := s.clients[from]; ci != nil {
			ci.pos, ci.hasPos = sp.Influence().Center, true
		}
	}

	res := action.Eval(env.Act, world.StateView{S: s.st})
	for _, w := range res.Writes {
		s.st.Set(w.ID, w.Val)
	}
	out.Executed = append(out.Executed, env.Act)
	if s.recordHistory {
		s.log = append(s.log, env)
	}

	// Commit signal to the origin.
	out.Replies = append(out.Replies, core.Reply{
		To:      from,
		Msg:     &wire.Completion{Seq: env.Seq, By: action.OriginServer, Res: res},
		Deliver: core.Delivery{Class: core.DeliveryOrdered},
	})

	// Object updates to interested clients.
	if len(res.Writes) > 0 {
		var pos geom.Vec
		var hasPos bool
		if sp, ok := env.Act.(action.Spatial); ok {
			pos, hasPos = sp.Influence().Center, true
		}
		for _, cid := range s.order {
			ci := s.clients[cid]
			if cid == from {
				continue
			}
			if s.visibility > 0 && hasPos && ci.hasPos &&
				ci.pos.Dist(pos) > s.visibility {
				continue
			}
			bw := action.NewBlindWrite(action.ID{Client: action.OriginServer, Seq: uint32(env.Seq)}, res.Writes)
			out.Replies = append(out.Replies, core.Reply{
				To: cid,
				Msg: &wire.Batch{Envs: []action.Envelope{{
					Seq: env.Seq, Origin: action.OriginServer, Act: bw,
				}}},
				Deliver: core.Delivery{Class: core.DeliveryOrdered},
			})
		}
	}
	return out
}

// CentralClient is the thin client of the centralized model: it submits
// inputs and installs the value updates the server sends back. It does
// no game-logic computation.
type CentralClient struct {
	id      action.ClientID
	view    *world.State
	pending []action.Action
	nextSeq uint32
}

// NewCentralClient returns a client whose local view starts as init.
func NewCentralClient(id action.ClientID, init *world.State) *CentralClient {
	return &CentralClient{id: id, view: init.Clone()}
}

// ID returns the client's identity.
func (c *CentralClient) ID() action.ClientID { return c.id }

// View returns the client's local view of the world (authoritative
// values as they arrive; no optimistic layer — the centralized model
// waits for the server).
func (c *CentralClient) View() *world.State { return c.view }

// NextActionID mints the next action identity.
func (c *CentralClient) NextActionID() action.ID {
	c.nextSeq++
	return action.ID{Client: c.id, Seq: c.nextSeq}
}

// Submit queues a for the server.
func (c *CentralClient) Submit(a action.Action) *wire.Submit {
	c.pending = append(c.pending, a)
	return &wire.Submit{Env: action.Envelope{Origin: c.id, Act: a}}
}

// HandleMsg processes a server message, returning the commits resolved.
func (c *CentralClient) HandleMsg(msg wire.Msg) []core.Commit {
	switch m := msg.(type) {
	case *wire.Completion:
		if len(c.pending) == 0 {
			return nil
		}
		a := c.pending[0]
		c.pending = c.pending[1:]
		for _, w := range m.Res.Writes {
			c.view.Set(w.ID, w.Val)
		}
		return []core.Commit{{ActID: a.ID(), Seq: m.Seq, Res: m.Res}}
	case *wire.Batch:
		for _, env := range m.Envs {
			if bw, ok := env.Act.(*action.BlindWrite); ok {
				for _, w := range bw.Writes() {
					c.view.Set(w.ID, w.Val)
				}
			}
		}
	}
	return nil
}
