package manhattan

import (
	"encoding/binary"
	"fmt"
	"math"

	"seve/internal/action"
	"seve/internal/geom"
	"seve/internal/wire"
	"seve/internal/world"
)

// KindMove is the wire kind of Manhattan People move actions.
const KindMove action.Kind = 1

// MoveAction advances one avatar by one step (Speed × StepMs units along
// its heading), bouncing 90° off world bounds, walls, and other avatars.
//
// Read set: the avatar itself plus every avatar within EffectRange at
// creation time — the paper's semantic conflict declaration ("the range
// and nature" of the action, Section I). Write set: the avatar itself.
// The action is deterministic in its read values and the static walls,
// so every replica that evaluates it with the same versions computes the
// same result.
type MoveAction struct {
	id     action.ID
	w      *World
	avatar world.ObjectID
	// origin is the avatar position at creation: the center of the
	// action's influence sphere (p̄A of Equation (1)), and the position
	// Algorithm 7 measures chain distances between.
	origin geom.Vec
	// heading at creation, for area culling (Section IV-B).
	heading geom.Vec
	// visibleWalls calibrates this move's compute cost.
	visibleWalls int
	rs           world.IDSet
}

// NewMove builds the next move for an avatar, reading its current tuple
// from view (typically the client's optimistic state — the freshest
// picture the player has).
func (w *World) NewMove(id action.ID, avatar world.ObjectID, view world.Reader) (*MoveAction, error) {
	v, ok := view.Get(avatar)
	if !ok {
		return nil, fmt.Errorf("manhattan: avatar %d not in view", avatar)
	}
	pos := AvatarPos(v)
	nearby := w.NearbyAvatars(view, avatar, pos, w.Cfg.EffectRange)
	rs := world.NewIDSet(append(nearby, avatar)...)
	return &MoveAction{
		id:           id,
		w:            w,
		avatar:       avatar,
		origin:       pos,
		heading:      AvatarDir(v),
		visibleWalls: w.VisibleWalls(pos),
		rs:           rs,
	}, nil
}

// ID returns the action identity.
func (m *MoveAction) ID() action.ID { return m.id }

// Kind returns KindMove.
func (m *MoveAction) Kind() action.Kind { return KindMove }

// ReadSet returns the avatar plus the avatars within effect range at
// creation.
func (m *MoveAction) ReadSet() world.IDSet { return m.rs }

// WriteSet returns the moving avatar.
func (m *MoveAction) WriteSet() world.IDSet { return world.NewIDSet(m.avatar) }

// VisibleWalls returns the wall count the move's cost is based on.
func (m *MoveAction) VisibleWalls() int { return m.visibleWalls }

// Avatar returns the moving avatar's object id.
func (m *MoveAction) Avatar() world.ObjectID { return m.avatar }

// CostMs implements the per-move compute cost, charged by the simulation
// adapter to whichever node evaluates the move.
func (m *MoveAction) CostMs() float64 {
	return m.w.MoveCostMs(m.visibleWalls, m.rs.Len()-1)
}

// Influence returns the move's area of influence: a sphere of
// EffectRange about the avatar's position at creation.
func (m *MoveAction) Influence() geom.Circle {
	return geom.Circle{Center: m.origin, R: m.w.Cfg.EffectRange}
}

// Motion returns the avatar's velocity vector for area culling.
func (m *MoveAction) Motion() geom.Vec {
	return m.heading.Scale(m.w.Cfg.Speed)
}

// Apply executes the move: read self, read the declared neighbours,
// advance, bounce 90° on collision. If the avatar's tuple is missing the
// move aborts as a no-op (Bayou-style conflict behaviour).
func (m *MoveAction) Apply(tx *world.Tx) bool {
	self, ok := tx.Read(m.avatar)
	if !ok {
		return false
	}
	pos, dir := AvatarPos(self), AvatarDir(self)

	var others []geom.Vec
	for _, id := range m.rs {
		if id == m.avatar {
			continue
		}
		if v, ok := tx.Read(id); ok {
			others = append(others, AvatarPos(v))
		}
	}

	cfg := m.w.Cfg
	next := pos.Add(dir.Scale(cfg.Speed * cfg.StepMs))
	if m.blocked(next, others) {
		// Bump: change direction by 90° and stay put this step.
		dir = dir.Rotate90()
		next = pos
	}
	tx.Write(m.avatar, world.Value{next.X, next.Y, dir.X, dir.Y})
	return true
}

// blocked reports whether moving to next would hit the world edge, a
// wall, or another avatar.
func (m *MoveAction) blocked(next geom.Vec, others []geom.Vec) bool {
	cfg := m.w.Cfg
	if !m.w.Bounds.Contains(next) {
		return true
	}
	for _, o := range others {
		if next.Dist2(o) <= cfg.CollisionDist*cfg.CollisionDist {
			return true
		}
	}
	// Wall check against walls near the new position. The index lookup
	// is a stand-in for the paper's trig-heavy per-wall collision math;
	// the real cost is charged via CostMs.
	var hits []int32
	hits = m.w.Walls.Within(next, cfg.AvatarRadius, hits)
	return len(hits) > 0
}

// MarshalBody encodes avatar id, origin, heading, visible walls and the
// read set. The World pointer is supplied at decode time by the
// registered decoder (static geometry ships with the client binary, not
// per action).
func (m *MoveAction) MarshalBody() []byte {
	return m.AppendBody(make([]byte, 0, 48+8*m.rs.Len()))
}

// AppendBody appends the MarshalBody encoding to buf.
func (m *MoveAction) AppendBody(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.avatar))
	buf = appendFloat(buf, m.origin.X)
	buf = appendFloat(buf, m.origin.Y)
	buf = appendFloat(buf, m.heading.X)
	buf = appendFloat(buf, m.heading.Y)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.visibleWalls))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(m.rs.Len()))
	for _, id := range m.rs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
	}
	return buf
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, floatBits(f))
}

// RegisterWire installs the MoveAction decoder bound to w. Call once per
// process that receives moves over the real wire; the simulator passes
// actions by reference and does not need it.
func RegisterWire(w *World) {
	wire.RegisterKind(KindMove, func(id action.ID, body []byte) (action.Action, error) {
		return UnmarshalMove(w, id, body)
	})
}

// UnmarshalMove decodes a MoveAction body against the given world.
func UnmarshalMove(w *World, id action.ID, body []byte) (*MoveAction, error) {
	const hdr = 8 + 4*8 + 4 + 2
	if len(body) < hdr {
		return nil, fmt.Errorf("manhattan: move body truncated: %d bytes", len(body))
	}
	m := &MoveAction{id: id, w: w}
	m.avatar = world.ObjectID(binary.LittleEndian.Uint64(body))
	m.origin.X = floatFrom(body[8:])
	m.origin.Y = floatFrom(body[16:])
	m.heading.X = floatFrom(body[24:])
	m.heading.Y = floatFrom(body[32:])
	m.visibleWalls = int(binary.LittleEndian.Uint32(body[40:]))
	n := int(binary.LittleEndian.Uint16(body[44:]))
	if len(body) < hdr+8*n {
		return nil, fmt.Errorf("manhattan: move read set truncated")
	}
	ids := make([]world.ObjectID, n)
	for i := 0; i < n; i++ {
		ids[i] = world.ObjectID(binary.LittleEndian.Uint64(body[hdr+8*i:]))
	}
	m.rs = world.NewIDSet(ids...)
	return m, nil
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFrom(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
