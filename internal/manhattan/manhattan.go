// Package manhattan implements Manhattan People, the synthetic virtual
// world of the paper's evaluation (Section V): avatars moving about a
// rectangular area and colliding with walls or other avatars, changing
// direction by 90° whenever they bump into something. The number of
// walls controls the computational complexity per action; the number of
// participants (and their density) controls the expected number of
// conflicts between actions.
package manhattan

import (
	"math"
	"math/rand"
	"sync"

	"seve/internal/geom"
	"seve/internal/spatial"
	"seve/internal/world"
)

// Config carries the workload parameters of Table I.
type Config struct {
	// Width, Height of the virtual world (1000×1000 by default; the
	// Figure 8 density experiment uses 250×250).
	Width, Height float64
	// NumWalls is the wall-count complexity knob (0–100 000).
	NumWalls int
	// WallLength is each wall's length (10 units, Section V-A2).
	WallLength float64
	// NumAvatars is the number of participants; avatar i is object i and
	// belongs to client i.
	NumAvatars int
	// EffectRange is the move-effect range (10 units): the radius within
	// which a move reads other avatars.
	EffectRange float64
	// Visibility is the avatar visibility (30 units): the radius within
	// which walls are "visible" and counted toward move cost.
	Visibility float64
	// Speed is the maximum avatar speed in units per millisecond; the
	// bound s of Equation (1).
	Speed float64
	// StepMs is the move generation period (300 ms per Table I); each
	// move displaces the avatar by Speed×StepMs.
	StepMs float64
	// CollisionDist is the avatar-avatar bump distance.
	CollisionDist float64
	// AvatarRadius is the avatar-wall bump distance.
	AvatarRadius float64

	// Cost model, calibrated to Section V-A2: "clients required an
	// average of 6.95 ms per move, per 1,000 visible walls" and "the
	// time it took for a machine to evaluate a single move was 7.44 ms"
	// at 100 000 walls.
	BaseCostMs      float64
	PerWallCostMs   float64
	PerAvatarCostMs float64

	// Seed drives wall placement and initial avatar placement.
	Seed int64
}

// DefaultConfig returns the Table I parameterization.
func DefaultConfig() Config {
	return Config{
		Width: 1000, Height: 1000,
		NumWalls:        100_000,
		WallLength:      10,
		NumAvatars:      64,
		EffectRange:     10,
		Visibility:      30,
		Speed:           0.01, // 3 units per 300 ms move
		StepMs:          300,
		CollisionDist:   2,
		AvatarRadius:    1,
		BaseCostMs:      0.5,
		PerWallCostMs:   0.00695,
		PerAvatarCostMs: 0,
		Seed:            1,
	}
}

// World is the immutable workload substrate shared by every simulated
// node: the wall set (static geometry is identical at all replicas, like
// the game client's map data) and the configuration. Mutable state —
// avatar tuples — lives in the protocol stores.
type World struct {
	Cfg    Config
	Bounds geom.Rect
	Walls  *spatial.SegmentIndex

	// visCache memoizes visible-wall counts per visibility-sized grid
	// cell. The count only calibrates per-move cost, so cell-center
	// quantization is exact enough; the cache makes the per-move hot
	// path independent of wall density.
	visMu    sync.Mutex
	visCache map[[2]int32]int
}

// Avatar attribute schema: the high-dimensional tuple of Section III-D.
const (
	AttrX = iota
	AttrY
	AttrDirX
	AttrDirY
	attrCount
)

// NewWorld generates walls and bounds from cfg.
func NewWorld(cfg Config) *World {
	rng := rand.New(rand.NewSource(cfg.Seed))
	bounds := geom.NewRect(cfg.Width, cfg.Height)
	segs := make([]geom.Segment, cfg.NumWalls)
	for i := range segs {
		a := geom.Vec{X: rng.Float64() * cfg.Width, Y: rng.Float64() * cfg.Height}
		ang := rng.Float64() * 2 * math.Pi
		dir := geom.Vec{X: math.Cos(ang), Y: math.Sin(ang)}
		b := bounds.Clamp(a.Add(dir.Scale(cfg.WallLength)))
		segs[i] = geom.Segment{A: a, B: b}
	}
	cell := cfg.Visibility
	if cell <= 0 {
		cell = 30
	}
	return &World{
		Cfg:      cfg,
		Bounds:   bounds,
		Walls:    spatial.NewSegmentIndex(segs, cell),
		visCache: make(map[[2]int32]int),
	}
}

// AvatarID returns the object id of client i's avatar (1-based).
func AvatarID(client int) world.ObjectID { return world.ObjectID(client) }

// InitialState places the avatars. When Spacing > 0 avatars start on a
// grid Spacing units apart (the Figure 8 density setup places them 4
// units apart); otherwise placement is uniform random.
func (w *World) InitialState(spacing float64) *world.State {
	rng := rand.New(rand.NewSource(w.Cfg.Seed + 7))
	st := world.NewState()
	perRow := 1
	if spacing > 0 {
		perRow = int(w.Cfg.Width/spacing) - 1
		if perRow < 1 {
			perRow = 1
		}
	}
	for i := 1; i <= w.Cfg.NumAvatars; i++ {
		var pos geom.Vec
		if spacing > 0 {
			row, col := (i-1)/perRow, (i-1)%perRow
			pos = geom.Vec{X: spacing * float64(col+1), Y: spacing * float64(row+1)}
			pos = w.Bounds.Clamp(pos)
		} else {
			pos = geom.Vec{X: rng.Float64() * w.Cfg.Width, Y: rng.Float64() * w.Cfg.Height}
		}
		ang := rng.Float64() * 2 * math.Pi
		st.Set(AvatarID(i), world.Value{pos.X, pos.Y, math.Cos(ang), math.Sin(ang)})
	}
	return st
}

// InitialStateCrowded places a fraction of the avatars inside the
// lower-left quarter-tile of the world (the crowd) and the rest
// uniformly — the Section II-A zoning stress: "zones collapse if too
// many users crowd into a zone all at once."
func (w *World) InitialStateCrowded(crowdFraction float64) *world.State {
	if crowdFraction < 0 {
		crowdFraction = 0
	}
	if crowdFraction > 1 {
		crowdFraction = 1
	}
	rng := rand.New(rand.NewSource(w.Cfg.Seed + 13))
	st := world.NewState()
	crowd := int(crowdFraction * float64(w.Cfg.NumAvatars))
	for i := 1; i <= w.Cfg.NumAvatars; i++ {
		var pos geom.Vec
		if i <= crowd {
			pos = geom.Vec{X: rng.Float64() * w.Cfg.Width / 4, Y: rng.Float64() * w.Cfg.Height / 4}
		} else {
			pos = geom.Vec{X: rng.Float64() * w.Cfg.Width, Y: rng.Float64() * w.Cfg.Height}
		}
		ang := rng.Float64() * 2 * math.Pi
		st.Set(AvatarID(i), world.Value{pos.X, pos.Y, math.Cos(ang), math.Sin(ang)})
	}
	return st
}

// AvatarPos extracts an avatar's position from its tuple.
func AvatarPos(v world.Value) geom.Vec { return geom.Vec{X: v[AttrX], Y: v[AttrY]} }

// AvatarDir extracts an avatar's heading from its tuple.
func AvatarDir(v world.Value) geom.Vec { return geom.Vec{X: v[AttrDirX], Y: v[AttrDirY]} }

// VisibleWalls counts the walls within visibility of p — the quantity
// the per-move cost model is linear in. The count is quantized to
// visibility-sized grid cells and memoized: it exists solely to
// calibrate compute cost, and avatars re-query the same neighbourhood on
// every 3-unit step.
func (w *World) VisibleWalls(p geom.Vec) int {
	vis := w.Cfg.Visibility
	if vis <= 0 {
		return 0
	}
	key := [2]int32{int32(math.Floor(p.X / vis)), int32(math.Floor(p.Y / vis))}
	w.visMu.Lock()
	if w.visCache == nil {
		w.visCache = make(map[[2]int32]int)
	}
	n, ok := w.visCache[key]
	w.visMu.Unlock()
	if ok {
		return n
	}
	center := geom.Vec{X: (float64(key[0]) + 0.5) * vis, Y: (float64(key[1]) + 0.5) * vis}
	n = w.Walls.CountWithin(center, vis)
	w.visMu.Lock()
	w.visCache[key] = n
	w.visMu.Unlock()
	return n
}

// ExactVisibleWalls counts the walls within visibility of p without
// quantization, for calibration and tests.
func (w *World) ExactVisibleWalls(p geom.Vec) int {
	return w.Walls.CountWithin(p, w.Cfg.Visibility)
}

// AvgVisibleWalls samples the exact visible-wall count on an n×n grid of
// positions, for calibrating PerWallCostMs to a target per-move cost.
func (w *World) AvgVisibleWalls(n int) float64 {
	if n < 1 {
		n = 1
	}
	sum := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := geom.Vec{
				X: (float64(i) + 0.5) * w.Cfg.Width / float64(n),
				Y: (float64(j) + 0.5) * w.Cfg.Height / float64(n),
			}
			sum += w.ExactVisibleWalls(p)
		}
	}
	return float64(sum) / float64(n*n)
}

// MoveCostMs is the virtual compute cost of evaluating one move that
// sees the given numbers of walls and avatars. It substitutes for the
// paper's deliberately trig-heavy collision code: the protocol
// comparison depends only on how many milliseconds a move costs at
// whichever node evaluates it, so the cost is charged to the simulated
// processor instead of being burned on real trigonometry.
func (w *World) MoveCostMs(visibleWalls, visibleAvatars int) float64 {
	return w.Cfg.BaseCostMs +
		w.Cfg.PerWallCostMs*float64(visibleWalls) +
		w.Cfg.PerAvatarCostMs*float64(visibleAvatars)
}

// NearbyAvatars returns the ids of avatars (other than self) whose
// position in view lies within r of p. A linear scan over the avatar
// universe: avatar count per experiment is ≤ a few thousand and views
// differ per client, so an index would have to be rebuilt per call.
func (w *World) NearbyAvatars(view world.Reader, self world.ObjectID, p geom.Vec, r float64) []world.ObjectID {
	var out []world.ObjectID
	for i := 1; i <= w.Cfg.NumAvatars; i++ {
		id := AvatarID(i)
		if id == self {
			continue
		}
		v, ok := view.Get(id)
		if !ok {
			continue
		}
		if AvatarPos(v).Dist2(p) <= r*r {
			out = append(out, id)
		}
	}
	return out
}

// VisibleAvatarCount reports how many other avatars are within
// visibility — the statistic the paper reports as 6.87 on average for
// the Figure 6 setup and 14.01 for Figure 10.
func (w *World) VisibleAvatarCount(view world.Reader, self world.ObjectID) int {
	v, ok := view.Get(self)
	if !ok {
		return 0
	}
	return len(w.NearbyAvatars(view, self, AvatarPos(v), w.Cfg.Visibility))
}
