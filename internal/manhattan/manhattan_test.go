package manhattan

import (
	"math"
	"testing"
	"testing/quick"

	"seve/internal/action"
	"seve/internal/geom"
	"seve/internal/spatial"
	"seve/internal/world"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = 200, 200
	cfg.NumWalls = 100
	cfg.NumAvatars = 8
	cfg.Seed = 42
	return cfg
}

func TestNewWorldGeneratesWalls(t *testing.T) {
	w := NewWorld(smallConfig())
	if w.Walls.Len() != 100 {
		t.Fatalf("walls = %d", w.Walls.Len())
	}
	for i := 0; i < w.Walls.Len(); i++ {
		s := w.Walls.Segment(i)
		if !w.Bounds.Contains(s.A) || !w.Bounds.Contains(s.B) {
			t.Fatalf("wall %d out of bounds: %+v", i, s)
		}
		if s.Len() > w.Cfg.WallLength+1e-9 {
			t.Fatalf("wall %d too long: %v", i, s.Len())
		}
	}
}

func TestWorldGenerationDeterministic(t *testing.T) {
	a := NewWorld(smallConfig())
	b := NewWorld(smallConfig())
	if !a.InitialState(0).Equal(b.InitialState(0)) {
		t.Fatal("same seed produced different initial states")
	}
	for i := 0; i < a.Walls.Len(); i++ {
		if a.Walls.Segment(i) != b.Walls.Segment(i) {
			t.Fatal("same seed produced different walls")
		}
	}
}

func TestInitialStateRandomPlacement(t *testing.T) {
	w := NewWorld(smallConfig())
	st := w.InitialState(0)
	if st.Len() != 8 {
		t.Fatalf("avatars = %d", st.Len())
	}
	for i := 1; i <= 8; i++ {
		v, ok := st.Get(AvatarID(i))
		if !ok || len(v) != attrCount {
			t.Fatalf("avatar %d tuple = %v", i, v)
		}
		if !w.Bounds.Contains(AvatarPos(v)) {
			t.Fatalf("avatar %d out of bounds", i)
		}
		if d := AvatarDir(v).Len(); math.Abs(d-1) > 1e-9 {
			t.Fatalf("avatar %d heading not unit: %v", i, d)
		}
	}
}

func TestInitialStateGridPlacement(t *testing.T) {
	cfg := smallConfig()
	cfg.NumAvatars = 9
	w := NewWorld(cfg)
	st := w.InitialState(4)
	// First avatar at (4,4), second at (8,4), … 4 units apart.
	v1, _ := st.Get(AvatarID(1))
	v2, _ := st.Get(AvatarID(2))
	if AvatarPos(v1).Dist(AvatarPos(v2)) != 4 {
		t.Fatalf("grid spacing = %v", AvatarPos(v1).Dist(AvatarPos(v2)))
	}
}

func TestMoveCostModel(t *testing.T) {
	w := NewWorld(smallConfig())
	// Paper calibration: ~1000 visible walls → ~6.95 ms + base.
	got := w.MoveCostMs(1000, 7)
	want := w.Cfg.BaseCostMs + 6.95
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("MoveCostMs(1000) = %v, want %v", got, want)
	}
}

func TestNewMoveReadSet(t *testing.T) {
	cfg := smallConfig()
	cfg.NumWalls = 0
	w := NewWorld(cfg)
	st := world.NewState()
	// Avatar 1 at origin; avatar 2 within effect range (10); avatar 3
	// outside it.
	st.Set(AvatarID(1), world.Value{0, 0, 1, 0})
	st.Set(AvatarID(2), world.Value{5, 0, 1, 0})
	st.Set(AvatarID(3), world.Value{50, 0, 1, 0})
	for i := 4; i <= cfg.NumAvatars; i++ {
		st.Set(AvatarID(i), world.Value{150, 150, 1, 0})
	}
	m, err := w.NewMove(action.ID{Client: 1, Seq: 1}, AvatarID(1), st)
	if err != nil {
		t.Fatal(err)
	}
	if !m.ReadSet().Equal(world.NewIDSet(1, 2)) {
		t.Fatalf("ReadSet = %v, want [1 2]", m.ReadSet())
	}
	if !m.WriteSet().Equal(world.NewIDSet(1)) {
		t.Fatalf("WriteSet = %v", m.WriteSet())
	}
	if m.Influence().Center != (geom.Vec{X: 0, Y: 0}) || m.Influence().R != cfg.EffectRange {
		t.Fatalf("Influence = %+v", m.Influence())
	}
}

func TestNewMoveUnknownAvatar(t *testing.T) {
	w := NewWorld(smallConfig())
	if _, err := w.NewMove(action.ID{}, 99, world.NewState()); err == nil {
		t.Fatal("move for unknown avatar created")
	}
}

func TestMoveAdvances(t *testing.T) {
	cfg := smallConfig()
	cfg.NumWalls = 0
	w := NewWorld(cfg)
	st := world.NewState()
	st.Set(AvatarID(1), world.Value{100, 100, 1, 0})
	m, _ := w.NewMove(action.ID{Client: 1, Seq: 1}, AvatarID(1), st)
	res := action.Eval(m, world.StateView{S: st})
	if !res.OK || len(res.Writes) != 1 {
		t.Fatalf("result = %+v", res)
	}
	nv := res.Writes[0].Val
	// 0.01 units/ms × 300 ms = 3 units along +x.
	if nv[AttrX] != 103 || nv[AttrY] != 100 {
		t.Fatalf("new pos = (%v, %v), want (103, 100)", nv[AttrX], nv[AttrY])
	}
}

func TestMoveBouncesOffBounds(t *testing.T) {
	cfg := smallConfig()
	cfg.NumWalls = 0
	w := NewWorld(cfg)
	st := world.NewState()
	// Heading straight at the right edge from 1 unit away.
	st.Set(AvatarID(1), world.Value{199, 100, 1, 0})
	m, _ := w.NewMove(action.ID{Client: 1, Seq: 1}, AvatarID(1), st)
	res := action.Eval(m, world.StateView{S: st})
	nv := res.Writes[0].Val
	if nv[AttrX] != 199 || nv[AttrY] != 100 {
		t.Fatalf("bounced avatar moved: (%v, %v)", nv[AttrX], nv[AttrY])
	}
	// Direction rotated 90°: (1,0) → (0,1).
	if math.Abs(nv[AttrDirX]) > 1e-9 || math.Abs(nv[AttrDirY]-1) > 1e-9 {
		t.Fatalf("direction after bounce = (%v, %v)", nv[AttrDirX], nv[AttrDirY])
	}
}

func TestMoveBouncesOffAvatar(t *testing.T) {
	cfg := smallConfig()
	cfg.NumWalls = 0
	w := NewWorld(cfg)
	st := world.NewState()
	st.Set(AvatarID(1), world.Value{100, 100, 1, 0})
	st.Set(AvatarID(2), world.Value{103.5, 100, 0, 1}) // in the path (3 + collision 2)
	m, _ := w.NewMove(action.ID{Client: 1, Seq: 1}, AvatarID(1), st)
	res := action.Eval(m, world.StateView{S: st})
	nv := res.Writes[0].Val
	if nv[AttrX] != 100 {
		t.Fatalf("avatar advanced through collision: x = %v", nv[AttrX])
	}
}

func TestMoveBouncesOffWall(t *testing.T) {
	cfg := smallConfig()
	cfg.NumWalls = 0
	w := NewWorld(cfg)
	// Insert a vertical wall right in front of the avatar by rebuilding
	// the world with one deterministic wall: easier to place manually.
	wallWorld := &World{Cfg: cfg, Bounds: w.Bounds}
	wallWorld.Walls = spatial.NewSegmentIndex([]geom.Segment{{A: geom.Vec{X: 103, Y: 95}, B: geom.Vec{X: 103, Y: 105}}}, cfg.Visibility)
	st := world.NewState()
	st.Set(AvatarID(1), world.Value{100, 100, 1, 0})
	m, _ := wallWorld.NewMove(action.ID{Client: 1, Seq: 1}, AvatarID(1), st)
	if m.VisibleWalls() != 1 {
		t.Fatalf("visible walls = %d", m.VisibleWalls())
	}
	res := action.Eval(m, world.StateView{S: st})
	nv := res.Writes[0].Val
	if nv[AttrX] != 100 {
		t.Fatalf("avatar advanced through wall: x = %v", nv[AttrX])
	}
}

func TestMoveAbortsWithoutSelf(t *testing.T) {
	w := NewWorld(smallConfig())
	st := w.InitialState(0)
	m, _ := w.NewMove(action.ID{Client: 1, Seq: 1}, AvatarID(1), st)
	empty := world.NewState()
	res := action.Eval(m, world.StateView{S: empty})
	if res.OK {
		t.Fatal("move committed without its avatar")
	}
}

func TestMoveDeterministic(t *testing.T) {
	w := NewWorld(smallConfig())
	st := w.InitialState(0)
	m, _ := w.NewMove(action.ID{Client: 1, Seq: 1}, AvatarID(1), st)
	r1 := action.Eval(m, world.StateView{S: st})
	r2 := action.Eval(m, world.StateView{S: st})
	if !r1.Equal(r2) {
		t.Fatal("move not deterministic")
	}
}

func TestMoveWireRoundTrip(t *testing.T) {
	w := NewWorld(smallConfig())
	st := w.InitialState(4)
	m, _ := w.NewMove(action.ID{Client: 3, Seq: 9}, AvatarID(3), st)
	body := m.MarshalBody()
	got, err := UnmarshalMove(w, m.ID(), body)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != m.ID() || got.Avatar() != m.Avatar() {
		t.Fatalf("identity lost: %+v", got)
	}
	if !got.ReadSet().Equal(m.ReadSet()) {
		t.Fatalf("read set = %v, want %v", got.ReadSet(), m.ReadSet())
	}
	if got.VisibleWalls() != m.VisibleWalls() {
		t.Fatalf("visible walls = %d, want %d", got.VisibleWalls(), m.VisibleWalls())
	}
	if got.Influence() != m.Influence() {
		t.Fatalf("influence = %+v", got.Influence())
	}
	// The decoded action must evaluate identically.
	r1 := action.Eval(m, world.StateView{S: st})
	r2 := action.Eval(got, world.StateView{S: st})
	if !r1.Equal(r2) {
		t.Fatal("decoded move evaluates differently")
	}
}

func TestMoveUnmarshalErrors(t *testing.T) {
	w := NewWorld(smallConfig())
	if _, err := UnmarshalMove(w, action.ID{}, []byte{1, 2, 3}); err == nil {
		t.Fatal("short body accepted")
	}
	st := w.InitialState(4)
	m, _ := w.NewMove(action.ID{Client: 1, Seq: 1}, AvatarID(1), st)
	body := m.MarshalBody()
	if _, err := UnmarshalMove(w, action.ID{}, body[:len(body)-4]); err == nil {
		t.Fatal("truncated read set accepted")
	}
}

// TestMoveStaysInBoundsProperty: avatars never escape the world no
// matter how many moves execute.
func TestMoveStaysInBoundsProperty(t *testing.T) {
	cfg := smallConfig()
	cfg.NumAvatars = 4
	w := NewWorld(cfg)
	f := func(seed int64) bool {
		st := w.InitialState(0)
		seq := uint32(0)
		for step := 0; step < 50; step++ {
			for i := 1; i <= cfg.NumAvatars; i++ {
				seq++
				m, err := w.NewMove(action.ID{Client: action.ClientID(i), Seq: seq}, AvatarID(i), st)
				if err != nil {
					return false
				}
				res := action.Eval(m, world.StateView{S: st})
				if !res.OK {
					return false
				}
				for _, wr := range res.Writes {
					st.Set(wr.ID, wr.Val)
				}
			}
		}
		for i := 1; i <= cfg.NumAvatars; i++ {
			v, _ := st.Get(AvatarID(i))
			if !w.Bounds.Contains(AvatarPos(v)) {
				return false
			}
			if math.Abs(AvatarDir(v).Len()-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestVisibleAvatarCount(t *testing.T) {
	cfg := smallConfig()
	cfg.NumAvatars = 3
	w := NewWorld(cfg)
	st := world.NewState()
	st.Set(AvatarID(1), world.Value{0, 0, 1, 0})
	st.Set(AvatarID(2), world.Value{20, 0, 1, 0})  // within visibility 30
	st.Set(AvatarID(3), world.Value{100, 0, 1, 0}) // outside
	if got := w.VisibleAvatarCount(st, AvatarID(1)); got != 1 {
		t.Fatalf("VisibleAvatarCount = %d, want 1", got)
	}
	if got := w.VisibleAvatarCount(st, AvatarID(99)); got != 0 {
		t.Fatalf("count for unknown avatar = %d", got)
	}
}

func TestInitialStateCrowded(t *testing.T) {
	cfg := smallConfig()
	cfg.NumAvatars = 40
	w := NewWorld(cfg)
	st := w.InitialStateCrowded(0.5)
	inCorner := 0
	for i := 1; i <= cfg.NumAvatars; i++ {
		v, ok := st.Get(AvatarID(i))
		if !ok {
			t.Fatalf("avatar %d missing", i)
		}
		p := AvatarPos(v)
		if !w.Bounds.Contains(p) {
			t.Fatalf("avatar %d out of bounds", i)
		}
		if p.X <= cfg.Width/4 && p.Y <= cfg.Height/4 {
			inCorner++
		}
	}
	// Half are forced into the corner; a few uniform ones land there too.
	if inCorner < 20 {
		t.Fatalf("only %d avatars in the crowd corner, want ≥ 20", inCorner)
	}
	// Clamping of the fraction.
	if got := w.InitialStateCrowded(2.0); got.Len() != cfg.NumAvatars {
		t.Fatal("clamped fraction broke placement")
	}
	if got := w.InitialStateCrowded(-1); got.Len() != cfg.NumAvatars {
		t.Fatal("negative fraction broke placement")
	}
}
