package netsim

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/shard"
	"seve/internal/sim"
	"seve/internal/wire"
	"seve/internal/world"
)

// The churn swarm: a deterministic fault-injection harness for the
// session resume protocol. A sharded SEVE server and a fleet of clients
// run over the simulated network; scripted and seeded-random
// disconnects kill clients mid-flight (losing in-flight batches,
// submissions, and completions with the connection), reconnects replay
// the Resume/CatchUp handshake over the wire, and at the end the
// Theorem 1 oracle checks that every client's ζCS is serial-replay
// consistent, every action committed exactly once, and — when the
// engine is a shard router — that replaying the effective log through
// the single-lane engine reproduces every reply byte for byte. Failing
// subtests carry the shard count and seed in their name.

// churnAction mirrors core's test action: read rs, sum first
// attributes, write sum+delta into every object of ws ⊆ rs.
type churnAction struct {
	id     action.ID
	rs, ws world.IDSet
	delta  float64
}

const kindChurn action.Kind = 2000

func (a *churnAction) ID() action.ID         { return a.id }
func (a *churnAction) Kind() action.Kind     { return kindChurn }
func (a *churnAction) ReadSet() world.IDSet  { return a.rs }
func (a *churnAction) WriteSet() world.IDSet { return a.ws }

func (a *churnAction) Apply(tx *world.Tx) bool {
	sum := 0.0
	for _, id := range a.rs {
		v, ok := tx.Read(id)
		if !ok {
			return false
		}
		if len(v) > 0 {
			sum += v[0]
		}
	}
	for _, id := range a.ws {
		tx.Write(id, world.Value{sum + a.delta})
	}
	return true
}

func (a *churnAction) MarshalBody() []byte {
	return binary.LittleEndian.AppendUint64(nil, math.Float64bits(a.delta))
}

// churnMsg stamps a client→server message with the sender's connection
// generation: the server-side glue drops messages from generations that
// died, modeling the uplink half of a broken connection (RemoveNode
// models the downlink half).
type churnMsg struct {
	gen int
	msg wire.Msg
}

func (m churnMsg) WireSize() int { return m.msg.WireSize() }

type churnClient struct {
	id        action.ClientID
	node      NodeID
	engine    *core.Client
	connected bool
	// resuming marks the Resume → CatchUp handshake window. The real
	// transport sends nothing new until the verdict lands; a fresh
	// submission racing ahead of the handshake's re-submissions would
	// advance the server's dedup floor past them and swallow the
	// backlog as duplicates.
	resuming  bool
	gen       int
	commits   []core.Commit
	submitted int
}

type churnHarness struct {
	t       *testing.T
	k       *sim.Kernel
	net     *Network
	eng     core.Engine
	resumer core.Resumer
	clients map[action.ClientID]*churnClient
	order   []action.ClientID
	init    *world.State
	cfg     core.Config

	violations []string
	staleMsgs  int
	// trace, when set, observes every message a client is about to
	// process (debugging aid for the durable variants).
	trace   func(cl *churnClient, msg wire.Msg)
	traceUp func(cl *churnClient, msg wire.Msg, stale bool)
	// tamper, when set, rewrites a client's uplink messages after the
	// stale-generation filter — the cheat-injection seam (cheat_test.go).
	// Returning nil swallows the message.
	tamper func(cl *churnClient, msg wire.Msg) wire.Msg
	// bytes collects the per-client reply stream for the replay
	// differential.
	bytes map[action.ClientID][]byte
}

// churnConfig is the engine configuration every churn harness runs.
func churnConfig(shards int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeIncomplete
	cfg.Strict = true
	cfg.RecordHistory = true
	cfg.Threshold = 1e9
	cfg.ResumeWindow = 2 // tiny on purpose: bursts overflow it into snapshots
	cfg.Shards = shards
	cfg.ShardCellSize = 100
	return cfg
}

// churnInit seeds object i with value float64(i) for i in 1..nObjects.
func churnInit(nObjects int) *world.State {
	init := world.NewState()
	for i := 1; i <= nObjects; i++ {
		init.Set(world.ObjectID(i), world.Value{float64(i)})
	}
	return init
}

func newChurnHarness(t *testing.T, shards, nClients, nObjects int) *churnHarness {
	return newJournaledChurnHarness(t, shards, nClients, nObjects, nil)
}

// newJournaledChurnHarness attaches the durable feed before any client
// registers, so session opens are journaled from the very first mint —
// the order the transport boot path guarantees.
func newJournaledChurnHarness(t *testing.T, shards, nClients, nObjects int, j core.Journal) *churnHarness {
	return newChurnHarnessCfg(t, churnConfig(shards), nClients, nObjects, j)
}

// newChurnHarnessCfg builds the harness around an explicit engine
// configuration (the cheat matrix tightens bounds and audit rates).
func newChurnHarnessCfg(t *testing.T, cfg core.Config, nClients, nObjects int, j core.Journal) *churnHarness {
	// Clients run with GC off so the per-version oracle check stays
	// exact: PruneBelow collapses a surviving stale version to the prune
	// position, deliberately re-stamping it (the Incomplete World Model
	// allows held-but-unneeded versions to lag the serial replay). GC is
	// client-local — it changes no wire traffic — so disabling it costs
	// the harness nothing.
	clientCfg := cfg
	clientCfg.DisableGC = true

	init := churnInit(nObjects)

	k := sim.NewKernel()
	h := &churnHarness{
		t:       t,
		k:       k,
		net:     New(k, LinkConfig{Latency: 5, BandwidthBps: 0}),
		eng:     shard.NewEngine(cfg, init),
		clients: make(map[action.ClientID]*churnClient),
		init:    init,
		cfg:     cfg,
		bytes:   make(map[action.ClientID][]byte),
	}
	var ok bool
	h.resumer, ok = h.eng.(core.Resumer)
	if !ok {
		t.Fatal("engine does not implement core.Resumer")
	}
	if j != nil {
		h.eng.SetJournal(j)
	}

	h.net.AddNode(ServerNode, func(from NodeID, msg Message) {
		cm := msg.(churnMsg)
		cid := action.ClientID(from)
		cl := h.clients[cid]
		if h.traceUp != nil {
			h.traceUp(cl, cm.msg, cm.gen != cl.gen)
		}
		if cm.gen != cl.gen {
			h.staleMsgs++ // uplink traffic from a dead connection
			return
		}
		if h.tamper != nil {
			if cm.msg = h.tamper(cl, cm.msg); cm.msg == nil {
				return
			}
		}
		now := float64(h.k.Now())
		var out core.ServerOutput
		if rm, isResume := cm.msg.(*wire.Resume); isResume {
			var rcid action.ClientID
			rcid, out = h.resumer.HandleResume(rm, now)
			if rcid != cid {
				h.violations = append(h.violations,
					fmt.Sprintf("resume for client %d resolved to %d", cid, rcid))
				return
			}
		} else {
			out = h.eng.HandleMsg(cid, cm.msg, now)
		}
		h.dispatch(out)
	})

	for i := 1; i <= nClients; i++ {
		cid := action.ClientID(i)
		cl := &churnClient{id: cid, node: NodeID(i), engine: core.NewClient(cid, clientCfg, init), connected: true}
		h.clients[cid] = cl
		h.order = append(h.order, cid)
		h.eng.RegisterClient(cid, 0)
		h.attach(cl)
	}
	return h
}

// dispatch forwards server replies over the network; anything addressed
// to a disconnected client dies on the (removed) downlink.
func (h *churnHarness) dispatch(out core.ServerOutput) {
	for _, rep := range out.Replies {
		if rep.To == 0 {
			continue
		}
		h.bytes[rep.To] = wire.AppendFrame(h.bytes[rep.To], rep.Msg)
		h.net.Send(ServerNode, NodeID(rep.To), rep.Msg)
	}
}

// attach registers the client's node handler for its current connection
// generation.
func (h *churnHarness) attach(cl *churnClient) {
	gen := cl.gen
	h.net.AddNode(cl.node, func(from NodeID, msg Message) {
		if cl.gen != gen || !cl.connected {
			return
		}
		if h.trace != nil {
			h.trace(cl, msg.(wire.Msg))
		}
		out := cl.engine.HandleMsg(msg.(wire.Msg))
		if _, isVerdict := msg.(*wire.CatchUp); isVerdict {
			// Handshake complete: the backlog re-submissions are in out
			// and will precede anything submitted from here on.
			cl.resuming = false
		}
		h.absorb(cl, out)
	})
}

func (h *churnHarness) absorb(cl *churnClient, out core.ClientOutput) {
	// A boot fence withdraws commits whose positions the crash rolled
	// back; the engine re-submits those actions and re-reports them at
	// their re-issued positions.
	for _, rv := range out.Revoked {
		for i := len(cl.commits) - 1; i >= 0; i-- {
			if cl.commits[i].ActID == rv.ActID && cl.commits[i].Seq == rv.Seq {
				cl.commits = append(cl.commits[:i], cl.commits[i+1:]...)
				break
			}
		}
	}
	cl.commits = append(cl.commits, out.Commits...)
	h.violations = append(h.violations, out.Violations...)
	for _, m := range out.ToServer {
		h.send(cl, m)
	}
}

func (h *churnHarness) send(cl *churnClient, m wire.Msg) {
	h.net.Send(cl.node, ServerNode, churnMsg{gen: cl.gen, msg: m})
}

// submit mints a random action. A disconnected client still queues it
// optimistically — the resume handshake re-submits the backlog.
func (h *churnHarness) submit(cl *churnClient, rng *rand.Rand, nObjects int) {
	a := world.ObjectID(rng.Intn(nObjects) + 1)
	b := world.ObjectID(rng.Intn(nObjects) + 1)
	rs := world.IDSet{a}
	if b != a {
		if b < a {
			rs = world.IDSet{b, a}
		} else {
			rs = world.IDSet{a, b}
		}
	}
	act := &churnAction{rs: rs, ws: world.IDSet{a}, delta: float64(rng.Intn(100))}
	act.id = cl.engine.NextActionID()
	msg, _ := cl.engine.Submit(act)
	cl.submitted++
	if cl.connected && !cl.resuming {
		h.send(cl, msg)
	}
}

// disconnect models the transport's leave path: the downlink node
// disappears (in-flight batches die), the uplink generation is burned
// (in-flight submissions and completions die), and the engine
// unregisters the client.
func (h *churnHarness) disconnect(cl *churnClient) {
	if !cl.connected {
		return
	}
	cl.connected = false
	cl.gen++
	h.net.RemoveNode(cl.node)
	h.eng.UnregisterClient(cl.id)
}

// reconnect re-attaches the node and replays the Resume handshake over
// the wire.
func (h *churnHarness) reconnect(cl *churnClient) {
	if cl.connected {
		return
	}
	cl.connected = true
	cl.resuming = true
	h.attach(cl)
	tok := h.resumer.SessionToken(cl.id)
	if tok == 0 {
		h.t.Fatalf("client %d has no session token", cl.id)
	}
	h.send(cl, &wire.Resume{Token: tok, LastBatchSeq: cl.engine.LastAppliedBatch()})
}

func (h *churnHarness) flush() {
	if f, ok := h.eng.(core.Flusher); ok {
		h.dispatch(f.Flush())
	}
}

// runChurn plays the scripted + seeded-random fault schedule and drains.
func runChurn(t *testing.T, shards int, seed int64) *churnHarness {
	const nClients, nObjects = 5, 12
	h := newChurnHarness(t, shards, nClients, nObjects)
	playChurn(h, seed, nObjects)
	return h
}

// playChurn schedules the standard churn script on an already-built
// harness and drains the kernel. Split from runChurn so the durable
// variants can attach a journal to the engine first and replay the
// byte-identical schedule.
func playChurn(h *churnHarness, seed int64, nObjects int) {
	rng := rand.New(rand.NewSource(seed))
	k := h.k

	// Periodic epoch flush, like the TCP loop's queue-dry flush.
	const horizon = 1500
	for ms := sim.Time(1); ms < horizon; ms += 10 {
		ms := ms
		k.At(ms, h.flush)
	}

	// Random phase: submissions everywhere, churn on clients 3..N
	// (clients 1 and 2 are reserved for the scripted faults below).
	for step := 0; step < 30; step++ {
		at := sim.Time(step * 10)
		k.At(at, func() {
			cl := h.clients[h.order[rng.Intn(len(h.order))]]
			if cl.connected || rng.Float64() < 0.3 {
				h.submit(cl, rng, nObjects)
			}
			if rng.Float64() < 0.15 {
				victim := h.clients[h.order[2+rng.Intn(len(h.order)-2)]]
				if victim.connected {
					h.disconnect(victim)
					back := at + sim.Time(30+rng.Intn(10)*10)
					k.At(back, func() { h.reconnect(victim) })
				}
			}
		})
	}

	// Scripted snapshot fault: client 2 bursts past the ResumeWindow,
	// then the connection dies with every reply still in flight. The
	// submissions arrive at t=325 and each draws its own closure batch,
	// so four batches depart at 325 and land at 330 — into a downlink
	// that died at 327. The gap (4 batches > window 2) forces the
	// blind-write snapshot path.
	c2 := h.clients[2]
	k.At(320, func() {
		for i := 0; i < 4; i++ {
			h.submit(c2, rng, nObjects)
		}
	})
	k.At(327, func() { h.disconnect(c2) })
	k.At(420, func() { h.reconnect(c2) })

	// Scripted suffix fault: client 1 drops during a quiet window (all
	// its batches applied), so the resume is a pure suffix replay.
	k.At(500, func() { h.disconnect(h.clients[1]) })
	k.At(540, func() { h.reconnect(h.clients[1]) })

	// Second random phase after the scripted faults.
	for step := 0; step < 15; step++ {
		at := sim.Time(560 + step*10)
		k.At(at, func() {
			cl := h.clients[h.order[rng.Intn(len(h.order))]]
			if cl.connected || rng.Float64() < 0.3 {
				h.submit(cl, rng, nObjects)
			}
		})
	}

	// Everyone comes home; the tail flushes drain the exchanges.
	k.At(720, func() {
		for _, cid := range h.order {
			h.reconnect(h.clients[cid])
		}
	})

	k.Run()
}

// verifyChurn runs the Theorem 1 oracle over a drained harness.
func verifyChurn(t *testing.T, h *churnHarness) {
	if len(h.violations) > 0 {
		t.Fatalf("protocol violations (%d), first: %s", len(h.violations), h.violations[0])
	}

	// The serialized history must be contiguous and fully installed.
	hist := h.eng.History()
	for i, env := range hist {
		if env.Seq != uint64(i+1) {
			t.Fatalf("history gap at %d: seq %d", i, env.Seq)
		}
	}
	if got := h.eng.Installed(); got != uint64(len(hist)) {
		t.Fatalf("installed %d of %d actions", got, len(hist))
	}
	if got := h.eng.QueueLen(); got != 0 {
		t.Fatalf("server queue still holds %d actions", got)
	}

	// ζS equals the omniscient serial replay.
	st := h.init.Clone()
	oracleRes := make(map[uint64]action.Result, len(hist))
	for _, env := range hist {
		res := action.Eval(env.Act, world.StateView{S: st})
		for _, w := range res.Writes {
			st.Set(w.ID, w.Val)
		}
		oracleRes[env.Seq] = res
	}
	if !h.eng.Authoritative().Equal(st) {
		t.Fatal("authoritative state ζS diverged from serial oracle")
	}

	// Per-client: every submitted action committed exactly once with the
	// oracle's result, no duplicate or missing serials, queues empty,
	// and ζCS serial-replay consistent per held version.
	for _, cid := range h.order {
		cl := h.clients[cid]
		if got := cl.engine.QueueLen(); got != 0 {
			t.Fatalf("client %d still has %d in-flight actions", cid, got)
		}
		if len(cl.commits) != cl.submitted {
			t.Fatalf("client %d committed %d of %d submissions", cid, len(cl.commits), cl.submitted)
		}
		seen := make(map[uint64]bool, len(cl.commits))
		for _, c := range cl.commits {
			if seen[c.Seq] {
				t.Fatalf("client %d committed serial %d twice", cid, c.Seq)
			}
			seen[c.Seq] = true
			want, ok := oracleRes[c.Seq]
			if !ok {
				t.Fatalf("client %d commit at seq %d not in history", cid, c.Seq)
			}
			if !c.Res.Equal(want) {
				t.Fatalf("client %d stable result at seq %d diverged from oracle", cid, c.Seq)
			}
		}
		cs := cl.engine.Stable()
		for _, id := range cs.IDs() {
			val, seq, ok := cs.Latest(id)
			if !ok {
				continue
			}
			asOf := h.init.Clone()
			for _, env := range hist {
				if env.Seq > seq {
					break
				}
				res := action.Eval(env.Act, world.StateView{S: asOf})
				for _, w := range res.Writes {
					asOf.Set(w.ID, w.Val)
				}
			}
			want, _ := asOf.Get(id)
			if !val.Equal(want) {
				t.Fatalf("client %d ζCS(%d)=%v at seq %d diverges from serial replay %v",
					cid, id, val, seq, want)
			}
		}
	}

	// Both repair paths must have fired: the scripted burst forces a
	// snapshot past the window, the quiet-window drop a suffix replay.
	ss := h.eng.Metrics()
	if ss.ResumesSnapshot == 0 {
		t.Errorf("no snapshot-fallback resume despite the scripted over-window burst: %+v", ss)
	}
	if ss.ResumesSuffix == 0 {
		t.Errorf("no suffix-replay resume despite the scripted quiet-window drop: %+v", ss)
	}
	if ss.ResumesRejected != 0 {
		t.Errorf("%d resumes rejected with valid tokens", ss.ResumesRejected)
	}

	// Zero false positives: the integrity layer runs armed at the default
	// audit rate through all of this churn — resume re-sends, duplicate
	// completions, stale uplink traffic — and an honest fleet must come
	// out with a spotless ledger (AuditsRun alone may move).
	if ss.QuarantinedClients != 0 || ss.QuarantineRejected != 0 {
		t.Errorf("honest churn quarantined: clients=%d rejected=%d", ss.QuarantinedClients, ss.QuarantineRejected)
	}
	if ss.ContractBreaches != 0 || ss.ForgedCompletions != 0 || ss.AuditDivergences != 0 || ss.RepairedResults != 0 {
		t.Errorf("honest churn tripped the validator/auditor: breaches=%d forged=%d divergences=%d repaired=%d",
			ss.ContractBreaches, ss.ForgedCompletions, ss.AuditDivergences, ss.RepairedResults)
	}
	if ss.RateLimited != 0 || ss.WriteSetViolations != 0 || ss.RadiusViolations != 0 || ss.OrphanCompletions != 0 {
		t.Errorf("honest churn tripped the bounds: rate=%d ws=%d radius=%d orphans=%d",
			ss.RateLimited, ss.WriteSetViolations, ss.RadiusViolations, ss.OrphanCompletions)
	}
}

// verifyReplayDifferential replays the router's effective log through
// the single-lane engine and requires identical history and identical
// per-client reply bytes — resume handling included.
func verifyReplayDifferential(t *testing.T, h *churnHarness) {
	r, ok := h.eng.(*shard.Router)
	if !ok {
		return // shards=1 already runs the single lane
	}
	cfg := h.cfg
	cfg.DisableSharding = true

	single := shard.NewEngine(cfg, h.init)
	outs := shard.Replay(single, r.EffectiveLog())
	singleBytes := make(map[action.ClientID][]byte)
	for _, out := range outs {
		for _, rep := range out.Replies {
			if rep.To == 0 {
				continue
			}
			singleBytes[rep.To] = wire.AppendFrame(singleBytes[rep.To], rep.Msg)
		}
	}

	ha, hb := r.History(), single.History()
	if len(ha) != len(hb) {
		t.Fatalf("replay history length %d, router %d", len(hb), len(ha))
	}
	for i := range ha {
		if ha[i].Seq != hb[i].Seq || ha[i].Act.ID() != hb[i].Act.ID() {
			t.Fatalf("replay history diverges at %d", i)
		}
	}
	if !r.Authoritative().Equal(single.Authoritative()) {
		t.Fatal("replay ζS diverged from router ζS")
	}
	for _, cid := range h.order {
		if string(h.bytes[cid]) != string(singleBytes[cid]) {
			t.Fatalf("client %d reply stream diverged between router and single-lane replay (%d vs %d bytes)",
				cid, len(h.bytes[cid]), len(singleBytes[cid]))
		}
	}
	sm := single.Metrics()
	rm := r.Metrics()
	if sm.ResumesSuffix != rm.ResumesSuffix || sm.ResumesSnapshot != rm.ResumesSnapshot {
		t.Fatalf("resume counters diverged: router %d/%d, replay %d/%d",
			rm.ResumesSuffix, rm.ResumesSnapshot, sm.ResumesSuffix, sm.ResumesSnapshot)
	}
}

// TestChurnSwarm is the fault-injection matrix: shard counts × seeds.
// The subtest name carries the failing configuration.
func TestChurnSwarm(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		for seed := int64(1); seed <= 3; seed++ {
			name := fmt.Sprintf("shards=%d/seed=%d", shards, seed)
			t.Run(name, func(t *testing.T) {
				t.Logf("churn swarm config: shards=%d seed=%d", shards, seed)
				h := runChurn(t, shards, seed)
				verifyChurn(t, h)
				verifyReplayDifferential(t, h)
			})
		}
	}
}

// TestChurnDeterminism: the same seed must reproduce the identical
// history and reply streams — the property that makes a failing seed a
// reproducible bug report.
func TestChurnDeterminism(t *testing.T) {
	a := runChurn(t, 4, 7)
	b := runChurn(t, 4, 7)
	ha, hb := a.eng.History(), b.eng.History()
	if len(ha) != len(hb) {
		t.Fatalf("history lengths differ across identical runs: %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i].Seq != hb[i].Seq || ha[i].Act.ID() != hb[i].Act.ID() {
			t.Fatalf("histories diverge at %d across identical runs", i)
		}
	}
	for _, cid := range a.order {
		if string(a.bytes[cid]) != string(b.bytes[cid]) {
			t.Fatalf("client %d reply stream differs across identical runs", cid)
		}
	}
}
