package netsim

import (
	"testing"

	"seve/internal/sim"
)

// fakeMsg is a payload with a fixed wire size.
type fakeMsg struct {
	size int
	tag  int
}

func (m fakeMsg) WireSize() int { return m.size }

func TestSendLatencyOnly(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, LinkConfig{Latency: 100, BandwidthBps: 0})
	var arrivedAt sim.Time = -1
	var from NodeID = -1
	n.AddNode(1, func(f NodeID, m Message) { arrivedAt = k.Now(); from = f })
	n.AddNode(2, func(NodeID, Message) {})
	k.At(0, func() { n.Send(2, 1, fakeMsg{size: 1000}) })
	k.Run()
	if arrivedAt != 100 {
		t.Fatalf("arrival = %v, want 100 (infinite bandwidth)", arrivedAt)
	}
	if from != 2 {
		t.Fatalf("from = %d, want 2", from)
	}
}

func TestSendSerializationDelay(t *testing.T) {
	k := sim.NewKernel()
	// 100 Kbps: 1250 bytes = 10_000 bits = 100 ms on the wire.
	n := New(k, LinkConfig{Latency: 50, BandwidthBps: 100_000})
	var arrivals []sim.Time
	n.AddNode(1, func(NodeID, Message) { arrivals = append(arrivals, k.Now()) })
	n.AddNode(2, func(NodeID, Message) {})
	k.At(0, func() {
		n.Send(2, 1, fakeMsg{size: 1250})
		n.Send(2, 1, fakeMsg{size: 1250})
	})
	k.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != 150 {
		t.Fatalf("first arrival = %v, want 150 (100 transmit + 50 latency)", arrivals[0])
	}
	if arrivals[1] != 250 {
		t.Fatalf("second arrival = %v, want 250 (queued behind first)", arrivals[1])
	}
}

func TestLinksAreIndependent(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, LinkConfig{Latency: 10, BandwidthBps: 100_000})
	var at1, at2 sim.Time
	n.AddNode(1, func(NodeID, Message) { at1 = k.Now() })
	n.AddNode(2, func(NodeID, Message) { at2 = k.Now() })
	n.AddNode(0, func(NodeID, Message) {})
	k.At(0, func() {
		n.Send(0, 1, fakeMsg{size: 1250}) // 100ms wire
		n.Send(0, 2, fakeMsg{size: 1250}) // separate link: also 100ms wire
	})
	k.Run()
	if at1 != 110 || at2 != 110 {
		t.Fatalf("arrivals = %v, %v; want both 110 (independent links)", at1, at2)
	}
}

func TestMessageOrderPreservedPerLink(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, LinkConfig{Latency: 30, BandwidthBps: 1_000_000})
	var tags []int
	n.AddNode(1, func(_ NodeID, m Message) { tags = append(tags, m.(fakeMsg).tag) })
	n.AddNode(0, func(NodeID, Message) {})
	k.At(0, func() {
		for i := 0; i < 10; i++ {
			n.Send(0, 1, fakeMsg{size: 100, tag: i})
		}
	})
	k.Run()
	for i, tag := range tags {
		if tag != i {
			t.Fatalf("FIFO violated: tags = %v", tags)
		}
	}
}

func TestCounters(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, LinkConfig{Latency: 1, BandwidthBps: 0})
	n.AddNode(0, func(NodeID, Message) {})
	n.AddNode(1, func(NodeID, Message) {})
	k.At(0, func() {
		n.Send(0, 1, fakeMsg{size: 100})
		n.Send(1, 0, fakeMsg{size: 40})
		n.Send(0, 1, fakeMsg{size: 60})
	})
	k.Run()
	if n.TotalBytes() != 200 {
		t.Fatalf("total bytes = %d, want 200", n.TotalBytes())
	}
	if n.TotalMessages() != 3 {
		t.Fatalf("total msgs = %d, want 3", n.TotalMessages())
	}
	sent, recv := n.NodeBytes(0)
	if sent != 160 || recv != 40 {
		t.Fatalf("node 0 sent/recv = %d/%d, want 160/40", sent, recv)
	}
	if n.LinkBytes(0, 1) != 160 {
		t.Fatalf("link 0->1 bytes = %d, want 160", n.LinkBytes(0, 1))
	}
	if n.LinkBytes(1, 0) != 40 {
		t.Fatalf("link 1->0 bytes = %d, want 40", n.LinkBytes(1, 0))
	}
}

func TestSendToUnknownNodeIsDropped(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, DefaultLink)
	n.AddNode(0, func(NodeID, Message) {})
	k.At(0, func() { n.Send(0, 99, fakeMsg{size: 10}) })
	k.Run()
	if n.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", n.Dropped())
	}
	if n.TotalBytes() != 0 {
		t.Fatalf("dropped message counted bytes: %d", n.TotalBytes())
	}
}

func TestBroadcastReachesAllOthers(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, LinkConfig{Latency: 5, BandwidthBps: 0})
	got := map[NodeID]int{}
	for id := NodeID(0); id < 5; id++ {
		id := id
		n.AddNode(id, func(NodeID, Message) { got[id]++ })
	}
	k.At(0, func() { n.Broadcast(2, fakeMsg{size: 8}) })
	k.Run()
	if got[2] != 0 {
		t.Fatal("broadcast delivered to sender")
	}
	for _, id := range []NodeID{0, 1, 3, 4} {
		if got[id] != 1 {
			t.Fatalf("node %d received %d messages, want 1", id, got[id])
		}
	}
}

func TestRemoveNodeDropsInFlight(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, LinkConfig{Latency: 100, BandwidthBps: 0})
	n.AddNode(0, func(NodeID, Message) {})
	oldIncarnation, newIncarnation := 0, 0
	n.AddNode(1, func(NodeID, Message) { oldIncarnation++ })
	// In flight when the node dies at t=50: must NOT be delivered, even
	// though a new incarnation of the same id exists by arrival time.
	k.At(0, func() { n.Send(0, 1, fakeMsg{size: 1, tag: 1}) })
	k.At(50, func() {
		n.RemoveNode(1)
		n.AddNode(1, func(NodeID, Message) { newIncarnation++ })
		// Sent to the new incarnation: delivered normally.
		n.Send(0, 1, fakeMsg{size: 1, tag: 2})
	})
	k.Run()
	if oldIncarnation != 0 {
		t.Fatalf("stale in-flight message delivered to dead incarnation %d time(s)", oldIncarnation)
	}
	if newIncarnation != 1 {
		t.Fatalf("new incarnation received %d messages, want 1", newIncarnation)
	}
	if n.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", n.Dropped())
	}
}

func TestRemoveUnknownNodeIsNoop(t *testing.T) {
	n := New(sim.NewKernel(), DefaultLink)
	n.RemoveNode(42) // must not panic
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddNode did not panic")
		}
	}()
	n := New(sim.NewKernel(), DefaultLink)
	n.AddNode(1, func(NodeID, Message) {})
	n.AddNode(1, func(NodeID, Message) {})
}

func TestSetLinkOverride(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, LinkConfig{Latency: 100, BandwidthBps: 0})
	var at sim.Time
	n.AddNode(0, func(NodeID, Message) {})
	n.AddNode(1, func(NodeID, Message) { at = k.Now() })
	n.SetLink(0, 1, LinkConfig{Latency: 7, BandwidthBps: 0})
	k.At(0, func() { n.Send(0, 1, fakeMsg{size: 1}) })
	k.Run()
	if at != 7 {
		t.Fatalf("arrival = %v, want 7 via overridden link", at)
	}
}
