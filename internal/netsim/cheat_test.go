package netsim

import (
	"fmt"
	"math/rand"
	"testing"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/integrity"
	"seve/internal/sim"
	"seve/internal/wire"
	"seve/internal/world"
)

// The cheat-injection matrix: the proof layer for the DESIGN.md §16
// integrity subsystem. A fleet of honest clients shares the simulated
// network with one cheater whose uplink is rewritten in flight — the
// client software is honest, the wire is not, exactly the paper's
// untrusted-client threat model. Each cheat class (forged write sets,
// result tampering, replayed completions, rate floods) runs across
// shard counts and seeds; the harness measures detection latency in
// flush epochs, asserts the verdict names the right violation, and
// re-runs the Theorem 1 oracle plus the effective-log replay
// differential — byte-identical replies, cheats, verdicts and all.

const cheaterID action.ClientID = 5

// cheatEpochMs is the flush cadence of the cheat schedule; detection
// latency is reported in these epochs.
const cheatEpochMs = 10

// cheatRun carries the observables a cheat scenario produces.
type cheatRun struct {
	h *churnHarness
	// firstCheatMs is the kernel time the first tampered message was
	// forwarded to the server; detectMs the time the verdict frame
	// reached the cheater; reason its violation code.
	firstCheatMs float64
	detectMs     float64
	detected     bool
	reason       uint8
	tampered     int
}

// submitRange mints an action whose footprint stays inside [lo, hi] —
// the partial-audit scenarios give the cheater a disjoint object region
// so its poisoning cannot leak into the honest oracle check.
func submitRange(h *churnHarness, cl *churnClient, rng *rand.Rand, lo, hi int) {
	span := hi - lo + 1
	a := world.ObjectID(lo + rng.Intn(span))
	b := world.ObjectID(lo + rng.Intn(span))
	rs := world.IDSet{a}
	if b != a {
		if b < a {
			rs = world.IDSet{b, a}
		} else {
			rs = world.IDSet{a, b}
		}
	}
	act := &churnAction{rs: rs, ws: world.IDSet{a}, delta: float64(rng.Intn(100))}
	act.id = cl.engine.NextActionID()
	msg, _ := cl.engine.Submit(act)
	cl.submitted++
	if cl.connected && !cl.resuming {
		h.send(cl, msg)
	}
}

// playCheatSplit drives a churn-free submission schedule: every client
// submits on its own cadence, the epoch flush runs every cheatEpochMs,
// and the tamper hook (installed by the caller before this runs)
// rewrites the cheater's uplink. Honest clients draw footprints from
// 1..honestHi, the cheater from cheatLo..cheatHi. The tail is long
// enough for every in-flight exchange — verdicts included — to drain.
func playCheatSplit(h *churnHarness, seed int64, honestHi, cheatLo, cheatHi int) {
	rng := rand.New(rand.NewSource(seed))
	k := h.k

	const horizon = 1200
	for ms := sim.Time(1); ms < horizon; ms += cheatEpochMs {
		k.At(ms, h.flush)
	}
	for step := 0; step < 40; step++ {
		at := sim.Time(step * 15)
		k.At(at, func() {
			for _, cid := range h.order {
				cl := h.clients[cid]
				if rng.Float64() >= 0.6 {
					continue
				}
				if cid == cheaterID {
					submitRange(h, cl, rng, cheatLo, cheatHi)
				} else {
					submitRange(h, cl, rng, 1, honestHi)
				}
			}
		})
	}
	k.Run()
}

// playCheat is playCheatSplit with everyone sharing the full object set.
func playCheat(h *churnHarness, seed int64, nObjects int) {
	playCheatSplit(h, seed, nObjects, 1, nObjects)
}

// newCheatRun builds the harness and wires the detection probes: the
// downlink trace captures the verdict's arrival at the cheater.
func newCheatRun(t *testing.T, cfg core.Config, nClients, nObjects int) *cheatRun {
	h := newChurnHarnessCfg(t, cfg, nClients, nObjects, nil)
	run := &cheatRun{h: h}
	h.trace = func(cl *churnClient, msg wire.Msg) {
		if q, ok := msg.(*wire.Quarantine); ok && cl.id == cheaterID && !run.detected {
			run.detected = true
			run.detectMs = float64(h.k.Now())
			run.reason = q.Reason
		}
	}
	return run
}

// markCheat records the forwarding time of a tampered message.
func (r *cheatRun) markCheat() {
	if r.tampered == 0 {
		r.firstCheatMs = float64(r.h.k.Now())
	}
	r.tampered++
}

// detectionEpochs is the verdict latency in flush epochs.
func (r *cheatRun) detectionEpochs() float64 {
	return (r.detectMs - r.firstCheatMs) / cheatEpochMs
}

// verifyCheatRun re-runs the Theorem 1 oracle on a run with exactly one
// cheater: ζS must equal the omniscient serial replay of the recorded
// history (repairs and self-completions keep it on the serial
// trajectory), every honest client must have committed everything it
// submitted with oracle results, and the honest ledgers must be clean.
//
// honestObjects > 0 restricts the state comparison to objects
// 1..honestObjects: at a partial audit rate an unsampled tampered
// install legitimately poisons the objects the cheater owns until
// detection cuts it off, so only the honest region is required to track
// the oracle exactly.
func verifyCheatRunScoped(t *testing.T, r *cheatRun, wantQuarantine bool, honestObjects int) {
	h := r.h
	if len(h.violations) > 0 {
		t.Fatalf("protocol violations (%d), first: %s", len(h.violations), h.violations[0])
	}

	hist := h.eng.History()
	for i, env := range hist {
		if env.Seq != uint64(i+1) {
			t.Fatalf("history gap at %d: seq %d", i, env.Seq)
		}
	}
	if got := h.eng.Installed(); got != uint64(len(hist)) {
		t.Fatalf("installed %d of %d actions — the cheater wedged the queue", got, len(hist))
	}

	st := h.init.Clone()
	oracleRes := make(map[uint64]action.Result, len(hist))
	for _, env := range hist {
		res := action.Eval(env.Act, world.StateView{S: st})
		for _, w := range res.Writes {
			st.Set(w.ID, w.Val)
		}
		oracleRes[env.Seq] = res
	}
	if honestObjects > 0 {
		for i := 1; i <= honestObjects; i++ {
			id := world.ObjectID(i)
			got, _ := h.eng.Authoritative().Get(id)
			want, _ := st.Get(id)
			if !got.Equal(want) {
				t.Fatalf("honest object %d = %v diverged from serial oracle %v", i, got, want)
			}
		}
	} else if !h.eng.Authoritative().Equal(st) {
		t.Fatal("authoritative state ζS diverged from serial oracle under cheating")
	}

	for _, cid := range h.order {
		if cid == cheaterID {
			continue
		}
		cl := h.clients[cid]
		if len(cl.commits) != cl.submitted {
			t.Fatalf("honest client %d committed %d of %d submissions", cid, len(cl.commits), cl.submitted)
		}
		for _, c := range cl.commits {
			want, ok := oracleRes[c.Seq]
			if !ok {
				t.Fatalf("honest client %d commit at seq %d not in history", cid, c.Seq)
			}
			if !c.Res.Equal(want) {
				t.Fatalf("honest client %d stable result at seq %d diverged from oracle", cid, c.Seq)
			}
		}
	}

	ss := h.eng.Metrics()
	if wantQuarantine {
		if !r.detected {
			t.Fatalf("cheater never received a verdict (%d tampered messages): %+v", r.tampered, ss)
		}
		if ss.QuarantinedClients != 1 {
			t.Fatalf("QuarantinedClients = %d, want exactly the cheater", ss.QuarantinedClients)
		}
		if rr, ok := h.clients[cheaterID].engine.Quarantined(); !ok || rr != r.reason {
			t.Fatalf("cheater engine latch = (%d,%v), verdict said %d", rr, ok, r.reason)
		}
	} else if ss.QuarantinedClients != 0 {
		t.Fatalf("QuarantinedClients = %d, want 0 for this cheat class", ss.QuarantinedClients)
	}
}

func verifyCheatRun(t *testing.T, r *cheatRun, wantQuarantine bool) {
	verifyCheatRunScoped(t, r, wantQuarantine, 0)
}

// cheatMatrix runs one cheat class across shard counts and seeds.
func cheatMatrix(t *testing.T, scenario func(t *testing.T, shards int, seed int64)) {
	for _, shards := range []int{1, 2, 4, 8} {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				scenario(t, shards, seed)
			})
		}
	}
}

// TestCheatForgedWriteSet: the cheater's completions are rewritten to
// claim a write on an object outside the declared write set. The cheap
// validator catches the very first forged report, the verdict lands
// within a couple of epochs, and the forged write never reaches ζS.
func TestCheatForgedWriteSet(t *testing.T) {
	cheatMatrix(t, func(t *testing.T, shards int, seed int64) {
		const nClients, nObjects = 5, 12
		run := newCheatRun(t, churnConfig(shards), nClients, nObjects)
		run.h.tamper = func(cl *churnClient, msg wire.Msg) wire.Msg {
			co, ok := msg.(*wire.Completion)
			if !ok || cl.id != cheaterID {
				return msg
			}
			forged := *co
			forged.Res = co.Res.Clone()
			outside := world.ObjectID(int(co.By)%nObjects) + 1
			forged.Res.Writes = append(forged.Res.Writes, world.Write{ID: outside, Val: world.Value{1e9}})
			run.markCheat()
			return &forged
		}
		playCheat(run.h, seed, nObjects)
		verifyCheatRun(t, run, true)

		ss := run.h.eng.Metrics()
		if ss.ForgedCompletions == 0 {
			t.Fatalf("validator never counted the forgery: %+v", ss)
		}
		if run.reason != uint8(integrity.ViolationFootprint) {
			t.Fatalf("verdict reason = %d, want footprint (%d)", run.reason, integrity.ViolationFootprint)
		}
		if ep := run.detectionEpochs(); ep > 3 {
			t.Fatalf("forged write set took %.1f epochs to detect, want ≤ 3", ep)
		}
		t.Logf("forged write set detected in %.1f epochs (%d tampered)", run.detectionEpochs(), run.tampered)
	})
}

// TestCheatResultTampering: the cheater's reported values are inflated
// but stay inside the declared footprint — invisible to the cheap
// validator, fatal under the re-execution audit. At rate 1.0 the first
// tampered completion is audited at its install, so detection is
// bounded by the install epoch, and the repaired result keeps ζS serial.
func TestCheatResultTampering(t *testing.T) {
	cheatMatrix(t, func(t *testing.T, shards int, seed int64) {
		const nClients, nObjects = 5, 12
		cfg := churnConfig(shards)
		cfg.AuditRate = 1.0
		run := newCheatRun(t, cfg, nClients, nObjects)
		run.h.tamper = func(cl *churnClient, msg wire.Msg) wire.Msg {
			co, ok := msg.(*wire.Completion)
			if !ok || cl.id != cheaterID || len(co.Res.Writes) == 0 {
				return msg
			}
			forged := *co
			forged.Res = co.Res.Clone()
			for i := range forged.Res.Writes {
				forged.Res.Writes[i].Val = world.Value{1e6 + float64(i)}
			}
			run.markCheat()
			return &forged
		}
		playCheat(run.h, seed, nObjects)
		verifyCheatRun(t, run, true)

		ss := run.h.eng.Metrics()
		if ss.AuditDivergences == 0 || ss.RepairedResults == 0 {
			t.Fatalf("audit never caught the tampering: %+v", ss)
		}
		if run.reason != uint8(integrity.ViolationAudit) {
			t.Fatalf("verdict reason = %d, want audit (%d)", run.reason, integrity.ViolationAudit)
		}
		if ep := run.detectionEpochs(); ep > 3 {
			t.Fatalf("result tampering took %.1f epochs to detect at rate 1.0, want ≤ 3", ep)
		}
		t.Logf("result tampering detected in %.1f epochs (%d tampered)", run.detectionEpochs(), run.tampered)
	})
}

// TestCheatSampledAuditEventuallyDetects: at a partial audit rate the
// tampering survives unsampled installs but the deterministic sampling
// stream catches it within the run — the latency/cost trade the
// cheataudit experiment quantifies. The cheater owns a disjoint object
// region (11..12): until detection its unsampled tampered installs may
// legitimately poison those objects, but the honest region must track
// the serial oracle exactly and no honest client may be punished.
func TestCheatSampledAuditEventuallyDetects(t *testing.T) {
	cheatMatrix(t, func(t *testing.T, shards int, seed int64) {
		const nClients, nObjects, honestHi = 5, 12, 10
		cfg := churnConfig(shards)
		cfg.AuditRate = 0.25
		run := newCheatRun(t, cfg, nClients, nObjects)
		run.h.tamper = func(cl *churnClient, msg wire.Msg) wire.Msg {
			co, ok := msg.(*wire.Completion)
			if !ok || cl.id != cheaterID || len(co.Res.Writes) == 0 {
				return msg
			}
			forged := *co
			forged.Res = co.Res.Clone()
			for i := range forged.Res.Writes {
				forged.Res.Writes[i].Val = world.Value{2e6}
			}
			run.markCheat()
			return &forged
		}
		playCheatSplit(run.h, seed, honestHi, honestHi+1, nObjects)
		verifyCheatRunScoped(t, run, true, honestHi)
		if run.reason != uint8(integrity.ViolationAudit) {
			t.Fatalf("verdict reason = %d, want audit (%d)", run.reason, integrity.ViolationAudit)
		}
		t.Logf("sampled audit (rate 0.25) detected after %d tampered completions, %.1f epochs",
			run.tampered, run.detectionEpochs())
	})
}

// TestCheatReplayedCompletion: the cheater re-sends its own past
// completion for an installed position with a rewritten result — a
// replay that disagrees with the installed history. The cross-check
// against retained results quarantines it.
func TestCheatReplayedCompletion(t *testing.T) {
	cheatMatrix(t, func(t *testing.T, shards int, seed int64) {
		const nClients, nObjects = 5, 12
		run := newCheatRun(t, churnConfig(shards), nClients, nObjects)
		injected := false
		run.h.tamper = func(cl *churnClient, msg wire.Msg) wire.Msg {
			co, ok := msg.(*wire.Completion)
			if !ok || cl.id != cheaterID || injected {
				return msg
			}
			// Let the honest completion through now; 30ms later — two
			// flush epochs, comfortably past its install — replay it with
			// a rewritten result.
			injected = true
			replay := *co
			replay.Res = co.Res.Clone()
			for i := range replay.Res.Writes {
				replay.Res.Writes[i].Val = world.Value{3e6}
			}
			h := run.h
			h.k.At(h.k.Now()+30, func() {
				run.markCheat()
				h.send(cl, &replay)
			})
			return msg
		}
		playCheat(run.h, seed, nObjects)
		verifyCheatRun(t, run, true)
		if run.reason != uint8(integrity.ViolationReplay) {
			t.Fatalf("verdict reason = %d, want replay (%d)", run.reason, integrity.ViolationReplay)
		}
		if ep := run.detectionEpochs(); ep > 3 {
			t.Fatalf("replayed completion took %.1f epochs to detect, want ≤ 3", ep)
		}
		t.Logf("replayed completion detected in %.1f epochs", run.detectionEpochs())
	})
}

// TestCheatRateFlood: the cheater bursts far past the configured submit
// rate. The token bucket sheds the flood with Drop replies — the
// cheater's client aborts the shed actions locally — but a rate
// violation alone never quarantines, and the honest fleet is untouched.
func TestCheatRateFlood(t *testing.T) {
	cheatMatrix(t, func(t *testing.T, shards int, seed int64) {
		const nClients, nObjects = 5, 12
		cfg := churnConfig(shards)
		cfg.MaxSubmitRate = 50
		cfg.SubmitBurst = 4
		run := newCheatRun(t, cfg, nClients, nObjects)
		h := run.h

		// The flood: 30 submissions in one instant at t=200.
		rng := rand.New(rand.NewSource(seed + 1000))
		h.k.At(200, func() {
			for i := 0; i < 30; i++ {
				h.submit(h.clients[cheaterID], rng, nObjects)
			}
		})
		playCheat(h, seed, nObjects)
		verifyCheatRun(t, run, false)

		ss := h.eng.Metrics()
		if ss.RateLimited == 0 {
			t.Fatalf("flood never rate-limited: %+v", ss)
		}
		cheater := h.clients[cheaterID]
		shed := cheater.submitted - len(cheater.commits)
		if shed != ss.RateLimited {
			t.Fatalf("cheater shed %d submissions, server rate-limited %d — every shed must be a Drop",
				shed, ss.RateLimited)
		}
		t.Logf("rate flood: %d submissions shed, %d committed, honest fleet clean",
			shed, len(cheater.commits))
	})
}

// TestCheatReplayDifferential: the effective-log replay differential
// holds under active cheating — replaying the recorded order through
// the single-lane engine reproduces the router's history, state, and
// every reply byte, verdict frames included. The serial-replay oracle
// and the sharded pipeline agree on who cheated and when.
func TestCheatReplayDifferential(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const nClients, nObjects = 5, 12
			cfg := churnConfig(shards)
			cfg.AuditRate = 1.0
			run := newCheatRun(t, cfg, nClients, nObjects)
			run.h.tamper = func(cl *churnClient, msg wire.Msg) wire.Msg {
				co, ok := msg.(*wire.Completion)
				if !ok || cl.id != cheaterID || len(co.Res.Writes) == 0 {
					return msg
				}
				forged := *co
				forged.Res = co.Res.Clone()
				forged.Res.Writes[0].Val = world.Value{4e6}
				run.markCheat()
				return &forged
			}
			playCheat(run.h, 3, nObjects)
			verifyCheatRun(t, run, true)
			verifyReplayDifferential(t, run.h)
		})
	}
}
