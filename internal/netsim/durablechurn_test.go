package netsim

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/durable"
	"seve/internal/shard"
	"seve/internal/sim"
	"seve/internal/world"
)

// The durable churn swarm: the fault-injection harness of churn_test.go
// with the durability pipeline attached and the server itself as the
// churn victim. Phase one runs client churn while the engine journals
// to a store; the process then dies mid-epoch — the store directory is
// imaged as-is, with no shutdown checkpoint, while stamped-but-
// uninstalled actions are still in flight — and a second engine is
// constructed over the recovery. The serial-replay oracle must match
// the recovered state exactly, the original clients must resume over
// the wire against the restarted server (boot fencing discards
// completions minted for rolled-back positions), and after a second
// traffic phase the combined history must be exactly-once for every
// client — including commits whose acknowledgements were lost with the
// crash.

// copyStoreDir byte-copies every file of a live store directory into a
// fresh tempdir: the moral equivalent of kill -9 followed by reading
// the disk, since Close would cut a shutdown checkpoint and flatten
// the recovery paths this test exists to exercise.
func copyStoreDir(t *testing.T, dir string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.Type().IsRegular() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// replayOracle replays histories serially from init, returning the
// final state and every position's result.
func replayOracle(init *world.State, hists ...[]action.Envelope) (*world.State, map[uint64]action.Result) {
	st := init.Clone()
	res := make(map[uint64]action.Result)
	for _, hist := range hists {
		for _, env := range hist {
			r := action.Eval(env.Act, world.StateView{S: st})
			for _, w := range r.Writes {
				st.Set(w.ID, w.Val)
			}
			res[env.Seq] = r
		}
	}
	return st, res
}

// TestDurableChurnKillRecover is the process-death matrix: shard counts
// × seeds, each killing the server mid-epoch and resuming the same
// clients against the recovered engine.
func TestDurableChurnKillRecover(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		for seed := int64(1); seed <= 3; seed++ {
			name := fmt.Sprintf("shards=%d/seed=%d", shards, seed)
			t.Run(name, func(t *testing.T) {
				t.Logf("durable churn config: shards=%d seed=%d", shards, seed)
				runKillRecover(t, shards, seed)
			})
		}
	}
}

func runKillRecover(t *testing.T, shards int, seed int64) {
	const nClients, nObjects = 5, 12
	init := churnInit(nObjects)
	dopts := durable.Options{SnapshotEvery: 4, ResumeWindow: 2, QueueLen: 256}

	dir := t.TempDir()
	store, rec, err := durable.Open(dir, init, dopts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Restore.UpTo != 0 || rec.Restore.Boot != 1 {
		t.Fatalf("virgin store recovered upTo=%d boot=%d, want 0/1", rec.Restore.UpTo, rec.Restore.Boot)
	}

	h := newJournaledChurnHarness(t, shards, nClients, nObjects, store)
	rng := rand.New(rand.NewSource(seed))
	k := h.k

	// Phase 1: flush ticks, random submissions, client churn on 3..N.
	for ms := sim.Time(1); ms < 360; ms += 10 {
		ms := ms
		k.At(ms, h.flush)
	}
	for step := 0; step < 25; step++ {
		at := sim.Time(step*10 + 5)
		k.At(at, func() {
			cl := h.clients[h.order[rng.Intn(len(h.order))]]
			if cl.connected || rng.Float64() < 0.3 {
				h.submit(cl, rng, nObjects)
			}
			if rng.Float64() < 0.2 {
				victim := h.clients[h.order[2+rng.Intn(len(h.order)-2)]]
				if victim.connected {
					h.disconnect(victim)
					back := at + sim.Time(30+rng.Intn(5)*10)
					k.At(back, func() { h.reconnect(victim) })
				}
			}
		})
	}
	k.At(330, func() {
		for _, cid := range h.order {
			h.reconnect(h.clients[cid])
		}
	})
	// The mid-epoch burst: submitted after the final flush tick, these
	// actions are stamped but never installed — the crash takes the
	// epoch down with them, and their serial positions are re-issued
	// after recovery.
	k.At(365, func() {
		for i := 0; i < 3; i++ {
			cl := h.clients[h.order[rng.Intn(len(h.order))]]
			if cl.connected {
				h.submit(cl, rng, nObjects)
			}
		}
	})
	k.Run()

	installed1 := h.eng.Installed()
	if installed1 == 0 {
		t.Fatal("phase 1 installed nothing")
	}
	hist1 := h.eng.History()
	if uint64(len(hist1)) < installed1 {
		t.Fatalf("history %d shorter than installed %d", len(hist1), installed1)
	}
	for i, env := range hist1 {
		if env.Seq != uint64(i+1) {
			t.Fatalf("phase 1 history gap at %d: seq %d", i, env.Seq)
		}
	}

	// Kill. Sync flushes the committer queue so the image is the exact
	// journal of the installed prefix; the copy — not Close — is the
	// crash: no shutdown checkpoint, the meta lineage stays stale and
	// recovery must replay the wal tail.
	if err := store.Sync(); err != nil {
		t.Fatal(err)
	}
	img := copyStoreDir(t, dir)
	store.Close()

	store2, rec2, err := durable.Open(img, init, dopts)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	up := rec2.Restore.UpTo
	if up != installed1 {
		t.Fatalf("recovered upTo %d, engine had installed %d", up, installed1)
	}
	if rec2.Restore.Boot != 2 {
		t.Fatalf("recovered boot %d, want 2", rec2.Restore.Boot)
	}

	// Recovery oracle: the recovered state is the serial replay of the
	// installed prefix, byte for byte.
	oracleSt, _ := replayOracle(init, hist1[:up])
	if !rec2.State.Equal(oracleSt) {
		t.Fatal("recovered state diverged from serial replay oracle")
	}
	if !rec2.State.Equal(h.eng.Authoritative()) {
		t.Fatal("recovered state diverged from the dead engine's ζS")
	}

	// Restart: a fresh engine over the recovered state, journaling to
	// the reopened store. The server's death severed every connection —
	// uplink generations burn, downlink frames die on the removed nodes.
	eng2 := shard.NewEngine(churnConfig(shards), rec2.State)
	eng2.(core.Restorer).Restore(rec2.Restore)
	eng2.SetJournal(store2)
	for _, cid := range h.order {
		cl := h.clients[cid]
		if cl.connected {
			cl.connected = false
			cl.gen++
			h.net.RemoveNode(cl.node)
		}
	}
	h.eng = eng2
	var ok bool
	h.resumer, ok = eng2.(core.Resumer)
	if !ok {
		t.Fatal("restarted engine does not implement core.Resumer")
	}

	// Phase 2: everyone resumes over the wire against the restarted
	// server, then a second round of traffic drains.
	base := k.Now()
	for ms := base + 1; ms < base+300; ms += 10 {
		ms := ms
		k.At(ms, h.flush)
	}
	for i, cid := range h.order {
		cid := cid
		k.At(base+sim.Time(5+i*7), func() { h.reconnect(h.clients[cid]) })
	}
	for step := 0; step < 15; step++ {
		at := base + sim.Time(80+step*10)
		k.At(at, func() {
			cl := h.clients[h.order[rng.Intn(len(h.order))]]
			if cl.connected {
				h.submit(cl, rng, nObjects)
			}
		})
	}
	k.Run()

	if len(h.violations) > 0 {
		t.Fatalf("protocol violations (%d), first: %s", len(h.violations), h.violations[0])
	}
	hist2 := eng2.History()
	for i, env := range hist2 {
		if env.Seq != up+uint64(i+1) {
			t.Fatalf("post-restart history gap at %d: seq %d, want %d", i, env.Seq, up+uint64(i+1))
		}
	}
	installed2 := eng2.Installed()
	if installed2 != up+uint64(len(hist2)) {
		t.Fatalf("restarted server installed %d, history says %d", installed2, up+uint64(len(hist2)))
	}
	if got := eng2.QueueLen(); got != 0 {
		t.Fatalf("restarted server queue still holds %d actions", got)
	}

	// Combined oracle: phase 1 up to the durable point, then everything
	// the restarted engine installed.
	finalSt, oracleRes := replayOracle(init, hist1[:up], hist2)
	if !eng2.Authoritative().Equal(finalSt) {
		t.Fatal("post-restart ζS diverged from the combined serial oracle")
	}

	// Per-client exactly-once across the crash: every submission
	// committed once with the oracle's result — those whose acks died
	// with the server re-delivered through the resume path — and every
	// stable version is serial-replay consistent against the combined
	// history.
	combined := append(append([]action.Envelope{}, hist1[:up]...), hist2...)
	for _, cid := range h.order {
		cl := h.clients[cid]
		if got := cl.engine.QueueLen(); got != 0 {
			t.Fatalf("client %d still has %d in-flight actions", cid, got)
		}
		if len(cl.commits) != cl.submitted {
			t.Fatalf("client %d committed %d of %d submissions", cid, len(cl.commits), cl.submitted)
		}
		seen := make(map[uint64]bool, len(cl.commits))
		for _, c := range cl.commits {
			if seen[c.Seq] {
				t.Fatalf("client %d committed serial %d twice", cid, c.Seq)
			}
			seen[c.Seq] = true
			want, ok := oracleRes[c.Seq]
			if !ok {
				t.Fatalf("client %d commit at seq %d not in either history", cid, c.Seq)
			}
			if !c.Res.Equal(want) {
				t.Fatalf("client %d stable result at seq %d diverged from oracle", cid, c.Seq)
			}
		}
		cs := cl.engine.Stable()
		for _, id := range cs.IDs() {
			val, seq, ok := cs.Latest(id)
			if !ok {
				continue
			}
			asOf := init.Clone()
			for _, env := range combined {
				if env.Seq > seq {
					break
				}
				res := action.Eval(env.Act, world.StateView{S: asOf})
				for _, w := range res.Writes {
					asOf.Set(w.ID, w.Val)
				}
			}
			want, _ := asOf.Get(id)
			if !val.Equal(want) {
				t.Fatalf("client %d ζCS(%d)=%v at seq %d diverges from serial replay %v",
					cid, id, val, seq, want)
			}
		}
	}

	// The restart must actually have gone through the recovered-session
	// path, and no valid token may have been rejected.
	m := eng2.Metrics()
	if m.ResumesRecovered == 0 {
		t.Errorf("no recovered-session resume despite the restart: %+v", m)
	}
	if m.ResumesRejected != 0 {
		t.Errorf("%d resumes rejected after restart with valid tokens", m.ResumesRejected)
	}

	// The journal kept pace through phase 2 as well: after a barrier the
	// durable point is the restarted engine's install point, gap-free.
	if err := store2.Sync(); err != nil {
		t.Fatal(err)
	}
	st2 := store2.Stats()
	if st2.Durable != installed2 {
		t.Fatalf("journal durable at %d, restarted engine installed %d", st2.Durable, installed2)
	}
	if st2.Gapped {
		t.Fatal("journal gapped under DegradeBlock")
	}
}

// TestJournalRepliesIdentical: durability must be invisible on the
// wire. The same churn schedule runs twice — once plain, once with the
// journal attached — and every history entry and every per-client
// reply stream must match byte for byte.
func TestJournalRepliesIdentical(t *testing.T) {
	const shards, seed, nObjects = 4, 3, 12
	plain := runChurn(t, shards, seed)

	store, _, err := durable.Open(t.TempDir(), churnInit(nObjects),
		durable.Options{SnapshotEvery: 4, ResumeWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	logged := newJournaledChurnHarness(t, shards, 5, nObjects, store)
	playChurn(logged, seed, nObjects)

	ha, hb := plain.eng.History(), logged.eng.History()
	if len(ha) != len(hb) {
		t.Fatalf("history lengths differ: plain %d, journaled %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i].Seq != hb[i].Seq || ha[i].Act.ID() != hb[i].Act.ID() {
			t.Fatalf("histories diverge at %d with the journal attached", i)
		}
	}
	for _, cid := range plain.order {
		if string(plain.bytes[cid]) != string(logged.bytes[cid]) {
			t.Fatalf("client %d reply stream changed with the journal attached (%d vs %d bytes)",
				cid, len(plain.bytes[cid]), len(logged.bytes[cid]))
		}
	}

	// And the journal saw everything the engine installed.
	if err := store.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Durable != logged.eng.Installed() {
		t.Fatalf("journal durable at %d, engine installed %d", st.Durable, logged.eng.Installed())
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}
