// Package netsim simulates a star network of client machines around a
// central server, the topology of the paper's EMULab deployment: 64 client
// machines plus one server, 238 ms average latency, links capped at
// 100 Kbps (Table I).
//
// Each directed link serializes messages: a message of size s bytes
// departs only after the link has finished transmitting earlier messages,
// taking s*8/bandwidth seconds on the wire, and arrives latency
// milliseconds after departure. Per-link and per-node byte counters feed
// the Figure 9 bandwidth experiment.
package netsim

import (
	"fmt"

	"seve/internal/sim"
)

// NodeID identifies a simulated machine. The server is conventionally
// node 0 and clients are 1..N.
type NodeID int32

// ServerNode is the conventional NodeID of the central server.
const ServerNode NodeID = 0

// Message is anything deliverable over the simulated network. WireSize
// must report the encoded size in bytes; it drives the bandwidth model and
// the traffic counters.
type Message interface {
	WireSize() int
}

// Handler consumes messages arriving at a node.
type Handler func(from NodeID, msg Message)

// LinkConfig describes one direction of a point-to-point link.
type LinkConfig struct {
	// Latency is the one-way propagation delay.
	Latency sim.Time
	// BandwidthBps is the link capacity in bits per second. Zero or
	// negative means infinite bandwidth (no serialization delay).
	BandwidthBps float64
}

// DefaultLink reproduces the paper's Table I link. The paper reports
// 238 ms as the average inter-machine latency, interpreted here as the
// one-way propagation delay (RTT 476 ms), with the 100 Kbps bandwidth cap.
var DefaultLink = LinkConfig{Latency: 238, BandwidthBps: 100_000}

// transmitTime returns how long size bytes occupy the wire.
func (c LinkConfig) transmitTime(size int) sim.Time {
	if c.BandwidthBps <= 0 {
		return 0
	}
	return sim.Time(float64(size) * 8 / c.BandwidthBps * 1000)
}

type link struct {
	cfg    LinkConfig
	freeAt sim.Time
	bytes  uint64
	msgs   uint64
}

type node struct {
	handler Handler
	sent    uint64
	recv    uint64
}

// Network is the simulated star network. It is not safe for concurrent
// use; all access happens inside kernel events.
type Network struct {
	k     *sim.Kernel
	nodes map[NodeID]*node
	links map[[2]NodeID]*link
	// defaultCfg is used for links that were not explicitly configured.
	defaultCfg LinkConfig

	totalBytes uint64
	totalMsgs  uint64
	dropped    uint64
}

// New returns a network on kernel k in which every link defaults to cfg.
func New(k *sim.Kernel, cfg LinkConfig) *Network {
	return &Network{
		k:          k,
		nodes:      make(map[NodeID]*node),
		links:      make(map[[2]NodeID]*link),
		defaultCfg: cfg,
	}
}

// Kernel returns the simulation kernel the network is attached to.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// AddNode registers a node. Registering the same ID twice panics: it
// would silently replace a live protocol endpoint.
func (n *Network) AddNode(id NodeID, h Handler) {
	if _, ok := n.nodes[id]; ok {
		panic(fmt.Sprintf("netsim: node %d registered twice", id))
	}
	n.nodes[id] = &node{handler: h}
}

// RemoveNode deregisters a node: messages already in flight toward it
// are dropped at delivery time (the connection died under them), and
// later Sends drop immediately. The id can be re-registered with AddNode
// — a reconnect — without receiving anything addressed to its previous
// incarnation. Removing an unknown id is a no-op.
func (n *Network) RemoveNode(id NodeID) {
	delete(n.nodes, id)
}

// SetLink overrides the configuration of the directed link from → to.
func (n *Network) SetLink(from, to NodeID, cfg LinkConfig) {
	n.links[[2]NodeID{from, to}] = &link{cfg: cfg}
}

func (n *Network) linkFor(from, to NodeID) *link {
	key := [2]NodeID{from, to}
	l, ok := n.links[key]
	if !ok {
		l = &link{cfg: n.defaultCfg}
		n.links[key] = l
	}
	return l
}

// Send transmits msg from one node to another. Delivery is scheduled on
// the kernel after serialization and propagation delay. Sending to an
// unregistered node counts as a drop (the counterpart of a TCP RST in the
// real deployment) rather than an error, so teardown races in experiments
// are harmless.
func (n *Network) Send(from, to NodeID, msg Message) {
	dst, ok := n.nodes[to]
	if !ok {
		n.dropped++
		return
	}
	size := msg.WireSize()
	l := n.linkFor(from, to)

	depart := n.k.Now()
	if l.freeAt > depart {
		depart = l.freeAt
	}
	depart += l.cfg.transmitTime(size)
	l.freeAt = depart
	arrive := depart + l.cfg.Latency

	l.bytes += uint64(size)
	l.msgs++
	n.totalBytes += uint64(size)
	n.totalMsgs++
	if src, ok := n.nodes[from]; ok {
		src.sent += uint64(size)
	}
	dst.recv += uint64(size)

	n.k.At(arrive, func() {
		// Re-check identity at delivery: if the destination was removed
		// (or removed and re-added — a reconnect) while the message was
		// on the wire, the old incarnation's traffic dies with it.
		if cur, ok := n.nodes[to]; !ok || cur != dst {
			n.dropped++
			return
		}
		dst.handler(from, msg)
	})
}

// Broadcast sends msg from one node to every other registered node.
func (n *Network) Broadcast(from NodeID, msg Message) {
	for id := range n.nodes {
		if id != from {
			n.Send(from, id, msg)
		}
	}
}

// TotalBytes reports all bytes ever put on any link.
func (n *Network) TotalBytes() uint64 { return n.totalBytes }

// TotalMessages reports all messages ever sent.
func (n *Network) TotalMessages() uint64 { return n.totalMsgs }

// Dropped reports messages lost to dead endpoints: sent to an
// unregistered node, or in flight toward a node removed (or replaced)
// before delivery.
func (n *Network) Dropped() uint64 { return n.dropped }

// NodeBytes reports bytes sent and received by a node.
func (n *Network) NodeBytes(id NodeID) (sent, recv uint64) {
	nd, ok := n.nodes[id]
	if !ok {
		return 0, 0
	}
	return nd.sent, nd.recv
}

// LinkBytes reports bytes carried by the directed link from → to.
func (n *Network) LinkBytes(from, to NodeID) uint64 {
	if l, ok := n.links[[2]NodeID{from, to}]; ok {
		return l.bytes
	}
	return 0
}
