package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sync"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/geom"
	"seve/internal/metrics"
	"seve/internal/transport"
	"seve/internal/wire"
	"seve/internal/world"
)

// Adversarial measures the superseding delivery queue (DESIGN.md §13)
// on the workloads it was built for: clients whose downlink stalls
// while the world keeps changing under them. Each scenario runs twice
// over the identical action schedule — once with the pre-PR drop-at-cap
// queue ("off") and once with in-place supersession ("on") — and the
// table reports what each delivery discipline actually shipped: bytes,
// frames, drops, in-queue merges, snapshot fallbacks, and the stale
// footprint high-water mark. The server side is byte-identical between
// the two runs (the control loop synthesizes completions from the
// engine's replies before they enter a queue), so every difference in a
// row pair is attributable to the queue alone.
//
// Scenarios:
//
//   - uniform: the keep-up control. Clients trade inside well-separated
//     clusters and every queue drains every round; both disciplines must
//     deliver identical bytes with zero supersessions (the experiment-
//     scale restatement of TestSupersedingEquivalence).
//   - flash: a flash crowd. Every client acts from the same spot, so
//     each push fans out to the whole population; stalled queues fill
//     with wide push batches.
//   - auction: a trading storm. All clients hammer one tiny hot-object
//     set, so every reply's closure spans the whole in-flight window —
//     maximal per-frame weight at modest fan-out.
//   - churn: interest churn. Footprints and positions rotate between
//     banks every few rounds, so a stalled queue accumulates frames
//     whose covered objects are mostly disjoint — the worst case for
//     in-place replacement, where only the snapshot fallback wins.
func Adversarial(opt Options) (*metrics.Table, error) {
	p := advParams{
		clusters:    pick(opt, 6, 4),
		perCluster:  pick(opt, 4, 3),
		rounds:      pick(opt, 48, 20),
		stallFrom:   pick(opt, 4, 2),
		stallTo:     pick(opt, 46, 18),
		queueCap:    pick(opt, 48, 16),
		lag:         2,
		stallEvery:  4,
		hotObjects:  3,
		banks:       4,
		bankObjects: 4,
	}
	t := &metrics.Table{
		Title: fmt.Sprintf("Superseding delivery queue under adversarial stalls: %d clients, %d rounds, stall rounds [%d,%d), queue cap %d",
			p.clients(), p.rounds, p.stallFrom, p.stallTo, p.queueCap),
		Header: []string{"workload", "superseding", "delivered_kb", "stalled_kb", "frames", "avg_envs",
			"enqueued", "drops", "drop_pct", "superseded", "coalesced", "snapshots", "max_stale", "bytes_x"},
	}
	for _, sc := range advScenarios(p) {
		off, err := runAdversarial(sc, p, false)
		if err != nil {
			return nil, fmt.Errorf("adversarial %s off: %w", sc.name, err)
		}
		on, err := runAdversarial(sc, p, true)
		if err != nil {
			return nil, fmt.Errorf("adversarial %s on: %w", sc.name, err)
		}
		for _, r := range []struct {
			mode string
			res  advResult
		}{{"off", off}, {"on", on}} {
			// bytes_x compares delivery to the stalled cohort, where the
			// disciplines diverge; without stalls it compares the totals
			// (and must come out 1.00 — the equivalence control).
			num, den := off.bytes, r.res.bytes
			if sc.stalls {
				num, den = off.stalledBytes, r.res.stalledBytes
			}
			x := 1.0
			if den > 0 {
				x = float64(num) / float64(den)
			}
			avgEnvs := 0.0
			if r.res.batches > 0 {
				avgEnvs = float64(r.res.envs) / float64(r.res.batches)
			}
			dropPct := 0.0
			if r.res.enqueued > 0 {
				dropPct = 100 * float64(r.res.drops) / float64(r.res.enqueued)
			}
			t.AddRow(sc.name, r.mode,
				fmt.Sprintf("%.1f", float64(r.res.bytes)/1024),
				fmt.Sprintf("%.1f", float64(r.res.stalledBytes)/1024),
				fmt.Sprintf("%d", r.res.frames),
				fmt.Sprintf("%.1f", avgEnvs),
				fmt.Sprintf("%d", r.res.enqueued),
				fmt.Sprintf("%d", r.res.drops),
				fmt.Sprintf("%.2f", dropPct),
				fmt.Sprintf("%d", r.res.superseded),
				fmt.Sprintf("%d", r.res.coalesced),
				fmt.Sprintf("%d", r.res.snapshots),
				fmt.Sprintf("%d", r.res.maxStale),
				fmt.Sprintf("%.2f", x))
		}
		opt.log("adversarial %s: off %.1fKB/%d drops, on %.1fKB/%d snapshots (%.2fx bytes)",
			sc.name, float64(off.bytes)/1024, off.drops,
			float64(on.bytes)/1024, on.snapshots,
			float64(off.bytes)/math.Max(float64(on.bytes), 1))
	}
	return t, nil
}

// advParams fixes the stall profile and population shared by every
// scenario, so the off/on row pairs and the cross-scenario columns are
// comparable.
type advParams struct {
	clusters, perCluster int
	rounds               int
	stallFrom, stallTo   int // stalled queues are not drained in [from, to)
	queueCap             int
	lag                  int // rounds a completion stays in flight
	stallEvery           int // every Nth client is stalled
	hotObjects           int // auction hot-set size
	banks, bankObjects   int // churn rotation banks
}

func (p advParams) clients() int { return p.clusters * p.perCluster }

func (p advParams) isStalled(c int) bool { return c%p.stallEvery == 0 }

func (p advParams) inStall(round int) bool { return round >= p.stallFrom && round < p.stallTo }

// Object-id banks. Disjoint ranges keep footprints readable in traces.
func advOwn(c int) world.ObjectID       { return world.ObjectID(1000 + c) }
func advHub(cluster int) world.ObjectID { return world.ObjectID(1 + cluster) }
func advHot(i int) world.ObjectID       { return world.ObjectID(500 + i) }
func advBank(p advParams, b, i int) world.ObjectID {
	return world.ObjectID(2000 + b*p.bankObjects + i)
}

// advSite is cluster's home position: sites sit far enough apart that
// Equation (1) (2s(1+ω)RTT + rC + rA ≈ 24 units at the default speed)
// never pushes across clusters.
func advSite(cluster int) geom.Vec {
	return geom.Vec{X: float64(cluster)*300 + 50, Y: float64(cluster)*300 + 50}
}

type advScenario struct {
	name   string
	stalls bool
	// stalledSubmitEvery thins a stalled client's uplink to one
	// submission round per N. The trading storm keeps it dense: a
	// stalled trader still floods bids, and its undeliverable closure
	// replies are exactly what overflows the queue.
	stalledSubmitEvery int
	// submitsPerRound is each client's actions per submission round
	// (the storm submits in bursts; everyone else paces at one).
	submitsPerRound int
	footprint       func(c, round int) []world.ObjectID
	position        func(c, round int) geom.Vec
}

func advScenarios(p advParams) []advScenario {
	clusterOf := func(c int) int { return (c - 1) / p.perCluster }
	local := func(c, _ int) []world.ObjectID {
		return []world.ObjectID{advHub(clusterOf(c)), advOwn(c)}
	}
	home := func(c, _ int) geom.Vec { return advSite(clusterOf(c)) }
	return []advScenario{
		{name: "uniform", stalls: false, stalledSubmitEvery: 3, submitsPerRound: 1,
			footprint: local, position: home},
		{name: "flash", stalls: true, stalledSubmitEvery: 3, submitsPerRound: 1, footprint: local,
			position: func(_, _ int) geom.Vec { return advSite(0) }},
		{name: "auction", stalls: true, stalledSubmitEvery: 2, submitsPerRound: 2,
			footprint: func(c, _ int) []world.ObjectID {
				objs := make([]world.ObjectID, 0, p.hotObjects+1)
				for i := 0; i < p.hotObjects; i++ {
					objs = append(objs, advHot(i))
				}
				return append(objs, advOwn(c))
			},
			position: home},
		{name: "churn", stalls: true, stalledSubmitEvery: 3, submitsPerRound: 1,
			footprint: func(c, round int) []world.ObjectID {
				b := (round/p.stallEvery + c) % p.banks
				objs := []world.ObjectID{advOwn(c)}
				for i := 0; i < p.bankObjects; i++ {
					objs = append(objs, advBank(p, b, i))
				}
				slices.Sort(objs)
				return objs
			},
			position: func(c, round int) geom.Vec {
				return advSite((clusterOf(c) + round/p.stallEvery) % p.clusters)
			}},
	}
}

type advResult struct {
	bytes int
	// stalledBytes is the slice of bytes delivered to the stalled cohort
	// — where the two delivery disciplines actually diverge. The keep-up
	// majority's traffic is identical by construction and would bury the
	// effect in the total.
	stalledBytes          int
	frames                int
	batches               int
	envs                  int
	enqueued              int
	drops                 int64
	superseded, coalesced int64
	snapshots             int
	maxStale              int64
}

// advRig is the headless delivery path: the real engine replies, the
// real encode boundary, and the real SendQueue escalation ladder —
// enqueue, tail-coalesce, snapshot fallback — with the harness standing
// in for the writer pumps.
type advRig struct {
	eng    *core.Server
	queues map[action.ClientID]*transport.SendQueue
	ctrs   *transport.DeliveryCounters
	// stalled marks the cohort whose drains are withheld during the
	// stall window; their delivered bytes are accounted separately.
	stalled map[action.ClientID]bool
	nowMs   float64
	res     advResult
}

// dispatch mirrors transport.Server.dispatch: encode each reply into
// its client's queue, and answer NeedSnapshot verdicts with the
// engine's blind-write catch-up, whose replies re-enter the same path.
func (r *advRig) dispatch(out core.ServerOutput) {
	var needSnap []action.ClientID
	var cache wire.EncodeCache
	defer cache.Reset()
	for i := range out.Replies {
		rep := &out.Replies[i]
		q := r.queues[rep.To]
		if q == nil {
			continue
		}
		r.res.enqueued++
		f := wire.NewFrameCached(&cache, rep.Msg)
		if q.Enqueue(f, rep.Deliver) == transport.NeedSnapshot && !slices.Contains(needSnap, rep.To) {
			needSnap = append(needSnap, rep.To)
		}
	}
	for _, cid := range needSnap {
		r.res.snapshots++
		r.dispatch(r.eng.SnapshotCatchUp(cid, r.nowMs))
	}
}

// drain empties one client's queue through the wire boundary, counting
// what a connected client would have received.
func (r *advRig) drain(cid action.ClientID) error {
	q := r.queues[cid]
	for {
		frames := q.PopAll(nil, 1<<30)
		if len(frames) == 0 {
			return nil
		}
		for _, f := range frames {
			r.res.bytes += f.Len()
			if r.stalled[cid] {
				r.res.stalledBytes += f.Len()
			}
			r.res.frames++
			msg, err := wire.ReadFrame(bytes.NewReader(f.Bytes()))
			f.Release()
			if err != nil {
				return fmt.Errorf("client %d: decode delivered frame: %w", cid, err)
			}
			if b, ok := msg.(*wire.Batch); ok {
				r.res.batches++
				r.res.envs += len(b.Envs)
			}
		}
	}
}

// runAdversarial drives one scenario through the delivery rig. The
// control loop is delivery-independent: completions are synthesized
// from the engine's closure replies (shardscale's mirror-evaluation
// trick) the moment they are produced, so install progress — and with
// it every reply the server generates — is identical whether the
// queues supersede, drop, or stall.
func runAdversarial(sc advScenario, p advParams, sup bool) (advResult, error) {
	registerTradeWire()
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeFirstBound
	cfg.ResumeWindow = 8

	init := world.NewState()
	for c := 1; c <= p.clients(); c++ {
		init.Set(advOwn(c), world.Value{0})
	}
	for cl := 0; cl < p.clusters; cl++ {
		init.Set(advHub(cl), world.Value{0})
	}
	for i := 0; i < p.hotObjects; i++ {
		init.Set(advHot(i), world.Value{0})
	}
	for b := 0; b < p.banks; b++ {
		for i := 0; i < p.bankObjects; i++ {
			init.Set(advBank(p, b, i), world.Value{0})
		}
	}

	eng := core.NewServer(cfg, init)
	rig := &advRig{eng: eng, queues: map[action.ClientID]*transport.SendQueue{},
		ctrs: &transport.DeliveryCounters{}, stalled: map[action.ClientID]bool{}}
	for c := 1; c <= p.clients(); c++ {
		cid := action.ClientID(c)
		eng.RegisterClient(cid, 0)
		rig.queues[cid] = transport.NewSendQueue(p.queueCap, sup, rig.ctrs)
		if sc.stalls && p.isStalled(c) {
			rig.stalled[cid] = true
		}
	}

	mirror := init.Clone()
	nextSeq := make([]uint32, p.clients()+1)
	pending := make([][]*wire.Completion, p.lag)
	stallActive := func(c, round int) bool {
		return sc.stalls && p.isStalled(c) && p.inStall(round)
	}

	step := func(round int) error {
		rig.nowMs += 300
		due := pending[0]
		copy(pending, pending[1:])
		pending[p.lag-1] = nil
		for _, comp := range due {
			rig.dispatch(eng.HandleMsg(comp.By, comp, rig.nowMs))
		}

		for c := 1; c <= p.clients(); c++ {
			// A stalled client's uplink stays alive (thinned per the
			// scenario): its submissions produce the non-coalescible
			// closure replies that force the snapshot escalation.
			if stallActive(c, round) && round%sc.stalledSubmitEvery != 0 {
				continue
			}
			cid := action.ClientID(c)
			for burst := 0; burst < sc.submitsPerRound; burst++ {
				nextSeq[c]++
				a := &tradeAction{
					id:   action.ID{Client: cid, Seq: nextSeq[c]},
					objs: sc.footprint(c, round),
					pos:  sc.position(c, round),
				}
				res := action.Eval(a, world.StateView{S: mirror})
				for _, wr := range res.Writes {
					mirror.Set(wr.ID, wr.Val)
				}
				out := eng.HandleMsg(cid, &wire.Submit{Env: action.Envelope{Origin: cid, Act: a}}, rig.nowMs)
				seq, found := uint64(0), false
				for _, rep := range out.Replies {
					batch, ok := rep.Msg.(*wire.Batch)
					if !ok || rep.To != cid {
						continue
					}
					for _, env := range batch.Envs {
						if env.Origin == cid && env.Act.ID() == a.id {
							seq, found = env.Seq, true
						}
					}
				}
				rig.dispatch(out)
				if !found {
					return fmt.Errorf("client %d round %d: submission produced no closure reply", c, round)
				}
				pending[p.lag-1] = append(pending[p.lag-1], &wire.Completion{Seq: seq, By: cid, Res: res})
			}
		}

		rig.dispatch(eng.Tick(rig.nowMs))

		for c := 1; c <= p.clients(); c++ {
			if stallActive(c, round) {
				continue
			}
			if err := rig.drain(action.ClientID(c)); err != nil {
				return err
			}
		}
		return nil
	}

	for round := 0; round < p.rounds; round++ {
		if err := step(round); err != nil {
			return advResult{}, err
		}
	}
	// Settle: flush the completion pipeline and let every stalled queue
	// drain — the post-stall catch-up traffic is part of the bill.
	for round := p.rounds; round < p.rounds+p.lag+1; round++ {
		if err := step(round); err != nil {
			return advResult{}, err
		}
	}
	for c := 1; c <= p.clients(); c++ {
		if err := rig.drain(action.ClientID(c)); err != nil {
			return advResult{}, err
		}
		rig.queues[action.ClientID(c)].Close()
	}

	rig.res.drops = rig.ctrs.Drops.Load()
	rig.res.superseded = rig.ctrs.Superseded.Load()
	rig.res.coalesced = rig.ctrs.Coalesced.Load()
	rig.res.maxStale = rig.ctrs.MaxStale.Load()
	if got := eng.Metrics().SnapshotFallbacks; got != rig.res.snapshots {
		return advResult{}, fmt.Errorf("engine counted %d snapshot fallbacks, rig issued %d", got, rig.res.snapshots)
	}
	return rig.res, nil
}

// tradeAction is the adversarial workload unit: read a declared object
// set, bump every member. Footprint and position are free parameters,
// which is all the scenarios need — conflict density comes from
// overlapping object sets, fan-out from position proximity.
type tradeAction struct {
	id   action.ID
	objs []world.ObjectID
	pos  geom.Vec
}

const kindTrade action.Kind = 1600

const tradeRadius = 5.0

func (a *tradeAction) ID() action.ID         { return a.id }
func (a *tradeAction) Kind() action.Kind     { return kindTrade }
func (a *tradeAction) ReadSet() world.IDSet  { return world.IDSet(a.objs) }
func (a *tradeAction) WriteSet() world.IDSet { return world.IDSet(a.objs) }
func (a *tradeAction) Influence() geom.Circle {
	return geom.Circle{Center: a.pos, R: tradeRadius}
}

func (a *tradeAction) Apply(tx *world.Tx) bool {
	for _, o := range a.objs {
		v, ok := tx.Read(o)
		if !ok {
			return false
		}
		tx.Write(o, world.Value{v[0] + 1})
	}
	return true
}

func (a *tradeAction) MarshalBody() []byte {
	buf := make([]byte, 0, 18+8*len(a.objs))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.pos.X))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.pos.Y))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(a.objs)))
	for _, o := range a.objs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o))
	}
	return buf
}

func unmarshalTrade(id action.ID, body []byte) (action.Action, error) {
	if len(body) < 18 {
		return nil, fmt.Errorf("experiments: trade body too short: %d bytes", len(body))
	}
	a := &tradeAction{id: id}
	a.pos.X = math.Float64frombits(binary.LittleEndian.Uint64(body[0:8]))
	a.pos.Y = math.Float64frombits(binary.LittleEndian.Uint64(body[8:16]))
	n := int(binary.LittleEndian.Uint16(body[16:18]))
	if len(body) != 18+8*n {
		return nil, fmt.Errorf("experiments: trade body length %d, want %d objects", len(body), n)
	}
	a.objs = make([]world.ObjectID, n)
	for i := 0; i < n; i++ {
		a.objs[i] = world.ObjectID(binary.LittleEndian.Uint64(body[18+8*i:]))
	}
	return a, nil
}

// tradeWireOnce guards the process-global action registry: every
// scenario (and every test that drives one) shares the one decoder.
var tradeWireOnce sync.Once

func registerTradeWire() {
	tradeWireOnce.Do(func() {
		wire.RegisterKind(kindTrade, unmarshalTrade)
	})
}
