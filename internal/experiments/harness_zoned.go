package experiments

import (
	"fmt"

	"seve/internal/action"
	"seve/internal/baseline"
	"seve/internal/manhattan"
	"seve/internal/netsim"
	"seve/internal/sim"
	"seve/internal/wire"
)

// Zoned-architecture wiring (Section II-A). Zone servers occupy node ids
// zoneNodeBase+z; clients route each move to the server whose tile their
// avatar stands in, and servers gossip effects over fast intra-
// datacenter links.

const zoneNodeBase netsim.NodeID = 100_000

func (h *harness) zoneNode(z int) netsim.NodeID { return zoneNodeBase + netsim.NodeID(z) }

func (h *harness) buildZoned() {
	perRow := h.rc.ZonesPerRow
	if perRow < 1 {
		perRow = 2
	}
	h.zones = baseline.NewZoneGrid(h.rc.World.Width, h.rc.World.Height, perRow, h.init)
	h.centralClients = make(map[action.ClientID]*baseline.CentralClient)
	h.clientProcs = make(map[action.ClientID]*sim.Proc)
	h.zoneProcs = make([]*sim.Proc, h.zones.Zones())

	for z := 0; z < h.zones.Zones(); z++ {
		z := z
		srv := h.zones.Server(z)
		proc := sim.NewProc(h.k, fmt.Sprintf("zone%d", z))
		h.zoneProcs[z] = proc
		node := h.zoneNode(z)
		h.net.AddNode(node, func(from netsim.NodeID, msg netsim.Message) {
			switch m := msg.(type) {
			case *wire.Submit:
				out := srv.HandleSubmit(action.ClientID(from), m)
				cost := h.rc.Costs.ServerDispatchMs
				for _, a := range out.Executed {
					cost += h.rc.Costs.actionCost(a)
				}
				proc.Exec(sim.Time(cost), func() {
					for _, rep := range out.Replies {
						h.net.Send(node, h.nodeOf(rep.To), rep.Msg)
					}
					for _, pu := range out.PeerUpdates {
						for pz := 0; pz < h.zones.Zones(); pz++ {
							if pz != z {
								h.net.Send(node, h.zoneNode(pz), pu)
							}
						}
					}
				})
			case *wire.Batch:
				// Peer gossip: cheap replica maintenance.
				srv.HandlePeerUpdate(m)
				proc.Exec(sim.Time(0.01), func() {})
			}
		})
	}
	// Server-to-server links: same datacenter, 2 ms, effectively
	// unmetered.
	for a := 0; a < h.zones.Zones(); a++ {
		for b := 0; b < h.zones.Zones(); b++ {
			if a != b {
				h.net.SetLink(h.zoneNode(a), h.zoneNode(b),
					netsim.LinkConfig{Latency: 2, BandwidthBps: 0})
			}
		}
	}

	for i := 1; i <= h.rc.World.NumAvatars; i++ {
		cid := action.ClientID(i)
		h.zones.RegisterClient(cid)
		cl := baseline.NewCentralClient(cid, h.init)
		h.centralClients[cid] = cl
		proc := sim.NewProc(h.k, fmt.Sprintf("client%d", i))
		h.clientProcs[cid] = proc
		h.net.AddNode(h.nodeOf(cid), func(from netsim.NodeID, msg netsim.Message) {
			commits := cl.HandleMsg(msg.(wire.Msg))
			proc.Exec(0, func() { h.recordCommits(commits) })
		})
	}
}

// submitMoveZoned routes the move to the zone covering the avatar's
// current position in the client's view.
func (h *harness) submitMoveZoned(cid action.ClientID) {
	cl := h.centralClients[cid]
	avatar := manhattan.AvatarID(int(cid))
	mv, err := h.w.NewMove(cl.NextActionID(), avatar, cl.View())
	if err != nil {
		h.res.Violations = append(h.res.Violations, err.Error())
		return
	}
	h.sampleVisibility(cl.View(), avatar)
	msg := cl.Submit(mv)
	h.submitAt[mv.ID()] = h.k.Now()
	h.res.Submitted++
	zone := h.zones.ZoneOf(mv.Influence().Center)
	h.net.Send(h.nodeOf(cid), h.zoneNode(zone), msg)
}
