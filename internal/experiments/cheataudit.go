package experiments

import (
	"fmt"
	"time"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/geom"
	"seve/internal/metrics"
	"seve/internal/shard"
	"seve/internal/wire"
	"seve/internal/world"
)

// Cheataudit measures what the semantic integrity layer (DESIGN.md §16)
// costs and what it buys, per audit sample rate. For each rate the
// table reports engine submits/s on an all-honest workload and the
// overhead against an integrity-disabled baseline — the price of the
// always-on validator plus the sampled re-executions — and, from a
// separate run with cheating clients that tamper completion values
// in-footprint (invisible to the cheap validator, only re-execution
// catches them), the mean number of tampered completions a cheater
// lands before the auditor quarantines it. The expected detection
// latency is geometric, ~1/rate; rate 0 never detects value tampering
// and anchors the curve.
func Cheataudit(opt Options) (*metrics.Table, error) {
	groups := pick(opt, 16, 8)
	perGroup := pick(opt, 16, 8)
	rounds := pick(opt, 30, 8)
	reps := pick(opt, 3, 1)
	cheaters := pick(opt, 16, 8)
	maxTries := pick(opt, 400, 200)

	type variant struct {
		name     string
		disabled bool
		rate     float64
	}
	variants := []variant{
		{"off", true, 0},
		{"0.00", false, 0},
		{"0.05", false, 0.05},
		{"0.25", false, 0.25},
		{"1.00", false, 1.0},
	}

	t := &metrics.Table{
		Title: fmt.Sprintf("Integrity audit cost and detection latency: %d groups × %d clients, %d rounds honest; %d value-tampering cheaters, detection capped at %d completions",
			groups, perGroup, rounds, cheaters, maxTries),
		Header: []string{"rate", "submits/s", "overhead", "audits", "audited", "detect@"},
	}
	// Untimed warm-up so the integrity-off baseline (which runs first)
	// doesn't absorb the process's one-time costs.
	if _, _, err := measureAuditedSubmit(groups, perGroup, min(rounds, 8), true, 0); err != nil {
		return nil, err
	}
	base := 0.0
	for _, v := range variants {
		var persec float64
		var ss metrics.ServerStats
		for rep := 0; rep < reps; rep++ {
			p, s, err := measureAuditedSubmit(groups, perGroup, rounds, v.disabled, v.rate)
			if err != nil {
				return nil, fmt.Errorf("cheataudit rate=%s: %w", v.name, err)
			}
			if p > persec {
				persec, ss = p, s
			}
		}
		if ss.QuarantinedClients != 0 || ss.AuditDivergences != 0 {
			return nil, fmt.Errorf("cheataudit rate=%s: integrity fired on honest clients: %+v", v.name, ss)
		}
		if base == 0 {
			base = persec
		}
		overhead := (base - persec) / base * 100

		detect := "-"
		if !v.disabled && v.rate > 0 {
			mean, caught, err := measureDetectionLatency(cheaters, maxTries, v.rate)
			if err != nil {
				return nil, fmt.Errorf("cheataudit rate=%s: %w", v.name, err)
			}
			detect = fmt.Sprintf("%.1f", mean)
			if caught < cheaters {
				detect = fmt.Sprintf("%.1f (%d/%d)", mean, caught, cheaters)
			}
		}
		audited := 0.0
		if ss.CompletionsTaken > 0 {
			audited = float64(ss.AuditsRun) / float64(ss.CompletionsTaken) * 100
		}
		t.AddRow(v.name, fmt.Sprintf("%.0f", persec),
			fmt.Sprintf("%.1f%%", overhead),
			fmt.Sprintf("%d", ss.AuditsRun),
			fmt.Sprintf("%.1f%%", audited),
			detect)
		opt.log("cheataudit rate=%s submits/s=%.0f overhead=%.1f%% audits=%d detect=%s",
			v.name, persec, overhead, ss.AuditsRun, detect)
	}
	return t, nil
}

// measureAuditedSubmit drives the conflict-dense group workload through
// synchronized rounds on a single-lane engine — exactly as
// measureDurableSubmit does, minus the journal — with the integrity
// layer disabled or armed at the given audit rate. Every client is
// honest, so the measured delta is pure enforcement overhead: the
// per-completion contract/footprint checks plus the sampled
// re-executions against ζS.
func measureAuditedSubmit(groups, perGroup, rounds int, disabled bool, rate float64) (float64, metrics.ServerStats, error) {
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeIncomplete
	cfg.Threshold = 1e12
	cfg.Shards = 1
	cfg.ShardCellSize = 100
	cfg.DisableIntegrity = disabled
	cfg.AuditRate = rate

	init := world.NewState()
	hubOf := func(g int) world.ObjectID { return world.ObjectID(g*(perGroup+1) + 1) }
	ownOf := func(g, i int) world.ObjectID { return world.ObjectID(g*(perGroup+1) + 2 + i) }
	for g := 0; g < groups; g++ {
		init.Set(hubOf(g), world.Value{0})
		for i := 0; i < perGroup; i++ {
			init.Set(ownOf(g, i), world.Value{0})
		}
	}

	eng := shard.NewEngine(cfg, init)
	if r, ok := eng.(*shard.Router); ok {
		defer r.Close()
	}
	clients := groups * perGroup
	for c := 1; c <= clients; c++ {
		eng.RegisterClient(action.ClientID(c), 0)
	}

	mirror := init.Clone()
	nextSeq := make([]uint32, clients+1)
	pending := make([][]*wire.Completion, completionLag)
	var engineTime time.Duration
	nowMs := 0.0

	for round := 0; round < rounds; round++ {
		due := pending[0]
		copy(pending, pending[1:])
		pending[completionLag-1] = nil
		start := time.Now()
		for _, c := range due {
			eng.HandleMsg(c.By, c, nowMs)
		}
		engineTime += time.Since(start)

		acts := make(map[action.ID]*groupAction, clients)
		var outs []core.ServerOutput
		start = time.Now()
		for c := 1; c <= clients; c++ {
			cid := action.ClientID(c)
			g := (c - 1) / perGroup
			nextSeq[c]++
			a := &groupAction{
				id:  action.ID{Client: cid, Seq: nextSeq[c]},
				hub: hubOf(g), own: ownOf(g, (c-1)%perGroup),
				pos: geom.Vec{X: float64(g)*300 + 50, Y: float64(g)*300 + 50},
			}
			acts[a.id] = a
			outs = append(outs, eng.HandleMsg(cid, &wire.Submit{Env: action.Envelope{Origin: cid, Act: a}}, nowMs))
		}
		if f, ok := eng.(core.Flusher); ok {
			outs = append(outs, f.Flush())
		}
		engineTime += time.Since(start)
		nowMs += 300

		for _, out := range outs {
			for _, rep := range out.Replies {
				batch, ok := rep.Msg.(*wire.Batch)
				if !ok {
					continue
				}
				for _, env := range batch.Envs {
					a, mine := acts[env.Act.ID()]
					if !mine || env.Origin != rep.To {
						continue
					}
					res := action.Eval(a, world.StateView{S: mirror})
					for _, wr := range res.Writes {
						mirror.Set(wr.ID, wr.Val)
					}
					pending[completionLag-1] = append(pending[completionLag-1],
						&wire.Completion{Seq: env.Seq, By: rep.To, Res: res})
					delete(acts, env.Act.ID())
				}
			}
		}
	}

	total := float64(clients * rounds)
	return total / engineTime.Seconds(), eng.Metrics(), nil
}

// measureDetectionLatency runs one value-tampering cheater per client
// slot against a single-lane engine at the given audit rate and returns
// the mean number of tampered completions accepted before the verdict,
// plus how many cheaters were caught within the cap. Each cheater owns
// a disjoint object pair, so its poison never leaks into another run's
// region; the tampered value stays inside the declared write set, which
// makes the cheap validator blind to it — detection is purely the
// auditor's sampling, one geometric trial per completion.
func measureDetectionLatency(cheaters, maxTries int, rate float64) (float64, int, error) {
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeIncomplete
	cfg.Threshold = 1e12
	cfg.Shards = 1
	cfg.ShardCellSize = 100
	cfg.AuditRate = rate

	init := world.NewState()
	hubOf := func(g int) world.ObjectID { return world.ObjectID(g*2 + 1) }
	ownOf := func(g int) world.ObjectID { return world.ObjectID(g*2 + 2) }
	for g := 0; g < cheaters; g++ {
		init.Set(hubOf(g), world.Value{0})
		init.Set(ownOf(g), world.Value{0})
	}

	eng := shard.NewEngine(cfg, init)
	if r, ok := eng.(*shard.Router); ok {
		defer r.Close()
	}
	for c := 1; c <= cheaters; c++ {
		eng.RegisterClient(action.ClientID(c), 0)
	}

	flush := func(outs []core.ServerOutput) []core.ServerOutput {
		if f, ok := eng.(core.Flusher); ok {
			outs = append(outs, f.Flush())
		}
		return outs
	}

	total, caught := 0, 0
	nowMs := 0.0
	for c := 1; c <= cheaters; c++ {
		cid := action.ClientID(c)
		g := c - 1
		detected := false
		for try := 1; try <= maxTries && !detected; try++ {
			a := &groupAction{
				id:  action.ID{Client: cid, Seq: uint32(try)},
				hub: hubOf(g), own: ownOf(g),
				pos: geom.Vec{X: float64(g)*300 + 50, Y: float64(g)*300 + 50},
			}
			var outs []core.ServerOutput
			outs = append(outs, eng.HandleMsg(cid, &wire.Submit{Env: action.Envelope{Origin: cid, Act: a}}, nowMs))
			outs = flush(outs)
			nowMs += 300

			var seq uint64
			for _, out := range outs {
				for _, rep := range out.Replies {
					batch, ok := rep.Msg.(*wire.Batch)
					if !ok || rep.To != cid {
						continue
					}
					for _, env := range batch.Envs {
						if env.Act.ID() == a.id {
							seq = env.Seq
						}
					}
				}
			}
			if seq == 0 {
				return 0, 0, fmt.Errorf("cheater %d try %d: submission never stamped", c, try)
			}

			// In-footprint tampering: claim writes on exactly the
			// declared set, with values the action could never produce.
			forged := action.Result{OK: true, Writes: []world.Write{
				{ID: a.hub, Val: world.Value{1e6 + float64(try)}},
				{ID: a.own, Val: world.Value{1e6 + float64(try)}},
			}}
			outs = outs[:0]
			outs = append(outs, eng.HandleMsg(cid, &wire.Completion{Seq: seq, By: cid, Res: forged}, nowMs))
			outs = flush(outs)
			nowMs += 300
			for _, out := range outs {
				for _, rep := range out.Replies {
					if _, ok := rep.Msg.(*wire.Quarantine); ok && rep.To == cid {
						total += try
						caught++
						detected = true
					}
				}
			}
		}
		if !detected {
			total += maxTries
		}
	}
	if caught == 0 {
		return float64(maxTries), 0, nil
	}
	return float64(total) / float64(cheaters), caught, nil
}
