// Package experiments regenerates the paper's evaluation (Section V):
// one runner per figure and table, each wiring a protocol architecture
// and the Manhattan People workload into the discrete-event simulator.
//
// The simulator substitutes for the paper's 65-machine EMULab testbed
// (see DESIGN.md): nodes are single-core processors, links carry the
// Table I latency and bandwidth, and per-move compute cost is charged in
// virtual milliseconds using the paper's own calibration (7.44 ms per
// move at 100 000 walls).
package experiments

import (
	"fmt"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/manhattan"
	"seve/internal/metrics"
	"seve/internal/netsim"
	"seve/internal/sim"
)

// Arch selects the architecture under test.
type Arch int

// Architectures of Section V-B.
const (
	// ArchSEVE is the full action-based protocol (Incomplete World +
	// First Bound + Information Bound).
	ArchSEVE Arch = iota
	// ArchSEVENoDrop disables the Information Bound Model ("SEVE without
	// move dropping" in Figure 8).
	ArchSEVENoDrop
	// ArchCentral is the centralized server (Second Life / WoW).
	ArchCentral
	// ArchBroadcast is the NPSNET/SIMNET broadcast model.
	ArchBroadcast
	// ArchRing is the visibility-filtered RING-like architecture.
	ArchRing
	// ArchLocking is the distributed-locking protocol family of
	// Section II-B (Project Darkstar): response time ≥ 2×RTT.
	ArchLocking
	// ArchOwnership is the object-ownership family of Section II-B
	// (Cyberwalk/WAVES): instant owner-local commits, stale caches.
	ArchOwnership
	// ArchZoned is the Section II-A zoning architecture: the world tiled
	// across multiple Central-style servers.
	ArchZoned
)

// String names the architecture in experiment tables.
func (a Arch) String() string {
	switch a {
	case ArchSEVE:
		return "SEVE"
	case ArchSEVENoDrop:
		return "SEVE-nodrop"
	case ArchCentral:
		return "Central"
	case ArchBroadcast:
		return "Broadcast"
	case ArchRing:
		return "RING"
	case ArchLocking:
		return "Locking"
	case ArchOwnership:
		return "Ownership"
	case ArchZoned:
		return "Zoned"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Costs models compute charges in virtual milliseconds. Calibration
// follows Section V: moves carry their own cost (manhattan.MoveAction);
// the SEVE server charges per-submission dispatch plus per-queue-entry
// scan such that the transitive closure over a single move costs the
// paper's measured 0.04 ms at the Figure 6 scale.
type Costs struct {
	// ServerDispatchMs is charged per message the server handles.
	ServerDispatchMs float64
	// ScanMs is charged per uncommitted-queue entry examined by closure
	// or validity analysis.
	ScanMs float64
	// BlindWritePerObjectMs is charged per object installed from a blind
	// write at a client.
	BlindWritePerObjectMs float64
	// DefaultActionMs is charged for evaluating an action that does not
	// declare its own cost.
	DefaultActionMs float64
	// SyncOverheadMs is added to every application-action evaluation at
	// any node. The paper measures it at 60 ms per 32-client round —
	// 1.875 ms per action — "attributed to synchronization and
	// networking overhead" (Section V-B1); it is what puts the Central
	// and Broadcast knees at 30–32 clients rather than 40.
	SyncOverheadMs float64
}

// DefaultCosts returns the Section V calibration.
func DefaultCosts() Costs {
	return Costs{
		ServerDispatchMs:      0.02,
		ScanMs:                0.0004, // ~100-entry queue → 0.04 ms/move
		BlindWritePerObjectMs: 0.002,
		DefaultActionMs:       0.1,
		SyncOverheadMs:        1.875, // 60 ms per 32-client round
	}
}

// actionCost returns the compute charge for evaluating a at a node.
func (c Costs) actionCost(a action.Action) float64 {
	if bw, ok := a.(*action.BlindWrite); ok {
		return c.BlindWritePerObjectMs * float64(len(bw.Writes()))
	}
	if ca, ok := a.(interface{ CostMs() float64 }); ok {
		return ca.CostMs() + c.SyncOverheadMs
	}
	return c.DefaultActionMs + c.SyncOverheadMs
}

// RunConfig describes one experimental run.
type RunConfig struct {
	Arch  Arch
	World manhattan.Config
	// Spacing > 0 places avatars on a grid that far apart (Figure 8).
	Spacing float64
	// MovesPerClient and MoveIntervalMs follow Table I (100 moves,
	// one per 300 ms).
	MovesPerClient int
	MoveIntervalMs float64
	// Link parameters (Table I: 238 ms, 100 Kbps).
	LatencyMs    float64
	BandwidthBps float64
	// Core carries SEVE protocol parameters; zero means DefaultConfig
	// adjusted to the workload.
	Core core.Config
	// RingVisibility is the RING filter range; zero means the world's
	// avatar visibility.
	RingVisibility float64
	// CentralVisibility filters Central's update fan-out; zero means
	// the world's avatar visibility.
	CentralVisibility float64
	// ZonesPerRow tiles the world into ZonesPerRow² zones (ArchZoned;
	// zero means 2×2).
	ZonesPerRow int
	// CrowdFraction places this fraction of avatars in the lower-left
	// quarter tile at start (the Section II-A crowding stress); zero
	// keeps the Spacing-based placement.
	CrowdFraction float64
	// Costs models compute; zero-value means DefaultCosts.
	Costs Costs
	// Verify replays the history through the serial oracle and checks
	// the Theorem 1 invariants (slow; used by tests and small runs).
	Verify bool
	// SlackMs extends the simulation beyond the last scheduled move to
	// let in-flight work resolve.
	SlackMs float64
}

// DefaultRunConfig returns the Table I setup for the given architecture
// and client count.
func DefaultRunConfig(arch Arch, clients int) RunConfig {
	w := manhattan.DefaultConfig()
	w.NumAvatars = clients
	return RunConfig{
		Arch:           arch,
		World:          w,
		MovesPerClient: 100,
		MoveIntervalMs: 300,
		LatencyMs:      238,
		BandwidthBps:   100_000,
		Costs:          DefaultCosts(),
		SlackMs:        20_000,
	}
}

// coreConfig derives the SEVE protocol configuration from the run.
func (rc RunConfig) coreConfig() core.Config {
	cfg := rc.Core
	if cfg.RTTMs == 0 {
		cfg = core.DefaultConfig()
		cfg.RTTMs = 2 * rc.LatencyMs
		cfg.MaxSpeed = rc.World.Speed
		cfg.DefaultRadius = rc.World.EffectRange
		cfg.Threshold = 1.5 * rc.World.Visibility
	}
	switch rc.Arch {
	case ArchSEVE:
		cfg.Mode = core.ModeInfoBound
	case ArchSEVENoDrop:
		cfg.Mode = core.ModeFirstBound
	}
	if rc.Verify {
		cfg.Strict = true
		cfg.RecordHistory = true
	}
	return cfg
}

// Result carries everything the experiment tables report.
type Result struct {
	Arch     Arch
	Clients  int
	Response metrics.Recorder

	Submitted     int
	Committed     int
	Dropped       int
	Unresolved    int
	DropsByClient map[action.ClientID]int

	TotalBytes      uint64
	ServerSentBytes uint64
	ServerRecvBytes uint64

	ServerBusyMs    float64
	MaxClientBusyMs float64
	QueueScans      int

	AvgVisibleAvatars float64
	// Divergence counts client-held objects whose final value differs
	// from the serial oracle (the inconsistency of RING and Ownership;
	// zero for SEVE, Central, Broadcast, Locking).
	Divergence int
	// LockQueued counts lock requests that had to wait (ArchLocking).
	LockQueued int
	// MaxStableVersions is the largest per-client stable-store version
	// count at the end of the run — the memory the Section III-C garbage
	// collection bounds.
	MaxStableVersions int
	// ClientStats aggregates the client engines' cumulative counters
	// (reconciliations, remote/blind applications, divergence tracking)
	// across the fleet, for architectures that run core.Client engines.
	ClientStats metrics.ClientStats

	SimEndMs   float64
	Violations []string
}

// Run executes one experiment run and returns its measurements.
func Run(rc RunConfig) (*Result, error) {
	if rc.MovesPerClient <= 0 || rc.MoveIntervalMs <= 0 {
		return nil, fmt.Errorf("experiments: moves per client and interval must be positive")
	}
	if (rc.Costs == Costs{}) {
		rc.Costs = DefaultCosts()
	}
	w := manhattan.NewWorld(rc.World)
	init := w.InitialState(rc.Spacing)
	if rc.CrowdFraction > 0 {
		init = w.InitialStateCrowded(rc.CrowdFraction)
	}

	k := sim.NewKernel()
	net := netsim.New(k, netsim.LinkConfig{Latency: sim.Time(rc.LatencyMs), BandwidthBps: rc.BandwidthBps})

	r := &Result{Arch: rc.Arch, Clients: rc.World.NumAvatars, DropsByClient: map[action.ClientID]int{}}
	h := &harness{rc: rc, w: w, init: init, k: k, net: net, res: r,
		submitAt: map[action.ID]sim.Time{}}

	switch rc.Arch {
	case ArchSEVE, ArchSEVENoDrop:
		h.buildSEVE()
	case ArchCentral:
		h.buildCentral()
	case ArchBroadcast:
		h.buildBroadcast()
	case ArchRing:
		h.buildRing()
	case ArchLocking:
		h.buildLocking()
	case ArchOwnership:
		h.buildOwnership()
	case ArchZoned:
		h.buildZoned()
	default:
		return nil, fmt.Errorf("experiments: unknown architecture %d", int(rc.Arch))
	}

	h.scheduleWorkload()

	horizon := sim.Time(float64(rc.MovesPerClient)*rc.MoveIntervalMs + 2*rc.LatencyMs + rc.SlackMs)
	k.RunUntil(horizon)
	r.SimEndMs = float64(k.Now())
	r.Unresolved = r.Submitted - r.Committed - r.Dropped
	if h.visSamples > 0 {
		r.AvgVisibleAvatars = h.visSum / float64(h.visSamples)
	}
	h.finish()

	if rc.Verify {
		if err := h.verify(); err != nil {
			return r, err
		}
	}
	return r, nil
}
