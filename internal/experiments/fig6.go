package experiments

import (
	"fmt"

	"seve/internal/metrics"
)

// Fig6 regenerates Figure 6: "Scalability of SEVE vs Central
// architecture" — mean response time observed by clients against the
// number of clients, for the Central, SEVE, and Broadcast models, at
// 100 000 walls with the per-move cost calibrated to the paper's
// measured 7.44 ms.
//
// Expected shape (Section V-B1): Central and Broadcast break down at
// about 30–32 clients — 32 clients × 7.44 ms consumes 238 of the 300 ms
// between moves, and past that the serving processor (the server for
// Central, every client for Broadcast) accumulates an unbounded backlog.
// SEVE's response time stays flat: its server only timestamps and
// analyzes read/write sets.
func Fig6(opt Options) (*metrics.Table, error) {
	counts := pick(opt, []int{4, 8, 16, 24, 32, 40, 48, 56, 64}, []int{4, 16, 32, 48})
	archs := []Arch{ArchCentral, ArchSEVE, ArchBroadcast}

	t := &metrics.Table{
		Title:  "Figure 6: Response Time (ms) vs Number of Clients (100k walls, 7.44 ms/move)",
		Header: []string{"clients", "Central", "SEVE", "Broadcast"},
	}
	for _, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, arch := range archs {
			rc := DefaultRunConfig(arch, n)
			rc.MovesPerClient = opt.moves()
			rc.World = calibrateMoveCost(rc.World, 7.44)
			rc.SlackMs = 60_000 // let saturated backlogs drain so means are honest
			res, err := Run(rc)
			if err != nil {
				return nil, fmt.Errorf("fig6 %v/%d: %w", arch, n, err)
			}
			row = append(row, metrics.Ms(res.Response.Mean()))
			opt.log("fig6 %v clients=%d mean=%.0fms committed=%d/%d",
				arch, n, res.Response.Mean(), res.Committed, res.Submitted)
		}
		t.AddRow(row...)
	}
	return t, nil
}
