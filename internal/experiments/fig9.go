package experiments

import (
	"fmt"

	"seve/internal/metrics"
)

// Fig9 regenerates Figure 9: "Total data transfer" — bytes put on all
// links over the run, against the number of clients, for Central, SEVE
// and Broadcast.
//
// Expected shape (Section V-B2): Broadcast traffic is quadratic in the
// number of clients (every action relayed to every client — the original
// motivation for RING); SEVE's total "does not differ significantly from
// a centralized model, which obviously is optimal in total traffic".
// Absolute byte counts depend on this codec's message sizes, so only the
// ratios and growth rates are comparable to the paper's kb figures.
func Fig9(opt Options) (*metrics.Table, error) {
	counts := pick(opt, []int{8, 16, 24, 32, 40, 48, 56, 64}, []int{8, 24, 48})
	archs := []Arch{ArchCentral, ArchSEVE, ArchBroadcast}

	t := &metrics.Table{
		Title:  "Figure 9: Total Data Transfer (kb) vs Number of Clients",
		Header: []string{"clients", "Central", "SEVE", "Broadcast"},
	}
	for _, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, arch := range archs {
			rc := DefaultRunConfig(arch, n)
			rc.MovesPerClient = opt.moves()
			// Light per-move cost: Figure 9 measures traffic, not
			// saturation, and a saturated run stops emitting messages.
			rc.World.NumWalls = 1000
			rc.World.BaseCostMs = 1
			rc.World.PerWallCostMs = 0
			res, err := Run(rc)
			if err != nil {
				return nil, fmt.Errorf("fig9 %v/%d: %w", arch, n, err)
			}
			row = append(row, metrics.KB(res.TotalBytes))
			opt.log("fig9 %v clients=%d bytes=%d", arch, n, res.TotalBytes)
		}
		t.AddRow(row...)
	}
	return t, nil
}
