package experiments

import (
	"fmt"

	"seve/internal/metrics"
)

// Fig7 regenerates Figure 7: "Response Time vs Action Complexity" —
// mean response time against the compute cost of a single move, with the
// number of clients fixed at 25. The cost knob is applied directly as
// the per-move base cost (the paper turned the same knob via wall count
// and trig-heavy evaluation).
//
// Expected shape (Section V-B1): Central and Broadcast perform well
// below ~10 ms per move (25 clients × 12 ms = 300 ms, the full move
// budget) and become unplayable past it; SEVE is unaffected because no
// single node evaluates more than its own neighbourhood.
func Fig7(opt Options) (*metrics.Table, error) {
	costs := pick(opt,
		[]float64{1, 3, 5, 7.44, 10, 12, 15, 20, 25},
		[]float64{1, 7.44, 15, 25})
	archs := []Arch{ArchCentral, ArchSEVE, ArchBroadcast}
	const clients = 25

	t := &metrics.Table{
		Title:  "Figure 7: Response Time (ms) vs Complexity as Time per Action (ms), 25 clients",
		Header: []string{"ms/action", "Central", "SEVE", "Broadcast"},
	}
	for _, c := range costs {
		row := []string{metrics.Ms(c)}
		for _, arch := range archs {
			rc := DefaultRunConfig(arch, clients)
			rc.MovesPerClient = opt.moves()
			rc.World.NumWalls = 1000 // geometry only; cost pinned below
			rc.World.BaseCostMs = c
			rc.World.PerWallCostMs = 0
			rc.SlackMs = 60_000
			res, err := Run(rc)
			if err != nil {
				return nil, fmt.Errorf("fig7 %v/%.1f: %w", arch, c, err)
			}
			row = append(row, metrics.Ms(res.Response.Mean()))
			opt.log("fig7 %v cost=%.1fms mean=%.0fms", arch, c, res.Response.Mean())
		}
		t.AddRow(row...)
	}
	return t, nil
}
