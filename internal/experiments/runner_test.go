package experiments

import (
	"testing"

	"seve/internal/manhattan"
)

// smallRun returns a quick configuration: 8 clients, few walls, 10 moves.
func smallRun(arch Arch) RunConfig {
	rc := DefaultRunConfig(arch, 8)
	rc.World.NumWalls = 500
	rc.World.Width, rc.World.Height = 300, 300
	rc.MovesPerClient = 10
	rc.Verify = true
	return rc
}

func TestRunSEVESmall(t *testing.T) {
	res, err := Run(smallRun(ArchSEVE))
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != 80 {
		t.Fatalf("submitted = %d, want 80", res.Submitted)
	}
	if res.Unresolved != 0 {
		t.Fatalf("unresolved = %d (committed %d, dropped %d)", res.Unresolved, res.Committed, res.Dropped)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
	// Response time is one round trip plus processing: within
	// (1+omega)RTT plus modest slack per the First Bound claim.
	if mean := res.Response.Mean(); mean < 476 || mean > 476*1.8 {
		t.Fatalf("SEVE mean response = %v ms, want ≈ RTT (476–857)", mean)
	}
}

func TestRunSEVENoDropSmall(t *testing.T) {
	res, err := Run(smallRun(ArchSEVENoDrop))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Fatalf("no-drop run dropped %d", res.Dropped)
	}
	if res.Unresolved != 0 {
		t.Fatalf("unresolved = %d", res.Unresolved)
	}
}

func TestRunCentralSmall(t *testing.T) {
	res, err := Run(smallRun(ArchCentral))
	if err != nil {
		t.Fatal(err)
	}
	if res.Unresolved != 0 {
		t.Fatalf("unresolved = %d of %d", res.Unresolved, res.Submitted)
	}
	// Lightly loaded central: response ≈ RTT + exec.
	if mean := res.Response.Mean(); mean < 476 || mean > 700 {
		t.Fatalf("central mean response = %v", mean)
	}
	// The server did all the game-logic compute.
	if res.ServerBusyMs <= 0 {
		t.Fatal("central server did no work")
	}
	if res.ServerBusyMs < res.MaxClientBusyMs {
		t.Fatal("central clients computed more than the server")
	}
}

func TestRunBroadcastSmall(t *testing.T) {
	res, err := Run(smallRun(ArchBroadcast))
	if err != nil {
		t.Fatal(err)
	}
	if res.Unresolved != 0 {
		t.Fatalf("unresolved = %d", res.Unresolved)
	}
	// Every client evaluates every action: client compute exceeds the
	// relay server's.
	if res.MaxClientBusyMs <= res.ServerBusyMs {
		t.Fatalf("broadcast client busy %v ≤ server busy %v", res.MaxClientBusyMs, res.ServerBusyMs)
	}
}

func TestRunRingSmall(t *testing.T) {
	res, err := Run(smallRun(ArchRing))
	if err != nil {
		t.Fatal(err)
	}
	if res.Unresolved != 0 {
		t.Fatalf("unresolved = %d", res.Unresolved)
	}
	if res.Response.Count() == 0 {
		t.Fatal("no commits recorded")
	}
}

// TestBandwidthOrdering: at equal scale, Broadcast moves the most bytes
// and Central the least among {Central, SEVE, Broadcast} — the Figure 9
// ordering.
func TestBandwidthOrdering(t *testing.T) {
	bytes := map[Arch]uint64{}
	for _, arch := range []Arch{ArchSEVE, ArchCentral, ArchBroadcast} {
		rc := smallRun(arch)
		rc.Verify = false
		res, err := Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		bytes[arch] = res.TotalBytes
	}
	if bytes[ArchBroadcast] <= bytes[ArchSEVE] {
		t.Fatalf("broadcast bytes %d ≤ SEVE bytes %d", bytes[ArchBroadcast], bytes[ArchSEVE])
	}
	if bytes[ArchBroadcast] <= bytes[ArchCentral] {
		t.Fatalf("broadcast bytes %d ≤ central bytes %d", bytes[ArchBroadcast], bytes[ArchCentral])
	}
}

// TestCentralSaturation: past ~32 clients at 7.44 ms/move per 300 ms,
// the central server's backlog grows and response time blows up — the
// Figure 6 knee.
func TestCentralSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation run is slow")
	}
	mk := func(clients int) *Result {
		rc := DefaultRunConfig(ArchCentral, clients)
		rc.World.NumWalls = 20_000 // keep world-building fast; cost model below
		rc.MovesPerClient = 50
		// Pin per-move cost at the paper's 7.44 ms regardless of walls.
		rc.World.BaseCostMs = 7.44
		rc.World.PerWallCostMs = 0
		res, err := Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	under := mk(16)
	over := mk(64)
	if under.Response.Mean() > 600 {
		t.Fatalf("16-client central already saturated: %v ms", under.Response.Mean())
	}
	if over.Response.Mean() < 3*under.Response.Mean() {
		t.Fatalf("64-client central not saturated: %v ms vs %v ms",
			over.Response.Mean(), under.Response.Mean())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	rc := DefaultRunConfig(ArchSEVE, 4)
	rc.MovesPerClient = 0
	if _, err := Run(rc); err == nil {
		t.Fatal("zero moves accepted")
	}
	rc = DefaultRunConfig(Arch(99), 4)
	if _, err := Run(rc); err == nil {
		t.Fatal("unknown arch accepted")
	}
}

func TestDefaultRunConfigMatchesTableI(t *testing.T) {
	rc := DefaultRunConfig(ArchSEVE, 64)
	if rc.World.Width != 1000 || rc.World.NumWalls != 100_000 {
		t.Fatalf("world = %+v", rc.World)
	}
	if rc.LatencyMs != 238 || rc.BandwidthBps != 100_000 {
		t.Fatalf("link = %v ms, %v bps", rc.LatencyMs, rc.BandwidthBps)
	}
	if rc.MovesPerClient != 100 || rc.MoveIntervalMs != 300 {
		t.Fatalf("workload = %d moves per %v ms", rc.MovesPerClient, rc.MoveIntervalMs)
	}
	cfg := rc.coreConfig()
	if cfg.RTTMs != 476 {
		t.Fatalf("RTT = %v", cfg.RTTMs)
	}
	if cfg.Threshold != 45 { // 1.5 × visibility 30
		t.Fatalf("threshold = %v", cfg.Threshold)
	}
	if cfg.Mode.String() != "infobound" {
		t.Fatalf("mode = %v", cfg.Mode)
	}
	_ = manhattan.DefaultConfig()
}

func TestRunLockingSmall(t *testing.T) {
	rc := smallRun(ArchLocking)
	rc.Verify = false
	res, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unresolved != 0 {
		t.Fatalf("unresolved = %d of %d", res.Unresolved, res.Submitted)
	}
	// Locking needs two round trips: request→grant, effect→echo.
	if mean := res.Response.Mean(); mean < 2*476 {
		t.Fatalf("locking mean response %v below 2xRTT", mean)
	}
}

func TestRunOwnershipSmall(t *testing.T) {
	rc := smallRun(ArchOwnership)
	rc.Verify = false
	res, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unresolved != 0 {
		t.Fatalf("unresolved = %d", res.Unresolved)
	}
	// Owner-local commits: response is just the evaluation cost.
	if mean := res.Response.Mean(); mean > 50 {
		t.Fatalf("ownership mean response %v not local", mean)
	}
}

func TestRunZonedSmall(t *testing.T) {
	rc := smallRun(ArchZoned)
	rc.Verify = false
	rc.ZonesPerRow = 2
	res, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unresolved != 0 {
		t.Fatalf("unresolved = %d of %d", res.Unresolved, res.Submitted)
	}
	if mean := res.Response.Mean(); mean < 476 || mean > 700 {
		t.Fatalf("zoned mean response = %v", mean)
	}
}

func TestRunSEVEHybridSmall(t *testing.T) {
	rc := smallRun(ArchSEVENoDrop)
	cfg := rc.coreConfig()
	cfg.HybridRelay = true
	rc.Core = cfg
	rc.Verify = true
	res, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unresolved != 0 {
		t.Fatalf("unresolved = %d", res.Unresolved)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
}

// TestRunsAreDeterministic: the discrete-event simulation is fully
// reproducible — identical configurations produce bit-identical
// measurements. Map-iteration anywhere in a fan-out path would break
// this (and did, before reply ordering was made explicit).
func TestRunsAreDeterministic(t *testing.T) {
	for _, arch := range []Arch{ArchSEVE, ArchCentral, ArchBroadcast, ArchRing} {
		rc := smallRun(arch)
		rc.Verify = false
		a, err := Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		if a.Response.Mean() != b.Response.Mean() ||
			a.TotalBytes != b.TotalBytes ||
			a.Committed != b.Committed ||
			a.Dropped != b.Dropped ||
			a.QueueScans != b.QueueScans {
			t.Fatalf("%v runs diverged: (%v, %d, %d, %d, %d) vs (%v, %d, %d, %d, %d)",
				arch,
				a.Response.Mean(), a.TotalBytes, a.Committed, a.Dropped, a.QueueScans,
				b.Response.Mean(), b.TotalBytes, b.Committed, b.Dropped, b.QueueScans)
		}
	}
}
