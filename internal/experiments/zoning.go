package experiments

import (
	"fmt"

	"seve/internal/metrics"
)

// Zoning is an extension experiment quantifying the Section II-A
// critique of the industry-standard zoning architecture: "zoning works
// well to about a few dozen servers … [but] zones collapse if too many
// users crowd into a zone all at once."
//
// 48 clients run Manhattan People over a 2×2-zoned world (four
// Central-style servers, each comfortably able to host its quarter of a
// uniformly spread population) while the crowd fraction sweeps from
// uniform to everyone-in-one-tile. The zoned architecture degrades to a
// single overloaded Central server; SEVE on one machine is indifferent
// to where the avatars stand.
func Zoning(opt Options) (*metrics.Table, error) {
	const clients = 48
	fractions := pick(opt, []float64{0, 0.25, 0.5, 0.75, 1.0}, []float64{0, 0.5, 1.0})

	t := &metrics.Table{
		Title:  "Zoning under crowding (Section II-A): 48 clients, 2x2 zones, 7.44 ms/move",
		Header: []string{"crowd-fraction", "Zoned-mean-ms", "Zoned-p95-ms", "busiest-zone-ms", "SEVE-mean-ms"},
	}
	for _, f := range fractions {
		mk := func(arch Arch) (*Result, error) {
			rc := DefaultRunConfig(arch, clients)
			rc.MovesPerClient = opt.moves()
			rc.World.NumWalls = 2000
			rc.World.BaseCostMs = 7.44
			rc.World.PerWallCostMs = 0
			rc.ZonesPerRow = 2
			rc.CrowdFraction = f
			rc.SlackMs = 40_000
			return Run(rc)
		}
		zoned, err := mk(ArchZoned)
		if err != nil {
			return nil, fmt.Errorf("zoning crowd=%.2f: %w", f, err)
		}
		seve, err := mk(ArchSEVE)
		if err != nil {
			return nil, fmt.Errorf("zoning seve crowd=%.2f: %w", f, err)
		}
		t.AddRow(
			fmt.Sprintf("%.2f", f),
			metrics.Ms(zoned.Response.Mean()),
			metrics.Ms(zoned.Response.Percentile(95)),
			metrics.Ms(zoned.ServerBusyMs),
			metrics.Ms(seve.Response.Mean()),
		)
		opt.log("zoning crowd=%.2f zoned=%.0fms seve=%.0fms busiest=%.0fms",
			f, zoned.Response.Mean(), seve.Response.Mean(), zoned.ServerBusyMs)
	}
	return t, nil
}
