package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// These tests regenerate each artifact in quick mode and assert the
// paper's qualitative shapes — who wins, where the knees fall — rather
// than absolute numbers. They are the executable form of EXPERIMENTS.md.

func cell(t *testing.T, tb interface{ String() string }, row, col int) float64 {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	// lines: title, header, separator, data...
	fields := strings.Fields(lines[3+row])
	v, err := strconv.ParseFloat(fields[col], 64)
	if err != nil {
		t.Fatalf("cell(%d,%d) = %q: %v", row, col, fields[col], err)
	}
	return v
}

func TestTableIListsTableOneParameters(t *testing.T) {
	s := TableI().String()
	for _, want := range []string{"1000 x 1000", "238ms", "100Kbps", "Every 300ms", "10units", "30units"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q:\n%s", want, s)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tb, err := Fig6(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Quick counts: 4, 16, 32, 48. Columns: clients Central SEVE Broadcast.
	rows := len(tb.Rows)
	seveFirst, seveLast := cell(t, tb, 0, 2), cell(t, tb, rows-1, 2)
	centralFirst, centralLast := cell(t, tb, 0, 1), cell(t, tb, rows-1, 1)
	broadcastLast := cell(t, tb, rows-1, 3)

	// SEVE stays flat (within 20% of its 4-client response).
	if seveLast > 1.2*seveFirst {
		t.Errorf("SEVE response not flat: %v → %v", seveFirst, seveLast)
	}
	// Central and Broadcast blow past 2x their unloaded response by 48.
	if centralLast < 2*centralFirst {
		t.Errorf("Central did not saturate: %v → %v", centralFirst, centralLast)
	}
	if broadcastLast < 2*centralFirst {
		t.Errorf("Broadcast did not saturate: %v", broadcastLast)
	}
	// At 48 clients SEVE beats Central by at least 2x.
	if centralLast < 2*seveLast {
		t.Errorf("SEVE not clearly ahead at 48 clients: central %v vs seve %v", centralLast, seveLast)
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tb, err := Fig7(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Quick costs: 1, 7.44, 15, 25. At 7.44ms (25 clients) baselines are
	// fine; at 25ms they are unplayable; SEVE indifferent throughout.
	centralAt7, centralAt25 := cell(t, tb, 1, 1), cell(t, tb, 3, 1)
	seveAt1, seveAt25 := cell(t, tb, 0, 2), cell(t, tb, 3, 2)
	if centralAt7 > 600 {
		t.Errorf("Central already saturated at 7.44ms: %v", centralAt7)
	}
	if centralAt25 < 3*centralAt7 {
		t.Errorf("Central not saturated at 25ms: %v vs %v", centralAt25, centralAt7)
	}
	if seveAt25 > 1.2*seveAt1 {
		t.Errorf("SEVE sensitive to action complexity: %v → %v", seveAt1, seveAt25)
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tb, err := Fig8(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Quick visibilities: 10, 40, 70, 100. Columns: visibility,
	// avatars-visible, nodrop, drop, dropped%.
	rows := len(tb.Rows)
	nodropFirst, nodropLast := cell(t, tb, 0, 2), cell(t, tb, rows-1, 2)
	dropFirst, dropLast := cell(t, tb, 0, 3), cell(t, tb, rows-1, 3)
	droppedPct := cell(t, tb, rows-1, 4)

	// The x axis is real: visible avatars grow with visibility.
	if vFirst, vLast := cell(t, tb, 0, 1), cell(t, tb, rows-1, 1); vLast < 3*vFirst {
		t.Errorf("visible avatars did not grow with visibility: %v → %v", vFirst, vLast)
	}
	// No-drop bogs down at high density; dropping stays much flatter.
	if nodropLast < 2*nodropFirst {
		t.Errorf("no-drop SEVE did not bog down: %v → %v", nodropFirst, nodropLast)
	}
	if dropLast > 1.8*dropFirst {
		t.Errorf("dropping SEVE not stable: %v → %v", dropFirst, dropLast)
	}
	if nodropLast < 2*dropLast {
		t.Errorf("dropping did not clearly win at peak density: %v vs %v", nodropLast, dropLast)
	}
	// Drops are a few percent, not a bloodbath.
	if droppedPct <= 0 || droppedPct > 25 {
		t.Errorf("drop rate out of range: %v%%", droppedPct)
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tb, err := Fig9(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Quick counts: 8, 24, 48 (3x then 2x). Columns: clients, Central,
	// SEVE, Broadcast.
	rows := len(tb.Rows)
	cFirst, cLast := cell(t, tb, 0, 1), cell(t, tb, rows-1, 1)
	sFirst, sLast := cell(t, tb, 0, 2), cell(t, tb, rows-1, 2)
	bFirst, bLast := cell(t, tb, 0, 3), cell(t, tb, rows-1, 3)

	// Broadcast grows quadratically: 6x the clients → far more than 6x
	// the bytes (expect ~36x; assert > 15x).
	if bLast < 15*bFirst {
		t.Errorf("Broadcast traffic not quadratic: %v → %v", bFirst, bLast)
	}
	// Central and SEVE grow roughly linearly (< 10x over 6x clients).
	if cLast > 10*cFirst || sLast > 10*sFirst {
		t.Errorf("linear architectures grew superlinearly: central %v→%v seve %v→%v",
			cFirst, cLast, sFirst, sLast)
	}
	// SEVE within a small factor of optimal Central.
	if sLast > 3*cLast {
		t.Errorf("SEVE traffic %v too far above Central %v", sLast, cLast)
	}
	// And Broadcast dwarfs SEVE at scale.
	if bLast < 3*sLast {
		t.Errorf("Broadcast %v did not dwarf SEVE %v", bLast, sLast)
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tb, err := Fig10(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Columns: clients, SEVE, RING, visible, divergent%, overhead%.
	rows := len(tb.Rows)
	for r := 0; r < rows; r++ {
		overhead := cell(t, tb, r, 5)
		if overhead > 5 {
			t.Errorf("row %d: SEVE overhead %v%% far above the paper's ~1%%", r, overhead)
		}
		divergent := cell(t, tb, r, 4)
		if divergent <= 0 {
			t.Errorf("row %d: RING reported no divergence", r)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tb, err := Table2(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Quick ranges: 1, 5, 9, 11. Drops rise monotonically and start ~0.
	var last float64 = -1
	for r := 0; r < len(tb.Rows); r++ {
		pct := cell(t, tb, r, 1)
		if pct < last-0.5 { // allow sub-point jitter
			t.Errorf("drop rate not monotone at row %d: %v after %v", r, pct, last)
		}
		last = pct
	}
	if first := cell(t, tb, 0, 1); first > 0.5 {
		t.Errorf("range-1 drop rate %v%%, expected ≈ 0", first)
	}
	if last < 1 {
		t.Errorf("range-11 drop rate %v%%, expected several percent", last)
	}
}

func TestLimitReportsHeadroom(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tb, err := Limit(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Quick counts: 250, 1000. Per-round cost grows with clients and 250
	// clients must be far inside the budget.
	c250, c1000 := cell(t, tb, 0, 1), cell(t, tb, 1, 1)
	if c1000 <= c250 {
		t.Errorf("per-round cost did not grow: %v → %v", c250, c1000)
	}
	if head := cell(t, tb, 0, 2); head < 10 {
		t.Errorf("250 clients should have ≥10x headroom, got %vx", head)
	}
}

func TestProtocolsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tb, err := Protocols(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Rows: Locking, Ownership, Central, Broadcast, RING, SEVE.
	// Columns: protocol, mean, p95, traffic, divergent, consistent, queued.
	lockMean := cell(t, tb, 0, 1)
	ownMean := cell(t, tb, 1, 1)
	ownDivergent := cell(t, tb, 1, 4)
	ringDivergent := cell(t, tb, 4, 4)
	seveMean := cell(t, tb, 5, 1)
	seveDivergent := cell(t, tb, 5, 4)
	lockQueued := cell(t, tb, 0, 6)

	// Locking: consistent but at least 2x the one-round-trip protocols
	// under contention (the paper's 2×RTT floor plus queueing).
	if lockMean < 1.8*seveMean {
		t.Errorf("locking %v not clearly slower than SEVE %v", lockMean, seveMean)
	}
	if lockQueued == 0 {
		t.Error("no lock requests queued despite contention")
	}
	// Ownership: near-instant local commits but inconsistent (or at
	// least RING is — low-contention quick runs may leave ownership's
	// caches converged).
	if ownMean > 50 {
		t.Errorf("ownership local commit took %v ms", ownMean)
	}
	if ownDivergent == 0 && ringDivergent == 0 {
		t.Error("neither weak protocol diverged; contention too low to be meaningful")
	}
	// SEVE: one RTT and consistent.
	if seveMean > 600 {
		t.Errorf("SEVE response %v above one round trip", seveMean)
	}
	if seveDivergent != 0 {
		t.Errorf("SEVE diverged: %v objects", seveDivergent)
	}
}

func TestAblationOmegaRespectsBound(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tb, err := AblationOmega(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Columns: omega, bound, mean, p95, scans. The First Bound claim:
	// p95 response stays under (1+ω)·RTT plus processing slack.
	for r := 0; r < len(tb.Rows); r++ {
		bound := cell(t, tb, r, 1)
		p95 := cell(t, tb, r, 3)
		if p95 > bound+100 {
			t.Errorf("row %d: p95 %v exceeds (1+ω)RTT bound %v", r, p95, bound)
		}
	}
}

func TestAblationThresholdDial(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tb, err := AblationThreshold(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Quick thresholds: 15, 45, inf. Drops shrink as the threshold
	// grows; response grows.
	d15, d45, dInf := cell(t, tb, 0, 2), cell(t, tb, 1, 2), cell(t, tb, 2, 2)
	if !(d15 > d45 && d45 > dInf) {
		t.Errorf("drop rates not decreasing with threshold: %v, %v, %v", d15, d45, dInf)
	}
	if dInf != 0 {
		t.Errorf("infinite threshold dropped %v%%", dInf)
	}
	r15, rInf := cell(t, tb, 0, 1), cell(t, tb, 2, 1)
	if rInf < 1.5*r15 {
		t.Errorf("unbounded chains not slower: inf %v vs th15 %v", rInf, r15)
	}
}

func TestAblationGCSavesMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tb, err := AblationGC(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	on, off := cell(t, tb, 0, 1), cell(t, tb, 1, 1)
	if off < 2*on {
		t.Errorf("GC saved too little: %v versions with, %v without", on, off)
	}
	// And it must not cost response time.
	rOn, rOff := cell(t, tb, 0, 2), cell(t, tb, 1, 2)
	if rOn > 1.1*rOff {
		t.Errorf("GC cost response time: %v vs %v", rOn, rOff)
	}
}

func TestZoningCollapseShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tb, err := Zoning(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Quick fractions: 0, 0.5, 1. Columns: frac, zonedMean, zonedP95,
	// busiestZone, seveMean.
	zonedUniform := cell(t, tb, 0, 1)
	zonedCrowded := cell(t, tb, 2, 1)
	seveUniform := cell(t, tb, 0, 4)
	seveCrowded := cell(t, tb, 2, 4)

	// Spread load: zoning works (the paper concedes this).
	if zonedUniform > 600 {
		t.Errorf("uniform zoned response %v; zoning should handle spread load", zonedUniform)
	}
	// Crowded: the hot zone collapses.
	if zonedCrowded < 2*zonedUniform {
		t.Errorf("crowding did not collapse the zone: %v vs %v", zonedCrowded, zonedUniform)
	}
	// SEVE is indifferent to placement.
	if seveCrowded > 1.2*seveUniform {
		t.Errorf("SEVE sensitive to crowding: %v vs %v", seveCrowded, seveUniform)
	}
}

func TestHybridCutsServerEgress(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tb, err := Hybrid(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Rows: server-unicast, p2p-relay. Columns: label, serverKB, totalKB,
	// mean, p95.
	unicastEgress := cell(t, tb, 0, 1)
	relayEgress := cell(t, tb, 1, 1)
	if relayEgress > 0.7*unicastEgress {
		t.Errorf("relay egress %v not clearly below unicast %v", relayEgress, unicastEgress)
	}
	// The relay hop costs latency but must not break the protocol: the
	// run completes (Run errors on verify failures) and responses stay
	// within ~2x.
	uMean, rMean := cell(t, tb, 0, 3), cell(t, tb, 1, 3)
	if rMean > 2*uMean {
		t.Errorf("relay response %v more than doubled unicast %v", rMean, uMean)
	}
}
