package experiments

import (
	"fmt"

	"seve/internal/action"
	"seve/internal/baseline"
	"seve/internal/core"
	"seve/internal/manhattan"
	"seve/internal/netsim"
	"seve/internal/sim"
	"seve/internal/wire"
	"seve/internal/world"
)

// harness wires one architecture into the simulator: the server on node
// 0, client i on node i, each with a single-core processor. Engine state
// mutates at message arrival (arrival order equals service order under
// FIFO links and a FIFO processor); compute cost delays the *visible*
// effects — outgoing messages and commit timestamps — which is what the
// response-time metric observes.
type harness struct {
	rc   RunConfig
	w    *manhattan.World
	init *world.State
	k    *sim.Kernel
	net  *netsim.Network
	res  *Result

	submitAt map[action.ID]sim.Time

	serverProc  *sim.Proc
	clientProcs map[action.ClientID]*sim.Proc

	// Exactly one of these server/client sets is populated.
	seveSrv      *core.Server
	centralSrv   *baseline.CentralServer
	broadcastSrv *baseline.BroadcastServer
	ringSrv      *baseline.RingServer
	lockSrv      *baseline.LockServer
	ownSrv       *baseline.OwnershipServer
	zones        *baseline.ZoneGrid
	zoneProcs    []*sim.Proc

	coreClients    map[action.ClientID]*core.Client
	centralClients map[action.ClientID]*baseline.CentralClient
	lockClients    map[action.ClientID]*baseline.LockClient
	ownClients     map[action.ClientID]*baseline.OwnershipClient

	visSum     float64
	visSamples int

	horizon sim.Time
}

func (h *harness) nodeOf(cid action.ClientID) netsim.NodeID { return netsim.NodeID(cid) }

func (h *harness) recordCommits(commits []core.Commit) {
	for _, c := range commits {
		if at, ok := h.submitAt[c.ActID]; ok {
			h.res.Response.Add(float64(h.k.Now() - at))
			delete(h.submitAt, c.ActID)
		}
		h.res.Committed++
	}
}

func (h *harness) recordDrops(ids []action.ID) {
	for _, id := range ids {
		delete(h.submitAt, id)
		h.res.Dropped++
	}
}

func (h *harness) clientBatchCost(out core.ClientOutput) float64 {
	cost := 0.0
	for _, a := range out.Applied {
		cost += h.rc.Costs.actionCost(a)
	}
	return cost
}

// --- SEVE (and SEVE without dropping) ---

func (h *harness) buildSEVE() {
	cfg := h.rc.coreConfig()
	h.seveSrv = core.NewServer(cfg, h.init)
	h.serverProc = sim.NewProc(h.k, "server")
	h.coreClients = make(map[action.ClientID]*core.Client)
	h.clientProcs = make(map[action.ClientID]*sim.Proc)

	h.net.AddNode(netsim.ServerNode, func(from netsim.NodeID, msg netsim.Message) {
		out := h.seveSrv.HandleMsg(action.ClientID(from), msg.(wire.Msg), float64(h.k.Now()))
		h.res.QueueScans += out.QueueScanned
		cost := h.rc.Costs.ServerDispatchMs + float64(out.QueueScanned)*h.rc.Costs.ScanMs
		h.serverProc.Exec(sim.Time(cost), func() {
			for _, rep := range out.Replies {
				h.net.Send(netsim.ServerNode, h.nodeOf(rep.To), rep.Msg)
			}
		})
	})

	for i := 1; i <= h.rc.World.NumAvatars; i++ {
		cid := action.ClientID(i)
		h.seveSrv.RegisterClient(cid, 0)
		cl := core.NewClient(cid, cfg, h.init)
		h.coreClients[cid] = cl
		proc := sim.NewProc(h.k, fmt.Sprintf("client%d", i))
		h.clientProcs[cid] = proc
		node := h.nodeOf(cid)
		h.net.AddNode(node, func(from netsim.NodeID, msg netsim.Message) {
			out := cl.HandleMsg(msg.(wire.Msg))
			h.res.Violations = append(h.res.Violations, out.Violations...)
			proc.Exec(sim.Time(h.clientBatchCost(out)), func() {
				h.recordCommits(out.Commits)
				h.recordDrops(out.DroppedLocal)
				for _, m := range out.ToServer {
					h.net.Send(node, netsim.ServerNode, m)
				}
				for _, p := range out.ToPeers {
					h.net.Send(node, h.nodeOf(p.To), p.Msg)
				}
			})
		})
	}

	// First Bound push cycle.
	if cfg.Mode >= core.ModeFirstBound {
		interval := sim.Time(cfg.PushIntervalMs())
		var tick func()
		tick = func() {
			out := h.seveSrv.Tick(float64(h.k.Now()))
			h.res.QueueScans += out.QueueScanned
			cost := h.rc.Costs.ServerDispatchMs + float64(out.QueueScanned)*h.rc.Costs.ScanMs
			h.serverProc.Exec(sim.Time(cost), func() {
				for _, rep := range out.Replies {
					h.net.Send(netsim.ServerNode, h.nodeOf(rep.To), rep.Msg)
				}
			})
			if h.k.Now()+interval <= h.horizon {
				h.k.After(interval, tick)
			}
		}
		h.k.After(interval, tick)
	}
}

// --- Central ---

func (h *harness) buildCentral() {
	vis := h.rc.CentralVisibility
	if vis == 0 {
		vis = h.rc.World.Visibility
	}
	h.centralSrv = baseline.NewCentralServer(h.init, vis, h.rc.Verify)
	h.serverProc = sim.NewProc(h.k, "server")
	h.centralClients = make(map[action.ClientID]*baseline.CentralClient)
	h.clientProcs = make(map[action.ClientID]*sim.Proc)

	h.net.AddNode(netsim.ServerNode, func(from netsim.NodeID, msg netsim.Message) {
		sub, ok := msg.(*wire.Submit)
		if !ok {
			return
		}
		out := h.centralSrv.HandleSubmit(action.ClientID(from), sub)
		cost := h.rc.Costs.ServerDispatchMs
		for _, a := range out.Executed {
			cost += h.rc.Costs.actionCost(a)
		}
		h.serverProc.Exec(sim.Time(cost), func() {
			for _, rep := range out.Replies {
				h.net.Send(netsim.ServerNode, h.nodeOf(rep.To), rep.Msg)
			}
		})
	})

	for i := 1; i <= h.rc.World.NumAvatars; i++ {
		cid := action.ClientID(i)
		h.centralSrv.RegisterClient(cid)
		cl := baseline.NewCentralClient(cid, h.init)
		h.centralClients[cid] = cl
		proc := sim.NewProc(h.k, fmt.Sprintf("client%d", i))
		h.clientProcs[cid] = proc
		h.net.AddNode(h.nodeOf(cid), func(from netsim.NodeID, msg netsim.Message) {
			commits := cl.HandleMsg(msg.(wire.Msg))
			// The thin client only installs values: negligible compute.
			proc.Exec(0, func() { h.recordCommits(commits) })
		})
	}
}

// --- Broadcast ---

func (h *harness) buildBroadcast() {
	h.broadcastSrv = baseline.NewBroadcastServer(h.rc.Verify)
	h.serverProc = sim.NewProc(h.k, "server")
	h.coreClients = make(map[action.ClientID]*core.Client)
	h.clientProcs = make(map[action.ClientID]*sim.Proc)
	cfg := baseline.NewBroadcastClientConfig()

	h.net.AddNode(netsim.ServerNode, func(from netsim.NodeID, msg netsim.Message) {
		sub, ok := msg.(*wire.Submit)
		if !ok {
			return
		}
		out := h.broadcastSrv.HandleSubmit(action.ClientID(from), sub)
		h.serverProc.Exec(sim.Time(h.rc.Costs.ServerDispatchMs), func() {
			for _, rep := range out.Replies {
				h.net.Send(netsim.ServerNode, h.nodeOf(rep.To), rep.Msg)
			}
		})
	})

	h.buildCoreClients(cfg, func(cid action.ClientID) {
		h.broadcastSrv.RegisterClient(cid)
	})
}

// --- RING ---

func (h *harness) buildRing() {
	vis := h.rc.RingVisibility
	if vis == 0 {
		vis = h.rc.World.Visibility
	}
	h.ringSrv = baseline.NewRingServer(vis, true) // history needed for divergence
	h.serverProc = sim.NewProc(h.k, "server")
	h.coreClients = make(map[action.ClientID]*core.Client)
	h.clientProcs = make(map[action.ClientID]*sim.Proc)
	cfg := baseline.NewRingClientConfig()

	h.net.AddNode(netsim.ServerNode, func(from netsim.NodeID, msg netsim.Message) {
		sub, ok := msg.(*wire.Submit)
		if !ok {
			return
		}
		out := h.ringSrv.HandleSubmit(action.ClientID(from), sub)
		h.serverProc.Exec(sim.Time(h.rc.Costs.ServerDispatchMs), func() {
			for _, rep := range out.Replies {
				h.net.Send(netsim.ServerNode, h.nodeOf(rep.To), rep.Msg)
			}
		})
	})

	h.buildCoreClients(cfg, func(cid action.ClientID) {
		h.ringSrv.RegisterClient(cid)
	})
}

// buildCoreClients wires core.Client engines (used by Broadcast and RING)
// to the network.
func (h *harness) buildCoreClients(cfg core.Config, register func(action.ClientID)) {
	for i := 1; i <= h.rc.World.NumAvatars; i++ {
		cid := action.ClientID(i)
		register(cid)
		cl := core.NewClient(cid, cfg, h.init)
		h.coreClients[cid] = cl
		proc := sim.NewProc(h.k, fmt.Sprintf("client%d", i))
		h.clientProcs[cid] = proc
		node := h.nodeOf(cid)
		h.net.AddNode(node, func(from netsim.NodeID, msg netsim.Message) {
			out := cl.HandleMsg(msg.(wire.Msg))
			h.res.Violations = append(h.res.Violations, out.Violations...)
			proc.Exec(sim.Time(h.clientBatchCost(out)), func() {
				h.recordCommits(out.Commits)
				for _, m := range out.ToServer {
					h.net.Send(node, netsim.ServerNode, m)
				}
			})
		})
	}
}

// --- workload ---

// scheduleWorkload schedules MovesPerClient moves per client, one every
// MoveIntervalMs, with client start times staggered across one interval
// (real players are not phase-locked).
func (h *harness) scheduleWorkload() {
	h.horizon = sim.Time(float64(h.rc.MovesPerClient)*h.rc.MoveIntervalMs + 2*h.rc.LatencyMs + h.rc.SlackMs)
	n := h.rc.World.NumAvatars
	for i := 1; i <= n; i++ {
		cid := action.ClientID(i)
		offset := h.rc.MoveIntervalMs * float64(i-1) / float64(n)
		for m := 0; m < h.rc.MovesPerClient; m++ {
			at := sim.Time(offset + float64(m)*h.rc.MoveIntervalMs)
			h.k.At(at, func() { h.submitMove(cid) })
		}
	}
}

// submitMove creates and submits one move for the client, reading the
// avatar from the freshest view the client has.
func (h *harness) submitMove(cid action.ClientID) {
	avatar := manhattan.AvatarID(int(cid))
	node := h.nodeOf(cid)
	proc := h.clientProcs[cid]

	if h.lockClients != nil {
		h.submitMoveLocking(cid)
		return
	}
	if h.ownClients != nil {
		h.submitMoveOwnership(cid)
		return
	}
	if h.zones != nil {
		h.submitMoveZoned(cid)
		return
	}
	if h.centralClients != nil {
		cl := h.centralClients[cid]
		mv, err := h.w.NewMove(cl.NextActionID(), avatar, cl.View())
		if err != nil {
			h.res.Violations = append(h.res.Violations, err.Error())
			return
		}
		h.sampleVisibility(cl.View(), avatar)
		msg := cl.Submit(mv)
		h.submitAt[mv.ID()] = h.k.Now()
		h.res.Submitted++
		// The thin client does not evaluate the move; it ships inputs.
		h.net.Send(node, netsim.ServerNode, msg)
		return
	}

	cl := h.coreClients[cid]
	view := cl.Optimistic()
	mv, err := h.w.NewMove(cl.NextActionID(), avatar, view)
	if err != nil {
		h.res.Violations = append(h.res.Violations, err.Error())
		return
	}
	h.sampleVisibility(view, avatar)
	msg, _ := cl.Submit(mv)
	h.submitAt[mv.ID()] = h.k.Now()
	h.res.Submitted++
	// The optimistic evaluation is real compute on the client.
	proc.Exec(sim.Time(h.rc.Costs.actionCost(mv)), func() {
		h.net.Send(node, netsim.ServerNode, msg)
	})
}

func (h *harness) sampleVisibility(view world.Reader, avatar world.ObjectID) {
	h.visSum += float64(h.w.VisibleAvatarCount(view, avatar))
	h.visSamples++
}

// --- wrap-up ---

func (h *harness) finish() {
	r := h.res
	r.TotalBytes = h.net.TotalBytes()
	r.ServerSentBytes, r.ServerRecvBytes = func() (uint64, uint64) {
		s, rv := h.net.NodeBytes(netsim.ServerNode)
		return s, rv
	}()
	if h.serverProc != nil {
		r.ServerBusyMs = float64(h.serverProc.BusyTotal())
	}
	for _, p := range h.zoneProcs {
		if b := float64(p.BusyTotal()); b > r.ServerBusyMs {
			r.ServerBusyMs = b // the busiest zone server
		}
	}
	for _, p := range h.clientProcs {
		if b := float64(p.BusyTotal()); b > r.MaxClientBusyMs {
			r.MaxClientBusyMs = b
		}
	}
	if h.seveSrv != nil {
		r.Dropped = h.seveSrv.TotalDropped()
		for cid, n := range h.seveSrv.DroppedByClient() {
			r.DropsByClient[cid] = n
		}
	}
	if h.ringSrv != nil {
		r.Divergence = h.ringDivergence()
	}
	for _, cl := range h.coreClients {
		if v := cl.Stable().Versions(); v > r.MaxStableVersions {
			r.MaxStableVersions = v
		}
		r.ClientStats.Merge(cl.Metrics())
	}
	if h.ownSrv != nil {
		r.Divergence = h.ownershipDivergence()
	}
	if h.lockSrv != nil {
		r.LockQueued = h.lockSrv.Queued()
	}
	r.Unresolved = r.Submitted - r.Committed - r.Dropped
}

// ringDivergence replays the serial oracle and counts, across clients,
// held objects whose final value differs.
func (h *harness) ringDivergence() int {
	st := h.init.Clone()
	for _, env := range h.ringSrv.History() {
		res := action.Eval(env.Act, world.StateView{S: st})
		for _, w := range res.Writes {
			st.Set(w.ID, w.Val)
		}
	}
	total := 0
	for _, cl := range h.coreClients {
		total += baseline.Divergence(cl.Stable(), cl.Stable().IDs(), st)
	}
	return total
}

// verify replays the recorded history through the serial oracle and
// checks the consistency invariants appropriate to the architecture.
func (h *harness) verify() error {
	if len(h.res.Violations) > 0 {
		return fmt.Errorf("experiments: %d protocol violations; first: %s",
			len(h.res.Violations), h.res.Violations[0])
	}
	if h.seveSrv == nil {
		return nil // baselines have no Theorem 1 obligation
	}
	hist := h.seveSrv.History()
	st := h.init.Clone()
	for _, env := range hist {
		res := action.Eval(env.Act, world.StateView{S: st})
		for _, w := range res.Writes {
			st.Set(w.ID, w.Val)
		}
	}
	if h.seveSrv.Installed() == uint64(len(hist)) {
		if !h.seveSrv.Authoritative().Equal(st) {
			return fmt.Errorf("experiments: ζS diverged from serial oracle")
		}
	}
	return nil
}
