package experiments

import (
	"fmt"
	"runtime"
	"time"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/geom"
	"seve/internal/metrics"
	"seve/internal/shard"
	"seve/internal/wire"
	"seve/internal/world"
)

// Shardscale measures the sharded serializer (package shard) on the
// workload it is built for: spatially disjoint groups of clients whose
// actions conflict heavily inside the group and never across groups.
// Every group maps to one shard lane, and the partitioned epoch
// pipeline runs the whole per-submission cost — stamping, the closure
// walks, and commit — one worker per lane over per-lane engine state.
// The table reports, per shard count against the single-lane engine on
// a fixed workload, the wall-clock ratio and the phase-timing
// projection; the achievable-x column is the scalability claim
// BENCH_PR6.json records. Each shard count also runs a flash-crowd
// variant — every client converges on one grid cell, so one lane owns
// the whole world — the adversarial skew the uniform run's speedup
// must be read against.
func Shardscale(opt Options) (*metrics.Table, error) {
	shardCounts := pick(opt, []int{1, 2, 4, 8}, []int{1, 4})
	groups := pick(opt, 16, 8)
	perGroup := pick(opt, 16, 8)
	rounds := pick(opt, 30, 8)
	// One measurement is only tens of milliseconds of engine compute, so
	// scheduler and GC jitter swamp single runs; report each
	// configuration's best of reps (the run least disturbed by the
	// host), with the counters from that same run.
	reps := pick(opt, 3, 1)

	t := &metrics.Table{
		Title: fmt.Sprintf("Sharded serializer scaling: %d groups × %d clients, conflict-dense (GOMAXPROCS=%d); uniform = disjoint regions, flash = one crowded cell",
			groups, perGroup, runtime.GOMAXPROCS(0)),
		Header: []string{"workload", "shards", "submits/s", "wall-x", "achievable-x", "epochs", "partitioned", "imbalance"},
	}
	for _, workload := range []string{"uniform", "flash"} {
		skew := workload == "flash"
		base := 0.0
		for _, n := range shardCounts {
			var persec float64
			var rs metrics.RouterStats
			for rep := 0; rep < reps; rep++ {
				p, s, err := measureShardedSubmit(n, groups, perGroup, rounds, skew)
				if err != nil {
					return nil, fmt.Errorf("shardscale %s shards=%d: %w", workload, n, err)
				}
				if p > persec {
					persec, rs = p, s
				}
			}
			if base == 0 {
				base = persec
			}
			// wall-x is the raw wall-clock ratio against the single lane —
			// full parallel speedup only on a machine with ≥ shards cores.
			// achievable-x is the same workload's phase-timing projection
			// (see metrics.RouterStats): the critical path through the
			// pipeline — slowest lane per parallel phase, the sequential
			// merges, and the install pass net of its per-segment overlap
			// — versus all of it on one lane. On a single-core host wall-x
			// reflects only the pipeline's overhead savings and
			// achievable-x carries the scalability claim; under
			// flash-crowd skew one lane owns everything and both collapse
			// toward 1.
			achievable := 1.0
			total := rs.StampNs + rs.PlanNs + rs.CommitNs + rs.MergeNs + rs.InstallNs
			crit := rs.StampCritNs + rs.PlanCritNs + rs.CommitCritNs + rs.MergeNs + rs.InstallCritNs
			if crit > 0 {
				achievable = float64(total) / float64(crit)
			}
			t.AddRow(workload, fmt.Sprintf("%d", n), fmt.Sprintf("%.0f", persec),
				fmt.Sprintf("%.2f", persec/base),
				fmt.Sprintf("%.2f", achievable),
				fmt.Sprintf("%d", rs.Epochs),
				fmt.Sprintf("%d", rs.PartitionedEpochs),
				fmt.Sprintf("%.2f", rs.LaneImbalance))
			opt.log("shardscale %s shards=%d submits/s=%.0f wall=%.2fx achievable=%.2fx partitioned=%d/%d imbalance=%.2f",
				workload, n, persec, persec/base, achievable, rs.PartitionedEpochs, rs.Epochs, rs.LaneImbalance)
		}
	}
	return t, nil
}

// groupAction is the workload unit: read the group's hub object and the
// client's own object, write both. Every pair of actions in one group
// conflicts through the hub, so the closure of each reply spans the
// group's whole in-flight window — maximal planning load — while groups
// never conflict with each other.
type groupAction struct {
	id       action.ID
	hub, own world.ObjectID
	pos      geom.Vec
}

const kindGroupAction action.Kind = 1500

func (a *groupAction) ID() action.ID         { return a.id }
func (a *groupAction) Kind() action.Kind     { return kindGroupAction }
func (a *groupAction) ReadSet() world.IDSet  { return world.IDSet{a.hub, a.own} }
func (a *groupAction) WriteSet() world.IDSet { return world.IDSet{a.hub, a.own} }
func (a *groupAction) Influence() geom.Circle {
	return geom.Circle{Center: a.pos, R: 5}
}

func (a *groupAction) Apply(tx *world.Tx) bool {
	h, ok := tx.Read(a.hub)
	if !ok {
		return false
	}
	o, ok := tx.Read(a.own)
	if !ok {
		return false
	}
	tx.Write(a.hub, world.Value{h[0] + 1})
	tx.Write(a.own, world.Value{o[0] + h[0]})
	return true
}

func (a *groupAction) MarshalBody() []byte { return nil }

// completionLag is how many rounds a completion stays in flight. Deep
// uncommitted windows are where serialization cost concentrates: every
// reply's closure spans completionLag rounds of the group's conflicting
// actions, so the walk — the parallelizable phase — dominates stamping.
const completionLag = 4

// measureShardedSubmit drives the engine through synchronized rounds —
// every client submits once per round, the epoch flushes, and each
// client's completion arrives completionLag rounds later, keeping a
// deep window of conflicting actions in flight — and returns
// submissions per second of engine compute plus the router's counters.
// With skew, every group acts from the same position: the flash-crowd
// case where the spatial partition degenerates to one owner lane.
func measureShardedSubmit(shards, groups, perGroup, rounds int, skew bool) (float64, metrics.RouterStats, error) {
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeIncomplete
	cfg.Threshold = 1e12
	cfg.Shards = shards
	cfg.ShardCellSize = 100

	init := world.NewState()
	hubOf := func(g int) world.ObjectID { return world.ObjectID(g*(perGroup+1) + 1) }
	ownOf := func(g, i int) world.ObjectID { return world.ObjectID(g*(perGroup+1) + 2 + i) }
	centerOf := func(g int) geom.Vec {
		if skew {
			return geom.Vec{X: 50, Y: 50}
		}
		return geom.Vec{X: float64(g)*300 + 50, Y: float64(g)*300 + 50}
	}
	for g := 0; g < groups; g++ {
		init.Set(hubOf(g), world.Value{0})
		for i := 0; i < perGroup; i++ {
			init.Set(ownOf(g, i), world.Value{0})
		}
	}

	eng := shard.NewEngine(cfg, init)
	if r, ok := eng.(*shard.Router); ok {
		defer r.Close()
	}
	clients := groups * perGroup
	for c := 1; c <= clients; c++ {
		eng.RegisterClient(action.ClientID(c), 0)
	}

	mirror := init.Clone()
	nextSeq := make([]uint32, clients+1)
	pending := make([][]*wire.Completion, completionLag)
	var engineTime time.Duration
	nowMs := 0.0

	for round := 0; round < rounds; round++ {
		due := pending[0]
		copy(pending, pending[1:])
		pending[completionLag-1] = nil
		start := time.Now()
		for _, c := range due {
			eng.HandleMsg(c.By, c, nowMs)
		}
		engineTime += time.Since(start)

		acts := make(map[action.ID]*groupAction, clients)
		var outs []core.ServerOutput
		start = time.Now()
		for c := 1; c <= clients; c++ {
			cid := action.ClientID(c)
			g := (c - 1) / perGroup
			nextSeq[c]++
			a := &groupAction{
				id:  action.ID{Client: cid, Seq: nextSeq[c]},
				hub: hubOf(g), own: ownOf(g, (c-1)%perGroup),
				pos: centerOf(g),
			}
			acts[a.id] = a
			outs = append(outs, eng.HandleMsg(cid, &wire.Submit{Env: action.Envelope{Origin: cid, Act: a}}, nowMs))
		}
		if f, ok := eng.(core.Flusher); ok {
			outs = append(outs, f.Flush())
		}
		engineTime += time.Since(start)
		nowMs += 300

		// Emulate every origin client: find its stamped action in its
		// replies, evaluate, queue the completion for next round.
		for _, out := range outs {
			for _, rep := range out.Replies {
				batch, ok := rep.Msg.(*wire.Batch)
				if !ok {
					continue
				}
				for _, env := range batch.Envs {
					a, mine := acts[env.Act.ID()]
					if !mine || env.Origin != rep.To {
						continue
					}
					res := action.Eval(a, world.StateView{S: mirror})
					for _, wr := range res.Writes {
						mirror.Set(wr.ID, wr.Val)
					}
					pending[completionLag-1] = append(pending[completionLag-1],
						&wire.Completion{Seq: env.Seq, By: rep.To, Res: res})
					delete(acts, env.Act.ID())
				}
			}
		}
	}

	var rs metrics.RouterStats
	if r, ok := eng.(*shard.Router); ok {
		rs = r.RouterMetrics()
	}
	total := float64(clients * rounds)
	return total / engineTime.Seconds(), rs, nil
}
