package experiments

import (
	"fmt"

	"seve/internal/manhattan"
	"seve/internal/metrics"
)

// Options tunes experiment fidelity. Quick mode shrinks sweeps and move
// counts so the full battery runs in seconds (used by tests and
// `seve-bench -quick`); the default reproduces the paper's scales.
type Options struct {
	Quick bool
	// Progress, when non-nil, receives one line per completed run.
	Progress func(string)
}

func (o Options) log(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// moves returns the per-client move count for the fidelity level.
func (o Options) moves() int {
	if o.Quick {
		return 30
	}
	return 100
}

// pick returns full or quick depending on fidelity.
func pick[T any](o Options, full, quick T) T {
	if o.Quick {
		return quick
	}
	return full
}

// calibrateMoveCost adjusts PerWallCostMs so the average per-move cost in
// this world equals targetMs — the paper's measured 7.44 ms per move for
// the Figure 6 setup. Returns the updated workload config.
func calibrateMoveCost(cfg manhattan.Config, targetMs float64) manhattan.Config {
	w := manhattan.NewWorld(cfg)
	avg := w.AvgVisibleWalls(8)
	if avg <= 0 {
		cfg.BaseCostMs = targetMs
		cfg.PerWallCostMs = 0
		return cfg
	}
	if targetMs < cfg.BaseCostMs {
		cfg.BaseCostMs = targetMs / 2
	}
	cfg.PerWallCostMs = (targetMs - cfg.BaseCostMs) / avg
	return cfg
}

// TableI prints the simulation settings, mirroring the paper's Table I.
func TableI() *metrics.Table {
	w := manhattan.DefaultConfig()
	t := &metrics.Table{
		Title:  "Table I: Simulation Settings",
		Header: []string{"parameter", "value"},
	}
	t.AddRow("Virtual world size", fmt.Sprintf("%.0f x %.0f", w.Width, w.Height))
	t.AddRow("Number of walls", fmt.Sprintf("0 - %d", w.NumWalls))
	t.AddRow("Number of clients", "0 - 64")
	t.AddRow("Average latency", "238ms")
	t.AddRow("Maximum bandwidth", "100Kbps")
	t.AddRow("Moves per client", "100")
	t.AddRow("Move generation rate", "Every 300ms per client")
	t.AddRow("Move effect range", fmt.Sprintf("%.0funits", w.EffectRange))
	t.AddRow("Avatar visibility", fmt.Sprintf("%.0funits", w.Visibility))
	t.AddRow("Threshold", "1.5 x Avatar visibility")
	return t
}
