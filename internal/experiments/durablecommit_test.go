package experiments

import (
	"strings"
	"testing"
)

// TestDurablecommitShape regenerates the journal-overhead table in
// quick mode and asserts the qualitative claims BENCH_PR9.json
// records: the journal=off baseline carries no durability counters,
// every journal-attached row group-commits and cuts at least the boot
// and shutdown-window checkpoints, and throughput stays positive under
// every fsync policy.
func TestDurablecommitShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tb, err := Durablecommit(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"off", "batch", "interval", "ckpt"}
	if len(tb.Rows) != len(want) {
		t.Fatalf("want %d rows, got %d", len(want), len(tb.Rows))
	}
	// Columns: 0 fsync, 1 submits/s, 2 overhead, 3 groups, 4 ckpts,
	// 5 lag@end, 6 drain-ms.
	const colRate, colGroups, colCkpts = 1, 3, 4
	for i, row := range tb.Rows {
		if row[0] != want[i] {
			t.Fatalf("row %d: fsync=%q, want %q", i, row[0], want[i])
		}
		if got := cell(t, tb, i, colRate); got <= 0 {
			t.Errorf("fsync=%s: submits/s=%v, want positive", row[0], got)
		}
		groups, ckpts := cell(t, tb, i, colGroups), cell(t, tb, i, colCkpts)
		if row[0] == "off" {
			if groups != 0 || ckpts != 0 {
				t.Errorf("journal=off: groups=%v ckpts=%v, want 0", groups, ckpts)
			}
			continue
		}
		if groups == 0 {
			t.Errorf("fsync=%s: no group commits; the journal never saw an install pass", row[0])
		}
		if ckpts == 0 {
			t.Errorf("fsync=%s: no checkpoints cut", row[0])
		}
		if !strings.HasSuffix(row[2], "%") {
			t.Errorf("fsync=%s: overhead cell %q is not a percentage", row[0], row[2])
		}
	}
}
