package experiments

import (
	"fmt"

	"seve/internal/core"
	"seve/internal/metrics"
)

// fig8World builds the density-stress setup of Section V-B1: 60 clients,
// the world reduced to 250×250 units, avatars initially 4 units apart,
// avatar visibility swept from 10 to 100 units. Rising visibility raises
// the per-move cost (more visible walls to check) and the number of
// avatars each avatar sees — the figure's x axis.
func fig8World(visibility float64, moves int) RunConfig {
	rc := DefaultRunConfig(ArchSEVE, 60)
	rc.World.Width, rc.World.Height = 250, 250
	rc.World.NumWalls = 3000
	rc.World.Visibility = visibility
	rc.MovesPerClient = moves
	rc.Spacing = 4
	rc.SlackMs = 30_000
	// The dense crowd makes closure batches an order of magnitude larger
	// than the Figure 6 workload's; at the Table I 100 Kbps every variant
	// is link-dead at every density, hiding the compute effect the figure
	// isolates. A 1 Mbps link keeps the wire out of the way.
	rc.BandwidthBps = 1_000_000

	// The chain-breaking threshold stays at the Table I default
	// (1.5 × the default 30-unit visibility): the sweep varies what
	// avatars can see, not the consistency budget.
	cfg := core.DefaultConfig()
	cfg.RTTMs = 2 * rc.LatencyMs
	cfg.MaxSpeed = rc.World.Speed
	cfg.DefaultRadius = rc.World.EffectRange
	cfg.Threshold = 45
	rc.Core = cfg
	return rc
}

// Fig8 regenerates Figure 8: "Effect of increasing density of avatars" —
// mean response time against the average number of visible avatars, for
// SEVE with and without move dropping.
//
// Expected shape (Section V-B1): the no-dropping variant bogs down past
// ~35 visible avatars because conflict chains through the packed crowd
// deliver nearly every action to every client and the clients run out of
// compute; the dropping variant breaks the chains (1.5–7.5 % of moves
// dropped) and stays stable.
func Fig8(opt Options) (*metrics.Table, error) {
	visibilities := pick(opt,
		[]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
		[]float64{10, 40, 70, 100})

	t := &metrics.Table{
		Title:  "Figure 8: Response Time (ms) vs Avatars Visible (average), 60 clients, 250x250",
		Header: []string{"visibility", "avatars-visible", "SEVE-nodrop", "SEVE-drop", "moves-dropped-%"},
	}
	for _, vis := range visibilities {
		rcND := fig8World(vis, opt.moves())
		rcND.Arch = ArchSEVENoDrop
		noDrop, err := Run(rcND)
		if err != nil {
			return nil, fmt.Errorf("fig8 nodrop vis=%.0f: %w", vis, err)
		}
		rcD := fig8World(vis, opt.moves())
		rcD.Arch = ArchSEVE
		drop, err := Run(rcD)
		if err != nil {
			return nil, fmt.Errorf("fig8 drop vis=%.0f: %w", vis, err)
		}
		t.AddRow(
			fmt.Sprintf("%.0f", vis),
			fmt.Sprintf("%.1f", drop.AvgVisibleAvatars),
			metrics.Ms(noDrop.Response.Mean()),
			metrics.Ms(drop.Response.Mean()),
			metrics.Pct(drop.Dropped, drop.Submitted),
		)
		opt.log("fig8 vis=%.0f visible=%.1f nodrop=%.0fms drop=%.0fms dropped=%s%%",
			vis, drop.AvgVisibleAvatars, noDrop.Response.Mean(), drop.Response.Mean(),
			metrics.Pct(drop.Dropped, drop.Submitted))
	}
	return t, nil
}
