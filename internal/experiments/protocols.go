package experiments

import (
	"fmt"

	"seve/internal/metrics"
)

// Protocols is an extension experiment beyond the paper's figures: it
// quantifies the Section II-B protocol-family comparison the paper makes
// in prose. Every class of consistency protocol the paper surveys runs
// the same Manhattan People workload:
//
//   - Locking (Project Darkstar): strongly consistent but "the minimum
//     time required by a client to proceed to the next conflicting
//     transaction is twice the round trip time" — expect ≈ 2×RTT.
//   - Ownership (Cyberwalk/WAVES): instant owner-local commits —
//     response ≈ per-move cost — but cached reads are stale, so replicas
//     diverge and contention is inexpressible.
//   - Central, Broadcast, RING: the Section V baselines.
//   - SEVE: one round trip, consistent, scalable.
func Protocols(opt Options) (*metrics.Table, error) {
	const clients = 32
	archs := []Arch{ArchLocking, ArchOwnership, ArchCentral, ArchBroadcast, ArchRing, ArchSEVE}

	t := &metrics.Table{
		Title:  "Protocol Classes (Section II-B) on Manhattan People, 32 clients",
		Header: []string{"protocol", "mean-resp-ms", "p95-resp-ms", "traffic-kb", "divergent-objects", "consistent", "queued-locks"},
	}
	for _, arch := range archs {
		rc := DefaultRunConfig(arch, clients)
		rc.MovesPerClient = opt.moves()
		rc.World.NumWalls = 2000
		rc.World.BaseCostMs = 7.44
		rc.World.PerWallCostMs = 0
		// A denser world raises contention so locking's conflict
		// serialization and ownership's stale reads both show.
		rc.World.Width, rc.World.Height = 300, 300
		res, err := Run(rc)
		if err != nil {
			return nil, fmt.Errorf("protocols %v: %w", arch, err)
		}
		consistent := "yes"
		if res.Divergence > 0 {
			consistent = "no"
		}
		t.AddRow(
			arch.String(),
			metrics.Ms(res.Response.Mean()),
			metrics.Ms(res.Response.Percentile(95)),
			metrics.KB(res.TotalBytes),
			fmt.Sprintf("%d", res.Divergence),
			consistent,
			fmt.Sprintf("%d", res.LockQueued),
		)
		opt.log("protocols %v mean=%.0fms p95=%.0fms divergent=%d queued=%d",
			arch, res.Response.Mean(), res.Response.Percentile(95), res.Divergence, res.LockQueued)
	}
	return t, nil
}
