package experiments

import (
	"fmt"
	"time"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/manhattan"
	"seve/internal/metrics"
	"seve/internal/wire"
	"seve/internal/world"
)

// Limit regenerates the single-server capacity claim of Section V-B1:
// "We performed experiments on a single server and determined the limit
// of our implementation to be about 3500 clients."
//
// Unlike the figure experiments this one measures the real
// implementation, not the simulator: it drives this package's actual
// core.Server with synthetic move rounds — every client submits one move
// per 300 ms round, completions arrive one round late so the uncommitted
// queue carries a full round of in-flight actions, and a First Bound
// push cycle runs each round — and reports the wall-clock CPU the server
// burns per round. The implementation's client limit is where that cost
// reaches the 300 ms round budget.
func Limit(opt Options) (*metrics.Table, error) {
	counts := pick(opt, []int{250, 500, 1000, 2000, 3500, 5000, 8000}, []int{250, 1000})
	rounds := pick(opt, 8, 3)

	t := &metrics.Table{
		Title:  "Single-Server Limit: real server CPU per 300 ms move round (budget: 300 ms)",
		Header: []string{"clients", "server-ms/round", "headroom-x"},
	}
	for _, n := range counts {
		ms, _, err := measureServerRound(n, rounds)
		if err != nil {
			return nil, fmt.Errorf("limit %d clients: %w", n, err)
		}
		headroom := 300 / ms
		t.AddRow(fmt.Sprintf("%d", n), metrics.Ms(ms), fmt.Sprintf("%.1f", headroom))
		opt.log("limit clients=%d serverMs/round=%.2f headroom=%.1fx", n, ms, headroom)
	}
	return t, nil
}

// EngineStats runs the Limit workload at a single scale and reports the
// engine's cumulative counters — the operator-facing view of the
// conflict-index and push-scheduler internals (scans saved, compactions,
// parallel ticks) that the Metrics snapshot exposes.
func EngineStats(opt Options) (*metrics.Table, error) {
	clients := pick(opt, 1000, 250)
	rounds := pick(opt, 8, 3)
	ms, st, err := measureServerRound(clients, rounds)
	if err != nil {
		return nil, fmt.Errorf("serverstats: %w", err)
	}
	t := st.Table()
	t.Title = fmt.Sprintf("Engine counters: %d clients × %d move rounds (%.2f server-ms/round)",
		clients, rounds, ms)
	return t, nil
}

// measureServerRound runs the synthetic rounds and returns the mean real
// milliseconds of server compute per round plus the engine's counters.
func measureServerRound(clients, rounds int) (float64, metrics.ServerStats, error) {
	wcfg := manhattan.DefaultConfig()
	wcfg.Width, wcfg.Height = 10_000, 10_000 // MMO-scale sparsity
	wcfg.NumWalls = 5_000
	wcfg.NumAvatars = clients
	w := manhattan.NewWorld(wcfg)
	init := w.InitialState(0)

	cfg := core.DefaultConfig()
	cfg.MaxSpeed = wcfg.Speed
	cfg.DefaultRadius = wcfg.EffectRange
	cfg.Threshold = 1.5 * wcfg.Visibility
	srv := core.NewServer(cfg, init)
	for i := 1; i <= clients; i++ {
		srv.RegisterClient(action.ClientID(i), 0)
	}

	// mirror approximates each client's view (all clients share it here;
	// only the server is under test).
	mirror := init.Clone()
	nextSeq := make([]uint32, clients+1)

	var serverTime time.Duration
	var pendingCompletions []*wire.Completion
	nowMs := 0.0

	for round := 0; round < rounds; round++ {
		// Completions from the previous round arrive first.
		start := time.Now()
		for _, c := range pendingCompletions {
			srv.HandleCompletion(c.By, c)
		}
		serverTime += time.Since(start)
		pendingCompletions = pendingCompletions[:0]

		for i := 1; i <= clients; i++ {
			cid := action.ClientID(i)
			nextSeq[i]++
			mv, err := w.NewMove(action.ID{Client: cid, Seq: nextSeq[i]}, manhattan.AvatarID(i), mirror)
			if err != nil {
				return 0, metrics.ServerStats{}, err
			}
			sub := &wire.Submit{Env: action.Envelope{Origin: cid, Act: mv}}

			start := time.Now()
			out := srv.HandleSubmit(cid, sub, nowMs)
			serverTime += time.Since(start)

			if out.Dropped {
				continue
			}
			// Emulate the origin client instantly: find the stamped seq
			// from the reply batch, evaluate against the mirror, and
			// queue the completion for next round.
			seq, res := evalReplyTail(out, mv, mirror)
			if seq != 0 {
				pendingCompletions = append(pendingCompletions, &wire.Completion{Seq: seq, By: cid, Res: res})
			}
		}

		// One First Bound push cycle per round.
		nowMs += 300
		start = time.Now()
		srv.Tick(nowMs)
		serverTime += time.Since(start)
	}
	return serverTime.Seconds() * 1000 / float64(rounds), srv.Metrics(), nil
}

// evalReplyTail extracts the submitted move's stamped position from the
// reply, evaluates it against the shared mirror and applies its writes.
func evalReplyTail(out core.ServerOutput, mv action.Action, mirror *world.State) (uint64, action.Result) {
	for _, rep := range out.Replies {
		batch, ok := rep.Msg.(*wire.Batch)
		if !ok {
			continue
		}
		for _, env := range batch.Envs {
			if env.Act.ID() == mv.ID() {
				res := action.Eval(mv, world.StateView{S: mirror})
				for _, wr := range res.Writes {
					mirror.Set(wr.ID, wr.Val)
				}
				return env.Seq, res
			}
		}
	}
	return 0, action.Result{}
}
