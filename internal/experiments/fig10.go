package experiments

import (
	"fmt"

	"seve/internal/metrics"
)

// Fig10 regenerates Figure 10: "SEVE vs RING-like Architecture" — mean
// response time against the number of clients for SEVE and a RING-like
// visibility-filtered architecture, in a denser world where each avatar
// sees ~14 others (the paper raised average visibility from 6.87 to
// 14.01 for this experiment).
//
// Expected shape (Section V-B3): the curves nearly coincide — computing
// the transitive closure costs SEVE only ~1 % over RING — while RING
// silently diverges (the divergence column quantifies the inconsistency
// RING pays for that simplicity; SEVE's is zero by Theorem 1).
func Fig10(opt Options) (*metrics.Table, error) {
	counts := pick(opt, []int{20, 28, 36, 44, 52, 60, 64}, []int{20, 44, 64})

	t := &metrics.Table{
		Title:  "Figure 10: Response Time (ms) vs Number of Clients (SEVE vs RING)",
		Header: []string{"clients", "SEVE", "RING", "avatars-visible", "RING-divergent-%", "SEVE-overhead-%"},
	}
	for _, n := range counts {
		mk := func(arch Arch) RunConfig {
			rc := DefaultRunConfig(arch, n)
			rc.MovesPerClient = opt.moves()
			// Denser world so avatars see ~14 others at 64 clients
			// (the paper raised mean visibility from 6.87 to 14.01).
			rc.World.Width, rc.World.Height = 250, 250
			rc.World.NumWalls = 2_500
			rc.World.Visibility = 65
			rc.World.BaseCostMs = 1
			rc.World.PerWallCostMs = 0.002
			rc.RingVisibility = rc.World.Visibility
			return rc
		}
		seve, err := Run(mk(ArchSEVE))
		if err != nil {
			return nil, fmt.Errorf("fig10 seve/%d: %w", n, err)
		}
		ring, err := Run(mk(ArchRing))
		if err != nil {
			return nil, fmt.Errorf("fig10 ring/%d: %w", n, err)
		}
		// The paper reports SEVE's strong consistency costing ~1 % runtime
		// over RING; measure it as the response-time overhead.
		overhead := 0.0
		if ring.Response.Mean() > 0 {
			overhead = 100 * (seve.Response.Mean() - ring.Response.Mean()) / ring.Response.Mean()
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			metrics.Ms(seve.Response.Mean()),
			metrics.Ms(ring.Response.Mean()),
			fmt.Sprintf("%.1f", seve.AvgVisibleAvatars),
			metrics.Pct(ring.Divergence, n*n),
			fmt.Sprintf("%.2f", overhead),
		)
		opt.log("fig10 clients=%d seve=%.0fms ring=%.0fms visible=%.1f divergent=%d",
			n, seve.Response.Mean(), ring.Response.Mean(), seve.AvgVisibleAvatars, ring.Divergence)
	}
	return t, nil
}
