package experiments

import (
	"fmt"

	"seve/internal/action"
	"seve/internal/baseline"
	"seve/internal/manhattan"
	"seve/internal/netsim"
	"seve/internal/sim"
	"seve/internal/wire"
	"seve/internal/world"
)

// This file wires the Section II-B protocol-family baselines — locking
// and object ownership — into the simulator, extending the Section V
// comparison to every protocol class the paper discusses.

// --- Locking ---

func (h *harness) buildLocking() {
	h.lockSrv = baseline.NewLockServer(h.init)
	h.serverProc = sim.NewProc(h.k, "server")
	h.lockClients = make(map[action.ClientID]*baseline.LockClient)
	h.clientProcs = make(map[action.ClientID]*sim.Proc)

	h.net.AddNode(netsim.ServerNode, func(from netsim.NodeID, msg netsim.Message) {
		var out baseline.Output
		switch m := msg.(type) {
		case *wire.Submit:
			out = h.lockSrv.HandleSubmit(action.ClientID(from), m)
		case *wire.Completion:
			out = h.lockSrv.HandleEffect(action.ClientID(from), m)
		default:
			return
		}
		h.serverProc.Exec(sim.Time(h.rc.Costs.ServerDispatchMs), func() {
			for _, rep := range out.Replies {
				h.net.Send(netsim.ServerNode, h.nodeOf(rep.To), rep.Msg)
			}
		})
	})

	for i := 1; i <= h.rc.World.NumAvatars; i++ {
		cid := action.ClientID(i)
		h.lockSrv.RegisterClient(cid)
		cl := baseline.NewLockClient(cid, h.init)
		h.lockClients[cid] = cl
		proc := sim.NewProc(h.k, fmt.Sprintf("client%d", i))
		h.clientProcs[cid] = proc
		node := h.nodeOf(cid)
		h.net.AddNode(node, func(from netsim.NodeID, msg netsim.Message) {
			out := cl.HandleMsg(msg.(wire.Msg))
			cost := 0.0
			if out.Executed != nil {
				cost = h.rc.Costs.actionCost(out.Executed)
			}
			proc.Exec(sim.Time(cost), func() {
				h.recordCommits(out.Commits)
				for _, m := range out.ToServer {
					h.net.Send(node, netsim.ServerNode, m)
				}
			})
		})
	}
}

// --- Ownership ---

func (h *harness) buildOwnership() {
	owner := make(map[world.ObjectID]action.ClientID, h.rc.World.NumAvatars)
	for i := 1; i <= h.rc.World.NumAvatars; i++ {
		owner[manhattan.AvatarID(i)] = action.ClientID(i)
	}
	h.ownSrv = baseline.NewOwnershipServer(owner, true) // history for divergence
	h.serverProc = sim.NewProc(h.k, "server")
	h.ownClients = make(map[action.ClientID]*baseline.OwnershipClient)
	h.clientProcs = make(map[action.ClientID]*sim.Proc)

	h.net.AddNode(netsim.ServerNode, func(from netsim.NodeID, msg netsim.Message) {
		sub, ok := msg.(*wire.Submit)
		if !ok {
			return
		}
		out := h.ownSrv.HandleUpdate(action.ClientID(from), sub)
		h.serverProc.Exec(sim.Time(h.rc.Costs.ServerDispatchMs), func() {
			for _, rep := range out.Replies {
				h.net.Send(netsim.ServerNode, h.nodeOf(rep.To), rep.Msg)
			}
		})
	})

	for i := 1; i <= h.rc.World.NumAvatars; i++ {
		cid := action.ClientID(i)
		h.ownSrv.RegisterClient(cid)
		cl := baseline.NewOwnershipClient(cid, world.NewIDSet(manhattan.AvatarID(i)), h.init)
		h.ownClients[cid] = cl
		proc := sim.NewProc(h.k, fmt.Sprintf("client%d", i))
		h.clientProcs[cid] = proc
		h.net.AddNode(h.nodeOf(cid), func(from netsim.NodeID, msg netsim.Message) {
			applied := cl.HandleMsg(msg.(wire.Msg))
			cost := 0.0
			for _, a := range applied {
				cost += h.rc.Costs.actionCost(a)
			}
			proc.Exec(sim.Time(cost), func() {})
		})
	}
}

// submitMoveLocking submits through the lock client: no optimistic
// evaluation — the client waits for its grant.
func (h *harness) submitMoveLocking(cid action.ClientID) {
	cl := h.lockClients[cid]
	avatar := manhattan.AvatarID(int(cid))
	mv, err := h.w.NewMove(cl.NextActionID(), avatar, cl.View())
	if err != nil {
		h.res.Violations = append(h.res.Violations, err.Error())
		return
	}
	h.sampleVisibility(cl.View(), avatar)
	msg := cl.Submit(mv)
	h.submitAt[mv.ID()] = h.k.Now()
	h.res.Submitted++
	h.net.Send(h.nodeOf(cid), netsim.ServerNode, msg)
}

// submitMoveOwnership executes locally (instant commit) and ships the
// update for relaying.
func (h *harness) submitMoveOwnership(cid action.ClientID) {
	cl := h.ownClients[cid]
	avatar := manhattan.AvatarID(int(cid))
	mv, err := h.w.NewMove(cl.NextActionID(), avatar, cl.View())
	if err != nil {
		h.res.Violations = append(h.res.Violations, err.Error())
		return
	}
	h.sampleVisibility(cl.View(), avatar)
	h.res.Submitted++
	update, res, ok := cl.Execute(mv)
	if !ok {
		h.res.Dropped++ // contention the protocol cannot express
		return
	}
	node := h.nodeOf(cid)
	proc := h.clientProcs[cid]
	cost := h.rc.Costs.actionCost(mv)
	proc.Exec(sim.Time(cost), func() {
		// The owner's commit is local: response time is just its own
		// evaluation.
		h.res.Response.Add(float64(cost))
		h.res.Committed++
		_ = res
		h.net.Send(node, netsim.ServerNode, update)
	})
}

// ownershipDivergence mirrors ringDivergence for the ownership caches.
func (h *harness) ownershipDivergence() int {
	st := h.init.Clone()
	for _, env := range h.ownSrv.History() {
		res := action.Eval(env.Act, world.StateView{S: st})
		for _, w := range res.Writes {
			st.Set(w.ID, w.Val)
		}
	}
	total := 0
	for _, cl := range h.ownClients {
		total += baseline.Divergence(cl.View(), cl.View().IDs(), st)
	}
	return total
}
