package experiments

import (
	"fmt"
	"os"
	"time"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/durable"
	"seve/internal/geom"
	"seve/internal/metrics"
	"seve/internal/shard"
	"seve/internal/wire"
	"seve/internal/world"
)

// Durablecommit measures the submit-path overhead of the attached
// journal (DESIGN.md §15). The engine's cost per commit group is an
// encode plus a bounded-channel send to the committer goroutine — all
// file I/O, group commit, and checkpointing happen off the hot loop —
// so the engine-side slowdown against a journal-less run should stay
// small under every fsync policy. The table reports, per configuration
// on the shardscale workload, engine submits/s, the overhead against
// the journal=off baseline, the group-commit and checkpoint counters,
// how far the log trailed the engine when the run ended (lag), and the
// wall time of the final Sync barrier that drains that lag.
func Durablecommit(opt Options) (*metrics.Table, error) {
	groups := pick(opt, 16, 8)
	perGroup := pick(opt, 16, 8)
	rounds := pick(opt, 30, 8)
	snapshotEvery := uint64(pick(opt, 2048, 256))
	reps := pick(opt, 3, 1)

	type variant struct {
		name string
		open func(dir string, base *world.State) (*durable.Store, error)
	}
	mk := func(o durable.Options) func(string, *world.State) (*durable.Store, error) {
		return func(dir string, base *world.State) (*durable.Store, error) {
			s, _, err := durable.Open(dir, base, o)
			return s, err
		}
	}
	variants := []variant{
		{"off", nil},
		{"batch", mk(durable.Options{Fsync: durable.FsyncBatch, SnapshotEvery: snapshotEvery})},
		{"interval", mk(durable.Options{Fsync: durable.FsyncInterval, FsyncEvery: 5 * time.Millisecond, SnapshotEvery: snapshotEvery})},
		{"ckpt", mk(durable.Options{Fsync: durable.FsyncCheckpoint, SnapshotEvery: snapshotEvery})},
	}

	t := &metrics.Table{
		Title: fmt.Sprintf("Journal submit-path overhead: %d groups × %d clients, %d rounds, snapshot every %d installs; overhead vs journal=off",
			groups, perGroup, rounds, snapshotEvery),
		Header: []string{"fsync", "submits/s", "overhead", "groups", "ckpts", "lag@end", "drain-ms"},
	}
	// Untimed warm-up so the journal=off baseline (which runs first)
	// doesn't absorb the process's one-time costs and understate every
	// variant's overhead.
	if _, _, _, err := measureDurableSubmit(groups, perGroup, min(rounds, 8), nil); err != nil {
		return nil, err
	}
	base := 0.0
	for _, v := range variants {
		var persec, drainMs float64
		var st durable.Stats
		for rep := 0; rep < reps; rep++ {
			p, d, s, err := measureDurableSubmit(groups, perGroup, rounds, v.open)
			if err != nil {
				return nil, fmt.Errorf("durablecommit fsync=%s: %w", v.name, err)
			}
			if p > persec {
				persec, drainMs, st = p, d, s
			}
		}
		if base == 0 {
			base = persec
		}
		overhead := (base - persec) / base * 100
		t.AddRow(v.name, fmt.Sprintf("%.0f", persec),
			fmt.Sprintf("%.1f%%", overhead),
			fmt.Sprintf("%d", st.GroupCommits),
			fmt.Sprintf("%d", st.Checkpoints),
			fmt.Sprintf("%d", st.Emitted-st.Durable),
			fmt.Sprintf("%.1f", drainMs))
		opt.log("durablecommit fsync=%s submits/s=%.0f overhead=%.1f%% groups=%d ckpts=%d lag=%d drain=%.1fms",
			v.name, persec, overhead, st.GroupCommits, st.Checkpoints, st.Emitted-st.Durable, drainMs)
	}
	return t, nil
}

// measureDurableSubmit drives the conflict-dense group workload
// through synchronized rounds on a single-lane engine — submissions,
// an epoch flush, completions completionLag rounds later — exactly as
// measureShardedSubmit does, but with an optional journal attached.
// Only HandleMsg and Flush are timed: the engine-side journal cost
// (record encode + channel send, or backpressure when the committer
// falls behind) lands inside that window; the committer's own disk
// work does not. It returns engine submits/s, the wall milliseconds of
// the final Sync barrier, and the store's counters captured before
// that barrier (so lag@end reflects how far the log trailed while the
// engine was running).
func measureDurableSubmit(groups, perGroup, rounds int, open func(string, *world.State) (*durable.Store, error)) (float64, float64, durable.Stats, error) {
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeIncomplete
	cfg.Threshold = 1e12
	cfg.Shards = 1
	cfg.ShardCellSize = 100

	init := world.NewState()
	hubOf := func(g int) world.ObjectID { return world.ObjectID(g*(perGroup+1) + 1) }
	ownOf := func(g, i int) world.ObjectID { return world.ObjectID(g*(perGroup+1) + 2 + i) }
	for g := 0; g < groups; g++ {
		init.Set(hubOf(g), world.Value{0})
		for i := 0; i < perGroup; i++ {
			init.Set(ownOf(g, i), world.Value{0})
		}
	}

	var store *durable.Store
	if open != nil {
		dir, err := os.MkdirTemp("", "durablecommit-*")
		if err != nil {
			return 0, 0, durable.Stats{}, err
		}
		defer os.RemoveAll(dir)
		store, err = open(dir, init)
		if err != nil {
			return 0, 0, durable.Stats{}, err
		}
		defer store.Close()
	}

	eng := shard.NewEngine(cfg, init)
	if r, ok := eng.(*shard.Router); ok {
		defer r.Close()
	}
	if store != nil {
		eng.SetJournal(store)
	}
	clients := groups * perGroup
	for c := 1; c <= clients; c++ {
		eng.RegisterClient(action.ClientID(c), 0)
	}

	mirror := init.Clone()
	nextSeq := make([]uint32, clients+1)
	pending := make([][]*wire.Completion, completionLag)
	var engineTime time.Duration
	nowMs := 0.0

	for round := 0; round < rounds; round++ {
		due := pending[0]
		copy(pending, pending[1:])
		pending[completionLag-1] = nil
		start := time.Now()
		for _, c := range due {
			eng.HandleMsg(c.By, c, nowMs)
		}
		engineTime += time.Since(start)

		acts := make(map[action.ID]*groupAction, clients)
		var outs []core.ServerOutput
		start = time.Now()
		for c := 1; c <= clients; c++ {
			cid := action.ClientID(c)
			g := (c - 1) / perGroup
			nextSeq[c]++
			a := &groupAction{
				id:  action.ID{Client: cid, Seq: nextSeq[c]},
				hub: hubOf(g), own: ownOf(g, (c-1)%perGroup),
				pos: geom.Vec{X: float64(g)*300 + 50, Y: float64(g)*300 + 50},
			}
			acts[a.id] = a
			outs = append(outs, eng.HandleMsg(cid, &wire.Submit{Env: action.Envelope{Origin: cid, Act: a}}, nowMs))
		}
		if f, ok := eng.(core.Flusher); ok {
			outs = append(outs, f.Flush())
		}
		engineTime += time.Since(start)
		nowMs += 300

		for _, out := range outs {
			for _, rep := range out.Replies {
				batch, ok := rep.Msg.(*wire.Batch)
				if !ok {
					continue
				}
				for _, env := range batch.Envs {
					a, mine := acts[env.Act.ID()]
					if !mine || env.Origin != rep.To {
						continue
					}
					res := action.Eval(a, world.StateView{S: mirror})
					for _, wr := range res.Writes {
						mirror.Set(wr.ID, wr.Val)
					}
					pending[completionLag-1] = append(pending[completionLag-1],
						&wire.Completion{Seq: env.Seq, By: rep.To, Res: res})
					delete(acts, env.Act.ID())
				}
			}
		}
	}

	var st durable.Stats
	var drainMs float64
	if store != nil {
		lag := store.Stats()
		start := time.Now()
		if err := store.Sync(); err != nil {
			return 0, 0, lag, err
		}
		drainMs = float64(time.Since(start).Microseconds()) / 1000
		// Counters (group commits, checkpoints) are read after the
		// barrier so they cover the whole run; the lag is the pre-sync
		// snapshot — how far the log trailed while the engine ran.
		st = store.Stats()
		st.Emitted, st.Durable = lag.Emitted, lag.Durable
	}
	total := float64(clients * rounds)
	return total / engineTime.Seconds(), drainMs, st, nil
}
