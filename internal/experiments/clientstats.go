package experiments

import (
	"fmt"

	"seve/internal/metrics"
)

// ClientEngineStats runs the Table I workload on the full SEVE stack and
// reports the client fleet's aggregated engine counters — the
// reconciliation, divergence-tracking, and batch-buffering internals the
// incremental Algorithm 3 path exposes through core.Client.Metrics. The
// companion of EngineStats, which reports the server side.
func ClientEngineStats(opt Options) (*metrics.Table, error) {
	clients := pick(opt, 40, 16)
	rc := DefaultRunConfig(ArchSEVE, clients)
	rc.MovesPerClient = pick(opt, 60, 20)
	// Crowd the avatars so concurrent moves actually conflict and the
	// reconciliation counters report a non-trivial workload.
	rc.CrowdFraction = 1
	rc.Verify = true
	res, err := Run(rc)
	if err != nil {
		return nil, fmt.Errorf("clientstats: %w", err)
	}
	t := res.ClientStats.Table()
	t.Title = fmt.Sprintf("Client engine counters: %d clients × %d moves (aggregated fleet)",
		clients, rc.MovesPerClient)
	opt.log("clientstats clients=%d reconciliations=%d remote=%d copies=%d",
		clients, res.ClientStats.Reconciliations, res.ClientStats.AppliedRemote,
		res.ClientStats.ReconcileCopies)
	return t, nil
}
