package experiments

import (
	"fmt"

	"seve/internal/core"
	"seve/internal/metrics"
)

// Hybrid is an extension experiment for the Section VII future-work
// direction, implemented in core: delegating First Bound push fan-out to
// one relay client per neighbourhood cell. With avatars crowded so cells
// hold many clients, the server's egress drops by roughly the cell
// population while consistency (Theorem 1, enforced in strict mode by
// the core tests) and response times are unchanged; total network bytes
// shift onto the peer-to-peer links.
func Hybrid(opt Options) (*metrics.Table, error) {
	const clients = 48

	t := &metrics.Table{
		Title:  "Hybrid P2P relay (Section VII): 48 clients packed 4 units apart",
		Header: []string{"push-fanout", "server-sent-kb", "total-kb", "mean-resp-ms", "p95-resp-ms"},
	}
	for _, hybrid := range []bool{false, true} {
		rc := DefaultRunConfig(ArchSEVENoDrop, clients)
		rc.MovesPerClient = opt.moves()
		rc.World.NumWalls = 1000
		rc.World.BaseCostMs = 1
		rc.World.PerWallCostMs = 0
		// The Figure 8 packed formation (avatars 4 units apart): several
		// clients per influence cell, the regime where fan-out
		// delegation pays.
		rc.World.Width, rc.World.Height = 250, 250
		rc.Spacing = 4
		rc.BandwidthBps = 1_000_000
		cfg := core.DefaultConfig()
		cfg.Mode = core.ModeFirstBound
		cfg.RTTMs = 2 * rc.LatencyMs
		cfg.MaxSpeed = rc.World.Speed
		cfg.DefaultRadius = rc.World.EffectRange
		cfg.Threshold = 45
		cfg.HybridRelay = hybrid
		rc.Core = cfg

		res, err := Run(rc)
		if err != nil {
			return nil, fmt.Errorf("hybrid=%v: %w", hybrid, err)
		}
		label := "server-unicast"
		if hybrid {
			label = "p2p-relay"
		}
		t.AddRow(
			label,
			metrics.KB(res.ServerSentBytes),
			metrics.KB(res.TotalBytes),
			metrics.Ms(res.Response.Mean()),
			metrics.Ms(res.Response.Percentile(95)),
		)
		opt.log("hybrid=%v serverSent=%d total=%d resp=%.0f",
			hybrid, res.ServerSentBytes, res.TotalBytes, res.Response.Mean())
	}
	return t, nil
}
