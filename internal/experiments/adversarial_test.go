package experiments

import "testing"

// TestAdversarialShape regenerates the adversarial delivery table in
// quick mode and asserts the qualitative claims BENCH_PR7.json records:
// the keep-up control is byte-identical across disciplines, every
// stall scenario trades all of its drops for supersessions, and the
// stalled cohort's delivered bytes shrink.
func TestAdversarialShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tb, err := Adversarial(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("want 8 rows (4 scenarios x off/on), got %d", len(tb.Rows))
	}
	// Columns: 0 workload, 1 superseding, 2 delivered_kb, 3 stalled_kb,
	// 4 frames, 5 avg_envs, 6 enqueued, 7 drops, 8 drop_pct,
	// 9 superseded, 10 coalesced, 11 snapshots, 12 max_stale, 13 bytes_x.
	const (
		colKB, colStalledKB, colDrops = 2, 3, 7
		colSuperseded, colSnapshots   = 9, 11
		colBytesX                     = 13
	)
	for pair := 0; pair < len(tb.Rows); pair += 2 {
		off, on := pair, pair+1
		name := tb.Rows[off][0]
		if tb.Rows[off][1] != "off" || tb.Rows[on][1] != "on" || tb.Rows[on][0] != name {
			t.Fatalf("row pair %d is not an off/on pair for one workload: %v / %v",
				pair, tb.Rows[off], tb.Rows[on])
		}
		if got := cell(t, tb, on, colDrops); got != 0 {
			t.Errorf("%s: superseding queue dropped %v frames; supersession must replace, never lose", name, got)
		}
		if name == "uniform" {
			// The keep-up control: the experiment-scale restatement of
			// TestSupersedingEquivalence. Identical bytes, nothing
			// superseded, no drops in either discipline.
			for _, col := range []int{colKB, colStalledKB, colDrops, colSuperseded, colSnapshots} {
				if a, b := cell(t, tb, off, col), cell(t, tb, on, col); a != b || (col != colKB && a != 0) {
					t.Errorf("uniform col %d: off=%v on=%v, want equal (and 0 beyond delivered_kb)", col, a, b)
				}
			}
			continue
		}
		if got := cell(t, tb, off, colDrops); got == 0 {
			t.Errorf("%s: drop-at-cap queue never dropped; the stall profile is not adversarial enough", name)
		}
		if got := cell(t, tb, on, colSuperseded); got == 0 {
			t.Errorf("%s: superseding queue never superseded", name)
		}
		if got := cell(t, tb, on, colSnapshots); got == 0 {
			t.Errorf("%s: snapshot fallback never fired", name)
		}
		if got := cell(t, tb, on, colBytesX); got <= 1 {
			t.Errorf("%s: no stalled-cohort byte reduction: %vx", name, got)
		}
	}
}
