package experiments

import (
	"fmt"

	"seve/internal/core"
	"seve/internal/metrics"
)

// Table2 regenerates Table II: "Percentage of moves dropped (visibility
// = 20 units)" — the drop rate of the Information Bound Model as a
// function of the move effect range, in the dense Figure 8 world.
//
// Expected shape: zero or negligible drops for effect ranges 1–5 (chains
// grow only a few units per hop and never span the threshold within an
// RTT) rising monotonically to several percent at range 11 — the paper
// reports 0, 0, 0.01, 1.53, 4.03, 8.87 for ranges 1, 3, 5, 7, 9, 11.
func Table2(opt Options) (*metrics.Table, error) {
	ranges := pick(opt,
		[]float64{1, 3, 5, 7, 9, 11},
		[]float64{1, 5, 9, 11})

	t := &metrics.Table{
		Title:  "Table II: Percentage of Moves Dropped (visibility = 20 units)",
		Header: []string{"move-effect-range", "%-moves-dropped"},
	}
	for _, r := range ranges {
		rc := fig8World(20, opt.moves())
		rc.Arch = ArchSEVE
		rc.World.EffectRange = r
		// Threshold follows Table I: 1.5 × the experiment's visibility.
		cfg := rc.Core
		cfg.Threshold = 1.5 * 20
		cfg.DefaultRadius = r
		rc.Core = cfg
		res, err := Run(rc)
		if err != nil {
			return nil, fmt.Errorf("table2 range=%.0f: %w", r, err)
		}
		t.AddRow(fmt.Sprintf("%.0f", r), metrics.Pct(res.Dropped, res.Submitted))
		opt.log("table2 range=%.0f dropped=%d/%d (%s%%)",
			r, res.Dropped, res.Submitted, metrics.Pct(res.Dropped, res.Submitted))
	}
	// Appease the linter if core ends up unused in quick edits.
	_ = core.ModeInfoBound
	return t, nil
}
