package experiments

import (
	"fmt"

	"seve/internal/core"
	"seve/internal/metrics"
)

// Ablations for the design choices DESIGN.md calls out: the First Bound
// push interval ω, the Information Bound threshold, and the client-side
// garbage collection. Each sweeps one knob with everything else held at
// the Figure 6 / Figure 8 configurations.

// AblationOmega sweeps ω, the First Bound push interval as a fraction of
// RTT. Section III-D proves response time ≤ (1+ω)·RTT: small ω buys
// latency with more frequent pushes (server tick work); large ω batches
// pushes but lets closure replies carry more. The response column should
// track the (1+ω)·RTT bound from below at low load.
func AblationOmega(opt Options) (*metrics.Table, error) {
	omegas := pick(opt, []float64{0.1, 0.25, 0.5, 0.75, 0.9}, []float64{0.1, 0.5, 0.9})

	t := &metrics.Table{
		Title:  "Ablation: First Bound push interval ω (32 clients, RTT 476 ms)",
		Header: []string{"omega", "bound-(1+w)RTT", "mean-resp-ms", "p95-resp-ms", "queue-scans"},
	}
	for _, om := range omegas {
		rc := DefaultRunConfig(ArchSEVE, 32)
		rc.MovesPerClient = opt.moves()
		rc.World.NumWalls = 2000
		rc.World.BaseCostMs = 2
		rc.World.PerWallCostMs = 0
		cfg := core.DefaultConfig()
		cfg.RTTMs = 2 * rc.LatencyMs
		cfg.MaxSpeed = rc.World.Speed
		cfg.DefaultRadius = rc.World.EffectRange
		cfg.Threshold = 45
		cfg.Omega = om
		rc.Core = cfg
		res, err := Run(rc)
		if err != nil {
			return nil, fmt.Errorf("ablation omega=%.2f: %w", om, err)
		}
		t.AddRow(
			fmt.Sprintf("%.2f", om),
			metrics.Ms((1+om)*cfg.RTTMs),
			metrics.Ms(res.Response.Mean()),
			metrics.Ms(res.Response.Percentile(95)),
			fmt.Sprintf("%d", res.QueueScans),
		)
		opt.log("ablation omega=%.2f mean=%.0f p95=%.0f scans=%d",
			om, res.Response.Mean(), res.Response.Percentile(95), res.QueueScans)
	}
	return t, nil
}

// AblationThreshold sweeps the Information Bound chain-breaking distance
// in the dense Figure 8 world: the consistency-vs-performance dial of
// Section III-E. Small thresholds drop aggressively and stay fast; an
// effectively infinite threshold is the no-dropping variant that
// collapses.
func AblationThreshold(opt Options) (*metrics.Table, error) {
	thresholds := pick(opt, []float64{15, 30, 45, 90, 180, 1e9}, []float64{15, 45, 1e9})

	t := &metrics.Table{
		Title:  "Ablation: Information Bound threshold (Figure 8 world, visibility 90)",
		Header: []string{"threshold", "mean-resp-ms", "moves-dropped-%", "queue-scans"},
	}
	for _, th := range thresholds {
		rc := fig8World(90, opt.moves())
		rc.Arch = ArchSEVE
		cfg := rc.Core
		cfg.Threshold = th
		rc.Core = cfg
		res, err := Run(rc)
		if err != nil {
			return nil, fmt.Errorf("ablation threshold=%.0f: %w", th, err)
		}
		label := fmt.Sprintf("%.0f", th)
		if th >= 1e9 {
			label = "inf"
		}
		t.AddRow(
			label,
			metrics.Ms(res.Response.Mean()),
			metrics.Pct(res.Dropped, res.Submitted),
			fmt.Sprintf("%d", res.QueueScans),
		)
		opt.log("ablation threshold=%s mean=%.0f dropped=%s%%",
			label, res.Response.Mean(), metrics.Pct(res.Dropped, res.Submitted))
	}
	return t, nil
}

// AblationGC compares client stable-store memory with and without the
// Section III-C garbage collection (the server's installed-point
// notifications letting clients prune old versions).
func AblationGC(opt Options) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:  "Ablation: client version garbage collection (32 clients)",
		Header: []string{"gc", "max-stable-versions", "mean-resp-ms"},
	}
	for _, disable := range []bool{false, true} {
		rc := DefaultRunConfig(ArchSEVE, 32)
		rc.MovesPerClient = opt.moves()
		rc.World.NumWalls = 2000
		rc.World.BaseCostMs = 2
		rc.World.PerWallCostMs = 0
		// A smaller world concentrates conflicts so stable stores
		// actually accumulate versions.
		rc.World.Width, rc.World.Height = 300, 300
		cfg := core.DefaultConfig()
		cfg.RTTMs = 2 * rc.LatencyMs
		cfg.MaxSpeed = rc.World.Speed
		cfg.DefaultRadius = rc.World.EffectRange
		cfg.Threshold = 45
		cfg.DisableGC = disable
		rc.Core = cfg
		res, err := Run(rc)
		if err != nil {
			return nil, fmt.Errorf("ablation gc disable=%v: %w", disable, err)
		}
		label := "on"
		if disable {
			label = "off"
		}
		t.AddRow(label, fmt.Sprintf("%d", res.MaxStableVersions), metrics.Ms(res.Response.Mean()))
		opt.log("ablation gc=%s versions=%d", label, res.MaxStableVersions)
	}
	return t, nil
}
