package durable

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Recovery = shadow replay over the files. The directory is scanned
// for the three artifact families a checkpoint publishes — snapshots,
// meta lineages, per-lane segments — and the shadow is rebuilt the
// same way the committer builds it live:
//
//  1. the newest intact snapshot seeds the state (older generations
//     are fallbacks kept by the gc policy; a corrupt newest snapshot
//     costs one checkpoint interval, not the world),
//  2. the newest parseable meta lineage seeds the watermarks and the
//     session table (baked sessions first, then the appended tail of
//     opens and retains, stopping at the first torn record),
//  3. every commit entry above the coverage point, merged across lane
//     segments by serial position, is walked contiguously — entries
//     already inside the snapshot update only the dedup floors,
//     entries above it replay onto the state. The walk stops at the
//     first hole: everything past a torn, corrupt or shed record was
//     never acknowledged as durable.
//
// If the meta lineage claims coverage the walk could not reach (a
// corrupt newest snapshot combined with lost segments), the session
// table is dropped wholesale rather than resurrected with floors that
// might swallow fresh submissions; such clients simply rejoin.

type segFile struct {
	name  string
	lane  int32
	start uint64
}

// scanDir classifies the store directory. Snapshot and meta starts
// come back ascending.
func scanDir(dir string) (snaps, metas []uint64, segs []segFile) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil
	}
	for _, e := range entries {
		n := e.Name()
		switch {
		case strings.HasPrefix(n, "snapshot-") && strings.HasSuffix(n, ".state"):
			if v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(n, "snapshot-"), ".state"), 10, 64); err == nil {
				snaps = append(snaps, v)
			}
		case strings.HasPrefix(n, "meta-") && strings.HasSuffix(n, ".log"):
			if v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(n, "meta-"), ".log"), 10, 64); err == nil {
				metas = append(metas, v)
			}
		case strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".log"):
			rest := strings.TrimSuffix(strings.TrimPrefix(n, "wal-"), ".log")
			i := strings.IndexByte(rest, '-')
			if i <= 0 {
				continue
			}
			lane, err1 := strconv.ParseInt(rest[:i], 10, 32)
			start, err2 := strconv.ParseUint(rest[i+1:], 10, 64)
			if err1 == nil && err2 == nil {
				segs = append(segs, segFile{name: n, lane: int32(lane), start: start})
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(metas, func(i, j int) bool { return metas[i] < metas[j] })
	return snaps, metas, segs
}

// appendCRC frames a snapshot body the seed way: crc(4) then body.
func appendCRC(buf, body []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	return append(buf, body...)
}

// recoverDir rebuilds the shadow from dir. Returns the shadow, the
// boot generation of the previous Open (0 if none), and whether any
// snapshot loaded (so Open knows to seed a virgin store from the
// generated base world).
func recoverDir(dir string, opts Options) (*shadow, uint64, bool, error) {
	sh := newShadow(opts.ResumeWindow)
	snaps, metas, segs := scanDir(dir)

	// 1. Newest intact snapshot.
	hadSnapshot := false
	var snapSeq uint64
	for i := len(snaps) - 1; i >= 0 && !hadSnapshot; i-- {
		raw, err := os.ReadFile(filepath.Join(dir, snapshotName(snaps[i])))
		if err != nil || len(raw) < 4 {
			continue
		}
		if crc32.ChecksumIEEE(raw[4:]) != binary.LittleEndian.Uint32(raw) {
			continue
		}
		seq, st, err := decodeState(raw[4:])
		if err != nil {
			continue
		}
		sh.state, sh.applied, snapSeq = st, seq, seq
		hadSnapshot = true
	}

	// 2. Newest parseable meta lineage: header, baked sessions, then
	// the appended tail. A file whose first record is not an intact
	// header is skipped before anything from it touches the shadow.
	var hdr walMetaHdr
	metaOK := false
	var prevBoot uint64
	for i := len(metas) - 1; i >= 0 && !metaOK; i-- {
		raw, err := os.ReadFile(filepath.Join(dir, metaName(metas[i])))
		if err != nil {
			continue
		}
		first, ok := true, true
		scanRecords(raw, func(body []byte) bool {
			if first {
				first = false
				h, herr := decodeMetaHdr(body)
				if herr != nil {
					ok = false
					return false
				}
				hdr = h
				return true
			}
			switch body[0] {
			case recMetaSess:
				if m, err := decodeMetaSess(body); err == nil {
					sh.bake(m, true)
				}
			case recSession:
				if rec, _, err := decodeSessionFields(body, 1); err == nil {
					sh.open(rec)
				}
			case recBatch:
				if rec, err := decodeBatchRecord(body); err == nil {
					sh.retain(rec, true)
				}
			case recQuarantine:
				if rec, err := decodeQuarantineRecord(body); err == nil {
					sh.quarantine(rec)
				}
			}
			return true
		})
		if ok && !first {
			metaOK = true
		}
	}
	if metaOK {
		prevBoot = hdr.boot
		sh.nextBlind = hdr.nextBlind
		if hdr.sessionSeq > sh.sessionSeq {
			sh.sessionSeq = hdr.sessionSeq
		}
	}

	// 3. Merge commit entries across segments by serial position and
	// walk contiguously. The floor base reaches below the snapshot when
	// the meta lineage is older than it (a crash landed between the two
	// publishes): those entries are floor-only — their writes are
	// already inside the snapshot.
	base := snapSeq
	if metaOK && hdr.upTo < base {
		base = hdr.upTo
	}
	type seqRec struct {
		e     walEntry
		blind uint32
	}
	byseq := make(map[uint64]seqRec)
	for _, sg := range segs {
		raw, err := os.ReadFile(filepath.Join(dir, sg.name))
		if err != nil {
			continue
		}
		scanRecords(raw, func(body []byte) bool {
			if body[0] != recCommit {
				return true
			}
			g, derr := decodeCommitRecord(body)
			if derr != nil {
				return true
			}
			for _, e := range g.entries {
				if e.seq > base {
					byseq[e.seq] = seqRec{e: e, blind: g.nextBlind}
				}
			}
			return true
		})
	}
	next := base + 1
	for {
		r, ok := byseq[next]
		if !ok {
			break
		}
		if next <= snapSeq {
			// Covered by the snapshot: only the dedup floor is news.
			if sess := sh.sessions[r.e.origin]; sess != nil && r.e.seq > sess.stampFloor && r.e.actSeq > sess.lastActSeq {
				sess.lastActSeq = r.e.actSeq
			}
		} else {
			sh.applyEntry(r.e)
			if r.blind > sh.nextBlind {
				sh.nextBlind = r.blind
			}
		}
		next++
	}
	floorsComplete := next > snapSeq

	// Session floors must never overstate what the walk reached —
	// an inflated floor silently swallows a rejoined client's fresh
	// submissions, which is worse than making it rejoin.
	if metaOK && (hdr.upTo > sh.applied || !floorsComplete) {
		clear(sh.sessions)
	}
	if sh.applied > 0 && !hadSnapshot && len(sh.sessions) > 0 {
		// Segments without any snapshot (a pre-checkpoint crash of a
		// virgin store) cannot prove the base world; sessions stay —
		// their floors derive from the walked prefix — but this path is
		// unreachable with the boot checkpoint Open always cuts, so be
		// conservative anyway.
		clear(sh.sessions)
	}
	return sh, prevBoot, hadSnapshot, nil
}
