package durable

// WAL record formats. Every file in the store — per-lane log segments,
// the meta lineage, even the appended tail of a checkpointed meta — is
// a sequence of framed records:
//
//	len(4) crc(4) body
//
// with the CRC32 covering the body. A torn tail (len reaches past the
// file) or a corrupt body stops the scan at the last intact prefix,
// the redo-log semantics the seed store already had. body[0] is the
// record kind:
//
//	recCommit   one InstallContiguous pass's entries for one lane:
//	            lane(4) epoch(8) nextBlind(4) count(4), then per entry
//	            seq(8) origin(4) actSeq(4) ok(1) nwrites(4) writes
//	recSession  a session mint or reset:
//	            cid(4) token(8) mask(8) seqNo(8) stampFloor(8)
//	recBatch    a batch entering a resume window:
//	            cid(4) clientSeq(8) plen(4) payload — the payload is
//	            the wire.AppendMsg encoding of the wire.Batch
//	recMetaHdr  meta lineage header:
//	            boot(8) nextBlind(4) sessionSeq(8) upTo(8)
//	recMetaSess a session baked into a checkpoint: the recSession
//	            fields plus lastActSeq(4) lastSeq(8) and the retained
//	            ring nring(4) [clientSeq(8) plen(4) payload]...
//	recQuarantine an integrity quarantine verdict (DESIGN.md §16):
//	            cid(4) reason(1) seq(8) — appended to the meta lineage
//	            live and re-baked into it at every checkpoint, so a
//	            cheater cannot launder its ledger through a restart
//
// Writes inside commit entries and the snapshot-file body reuse the
// seed encoding: id(8) nattr(2) attrs(8 each); snapshot files are
// crc(4) then seq(8) count(4) objects, unchanged so pre-refactor
// checkpoints still load.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/world"
)

const (
	recCommit     = 1
	recSession    = 2
	recBatch      = 3
	recMetaHdr    = 4
	recMetaSess   = 5
	recQuarantine = 6
)

// frameHdrLen is the reserved prefix sealRecord fills in.
const frameHdrLen = 8

// sealRecord fills the length/CRC frame of the record starting at
// offset start in buf (its body was appended after frameHdrLen
// reserved bytes there). Records may be appended back to back into one
// buffer — the meta lineage is written that way.
func sealRecord(buf []byte, start int) []byte {
	body := buf[start+frameHdrLen:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(body))
	return buf
}

// scanRecords walks the framed records in raw, calling fn with each
// intact body. It stops at the first torn or corrupt record (or when
// fn returns false) and reports whether the whole input was intact.
func scanRecords(raw []byte, fn func(body []byte) bool) bool {
	for len(raw) > 0 {
		if len(raw) < frameHdrLen {
			return false
		}
		n := int(binary.LittleEndian.Uint32(raw))
		want := binary.LittleEndian.Uint32(raw[4:])
		if n < 1 || len(raw) < frameHdrLen+n {
			return false // torn tail
		}
		body := raw[frameHdrLen : frameHdrLen+n]
		if crc32.ChecksumIEEE(body) != want {
			return false // corruption: stop at the intact prefix
		}
		if !fn(body) {
			return true
		}
		raw = raw[frameHdrLen+n:]
	}
	return true
}

// appendWriteList appends the seed write encoding: nwrites(4) then
// id(8) nattr(2) attrs(8 each) per write.
func appendWriteList(buf []byte, ws []world.Write) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ws)))
	for _, w := range ws {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(w.ID))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(w.Val)))
		for _, f := range w.Val {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
	}
	return buf
}

// decodeWriteList decodes appendWriteList's output from body[off:],
// returning the writes (freshly allocated — they outlive the buffer)
// and the offset past them.
func decodeWriteList(body []byte, off int) ([]world.Write, int, error) {
	if len(body) < off+4 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	n := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	var ws []world.Write
	for i := 0; i < n; i++ {
		if len(body) < off+10 {
			return nil, 0, io.ErrUnexpectedEOF
		}
		id := world.ObjectID(binary.LittleEndian.Uint64(body[off:]))
		attrs := int(binary.LittleEndian.Uint16(body[off+8:]))
		off += 10
		if len(body) < off+8*attrs {
			return nil, 0, io.ErrUnexpectedEOF
		}
		val := make(world.Value, attrs)
		for j := range val {
			val[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[off+8*j:]))
		}
		off += 8 * attrs
		ws = append(ws, world.Write{ID: id, Val: val})
	}
	return ws, off, nil
}

// appendCommitRecord encodes one lane's slice of a commit group. pick
// selects which of recs belong to this record (the caller partitions a
// group by lane); entries keep their serial order.
func appendCommitRecord(buf []byte, lane int32, epoch uint64, nextBlind uint32, recs []core.CommitRecord, pick func(*core.CommitRecord) bool) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, frameHdrLen)...)
	buf = append(buf, recCommit)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(lane))
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = binary.LittleEndian.AppendUint32(buf, nextBlind)
	countAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	n := uint32(0)
	for i := range recs {
		r := &recs[i]
		if !pick(r) {
			continue
		}
		n++
		buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Origin))
		buf = binary.LittleEndian.AppendUint32(buf, r.ActSeq)
		if r.Res.OK {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = appendWriteList(buf, r.Res.Writes)
	}
	binary.LittleEndian.PutUint32(buf[countAt:], n)
	return sealRecord(buf, start)
}

// walEntry is one decoded commit entry.
type walEntry struct {
	seq    uint64
	origin action.ClientID
	actSeq uint32
	ok     bool
	writes []world.Write
}

// walGroup is one decoded recCommit record.
type walGroup struct {
	lane      int32
	epoch     uint64
	nextBlind uint32
	entries   []walEntry
}

func decodeCommitRecord(body []byte) (walGroup, error) {
	var g walGroup
	if len(body) < 21 || body[0] != recCommit {
		return g, fmt.Errorf("durable: malformed commit record")
	}
	g.lane = int32(binary.LittleEndian.Uint32(body[1:]))
	g.epoch = binary.LittleEndian.Uint64(body[5:])
	g.nextBlind = binary.LittleEndian.Uint32(body[13:])
	n := int(binary.LittleEndian.Uint32(body[17:]))
	off := 21
	for i := 0; i < n; i++ {
		if len(body) < off+17 {
			return g, io.ErrUnexpectedEOF
		}
		e := walEntry{
			seq:    binary.LittleEndian.Uint64(body[off:]),
			origin: action.ClientID(int32(binary.LittleEndian.Uint32(body[off+8:]))),
			actSeq: binary.LittleEndian.Uint32(body[off+12:]),
			ok:     body[off+16] == 1,
		}
		off += 17
		var err error
		e.writes, off, err = decodeWriteList(body, off)
		if err != nil {
			return g, err
		}
		g.entries = append(g.entries, e)
	}
	return g, nil
}

// walSession is a decoded recSession record.
type walSession struct {
	id         action.ClientID
	token      uint64
	mask       uint64
	seqNo      uint64
	stampFloor uint64
}

func appendSessionRecord(buf []byte, s walSession) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, frameHdrLen)...)
	buf = append(buf, recSession)
	buf = appendSessionFields(buf, s)
	return sealRecord(buf, start)
}

func appendSessionFields(buf []byte, s walSession) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.id))
	buf = binary.LittleEndian.AppendUint64(buf, s.token)
	buf = binary.LittleEndian.AppendUint64(buf, s.mask)
	buf = binary.LittleEndian.AppendUint64(buf, s.seqNo)
	buf = binary.LittleEndian.AppendUint64(buf, s.stampFloor)
	return buf
}

func decodeSessionFields(body []byte, off int) (walSession, int, error) {
	if len(body) < off+36 {
		return walSession{}, 0, io.ErrUnexpectedEOF
	}
	s := walSession{
		id:         action.ClientID(int32(binary.LittleEndian.Uint32(body[off:]))),
		token:      binary.LittleEndian.Uint64(body[off+4:]),
		mask:       binary.LittleEndian.Uint64(body[off+12:]),
		seqNo:      binary.LittleEndian.Uint64(body[off+20:]),
		stampFloor: binary.LittleEndian.Uint64(body[off+28:]),
	}
	return s, off + 36, nil
}

// walRetained is a decoded recBatch record; payload aliases the input
// buffer and must be copied by anyone who keeps it.
type walRetained struct {
	id        action.ClientID
	clientSeq uint64
	payload   []byte
}

func appendBatchRecord(buf []byte, id action.ClientID, clientSeq uint64, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, frameHdrLen)...)
	buf = append(buf, recBatch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	buf = binary.LittleEndian.AppendUint64(buf, clientSeq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return sealRecord(buf, start)
}

func decodeBatchRecord(body []byte) (walRetained, error) {
	if len(body) < 17 || body[0] != recBatch {
		return walRetained{}, fmt.Errorf("durable: malformed batch record")
	}
	r := walRetained{
		id:        action.ClientID(int32(binary.LittleEndian.Uint32(body[1:]))),
		clientSeq: binary.LittleEndian.Uint64(body[5:]),
	}
	n := int(binary.LittleEndian.Uint32(body[13:]))
	if len(body) < 17+n {
		return walRetained{}, io.ErrUnexpectedEOF
	}
	r.payload = body[17 : 17+n]
	return r, nil
}

// walQuarantine is a decoded recQuarantine record.
type walQuarantine struct {
	id     action.ClientID
	reason uint8
	seq    uint64
}

func appendQuarantineRecord(buf []byte, q walQuarantine) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, frameHdrLen)...)
	buf = append(buf, recQuarantine)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(q.id))
	buf = append(buf, q.reason)
	buf = binary.LittleEndian.AppendUint64(buf, q.seq)
	return sealRecord(buf, start)
}

func decodeQuarantineRecord(body []byte) (walQuarantine, error) {
	if len(body) < 14 || body[0] != recQuarantine {
		return walQuarantine{}, fmt.Errorf("durable: malformed quarantine record")
	}
	return walQuarantine{
		id:     action.ClientID(int32(binary.LittleEndian.Uint32(body[1:]))),
		reason: body[5],
		seq:    binary.LittleEndian.Uint64(body[6:]),
	}, nil
}

// walMetaHdr is a decoded recMetaHdr record.
type walMetaHdr struct {
	boot       uint64
	nextBlind  uint32
	sessionSeq uint64
	upTo       uint64
}

func appendMetaHdr(buf []byte, h walMetaHdr) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, frameHdrLen)...)
	buf = append(buf, recMetaHdr)
	buf = binary.LittleEndian.AppendUint64(buf, h.boot)
	buf = binary.LittleEndian.AppendUint32(buf, h.nextBlind)
	buf = binary.LittleEndian.AppendUint64(buf, h.sessionSeq)
	buf = binary.LittleEndian.AppendUint64(buf, h.upTo)
	return sealRecord(buf, start)
}

func decodeMetaHdr(body []byte) (walMetaHdr, error) {
	if len(body) < 29 || body[0] != recMetaHdr {
		return walMetaHdr{}, fmt.Errorf("durable: malformed meta header")
	}
	return walMetaHdr{
		boot:       binary.LittleEndian.Uint64(body[1:]),
		nextBlind:  binary.LittleEndian.Uint32(body[9:]),
		sessionSeq: binary.LittleEndian.Uint64(body[13:]),
		upTo:       binary.LittleEndian.Uint64(body[21:]),
	}, nil
}

// walMetaSess is a decoded recMetaSess record: a full session baked at
// a checkpoint, ring payloads aliasing the input buffer.
type walMetaSess struct {
	walSession
	lastActSeq uint32
	lastSeq    uint64
	ring       []ringEntry
}

func appendMetaSess(buf []byte, s walSession, lastActSeq uint32, lastSeq uint64, ring []ringEntry) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, frameHdrLen)...)
	buf = append(buf, recMetaSess)
	buf = appendSessionFields(buf, s)
	buf = binary.LittleEndian.AppendUint32(buf, lastActSeq)
	buf = binary.LittleEndian.AppendUint64(buf, lastSeq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ring)))
	for _, r := range ring {
		buf = binary.LittleEndian.AppendUint64(buf, r.clientSeq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.payload)))
		buf = append(buf, r.payload...)
	}
	return sealRecord(buf, start)
}

func decodeMetaSess(body []byte) (walMetaSess, error) {
	var m walMetaSess
	if len(body) < 1 || body[0] != recMetaSess {
		return m, fmt.Errorf("durable: malformed meta session")
	}
	var err error
	var off int
	m.walSession, off, err = decodeSessionFields(body, 1)
	if err != nil {
		return m, err
	}
	if len(body) < off+16 {
		return m, io.ErrUnexpectedEOF
	}
	m.lastActSeq = binary.LittleEndian.Uint32(body[off:])
	m.lastSeq = binary.LittleEndian.Uint64(body[off+4:])
	n := int(binary.LittleEndian.Uint32(body[off+12:]))
	off += 16
	for i := 0; i < n; i++ {
		if len(body) < off+12 {
			return m, io.ErrUnexpectedEOF
		}
		seq := binary.LittleEndian.Uint64(body[off:])
		pl := int(binary.LittleEndian.Uint32(body[off+8:]))
		off += 12
		if len(body) < off+pl {
			return m, io.ErrUnexpectedEOF
		}
		m.ring = append(m.ring, ringEntry{clientSeq: seq, payload: body[off : off+pl]})
		off += pl
	}
	return m, nil
}

// encodeState flattens a state into the snapshot-file body (the seed
// format, kept verbatim): seq(8) count(4) then id(8) nattr(2) attrs
// per object, ids ascending.
func encodeState(seq uint64, st *world.State) []byte {
	ids := st.IDs()
	body := make([]byte, 0, 16+len(ids)*40)
	body = binary.LittleEndian.AppendUint64(body, seq)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(ids)))
	for _, id := range ids {
		v, _ := st.Get(id)
		body = binary.LittleEndian.AppendUint64(body, uint64(id))
		body = binary.LittleEndian.AppendUint16(body, uint16(len(v)))
		for _, f := range v {
			body = binary.LittleEndian.AppendUint64(body, math.Float64bits(f))
		}
	}
	return body
}

func decodeState(body []byte) (uint64, *world.State, error) {
	if len(body) < 12 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	seq := binary.LittleEndian.Uint64(body)
	n := int(binary.LittleEndian.Uint32(body[8:]))
	st := world.NewState()
	off := 12
	for i := 0; i < n; i++ {
		if len(body) < off+10 {
			return 0, nil, io.ErrUnexpectedEOF
		}
		id := world.ObjectID(binary.LittleEndian.Uint64(body[off:]))
		attrs := int(binary.LittleEndian.Uint16(body[off+8:]))
		off += 10
		if len(body) < off+8*attrs {
			return 0, nil, io.ErrUnexpectedEOF
		}
		val := make(world.Value, attrs)
		for j := range val {
			val[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[off+8*j:]))
		}
		off += 8 * attrs
		st.Set(id, val)
	}
	return seq, st, nil
}
