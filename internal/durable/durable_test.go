package durable

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"seve/internal/action"
	"seve/internal/world"
)

func write(id world.ObjectID, vals ...float64) world.Write {
	return world.Write{ID: id, Val: world.Value(vals)}
}

func TestAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(1, action.Result{OK: true, Writes: []world.Write{write(1, 10)}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(2, action.Result{OK: false}); err != nil { // abort: no effect
		t.Fatal(err)
	}
	if err := st.Append(3, action.Result{OK: true, Writes: []world.Write{write(1, 30), write(2, 5, 6)}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if st.LastAppended() != 3 {
		t.Fatalf("LastAppended = %d", st.LastAppended())
	}
	st.Close()

	got, upTo, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if upTo != 3 {
		t.Fatalf("recovered up to %d, want 3", upTo)
	}
	if v, _ := got.Get(1); v[0] != 30 {
		t.Fatalf("obj 1 = %v, want 30", v)
	}
	if v, _ := got.Get(2); !v.Equal(world.Value{5, 6}) {
		t.Fatalf("obj 2 = %v", v)
	}
}

func TestRecoverEmptyAndMissingDir(t *testing.T) {
	st, upTo, err := Recover(filepath.Join(t.TempDir(), "nope"))
	if err != nil || upTo != 0 || st.Len() != 0 {
		t.Fatalf("missing dir: %v %d %d", err, upTo, st.Len())
	}
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Close()
	st, upTo, err = Recover(dir)
	if err != nil || upTo != 0 || st.Len() != 0 {
		t.Fatalf("empty dir: %v %d %d", err, upTo, st.Len())
	}
}

func TestTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	st.Append(1, action.Result{OK: true, Writes: []world.Write{write(1, 1)}})
	st.Append(2, action.Result{OK: true, Writes: []world.Write{write(1, 2)}})
	st.Close()

	// Tear the last record: chop 3 bytes off the log.
	logPath := filepath.Join(dir, "actions.log")
	raw, _ := os.ReadFile(logPath)
	os.WriteFile(logPath, raw[:len(raw)-3], 0o644)

	got, upTo, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if upTo != 1 {
		t.Fatalf("recovered up to %d, want 1 (torn record dropped)", upTo)
	}
	if v, _ := got.Get(1); v[0] != 1 {
		t.Fatalf("obj 1 = %v, want 1", v)
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	st.Append(1, action.Result{OK: true, Writes: []world.Write{write(1, 1)}})
	st.Append(2, action.Result{OK: true, Writes: []world.Write{write(1, 2)}})
	st.Append(3, action.Result{OK: true, Writes: []world.Write{write(1, 3)}})
	st.Close()

	// Flip a byte inside the second record's body.
	logPath := filepath.Join(dir, "actions.log")
	raw, _ := os.ReadFile(logPath)
	raw[len(raw)/2] ^= 0xFF
	os.WriteFile(logPath, raw, 0o644)

	_, upTo, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if upTo >= 3 {
		t.Fatalf("recovered up to %d despite corruption", upTo)
	}
}

func TestSnapshotAndLogTail(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	st.Append(1, action.Result{OK: true, Writes: []world.Write{write(1, 1)}})
	st.Append(2, action.Result{OK: true, Writes: []world.Write{write(2, 2)}})

	snap := world.NewState()
	snap.Set(1, world.Value{1})
	snap.Set(2, world.Value{2})
	if err := st.Snapshot(2, snap); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot installs land in the fresh log.
	st.Append(3, action.Result{OK: true, Writes: []world.Write{write(1, 100)}})
	st.Close()

	got, upTo, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if upTo != 3 {
		t.Fatalf("upTo = %d", upTo)
	}
	if v, _ := got.Get(1); v[0] != 100 {
		t.Fatalf("obj 1 = %v", v)
	}
	if v, _ := got.Get(2); v[0] != 2 {
		t.Fatalf("obj 2 = %v", v)
	}
	// Only the newest snapshot file remains.
	entries, _ := os.ReadDir(dir)
	snaps := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".state" {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("snapshot files = %d, want 1", snaps)
	}
}

func TestCorruptSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	s1 := world.NewState()
	s1.Set(1, world.Value{1})
	if err := st.Snapshot(1, s1); err != nil {
		t.Fatal(err)
	}
	s2 := world.NewState()
	s2.Set(1, world.Value{2})
	if err := st.Snapshot(2, s2); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Snapshot(2) removed snapshot(1); recreate an older intact one and
	// corrupt the newer.
	body := encodeState(1, s1)
	sum := make([]byte, 4)
	// correct crc for older snapshot
	copy(sum, mustCRC(body))
	os.WriteFile(filepath.Join(dir, "snapshot-00000000000000000001.state"), append(sum, body...), 0o644)
	newer := filepath.Join(dir, "snapshot-00000000000000000002.state")
	raw, _ := os.ReadFile(newer)
	raw[len(raw)-1] ^= 0xFF
	os.WriteFile(newer, raw, 0o644)

	got, upTo, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if upTo != 1 {
		t.Fatalf("upTo = %d, want 1 (fallback)", upTo)
	}
	if v, _ := got.Get(1); v[0] != 1 {
		t.Fatalf("obj 1 = %v", v)
	}
}

func mustCRC(body []byte) []byte {
	out := make([]byte, 4)
	binary.LittleEndian.PutUint32(out, crc32.ChecksumIEEE(body))
	return out
}

// TestRecoverEqualsOracleProperty: for random histories with snapshots at
// random points and a possibly-torn tail, recovery equals the oracle
// state at the recovered position.
func TestRecoverEqualsOracleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		st, err := Open(dir)
		if err != nil {
			return false
		}
		oracle := map[uint64]*world.State{0: world.NewState()}
		cur := world.NewState()
		n := uint64(rng.Intn(40) + 1)
		for seq := uint64(1); seq <= n; seq++ {
			res := action.Result{OK: rng.Intn(5) != 0}
			if res.OK {
				for k := 0; k < rng.Intn(3)+1; k++ {
					w := write(world.ObjectID(rng.Intn(6)+1), rng.Float64())
					res.Writes = append(res.Writes, w)
					cur.Set(w.ID, w.Val)
				}
			}
			if err := st.Append(seq, res); err != nil {
				return false
			}
			oracle[seq] = cur.Clone()
			if rng.Intn(10) == 0 {
				if err := st.Snapshot(seq, cur); err != nil {
					return false
				}
			}
		}
		st.Close()
		// Randomly tear the log tail.
		if rng.Intn(2) == 0 {
			logPath := filepath.Join(dir, "actions.log")
			raw, _ := os.ReadFile(logPath)
			if len(raw) > 4 {
				cut := rng.Intn(len(raw))
				os.WriteFile(logPath, raw[:cut], 0o644)
			}
		}
		got, upTo, err := Recover(dir)
		if err != nil {
			return false
		}
		want, ok := oracle[upTo]
		return ok && got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenOnFilePathFails(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(file); err == nil {
		t.Fatal("Open over a regular file succeeded")
	}
}

func TestRecoverIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644)
	os.WriteFile(filepath.Join(dir, "snapshot-garbage.state"), []byte("xx"), 0o644)
	st, upTo, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if upTo != 0 || st.Len() != 0 {
		t.Fatalf("recovered %d objects upTo %d from garbage", st.Len(), upTo)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	st, _ := Open(t.TempDir())
	st.Close()
	if err := st.Append(1, action.Result{OK: true}); err == nil {
		t.Fatal("append after close succeeded")
	}
}
