package durable

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/wire"
	"seve/internal/world"
)

func write(id world.ObjectID, vals ...float64) world.Write {
	return world.Write{ID: id, Val: world.Value(vals)}
}

// commit feeds one single-entry install pass through the journal.
func commit(s *Store, seq uint64, lane int32, origin action.ClientID, actSeq uint32, res action.Result) {
	s.CommitGroup(seq, 0, []core.CommitRecord{{Seq: seq, Lane: lane, Origin: origin, ActSeq: actSeq, Res: res}})
}

// crashCopy clones the store directory byte-for-byte into a fresh
// tempdir — the files a kill -9 would leave behind (the live Store
// keeps running against the original, like a process that never got
// to run its shutdown path).
func crashCopy(t *testing.T, dir string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// newestSegment returns the path of the newest lane-0 segment.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	_, _, segs := scanDir(dir)
	best := ""
	var bestStart uint64
	for _, sg := range segs {
		if sg.lane == 0 && (best == "" || sg.start >= bestStart) {
			best, bestStart = sg.name, sg.start
		}
	}
	if best == "" {
		t.Fatal("no lane-0 segment")
	}
	return filepath.Join(dir, best)
}

func TestCommitAndRecover(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Restore.UpTo != 0 || rec.Restore.Boot != 1 {
		t.Fatalf("virgin recovery: upTo=%d boot=%d", rec.Restore.UpTo, rec.Restore.Boot)
	}
	commit(s, 1, 0, 0, 0, action.Result{OK: true, Writes: []world.Write{write(1, 10)}})
	commit(s, 2, 0, 0, 0, action.Result{OK: false}) // abort: no effect
	s.CommitGroup(3, 42, []core.CommitRecord{{Seq: 3, Res: action.Result{OK: true, Writes: []world.Write{write(1, 30), write(2, 5, 6)}}}})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Durable != 3 || st.Emitted != 3 || st.GroupCommits != 3 {
		t.Fatalf("stats after sync: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec2.Restore.UpTo != 3 {
		t.Fatalf("recovered up to %d, want 3", rec2.Restore.UpTo)
	}
	if rec2.Restore.Boot != 2 {
		t.Fatalf("boot = %d, want 2", rec2.Restore.Boot)
	}
	if rec2.Restore.NextBlind != 42 {
		t.Fatalf("nextBlind = %d, want 42", rec2.Restore.NextBlind)
	}
	if v, _ := rec2.State.Get(1); v[0] != 30 {
		t.Fatalf("obj 1 = %v, want 30", v)
	}
	if v, _ := rec2.State.Get(2); !v.Equal(world.Value{5, 6}) {
		t.Fatalf("obj 2 = %v", v)
	}
}

func TestBaseWorldSeedsVirginStoreOnly(t *testing.T) {
	dir := t.TempDir()
	base := world.NewState()
	base.Set(9, world.Value{7})
	s, rec, err := Open(dir, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rec.State.Get(9); v[0] != 7 {
		t.Fatalf("base not seeded: %v", v)
	}
	s.Close()
	// Reopen without the base: the boot checkpoint captured it.
	s2, rec2, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, _ := rec2.State.Get(9); v[0] != 7 {
		t.Fatalf("base lost across reopen: %v", v)
	}
	if s2.Boot() != 2 {
		t.Fatalf("boot = %d", s2.Boot())
	}
}

func TestOpenOnFilePathFails(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(file, nil, Options{}); err == nil {
		t.Fatal("Open over a regular file succeeded")
	}
}

func TestRecoverIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644)
	os.WriteFile(filepath.Join(dir, "snapshot-garbage.state"), []byte("xx"), 0o644)
	os.WriteFile(filepath.Join(dir, "wal-x.log"), []byte("xx"), 0o644)
	s, rec, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if rec.Restore.UpTo != 0 || rec.State.Len() != 0 {
		t.Fatalf("recovered %d objects upTo %d from garbage", rec.State.Len(), rec.Restore.UpTo)
	}
}

func TestTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	commit(s, 1, 0, 0, 0, action.Result{OK: true, Writes: []world.Write{write(1, 1)}})
	commit(s, 2, 0, 0, 0, action.Result{OK: true, Writes: []world.Write{write(1, 2)}})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	crash := crashCopy(t, dir)

	// Tear the last record: chop 3 bytes off the segment.
	seg := newestSegment(t, crash)
	raw, _ := os.ReadFile(seg)
	os.WriteFile(seg, raw[:len(raw)-3], 0o644)

	s2, rec, err := Open(crash, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.Restore.UpTo != 1 {
		t.Fatalf("recovered up to %d, want 1 (torn record dropped)", rec.Restore.UpTo)
	}
	if v, _ := rec.State.Get(1); v[0] != 1 {
		t.Fatalf("obj 1 = %v, want 1", v)
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for seq := uint64(1); seq <= 3; seq++ {
		commit(s, seq, 0, 0, 0, action.Result{OK: true, Writes: []world.Write{write(1, float64(seq))}})
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	crash := crashCopy(t, dir)

	// Flip a byte inside the second record's body (records are
	// equal-sized: same shape every commit).
	seg := newestSegment(t, crash)
	raw, _ := os.ReadFile(seg)
	recSize := len(raw) / 3
	raw[recSize+frameHdrLen+2] ^= 0xFF
	os.WriteFile(seg, raw, 0o644)

	s2, rec, err := Open(crash, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.Restore.UpTo != 1 {
		t.Fatalf("recovered up to %d despite corruption, want 1", rec.Restore.UpTo)
	}
	if v, _ := rec.State.Get(1); v[0] != 1 {
		t.Fatalf("obj 1 = %v", v)
	}
}

// TestCheckpointRollsAndKeepsTwoGenerations: gc is keep-then-gc with a
// fallback generation — after several checkpoints exactly the two
// newest snapshot generations remain, and a corrupt newest snapshot
// falls back to the previous one plus its segment tail without losing
// a single install.
func TestCheckpointRollsAndKeepsTwoGenerations(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	commit(s, 1, 0, 0, 0, action.Result{OK: true, Writes: []world.Write{write(1, 1)}})
	commit(s, 2, 0, 0, 0, action.Result{OK: true, Writes: []world.Write{write(2, 2)}})
	if err := s.Checkpoint(); err != nil { // gen 2 (gen 0 = boot)
		t.Fatal(err)
	}
	commit(s, 3, 0, 0, 0, action.Result{OK: true, Writes: []world.Write{write(1, 100)}})
	commit(s, 4, 0, 0, 0, action.Result{OK: true, Writes: []world.Write{write(3, 4)}})
	if err := s.Checkpoint(); err != nil { // gen 4; gen 0 collected
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, _, _ := scanDir(dir)
	if len(snaps) != 2 || snaps[0] != 2 || snaps[1] != 4 {
		t.Fatalf("snapshot generations = %v, want [2 4]", snaps)
	}

	// Corrupt the newest snapshot: recovery falls back to generation 2
	// and replays its segment (commits 3, 4) to the same install point.
	raw, _ := os.ReadFile(filepath.Join(dir, snapshotName(4)))
	raw[len(raw)-1] ^= 0xFF
	os.WriteFile(filepath.Join(dir, snapshotName(4)), raw, 0o644)

	s2, rec, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.Restore.UpTo != 4 {
		t.Fatalf("upTo = %d, want 4 (fallback + tail replay)", rec.Restore.UpTo)
	}
	if v, _ := rec.State.Get(1); v[0] != 100 {
		t.Fatalf("obj 1 = %v", v)
	}
	if v, _ := rec.State.Get(3); v[0] != 4 {
		t.Fatalf("obj 3 = %v", v)
	}
}

// TestCrashBetweenPublishAndGC: a kill landing after the new
// generation renamed into place but before gc ran leaves every old
// generation on disk; recovery must pick the newest intact pair and
// tolerate the leftovers.
func TestCrashBetweenPublishAndGC(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	commit(s, 1, 0, 0, 0, action.Result{OK: true, Writes: []world.Write{write(1, 1)}})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	old := crashCopy(t, dir) // generation {0, 1} both present

	commit(s, 2, 0, 0, 0, action.Result{OK: true, Writes: []world.Write{write(1, 2)}})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	crash := crashCopy(t, dir)

	// Merge the pre-gc leftovers back in: the directory now holds every
	// generation at once, exactly what a kill between rename and gc
	// leaves behind.
	oldFiles, _ := os.ReadDir(old)
	for _, e := range oldFiles {
		dst := filepath.Join(crash, e.Name())
		if _, err := os.Stat(dst); err == nil {
			continue
		}
		raw, _ := os.ReadFile(filepath.Join(old, e.Name()))
		os.WriteFile(dst, raw, 0o644)
	}

	s2, rec, err := Open(crash, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.Restore.UpTo != 2 {
		t.Fatalf("upTo = %d, want 2 (newest generation wins)", rec.Restore.UpTo)
	}
	if v, _ := rec.State.Get(1); v[0] != 2 {
		t.Fatalf("obj 1 = %v", v)
	}
}

// TestShedGapFreezesCheckpoints: under DegradeShed a full queue drops
// records; the first dropped commit leaves a permanent gap — counted,
// shadow frozen, checkpoints refused — and recovery yields the
// faithful prefix before the gap.
func TestShedGapFreezesCheckpoints(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	s, _, err := Open(dir, nil, WithGate(Options{Degrade: DegradeShed, QueueLen: 1}, gate))
	if err != nil {
		t.Fatal(err)
	}
	// The committer is parked on the gate: the one-slot queue fills with
	// the first commit, the second is shed.
	commit(s, 1, 0, 0, 0, action.Result{OK: true, Writes: []world.Write{write(1, 1)}})
	commit(s, 2, 0, 0, 0, action.Result{OK: true, Writes: []world.Write{write(1, 2)}})
	if st := s.Stats(); st.ShedRecords != 1 {
		t.Fatalf("shed = %d, want 1", st.ShedRecords)
	}
	// Unpark the committer for the rest of the test.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case gate <- struct{}{}:
			case <-stop:
				return
			}
		}
	}()
	// Drain the queue before the next commit so it is accepted, not
	// shed: commit 3 must land after the hole to expose the gap.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	commit(s, 3, 0, 0, 0, action.Result{OK: true, Writes: []world.Write{write(1, 3)}})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if !st.Gapped {
		t.Fatalf("not gapped: %+v", st)
	}
	if st.Durable != 1 {
		t.Fatalf("durable = %d, want 1 (frozen at the gap)", st.Durable)
	}
	if err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded on a gapped store")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.Restore.UpTo != 1 {
		t.Fatalf("recovered up to %d, want 1 (prefix before the gap)", rec.Restore.UpTo)
	}
	if v, _ := rec.State.Get(1); v[0] != 1 {
		t.Fatalf("obj 1 = %v", v)
	}
}

func retainBatch(s *Store, id action.ClientID, clientSeq, installedUpTo uint64) {
	s.BatchRetained(id, &wire.Batch{ClientSeq: clientSeq, InstalledUpTo: installedUpTo})
}

// TestSessionRecovery: session opens, retained batches and dedup
// floors survive a crash — including sessions baked into a checkpoint
// and ones appended to the meta lineage afterwards — and the
// stampFloor fence keeps a previous registration's commits from
// inflating the recovered floor.
func TestSessionRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Session 7 opens with stampFloor 2: commits at seq 1-2 belong to a
	// previous registration of the id and must not raise its floor.
	s.SessionOpen(7, 0xBEEF, 0b101, 1, 2)
	commit(s, 1, 0, 7, 9, action.Result{OK: true, Writes: []world.Write{write(1, 1)}})
	commit(s, 2, 0, 7, 9, action.Result{OK: true})
	commit(s, 3, 0, 7, 5, action.Result{OK: true, Writes: []world.Write{write(2, 3)}})
	retainBatch(s, 7, 1, 0)
	retainBatch(s, 7, 2, 3)
	if err := s.Checkpoint(); err != nil { // bakes session 7
		t.Fatal(err)
	}
	// Session 8 opens after the checkpoint: appended to the meta tail.
	s.SessionOpen(8, 0xCAFE, 0, 2, 3)
	retainBatch(s, 8, 1, 3)
	commit(s, 4, 0, 8, 1, action.Result{OK: true, Writes: []world.Write{write(3, 4)}})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	crash := crashCopy(t, dir)

	s2, rec, err := Open(crash, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.Restore.UpTo != 4 {
		t.Fatalf("upTo = %d", rec.Restore.UpTo)
	}
	if rec.Restore.SessionSeq != 2 {
		t.Fatalf("sessionSeq = %d, want 2", rec.Restore.SessionSeq)
	}
	byID := map[action.ClientID]core.SessionRecord{}
	for _, sr := range rec.Restore.Sessions {
		byID[sr.ID] = sr
	}
	s7, ok := byID[7]
	if !ok {
		t.Fatal("session 7 lost")
	}
	if s7.Token != 0xBEEF || s7.Mask != 0b101 || s7.SeqNo != 1 {
		t.Fatalf("session 7 = %+v", s7)
	}
	// seq 1-2 carried actSeq 9 but sit at/below the stampFloor; only
	// seq 3's actSeq 5 is inside the current registration.
	if s7.LastActSeq != 5 {
		t.Fatalf("session 7 lastActSeq = %d, want 5 (stampFloor fence)", s7.LastActSeq)
	}
	if s7.LastSeq != 2 || len(s7.Retained) != 2 || s7.Retained[0].ClientSeq != 1 || s7.Retained[1].ClientSeq != 2 {
		t.Fatalf("session 7 window: lastSeq=%d retained=%v", s7.LastSeq, s7.Retained)
	}
	s8, ok := byID[8]
	if !ok {
		t.Fatal("session 8 (opened after checkpoint) lost")
	}
	if s8.Token != 0xCAFE || s8.LastActSeq != 1 || s8.LastSeq != 1 || len(s8.Retained) != 1 {
		t.Fatalf("session 8 = %+v", s8)
	}
}

// TestQuarantineRecovery: verdicts journaled before AND after a
// checkpoint both survive a crash-restart — the checkpoint re-bakes
// the set into the fresh meta lineage so gc of the original segment
// generation cannot lose them, and the first verdict per client wins
// across replays.
func TestQuarantineRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.SessionOpen(7, 0xBEEF, 0, 1, 0)
	commit(s, 1, 0, 7, 1, action.Result{OK: true, Writes: []world.Write{write(1, 1)}})
	s.ClientQuarantined(3, 2, 1) // before the checkpoint: must re-bake
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.ClientQuarantined(9, 3, 2) // after: rides the meta tail
	s.ClientQuarantined(3, 6, 5) // duplicate: the first verdict stands
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	crash := crashCopy(t, dir)

	s2, rec, err := Open(crash, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := rec.Restore.Quarantined
	if len(q) != 2 {
		t.Fatalf("quarantined = %+v, want clients 3 and 9", q)
	}
	if q[0].ID != 3 || q[0].Reason != 2 || q[0].Seq != 1 {
		t.Fatalf("client 3 verdict = %+v, want first verdict (reason 2, seq 1)", q[0])
	}
	if q[1].ID != 9 || q[1].Reason != 3 || q[1].Seq != 2 {
		t.Fatalf("client 9 verdict = %+v", q[1])
	}
	// The sanitizing reopen checkpointed: a second crash-restart (after
	// gc had every chance to run) still holds the set.
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, rec3, err := Open(crash, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if len(rec3.Restore.Quarantined) != 2 {
		t.Fatalf("verdicts lost across second restart: %+v", rec3.Restore.Quarantined)
	}
}

// TestDirtyWindowDropped: a retained batch referencing an install
// point the crash lost makes the window dirty — the session survives
// but resumes by snapshot (Retained nil).
func TestDirtyWindowDropped(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.SessionOpen(7, 0xBEEF, 0, 1, 0)
	commit(s, 1, 0, 7, 1, action.Result{OK: true})
	retainBatch(s, 7, 1, 99) // InstalledUpTo 99 was never durable
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := Open(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var s7 *core.SessionRecord
	for i := range rec.Restore.Sessions {
		if rec.Restore.Sessions[i].ID == 7 {
			s7 = &rec.Restore.Sessions[i]
		}
	}
	if s7 == nil {
		t.Fatal("session 7 lost")
	}
	if s7.Retained != nil {
		t.Fatalf("dirty window surfaced: %v", s7.Retained)
	}
	if s7.LastSeq != 1 {
		t.Fatalf("lastSeq = %d", s7.LastSeq)
	}
}

func TestCleanWindowGate(t *testing.T) {
	enc := func(b *wire.Batch) []byte { return wire.AppendMsg(nil, b) }
	cases := []struct {
		name string
		sess *shadowSession
		upTo uint64
		want bool
	}{
		{"empty ring, no batches ever", &shadowSession{}, 5, true},
		{"empty ring, batches trimmed", &shadowSession{lastSeq: 3}, 5, false},
		{"contiguous", &shadowSession{lastSeq: 2, ring: []ringEntry{
			{1, enc(&wire.Batch{ClientSeq: 1})},
			{2, enc(&wire.Batch{ClientSeq: 2})},
		}}, 5, true},
		{"hole", &shadowSession{lastSeq: 3, ring: []ringEntry{
			{1, enc(&wire.Batch{ClientSeq: 1})},
			{3, enc(&wire.Batch{ClientSeq: 3})},
		}}, 5, false},
		{"tail not lastSeq", &shadowSession{lastSeq: 9, ring: []ringEntry{
			{1, enc(&wire.Batch{ClientSeq: 1})},
		}}, 5, false},
		{"undecodable payload", &shadowSession{lastSeq: 1, ring: []ringEntry{
			{1, []byte{1, 2}},
		}}, 5, false},
		{"installedUpTo beyond recovery", &shadowSession{lastSeq: 1, ring: []ringEntry{
			{1, enc(&wire.Batch{ClientSeq: 1, InstalledUpTo: 6})},
		}}, 5, false},
	}
	for _, tc := range cases {
		if _, ok := cleanWindow(tc.sess, tc.upTo); ok != tc.want {
			t.Errorf("%s: clean = %v, want %v", tc.name, ok, tc.want)
		}
	}
}

// TestRecoverEqualsOracleProperty: for random multi-lane histories
// with checkpoints at random points, sessions opening and retaining
// along the way, and a crash that may tear or corrupt the newest
// files, recovery equals the serial oracle at the recovered position.
func TestRecoverEqualsOracleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		s, _, err := Open(dir, nil, Options{})
		if err != nil {
			return false
		}
		defer s.Close()
		oracle := map[uint64]*world.State{0: world.NewState()}
		cur := world.NewState()
		var seq uint64
		n := rng.Intn(40) + 1
		for len(oracle) <= n {
			// One install pass of 1-4 entries spread over up to 3 lanes.
			recs := make([]core.CommitRecord, rng.Intn(4)+1)
			for i := range recs {
				seq++
				res := action.Result{OK: rng.Intn(5) != 0}
				if res.OK {
					for k := 0; k < rng.Intn(3)+1; k++ {
						w := write(world.ObjectID(rng.Intn(6)+1), rng.Float64())
						res.Writes = append(res.Writes, w)
						cur.Set(w.ID, w.Val)
					}
				}
				recs[i] = core.CommitRecord{Seq: seq, Lane: int32(seq % 3), Origin: action.ClientID(rng.Intn(3) + 1), ActSeq: uint32(seq), Res: res}
				oracle[seq] = cur.Clone()
			}
			s.CommitGroup(seq, uint32(seq), recs)
			if rng.Intn(8) == 0 {
				s.SessionOpen(action.ClientID(rng.Intn(3)+1), rng.Uint64(), 0, uint64(rng.Intn(5)+1), seq)
			}
			if rng.Intn(8) == 0 {
				retainBatch(s, action.ClientID(rng.Intn(3)+1), uint64(rng.Intn(4)+1), seq)
			}
			if rng.Intn(10) == 0 {
				if err := s.Checkpoint(); err != nil {
					return false
				}
			}
		}

		var rec *Recovery
		if rng.Intn(2) == 0 {
			// Clean shutdown.
			if err := s.Close(); err != nil {
				return false
			}
			s2, r, err := Open(dir, nil, Options{})
			if err != nil {
				return false
			}
			defer s2.Close()
			rec = r
		} else {
			// Crash: maybe tear a segment tail, maybe corrupt the newest
			// snapshot (the kept fallback generation must absorb it).
			if err := s.Sync(); err != nil {
				return false
			}
			crash := crashCopy(t, dir)
			_, _, segs := scanDir(crash)
			if len(segs) > 0 && rng.Intn(2) == 0 {
				sg := segs[rng.Intn(len(segs))]
				raw, _ := os.ReadFile(filepath.Join(crash, sg.name))
				if len(raw) > 0 {
					os.WriteFile(filepath.Join(crash, sg.name), raw[:rng.Intn(len(raw))], 0o644)
				}
			}
			if snaps, _, _ := scanDir(crash); len(snaps) > 1 && rng.Intn(3) == 0 {
				p := filepath.Join(crash, snapshotName(snaps[len(snaps)-1]))
				raw, _ := os.ReadFile(p)
				if len(raw) > 0 {
					raw[rng.Intn(len(raw))] ^= 0xFF
					os.WriteFile(p, raw, 0o644)
				}
			}
			s2, r, err := Open(crash, nil, Options{})
			if err != nil {
				return false
			}
			defer s2.Close()
			rec = r
		}
		want, ok := oracle[rec.Restore.UpTo]
		if !ok {
			t.Logf("seed %d: recovered to unknown position %d", seed, rec.Restore.UpTo)
			return false
		}
		if !rec.State.Equal(want) {
			t.Logf("seed %d: state mismatch at %d", seed, rec.Restore.UpTo)
			return false
		}
		// Floors must never overstate the walk: every recovered session's
		// LastActSeq is a seq the walk actually reached.
		for _, sr := range rec.Restore.Sessions {
			if uint64(sr.LastActSeq) > rec.Restore.UpTo {
				t.Logf("seed %d: floor %d beyond upTo %d", seed, sr.LastActSeq, rec.Restore.UpTo)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// FuzzRecover: arbitrary bytes in the store's file slots must never
// panic Open, and a successful Open must be re-openable with a
// non-decreasing install point (the boot checkpoint sanitizes the
// directory).
func FuzzRecover(f *testing.F) {
	// Seed with a real store's artifacts.
	seedDir := f.TempDir()
	s, _, err := Open(seedDir, nil, Options{})
	if err != nil {
		f.Fatal(err)
	}
	s.SessionOpen(7, 1, 0, 1, 0)
	commit(s, 1, 0, 7, 1, action.Result{OK: true, Writes: []world.Write{write(1, 1)}})
	retainBatch(s, 7, 1, 0)
	commit(s, 2, 0, 7, 2, action.Result{OK: true, Writes: []world.Write{write(2, 2)}})
	s.ClientQuarantined(5, 3, 2)
	s.Checkpoint()
	commit(s, 3, 0, 7, 3, action.Result{OK: true, Writes: []world.Write{write(1, 3)}})
	s.ClientQuarantined(6, 4, 3)
	s.Sync()
	var seedSeg, seedSnap, seedMeta []byte
	if snaps, metas, segs := scanDir(seedDir); len(snaps) > 0 && len(metas) > 0 && len(segs) > 0 {
		seedSnap, _ = os.ReadFile(filepath.Join(seedDir, snapshotName(snaps[len(snaps)-1])))
		seedMeta, _ = os.ReadFile(filepath.Join(seedDir, metaName(metas[len(metas)-1])))
		seedSeg, _ = os.ReadFile(filepath.Join(seedDir, segs[0].name))
	}
	s.Close()
	f.Add(seedSeg, seedSnap, seedMeta)
	f.Add([]byte{}, []byte{}, []byte{})
	f.Add([]byte{1, 2, 3}, []byte{0xFF}, []byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, seg, snap, meta []byte) {
		dir := t.TempDir()
		os.WriteFile(filepath.Join(dir, segmentName(0, 0)), seg, 0o644)
		os.WriteFile(filepath.Join(dir, snapshotName(2)), snap, 0o644)
		os.WriteFile(filepath.Join(dir, metaName(2)), meta, 0o644)
		st, rec, err := Open(dir, nil, Options{})
		if err != nil {
			return
		}
		if rec.State == nil {
			t.Fatal("nil recovered state")
		}
		upTo := rec.Restore.UpTo
		for _, sr := range rec.Restore.Sessions {
			for _, b := range sr.Retained {
				if b.InstalledUpTo > upTo {
					t.Fatalf("retained batch claims %d > upTo %d", b.InstalledUpTo, upTo)
				}
			}
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		st2, rec2, err := Open(dir, nil, Options{})
		if err != nil {
			t.Fatalf("reopen after sanitizing open: %v", err)
		}
		if rec2.Restore.UpTo < upTo {
			t.Fatalf("install point regressed: %d -> %d", upTo, rec2.Restore.UpTo)
		}
		// Quarantine verdicts only latch: the sanitizing open's boot
		// checkpoint re-bakes whatever it recovered, so a reopen can
		// never hold fewer verdicts.
		if len(rec2.Restore.Quarantined) < len(rec.Restore.Quarantined) {
			t.Fatalf("quarantine set shrank across reopen: %d -> %d",
				len(rec.Restore.Quarantined), len(rec2.Restore.Quarantined))
		}
		st2.Close()
	})
}
