package durable

// Test-only access to unexported knobs.

// WithGate returns o with the committer throttled by ch: the committer
// consumes one token per loop iteration, letting tests fill the queue
// deterministically to exercise the degrade policies.
func WithGate(o Options, ch chan struct{}) Options {
	o.testGate = ch
	return o
}
