package durable

import (
	"seve/internal/action"
	"seve/internal/world"
)

// shadow is the store's private replica of everything the engine needs
// back after a crash: the authoritative state at the durable install
// point, the watermark counters, and the session table with its dedup
// floors and retained-batch rings. It is maintained two ways by the
// same decode-and-apply code — live by the committer, which replays
// every record as it lands on disk, and at Open by recovery, which
// replays the files. That symmetry is the package's correctness
// anchor: what the committer believes durable is exactly what a
// restart reconstructs, so checkpoints can be cut from the shadow
// without ever stalling the engine behind a state flatten.
type shadow struct {
	state      *world.State
	applied    uint64 // durable install point (contiguous from 1)
	nextBlind  uint32
	sessionSeq uint64
	sessions   map[action.ClientID]*shadowSession
	window     int // retained-batch ring capacity per session
	// quarantined latches integrity verdicts (DESIGN.md §16), first
	// verdict per client wins. Independent of the session table: floors
	// may be dropped conservatively on a messy recovery, but a verdict
	// never is — keeping a cheater out is the safe direction.
	quarantined map[action.ClientID]walQuarantine
}

type shadowSession struct {
	walSession
	lastActSeq uint32
	lastSeq    uint64
	// ring holds the newest retained batches, ascending clientSeq,
	// payloads owned by the shadow.
	ring []ringEntry
}

// ringEntry is one retained batch: its ClientSeq and the wire.AppendMsg
// encoding of the wire.Batch.
type ringEntry struct {
	clientSeq uint64
	payload   []byte
}

func newShadow(window int) *shadow {
	return &shadow{
		state:       world.NewState(),
		sessions:    make(map[action.ClientID]*shadowSession),
		window:      window,
		quarantined: make(map[action.ClientID]walQuarantine),
	}
}

// quarantine latches one verdict; replays of the same client keep the
// first (the core ledger is idempotent the same way).
func (sh *shadow) quarantine(rec walQuarantine) {
	if _, dup := sh.quarantined[rec.id]; !dup {
		sh.quarantined[rec.id] = rec
	}
}

// applyEntry installs one commit entry: the writes land in the shadow
// state, the install point advances, and — when the origin has a live
// session whose current registration covers the stamp — the per-client
// dedup floor rises. Entries at or below a session's stampFloor belong
// to a previous registration of the client id and must not contribute.
func (sh *shadow) applyEntry(e walEntry) {
	if e.ok {
		for _, w := range e.writes {
			sh.state.Set(w.ID, w.Val)
		}
	}
	sh.applied = e.seq
	if sess := sh.sessions[e.origin]; sess != nil && e.seq > sess.stampFloor && e.actSeq > sess.lastActSeq {
		sess.lastActSeq = e.actSeq
	}
}

// open applies a session mint or reset, mirroring core's openSession:
// an existing session for the id restarts its window and floors.
func (sh *shadow) open(rec walSession) {
	sess := sh.sessions[rec.id]
	if sess == nil {
		sess = &shadowSession{}
		sh.sessions[rec.id] = sess
	}
	*sess = shadowSession{walSession: rec}
	if rec.seqNo > sh.sessionSeq {
		sh.sessionSeq = rec.seqNo
	}
}

// retain applies a batch-retained record. The payload is copied when
// copyPayload is set (the live path hands in pooled buffers; recovery
// hands in file mappings it is about to discard either way).
func (sh *shadow) retain(rec walRetained, copyPayload bool) {
	sess := sh.sessions[rec.id]
	if sess == nil {
		return // session never journaled (opened before durability attached)
	}
	p := rec.payload
	if copyPayload {
		p = append(make([]byte, 0, len(p)), p...)
	}
	sess.ring = append(sess.ring, ringEntry{clientSeq: rec.clientSeq, payload: p})
	if rec.clientSeq > sess.lastSeq {
		sess.lastSeq = rec.clientSeq
	}
	if len(sess.ring) > sh.window {
		n := copy(sess.ring, sess.ring[1:])
		sess.ring[n] = ringEntry{}
		sess.ring = sess.ring[:n]
	}
}

// bake applies a recMetaSess record (a checkpointed session), used by
// recovery before replaying the meta lineage's appended tail.
func (sh *shadow) bake(m walMetaSess, copyPayload bool) {
	sess := &shadowSession{
		walSession: m.walSession,
		lastActSeq: m.lastActSeq,
		lastSeq:    m.lastSeq,
	}
	for _, r := range m.ring {
		p := r.payload
		if copyPayload {
			p = append(make([]byte, 0, len(p)), p...)
		}
		sess.ring = append(sess.ring, ringEntry{clientSeq: r.clientSeq, payload: p})
	}
	sh.sessions[m.id] = sess
	if m.seqNo > sh.sessionSeq {
		sh.sessionSeq = m.seqNo
	}
}
