package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"seve/internal/action"
	"seve/internal/wire"
)

func segmentName(lane int32, start uint64) string {
	return fmt.Sprintf("wal-%d-%020d.log", lane, start)
}

func metaName(start uint64) string {
	return fmt.Sprintf("meta-%020d.log", start)
}

func snapshotName(seq uint64) string {
	return fmt.Sprintf("snapshot-%020d.state", seq)
}

// committer owns all file I/O and the shadow replica. One goroutine,
// fed by Store.jobs; records arrive pre-framed in pooled buffers whose
// ownership arrived with the job.
type committer struct {
	s  *Store
	sh *shadow

	// files maps lane -> current segment (laneMeta -> the meta
	// lineage's append handle); dirty tracks unfsynced writes.
	files map[int32]*os.File
	dirty map[int32]bool
	// segStart names the current segment generation; lastCkpt is the
	// install point of the last checkpoint.
	segStart uint64
	lastCkpt uint64

	// group assembles the in-flight install pass: per-lane records
	// accumulate here until the end-marked job closes the group, which
	// is applied to the shadow as one unit (the group commit).
	group      []walEntry
	groupBlind uint32

	failed bool
	gapped bool
}

func (c *committer) run() {
	defer close(c.s.closed)
	var tick <-chan time.Time
	if c.s.opts.Fsync == FsyncInterval {
		t := time.NewTicker(c.s.opts.FsyncEvery)
		defer t.Stop()
		tick = t.C
	}
	gate := c.s.opts.testGate
	for {
		if gate != nil {
			<-gate
		}
		select {
		case j := <-c.s.jobs:
			switch j.op {
			case opAppend:
				c.append(j)
			case opBarrier:
				j.done <- c.barrier()
			case opCheckpoint:
				j.done <- c.forcedCheckpoint()
			case opStop:
				j.done <- c.shutdown()
				return
			}
		case <-tick:
			c.fsyncDirty()
		}
	}
}

func (c *committer) fail(err error) {
	c.s.appendErrors.Add(1)
	if !c.failed {
		c.failed = true
		c.s.errv.Store(err)
		c.s.opts.Logf("durable: committer failed, log frozen: %v", err)
	}
}

func (c *committer) file(lane int32) (*os.File, error) {
	if f := c.files[lane]; f != nil {
		return f, nil
	}
	name := segmentName(lane, c.segStart)
	if lane == laneMeta {
		name = metaName(c.lastCkpt)
	}
	f, err := os.OpenFile(filepath.Join(c.s.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: opening %s: %w", name, err)
	}
	c.files[lane] = f
	return f, nil
}

// append writes one record and replays it into the shadow. The
// committer is a single goroutine that owns every lane's segment file
// — a sequential any-lane context, like the engine's merge passes.
//
//seve:lane-seal
func (c *committer) append(j job) {
	defer wire.PutBuf(j.buf)
	body := j.buf[frameHdrLen:]
	kind := body[0]
	if c.failed || (c.gapped && kind == recCommit) {
		// A frozen log must stay a faithful prefix of the feed; writing
		// anything past the freeze point would only mislead recovery.
		if kind == recCommit && j.end {
			c.group = c.group[:0]
			c.groupBlind = 0
		}
		return
	}
	f, err := c.file(j.lane)
	if err == nil {
		_, err = f.Write(j.buf)
	}
	if err != nil {
		c.fail(err)
		return
	}
	c.dirty[j.lane] = true
	switch kind {
	case recCommit:
		g, derr := decodeCommitRecord(body)
		if derr != nil {
			c.fail(derr) // our own encoding failed to decode: a bug, freeze loudly
		} else {
			c.group = append(c.group, g.entries...)
			if g.nextBlind > c.groupBlind {
				c.groupBlind = g.nextBlind
			}
		}
		if j.end {
			c.endGroup()
		}
	case recSession:
		if rec, _, derr := decodeSessionFields(body, 1); derr == nil {
			c.sh.open(rec)
		}
	case recBatch:
		if rec, derr := decodeBatchRecord(body); derr == nil {
			c.sh.retain(rec, true)
		}
	case recQuarantine:
		if rec, derr := decodeQuarantineRecord(body); derr == nil {
			c.sh.quarantine(rec)
		}
	}
	if !c.failed && !c.gapped && c.sh.applied-c.lastCkpt >= c.s.opts.SnapshotEvery {
		if err := c.checkpoint(); err != nil {
			c.s.opts.Logf("durable: checkpoint: %v", err)
		}
	}
}

// endGroup closes the in-flight install pass: the assembled entries
// must continue the shadow exactly (per-lane records of one pass merge
// back into a contiguous serial run). A hole means a shed record —
// the shadow freezes so no checkpoint can ever claim coverage past it.
func (c *committer) endGroup() {
	defer func() {
		c.group = c.group[:0]
		c.groupBlind = 0
	}()
	if c.failed || c.gapped || len(c.group) == 0 {
		return
	}
	sort.Slice(c.group, func(i, j int) bool { return c.group[i].seq < c.group[j].seq })
	want := c.sh.applied + 1
	for _, e := range c.group {
		if e.seq != want {
			c.gapped = true
			c.s.gapped.Store(true)
			c.s.opts.Logf("durable: journal gap at seq %d (expected %d); shadow frozen, checkpoints disabled", e.seq, want)
			return
		}
		want++
	}
	for _, e := range c.group {
		c.sh.applyEntry(e)
	}
	if c.groupBlind > c.sh.nextBlind {
		c.sh.nextBlind = c.groupBlind
	}
	c.s.durableSeq.Store(c.sh.applied)
	if c.s.opts.Fsync == FsyncBatch {
		c.fsyncDirty()
	}
	c.s.groupCommits.Add(1)
}

// barrier is the Sync implementation: flush everything written so far.
func (c *committer) barrier() error {
	if err := c.fsyncDirty(); err != nil {
		return err
	}
	return c.s.Err()
}

func (c *committer) fsyncDirty() error {
	for lane, d := range c.dirty {
		if !d {
			continue
		}
		if f := c.files[lane]; f != nil {
			if err := f.Sync(); err != nil {
				c.fail(err)
				return err
			}
		}
		c.dirty[lane] = false
	}
	return nil
}

func (c *committer) forcedCheckpoint() error {
	if c.failed {
		return c.s.Err()
	}
	if c.gapped {
		return fmt.Errorf("durable: journal gapped; checkpoint would claim coverage it does not have")
	}
	return c.checkpoint()
}

// checkpoint cuts an epoch snapshot from the shadow at its current
// group boundary, rewrites the meta lineage, rolls the segments, and
// collects old generations — strictly in that order (keep-then-gc):
// nothing is deleted until its replacement is durably renamed, so a
// crash between any two steps leaves the previous generation intact
// and recovery simply picks the newest pair that survived.
func (c *committer) checkpoint() error {
	// The log must be durable up to the point the snapshot claims:
	// under the interval and checkpoint fsync policies this is where
	// those bytes hit stable storage.
	if err := c.fsyncDirty(); err != nil {
		return err
	}
	if err := c.publish(); err != nil {
		c.fail(err)
		return err
	}
	c.gc()
	c.s.checkpoints.Add(1)
	return nil
}

// publish writes the snapshot and meta files for the shadow's install
// point and rolls the segment generation.
func (c *committer) publish() error {
	seq := c.sh.applied

	// Snapshot: temp + fsync + rename, the seed's atomic-publish shape.
	body := encodeState(seq, c.sh.state)
	framed := make([]byte, 0, len(body)+4)
	framed = appendCRC(framed, body)
	if err := writeDurably(filepath.Join(c.s.dir, snapshotName(seq)), framed); err != nil {
		return err
	}

	// Meta lineage: watermarks plus every session baked with its
	// current floors and ring, same publish shape. Future session
	// records append to this file until the next checkpoint.
	meta := make([]byte, 0, 1024)
	meta = appendMetaHdr(meta, walMetaHdr{
		boot:       c.s.boot,
		nextBlind:  c.sh.nextBlind,
		sessionSeq: c.sh.sessionSeq,
		upTo:       seq,
	})
	ids := make([]int32, 0, len(c.sh.sessions))
	for id := range c.sh.sessions {
		ids = append(ids, int32(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sess := c.sh.sessions[action.ClientID(id)]
		meta = appendMetaSess(meta, sess.walSession, sess.lastActSeq, sess.lastSeq, sess.ring)
	}
	// Quarantine verdicts re-bake into every lineage so they survive gc
	// of the segment generation that first carried them.
	qids := make([]int32, 0, len(c.sh.quarantined))
	for id := range c.sh.quarantined {
		qids = append(qids, int32(id))
	}
	sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
	for _, id := range qids {
		meta = appendQuarantineRecord(meta, c.sh.quarantined[action.ClientID(id)])
	}
	if f := c.files[laneMeta]; f != nil {
		f.Close()
		delete(c.files, laneMeta)
		c.dirty[laneMeta] = false
	}
	if err := writeDurably(filepath.Join(c.s.dir, metaName(seq)), meta); err != nil {
		return err
	}

	// Roll the segment generation: subsequent commit records open
	// wal-<lane>-<seq>.log lazily.
	for lane, f := range c.files {
		if lane == laneMeta {
			continue
		}
		f.Close()
		delete(c.files, lane)
		c.dirty[lane] = false
	}
	c.segStart = seq
	c.lastCkpt = seq
	return nil
}

// gc removes generations superseded twice over: the newest snapshot
// pair is live, the previous one is kept as the fallback should the
// newest turn out unreadable, and everything older goes. Runs only
// after publish succeeded — the keep half of keep-then-gc.
func (c *committer) gc() {
	snaps, metas, segs := scanDir(c.s.dir)
	if len(snaps) < 2 {
		return
	}
	keep := snaps[len(snaps)-2] // second-newest generation start
	for _, s := range snaps {
		if s < keep {
			os.Remove(filepath.Join(c.s.dir, snapshotName(s)))
		}
	}
	for _, m := range metas {
		if m < keep {
			os.Remove(filepath.Join(c.s.dir, metaName(m)))
		}
	}
	for _, sg := range segs {
		if sg.start < keep {
			os.Remove(filepath.Join(c.s.dir, sg.name))
		}
	}
}

// shutdown drains the store on Close: a final fsync plus, on a healthy
// store, a shutdown checkpoint so a clean restart resumes from an
// exact image (sessions, floors and rings included).
func (c *committer) shutdown() error {
	if !c.failed {
		if c.gapped {
			c.fsyncDirty()
		} else if err := c.checkpoint(); err != nil {
			c.s.opts.Logf("durable: shutdown checkpoint: %v", err)
		}
	}
	c.closeFiles()
	return c.s.Err()
}

func (c *committer) closeFiles() {
	for lane, f := range c.files {
		f.Close()
		delete(c.files, lane)
	}
}

// writeDurably publishes content at path atomically: temp file, fsync,
// rename.
func writeDurably(path string, content []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(content); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
