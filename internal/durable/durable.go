// Package durable persists the authoritative world state — the
// durability half of Section II-B's requirement that "a protocol needs
// to be established between the clients and the server that ensures
// consistency and durability of data".
//
// The paper observes that persistent net-VEs keep the world in a
// database but, for throughput, "use commercial databases only to
// commit and read at periodic checkpoints" with an in-memory
// transaction layer in front (Section II). This package is that
// checkpoint layer, grown from a per-install redo log into a pipeline
// the engine feeds without ever waiting on a disk:
//
//   - The engine emits one journal group per install pass over the
//     core.Journal feed (plus the session-open and batch-retained
//     records the resume layer needs). Each record is encoded into a
//     pooled wire buffer on the caller's goroutine and ownership is
//     handed to the committer over a bounded channel — the engine's
//     cost per group is an encode and a channel send.
//   - A single committer goroutine appends records to segmented
//     per-lane logs (group commit: one record per lane per install
//     pass), fsyncs under the configured policy, and replays every
//     record into a shadow replica of the engine (see shadow.go).
//   - Checkpoints are cut from the shadow at group boundaries — an
//     epoch-consistent snapshot by construction, written entirely off
//     the engine's hot path — then the meta lineage (watermarks plus
//     baked sessions) is rewritten and old generations are collected
//     keep-then-gc: nothing is deleted until its replacement is
//     durably renamed into place, so a crash at any point leaves a
//     recoverable directory.
//   - Open scans the directory, rebuilds the shadow from the newest
//     intact snapshot + meta + segment records (stopping at the first
//     torn or corrupt tail), bumps the boot generation, cuts a fresh
//     checkpoint, and returns both the journal sink and a
//     core.RestoreState — crash-restart becomes "the server resumes
//     against itself".
package durable

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/wire"
	"seve/internal/world"
)

// FsyncPolicy selects when the committer forces the logs to stable
// storage.
type FsyncPolicy uint8

const (
	// FsyncBatch fsyncs at every group boundary: one fsync per install
	// pass, the group-commit point. The default.
	FsyncBatch FsyncPolicy = iota
	// FsyncInterval fsyncs on a timer (Options.FsyncEvery).
	FsyncInterval
	// FsyncCheckpoint fsyncs only at checkpoints, Sync and Close.
	FsyncCheckpoint
)

// DegradePolicy selects what happens when the committer cannot keep up
// (its queue is full) or its disk fails.
type DegradePolicy uint8

const (
	// DegradeBlock applies backpressure: journal calls block until the
	// committer drains, so the engine — and therefore every
	// acknowledgement it would send — stalls rather than let the log
	// fall silently behind. After an I/O error the store latches Err
	// and the transport stops acknowledging. The default.
	DegradeBlock DegradePolicy = iota
	// DegradeShed keeps the engine running and drops journal records,
	// counting them in Stats.ShedRecords. The first dropped commit
	// group leaves a permanent gap: the committer freezes the shadow
	// and cuts no further checkpoints, so recovery still yields a
	// faithful prefix.
	DegradeShed
)

// Options configures a Store.
type Options struct {
	Fsync      FsyncPolicy
	FsyncEvery time.Duration // FsyncInterval period; default 50ms
	// SnapshotEvery is the checkpoint period in installed serial
	// positions; default 4096.
	SnapshotEvery uint64
	Degrade       DegradePolicy
	// QueueLen bounds the committer queue in records; default 1024.
	QueueLen int
	// ResumeWindow is the per-session retained-batch ring capacity the
	// shadow keeps; set it to the engine's Config.ResumeWindow so a
	// recovered session can serve the same suffix replays. Default 16.
	ResumeWindow int
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)

	// testGate, when non-nil, throttles the committer: it consumes one
	// token per loop iteration. Tests use it to fill the queue
	// deterministically.
	testGate chan struct{}
}

func (o Options) withDefaults() Options {
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 50 * time.Millisecond
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 4096
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 1024
	}
	if o.ResumeWindow <= 0 {
		o.ResumeWindow = 16
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// GroupCommits counts install passes fully applied to the shadow
	// (the group-commit boundaries).
	GroupCommits int
	// Checkpoints counts epoch snapshots cut from the shadow.
	Checkpoints int
	// AppendErrors counts committer I/O failures; after the first the
	// store latches Err and stops writing.
	AppendErrors int
	// ShedRecords counts journal records dropped under DegradeShed.
	ShedRecords int
	// Emitted is the newest serial position the engine has fed;
	// Durable is the newest the committer has consumed. Their
	// difference is how far the log trails the engine.
	Emitted uint64
	Durable uint64
	// Gapped reports that a shed record left a permanent hole: the
	// shadow is frozen and no further checkpoints will be cut.
	Gapped bool
}

// Store is the durability pipeline: the engine-facing half implements
// core.Journal (safe for the engine goroutine plus its lane workers,
// per the Journal contract); the committer goroutine owns all file
// I/O. Open recovers, Close drains.
type Store struct {
	dir  string
	opts Options
	boot uint64

	jobs  chan job
	stopc chan struct{}

	emitted      atomic.Uint64
	durableSeq   atomic.Uint64
	groupCommits atomic.Int64
	checkpoints  atomic.Int64
	appendErrors atomic.Int64
	shedRecords  atomic.Int64
	gapped       atomic.Bool
	errv         atomic.Value // error

	closeOnce sync.Once
	closeErr  error
	closed    chan struct{}
}

const (
	opAppend = iota
	opBarrier
	opCheckpoint
	opStop
)

// laneMeta routes a record to the meta lineage instead of a lane
// segment.
const laneMeta int32 = -1

type job struct {
	op   int
	lane int32
	buf  []byte // framed record, pooled; ownership transfers with the job
	// end marks the last record of a commit group: the committer
	// assembles the group, applies it to the shadow, and group-commits.
	end  bool
	done chan error
}

// Recovery is what Open reconstructed: the authoritative state at the
// durable install point (the caller seeds its engine with it) and the
// RestoreState to rewind the engine's watermarks and session table.
type Recovery struct {
	State   *world.State
	Restore core.RestoreState
}

// ErrClosed is returned by barriers against a closed store.
var ErrClosed = errors.New("durable: store closed")

// Open recovers dir and starts the committer. base, when non-nil, is
// the generated initial world: it seeds the shadow only when the
// directory holds no snapshot yet (after the first Open the initial
// world is captured by the boot checkpoint and base is ignored). The
// returned Recovery carries everything the engine needs to resume
// against itself; pass the Store to Engine.SetJournal afterwards.
func Open(dir string, base *world.State, opts Options) (*Store, *Recovery, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: creating %s: %w", dir, err)
	}
	sh, prevBoot, hadSnapshot, err := recoverDir(dir, opts)
	if err != nil {
		return nil, nil, err
	}
	if !hadSnapshot && base != nil {
		sh.state = base.Clone()
	}
	s := &Store{
		dir:    dir,
		opts:   opts,
		boot:   prevBoot + 1,
		jobs:   make(chan job, opts.QueueLen),
		stopc:  make(chan struct{}),
		closed: make(chan struct{}),
	}
	s.durableSeq.Store(sh.applied)
	s.emitted.Store(sh.applied)

	rec := &Recovery{
		State: sh.state.Clone(),
		Restore: core.RestoreState{
			UpTo:        sh.applied,
			NextBlind:   sh.nextBlind,
			Boot:        s.boot,
			SessionSeq:  sh.sessionSeq,
			Sessions:    sessionRecords(sh),
			Quarantined: quarantineRecords(sh),
		},
	}

	c := &committer{
		s:        s,
		sh:       sh,
		files:    make(map[int32]*os.File),
		dirty:    make(map[int32]bool),
		segStart: sh.applied,
		lastCkpt: sh.applied,
	}
	// Boot checkpoint: the new boot generation (and, on first Open, the
	// base world) must be durable before the server acknowledges
	// anything minted under it.
	if err := c.checkpoint(); err != nil {
		c.closeFiles()
		return nil, nil, err
	}
	go c.run()
	return s, rec, nil
}

// Boot reports the recovery generation this Open minted.
func (s *Store) Boot() uint64 { return s.boot }

// Err returns the committer's latched I/O error, if any. Once set the
// log has stopped growing; under DegradeBlock the transport reacts by
// refusing to acknowledge further work.
func (s *Store) Err() error {
	if e, ok := s.errv.Load().(error); ok {
		return e
	}
	return nil
}

// Degrade reports the configured degrade policy.
func (s *Store) Degrade() DegradePolicy { return s.opts.Degrade }

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		GroupCommits: int(s.groupCommits.Load()),
		Checkpoints:  int(s.checkpoints.Load()),
		AppendErrors: int(s.appendErrors.Load()),
		ShedRecords:  int(s.shedRecords.Load()),
		Emitted:      s.emitted.Load(),
		Durable:      s.durableSeq.Load(),
		Gapped:       s.gapped.Load(),
	}
}

// Sync is the durability barrier: it blocks until every record sent
// before it is written and fsynced.
func (s *Store) Sync() error { return s.barrier(opBarrier) }

// Checkpoint forces an epoch checkpoint at the committer's current
// group boundary and blocks until it is published.
func (s *Store) Checkpoint() error { return s.barrier(opCheckpoint) }

func (s *Store) barrier(op int) error {
	done := make(chan error, 1)
	select {
	case s.jobs <- job{op: op, done: done}:
	case <-s.stopc:
		return ErrClosed
	}
	select {
	case err := <-done:
		return err
	case <-s.closed:
		return ErrClosed
	}
}

// Close drains the committer (final fsync plus, on a healthy store, a
// shutdown checkpoint) and closes the files. The engine must be
// quiesced first: journal calls racing Close are dropped.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		done := make(chan error, 1)
		select {
		case s.jobs <- job{op: opStop, done: done}:
			s.closeErr = <-done
		case <-s.closed:
		}
		close(s.stopc)
	})
	return s.closeErr
}

// send transfers one framed record to the committer. Under
// DegradeBlock a full queue applies backpressure to the caller (the
// engine stops, so nothing unjournaled gets acknowledged); under
// DegradeShed the record is dropped and counted.
func (s *Store) send(j job) {
	if s.opts.Degrade == DegradeShed {
		select {
		case s.jobs <- j:
		default:
			wire.PutBuf(j.buf)
			s.shedRecords.Add(1)
		}
		return
	}
	select {
	case s.jobs <- j:
	case <-s.stopc:
		wire.PutBuf(j.buf)
	}
}

// CommitGroup implements core.Journal: one install pass becomes one
// record per lane touched (group commit against segmented per-lane
// logs), encoded here on the engine goroutine into pooled buffers
// whose ownership transfers to the committer with the send.
//
// Runs at the engine's seal boundary — the sequential point between
// parallel lane phases — so it may partition records across any lane.
//
//seve:lane-seal
func (s *Store) CommitGroup(epoch uint64, nextBlind uint32, recs []core.CommitRecord) {
	if len(recs) == 0 {
		return
	}
	s.emitted.Store(recs[len(recs)-1].Seq)
	// Partition by lane, preserving serial order. Spanning entries
	// (lane < 0) ride in lane 0's segment.
	var lanes [16]int32
	n := 0
	for i := range recs {
		l := recs[i].Lane
		if l < 0 {
			l = 0
		}
		seen := false
		for _, x := range lanes[:n] {
			if x == l {
				seen = true
				break
			}
		}
		if !seen && n < len(lanes) {
			lanes[n] = l
			n++
		} else if !seen {
			// Beyond the fixed fan-out every extra lane folds into lane
			// 0; recovery merges by seq, so placement is a layout
			// choice, not a correctness one.
			recs[i].Lane = 0
		}
	}
	for i := 0; i < n; i++ {
		lane := lanes[i]
		buf := wire.GetBuf(64 + len(recs)*48)
		buf = appendCommitRecord(buf, lane, epoch, nextBlind, recs, func(r *core.CommitRecord) bool {
			l := r.Lane
			if l < 0 {
				l = 0
			}
			return l == lane
		})
		s.send(job{op: opAppend, lane: lane, buf: buf, end: i == n-1})
	}
}

// SessionOpen implements core.Journal. Session records never shed:
// losing one would resurrect a previous registration's dedup floor
// (its stampFloor fence) on recovery, which could silently swallow a
// rejoined client's fresh submissions. They are rare — one per
// registration — so the blocking send is cheap even under DegradeShed.
func (s *Store) SessionOpen(id action.ClientID, token, mask, seqNo, stampFloor uint64) {
	buf := wire.GetBuf(64)
	buf = appendSessionRecord(buf, walSession{id: id, token: token, mask: mask, seqNo: seqNo, stampFloor: stampFloor})
	j := job{op: opAppend, lane: laneMeta, buf: buf}
	select {
	case s.jobs <- j:
	case <-s.stopc:
		wire.PutBuf(j.buf)
	}
}

// BatchRetained implements core.Journal. Runs on the engine goroutine
// or a lane worker; the pooled encode plus channel handoff is the
// whole critical section.
func (s *Store) BatchRetained(id action.ClientID, b *wire.Batch) {
	payload := wire.GetBuf(256)
	payload = wire.AppendMsg(payload, b)
	buf := wire.GetBuf(frameHdrLen + 24 + len(payload))
	buf = appendBatchRecord(buf, id, b.ClientSeq, payload)
	wire.PutBuf(payload)
	s.send(job{op: opAppend, lane: laneMeta, buf: buf})
}

// ClientQuarantined implements core.QuarantineJournal. Verdicts never
// shed: losing one would let a quarantined cheater launder its ledger
// through a crash-restart. Like session records they are rare — at most
// one per client — so the blocking send is cheap even under
// DegradeShed. They ride the meta lineage and are re-baked into it at
// every checkpoint.
func (s *Store) ClientQuarantined(id action.ClientID, reason uint8, seq uint64) {
	buf := wire.GetBuf(32)
	buf = appendQuarantineRecord(buf, walQuarantine{id: id, reason: reason, seq: seq})
	j := job{op: opAppend, lane: laneMeta, buf: buf}
	select {
	case s.jobs <- j:
	case <-s.stopc:
		wire.PutBuf(j.buf)
	}
}

var (
	_ core.Journal           = (*Store)(nil)
	_ core.QuarantineJournal = (*Store)(nil)
)

// sessionRecords converts the recovered shadow sessions into the
// engine's RestoreState form, applying the clean-window gate: the
// retained ring is surfaced only when it is a contiguous run ending at
// lastSeq whose every envelope and install marker is at or below the
// recovered install point. A dirty ring — it references state the
// crash lost — is dropped, and the session's first resume degrades to
// the snapshot path instead.
func sessionRecords(sh *shadow) []core.SessionRecord {
	if len(sh.sessions) == 0 {
		return nil
	}
	out := make([]core.SessionRecord, 0, len(sh.sessions))
	for id, sess := range sh.sessions {
		sr := core.SessionRecord{
			ID:         id,
			Token:      sess.token,
			Mask:       sess.mask,
			SeqNo:      sess.seqNo,
			LastActSeq: sess.lastActSeq,
			LastSeq:    sess.lastSeq,
		}
		if batches, ok := cleanWindow(sess, sh.applied); ok {
			sr.Retained = batches
		}
		out = append(out, sr)
	}
	return out
}

// quarantineRecords converts the recovered quarantine set into the
// engine's RestoreState form, ordered by client id for determinism.
func quarantineRecords(sh *shadow) []core.QuarantineRecord {
	if len(sh.quarantined) == 0 {
		return nil
	}
	out := make([]core.QuarantineRecord, 0, len(sh.quarantined))
	for _, q := range sh.quarantined {
		out = append(out, core.QuarantineRecord{ID: q.id, Reason: q.reason, Seq: q.seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func cleanWindow(sess *shadowSession, upTo uint64) ([]*wire.Batch, bool) {
	if len(sess.ring) == 0 {
		return nil, sess.lastSeq == 0
	}
	if sess.ring[len(sess.ring)-1].clientSeq != sess.lastSeq {
		return nil, false
	}
	batches := make([]*wire.Batch, 0, len(sess.ring))
	for i, r := range sess.ring {
		if i > 0 && r.clientSeq != sess.ring[i-1].clientSeq+1 {
			return nil, false
		}
		m, err := wire.Decode(wire.TypeBatch, r.payload)
		if err != nil {
			return nil, false
		}
		b, ok := m.(*wire.Batch)
		if !ok || b.ClientSeq != r.clientSeq || b.InstalledUpTo > upTo {
			return nil, false
		}
		for _, env := range b.Envs {
			if env.Seq > upTo {
				return nil, false
			}
		}
		batches = append(batches, b)
	}
	return batches, true
}
