// Package durable persists the authoritative world state — the
// durability half of Section II-B's requirement that "a protocol needs
// to be established between the clients and the server that ensures
// consistency and durability of data".
//
// The paper observes that persistent net-VEs keep the world in a
// database but, for throughput, "use commercial databases only to commit
// and read at periodic checkpoints" with an in-memory transaction layer
// in front (Section II). This package is that checkpoint layer: an
// append-only write-ahead log of installed action results plus periodic
// full-state snapshots, both CRC-protected, with recovery that loads the
// newest intact snapshot and replays the log tail. A torn or corrupt
// record truncates recovery at the last intact prefix — exactly the
// semantics of a database redo log.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"seve/internal/action"
	"seve/internal/world"
)

// Store is a directory-backed checkpoint + log store. Not safe for
// concurrent use; the owning server serializes installs already.
type Store struct {
	dir string
	log *os.File
	// logStart is the serial position the current log file begins after
	// (the seq of the snapshot it follows).
	logStart uint64
	// lastAppended is the seq of the newest record written.
	lastAppended uint64
}

const (
	logName        = "actions.log"
	snapshotPrefix = "snapshot-"
	snapshotSuffix = ".state"
)

// Open opens (or creates) a store in dir. The returned store appends to
// the existing log; call Recover first when restarting after a crash.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: creating %s: %w", dir, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: opening log: %w", err)
	}
	return &Store{dir: dir, log: f}, nil
}

// Close releases the log file.
func (s *Store) Close() error { return s.log.Close() }

// LastAppended reports the newest serial position written this session.
func (s *Store) LastAppended() uint64 { return s.lastAppended }

// Append writes one installed action's effect to the log. Records are
// length-prefixed and CRC-protected so a torn tail is detected on
// recovery.
//
// Record layout: len(4) crc(4) seq(8) ok(1) nwrites(4) [id(8) nattr(2)
// attrs(8 each)]... — crc covers everything after the crc field.
func (s *Store) Append(seq uint64, res action.Result) error {
	body := make([]byte, 0, 64)
	body = binary.LittleEndian.AppendUint64(body, seq)
	if res.OK {
		body = append(body, 1)
	} else {
		body = append(body, 0)
	}
	body = binary.LittleEndian.AppendUint32(body, uint32(len(res.Writes)))
	for _, w := range res.Writes {
		body = binary.LittleEndian.AppendUint64(body, uint64(w.ID))
		body = binary.LittleEndian.AppendUint16(body, uint16(len(w.Val)))
		for _, f := range w.Val {
			body = binary.LittleEndian.AppendUint64(body, math.Float64bits(f))
		}
	}
	rec := make([]byte, 0, len(body)+8)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(body)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(body))
	rec = append(rec, body...)
	if _, err := s.log.Write(rec); err != nil {
		return fmt.Errorf("durable: appending seq %d: %w", seq, err)
	}
	s.lastAppended = seq
	return nil
}

// Sync flushes the log to stable storage (fsync). Callers choose the
// durability/throughput point — per install, per checkpoint, or on
// shutdown.
func (s *Store) Sync() error { return s.log.Sync() }

// Snapshot atomically writes a full-state checkpoint at serial position
// seq (temp file + rename) and truncates the log: installed effects at
// or below seq are now captured by the snapshot.
func (s *Store) Snapshot(seq uint64, st *world.State) error {
	name := fmt.Sprintf("%s%020d%s", snapshotPrefix, seq, snapshotSuffix)
	tmp := filepath.Join(s.dir, name+".tmp")
	body := encodeState(seq, st)
	sum := make([]byte, 4)
	binary.LittleEndian.PutUint32(sum, crc32.ChecksumIEEE(body))
	if err := os.WriteFile(tmp, append(sum, body...), 0o644); err != nil {
		return fmt.Errorf("durable: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("durable: publishing snapshot: %w", err)
	}
	// Drop superseded snapshots and restart the log.
	entries, err := os.ReadDir(s.dir)
	if err == nil {
		for _, e := range entries {
			n := e.Name()
			if strings.HasPrefix(n, snapshotPrefix) && strings.HasSuffix(n, snapshotSuffix) && n != name {
				os.Remove(filepath.Join(s.dir, n))
			}
		}
	}
	if err := s.log.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(s.dir, logName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: restarting log: %w", err)
	}
	s.log = f
	s.logStart = seq
	return nil
}

// Recover rebuilds the newest durable state: the latest intact snapshot
// (or an empty state) plus every intact log record above it, stopping at
// the first corrupt or torn record. It returns the state and the serial
// position it represents.
func Recover(dir string) (*world.State, uint64, error) {
	st := world.NewState()
	var upTo uint64

	// Newest intact snapshot, if any.
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return st, 0, nil
		}
		return nil, 0, fmt.Errorf("durable: reading %s: %w", dir, err)
	}
	var snaps []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, snapshotPrefix) && strings.HasSuffix(n, snapshotSuffix) {
			snaps = append(snaps, n)
		}
	}
	sort.Strings(snaps) // zero-padded seq: lexicographic == numeric
	for i := len(snaps) - 1; i >= 0; i-- {
		raw, err := os.ReadFile(filepath.Join(dir, snaps[i]))
		if err != nil || len(raw) < 4 {
			continue
		}
		if crc32.ChecksumIEEE(raw[4:]) != binary.LittleEndian.Uint32(raw) {
			continue // corrupt snapshot: fall back to an older one
		}
		seq, state, err := decodeState(raw[4:])
		if err != nil {
			continue
		}
		st, upTo = state, seq
		break
	}

	// Replay the log tail.
	raw, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return st, upTo, nil
		}
		return nil, 0, fmt.Errorf("durable: reading log: %w", err)
	}
	for len(raw) >= 8 {
		n := int(binary.LittleEndian.Uint32(raw))
		want := binary.LittleEndian.Uint32(raw[4:])
		if len(raw) < 8+n {
			break // torn tail
		}
		body := raw[8 : 8+n]
		if crc32.ChecksumIEEE(body) != want {
			break // corruption: stop at the intact prefix
		}
		seq, res, err := decodeRecord(body)
		if err != nil {
			break
		}
		if seq > upTo {
			if res.OK {
				for _, w := range res.Writes {
					st.Set(w.ID, w.Val)
				}
			}
			upTo = seq
		}
		raw = raw[8+n:]
	}
	return st, upTo, nil
}

func decodeRecord(body []byte) (uint64, action.Result, error) {
	if len(body) < 13 {
		return 0, action.Result{}, io.ErrUnexpectedEOF
	}
	seq := binary.LittleEndian.Uint64(body)
	res := action.Result{OK: body[8] == 1}
	n := int(binary.LittleEndian.Uint32(body[9:]))
	off := 13
	for i := 0; i < n; i++ {
		if len(body) < off+10 {
			return 0, action.Result{}, io.ErrUnexpectedEOF
		}
		id := world.ObjectID(binary.LittleEndian.Uint64(body[off:]))
		attrs := int(binary.LittleEndian.Uint16(body[off+8:]))
		off += 10
		if len(body) < off+8*attrs {
			return 0, action.Result{}, io.ErrUnexpectedEOF
		}
		val := make(world.Value, attrs)
		for j := range val {
			val[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[off+8*j:]))
		}
		off += 8 * attrs
		res.Writes = append(res.Writes, world.Write{ID: id, Val: val})
	}
	return seq, res, nil
}

func encodeState(seq uint64, st *world.State) []byte {
	ids := st.IDs()
	body := make([]byte, 0, 16+len(ids)*40)
	body = binary.LittleEndian.AppendUint64(body, seq)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(ids)))
	for _, id := range ids {
		v, _ := st.Get(id)
		body = binary.LittleEndian.AppendUint64(body, uint64(id))
		body = binary.LittleEndian.AppendUint16(body, uint16(len(v)))
		for _, f := range v {
			body = binary.LittleEndian.AppendUint64(body, math.Float64bits(f))
		}
	}
	return body
}

func decodeState(body []byte) (uint64, *world.State, error) {
	if len(body) < 12 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	seq := binary.LittleEndian.Uint64(body)
	n := int(binary.LittleEndian.Uint32(body[8:]))
	st := world.NewState()
	off := 12
	for i := 0; i < n; i++ {
		if len(body) < off+10 {
			return 0, nil, io.ErrUnexpectedEOF
		}
		id := world.ObjectID(binary.LittleEndian.Uint64(body[off:]))
		attrs := int(binary.LittleEndian.Uint16(body[off+8:]))
		off += 10
		if len(body) < off+8*attrs {
			return 0, nil, io.ErrUnexpectedEOF
		}
		val := make(world.Value, attrs)
		for j := range val {
			val[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[off+8*j:]))
		}
		off += 8 * attrs
		st.Set(id, val)
	}
	return seq, st, nil
}
