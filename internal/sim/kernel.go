// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, which
// makes every run fully reproducible for a fixed seed and schedule.
//
// The kernel substitutes for the paper's EMULab testbed: instead of 65
// physical machines exchanging messages over a 238 ms WAN, nodes are
// simulated single-core processors (see Proc) connected by simulated
// links (see package netsim).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a virtual timestamp in milliseconds. The millisecond matches the
// resolution of the paper's Java System.currentTimeMillis measurements;
// fractional values allow sub-millisecond costs such as the 0.04 ms
// transitive-closure scans reported in Section V-B1.
type Time float64

// Millisecond is one virtual millisecond.
const Millisecond Time = 1

// Second is 1000 virtual milliseconds.
const Second Time = 1000

// Never is a sentinel time later than any reachable simulation instant.
const Never Time = Time(math.MaxFloat64)

// event is a scheduled callback. seq breaks ties so same-instant events run
// in scheduling order.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Kernel is a discrete-event simulator. The zero value is not ready for
// use; construct with NewKernel.
type Kernel struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	fired   uint64
}

// NewKernel returns a kernel with the clock at zero and no pending events.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of events not yet fired.
func (k *Kernel) Pending() int { return len(k.events) }

// Fired reports the total number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// At schedules fn to run at virtual time t. Scheduling in the past is a
// programming error and panics: it would silently reorder causality.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d milliseconds from now. Negative delays panic.
func (k *Kernel) After(d Time, fn func()) {
	k.At(k.now+d, fn)
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was fired.
func (k *Kernel) Step() bool {
	if k.stopped || len(k.events) == 0 {
		return false
	}
	ev := heap.Pop(&k.events).(*event)
	k.now = ev.at
	k.fired++
	ev.fn()
	return true
}

// Run fires events until none remain or Stop is called. It returns the
// final virtual time.
func (k *Kernel) Run() Time {
	for k.Step() {
	}
	return k.now
}

// RunUntil fires events with timestamps at or before limit. Events beyond
// the limit remain queued; the clock is advanced to limit if the simulation
// would otherwise have stopped earlier. It returns the final virtual time.
func (k *Kernel) RunUntil(limit Time) Time {
	for !k.stopped && len(k.events) > 0 && k.events[0].at <= limit {
		k.Step()
	}
	if k.now < limit {
		k.now = limit
	}
	return k.now
}

// Stop halts Run and RunUntil after the current event returns. Pending
// events are retained; a subsequent Run resumes.
func (k *Kernel) Stop() { k.stopped = true }

// Resume clears a previous Stop.
func (k *Kernel) Resume() { k.stopped = false }
