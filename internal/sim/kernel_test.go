package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("final time = %v, want 30", k.Now())
	}
}

func TestKernelTieBreakIsFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run()
	if len(got) != 100 {
		t.Fatalf("fired %d events, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered: got[%d] = %d", i, v)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var trace []Time
	k.At(10, func() {
		trace = append(trace, k.Now())
		k.After(5, func() {
			trace = append(trace, k.Now())
		})
	})
	k.Run()
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 15 {
		t.Fatalf("trace = %v, want [10 15]", trace)
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(10, func() { fired++ })
	k.At(20, func() { fired++ })
	k.At(30, func() { fired++ })
	k.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if k.Now() != 20 {
		t.Fatalf("now = %v, want 20", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	k.Run()
	if fired != 3 || k.Now() != 30 {
		t.Fatalf("after Run: fired = %d now = %v", fired, k.Now())
	}
}

func TestKernelRunUntilAdvancesIdleClock(t *testing.T) {
	k := NewKernel()
	k.RunUntil(500)
	if k.Now() != 500 {
		t.Fatalf("idle RunUntil left clock at %v, want 500", k.Now())
	}
}

func TestKernelStopResume(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(10, func() { fired++; k.Stop() })
	k.At(20, func() { fired++ })
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d after Stop, want 1", fired)
	}
	k.Resume()
	k.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after Resume, want 2", fired)
	}
}

func TestKernelRandomScheduleIsSorted(t *testing.T) {
	k := NewKernel()
	rng := rand.New(rand.NewSource(42))
	var times []Time
	const n = 2000
	for i := 0; i < n; i++ {
		at := Time(rng.Intn(10_000))
		k.At(at, func() { times = append(times, k.Now()) })
	}
	k.Run()
	if len(times) != n {
		t.Fatalf("fired %d, want %d", len(times), n)
	}
	if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
		t.Fatal("events fired out of time order")
	}
}

func TestProcSerializesWork(t *testing.T) {
	k := NewKernel()
	p := NewProc(k, "cpu")
	var done []Time
	k.At(0, func() {
		p.Exec(10, func() { done = append(done, k.Now()) })
		p.Exec(10, func() { done = append(done, k.Now()) })
	})
	// A third job arrives while the first two are still queued.
	k.At(5, func() {
		p.Exec(10, func() { done = append(done, k.Now()) })
	})
	k.Run()
	want := []Time{10, 20, 30}
	if len(done) != 3 {
		t.Fatalf("completions = %v", done)
	}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
}

func TestProcIdleGapResetsStart(t *testing.T) {
	k := NewKernel()
	p := NewProc(k, "cpu")
	var done []Time
	k.At(0, func() { p.Exec(5, func() { done = append(done, k.Now()) }) })
	k.At(100, func() { p.Exec(5, func() { done = append(done, k.Now()) }) })
	k.Run()
	if done[0] != 5 || done[1] != 105 {
		t.Fatalf("completions = %v, want [5 105]", done)
	}
	if p.BusyTotal() != 10 {
		t.Fatalf("busy total = %v, want 10", p.BusyTotal())
	}
}

func TestProcBacklogAndSaturation(t *testing.T) {
	// Offered load of 2x capacity must grow the backlog linearly — the
	// mechanism behind the Figure 6 knee.
	k := NewKernel()
	p := NewProc(k, "server")
	for i := 0; i < 100; i++ {
		at := Time(i * 10)
		k.At(at, func() { p.Exec(20, func() {}) })
	}
	k.RunUntil(1000)
	// 100 jobs x 20 ms = 2000 ms of work offered in 1000 ms.
	if p.FreeAt() != 2000 {
		t.Fatalf("freeAt = %v, want 2000", p.FreeAt())
	}
	if p.Backlog() != 1000 {
		t.Fatalf("backlog = %v, want 1000", p.Backlog())
	}
}

func TestProcZeroAndNegativeCost(t *testing.T) {
	k := NewKernel()
	p := NewProc(k, "cpu")
	var at Time = -1
	k.At(7, func() {
		p.Exec(0, func() { at = k.Now() })
	})
	k.Run()
	if at != 7 {
		t.Fatalf("zero-cost job ran at %v, want 7", at)
	}
	k2 := NewKernel()
	p2 := NewProc(k2, "cpu")
	k2.At(3, func() { p2.Exec(-5, func() { at = k2.Now() }) })
	k2.Run()
	if at != 3 {
		t.Fatalf("negative-cost job ran at %v, want 3", at)
	}
}

func TestProcUtilization(t *testing.T) {
	k := NewKernel()
	p := NewProc(k, "cpu")
	k.At(0, func() { p.Exec(25, func() {}) })
	k.RunUntil(100)
	if u := p.Utilization(); u != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}
