package sim

// Proc models a single-core processor attached to the kernel. Work items
// submitted with Exec run serially: an item submitted while the processor
// is busy waits until the processor frees up. This is the mechanism that
// reproduces the paper's saturation knees — e.g. in Figure 6 the Central
// server's queue grows without bound once 32 clients × 7.44 ms/action
// exceeds the 300 ms action budget, which is exactly what this model
// produces.
type Proc struct {
	k *Kernel

	// Name identifies the processor in diagnostics.
	Name string

	busyUntil Time
	busyTotal Time
	jobs      uint64
}

// NewProc returns an idle processor attached to k.
func NewProc(k *Kernel, name string) *Proc {
	return &Proc{k: k, Name: name}
}

// Exec schedules fn to run after cost milliseconds of serial compute time,
// queued behind any work already assigned to this processor. It returns
// the virtual time at which fn will fire. A zero or negative cost runs at
// the processor's next free instant with no added delay.
func (p *Proc) Exec(cost Time, fn func()) Time {
	if cost < 0 {
		cost = 0
	}
	start := p.k.Now()
	if p.busyUntil > start {
		start = p.busyUntil
	}
	end := start + cost
	p.busyUntil = end
	p.busyTotal += cost
	p.jobs++
	p.k.At(end, fn)
	return end
}

// FreeAt reports the earliest virtual time at which the processor has no
// queued work.
func (p *Proc) FreeAt() Time { return p.busyUntil }

// Backlog reports how much queued compute (ms) separates now from the
// processor's next idle instant.
func (p *Proc) Backlog() Time {
	b := p.busyUntil - p.k.Now()
	if b < 0 {
		return 0
	}
	return b
}

// BusyTotal reports the cumulative compute time executed.
func (p *Proc) BusyTotal() Time { return p.busyTotal }

// Jobs reports how many work items have been submitted.
func (p *Proc) Jobs() uint64 { return p.jobs }

// Utilization reports busy time divided by elapsed virtual time, in [0, 1]
// for a non-saturated processor (it can exceed 1 transiently while a
// backlog is queued). Returns 0 before any time has elapsed.
func (p *Proc) Utilization() float64 {
	if p.k.Now() <= 0 {
		return 0
	}
	return float64(p.busyTotal) / float64(p.k.Now())
}
