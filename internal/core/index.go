package core

import (
	"sort"

	"seve/internal/world"
)

// This file holds the reverse conflict index behind the Algorithm 6/7
// walks (closure.go, infobound.go): for every object, the serial
// positions of the uncommitted queue entries that write it, plus the
// reusable per-walk scratch state. With the index, the walks visit only
// entries that can conflict with the chain set instead of scanning the
// whole uncommitted queue — the difference between O(queue) and
// O(conflicts) per analysis, which is what the paper's thin-server
// claim (Section V-B1, 0.04 ms per move) depends on at depth.
//
// Key invariant (established by HandleSubmit/HandleCompletion): the
// uncommitted queue is a contiguous run of serial positions, so
// queue[i].env.Seq == s.installed + 1 + uint64(i). Writer lists store
// serial positions (Seqs), which never change as the head of the queue
// installs; the conversion to a current queue index is one subtraction.

// walkView selects which partition of the queue and conflict index an
// analysis walk runs over: the global queue (the single-lane engine,
// cross-shard stamping, pushes, resume) or one lane's segment (the shard
// router's partitioned pipeline, see lanes.go). A view carries its own
// serial numbering — global Seqs for the global view, lane-local
// laneSeqs for a lane segment — and the invariant holds per view:
// view.queue[i] has view-seq == view.installed + 1 + i.
type walkView struct {
	queue   []*entry
	writers [][]uint64
	// installed is the view's install watermark in the view's numbering:
	// writer-list seqs at or below it are dead.
	installed uint64
}

// globalView is the whole-queue view every non-partitioned path uses.
func (s *Server) globalView() walkView {
	return walkView{queue: s.queue, writers: s.writers, installed: s.installed}
}

// walkStats aggregates what one analysis walk cost. Walks run on worker
// goroutines during parallel pushes, so they accumulate into this value
// and the caller merges it into the server's counters sequentially
// (noteWalk).
type walkStats struct {
	// scanned counts queue entries actually examined (the quantity
	// charged as ServerOutput.QueueScanned).
	scanned int
	// lookups counts writer-list consultations.
	lookups int
	// baseline is what a full-queue walk would have examined, for the
	// scan-savings counter.
	baseline int
}

// closureScratch is the reusable per-walk (and, during parallel pushes,
// per-worker) state. All of it is sized lazily and retained across
// calls, so steady-state walks allocate nothing beyond their outputs.
type closureScratch struct {
	// set is S, the transitive chain set, over dense object indices.
	set world.ScratchSet
	// seedPos marks the seed queue positions the walk must skip.
	seedPos world.ScratchSet
	// cand is the candidate bitmap over queue positions: bit j set means
	// position j writes an object that was in S while the walk was above
	// j. The walk clears every bit it pops, so the bitmap is all-zero
	// between walks (early exits sweep the remainder).
	cand []uint64
	// seeds buffers per-client push seed positions.
	seeds []int
	// memb buffers the final chain-set members.
	memb []uint32
	// objs buffers the materialized blind-write object ids.
	objs []world.ObjectID
}

func (sc *closureScratch) ensure(queueLen, internLen int) {
	words := (queueLen + 63) / 64
	if words > len(sc.cand) {
		sc.cand = append(sc.cand, make([]uint64, words+words/2-len(sc.cand))...)
	}
	sc.set.Reset(internLen)
	sc.seedPos.Reset(queueLen)
}

// scratchFor returns the scratch for worker w, growing the pool.
// scratch[0] serves every sequential path.
func (s *Server) scratchFor(w int) *closureScratch {
	for len(s.scratch) <= w {
		s.scratch = append(s.scratch, &closureScratch{})
	}
	return s.scratch[w]
}

// growWriters keeps the writer-list tables in step with the interner.
//
//seve:lane-seal
func (s *Server) growWriters() {
	for len(s.writers) < s.intern.Len() {
		s.writers = append(s.writers, nil)
	}
	if s.lanes != nil {
		for len(s.laneWriters) < s.intern.Len() {
			s.laneWriters = append(s.laneWriters, nil)
		}
	}
}

// indexEntry records e's writes in the reverse conflict index. Called on
// enqueue, from the (sequential) submission path.
func (s *Server) indexEntry(e *entry) {
	seq := e.env.Seq
	for _, o := range e.wsd {
		lst := s.writers[o]
		// Compact the dead prefix (seqs at or below the install point)
		// when it dominates the list; append is the only place a list
		// grows, so this amortizes to O(1) per write.
		if len(lst) > 16 && lst[0] <= s.installed {
			d := liveFrom(lst, s.installed)
			if 2*d >= len(lst) {
				lst = lst[:copy(lst, lst[d:])]
				s.writerCompactions++
			}
		}
		s.writers[o] = append(lst, seq)
	}
}

// pruneWriters trims the writer lists of an entry that was just
// installed. Objects written only by installed actions release their
// lists entirely; hot objects compact once the dead prefix dominates.
// Runs in the sequential completion path — the walks themselves never
// mutate the index, which keeps them safe on worker goroutines.
func (s *Server) pruneWriters(e *entry) {
	for _, o := range e.wsd {
		lst := s.writers[o]
		d := liveFrom(lst, s.installed)
		switch {
		case d == len(lst):
			s.writers[o] = lst[:0]
		case d > 16 && 2*d >= len(lst):
			s.writers[o] = lst[:copy(lst, lst[d:])]
			s.writerCompactions++
		}
	}
}

// liveFrom returns the index of the first seq in lst above installed.
// Lists are ascending, so lst[liveFrom:] are the live writers.
func liveFrom(lst []uint64, installed uint64) int {
	return sort.Search(len(lst), func(i int) bool { return lst[i] > installed })
}

// addCandidates marks as walk candidates every live uncommitted writer
// of object o at a view-queue position strictly below bound. Called when
// o enters the chain set with the walk at position bound; the walk only
// ever looks down, so writers at or above bound are already handled.
func addCandidates(v *walkView, sc *closureScratch, o uint32, bound int, st *walkStats) {
	lst := v.writers[o]
	st.lookups++
	base := v.installed + 1 // queue position of seq q is q - base
	lo := liveFrom(lst, v.installed)
	hi := sort.Search(len(lst), func(i int) bool { return lst[i] >= base+uint64(bound) })
	for _, seq := range lst[lo:hi] {
		j := int(seq - base)
		sc.cand[j>>6] |= 1 << uint(j&63)
	}
}
