package core

import (
	"fmt"
	"sync"
	"testing"

	"seve/internal/action"
	"seve/internal/wire"
	"seve/internal/world"
)

// This file tests the lane-partitioned SPI (lanes.go) the shard router
// drives: a miniature two-lane pipeline runs StampLane/SealStamp/
// PlanReply/PreCommit/CommitLane/SealCommit — with the starred phases on
// real goroutines, so `go test -race` patrols the lane-affinity claims —
// and every byte is compared against a sequential server fed the same
// effective order. The full router pipeline is exercised end to end in
// internal/shard; these tests pin the core-side contract in isolation.

// pipeSub is one scripted submission with its routing decision.
type pipeSub struct {
	from action.ClientID
	msg  *wire.Submit
	lane int
}

// pipeSide is one engine under comparison plus its client fleet and the
// byte streams they observed.
type pipeSide struct {
	srv     *Server
	clients map[action.ClientID]*Client
	bytes   map[action.ClientID][]byte
	// comps buffers client→server traffic (completions) for delivery at
	// the head of the next epoch, matching the router's install pass.
	comps []fromMsg
}

func newPipeSide(cfg Config, init *world.State, nClients int) *pipeSide {
	ps := &pipeSide{
		srv:     NewServer(cfg, init),
		clients: make(map[action.ClientID]*Client),
		bytes:   make(map[action.ClientID][]byte),
	}
	for i := 1; i <= nClients; i++ {
		id := action.ClientID(i)
		ps.clients[id] = NewClient(id, cfg, init)
		ps.srv.RegisterClient(id, 0)
	}
	return ps
}

// absorb records and delivers replies in emission order, buffering the
// resulting completions for the next epoch.
func (ps *pipeSide) absorb(out ServerOutput) {
	for _, r := range out.Replies {
		ps.bytes[r.To] = wire.AppendFrame(ps.bytes[r.To], r.Msg)
		cout := ps.clients[r.To].HandleMsg(r.Msg)
		for _, m := range cout.ToServer {
			ps.comps = append(ps.comps, fromMsg{from: r.To, msg: m})
		}
	}
}

// submit builds a submission through the side's client engine (so both
// sides mint identical action ids and payload bytes).
func (ps *pipeSide) submit(from action.ClientID, a *testAction, lane int) pipeSub {
	c := ps.clients[from]
	a.id = c.NextActionID()
	msg, _ := c.Submit(a)
	return pipeSub{from: from, msg: msg, lane: lane}
}

// parExec fans tasks out on real goroutines — the executor shape the
// shard router injects for segment-parallel installs and push planning.
func parExec(tasks []func()) {
	var wg sync.WaitGroup
	for _, task := range tasks {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(task)
	}
	wg.Wait()
}

// installBuffered is the epoch head: buffered completions apply, then
// the contiguous prefix installs with segment-parallel writes.
func (ps *pipeSide) installBuffered(t *testing.T) {
	t.Helper()
	for _, fm := range ps.comps {
		m, ok := fm.msg.(*wire.Completion)
		if !ok {
			t.Fatalf("client sent %T mid-epoch; pipeline test expects completions only", fm.msg)
		}
		ps.srv.TakeCompletion(fm.from, m)
	}
	ps.comps = ps.comps[:0]
	ps.srv.InstallContiguous(parExec)
}

// laneEpoch runs one partitioned epoch over subs (already in merge
// order: lane-major, arrival order within a lane), with the stamp,
// plan, and commit phases running one goroutine per active lane.
func (ps *pipeSide) laneEpoch(t *testing.T, nLanes int, subs []pipeSub) ServerOutput {
	t.Helper()
	ps.installBuffered(t)

	var out ServerOutput
	pend := make([]*Pending, len(subs))
	perLane := make([][]*Pending, nLanes)
	for i, sub := range subs {
		p := ps.srv.PrepareSubmit(sub.from, sub.msg, 0)
		p.SetLane(sub.lane)
		pend[i] = p
		perLane[sub.lane] = append(perLane[sub.lane], p)
	}

	runLanes := func(fn func(lane int)) {
		var wg sync.WaitGroup
		for lane := 0; lane < nLanes; lane++ {
			if len(perLane[lane]) == 0 {
				continue
			}
			wg.Add(1)
			go func(lane int) {
				defer wg.Done()
				fn(lane)
			}(lane)
		}
		wg.Wait()
	}

	runLanes(func(lane int) { ps.srv.StampLane(lane, perLane[lane]) })

	plans := make([]ReplyPlan, len(pend))
	accepted := make([]bool, len(pend))
	for i, p := range pend {
		accepted[i] = ps.srv.SealStamp(p, &out)
	}
	runLanes(func(lane int) {
		for i, p := range pend {
			if accepted[i] && subs[i].lane == lane {
				plans[i] = ps.srv.PlanReply(p, lane, nil)
			}
		}
	})
	for i, p := range pend {
		if accepted[i] {
			ps.srv.PreCommit(p, &plans[i])
		}
	}
	runLanes(func(lane int) {
		for i, p := range pend {
			if accepted[i] && subs[i].lane == lane {
				ps.srv.CommitLane(p, &plans[i])
			}
		}
	})
	for i, p := range pend {
		if accepted[i] {
			ps.srv.SealCommit(p, &plans[i], &out)
		}
	}
	return out
}

// globalEpoch runs one epoch through the global sequencer path — the
// router's fallback and cross-shard pipeline — with the lanes recorded
// so accepted entries still mirror into their segments (laneEnqueue).
func (ps *pipeSide) globalEpoch(t *testing.T, subs []pipeSub) ServerOutput {
	t.Helper()
	ps.installBuffered(t)
	var out ServerOutput
	for _, sub := range subs {
		p := ps.srv.PrepareSubmit(sub.from, sub.msg, 0)
		p.SetLane(sub.lane)
		if ps.srv.StampPrepared(p, &out) {
			plan := ps.srv.PlanReply(p, 0, nil)
			ps.srv.CommitReply(p, &plan, &out)
		}
	}
	return out
}

// seqEpoch feeds the reference server the identical effective order:
// buffered completions, then the submissions through plain HandleMsg.
func (ps *pipeSide) seqEpoch(subs []pipeSub) ServerOutput {
	var out ServerOutput
	for _, fm := range ps.comps {
		mergeInto(&out, ps.srv.HandleMsg(fm.from, fm.msg, 0))
	}
	ps.comps = ps.comps[:0]
	for _, sub := range subs {
		mergeInto(&out, ps.srv.HandleMsg(sub.from, sub.msg, 0))
	}
	return out
}

func mergeInto(dst *ServerOutput, src ServerOutput) {
	dst.Replies = append(dst.Replies, src.Replies...)
	dst.QueueScanned += src.QueueScanned
	dst.Dropped = dst.Dropped || src.Dropped
}

// TestLanePipelineMatchesSequential drives the partitioned SPI and a
// plain sequential server through the same scripted effective order —
// conflicting neighbours, duplicates, Information Bound drops, a
// spanning cross-lane action, a fallback epoch, and a parallel push
// cycle — and requires byte-identical histories and reply streams.
func TestLanePipelineMatchesSequential(t *testing.T) {
	for _, mode := range []Mode{ModeIncomplete, ModeInfoBound} {
		t.Run(mode.String(), func(t *testing.T) {
			const nLanes = 2
			cfg := cfgFor(mode)
			cfg.Threshold = 30 // close neighbours pass, the far submission drops
			cfg.PushWorkers = 2
			cfg.ResumeWindow = 32 // sessions on: the duplicate round needs dedup
			init := initWorld(8)

			par := newPipeSide(cfg, init, 5)
			par.srv.GrowScratch(nLanes)
			par.srv.EnablePartition(nLanes)
			par.srv.SetPlanExecutor(parExec)
			if !par.srv.Partitioned() {
				t.Fatal("EnablePartition did not partition")
			}
			seq := newPipeSide(cfg, init, 5)

			// One round of the script on both sides. Lane 0 owns objects
			// 1–3 (clients 1 and 3), lane 1 owns 5–7 (clients 2 and 4);
			// client 5 is the cross-lane visitor.
			round := func(r int, build func(s *pipeSide) []pipeSub, global bool) {
				t.Helper()
				psubs, ssubs := build(par), build(seq)
				var pout ServerOutput
				if global {
					pout = par.globalEpoch(t, psubs)
				} else {
					pout = par.laneEpoch(t, nLanes, psubs)
				}
				par.absorb(pout)
				seq.absorb(seq.seqEpoch(ssubs))
				for cid, got := range par.bytes {
					if string(got) != string(seq.bytes[cid]) {
						t.Fatalf("round %d: client %d reply stream diverged (%d vs %d bytes)",
							r, cid, len(got), len(seq.bytes[cid]))
					}
				}
			}

			for r := 0; r < 12; r++ {
				r := r
				switch {
				case r == 4: // duplicate: the same submission twice in one epoch
					round(r, func(s *pipeSide) []pipeSub {
						b := s.submit(3, spatialAt(&testAction{
							rs: world.NewIDSet(2, 3), ws: world.NewIDSet(2), delta: 2,
						}, 5, 0, 1), 0)
						return []pipeSub{b, b}
					}, false)
				case r == 6: // far submission: dropped in ModeInfoBound
					round(r, func(s *pipeSide) []pipeSub {
						return []pipeSub{
							s.submit(1, spatialAt(&testAction{
								rs: world.NewIDSet(1, 2), ws: world.NewIDSet(1, 2), delta: 1,
							}, 0, 0, 1), 0),
							s.submit(3, spatialAt(&testAction{
								rs: world.NewIDSet(2, 3), ws: world.NewIDSet(3), delta: 2,
							}, 1000, 0, 1), 0),
						}
					}, false)
				case r == 8: // spanning action through the global path
					round(r, func(s *pipeSide) []pipeSub {
						return []pipeSub{s.submit(5, spatialAt(&testAction{
							rs: world.NewIDSet(3, 5), ws: world.NewIDSet(3, 5), delta: 9,
						}, 200, 200, 1), -1)}
					}, true)
				default: // regular four-client epoch; r==10 via the fallback path
					round(r, func(s *pipeSide) []pipeSub {
						aws := world.NewIDSet(1)
						if r%2 == 1 {
							aws = world.NewIDSet(1, 2)
						}
						return []pipeSub{
							s.submit(1, spatialAt(&testAction{
								rs: world.NewIDSet(1, 2), ws: aws, delta: float64(1 + r),
							}, float64(r), 0, 1), 0),
							s.submit(3, spatialAt(&testAction{
								rs: world.NewIDSet(2, 3), ws: world.NewIDSet(2), delta: float64(2 + r),
							}, 5, 0, 1), 0),
							s.submit(2, spatialAt(&testAction{
								rs: world.NewIDSet(5, 6), ws: world.NewIDSet(5, 6), delta: float64(3 + r),
							}, 500, 500, 1), 1),
							s.submit(4, spatialAt(&testAction{
								rs: world.NewIDSet(6, 7), ws: world.NewIDSet(7), delta: float64(4 + r),
							}, 505, 500, 1), 1),
						}
					}, r == 10)
				}
			}

			if mode >= ModeFirstBound {
				// Push cycle while the last epoch is still uncommitted: the
				// plan fan-out runs through the injected executor.
				par.absorb(par.srv.Tick(1000))
				seq.absorb(seq.srv.Tick(1000))
			}
			// Settle the tail completions on both sides.
			par.laneEpoch(t, nLanes, nil)
			seq.seqEpoch(nil)

			parHist := wire.AppendFrame(nil, &wire.Batch{Envs: par.srv.History()})
			seqHist := wire.AppendFrame(nil, &wire.Batch{Envs: seq.srv.History()})
			if string(parHist) != string(seqHist) {
				t.Fatalf("histories diverged: %d vs %d bytes", len(parHist), len(seqHist))
			}
			for cid, got := range par.bytes {
				if string(got) != string(seq.bytes[cid]) {
					t.Fatalf("client %d reply stream diverged", cid)
				}
			}
			if par.srv.Installed() != seq.srv.Installed() {
				t.Fatalf("installed %d vs %d", par.srv.Installed(), seq.srv.Installed())
			}
			if par.srv.Installed() == 0 {
				t.Fatal("nothing installed; the script exercised no completions")
			}
			if !par.srv.Authoritative().Equal(seq.srv.Authoritative()) {
				t.Fatal("authoritative states diverged")
			}
			if par.srv.totalSubmitted != seq.srv.totalSubmitted ||
				par.srv.totalDropped != seq.srv.totalDropped ||
				par.srv.duplicateSubmits != seq.srv.duplicateSubmits {
				t.Fatalf("counters diverged: submitted %d/%d dropped %d/%d dup %d/%d",
					par.srv.totalSubmitted, seq.srv.totalSubmitted,
					par.srv.totalDropped, seq.srv.totalDropped,
					par.srv.duplicateSubmits, seq.srv.duplicateSubmits)
			}
			if mode == ModeInfoBound && par.srv.totalDropped == 0 {
				t.Fatal("the far submission was not dropped")
			}
			if par.srv.duplicateSubmits == 0 {
				t.Fatal("the duplicate submission was not detected")
			}
			if got, want := par.srv.Metrics(), seq.srv.Metrics(); got.TotalSubmitted != want.TotalSubmitted {
				t.Fatalf("metrics submitted %d vs %d", got.TotalSubmitted, want.TotalSubmitted)
			}
		})
	}
}

// TestPendingAccessors pins the routing-facing accessors the shard
// router keys ownership by.
func TestPendingAccessors(t *testing.T) {
	cfg := cfgFor(ModeIncomplete)
	init := initWorld(4)
	s := NewServer(cfg, init)
	c := NewClient(1, cfg, init)
	s.RegisterClient(1, 0)

	msg, _ := c.Submit(spatialAt(&testAction{
		rs: world.NewIDSet(2), ws: world.NewIDSet(1, 3), delta: 1,
	}, 7, 9, 2))
	p := s.PrepareSubmit(1, msg, 1)
	if p.From() != 1 {
		t.Fatalf("From() = %d", p.From())
	}
	rsd, wsd := p.Footprint()
	if len(rsd) != 1 || len(wsd) != 2 {
		t.Fatalf("footprint %d reads / %d writes", len(rsd), len(wsd))
	}
	if s.InternedObjects() < 3 {
		t.Fatalf("InternedObjects() = %d after interning 3 objects", s.InternedObjects())
	}
	if id := s.ObjectIDOf(rsd[0]); id != world.ObjectID(2) {
		t.Fatalf("ObjectIDOf(rsd[0]) = %d", id)
	}
	if pos, ok := p.Influence(); !ok || pos.X != 7 || pos.Y != 9 {
		t.Fatalf("Influence() = %v, %v", pos, ok)
	}
	var out ServerOutput
	if !s.StampPrepared(p, &out) {
		t.Fatal("stamp rejected a fresh submission")
	}
	if p.Seq() != 1 {
		t.Fatalf("Seq() = %d for the first stamp", p.Seq())
	}

	msg2, _ := c.Submit(&testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 1})
	if _, ok := s.PrepareSubmit(1, msg2, 2).Influence(); ok {
		t.Fatal("non-spatial action reported an influence centre")
	}
}

// TestEnablePartitionGuards pins the constructor-time contract.
func TestEnablePartitionGuards(t *testing.T) {
	init := initWorld(2)

	s := NewServer(cfgFor(ModeIncomplete), init)
	s.EnablePartition(1)
	if s.Partitioned() {
		t.Fatal("a single lane is not a partition")
	}

	b := NewServer(cfgFor(ModeBasic), init)
	b.EnablePartition(2)
	if b.Partitioned() {
		t.Fatal("ModeBasic has no queue to partition")
	}

	busy := NewServer(cfgFor(ModeIncomplete), init)
	c := NewClient(1, cfgFor(ModeIncomplete), init)
	busy.RegisterClient(1, 0)
	msg, _ := c.Submit(&testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1})
	busy.HandleMsg(1, msg, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("EnablePartition on a non-empty queue did not panic")
		}
	}()
	busy.EnablePartition(2)
}

var _ = fmt.Sprintf
