package core

import (
	"testing"

	"seve/internal/action"
	"seve/internal/wire"
	"seve/internal/world"
)

func crossCheckConfig() Config {
	cfg := cfgFor(ModeIncomplete)
	cfg.FailureTolerant = true
	cfg.CrossCheck = true
	return cfg
}

// TestCrossCheckHonestFleetClean: redundant completions from honest
// clients all match; nobody is flagged.
func TestCrossCheckHonestFleetClean(t *testing.T) {
	init := initWorld(2)
	lb := newLoopback(t, crossCheckConfig(), init, 2)
	// Conflicting actions so both clients evaluate both and both report.
	lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 10})
	for lb.stepServer() {
	}
	lb.submit(2, &testAction{rs: world.NewIDSet(1, 2), ws: world.NewIDSet(2), delta: 100})
	lb.drain()
	lb.requireNoViolations()
	if len(lb.srv.Suspects()) != 0 {
		t.Fatalf("honest fleet flagged: %v", lb.srv.Suspects())
	}
	lb.checkAgainstOracle(init)
}

// TestCrossCheckFlagsLiar: a client reporting a tampered result for
// someone else's action is flagged, and the authoritative state keeps
// the accepted (first) result.
func TestCrossCheckFlagsLiar(t *testing.T) {
	init := initWorld(1)
	cfg := crossCheckConfig()
	srv := NewServer(cfg, init)
	srv.RegisterClient(1, 0)
	srv.RegisterClient(2, 0)
	c1 := NewClient(1, cfg, init)

	a := &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 10}
	a.id = c1.NextActionID()
	m, _ := c1.Submit(a)
	out := srv.HandleSubmit(1, m, 0)
	co := c1.HandleMsg(out.Replies[0].Msg)
	honest := co.ToServer[0].(*wire.Completion)
	srv.HandleCompletion(1, honest)

	// Client 2 "reports" the same action with an inflated value — a
	// classic dupe/speed-hack signature.
	forged := &wire.Completion{Seq: honest.Seq, By: 2, Res: action.Result{OK: true,
		Writes: []world.Write{{ID: 1, Val: world.Value{1_000_000}}}}}
	srv.HandleCompletion(2, forged)

	suspects := srv.Suspects()
	if suspects[2] != 1 {
		t.Fatalf("liar not flagged: %v", suspects)
	}
	if suspects[1] != 0 {
		t.Fatalf("honest client flagged: %v", suspects)
	}
	v, _ := srv.Authoritative().Get(1)
	if v[0] != 11 {
		t.Fatalf("forged result installed: %v", v)
	}
}

// TestCrossCheckPendingDisagreement: a forged report racing the honest
// one (arriving second, before installation of a later action) is also
// caught.
func TestCrossCheckPendingDisagreement(t *testing.T) {
	init := initWorld(2)
	cfg := crossCheckConfig()
	srv := NewServer(cfg, init)
	srv.RegisterClient(1, 0)
	srv.RegisterClient(2, 0)
	c1 := NewClient(1, cfg, init)
	c2 := NewClient(2, cfg, init)

	// Two actions; the completion for seq 1 is withheld so seq 2 stays
	// pending.
	a1 := &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1}
	a1.id = c1.NextActionID()
	m1, _ := c1.Submit(a1)
	out1 := srv.HandleSubmit(1, m1, 0)
	co1 := c1.HandleMsg(out1.Replies[0].Msg)

	a2 := &testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 2}
	a2.id = c2.NextActionID()
	m2, _ := c2.Submit(a2)
	out2 := srv.HandleSubmit(2, m2, 0)
	co2 := c2.HandleMsg(out2.Replies[0].Msg)

	// Honest report for seq 2 first…
	srv.HandleCompletion(2, co2.ToServer[0].(*wire.Completion))
	// …then a forged duplicate while it is still pending.
	srv.HandleCompletion(1, &wire.Completion{Seq: 2, By: 1, Res: action.Result{OK: false}})
	if srv.Suspects()[1] != 1 {
		t.Fatalf("pending-window liar not flagged: %v", srv.Suspects())
	}
	// Now complete seq 1; everything installs with honest values.
	srv.HandleCompletion(1, co1.ToServer[0].(*wire.Completion))
	if srv.Installed() != 2 {
		t.Fatalf("installed = %d", srv.Installed())
	}
}

// TestCrossCheckDisabledByDefault: without the flag, disagreeing
// duplicates are silently ignored (first wins) and nobody is flagged.
func TestCrossCheckDisabledByDefault(t *testing.T) {
	cfg := cfgFor(ModeIncomplete)
	cfg.FailureTolerant = true
	srv := NewServer(cfg, initWorld(1))
	srv.RegisterClient(1, 0)
	c1 := NewClient(1, cfg, initWorld(1))
	a := &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1}
	a.id = c1.NextActionID()
	m, _ := c1.Submit(a)
	out := srv.HandleSubmit(1, m, 0)
	co := c1.HandleMsg(out.Replies[0].Msg)
	srv.HandleCompletion(1, co.ToServer[0].(*wire.Completion))
	srv.HandleCompletion(2, &wire.Completion{Seq: 1, By: 2, Res: action.Result{OK: false}})
	if len(srv.Suspects()) != 0 {
		t.Fatalf("suspects without CrossCheck: %v", srv.Suspects())
	}
}
