package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"seve/internal/action"
	"seve/internal/world"
)

// randomRun drives a random workload through a loopback at the given
// mode and checks every Theorem 1 invariant: no strict-mode violations,
// stable results equal to the serial oracle, ζS equal to the oracle
// state, and submissions fully accounted for as commits + drops.
//
// Deliveries are randomized (FIFO per link but arbitrarily interleaved
// across links), so this explores schedules far beyond the deterministic
// unit tests: stale optimistic evaluations, deep closure chains,
// out-of-order completions, pushes racing replies.
func randomRun(t *testing.T, mode Mode, seed int64) {
	t.Helper()
	randomRunWith(t, seed, func(cfg *Config) { cfg.Mode = mode })
}

// randomRunWith is randomRun with an arbitrary config mutation applied
// on top of the randomized base configuration.
func randomRunWith(t *testing.T, seed int64, mutate func(*Config)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	const nClients = 5
	const nObjects = 8
	const nRounds = 12

	cfg := cfgFor(ModeBasic)
	cfg.MaxSpeed = 0.01
	cfg.Threshold = 120 // some drops in infobound mode, not a bloodbath
	cfg.DefaultRadius = 10
	cfg.FailureTolerant = rng.Intn(2) == 0
	mutate(&cfg)
	mode := cfg.Mode

	init := initWorld(nObjects)
	lb := newLoopback(t, cfg, init, nClients)

	submitted := 0
	for round := 0; round < nRounds; round++ {
		lb.nowMs += float64(rng.Intn(100) + 1)
		// Every client may submit an action over a random object
		// neighbourhood (objects cluster to force conflicts).
		for c := 1; c <= nClients; c++ {
			if rng.Intn(3) == 0 {
				continue // this client idles this round
			}
			base := rng.Intn(nObjects) + 1
			rs := []world.ObjectID{world.ObjectID(base)}
			for k := 0; k < rng.Intn(3); k++ {
				rs = append(rs, world.ObjectID(rng.Intn(nObjects)+1))
			}
			// WS ⊆ RS: pick a nonempty prefix.
			ws := rs[:1+rng.Intn(len(rs))]
			a := &testAction{
				rs:    world.NewIDSet(rs...),
				ws:    world.NewIDSet(ws...),
				delta: float64(rng.Intn(100)),
			}
			if rng.Intn(4) != 0 { // most actions are spatial
				spatialAt(a, rng.Float64()*200, rng.Float64()*200, 5+rng.Float64()*10)
			}
			lb.submit(action.ClientID(c), a)
			submitted++
		}
		// Random partial delivery, interleaved with First Bound ticks.
		steps := rng.Intn(20)
		for s := 0; s < steps; s++ {
			lb.drainRandomStep(rng)
		}
		if mode >= ModeFirstBound && rng.Intn(2) == 0 {
			lb.tick()
		}
	}
	lb.drainRandom(rng)
	if mode >= ModeFirstBound {
		// A final push cycle plus drain flushes anything unpushed.
		lb.nowMs += cfg.PushIntervalMs()
		lb.tick()
		lb.drainRandom(rng)
	}

	lb.requireNoViolations()
	if got := len(lb.commits) + len(lb.drops); got != submitted {
		t.Fatalf("mode %v seed %d: commits (%d) + drops (%d) != submitted (%d)",
			mode, seed, len(lb.commits), len(lb.drops), submitted)
	}
	lb.checkAgainstOracle(init)

	// After quiescence every client's in-flight queue is empty and its
	// optimistic state has converged to its stable state.
	for cid, c := range lb.clients {
		if c.QueueLen() != 0 {
			t.Fatalf("mode %v seed %d: client %d still has %d in-flight actions",
				mode, seed, cid, c.QueueLen())
		}
	}
}

// drainRandomStep performs at most one randomly chosen delivery.
func (lb *loopback) drainRandomStep(rng *rand.Rand) {
	var choices []func() bool
	if len(lb.toServer) > 0 {
		choices = append(choices, lb.stepServer)
	}
	for _, cid := range lb.order {
		if len(lb.toClient[cid]) > 0 {
			cid := cid
			choices = append(choices, func() bool { return lb.stepClient(cid) })
		}
	}
	if len(choices) == 0 {
		return
	}
	choices[rng.Intn(len(choices))]()
}

func TestTheorem1PropertyBasic(t *testing.T) {
	f := func(seed int64) bool {
		randomRun(t, ModeBasic, seed)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem1PropertyIncomplete(t *testing.T) {
	f := func(seed int64) bool {
		randomRun(t, ModeIncomplete, seed)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem1PropertyFirstBound(t *testing.T) {
	f := func(seed int64) bool {
		randomRun(t, ModeFirstBound, seed)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem1PropertyInfoBound(t *testing.T) {
	f := func(seed int64) bool {
		randomRun(t, ModeInfoBound, seed)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestBasicConvergenceAcrossClients: in ModeBasic, once every client has
// received the full log (forced by a final no-op submission from each),
// all stable states are identical.
func TestBasicConvergenceAcrossClients(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	init := initWorld(6)
	lb := newLoopback(t, cfgFor(ModeBasic), init, 4)
	for round := 0; round < 10; round++ {
		for c := 1; c <= 4; c++ {
			obj := world.ObjectID(rng.Intn(6) + 1)
			lb.submit(action.ClientID(c), &testAction{
				rs: world.NewIDSet(obj), ws: world.NewIDSet(obj),
				delta: float64(rng.Intn(50)),
			})
		}
		lb.drainRandom(rng)
	}
	// Final sync: everyone submits once more so Algorithm 2 ships them
	// the tail of the log.
	for c := 1; c <= 4; c++ {
		lb.submit(action.ClientID(c), &testAction{
			rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 0,
		})
	}
	lb.drain()
	lb.requireNoViolations()

	var digests []uint64
	for c := 1; c <= 4; c++ {
		digests = append(digests, lb.clients[action.ClientID(c)].Stable().LatestState().Digest())
	}
	for i := 1; i < len(digests); i++ {
		if digests[i] != digests[0] {
			t.Fatalf("client stable states diverged: digests %v", digests)
		}
	}
	lb.checkAgainstOracle(init)
}

// TestDropFairness: in a symmetric high-contention workload, Information
// Bound drops are spread across clients rather than starving one
// (Section III-E's fairness conjecture).
func TestDropFairness(t *testing.T) {
	const n = 12
	cfg := cfgFor(ModeInfoBound)
	cfg.Threshold = 30
	init := initWorld(n)
	lb := newLoopback(t, cfg, init, n)
	rng := rand.New(rand.NewSource(7))

	// Ring contention, many rounds, randomized service order.
	for round := 0; round < 40; round++ {
		for i := 1; i <= n; i++ {
			left := world.ObjectID(i)
			right := world.ObjectID(i%n + 1)
			// Positions on a wide ring: neighbours ~ within threshold.
			ang := 2 * 3.141592653589793 * float64(i) / n
			a := spatialAt(&testAction{
				rs: world.NewIDSet(left, right), ws: world.NewIDSet(left, right), delta: 1,
			}, 110*cos64(ang), 110*sin64(ang), 3)
			lb.submit(action.ClientID(i), a)
		}
		lb.drainRandom(rng)
	}
	lb.requireNoViolations()
	byClient := lb.srv.DroppedByClient()
	total := lb.srv.TotalDropped()
	if total < n { // expect plenty of drops in 40 contested rounds
		t.Skipf("only %d drops; contention too low for a fairness check", total)
	}
	max := 0
	for _, d := range byClient {
		if d > max {
			max = d
		}
	}
	// No single client absorbs more than half of all drops.
	if max*2 > total {
		t.Fatalf("drop unfairness: one client took %d of %d drops (%v)", max, total, byClient)
	}
	lb.checkAgainstOracle(init)
}

func cos64(x float64) float64 { return math.Cos(x) }
func sin64(x float64) float64 { return math.Sin(x) }
