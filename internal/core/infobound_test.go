package core

import (
	"math"
	"testing"

	"seve/internal/action"
	"seve/internal/world"
)

// infoBoundConfig: threshold 50 so chains spanning more than 50 world
// units break.
func infoBoundConfig() Config {
	cfg := cfgFor(ModeInfoBound)
	cfg.Threshold = 50
	return cfg
}

// TestInfoBoundDropsFarChain: a submission whose conflict chain reaches
// an action farther than the threshold is dropped, the origin client is
// notified, and the client aborts and reconciles it.
func TestInfoBoundDropsFarChain(t *testing.T) {
	init := initWorld(3)
	lb := newLoopback(t, infoBoundConfig(), init, 2)

	// Client 1 writes object 1 at position (0,0); keep it uncommitted.
	lb.submit(1, spatialAt(&testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1}, 0, 0, 5))
	for lb.stepServer() {
	}
	// Client 2, 100 units away (beyond threshold 50), reads object 1:
	// direct conflict with a far action → dropped.
	lb.submit(2, spatialAt(&testAction{rs: world.NewIDSet(1, 2), ws: world.NewIDSet(2), delta: 1}, 100, 0, 5))
	lb.drain()
	lb.requireNoViolations()

	if lb.srv.TotalDropped() != 1 {
		t.Fatalf("dropped = %d, want 1", lb.srv.TotalDropped())
	}
	if len(lb.drops) != 1 {
		t.Fatalf("client saw %d drop notices, want 1", len(lb.drops))
	}
	if lb.clients[2].QueueLen() != 0 {
		t.Fatalf("dropped action still queued at client: %d", lb.clients[2].QueueLen())
	}
	// The dropped action's optimistic write must have been rolled back:
	// object 2's optimistic value equals its stable value.
	ov, _ := lb.clients[2].Optimistic().Get(2)
	sv, _ := lb.clients[2].Stable().Get(2)
	if !ov.Equal(sv) {
		t.Fatalf("optimistic %v != stable %v after drop rollback", ov, sv)
	}
	lb.checkAgainstOracle(init)
}

// TestInfoBoundAcceptsNearChain: the same conflict within the threshold
// is accepted.
func TestInfoBoundAcceptsNearChain(t *testing.T) {
	init := initWorld(3)
	lb := newLoopback(t, infoBoundConfig(), init, 2)
	lb.submit(1, spatialAt(&testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1}, 0, 0, 5))
	for lb.stepServer() {
	}
	lb.submit(2, spatialAt(&testAction{rs: world.NewIDSet(1, 2), ws: world.NewIDSet(2), delta: 1}, 30, 0, 5))
	lb.drain()
	lb.requireNoViolations()
	if lb.srv.TotalDropped() != 0 {
		t.Fatalf("dropped = %d, want 0", lb.srv.TotalDropped())
	}
	if len(lb.commits) != 2 {
		t.Fatalf("commits = %d, want 2", len(lb.commits))
	}
	lb.checkAgainstOracle(init)
}

// TestInfoBoundDiningPhilosophers builds the Section III-E scenario: n
// philosophers in a ring, each grabbing its two adjacent forks in the
// same instant. Direct conflicts involve only neighbours, but the
// transitive closure spans the whole ring. With the ring's circumference
// far exceeding the threshold, the Information Bound Model must drop a
// few requests to break the chain — "by dropping a few actions at
// regular intervals, the chain can be broken into numerous pieces" — and
// must NOT drop everything.
func TestInfoBoundDiningPhilosophers(t *testing.T) {
	const n = 24
	// Forks are objects 1..n. Philosopher i sits at angle 2πi/n on a
	// ring of radius 200 (circumference ~1257 >> threshold 50; adjacent
	// philosophers are ~52 apart > threshold... make radius smaller so
	// neighbours are within threshold but the ring is not).
	// Neighbour distance = 2R·sin(π/n); choose R=150: 2·150·sin(7.5°) ≈ 39
	// < 50, while opposite philosophers are 300 apart.
	const radius = 150.0
	init := initWorld(n)
	lb := newLoopback(t, infoBoundConfig(), init, n)

	// All philosophers grab forks i and i+1 (mod n) "at the same tick":
	// submit everything before the server sees any of it, then drain.
	for i := 1; i <= n; i++ {
		ang := 2 * math.Pi * float64(i) / n
		x, y := radius*math.Cos(ang), radius*math.Sin(ang)
		left := world.ObjectID(i)
		right := world.ObjectID(i%n + 1)
		grab := spatialAt(&testAction{
			rs: world.NewIDSet(left, right), ws: world.NewIDSet(left, right), delta: 1,
		}, x, y, 5)
		lb.submit(action.ClientID(i), grab)
	}
	lb.drain()
	lb.requireNoViolations()

	dropped := lb.srv.TotalDropped()
	if dropped == 0 {
		t.Fatal("ring-spanning chain never broken: no drops")
	}
	if dropped >= n/2 {
		t.Fatalf("chain breaking dropped %d of %d actions; should drop only a few", dropped, n)
	}
	if len(lb.commits)+len(lb.drops) != n {
		t.Fatalf("commits (%d) + drops (%d) != submissions (%d)",
			len(lb.commits), len(lb.drops), n)
	}
	lb.checkAgainstOracle(init)
}

// TestInfoBoundNonSpatialNeverDropped: actions without spatial metadata
// never break chains — they are assumed globally relevant.
func TestInfoBoundNonSpatialNeverDropped(t *testing.T) {
	init := initWorld(2)
	lb := newLoopback(t, infoBoundConfig(), init, 2)
	lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1})
	for lb.stepServer() {
	}
	lb.submit(2, &testAction{rs: world.NewIDSet(1, 2), ws: world.NewIDSet(2), delta: 1})
	lb.drain()
	lb.requireNoViolations()
	if lb.srv.TotalDropped() != 0 {
		t.Fatalf("non-spatial action dropped: %d", lb.srv.TotalDropped())
	}
	lb.checkAgainstOracle(init)
}

// TestChainLength exposes the quantity Algorithm 7 bounds.
func TestChainLength(t *testing.T) {
	init := initWorld(4)
	cfg := infoBoundConfig()
	srv := NewServer(cfg, init)
	srv.RegisterClient(1, 0)
	c1 := NewClient(1, cfg, init)
	// Queue a chain: a1 writes 1; a2 reads {1,2} writes 2; a3 reads
	// {2,3} writes 3. Chain of an action reading 3: a3 → a2 → a1.
	chain := []struct{ rs, ws world.IDSet }{
		{world.NewIDSet(1), world.NewIDSet(1)},
		{world.NewIDSet(1, 2), world.NewIDSet(2)},
		{world.NewIDSet(2, 3), world.NewIDSet(3)},
	}
	for _, c := range chain {
		a := spatialAt(&testAction{rs: c.rs, ws: c.ws, delta: 1}, 0, 0, 5)
		a.id = c1.NextActionID()
		m, _ := c1.Submit(a)
		srv.HandleSubmit(1, m, 0)
	}
	if got := srv.ChainLength(world.NewIDSet(3)); got != 3 {
		t.Fatalf("ChainLength = %d, want 3", got)
	}
	if got := srv.ChainLength(world.NewIDSet(4)); got != 0 {
		t.Fatalf("ChainLength of untouched object = %d, want 0", got)
	}
	// Note: per Algorithm 7's replace-semantics (S ← (S−WS)∪RS), reading
	// object 2 chains through a2 then a1 but not a3.
	if got := srv.ChainLength(world.NewIDSet(2)); got != 2 {
		t.Fatalf("ChainLength(2) = %d, want 2", got)
	}
}
