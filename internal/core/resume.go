package core

import (
	"slices"

	"seve/internal/action"
	"seve/internal/integrity"
	"seve/internal/wire"
	"seve/internal/world"
)

// Session resume: the reconnect/catch-up layer over the Incomplete
// World Model. The primitive the paper already provides — the blind
// write W(S, ζS(S)) that seeds a client's missing read set (Algorithm
// 6, correct by Theorem 1) — generalizes directly to crash recovery:
// a reconnecting client either replays the exact suffix of batches it
// missed (the server retains a bounded per-client window), or, when
// the gap exceeds the window, receives W(S, ζS(S)) over the entire
// state at the server's install point and rebuilds ζCS/ζCO from it.
// Either way Theorem 1's guarantee is restored: every value the
// client's stable store holds at version v is the serial-replay value
// as of v.

// dropRingCap bounds the per-session list of dropped action ids a
// CatchUp replays. Drops accumulate only between reconnects of a
// client that keeps submitting invalid actions; overflow forgets the
// oldest notice (the client would keep one stale queue entry — it
// also gets a violation from the unknown-commit path, so the loss is
// observable).
const dropRingCap = 4096

// session is what the server retains about a client across
// disconnects when Config.ResumeWindow > 0.
type session struct {
	token uint64
	mask  uint64
	// seqNo is the mint order the token was derived from, journaled so
	// a restarted server resumes the token counter past it.
	seqNo uint64
	// recovered marks a session rebuilt from the durable journal: its
	// first resume may legitimately present a LastBatchSeq ahead of the
	// recovered window (the crash lost the journal tail), which degrades
	// to the snapshot path instead of a rejection.
	recovered bool
	// lastSeq is the ClientSeq of the newest batch ever sent (the high
	// end of the retained window).
	lastSeq uint64
	// lastActSeq is the per-client action sequence number of the newest
	// submission accepted or dropped — the duplicate-submission
	// high-water mark.
	lastActSeq uint32
	// retained is the suffix window: up to Config.ResumeWindow committed
	// batches, contiguous, ending at lastSeq.
	retained []*wire.Batch
	// drops lists actions the Information Bound Model invalidated, kept
	// so a CatchUp can replay Drop notices lost with the connection.
	drops []action.ID
}

func (sess *session) recordDrop(id action.ID) {
	if len(sess.drops) >= dropRingCap {
		n := copy(sess.drops, sess.drops[1:])
		sess.drops = sess.drops[:n]
	}
	sess.drops = append(sess.drops, id)
}

// mixToken is splitmix64's finalizer: session tokens are deterministic
// (the shard replay differential re-mints them identically) but not
// trivially sequential on the wire.
func mixToken(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e9b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// openSession creates or resets the client's session at registration.
// A re-registration through RegisterClient is a fresh join (a resumed
// client never re-registers — HandleResume revives its clientInfo
// directly), so the window and high-water marks reset while the token
// stays stable per client id.
func (s *Server) openSession(id action.ClientID, mask uint64) {
	if s.cfg.ResumeWindow <= 0 {
		return
	}
	sess := s.sessions[id]
	if sess == nil {
		s.sessionSeq++
		sess = &session{token: mixToken(s.sessionSeq), seqNo: s.sessionSeq}
		s.sessions[id] = sess
		s.tokenOwner[sess.token] = id
	}
	sess.mask = mask
	sess.lastSeq = 0
	sess.lastActSeq = 0
	sess.retained = nil
	sess.drops = nil
	sess.recovered = false
	if s.journal != nil {
		// stampFloor scopes the recovered dedup floor to this
		// registration: everything stamped so far belongs to previous
		// generations of the client id.
		s.journal.SessionOpen(id, sess.token, mask, sess.seqNo, s.nextSeq)
	}
}

// SessionToken returns the resume token for a registered client, or 0
// when sessions are disabled or the client is unknown.
func (s *Server) SessionToken(id action.ClientID) uint64 {
	if sess := s.sessions[id]; sess != nil {
		return sess.token
	}
	return 0
}

// retainBatch records a freshly sequenced batch in the client's resume
// window, evicting the oldest once the window is full. No-op without a
// session.
func (s *Server) retainBatch(cid action.ClientID, b *wire.Batch) {
	sess := s.sessions[cid]
	if sess == nil {
		return
	}
	sess.lastSeq = b.ClientSeq
	if s.journal != nil {
		// May run on a lane worker (CommitLane sequences batches there);
		// the Journal contract admits concurrent BatchRetained calls.
		s.journal.BatchRetained(cid, b)
	}
	if len(sess.retained) >= s.cfg.ResumeWindow {
		n := copy(sess.retained, sess.retained[1:])
		sess.retained[n] = b
		return
	}
	sess.retained = append(sess.retained, b)
}

// retainedBatches gauges the total batches held across all sessions.
func (s *Server) retainedBatches() int {
	n := 0
	for _, sess := range s.sessions {
		n += len(sess.retained)
	}
	return n
}

// HandleResume answers a reconnecting client (Resumer contract). The
// token resolves the session; the client's LastBatchSeq picks the
// resume strategy:
//
//   - Suffix replay: every batch in (LastBatchSeq, lastSeq] is still
//     retained, so the CatchUp verdict is followed by exactly those
//     batches and the client continues as if the connection had merely
//     stalled.
//   - Snapshot fallback: the window no longer reaches back far enough.
//     The client's sent() bits are cleared (its stable store is about
//     to be rebuilt, so nothing it was ever sent can be assumed held),
//     the CatchUp carries W(S, ζS(S)) over the full state at the
//     install point, and one closure batch re-delivers the client's own
//     uncommitted actions with their Algorithm 6 dependencies.
//
// Rejections (unknown token, sessions disabled, a LastBatchSeq ahead of
// anything ever sent) return id 0 and a CatchUp{OK: false} addressed
// To: 0; the transport routes that to the connection the Resume
// arrived on and drops it.
func (s *Server) HandleResume(m *wire.Resume, nowMs float64) (action.ClientID, ServerOutput) {
	var out ServerOutput
	cid, ok := s.tokenOwner[m.Token]
	sess := s.sessions[cid]
	// A LastBatchSeq ahead of anything ever sent is a protocol violation
	// on a live session — but the expected shape of the first resume
	// against a restarted server, whose journal may have lost the tail
	// of the window. Recovered sessions degrade to the snapshot path
	// instead of rejecting.
	ahead := sess != nil && m.LastBatchSeq > sess.lastSeq
	if !ok || sess == nil || sess.token != m.Token || (ahead && !sess.recovered) {
		s.resumesRejected++
		out.Replies = append(out.Replies, Reply{
			To: 0, Msg: &wire.CatchUp{},
			// Resume verdicts are session control flow: never shed.
			Deliver: Delivery{Class: DeliveryOrdered},
		})
		return 0, out
	}

	// A quarantined ledger outlives the session (and a crash-restart, via
	// the journal): the resume is refused with a fresh verdict so the
	// reconnecting client learns why, and the transport drops the
	// connection like any other rejection (DESIGN.md §16).
	if s.Quarantined(cid) {
		s.resumesRejected++
		s.quarantineRejected++
		out.Replies = append(out.Replies, Reply{
			To: 0, Msg: &wire.Quarantine{Reason: uint8(integrity.ViolationQuarantined)},
			Deliver: Delivery{Class: DeliveryOrdered},
		})
		return 0, out
	}

	// Revive the client if the disconnect unregistered it. claimSlot
	// restores the old sent-bitmap slot, and nextBatchSeq continues the
	// session's numbering — from the client's own high-water mark when
	// the recovered journal runs behind it, so ClientSeq stays monotonic
	// for the client across the restart.
	ci := s.clients[cid]
	if ci == nil {
		ci = &clientInfo{interest: sess.mask, slot: s.claimSlot(cid), nextBatchSeq: max(sess.lastSeq, m.LastBatchSeq)}
		s.clients[cid] = ci
	}
	recovered := sess.recovered
	sess.recovered = false // one restart, one degraded resume

	drops := slices.Clone(sess.drops)

	// The window covers the gap when there is no gap at all, or when the
	// oldest retained batch is at or before the first one missing. The
	// retained slice is contiguous and ends at lastSeq by construction.
	covered := !ahead && (m.LastBatchSeq == sess.lastSeq ||
		(len(sess.retained) > 0 && sess.retained[0].ClientSeq <= m.LastBatchSeq+1))
	if covered {
		s.resumesSuffix++
		if recovered {
			s.resumesRecovered++
		}
		out.Replies = append(out.Replies, Reply{To: cid, Msg: &wire.CatchUp{
			OK:            true,
			Boot:          s.boot,
			BootFloor:     s.bootFloor,
			InstalledUpTo: s.installed,
			LastActSeq:    sess.lastActSeq,
			DroppedActs:   drops,
		},
			// Resume verdicts are session control flow: never shed.
			Deliver: Delivery{Class: DeliveryOrdered}})
		for _, b := range sess.retained {
			if b.ClientSeq > m.LastBatchSeq {
				out.Replies = append(out.Replies, Reply{To: cid, Msg: b,
					Deliver: Delivery{Class: DeliveryBatch, Epoch: b.ClientSeq}})
			}
		}
		return cid, out
	}

	// Snapshot fallback. The client rebuilds from ζS at the install
	// point, so every sent() bit it holds is void.
	s.resumesSnapshot++
	if recovered {
		s.resumesRecovered++
	}
	s.snapshotOut(cid, ci, sess, &out)
	return cid, out
}

// snapshotOut appends the blind-write catch-up for cid to out: the
// CatchUp verdict carrying W(S, ζS(S)) at the install point, followed —
// when the client still has uncommitted actions queued — by one closure
// batch re-delivering them with their Algorithm 6 dependencies. Shared
// by the resume snapshot fallback and the transport's mid-session
// SnapshotCatchUp; either way Theorem 1 covers the rebuild.
func (s *Server) snapshotOut(cid action.ClientID, ci *clientInfo, sess *session, out *ServerOutput) {
	var seeds []int
	for i, e := range s.queue {
		e.sent.clear(ci.slot)
		if e.env.Origin == cid {
			seeds = append(seeds, i)
		}
	}
	writes := s.snapshotWrites()
	fp := make([]world.ObjectID, len(writes))
	for i, w := range writes {
		fp[i] = w.ID
	}
	out.Replies = append(out.Replies, Reply{
		To: cid,
		Msg: &wire.CatchUp{
			OK:            true,
			Boot:          s.boot,
			BootFloor:     s.bootFloor,
			Snapshot:      true,
			InstalledUpTo: s.installed,
			NextBatchSeq:  ci.nextBatchSeq + 1,
			LastActSeq:    sess.lastActSeq,
			DroppedActs:   slices.Clone(sess.drops),
			Writes:        writes,
		},
		Deliver: Delivery{Class: DeliverySnapshot, Footprint: fp, Epoch: ci.nextBatchSeq + 1},
	})

	// Re-deliver the client's own uncommitted actions as one closure
	// batch: Algorithm 6 with the still-queued submissions as seeds. The
	// batch takes NextBatchSeq (sequence() numbers and retains it), so
	// the client processes it first after the rebuild and its own
	// actions commit in submission order.
	if len(seeds) > 0 {
		v := s.globalView()
		positions, ws, st := s.closureWalk(&v, seeds, s.scratchFor(0), func(j int, e *entry) bool {
			return e.sent.has(ci.slot)
		})
		s.noteWalk(st, out)
		envs := make([]action.Envelope, 0, len(positions)+1)
		if len(ws) > 0 {
			envs = append(envs, action.Envelope{
				Seq:    s.installed,
				Origin: action.OriginServer,
				Act:    action.NewBlindWrite(s.nextBlindID(), ws),
			})
		}
		for _, j := range positions {
			s.queue[j].sent.set(ci.slot)
			envs = append(envs, s.queue[j].env)
		}
		b := s.sequence(cid, &wire.Batch{Envs: envs, InstalledUpTo: s.installed})
		out.Replies = append(out.Replies, Reply{
			To:      cid,
			Msg:     b,
			Deliver: Delivery{Class: DeliveryBatch, Footprint: s.planFootprint(&v, positions, ws), Epoch: b.ClientSeq},
		})
	}
}

// SnapshotCatchUp issues a mid-session blind-write catch-up for a
// connected client (Superseder contract): the same Algorithm 6
// primitive the resume path degrades to, invoked by the transport when
// a client's delivery queue overflows with frames that cannot be
// superseded safely. The replies replace everything queued for the
// client: the snapshot re-seeds its stable store at the install point,
// the seeds batch re-delivers its own uncommitted actions, sent() bits
// are cleared so future closures re-deliver what the discarded frames
// carried, and the CatchUp's DroppedActs replay covers discarded Drop
// notices. Returns an empty output when the client has no live session
// or registration (superseding requires Config.ResumeWindow > 0).
func (s *Server) SnapshotCatchUp(id action.ClientID, nowMs float64) ServerOutput {
	var out ServerOutput
	ci, sess := s.clients[id], s.sessions[id]
	if ci == nil || sess == nil {
		return out
	}
	s.snapshotFallbacks++
	s.snapshotOut(id, ci, sess, &out)
	return out
}

// snapshotWrites flattens ζS into the CatchUp blind-write payload:
// every object's authoritative value at the install point, in
// ascending id order (the deterministic-iteration contract every wire
// emission obeys). Values are cloned — the payload outlives this call.
func (s *Server) snapshotWrites() []world.Write {
	ids := s.zs.IDs()
	writes := make([]world.Write, 0, len(ids))
	for _, id := range ids {
		if v, ok := s.zs.Get(id); ok {
			writes = append(writes, world.Write{ID: id, Val: v.Clone()})
		}
	}
	return writes
}
