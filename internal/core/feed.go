package core

import (
	"seve/internal/action"
	"seve/internal/wire"
)

// The commit feed: the engine-side half of the durability pipeline
// (DESIGN.md §15). Instead of a per-install callback, the engine emits
// one grouped record per InstallContiguous pass — the seal-boundary
// granularity the six-pass pipeline already commits at — plus the
// session-layer records (session opens, retained batches) that let a
// restarted server rebuild its resume layer and serve Resume{token}
// against itself.

// CommitRecord is one installed action as the journal sees it: the
// global serial position, the owner lane the shard router stamped it
// on (-1 for spanning/global entries), the submitting client and its
// per-client action sequence number (the recovery-side source of the
// lastActSeq dedup floors), and the installed Result.
type CommitRecord struct {
	Seq    uint64
	Lane   int32
	Origin action.ClientID
	ActSeq uint32
	Res    action.Result
}

// Journal observes the engine's durable feed. CommitGroup and
// SessionOpen are called on the engine's sequential entry points;
// BatchRetained may be called from parallel lane workers inside one
// epoch (distinct clients are pinned to distinct lanes, so per-client
// record order is still causal). Implementations must therefore accept
// concurrent BatchRetained calls; package durable satisfies this by
// encoding into a pooled buffer and handing ownership to its committer
// goroutine over a channel.
type Journal interface {
	// CommitGroup delivers one install pass: the contiguous records in
	// serial order, the epoch counter of the pass, and the blind-write
	// high-water mark after it (journaled so a restarted server never
	// re-mints a blind id a client may still hold).
	CommitGroup(epoch uint64, nextBlind uint32, recs []CommitRecord)
	// SessionOpen records a session mint or reset: the stable token, the
	// interest mask, the mint order (for restoring the token counter) and
	// stampFloor, the global stamp high-water at open time. Commits with
	// Seq <= stampFloor belong to a previous registration of the same
	// client id and must not contribute to its recovered dedup floor.
	SessionOpen(id action.ClientID, token, mask, seqNo, stampFloor uint64)
	// BatchRetained records a batch entering the client's resume window.
	BatchRetained(id action.ClientID, b *wire.Batch)
}

// QuarantineJournal is optionally implemented by journals that persist
// integrity quarantine verdicts (DESIGN.md §16). It is a separate
// interface so existing Journal implementations keep compiling; the
// engine type-asserts at verdict time. Called on the engine's
// sequential entry points.
type QuarantineJournal interface {
	// ClientQuarantined records a verdict: the client, the
	// integrity.Violation reason code, and the serial position of the
	// offending completion (zero when not position-tied).
	ClientQuarantined(id action.ClientID, reason uint8, seq uint64)
}

// QuarantineRecord is one recovered quarantine verdict.
type QuarantineRecord struct {
	ID     action.ClientID
	Reason uint8
	Seq    uint64
}

// SessionRecord is one recovered session: everything Restore needs to
// let the client behind Token resume against the restarted server.
type SessionRecord struct {
	ID    action.ClientID
	Token uint64
	Mask  uint64
	// SeqNo is the mint order (the sessionSeq value the token was derived
	// from); the restored token counter resumes past the maximum.
	SeqNo uint64
	// LastActSeq is the recovered dedup floor: the highest per-client
	// action sequence number committed at or below the recovered install
	// point within the session's current registration.
	LastActSeq uint32
	// LastSeq is the ClientSeq of the newest batch journaled for the
	// session.
	LastSeq uint64
	// Retained is the recovered resume window — only when it is clean: a
	// contiguous run ending at LastSeq whose every envelope and install
	// marker is at or below the recovered install point. A dirty window
	// (it references state the crash lost) is dropped and the session
	// resumes by snapshot instead.
	Retained []*wire.Batch
}

// RestoreState rewinds a freshly constructed engine to the recovered
// durable point: the install/stamp watermark, the blind-write and
// session-token counters, the boot generation, and the session table.
type RestoreState struct {
	// UpTo is the recovered install point; both installed and nextSeq
	// resume there (serial positions above it were lost with the crash
	// and are re-issued — safe because every recovered session resumes
	// through a path that discards state referencing them).
	UpTo uint64
	// NextBlind is the recovered blind-write high-water mark.
	NextBlind uint32
	// Boot is the recovery generation, incremented per Open of the
	// durable store. CatchUp verdicts carry it so clients can fence
	// retained completions minted against a previous boot (re-sending
	// them could poison re-issued serial positions).
	Boot uint64
	// SessionSeq is the recovered token-mint counter.
	SessionSeq uint64
	Sessions   []SessionRecord
	// Quarantined is the recovered quarantine set: verdicts journaled
	// before the crash stay latched, so a cheater cannot launder its
	// ledger through a server restart.
	Quarantined []QuarantineRecord
}

// Restorer is implemented by engines that can resume from a durable
// recovery. Restore must be called once, before any client traffic,
// on an engine constructed over the recovered state.
type Restorer interface {
	Restore(rec RestoreState)
	// Boot reports the engine's recovery generation (zero when the
	// engine never restored).
	Boot() uint64
}

// Restore rewinds the engine to the recovered durable point. The
// engine must be freshly constructed (no clients, empty queue) over
// the recovered ζS.
func (s *Server) Restore(rec RestoreState) {
	if len(s.clients) != 0 || len(s.queue) != 0 || s.installed != 0 {
		panic("core: Restore on a used engine")
	}
	s.installed = rec.UpTo
	s.nextSeq = rec.UpTo
	s.nextBlind = rec.NextBlind
	s.boot = rec.Boot
	s.bootFloor = rec.UpTo
	s.sessionSeq = rec.SessionSeq
	for _, sr := range rec.Sessions {
		sess := &session{
			token:      sr.Token,
			mask:       sr.Mask,
			seqNo:      sr.SeqNo,
			lastSeq:    sr.LastSeq,
			lastActSeq: sr.LastActSeq,
			retained:   sr.Retained,
			recovered:  true,
		}
		s.sessions[sr.ID] = sess
		s.tokenOwner[sr.Token] = sr.ID
	}
	for _, qr := range rec.Quarantined {
		s.ledgerOf(qr.ID).Quarantined = true
	}
}

// Boot reports the engine's recovery generation.
func (s *Server) Boot() uint64 { return s.boot }

// emitCommitGroup feeds one install pass to the journal: the records
// are assembled into a reusable scratch slice on the engine thread and
// handed over as one group, preserving the seal pass's merge order.
func (s *Server) emitCommitGroup(batch []*entry) {
	recs := s.feedRecs[:0]
	for _, e := range batch {
		recs = append(recs, CommitRecord{
			Seq:    e.env.Seq,
			Lane:   e.lane,
			Origin: e.env.Origin,
			ActSeq: e.env.Act.ID().Seq,
			Res:    s.pendingRes[e.env.Seq],
		})
	}
	s.installEpoch++
	s.journal.CommitGroup(s.installEpoch, s.nextBlind, recs)
	for i := range recs {
		recs[i] = CommitRecord{}
	}
	s.feedRecs = recs[:0]
}
