// Package core implements the action-based consistency protocols of
// Section III — the paper's primary contribution. The Client and Server
// types are transport-agnostic state machines: the same engines run under
// the discrete-event simulator (package experiments) and over real TCP
// (cmd/seve-server, cmd/seve-client).
//
// Protocol levels build on each other exactly as in the paper:
//
//   - ModeBasic — Algorithms 1–3. The server timestamps and serializes
//     every action and every client evaluates all of them. One-RTT
//     response, full consistency, no scalability.
//   - ModeIncomplete — Algorithms 4–6 (the Incomplete World Model). The
//     server maintains the authoritative state ζS from completion
//     messages and sends each client only the transitive closure of
//     actions that affect its submissions, seeded by a blind write.
//   - ModeFirstBound — adds the First Bound Model (Section III-D): the
//     server proactively pushes, every ω·RTT, the actions whose influence
//     spheres satisfy Equation (1) for the client, bounding response time
//     by (1+ω)·RTT.
//   - ModeInfoBound — adds the Information Bound Model (Algorithm 7):
//     actions whose transitive conflict chains span farther than a
//     distance threshold are dropped at submission, bounding the size of
//     every closure (Equation 2). This is the full SEVE configuration
//     evaluated in Section V.
package core

import "fmt"

// Mode selects the protocol level. Each level includes all the machinery
// of the levels below it.
type Mode int

// Protocol levels, in increasing order of machinery.
const (
	ModeBasic Mode = iota
	ModeIncomplete
	ModeFirstBound
	ModeInfoBound
)

// String names the mode for diagnostics and experiment tables.
func (m Mode) String() string {
	switch m {
	case ModeBasic:
		return "basic"
	case ModeIncomplete:
		return "incomplete"
	case ModeFirstBound:
		return "firstbound"
	case ModeInfoBound:
		return "infobound"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config carries the protocol parameters shared by the server and its
// clients. The defaults mirror Table I of the paper.
type Config struct {
	// Mode is the protocol level.
	Mode Mode

	// Omega is ω ∈ (0, 1), the First Bound push interval as a fraction
	// of RTT. The response-time bound is (1+ω)·RTT.
	Omega float64

	// RTTMs is the client↔server round-trip time in milliseconds used in
	// Equations (1) and (2). The paper's testbed had 238 ms one-way
	// latency, i.e. RTT 476 ms.
	RTTMs float64

	// MaxSpeed is s, the maximum rate of change of any object's position
	// in world units per millisecond (Section III-D).
	MaxSpeed float64

	// Threshold is the Information Bound chain-breaking distance: a
	// submitted action is dropped if its transitive conflict chain
	// contains an action farther away than this (Algorithm 7). Table I
	// sets it to 1.5 × avatar visibility.
	Threshold float64

	// DefaultRadius is the influence radius assumed for actions that do
	// not implement action.Spatial, and the default rC for clients that
	// have not yet submitted a spatial action.
	DefaultRadius float64

	// Strict makes engines verify that every action's actual reads and
	// writes stay inside its declared RS/WS, and records any stable-state
	// read of a never-delivered object as a protocol violation. Tests run
	// strict; experiments may disable it for speed.
	Strict bool

	// FailureTolerant enables the Section III-C extension: every client
	// sends completion messages for every action it applies, not only its
	// own, so the server can install an action as long as any client that
	// evaluated it survives.
	FailureTolerant bool

	// InterestFilter enables inconsequential action elimination
	// (Section IV-A): First Bound pushes skip actions whose interest
	// class the client did not subscribe to. Closure replies are never
	// filtered — consistency of submitted actions always wins.
	InterestFilter bool

	// AreaCulling enables the Section IV-B refinement: actions
	// implementing action.Moving are push-filtered by their projected
	// position rather than a static influence sphere.
	AreaCulling bool

	// RecordHistory makes the server retain every stamped envelope so
	// tests can replay the serial order through an oracle. Costs memory;
	// off in benchmarks.
	RecordHistory bool

	// DisableGC stops clients from pruning stable-store versions at the
	// server's installed point (the Section III-C memory optimization).
	// Exists for the GC ablation; leave false in real deployments.
	DisableGC bool

	// HybridRelay delegates First Bound push fan-out to one relay client
	// per neighbourhood cell, which forwards the shared batch peer-to-
	// peer (the Section VII hybrid architecture). Requires
	// ModeFirstBound or above.
	HybridRelay bool

	// PushWorkers bounds the worker pool the First Bound push scheduler
	// fans per-client closure planning over. 0 picks a width automatically
	// (up to GOMAXPROCS, sequential for small client sets); 1 forces the
	// sequential path. The scheduler's output is byte-identical for every
	// width — planning is read-only and commits happen in client order —
	// so this is purely a throughput knob.
	PushWorkers int

	// DisableConflictIndex makes the analysis walks scan the full
	// uncommitted queue instead of consulting the reverse conflict index.
	// Exists for the index ablation and equivalence tests; leave false in
	// real deployments.
	DisableConflictIndex bool

	// MaxPendingBatches caps the client's out-of-order batch buffer: a
	// relayed batch whose predecessor never arrives would otherwise make
	// the client buffer every later batch forever. 0 means
	// DefaultMaxPendingBatches; negative means unbounded (tests only).
	// Overflow drops the arriving batch and reports a violation.
	MaxPendingBatches int

	// DisableIncrementalReconcile makes Algorithm 3 roll back the full
	// WS(Q) ∪ resolved write set from ζCS and re-clone every optimistic
	// result, instead of copying only the tracked divergence set through
	// scratch buffers. Exists for the reconciliation ablation and
	// equivalence tests; leave false in real deployments.
	DisableIncrementalReconcile bool

	// Shards selects the spatially partitioned sharded serializer
	// (package shard): N lanes own disjoint regions of the object space,
	// submissions are routed to the lane owning their read/write-set
	// footprint, and lane analysis fans out over one goroutine per
	// shard while the merged (epoch, shardLane, localSeq) order is
	// stamped sequentially. 0 or 1 means the single-lane *Server.
	// Honored by shard.NewEngine; NewServer itself is always one lane.
	Shards int

	// DisableSharding forces the single-lane engine even when Shards is
	// set. Exists for the sharding ablation and the differential
	// equivalence tests (TestShardedEquivalence); leave false in real
	// deployments.
	DisableSharding bool

	// ShardCellSize is the edge length of the spatial ownership grid the
	// shard router partitions the world into. 0 picks a default from the
	// influence reach (2s·(1+ω)·RTT + 2·DefaultRadius).
	ShardCellSize float64

	// ResumeWindow enables session resume (TypeResume/TypeCatchUp): the
	// server retains up to this many committed batches per client and, on
	// reconnect, replays the suffix the client missed. A client whose gap
	// exceeds the window degrades to a full blind-write snapshot of ζS —
	// W(S, ζS(S)) generalized to the whole state (Algorithm 6 / Theorem 1
	// applied as a catch-up primitive). 0 disables sessions entirely
	// (disconnect loses the client, as before). Requires ModeIncomplete or
	// above: ModeBasic has no authoritative state to snapshot from.
	ResumeWindow int

	// DisableSuperseding forces the transport's per-client delivery queue
	// back to plain bounded-FIFO-with-drops even when ResumeWindow would
	// allow the superseding queue (DESIGN.md §13). Exists for the
	// supersession ablation and the differential equivalence tests
	// (TestSupersedingEquivalence); leave false in real deployments.
	DisableSuperseding bool

	// CrossCheck makes the server compare redundant completion reports
	// for the same action against the accepted result and flag clients
	// whose reports disagree — the paper's Section II-B observation that
	// "the servers can also log MMO statistics to detect any cheating or
	// security threat", made concrete. Only meaningful together with
	// FailureTolerant (otherwise each action has a single reporter).
	CrossCheck bool

	// DisableIntegrity turns off the server-side semantic integrity
	// layer (internal/integrity, DESIGN.md §16): completion validation
	// against the declared WS ⊆ RS contract and footprint, sampled
	// re-execution audits, replay cross-checks, and the per-client
	// influence bounds below. Exists for the integrity ablation and the
	// differential equivalence tests (TestIntegrityEquivalence); leave
	// false in real deployments — a million-user service cannot trust
	// client completion messages.
	DisableIntegrity bool

	// AuditRate is the fraction of completions the integrity auditor
	// re-executes against ζS at their serial point, in [0, 1]. Sampling
	// is deterministic per client (seeded splitmix64), so the schedule
	// replays identically through the effective log and across restarts.
	// 0 disables audits; validation and bounds still apply.
	AuditRate float64

	// MaxSubmitRate caps each client's submissions per second through a
	// token bucket over the engine's deterministic clock; rate-exceeding
	// submissions are dropped with a violation counter. 0 = unlimited.
	MaxSubmitRate float64

	// SubmitBurst is the token-bucket depth for MaxSubmitRate; values
	// below 1 are treated as 1.
	SubmitBurst int

	// MaxWriteSet caps the declared write-set size of a submitted
	// action. 0 = unlimited.
	MaxWriteSet int

	// MaxInfluenceRadius caps the declared influence-sphere radius of a
	// submitted spatial action. 0 = unlimited.
	MaxInfluenceRadius float64
}

// DefaultConfig returns the Table I parameterization: full SEVE at
// RTT 476 ms, ω = 0.5, max speed 0.01 units/ms, move effect range 10,
// threshold 45 (1.5 × the 30-unit avatar visibility).
func DefaultConfig() Config {
	return Config{
		Mode:          ModeInfoBound,
		Omega:         0.5,
		RTTMs:         476,
		MaxSpeed:      0.01,
		Threshold:     45,
		DefaultRadius: 10,
		AuditRate:     0.05,
	}
}

// PushIntervalMs returns the First Bound push period ω·RTT.
func (c Config) PushIntervalMs() float64 { return c.Omega * c.RTTMs }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Mode < ModeBasic || c.Mode > ModeInfoBound {
		return fmt.Errorf("core: invalid mode %d", int(c.Mode))
	}
	if c.Mode >= ModeFirstBound {
		if c.Omega <= 0 || c.Omega >= 1 {
			return fmt.Errorf("core: omega must be in (0,1), got %v", c.Omega)
		}
		if c.RTTMs <= 0 {
			return fmt.Errorf("core: RTT must be positive, got %v", c.RTTMs)
		}
	}
	if c.Mode >= ModeInfoBound && c.Threshold <= 0 {
		return fmt.Errorf("core: threshold must be positive, got %v", c.Threshold)
	}
	if c.PushWorkers < 0 {
		return fmt.Errorf("core: push workers must be non-negative, got %d", c.PushWorkers)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: shards must be non-negative, got %d", c.Shards)
	}
	if c.ShardCellSize < 0 {
		return fmt.Errorf("core: shard cell size must be non-negative, got %v", c.ShardCellSize)
	}
	if c.HybridRelay && c.Mode < ModeFirstBound {
		return fmt.Errorf("core: hybrid relay requires the First Bound push path (mode %v)", c.Mode)
	}
	if c.ResumeWindow < 0 {
		return fmt.Errorf("core: resume window must be non-negative, got %d", c.ResumeWindow)
	}
	if c.ResumeWindow > 0 && c.Mode == ModeBasic {
		return fmt.Errorf("core: session resume requires ModeIncomplete or above (no ζS to snapshot in mode %v)", c.Mode)
	}
	if c.AuditRate < 0 || c.AuditRate > 1 {
		return fmt.Errorf("core: audit rate must be in [0,1], got %v", c.AuditRate)
	}
	if c.MaxSubmitRate < 0 {
		return fmt.Errorf("core: max submit rate must be non-negative, got %v", c.MaxSubmitRate)
	}
	if c.SubmitBurst < 0 {
		return fmt.Errorf("core: submit burst must be non-negative, got %d", c.SubmitBurst)
	}
	if c.MaxWriteSet < 0 {
		return fmt.Errorf("core: max write set must be non-negative, got %d", c.MaxWriteSet)
	}
	if c.MaxInfluenceRadius < 0 {
		return fmt.Errorf("core: max influence radius must be non-negative, got %v", c.MaxInfluenceRadius)
	}
	return nil
}
