package core

import (
	"seve/internal/action"
	"seve/internal/integrity"
	"seve/internal/wire"
)

// Lane-partitioned engine state: the sharding SPI that lets the shard
// router run stamp, plan, AND commit on parallel lane workers while the
// engine's observable outputs stay byte-identical to fully sequential
// processing.
//
// A partitioned engine (EnablePartition) mirrors the uncommitted queue
// into per-lane segments: every accepted lane-local action lives in the
// global queue under its global Seq and in its owner lane's segment
// under a lane-local laneSeq, with laneWriters as the lane-numbered
// reverse conflict index. Because the router's routing guarantees a
// lane-local action's whole footprint is owned by one lane, and because
// the router falls back to global stamping while any spanning ("bridge")
// entry is live, an analysis walk seeded in lane L can never leave L's
// segment — the lane view visits exactly the entries the global view
// would have acted on, in the same relative order, so closures, validity
// chains, and blind writes come out identical (TestShardedEquivalence).
//
// The flush pipeline the router drives (shard/router.go):
//
//	installs → StampLane* → SealStamp → PlanReply* → PreCommit →
//	CommitLane* → SealCommit            (* = parallel, one worker/lane)
//
// Parallel phases touch only lane-affine state: the lane's segment and
// writer rows, the pending's entry, and the submitting client's session
// and clientInfo (the router pins each client to one lane per epoch).
// Everything whose cross-lane order is observable — global Seqs, the
// global queue and index, blind-write ids, shared counters, the reply
// order — is applied by the sequential Seal/PreCommit passes in the
// deterministic merge order (epoch, lane, lane-local arrival).
type laneSeg struct {
	// queue is the lane's segment of the uncommitted queue, ordered by
	// global Seq; queue[i].laneSeq == installed + 1 + i.
	queue  []*entry
	popped int
	// nextSeq numbers the lane's accepted entries (laneSeq).
	nextSeq uint64
	// installed is the lane-local install watermark (the laneSeq of the
	// lane's newest installed entry).
	installed uint64

	compactions       int
	writerCompactions int
}

// EnablePartition mirrors engine state into n per-lane segments and
// partitions ζS for segment-parallel installs. The shard router calls
// it once at construction, before any submission; it requires an empty
// queue and an incomplete-world mode (ModeBasic keeps no queue to
// partition).
//
//seve:lane-seal
func (s *Server) EnablePartition(n int) {
	if n < 2 || s.cfg.Mode < ModeIncomplete {
		return
	}
	if len(s.queue) != 0 {
		panic("core: EnablePartition on a non-empty queue")
	}
	s.lanes = make([]laneSeg, n)
	s.zs.Partition(n)
	s.growWriters()
}

// Partitioned reports whether per-lane segments are maintained.
//
//seve:lane-seal
func (s *Server) Partitioned() bool { return s.lanes != nil }

// laneView is lane's segment as an analysis view: lane-local numbering
// over the shared lane-writer table.
func (s *Server) laneView(lane int) walkView {
	ls := &s.lanes[lane]
	return walkView{queue: ls.queue, writers: s.laneWriters, installed: ls.installed}
}

// StampLane runs the lane-affine half of stamping for one lane's
// pendings, in buffer order, on that lane's worker: duplicate
// detection, client-position notes, Algorithm 7 validity over the lane
// view, and lane enqueue+index of accepted entries. Outcomes are staged
// on the pendings; SealStamp applies the shared-state half in merge
// order. Requires every pending's footprint to be owned by lane and
// every submitting client to be pinned to lane for the epoch.
func (s *Server) StampLane(lane int, ps []*Pending) {
	sc := s.scratchFor(lane)
	ls := &s.lanes[lane]
	for _, p := range ps {
		e, sess := p.e, p.sess
		if sess != nil {
			if seq := e.env.Act.ID().Seq; seq <= sess.lastActSeq {
				p.dup = true
				continue
			}
			sess.lastActSeq = e.env.Act.ID().Seq
		}

		// Influence bounds stage their verdict for SealStamp, mirroring
		// StampPrepared's order (after dup detection, before position
		// notes and validity). boundsCheck touches only the pending's
		// own ledger, and the client is lane-pinned for the epoch, so
		// the bucket spend is lane-affine like sess above.
		if v := s.boundsCheck(p); v != integrity.OK {
			p.bound = v
			continue
		}

		s.noteClientPosition(p.from, e, p.nowMs)

		if s.cfg.Mode >= ModeInfoBound {
			v := s.laneView(lane)
			invalid, _, st := s.validityWalk(&v, e.rsd, e.hasPos, e.pos, s.cfg.Threshold, sc)
			p.stampStats, p.hasStamped = st, true
			if invalid {
				p.dropped = true
				if sess != nil {
					sess.recordDrop(e.env.Act.ID())
				}
				continue
			}
		}

		ls.nextSeq++
		e.lane, e.laneSeq = int32(lane), ls.nextSeq
		e.sent.set(p.slot) // the origin trivially has its own action
		ls.queue = append(ls.queue, e)
		s.laneIndexEntry(ls, e)
		p.pos = len(ls.queue) - 1
		p.viewLane = lane
	}
}

// SealStamp applies the shared-state half of one pending's stamp, in
// merge order on the sequential path: counters, walk stats, the Drop
// reply, the global Seq, and the global queue/index/history. It reports
// whether a reply plan is owed.
//
//seve:lane-seal
func (s *Server) SealStamp(p *Pending, out *ServerOutput) bool {
	s.totalSubmitted++
	if p.dup {
		s.duplicateSubmits++
		return false
	}
	if p.bound != integrity.OK {
		s.sealBound(p, p.bound, out)
		return false
	}
	if p.hasStamped {
		s.noteWalk(p.stampStats, out)
	}
	if p.dropped {
		s.recordDropOf(p, out)
		return false
	}
	e := p.e
	s.nextSeq++
	e.env.Seq = s.nextSeq
	s.queue = append(s.queue, e)
	s.indexEntry(e)
	if s.cfg.RecordHistory {
		s.log = append(s.log, e.env)
	}
	return true
}

// PreCommit mints the blind-write id for a planned reply that carries
// writes — the one commit-side output whose cross-lane order is
// observable before the reply itself. Runs in merge order on the
// sequential path, between the plan and commit fan-outs.
//
//seve:lane-seal
func (s *Server) PreCommit(p *Pending, plan *ReplyPlan) {
	if plan.active && len(plan.writes) > 0 {
		p.blind = s.nextBlindID()
		p.hasBlind = true
	}
}

// CommitLane finishes one pending's planned batch on its lane worker:
// sent() marks over the lane view, envelope assembly around the
// PreCommit-minted blind id, and the per-client batch sequence (the
// submitting client is lane-pinned, so sequence/retainBatch are
// lane-affine). The reply is staged for SealCommit to emit in merge
// order.
//
//seve:lane-affine
func (s *Server) CommitLane(p *Pending, plan *ReplyPlan) {
	v := s.viewFor(p)
	for _, j := range plan.positions {
		v.queue[j].sent.set(p.slot)
	}
	batch := plan.envs[1:]
	if p.hasBlind {
		plan.envs[0] = action.Envelope{
			Seq:    s.installed,
			Origin: action.OriginServer,
			Act:    action.NewBlindWrite(p.blind, plan.writes),
		}
		batch = plan.envs
	}
	b := s.sequence(p.from, &wire.Batch{Envs: batch, InstalledUpTo: s.installed})
	p.reply = Reply{
		To:      p.from,
		Msg:     b,
		Deliver: Delivery{Class: DeliveryBatch, Footprint: plan.footprint, Epoch: b.ClientSeq},
	}
	p.hasReply = true
}

// SealCommit emits one pending's staged reply and walk stats in merge
// order on the sequential path.
//
//seve:lane-seal
func (s *Server) SealCommit(p *Pending, plan *ReplyPlan, out *ServerOutput) {
	s.noteWalk(plan.stats, out)
	if p.hasReply {
		out.Replies = append(out.Replies, p.reply)
	}
}

// laneEnqueue mirrors an accepted globally-stamped entry into its owner
// lane's segment, keeping the segments complete across fallback flushes
// and inline cross-shard stamps. No-op for unpartitioned engines and
// spanning (lane < 0) entries — the latter are exactly the bridges that
// force the router's fallback path while live.
//
//seve:lane-seal
func (s *Server) laneEnqueue(p *Pending) {
	if s.lanes == nil || p.lane < 0 {
		return
	}
	ls := &s.lanes[p.lane]
	e := p.e
	ls.nextSeq++
	e.lane, e.laneSeq = int32(p.lane), ls.nextSeq
	ls.queue = append(ls.queue, e)
	s.laneIndexEntry(ls, e)
}

// laneIndexEntry records e's writes in the lane-numbered conflict
// index. Safe on a lane worker: each object is written only by its
// owner lane's entries, so the rows it touches are lane-affine.
//
//seve:lane-affine
func (s *Server) laneIndexEntry(ls *laneSeg, e *entry) {
	seq := e.laneSeq
	for _, o := range e.wsd {
		lst := s.laneWriters[o]
		if len(lst) > 16 && lst[0] <= ls.installed {
			d := liveFrom(lst, ls.installed)
			if 2*d >= len(lst) {
				lst = lst[:copy(lst, lst[d:])]
				ls.writerCompactions++
			}
		}
		s.laneWriters[o] = append(lst, seq)
	}
}

// laneInstall pops an entry just installed from its lane segment.
// Called by InstallContiguous in global install order; lane segments
// are ordered by global Seq, so the entry is always the lane head.
//
//seve:lane-seal
func (s *Server) laneInstall(e *entry) {
	if s.lanes == nil || e.lane < 0 {
		return
	}
	ls := &s.lanes[e.lane]
	ls.queue[0] = nil
	ls.queue = ls.queue[1:]
	ls.popped++
	ls.installed = e.laneSeq
	s.pruneLaneWriters(ls, e)
	if ls.popped >= queueCompactMin && ls.popped >= len(ls.queue) {
		compacted := make([]*entry, len(ls.queue))
		copy(compacted, ls.queue)
		ls.queue = compacted
		ls.popped = 0
		ls.compactions++
	}
}

// pruneLaneWriters trims the lane writer rows of a just-installed
// entry, mirroring pruneWriters under the lane numbering.
//
//seve:lane-seal
func (s *Server) pruneLaneWriters(ls *laneSeg, e *entry) {
	for _, o := range e.wsd {
		lst := s.laneWriters[o]
		d := liveFrom(lst, ls.installed)
		switch {
		case d == len(lst):
			s.laneWriters[o] = lst[:0]
		case d > 16 && 2*d >= len(lst):
			s.laneWriters[o] = lst[:copy(lst, lst[d:])]
			ls.writerCompactions++
		}
	}
}
