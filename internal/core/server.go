package core

import (
	"fmt"
	"slices"

	"seve/internal/action"
	"seve/internal/geom"
	"seve/internal/integrity"
	"seve/internal/metrics"
	"seve/internal/wire"
	"seve/internal/world"
)

// Server is the server-side protocol engine: Algorithm 2 in ModeBasic,
// Algorithm 5 (with the Algorithm 6 transitive closure) in the
// incomplete-world modes, plus the First Bound push scheduler and the
// Algorithm 7 Information Bound dropper at the higher levels.
//
// The server executes no application logic — "the server merely
// timestamps actions, queues them for delivery to clients, and manages
// the network traffic" (Section III-A). Its only per-action compute is
// read/write-set analysis, which is what lets one server handle
// thousands of clients (Section V-B1).
type Server struct {
	cfg Config

	// zs is ζS, the authoritative stable state, built by installing the
	// write values carried in completion messages (Algorithm 5). Only
	// maintained from ModeIncomplete up.
	zs *world.State

	// installed is the serial position up to which ζS is complete: the
	// greatest j such that actions 1..j have all been installed.
	installed uint64

	// queue holds the uncommitted actions a_{installed+1} … a_n, in
	// serial order: queue[i] has Seq == installed+1+i.
	queue []*entry
	// queuePopped counts entries popped off the queue head since the
	// backing array was last compacted. Re-slicing alone would pin the
	// dead prefix of the array for the life of the server.
	queuePopped int

	// intern maps sparse ObjectIDs to dense indices for the analysis
	// walks; writers is the reverse conflict index: writers[o] holds the
	// serial positions (ascending) of uncommitted queue entries whose
	// write set contains the object with dense index o.
	intern  *world.Interner
	writers [][]uint64

	// scratch pools the per-walk state; scratch[0] serves the sequential
	// paths and scratch[w] serves push worker w.
	scratch []*closureScratch
	// tickWindow buffers the queue positions inside the current push
	// window across Tick calls.
	tickWindow []int

	// nextSlot allocates dense client slots for the sent() bitmaps.
	// Slots are never reused while the server lives; a client keeps its
	// slot across unregister/re-register (orphanSlots remembers it).
	nextSlot    int
	orphanSlots map[action.ClientID]int

	// pendingRes holds completion results that arrived before all their
	// predecessors ("the server holds it until ζS(i−1) is available",
	// Algorithm 5 step 5).
	pendingRes map[uint64]action.Result

	// log retains every stamped envelope. ModeBasic uses it to answer
	// submissions with the slice (posC, pos(a)]; RecordHistory retains it
	// in other modes for the test oracle.
	log []action.Envelope

	clients map[action.ClientID]*clientInfo

	nextSeq    uint64
	nextBlind  uint32
	lastPushMs float64

	totalSubmitted   int
	totalDropped     int
	droppedByClient  map[action.ClientID]int
	totalQueueScans  int
	completionsTaken int

	// Index and scheduler counters (see Metrics).
	scanSaved         int
	indexLookups      int
	queueCompactions  int
	writerCompactions int
	pushTicks         int
	pushParallelTicks int

	// Cross-check state (Config.CrossCheck): accepted results retained
	// for a window past installation so late redundant reports can still
	// be audited, and per-client mismatch counts.
	recentResults map[uint64]action.Result
	suspects      map[action.ClientID]int

	// journal, when set, receives the commit feed: one grouped record
	// per InstallContiguous pass plus the session-layer records — the
	// integration point for the durability pipeline (package durable).
	// feedRecs is the reusable group-assembly scratch; installEpoch
	// numbers the passes.
	journal      Journal
	feedRecs     []CommitRecord
	installEpoch uint64

	// boot is the recovery generation (RestoreState.Boot); CatchUp
	// verdicts carry it so clients can fence completions retained
	// against a previous boot. bootFloor is the install point this boot
	// recovered at (RestoreState.UpTo): the fence below which serial
	// positions survived the restart, carried in CatchUp verdicts so a
	// resuming client can roll back everything it holds above it.
	boot      uint64
	bootFloor uint64

	// planExec, when set, runs read-only planning fan-outs on the
	// caller's worker pool instead of ad-hoc goroutines (SetPlanExecutor).
	planExec func(tasks []func())

	// installBySeg and installTasks are applyWrites' reusable fan-out
	// scratch: per-segment write groups and their apply closures.
	installBySeg [][]world.Write
	installTasks []func()

	// lanes holds the per-lane queue segments when the engine is
	// partitioned (EnablePartition); nil on the single-lane engine.
	// laneWriters is the lane-numbered reverse conflict index, one shared
	// table keyed by dense object index — each object is written only by
	// its owner lane's entries, so parallel lane stamps touch disjoint
	// rows. See lanes.go.
	lanes       []laneSeg
	laneWriters [][]uint64

	// Session-resume state (Config.ResumeWindow > 0): per-client retained
	// batch windows keyed by client, plus the token → client reverse map a
	// wire.Resume is resolved through. See resume.go.
	sessions   map[action.ClientID]*session
	tokenOwner map[uint64]action.ClientID
	sessionSeq uint64

	resumesSuffix     int
	resumesSnapshot   int
	resumesRejected   int
	duplicateSubmits  int
	snapshotFallbacks int
	staleCompletions  int
	resumesRecovered  int

	// Integrity state (DESIGN.md §16, unless Config.DisableIntegrity):
	// per-client ledgers (audit seed, submit bucket, quarantine latch),
	// the reporter behind each held completion (audit attribution),
	// positions forced to audit because their reported completion failed
	// validation, and the staged quarantine verdicts DrainQuarantines
	// emits in effective-log order.
	ledgers     map[action.ClientID]*integrity.Ledger
	pendingFrom map[uint64]action.ClientID
	forceAudit  map[uint64]bool
	quarOut     []Reply
	// selfComplete marks stamped positions abandoned by a quarantined
	// origin: no honest completion will ever arrive (the client's
	// reports are rejected), so the server evaluates the action itself
	// at install time — one cheater's leftovers cannot wedge the queue.
	selfComplete map[uint64]bool

	forgedCompletions  int
	orphanCompletions  int
	contractBreaches   int
	auditsRun          int
	auditDivergences   int
	repairedResults    int
	quarantinedClients int
	quarantineRejected int
	rateLimited        int
	writeSetViolations int
	radiusViolations   int
}

// crossCheckWindow is how many installed results the server retains for
// auditing late completion reports.
const crossCheckWindow = 256

// clientInfo is what the server knows about a client for bound checks:
// its last reported position and influence radius ("the position of the
// character representing client C … and the maximum radius of influence
// of an action by C", Section III-D).
type clientInfo struct {
	pos      geom.Vec
	radius   float64
	hasPos   bool
	posAtMs  float64
	interest uint64
	// slot is the client's dense index into the entry.sent bitmaps.
	slot int
	// posC is the Algorithm 2 cursor: the position of the last action
	// sent to this client (ModeBasic only).
	posC uint64
	// nextBatchSeq numbers the batches sent to this client so it can
	// restore order across the direct and relayed paths.
	nextBatchSeq uint64
}

// sequence stamps b with the client's next batch sequence number and,
// with sessions enabled, retains it in the client's resume window.
func (s *Server) sequence(cid action.ClientID, b *wire.Batch) *wire.Batch {
	if ci := s.clients[cid]; ci != nil {
		ci.nextBatchSeq++
		b.ClientSeq = ci.nextBatchSeq
		s.retainBatch(cid, b)
	}
	return b
}

// entry is one uncommitted action in the server's global queue, with the
// metadata the analyses need: interned (dense) read/write sets, the set
// sent(a) of clients the action has been sent to (Algorithm 5) as a
// bitmap over dense client slots, and spatial data.
type entry struct {
	env action.Envelope

	// rsd and wsd are the declared read and write sets as dense object
	// indices (one backing array, interned once at submission).
	rsd []uint32
	wsd []uint32

	sent sentVec

	// lane and laneSeq place the entry in a shard lane's queue segment
	// when the engine is partitioned (lanes.go): lane is the owning lane
	// (-1 for spanning/global-lane entries and for unpartitioned
	// engines), laneSeq the lane-local serial position.
	lane    int32
	laneSeq uint64

	pos       geom.Vec
	radius    float64
	hasPos    bool
	vel       geom.Vec
	hasVel    bool
	class     uint8
	stampedMs float64
}

// sentVec is sent(a) as a bitmap over dense client slots. It grows
// lazily: a slot beyond the current length is simply not sent yet.
type sentVec []uint64

func (v sentVec) has(slot int) bool {
	w := slot >> 6
	return w < len(v) && v[w]&(1<<uint(slot&63)) != 0
}

func (v *sentVec) set(slot int) {
	w := slot >> 6
	for w >= len(*v) {
		*v = append(*v, 0)
	}
	(*v)[w] |= 1 << uint(slot & 63)
}

// clear drops a slot's bit: the client lost everything it had been sent
// (a snapshot resume rebuilt its state), so future closures must treat
// the entry as unsent.
func (v sentVec) clear(slot int) {
	w := slot >> 6
	if w < len(v) {
		v[w] &^= 1 << uint(slot&63)
	}
}

// NewServer returns a server engine over the given initial world. The
// configuration must be valid.
func NewServer(cfg Config, init *world.State) *Server {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Server{
		cfg:             cfg,
		zs:              init.Clone(),
		pendingRes:      make(map[uint64]action.Result),
		clients:         make(map[action.ClientID]*clientInfo),
		droppedByClient: make(map[action.ClientID]int),
		recentResults:   make(map[uint64]action.Result),
		suspects:        make(map[action.ClientID]int),
		intern:          world.NewInterner(),
		orphanSlots:     make(map[action.ClientID]int),
		sessions:        make(map[action.ClientID]*session),
		tokenOwner:      make(map[uint64]action.ClientID),
		ledgers:         make(map[action.ClientID]*integrity.Ledger),
		pendingFrom:     make(map[uint64]action.ClientID),
		forceAudit:      make(map[uint64]bool),
		selfComplete:    make(map[uint64]bool),
	}
}

// SetJournal registers the durable commit feed. Pass nil to remove.
// The Section II transaction layer "commits at periodic checkpoints"
// to a database through exactly this feed (see package durable): one
// CommitGroup per install pass, SessionOpen per session mint/reset,
// BatchRetained per batch entering a resume window.
func (s *Server) SetJournal(j Journal) {
	s.journal = j
}

// Suspects reports, per client, how many of its completion reports
// disagreed with the accepted result for the same action. Non-empty only
// with Config.CrossCheck; an honest fleet always reports zero.
func (s *Server) Suspects() map[action.ClientID]int {
	out := make(map[action.ClientID]int, len(s.suspects))
	for k, v := range s.suspects {
		out[k] = v
	}
	return out
}

// RegisterClient announces a client to the server. interestMask selects
// interest classes for Section IV-A filtering; 0 subscribes to all
// classes.
func (s *Server) RegisterClient(id action.ClientID, interestMask uint64) {
	if _, dup := s.clients[id]; dup {
		panic(fmt.Sprintf("core: client %d registered twice", id))
	}
	s.clients[id] = &clientInfo{interest: interestMask, slot: s.claimSlot(id)}
	s.openSession(id, interestMask)
}

// claimSlot returns the dense sent-bitmap slot for id, reusing the slot
// from a previous registration or pre-registration submission so the
// sent() bits recorded under it stay valid.
func (s *Server) claimSlot(id action.ClientID) int {
	if slot, ok := s.orphanSlots[id]; ok {
		delete(s.orphanSlots, id)
		return slot
	}
	slot := s.nextSlot
	s.nextSlot++
	return slot
}

// slotOf returns the sent-bitmap slot for id, assigning one on demand
// for senders that never registered.
func (s *Server) slotOf(id action.ClientID) int {
	if ci := s.clients[id]; ci != nil {
		return ci.slot
	}
	if slot, ok := s.orphanSlots[id]; ok {
		return slot
	}
	slot := s.nextSlot
	s.nextSlot++
	s.orphanSlots[id] = slot
	return slot
}

// UnregisterClient removes a client (failure or disconnect). Queued
// actions it originated remain; under FailureTolerant configurations
// other clients' completions still install them.
func (s *Server) UnregisterClient(id action.ClientID) {
	if ci := s.clients[id]; ci != nil {
		s.orphanSlots[id] = ci.slot
	}
	delete(s.clients, id)
}

// Installed returns the serial position up to which ζS is complete.
func (s *Server) Installed() uint64 { return s.installed }

// Authoritative returns ζS.
func (s *Server) Authoritative() *world.State { return s.zs }

// QueueLen reports the number of uncommitted actions.
func (s *Server) QueueLen() int { return len(s.queue) }

// TotalSubmitted reports all submissions received.
func (s *Server) TotalSubmitted() int { return s.totalSubmitted }

// TotalDropped reports submissions invalidated by the Information Bound
// Model.
func (s *Server) TotalDropped() int { return s.totalDropped }

// DroppedByClient reports per-origin drop counts, for the fairness
// analysis of Section III-E.
func (s *Server) DroppedByClient() map[action.ClientID]int {
	out := make(map[action.ClientID]int, len(s.droppedByClient))
	for k, v := range s.droppedByClient {
		out[k] = v
	}
	return out
}

// TotalQueueScans reports cumulative queue entries examined by closure
// and validity analysis.
func (s *Server) TotalQueueScans() int { return s.totalQueueScans }

// History returns the stamped envelopes in serial order. It requires
// ModeBasic or Config.RecordHistory.
func (s *Server) History() []action.Envelope { return s.log }

// HandleMsg dispatches a client message. nowMs is the server's clock in
// milliseconds (virtual time under simulation, wall time over TCP).
func (s *Server) HandleMsg(from action.ClientID, msg wire.Msg, nowMs float64) ServerOutput {
	switch m := msg.(type) {
	case *wire.Submit:
		return s.HandleSubmit(from, m, nowMs)
	case *wire.Completion:
		return s.HandleCompletion(from, m)
	case *wire.Resume:
		// A resume identifies its client by token, not by the connection,
		// so `from` is ignored. Routed here (not only through the Resumer
		// interface) so a recorded shard log replays it deterministically.
		_, out := s.HandleResume(m, nowMs)
		return out
	default:
		// Unknown message types are ignored; the transport layer logs.
		return ServerOutput{}
	}
}

// HandleSubmit processes a newly submitted action: Algorithm 2 step 2 in
// ModeBasic, Algorithm 5 step 3 plus the Algorithm 7 validity check in
// the higher modes. It is the single-lane composition of the sharding
// SPI: a sequential stamp, an (elsewhere parallelizable) reply plan, and
// a sequential commit.
//
//seve:lane-seal
func (s *Server) HandleSubmit(from action.ClientID, m *wire.Submit, nowMs float64) ServerOutput {
	var out ServerOutput
	p := s.StampSubmit(from, m, nowMs, &out)
	if p == nil {
		return out
	}
	plan := s.PlanReply(p, 0, nil)
	s.CommitReply(p, &plan, &out)
	return out
}

// Pending is a prepared (and, after a stamp phase, enqueued) submission
// whose closure reply has not been planned yet — the handle the shard
// router carries through the pipeline phases. The staging fields let
// the partitioned pipeline (lanes.go) compute lane-local outcomes on
// worker goroutines and apply the shared-state deltas in merge order.
type Pending struct {
	e    *entry
	from action.ClientID
	slot int
	// pos is the queue index at stamp time, into the view viewLane
	// selects. It stays valid until the next completion installs the
	// queue head, which cannot happen between a stamp and its commit
	// (installs run at the head of a flush, stamps and commits after).
	pos int
	// viewLane selects the view pos refers to and the view the plan and
	// commit run over: a lane index under the partitioned pipeline, -1
	// for the global queue.
	viewLane int
	// lane is the owner lane routing computed at buffer time (-1 for
	// spanning and empty-footprint submissions); the global stamp path
	// still lane-enqueues through it so the segments stay complete.
	lane  int
	sess  *session
	nowMs float64
	// led is the submitter's integrity ledger, resolved at prepare time
	// on the engine goroutine (the p.sess idiom) so lane workers touch
	// only this pending's pointer; nil when integrity is disabled.
	led *integrity.Ledger

	// bound stages an influence-bound violation found by StampLane for
	// SealStamp to count and answer in merge order.
	bound integrity.Violation

	// Parallel-stamp staging (StampLane): the lane-local outcome, with
	// shared-counter deltas deferred to SealStamp.
	dup        bool
	dropped    bool
	stampStats walkStats
	hasStamped bool

	// blind is the blind-write id PreCommit mints in merge order.
	blind    action.ID
	hasBlind bool

	// reply is the Batch staged by CommitLane for SealCommit to emit.
	reply    Reply
	hasReply bool
}

// Seq returns the stamped global serial position.
func (p *Pending) Seq() uint64 { return p.e.env.Seq }

// From returns the submitting client.
func (p *Pending) From() action.ClientID { return p.from }

// viewFor resolves the view a pending's positions refer to.
//
//seve:lane-affine
func (s *Server) viewFor(p *Pending) walkView {
	if p.viewLane >= 0 {
		return s.laneView(p.viewLane)
	}
	return s.globalView()
}

// PrepareSubmit builds the entry for a submission on the sequential
// buffering path: envelope capture, spatial metadata, read/write-set
// interning, and sent-slot resolution. Everything order-sensitive —
// duplicate detection, validity, serial stamping — happens later, in
// StampPrepared or the StampLane/SealStamp pair, so the router can
// buffer prepared submissions and route them by their interned
// footprints before any of that runs.
func (s *Server) PrepareSubmit(from action.ClientID, m *wire.Submit, nowMs float64) *Pending {
	env := m.Env
	env.Origin = from // trust the connection, not the payload
	e := newEntry(env, nowMs)
	if s.cfg.Mode >= ModeIncomplete {
		s.internEntry(e)
	}
	var led *integrity.Ledger
	if !s.cfg.DisableIntegrity {
		led = s.ledgerOf(from)
	}
	return &Pending{
		e: e, from: from, slot: s.slotOf(from),
		viewLane: -1, lane: -1,
		sess: s.sessions[from], nowMs: nowMs,
		led: led,
	}
}

// Footprint returns the prepared entry's interned read and write sets,
// the router's routing key. Callers must not mutate the slices.
func (p *Pending) Footprint() (rsd, wsd []uint32) { return p.e.rsd, p.e.wsd }

// SetLane records the owner lane routing resolved for p (-1 for a
// spanning footprint).
func (p *Pending) SetLane(lane int) { p.lane = lane }

// Influence returns the prepared action's declared influence centre,
// when the declaration is meaningful for spatial routing (a positive
// radius or a non-origin centre — the same test noteClientPosition
// applies before trusting a position).
func (p *Pending) Influence() (geom.Vec, bool) {
	e := p.e
	if !e.hasPos || (e.radius <= 0 && e.pos == (geom.Vec{})) {
		return geom.Vec{}, false
	}
	return e.pos, true
}

// InternedObjects reports the dense-index universe size: every index a
// Footprint can yield is below it.
func (s *Server) InternedObjects() int { return s.intern.Len() }

// ObjectIDOf returns the sparse ObjectID behind dense index o.
func (s *Server) ObjectIDOf(o uint32) world.ObjectID { return s.intern.ID(o) }

// StampSubmit runs the sequential half of submission processing:
// Algorithm 7 validity, serial-position stamping, enqueue, and conflict
// indexing. It returns nil when no reply plan is owed — the action was
// dropped (Drop reply appended to out) or ModeBasic answered inline.
// Callers owe every non-nil Pending a PlanReply/CommitReply pair, with
// all commits applied in stamp order.
func (s *Server) StampSubmit(from action.ClientID, m *wire.Submit, nowMs float64, out *ServerOutput) *Pending {
	p := s.PrepareSubmit(from, m, nowMs)
	if !s.StampPrepared(p, out) {
		return nil
	}
	return p
}

// StampPrepared stamps a prepared submission on the global sequencer
// path: duplicate detection, Algorithm 7 validity over the whole queue,
// serial-position stamping, enqueue, and conflict indexing (plus lane
// bookkeeping when the engine is partitioned, keeping the segments
// complete for later partitioned flushes). It reports whether a reply
// plan is owed.
//
//seve:lane-seal
func (s *Server) StampPrepared(p *Pending, out *ServerOutput) bool {
	s.totalSubmitted++

	// With sessions enabled, swallow re-submissions of actions this
	// session already stamped (or dropped): after a reconnect the resume
	// re-send can race submissions still queued from the old connection.
	// Per-client action sequence numbers are strictly monotonic, so
	// anything at or below the session's high-water mark is a duplicate.
	e, sess := p.e, p.sess
	if sess != nil {
		if seq := e.env.Act.ID().Seq; seq <= sess.lastActSeq {
			s.duplicateSubmits++
			return false
		}
		sess.lastActSeq = e.env.Act.ID().Seq
	}

	if v := s.boundsCheck(p); v != integrity.OK {
		s.sealBound(p, v, out)
		return false
	}

	s.noteClientPosition(p.from, e, p.nowMs)

	if s.cfg.Mode >= ModeInfoBound {
		if invalid := s.checkValidity(e, out); invalid {
			s.recordDropOf(p, out)
			return false
		}
	}

	// Timestamp a and put it into the queue (Algorithm 2 step 2a /
	// Algorithm 5 step 3a).
	s.nextSeq++
	e.env.Seq = s.nextSeq

	if s.cfg.Mode == ModeBasic {
		s.log = append(s.log, e.env)
		s.replyBasic(p.from, out)
		return false
	}

	e.sent.set(p.slot) // the origin trivially has its own action
	s.queue = append(s.queue, e)
	s.indexEntry(e)
	s.laneEnqueue(p)
	if s.cfg.RecordHistory {
		s.log = append(s.log, e.env)
	}
	p.pos = len(s.queue) - 1
	p.viewLane = -1
	return true
}

// boundsCheck enforces the per-client influence bounds (DESIGN.md §16c)
// on a prepared submission: quarantine latch, token-bucket submit rate,
// write-set size cap, influence-radius cap. It reads only the pending's
// own ledger pointer and entry, so lane workers may run it concurrently
// for distinct pendings; shared counters and replies are deferred to
// sealBound in merge order. The bucket spends on the deterministic
// engine clock carried by the pending, so verdicts replay identically
// through the effective log.
//
//seve:lane-affine
func (s *Server) boundsCheck(p *Pending) integrity.Violation {
	led := p.led
	if led == nil {
		return integrity.OK // integrity disabled
	}
	if led.Quarantined {
		return integrity.ViolationQuarantined
	}
	if s.cfg.MaxSubmitRate > 0 && !led.Bucket.Allow(p.nowMs, s.cfg.MaxSubmitRate, s.cfg.SubmitBurst) {
		return integrity.ViolationRate
	}
	if s.cfg.MaxWriteSet > 0 && p.e.env.Act.WriteSet().Len() > s.cfg.MaxWriteSet {
		return integrity.ViolationWriteSet
	}
	if s.cfg.MaxInfluenceRadius > 0 && p.e.hasPos && p.e.radius > s.cfg.MaxInfluenceRadius {
		return integrity.ViolationRadius
	}
	return integrity.OK
}

// sealBound applies the shared-state side of an influence-bound
// rejection: the violation counter and, except for already-quarantined
// clients (whose verdict said everything), a Drop reply so the origin
// aborts the action locally instead of waiting forever. The session's
// drop ring records it like an Information Bound drop, so a resume
// catch-up reports it even if the Drop frame is lost.
//
//seve:lane-seal
func (s *Server) sealBound(p *Pending, v integrity.Violation, out *ServerOutput) {
	switch v {
	case integrity.ViolationQuarantined:
		s.quarantineRejected++
		return
	case integrity.ViolationRate:
		s.rateLimited++
	case integrity.ViolationWriteSet:
		s.writeSetViolations++
	case integrity.ViolationRadius:
		s.radiusViolations++
	}
	if p.sess != nil {
		p.sess.recordDrop(p.e.env.Act.ID())
	}
	out.Dropped = true
	out.Replies = append(out.Replies, Reply{
		To:      p.from,
		Msg:     &wire.Drop{ActID: p.e.env.Act.ID()},
		Deliver: Delivery{Class: DeliveryCovered},
	})
}

// recordDropOf applies the shared-state side of an Information Bound
// drop: counters, the session drop ring, and the Drop reply.
func (s *Server) recordDropOf(p *Pending, out *ServerOutput) {
	s.totalDropped++
	s.droppedByClient[p.from]++
	out.Dropped = true
	if p.sess != nil {
		p.sess.recordDrop(p.e.env.Act.ID())
	}
	out.Replies = append(out.Replies, Reply{
		To:      p.from,
		Msg:     &wire.Drop{ActID: p.e.env.Act.ID()},
		Deliver: Delivery{Class: DeliveryCovered},
	})
}

// PlanReply computes the Algorithm 6 closure reply for p: the transitive
// closure of uncommitted actions affecting it, prefixed by a blind
// write. Planning is read-only apart from worker w's private scratch, so
// distinct pendings may plan concurrently on distinct workers over a
// frozen queue (grow the scratch pool with GrowScratch first).
//
// overlay, when non-nil, reports queue positions that an earlier plan in
// the same batch already included in a batch for p's client — those
// entries count as sent even though their sent() bits are only applied
// when that earlier plan commits. The shard lanes use it to keep
// plan-phase results identical to fully sequential processing.
//
//seve:lane-affine
func (s *Server) PlanReply(p *Pending, w int, overlay func(pos int) bool) ReplyPlan {
	already := func(j int, e *entry) bool { return e.sent.has(p.slot) }
	if overlay != nil {
		already = func(j int, e *entry) bool { return e.sent.has(p.slot) || overlay(j) }
	}
	v := s.viewFor(p)
	positions, writes, st := s.closureWalk(&v, []int{p.pos}, s.scratchFor(w), already)
	return ReplyPlan{active: true, positions: positions, writes: writes,
		envs: planEnvs(&v, positions), stats: st,
		footprint: s.planFootprint(&v, positions, writes)}
}

// planFootprint collects the planned batch's covered-object set — the
// union of the blind write's targets and every batch entry's declared
// write set, as sorted deduplicated sparse ids. This is the supersession
// metadata (DESIGN.md §13) the transport's delivery queue charges to a
// slow client's staleness accounting. Read-only over the frozen view and
// the interner, so it runs on the planning worker with the walk.
func (s *Server) planFootprint(v *walkView, positions []int, writes []world.Write) []world.ObjectID {
	n := len(writes)
	for _, j := range positions {
		n += len(v.queue[j].wsd)
	}
	if n == 0 {
		return nil
	}
	fp := make([]world.ObjectID, 0, n)
	for _, w := range writes {
		fp = append(fp, w.ID)
	}
	for _, j := range positions {
		for _, o := range v.queue[j].wsd {
			fp = append(fp, s.intern.ID(o))
		}
	}
	slices.Sort(fp)
	return slices.Compact(fp)
}

// planEnvs copies the batch positions' envelopes on the planning worker
// — the O(batch) part of assembly — leaving envs[0] reserved for the
// blind write commitBatch may mint. Pure reads over the frozen view.
func planEnvs(v *walkView, positions []int) []action.Envelope {
	envs := make([]action.Envelope, len(positions)+1)
	for k, j := range positions {
		envs[k+1] = v.queue[j].env
	}
	return envs
}

// commitBatch finishes a planned batch on the sequential path: marks
// every position sent to slot and mints the blind-write id — the two
// steps whose order across batches is observable — returning the final
// envelope sequence.
func (s *Server) commitBatch(v *walkView, slot int, plan *ReplyPlan) []action.Envelope {
	for _, j := range plan.positions {
		v.queue[j].sent.set(slot)
	}
	if len(plan.writes) == 0 {
		return plan.envs[1:]
	}
	plan.envs[0] = action.Envelope{
		Seq:    s.installed,
		Origin: action.OriginServer,
		Act:    action.NewBlindWrite(s.nextBlindID(), plan.writes),
	}
	return plan.envs
}

// CommitReply applies a submission's reply plan: sent() marks, the
// blind-write id, the per-client batch sequence, and the Batch reply.
// Commits must run on the engine's sequential entry points in stamp
// order — that, not the planning schedule, is what fixes ids and batch
// numbering.
//
//seve:lane-seal
func (s *Server) CommitReply(p *Pending, plan *ReplyPlan, out *ServerOutput) {
	s.noteWalk(plan.stats, out)
	v := s.viewFor(p)
	batch := s.commitBatch(&v, p.slot, plan)
	b := s.sequence(p.from, &wire.Batch{Envs: batch, InstalledUpTo: s.installed})
	out.Replies = append(out.Replies, Reply{
		To:      p.from,
		Msg:     b,
		Deliver: Delivery{Class: DeliveryBatch, Footprint: plan.footprint, Epoch: b.ClientSeq},
	})
}

// GrowScratch ensures the per-worker scratch pool can serve workers
// 0..n-1. Concurrent planners must not grow the pool themselves; the
// shard router calls this once before fanning a flush out.
func (s *Server) GrowScratch(n int) {
	if n > 0 {
		s.scratchFor(n - 1)
	}
}

// noteWalk merges a walk's cost counters into the output and the
// server's cumulative metrics.
func (s *Server) noteWalk(st walkStats, out *ServerOutput) {
	out.QueueScanned += st.scanned
	s.totalQueueScans += st.scanned
	s.indexLookups += st.lookups
	if st.baseline > st.scanned {
		s.scanSaved += st.baseline - st.scanned
	}
}

// replyBasic implements Algorithm 2 step 2b: "the server returns to C all
// actions between positions posC and pos(a), and sets posC = pos(a)".
func (s *Server) replyBasic(from action.ClientID, out *ServerOutput) {
	ci := s.clients[from]
	if ci == nil {
		return
	}
	// log[i] has Seq i+1, so the slice (posC, nextSeq] is log[posC:nextSeq].
	envs := make([]action.Envelope, s.nextSeq-ci.posC)
	copy(envs, s.log[ci.posC:s.nextSeq])
	ci.posC = s.nextSeq
	b := s.sequence(from, &wire.Batch{Envs: envs})
	out.Replies = append(out.Replies, Reply{
		To:      from,
		Msg:     b,
		Deliver: Delivery{Class: DeliveryBatch, Epoch: b.ClientSeq},
	})
}

// HandleCompletion processes Algorithm 5 step 5: the completion for a_i
// is held until ζS(i−1) is available, then its values are installed into
// ζS and a_i is discarded from the action queue. from identifies the
// connection the completion arrived on — the integrity layer attributes
// forgeries and audit divergences to the sender, never to the claimed
// m.By (trust the connection, not the payload).
func (s *Server) HandleCompletion(from action.ClientID, m *wire.Completion) ServerOutput {
	if s.cfg.Mode == ModeBasic {
		return ServerOutput{} // no authoritative state to maintain
	}
	s.TakeCompletion(from, m)
	s.InstallContiguous(nil)
	var out ServerOutput
	s.DrainQuarantines(&out)
	return out
}

// TakeCompletion records a completion result without installing
// anything: duplicate auditing plus the pendingRes hold ("the server
// holds it until ζS(i−1) is available"). The shard router buffers
// completions through this and runs one InstallContiguous cascade per
// epoch flush. With integrity enabled the report is validated first:
// the action's declared sets must honor WS ⊆ RS, and every reported
// write must fall inside the declared write set (DESIGN.md §16a). A
// report that fails validation quarantines the sender and forces a
// repairing audit at install time, so the queue never wedges on a
// position whose only report was forged.
func (s *Server) TakeCompletion(from action.ClientID, m *wire.Completion) {
	if s.cfg.Mode == ModeBasic {
		return
	}
	integ := !s.cfg.DisableIntegrity
	if integ && s.ledgerOf(from).Quarantined {
		s.quarantineRejected++
		return
	}
	if m.Seq <= s.installed {
		// Duplicate of an installed action (failure-tolerant
		// redundancy); still audit it against the retained result.
		s.crossCheck(from, m)
		return
	}
	if m.Seq > s.nextSeq {
		// No action has been stamped at that position: the completion
		// references a serial timeline this server never issued — a
		// stale re-send minted against a previous boot, racing ahead of
		// the client's catch-up fencing. Accepting it would poison the
		// position when a fresh stamp reuses it.
		s.staleCompletions++
		return
	}
	if accepted, dup := s.pendingRes[m.Seq]; dup {
		if s.selfComplete[m.Seq] {
			// A real report arrived for a position the server had written
			// off as abandoned (failure-tolerant redundancy beat the
			// self-completion). Adopt it if it validates; the placeholder
			// carries no information to compare against.
			if integ {
				e := s.queue[m.Seq-s.installed-1]
				if _, ok := integrity.CheckFootprint(m.Res, e.env.Act.WriteSet()); !ok {
					s.forgedCompletions++
					s.quarantine(from, integrity.ViolationFootprint, m.Seq, 0)
					return
				}
			}
			delete(s.selfComplete, m.Seq)
			s.pendingRes[m.Seq] = m.Res.Clone()
			if integ {
				s.pendingFrom[m.Seq] = from
			}
			s.completionsTaken++
			return
		}
		if s.cfg.CrossCheck && !m.Res.Equal(accepted) {
			s.suspects[m.By]++
		}
		return
	}
	if integ {
		e := s.queue[m.Seq-s.installed-1]
		// Blind writes are server-minted (WS with no RS by design);
		// client-originated actions must honor the declared contract.
		if e.env.Origin != action.OriginServer && !integrity.CheckContract(e.env.Act) {
			s.contractBreaches++
			s.quarantine(from, integrity.ViolationContract, m.Seq, 0)
			s.holdForRepair(from, m)
			return
		}
		if id, ok := integrity.CheckFootprint(m.Res, e.env.Act.WriteSet()); !ok {
			s.forgedCompletions++
			s.quarantine(from, integrity.ViolationFootprint, m.Seq, uint64(id))
			s.holdForRepair(from, m)
			return
		}
	}
	s.pendingRes[m.Seq] = m.Res.Clone()
	if integ {
		s.pendingFrom[m.Seq] = from
	}
	s.completionsTaken++
}

// holdForRepair accepts a completion that failed validation into the
// hold, flagged for a mandatory install-time audit. The forged report
// never reaches ζS — the audit re-executes the action and installs the
// server's own result — but the position stays installable, so one
// cheater cannot wedge the queue for everyone.
func (s *Server) holdForRepair(from action.ClientID, m *wire.Completion) {
	// The verdict's abandoned-position walk may have just marked this
	// very position; the held report supersedes the self-completion.
	delete(s.selfComplete, m.Seq)
	s.pendingRes[m.Seq] = m.Res.Clone()
	s.pendingFrom[m.Seq] = from
	s.forceAudit[m.Seq] = true
	s.completionsTaken++
}

// InstallContiguous installs the contiguous prefix of the queue whose
// results are pending: write application into ζS, then the in-order
// per-action bookkeeping (watermark, install hook, cross-check window,
// index pruning, lane pops). exec, when non-nil, may run the supplied
// closures concurrently and must return only when all have finished;
// it is used to apply the writes of a large install batch per ζS
// segment in parallel. The closures partition the writes by segment,
// so they touch disjoint state; per-object write order (queue order)
// is preserved within each segment, making the final values — and
// every later observable — identical to the sequential cascade.
//
//seve:lane-seal
func (s *Server) InstallContiguous(exec func(tasks []func())) {
	// An audit inside a pass may quarantine an origin and self-complete
	// its abandoned positions at the queue head, unblocking a further
	// contiguous run — keep passing until nothing more installs.
	for s.installContiguousPass(exec) {
	}
}

//seve:lane-seal
func (s *Server) installContiguousPass(exec func(tasks []func())) bool {
	n := 0
	for n < len(s.queue) {
		if _, ok := s.pendingRes[s.queue[n].env.Seq]; !ok {
			break
		}
		n++
	}
	if n == 0 {
		return false
	}

	// With integrity enabled the prefix installs in segments around the
	// audit barriers: at each audited position ζS is exactly the serial
	// state at seq−1, so the auditor re-executes the action against it
	// and compares with the reported result (DESIGN.md §16b). With
	// integrity off (or nothing sampled) this is one segment — the
	// historical single pass, byte for byte.
	off := 0
	for off < n {
		k := n
		if !s.cfg.DisableIntegrity {
			for i := off; i < n; i++ {
				if s.auditDue(s.queue[i].env.Seq) {
					k = i
					break
				}
			}
		}
		if k == off {
			s.auditEntry(s.queue[off])
			k = off + 1
		}
		s.installSegment(s.queue[off:k], exec)
		off = k
	}

	for i := 0; i < n; i++ {
		s.queue[i] = nil
	}
	s.queue = s.queue[n:]
	s.queuePopped += n

	// Re-slicing the head off pins the popped prefix of the backing
	// array for the life of the server (the nil-ed slots themselves);
	// copy the live tail to a fresh array once the dead prefix
	// dominates.
	if s.queuePopped >= queueCompactMin && s.queuePopped >= len(s.queue) {
		compacted := make([]*entry, len(s.queue))
		copy(compacted, s.queue)
		s.queue = compacted
		s.queuePopped = 0
		s.queueCompactions++
	}
	return true
}

// installSegment installs one contiguous run of the queue prefix: write
// application into ζS, the journal group, then the in-order per-action
// bookkeeping. Segment boundaries exist only at audit barriers, so with
// auditing quiet this is the whole prefix in one group.
//
//seve:lane-seal
func (s *Server) installSegment(batch []*entry, exec func(tasks []func())) {
	if len(batch) == 0 {
		return
	}
	s.applyWrites(batch, exec)

	// One install segment = one journal group: the grouped record
	// carries the run in serial order, so durability preserves exactly
	// the seal boundaries the pipeline commits at.
	if s.journal != nil {
		s.emitCommitGroup(batch)
	}

	for _, e := range batch {
		seq := e.env.Seq
		res := s.pendingRes[seq]
		s.installed = seq
		delete(s.pendingRes, seq)
		delete(s.pendingFrom, seq)
		if len(s.forceAudit) > 0 {
			delete(s.forceAudit, seq)
		}
		if s.cfg.CrossCheck || !s.cfg.DisableIntegrity {
			s.recentResults[seq] = res
			if old := int64(seq) - crossCheckWindow; old > 0 {
				delete(s.recentResults, uint64(old))
			}
		}
		s.pruneWriters(e)
		s.laneInstall(e)
	}
}

// auditDue reports whether the completion at seq is audited before
// installing: either flagged for mandatory repair by the validator, or
// picked by the reporter's deterministic sampling stream.
func (s *Server) auditDue(seq uint64) bool {
	if len(s.forceAudit) > 0 && s.forceAudit[seq] {
		return true
	}
	if len(s.selfComplete) > 0 && s.selfComplete[seq] {
		return true
	}
	if s.cfg.AuditRate <= 0 {
		return false
	}
	from, ok := s.pendingFrom[seq]
	if !ok {
		return false
	}
	return s.ledgerOf(from).ShouldAudit(seq, s.cfg.AuditRate)
}

// auditEntry re-executes e against ζS — which at this point is exactly
// the serial state at e.Seq−1 — and compares with the reported result.
// Theorem 1 guarantees an honest report matches (the client evaluated
// against the same serial prefix), so a divergence is tampering: the
// reporter is quarantined and the server's own result replaces the
// forged one before installation, keeping ζS equal to the serial-replay
// oracle.
//
//seve:lane-seal
func (s *Server) auditEntry(e *entry) {
	seq := e.env.Seq
	if s.selfComplete[seq] {
		// Abandoned by a quarantined origin: there is no report to
		// compare, the evaluation at ζS (exactly the serial state at
		// seq−1) IS the result.
		s.pendingRes[seq] = action.Eval(e.env.Act, world.StateView{S: s.zs})
		delete(s.selfComplete, seq)
		s.orphanCompletions++
		return
	}
	s.auditsRun++
	got, ok := integrity.Audit(e.env.Act, world.StateView{S: s.zs}, s.pendingRes[seq])
	if ok {
		return
	}
	s.auditDivergences++
	if from, fok := s.pendingFrom[seq]; fok {
		s.quarantine(from, integrity.ViolationAudit, seq, 0)
	}
	s.pendingRes[seq] = got
	s.repairedResults++
}

// applyWrites installs the accepted writes of an install batch into ζS.
// With an executor and a partitioned store, writes are grouped by ζS
// segment and each segment's run applies on its own task; otherwise the
// batch applies inline in queue order.
func (s *Server) applyWrites(batch []*entry, exec func(tasks []func())) {
	segs := s.zs.Segments()
	if exec == nil || segs < 2 {
		for _, e := range batch {
			if res := s.pendingRes[e.env.Seq]; res.OK {
				for _, w := range res.Writes {
					s.zs.Set(w.ID, w.Val)
				}
			}
		}
		return
	}
	for len(s.installBySeg) < segs {
		s.installBySeg = append(s.installBySeg, nil)
	}
	bySeg := s.installBySeg[:segs]
	for _, e := range batch {
		if res := s.pendingRes[e.env.Seq]; res.OK {
			for _, w := range res.Writes {
				g := s.zs.SegmentOf(w.ID)
				bySeg[g] = append(bySeg[g], w)
			}
		}
	}
	tasks := s.installTasks[:0]
	for g, ws := range bySeg {
		if len(ws) == 0 {
			continue
		}
		ws := ws
		tasks = append(tasks, func() {
			for _, w := range ws {
				s.zs.Set(w.ID, w.Val)
			}
		})
		bySeg[g] = ws[:0]
	}
	s.installTasks = tasks
	if len(tasks) > 0 {
		exec(tasks)
	}
	clear(tasks)
}

// queueCompactMin is the smallest dead prefix worth a compaction copy.
const queueCompactMin = 256

// crossCheck audits a late completion against the retained accepted
// result. Honest late reports — failure-tolerant redundancy, resume
// re-sends of retained completions — match the installed result by
// Theorem 1, so with integrity enabled a mismatch is a replayed forged
// completion and quarantines the sender.
func (s *Server) crossCheck(from action.ClientID, m *wire.Completion) {
	integ := !s.cfg.DisableIntegrity
	if !s.cfg.CrossCheck && !integ {
		return
	}
	accepted, ok := s.recentResults[m.Seq]
	if !ok {
		return // outside the audit window
	}
	if !m.Res.Equal(accepted) {
		if s.cfg.CrossCheck {
			s.suspects[m.By]++
		}
		if integ {
			s.quarantine(from, integrity.ViolationReplay, m.Seq, 0)
		}
	}
}

// ledgerOf returns (minting on demand) the client's integrity ledger.
// The audit seed derives from the client id alone, so the sampling
// stream is identical across resume, effective-log replay, and
// crash-restart. Ledgers survive unregister, like orphanSlots: a
// quarantined client cannot clear its verdict by reconnecting.
func (s *Server) ledgerOf(id action.ClientID) *integrity.Ledger {
	if l, ok := s.ledgers[id]; ok {
		return l
	}
	l := integrity.NewLedger(integrity.Mix(uint64(uint32(id))))
	s.ledgers[id] = l
	return l
}

// Quarantined reports whether the client is under an integrity
// quarantine.
func (s *Server) Quarantined(id action.ClientID) bool {
	l, ok := s.ledgers[id]
	return ok && l.Quarantined
}

// quarantine latches the verdict for the client behind a connection,
// stages the wire verdict for DrainQuarantines, and journals it so the
// quarantine survives crash-restart. Idempotent: only the first
// violation produces a verdict.
func (s *Server) quarantine(id action.ClientID, reason integrity.Violation, seq, detail uint64) {
	l := s.ledgerOf(id)
	if l.Quarantined {
		return
	}
	l.Quarantined = true
	s.quarantinedClients++
	// Positions this origin stamped but never completed are abandoned —
	// its future reports will be rejected — so mark them for server
	// self-completion at install time rather than wedging the queue.
	for _, e := range s.queue {
		if e.env.Origin != id {
			continue
		}
		if _, held := s.pendingRes[e.env.Seq]; held {
			continue
		}
		s.pendingRes[e.env.Seq] = action.Result{}
		s.selfComplete[e.env.Seq] = true
	}
	s.quarOut = append(s.quarOut, Reply{
		To:      id,
		Msg:     &wire.Quarantine{Reason: uint8(reason), Seq: seq, Detail: detail},
		Deliver: Delivery{Class: DeliveryOrdered},
	})
	if qj, ok := s.journal.(QuarantineJournal); ok {
		qj.ClientQuarantined(id, uint8(reason), seq)
	}
}

// DrainQuarantines moves staged quarantine verdicts into out. The
// single-lane completion path drains after each install cascade; the
// shard router drains right after its install pass, before any stamp
// replies — matching the effective log, where completions are recorded
// ahead of the epoch's stamps, so replay emits verdicts in the same
// per-client order.
//
//seve:lane-seal
func (s *Server) DrainQuarantines(out *ServerOutput) {
	if len(s.quarOut) == 0 {
		return
	}
	out.Replies = append(out.Replies, s.quarOut...)
	s.quarOut = s.quarOut[:0]
}

// noteClientPosition updates the server's view of the client's character
// position and action radius from the submitted action's spatial
// metadata.
func (s *Server) noteClientPosition(from action.ClientID, e *entry, nowMs float64) {
	ci := s.clients[from]
	if ci == nil || !e.hasPos {
		return
	}
	ci.pos = e.pos
	ci.hasPos = true
	ci.posAtMs = nowMs
	if e.radius > ci.radius {
		ci.radius = e.radius
	}
}

func newEntry(env action.Envelope, nowMs float64) *entry {
	e := &entry{
		env:       env,
		stampedMs: nowMs,
		lane:      -1,
	}
	if sp, ok := env.Act.(action.Spatial); ok {
		c := sp.Influence()
		e.pos, e.radius, e.hasPos = c.Center, c.R, true
	}
	if mv, ok := env.Act.(action.Moving); ok {
		e.vel, e.hasVel = mv.Motion(), true
	}
	if cl, ok := env.Act.(action.Classed); ok {
		e.class = cl.InterestClass()
	}
	return e
}

// internEntry caches the entry's declared read and write sets as dense
// indices (one backing allocation) and keeps the writer-list table in
// step with the interner. Must run before the entry meets any walk.
func (s *Server) internEntry(e *entry) {
	rs, ws := e.env.Act.ReadSet(), e.env.Act.WriteSet()
	buf := make([]uint32, 0, len(rs)+len(ws))
	buf = s.intern.InternSet(rs, buf)
	buf = s.intern.InternSet(ws, buf)
	e.rsd = buf[:len(rs):len(rs)]
	e.wsd = buf[len(rs):]
	s.growWriters()
}

// Metrics returns a consistent snapshot of the engine's cumulative
// counters. Callers must hold whatever synchronization guards the other
// engine entry points (the engine itself is single-goroutine).
//
//seve:lane-seal
func (s *Server) Metrics() metrics.ServerStats {
	workers := s.cfg.PushWorkers
	queueComp, writerComp := s.queueCompactions, s.writerCompactions
	for i := range s.lanes {
		queueComp += s.lanes[i].compactions
		writerComp += s.lanes[i].writerCompactions
	}
	return metrics.ServerStats{
		TotalSubmitted:    s.totalSubmitted,
		TotalDropped:      s.totalDropped,
		CompletionsTaken:  s.completionsTaken,
		Installed:         s.installed,
		QueueLen:          len(s.queue),
		TotalQueueScans:   s.totalQueueScans,
		ScanSavedEntries:  s.scanSaved,
		IndexLookups:      s.indexLookups,
		QueueCompactions:  queueComp,
		WriterCompactions: writerComp,
		InternedObjects:   s.intern.Len(),
		TrackedClients:    len(s.clients),
		PushTicks:         s.pushTicks,
		PushParallelTicks: s.pushParallelTicks,
		PushWorkers:       workers,
		ResumesSuffix:     s.resumesSuffix,
		ResumesSnapshot:   s.resumesSnapshot,
		ResumesRejected:   s.resumesRejected,
		DuplicateSubmits:  s.duplicateSubmits,
		RetainedBatches:   s.retainedBatches(),
		SnapshotFallbacks: s.snapshotFallbacks,
		StaleCompletions:  s.staleCompletions,
		ResumesRecovered:  s.resumesRecovered,

		ForgedCompletions:  s.forgedCompletions,
		ContractBreaches:   s.contractBreaches,
		AuditsRun:          s.auditsRun,
		AuditDivergences:   s.auditDivergences,
		RepairedResults:    s.repairedResults,
		QuarantinedClients: s.quarantinedClients,
		QuarantineRejected: s.quarantineRejected,
		OrphanCompletions:  s.orphanCompletions,
		RateLimited:        s.rateLimited,
		WriteSetViolations: s.writeSetViolations,
		RadiusViolations:   s.radiusViolations,
	}
}

func (s *Server) nextBlindID() action.ID {
	s.nextBlind++
	return action.ID{Client: action.OriginServer, Seq: s.nextBlind}
}
