package core

import (
	"testing"

	"seve/internal/action"
	"seve/internal/wire"
	"seve/internal/world"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.Omega = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("omega 1.5 accepted")
	}
	bad = good
	bad.Mode = Mode(9)
	if err := bad.Validate(); err == nil {
		t.Fatal("mode 9 accepted")
	}
	bad = good
	bad.Threshold = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero threshold accepted in infobound mode")
	}
	bad.Mode = ModeBasic
	if err := bad.Validate(); err != nil {
		t.Fatalf("basic mode should not need threshold: %v", err)
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{
		ModeBasic: "basic", ModeIncomplete: "incomplete",
		ModeFirstBound: "firstbound", ModeInfoBound: "infobound",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if Mode(42).String() != "Mode(42)" {
		t.Errorf("unknown mode String = %q", Mode(42).String())
	}
}

// TestBasicSingleClient: one client, sequential actions; the optimistic
// evaluation always matches the stable one, so no reconciliation happens
// and every commit matches the oracle.
func TestBasicSingleClient(t *testing.T) {
	init := initWorld(3)
	lb := newLoopback(t, cfgFor(ModeBasic), init, 1)
	for i := 0; i < 5; i++ {
		lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1})
		lb.drain()
	}
	lb.requireNoViolations()
	if len(lb.commits) != 5 {
		t.Fatalf("commits = %d, want 5", len(lb.commits))
	}
	if lb.clients[1].Reconciliations() != 0 {
		t.Fatalf("unexpected reconciliations: %d", lb.clients[1].Reconciliations())
	}
	lb.checkAgainstOracle(init)
	// Object 1 started at 1; each action writes previous+1.
	v, _ := lb.clients[1].Stable().Get(1)
	if v[0] != 6 {
		t.Fatalf("final value = %v, want 6", v)
	}
	// Optimistic state converged to stable.
	if ov, _ := lb.clients[1].Optimistic().Get(1); ov[0] != 6 {
		t.Fatalf("optimistic = %v, want 6", ov)
	}
}

// TestBasicConflictReconciliation: two clients concurrently increment
// the same object. The loser's optimistic result is computed against a
// stale value, so its stable evaluation disagrees and Algorithm 3 runs;
// afterwards both clients' stable states agree with the oracle.
func TestBasicConflictReconciliation(t *testing.T) {
	init := initWorld(1)
	lb := newLoopback(t, cfgFor(ModeBasic), init, 2)
	// Both submit before either reaches the server: a true concurrent
	// conflict on object 1.
	lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 10})
	lb.submit(2, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 100})
	lb.drain()
	lb.requireNoViolations()
	if len(lb.commits) != 2 {
		t.Fatalf("commits = %d, want 2", len(lb.commits))
	}
	lb.checkAgainstOracle(init)

	// Serial order: a1 writes 1+10=11; a2 reads 11, writes 11+100=111.
	// Client 2 optimistically computed 1+100=101, so it must reconcile.
	total := lb.clients[1].Reconciliations() + lb.clients[2].Reconciliations()
	if total == 0 {
		t.Fatal("no reconciliation despite conflicting optimistic evaluations")
	}
	// Under Algorithm 2 an idle client only hears about newer actions
	// when it next submits, so client 1 must submit once more (a no-op
	// read) before its stable state catches up to seq 2.
	lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 0})
	lb.drain()
	lb.requireNoViolations()
	for cid := action.ClientID(1); cid <= 2; cid++ {
		v, _ := lb.clients[cid].Stable().Get(1)
		if v[0] != 111 {
			t.Fatalf("client %d stable value = %v, want 111", cid, v)
		}
		ov, _ := lb.clients[cid].Optimistic().Get(1)
		if ov[0] != 111 {
			t.Fatalf("client %d optimistic value = %v, want 111", cid, ov)
		}
	}
}

// TestBasicAllClientsSeeEverything: in ModeBasic each client evaluates
// every action in the world (the scalability problem the incomplete
// world model fixes).
func TestBasicAllClientsSeeEverything(t *testing.T) {
	init := initWorld(4)
	lb := newLoopback(t, cfgFor(ModeBasic), init, 3)
	lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1})
	lb.submit(2, &testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 1})
	lb.drain()
	// Client 3 has submitted nothing, so under Algorithm 2 it receives
	// actions only when it next submits.
	if lb.clients[3].AppliedRemote() != 0 {
		t.Fatal("idle client received actions without submitting (Algorithm 2 sends on submission)")
	}
	lb.submit(3, &testAction{rs: world.NewIDSet(3), ws: world.NewIDSet(3), delta: 1})
	lb.drain()
	lb.requireNoViolations()
	if lb.clients[3].AppliedRemote() != 2 {
		t.Fatalf("client 3 applied %d remote actions, want 2", lb.clients[3].AppliedRemote())
	}
	lb.checkAgainstOracle(init)
}

// TestIncompleteDisjointClientsDoNotHearEachOther: the headline win of
// the Incomplete World Model — clients whose actions touch disjoint
// objects never receive each other's actions.
func TestIncompleteDisjointClientsDoNotHearEachOther(t *testing.T) {
	init := initWorld(4)
	lb := newLoopback(t, cfgFor(ModeIncomplete), init, 2)
	for i := 0; i < 4; i++ {
		lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1})
		lb.submit(2, &testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 1})
		lb.drain()
	}
	lb.requireNoViolations()
	if lb.clients[1].AppliedRemote() != 0 || lb.clients[2].AppliedRemote() != 0 {
		t.Fatalf("disjoint clients exchanged actions: %d, %d",
			lb.clients[1].AppliedRemote(), lb.clients[2].AppliedRemote())
	}
	lb.checkAgainstOracle(init)
	if lb.srv.Installed() != 8 {
		t.Fatalf("installed = %d, want 8", lb.srv.Installed())
	}
}

// TestIncompleteConflictClosure: when client 2's action reads an object
// client 1 has an uncommitted write on, Algorithm 6 must deliver client
// 1's action to client 2 so the stable evaluation is exact.
func TestIncompleteConflictClosure(t *testing.T) {
	init := initWorld(2)
	lb := newLoopback(t, cfgFor(ModeIncomplete), init, 2)
	// Client 1 writes object 1. Do NOT drain: keep it uncommitted.
	lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 10})
	for lb.stepServer() {
	}
	// Client 2 reads objects 1 and 2, writes 2. Its closure must include
	// client 1's queued action.
	lb.submit(2, &testAction{rs: world.NewIDSet(1, 2), ws: world.NewIDSet(2), delta: 100})
	lb.drain()
	lb.requireNoViolations()
	if lb.clients[2].AppliedRemote() != 1 { // client 1's queued action
		t.Fatalf("client 2 applied %d remote actions, want 1 (the closure)", lb.clients[2].AppliedRemote())
	}
	if lb.clients[2].AppliedBlind() < 1 {
		t.Fatal("client 2 received no blind write to seed its read set")
	}
	lb.checkAgainstOracle(init)
	// Oracle: obj1 = 1+10 = 11; obj2 = (11+2)+100 = 113.
	v, _ := lb.srv.Authoritative().Get(2)
	if v[0] != 113 {
		t.Fatalf("ζS object 2 = %v, want 113", v)
	}
	// Client 1 should never have heard about client 2's action: its own
	// submissions did not read object 2.
	if lb.clients[1].AppliedRemote() != 0 {
		t.Fatalf("client 1 applied %d remote actions, want 0", lb.clients[1].AppliedRemote())
	}
}

// TestIncompleteTransitiveClosure reproduces the paper's Figure 3 arrow
// anomaly and shows the Incomplete World Model resolves it: C shoots B
// (writes B's object), then B shoots A. A's client, when its own next
// action reads A and B... the chain C→B→A must reach A's client even
// though C is "not visible" to A. With objects a=1, b=2, c=3:
// action1 (by C) reads {2,3} writes {2}; action2 (by B) reads {1,2}
// writes {1}; action3 (by A) reads {1} writes {1}. The closure for
// action3 must include action2 AND action1 (transitively via object 2).
func TestIncompleteTransitiveClosure(t *testing.T) {
	init := initWorld(3)
	lb := newLoopback(t, cfgFor(ModeIncomplete), init, 3)
	// Client 3 is "C", client 2 is "B", client 1 is "A".
	lb.submit(3, &testAction{rs: world.NewIDSet(2, 3), ws: world.NewIDSet(2), delta: 1000})
	for lb.stepServer() {
	}
	lb.submit(2, &testAction{rs: world.NewIDSet(1, 2), ws: world.NewIDSet(1), delta: 2000})
	for lb.stepServer() {
	}
	lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 3000})
	lb.drain()
	lb.requireNoViolations()
	lb.checkAgainstOracle(init)
	// Client 1 must have applied both C's and B's actions — the
	// transitive chain that visibility-based filtering misses.
	if lb.clients[1].AppliedRemote() != 2 {
		t.Fatalf("client 1 applied %d remote actions, want 2 (transitive chain)", lb.clients[1].AppliedRemote())
	}
	// Serial: obj2 = (2+3)+1000 = 1005; obj1 = (1+1005)+2000 = 3006;
	// obj1 = (3006)+3000... action3 reads only obj1: 3006+3000 = 6006.
	v, _ := lb.srv.Authoritative().Get(1)
	if v[0] != 6006 {
		t.Fatalf("ζS object 1 = %v, want 6006", v)
	}
}

// TestIncompleteRedeliverySuppressed: an action already sent to a client
// is not resent by later closures (the sent(a) bookkeeping), and the
// blind write correctly subtracts its write set.
func TestIncompleteRedeliverySuppressed(t *testing.T) {
	init := initWorld(2)
	lb := newLoopback(t, cfgFor(ModeIncomplete), init, 2)
	// Client 1 writes obj 1 (uncommitted).
	lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 10})
	for lb.stepServer() {
	}
	// Client 2 submits two actions reading obj 1, without completing the
	// first before the second reply is computed.
	lb.submit(2, &testAction{rs: world.NewIDSet(1, 2), ws: world.NewIDSet(2), delta: 100})
	for lb.stepServer() {
	}
	for lb.stepClient(2) {
	}
	applied0 := lb.clients[2].AppliedRemote()
	lb.submit(2, &testAction{rs: world.NewIDSet(1, 2), ws: world.NewIDSet(2), delta: 200})
	lb.drain()
	lb.requireNoViolations()
	lb.checkAgainstOracle(init)
	// The second closure for client 2 must not re-include client 1's
	// action: it was marked sent(a) ∋ 2 by the first closure.
	extra := lb.clients[2].AppliedRemote() - applied0
	if extra != 0 {
		t.Fatalf("second closure resent %d already-sent actions", extra)
	}
	if lb.clients[1].AppliedRemote() != 0 {
		t.Fatal("client 1 heard about client 2's reads")
	}
}

// TestCompletionOutOfOrderInstall: the server holds completions until
// their predecessors are installed (Algorithm 5 step 5).
func TestCompletionOutOfOrderInstall(t *testing.T) {
	init := initWorld(2)
	cfg := cfgFor(ModeIncomplete)
	srv := NewServer(cfg, init)
	srv.RegisterClient(1, 0)
	srv.RegisterClient(2, 0)

	c1 := NewClient(1, cfg, init)
	c2 := NewClient(2, cfg, init)

	a1 := &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 10}
	a1.id = c1.NextActionID()
	m1, _ := c1.Submit(a1)
	a2 := &testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 20}
	a2.id = c2.NextActionID()
	m2, _ := c2.Submit(a2)

	out1 := srv.HandleSubmit(1, m1, 0)
	out2 := srv.HandleSubmit(2, m2, 0)

	co1 := c1.HandleMsg(out1.Replies[0].Msg)
	co2 := c2.HandleMsg(out2.Replies[0].Msg)

	// Deliver completion for seq 2 FIRST: server must hold it.
	srv.HandleCompletion(2, co2.ToServer[0].(*wire.Completion))
	if srv.Installed() != 0 {
		t.Fatalf("installed = %d before predecessor, want 0", srv.Installed())
	}
	if srv.QueueLen() != 2 {
		t.Fatalf("queue len = %d, want 2", srv.QueueLen())
	}
	// Now seq 1: both install.
	srv.HandleCompletion(1, co1.ToServer[0].(*wire.Completion))
	if srv.Installed() != 2 {
		t.Fatalf("installed = %d, want 2", srv.Installed())
	}
	if srv.QueueLen() != 0 {
		t.Fatalf("queue len = %d, want 0", srv.QueueLen())
	}
	v, _ := srv.Authoritative().Get(1)
	if v[0] != 11 {
		t.Fatalf("ζS obj 1 = %v, want 11", v)
	}
	v, _ = srv.Authoritative().Get(2)
	if v[0] != 22 {
		t.Fatalf("ζS obj 2 = %v, want 22", v)
	}
}

// TestDuplicateCompletionIgnored: under failure tolerance multiple
// clients complete the same action; only the first result installs.
func TestDuplicateCompletionIgnored(t *testing.T) {
	init := initWorld(1)
	cfg := cfgFor(ModeIncomplete)
	srv := NewServer(cfg, init)
	srv.RegisterClient(1, 0)
	c1 := NewClient(1, cfg, init)
	a := &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 5}
	a.id = c1.NextActionID()
	m, _ := c1.Submit(a)
	out := srv.HandleSubmit(1, m, 0)
	co := c1.HandleMsg(out.Replies[0].Msg)
	comp := co.ToServer[0].(*wire.Completion)
	srv.HandleCompletion(1, comp)
	// A duplicate with a DIFFERENT (bogus) result must be ignored.
	bogus := &wire.Completion{Seq: comp.Seq, By: 9, Res: action.Result{OK: true,
		Writes: []world.Write{{ID: 1, Val: world.Value{999}}}}}
	srv.HandleCompletion(9, bogus)
	v, _ := srv.Authoritative().Get(1)
	if v[0] != 6 {
		t.Fatalf("ζS obj 1 = %v, want 6 (duplicate completion must not reinstall)", v)
	}
}

// TestAbortingActionIsNoOp: an action whose read misses at the optimistic
// state but exists stably — and vice versa — behaves as a no-op abort
// without corrupting anything.
func TestAbortingActionIsNoOp(t *testing.T) {
	init := initWorld(1)
	lb := newLoopback(t, cfgFor(ModeBasic), init, 1)
	// Action reads object 99 which does not exist: aborts optimistically
	// and stably; result is a no-op and states remain consistent. Strict
	// mode would flag the miss in incomplete mode, but basic mode ships
	// everything so the miss is an application-level abort, not a
	// protocol violation... the object genuinely does not exist, so the
	// read misses at every replica identically. Use non-strict config to
	// focus the assertion on abort semantics.
	cfg := cfgFor(ModeBasic)
	cfg.Strict = false
	lb = newLoopback(t, cfg, init, 1)
	lb.submit(1, &testAction{rs: world.NewIDSet(99), ws: world.NewIDSet(99), delta: 1})
	lb.drain()
	if len(lb.commits) != 1 {
		t.Fatalf("commits = %d", len(lb.commits))
	}
	if lb.commits[0].Res.OK {
		t.Fatal("action on missing object committed")
	}
	lb.checkAgainstOracle(init)
}

// TestClientGarbageCollection: InstalledUpTo on batches prunes old
// versions from the client's stable store.
func TestClientGarbageCollection(t *testing.T) {
	init := initWorld(1)
	lb := newLoopback(t, cfgFor(ModeIncomplete), init, 1)
	for i := 0; i < 10; i++ {
		lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1})
		lb.drain()
	}
	lb.requireNoViolations()
	// After the last drain the server has installed 9 or 10 actions and
	// the client has pruned versions below the installed point it last
	// heard. The version count must stay small rather than ~11.
	if got := lb.clients[1].Stable().Versions(); got > 4 {
		t.Fatalf("stable store holds %d versions of object 1; GC not effective", got)
	}
	lb.checkAgainstOracle(init)
}
