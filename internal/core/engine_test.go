package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"seve/internal/wire"
	"seve/internal/world"
)

// runEngineWorkload drives one server through a seeded random workload —
// conflicting spatial submissions, First Bound push ticks, and full
// completion drains — and records every server→client message as
// "recipient:encoded-bytes". Two configurations that claim to be
// behaviorally identical must produce equal traces.
func runEngineWorkload(t *testing.T, cfg Config, seed int64) ([]string, *loopback) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const nObjects, nClients, rounds = 60, 24, 10
	init := initWorld(nObjects)
	lb := newLoopback(t, cfg, init, nClients)

	var trace []string
	// Every reply is encoded twice: the reference per-recipient Encode
	// that the trace diff uses, and the pooled encode-once frame path the
	// transport uses. Any divergence between them fails immediately, so
	// the trace equality theorems of this file extend to the pooled
	// encoder over the full workload.
	var cache wire.EncodeCache
	t.Cleanup(cache.Reset)
	record := func(out ServerOutput) {
		for _, r := range out.Replies {
			enc := wire.Encode(r.Msg)
			f := wire.NewFrameCached(&cache, r.Msg)
			if fb := f.Bytes(); fb[4] != byte(r.Msg.Type()) || !bytes.Equal(fb[5:], enc) {
				t.Fatalf("pooled frame for %T to client %d diverges from per-recipient encoding",
					r.Msg, r.To)
			}
			f.Release()
			trace = append(trace, fmt.Sprintf("%d:%x", r.To, enc))
			lb.toClient[r.To] = append(lb.toClient[r.To], r.Msg)
		}
	}
	// Deterministic pump that mirrors loopback.drain but routes every
	// server output through record.
	pump := func() {
		for {
			progress := false
			if len(lb.toServer) > 0 {
				fm := lb.toServer[0]
				lb.toServer = lb.toServer[1:]
				record(lb.srv.HandleMsg(fm.from, fm.msg, lb.nowMs))
				progress = true
			}
			for _, cid := range lb.order {
				for lb.stepClient(cid) {
					progress = true
				}
			}
			if !progress && len(lb.toServer) == 0 {
				return
			}
		}
	}

	// pumpServer processes pending server-bound messages without letting
	// clients reply, so submissions accumulate in the uncommitted queue
	// (no completions yet) and the subsequent Tick sees a real window.
	pumpServer := func() {
		for len(lb.toServer) > 0 {
			fm := lb.toServer[0]
			lb.toServer = lb.toServer[1:]
			record(lb.srv.HandleMsg(fm.from, fm.msg, lb.nowMs))
		}
	}

	for round := 0; round < rounds; round++ {
		lb.nowMs += cfg.PushIntervalMs()
		nSub := 3 + rng.Intn(5)
		for i := 0; i < nSub; i++ {
			cid := lb.order[rng.Intn(len(lb.order))]
			rs := []world.ObjectID{world.ObjectID(1 + rng.Intn(nObjects))}
			for rng.Intn(2) == 0 {
				rs = append(rs, world.ObjectID(1+rng.Intn(nObjects)))
			}
			ws := []world.ObjectID{rs[0]}
			if rng.Intn(2) == 0 {
				ws = append(ws, world.ObjectID(1+rng.Intn(nObjects)))
			}
			a := &testAction{
				// WS ⊆ RS: Tx.Write records written ids as reads too.
				rs:    world.NewIDSet(append(rs, ws...)...),
				ws:    world.NewIDSet(ws...),
				delta: float64(rng.Intn(100)),
			}
			spatialAt(a, rng.Float64()*120, rng.Float64()*120, 5)
			lb.submit(cid, a)
			// Interleave server processing with submissions half the time
			// so the queue depth at each analysis varies.
			if rng.Intn(2) == 0 {
				pumpServer()
			}
		}
		pumpServer()
		if cfg.Mode >= ModeFirstBound {
			record(lb.srv.Tick(lb.nowMs))
		}
		pump()
	}
	lb.requireNoViolations()
	lb.checkAgainstOracle(initWorld(nObjects))
	return trace, lb
}

func diffTraces(t *testing.T, name string, a, b []string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d messages vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: message %d differs:\n a: %s\n b: %s", name, i, a[i], b[i])
		}
	}
}

// TestTickParallelDeterminism holds the push scheduler to its contract:
// the byte stream of every server reply — closure batches, push batches,
// ClientSeq stamps, blind-write ids — is identical whether planning runs
// sequentially or fanned over a worker pool.
func TestTickParallelDeterminism(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		for seed := int64(1); seed <= 3; seed++ {
			seq := cfgFor(ModeFirstBound)
			seq.PushWorkers = 1
			par := seq
			par.PushWorkers = workers
			trSeq, lbSeq := runEngineWorkload(t, seq, seed)
			trPar, lbPar := runEngineWorkload(t, par, seed)
			diffTraces(t, fmt.Sprintf("workers=%d seed=%d", workers, seed), trSeq, trPar)
			if !lbSeq.srv.Authoritative().Equal(lbPar.srv.Authoritative()) {
				t.Fatalf("workers=%d seed=%d: authoritative states diverged", workers, seed)
			}
			if workers > 1 && lbPar.srv.pushParallelTicks == 0 {
				t.Fatalf("workers=%d: parallel path never exercised", workers)
			}
		}
	}
}

// TestClosureIndexEquivalence holds the reverse conflict index to its
// contract: the indexed Algorithm 6/7 walks produce byte-identical
// output to the full-queue scans they replace, including Information
// Bound drop decisions.
func TestClosureIndexEquivalence(t *testing.T) {
	for _, mode := range []Mode{ModeIncomplete, ModeFirstBound, ModeInfoBound} {
		for seed := int64(1); seed <= 3; seed++ {
			indexed := cfgFor(mode)
			if mode == ModeInfoBound {
				// Low enough that long spatial chains get dropped, so the
				// validity walk's early exit is exercised too.
				indexed.Threshold = 60
			}
			full := indexed
			full.DisableConflictIndex = true
			trIdx, lbIdx := runEngineWorkload(t, indexed, seed)
			trFull, lbFull := runEngineWorkload(t, full, seed)
			diffTraces(t, fmt.Sprintf("mode=%v seed=%d", mode, seed), trIdx, trFull)
			if lbIdx.srv.TotalDropped() != lbFull.srv.TotalDropped() {
				t.Fatalf("mode=%v seed=%d: drops %d (indexed) vs %d (full)",
					mode, seed, lbIdx.srv.TotalDropped(), lbFull.srv.TotalDropped())
			}
			if !lbIdx.srv.Authoritative().Equal(lbFull.srv.Authoritative()) {
				t.Fatalf("mode=%v seed=%d: authoritative states diverged", mode, seed)
			}
			// The index must actually be saving work, or the whole
			// apparatus is dead weight.
			if st := lbIdx.srv.Metrics(); st.ScanSavedEntries == 0 {
				t.Fatalf("mode=%v seed=%d: index saved no scans", mode, seed)
			}
		}
	}
}

// TestQueueCompaction verifies the HandleCompletion memory fix: popping
// the queue head must eventually re-home the slice instead of pinning
// the dead prefix of the backing array forever.
func TestQueueCompaction(t *testing.T) {
	cfg := cfgFor(ModeIncomplete)
	init := initWorld(8)
	lb := newLoopback(t, cfg, init, 2)
	for i := 0; i < 600; i++ {
		lb.submit(lb.order[i%2], &testAction{
			rs:    world.NewIDSet(world.ObjectID(1 + i%8)),
			ws:    world.NewIDSet(world.ObjectID(1 + i%8)),
			delta: 1,
		})
		lb.drain()
	}
	lb.requireNoViolations()
	st := lb.srv.Metrics()
	if st.QueueCompactions == 0 {
		t.Fatal("queue was never compacted")
	}
	if st.QueueLen != 0 {
		t.Fatalf("queue not drained: %d", st.QueueLen)
	}
	if st.Installed != uint64(st.TotalSubmitted-st.TotalDropped) {
		t.Fatalf("installed %d of %d", st.Installed, st.TotalSubmitted)
	}
	lb.checkAgainstOracle(initWorld(8))
}

// TestMetricsSnapshot sanity-checks the counters surfaced to operators.
func TestMetricsSnapshot(t *testing.T) {
	cfg := cfgFor(ModeInfoBound)
	_, lb := runEngineWorkload(t, cfg, 42)
	st := lb.srv.Metrics()
	if st.TotalSubmitted == 0 || st.CompletionsTaken == 0 {
		t.Fatalf("protocol counters empty: %+v", st)
	}
	if st.InternedObjects == 0 || st.IndexLookups == 0 {
		t.Fatalf("index counters empty: %+v", st)
	}
	if st.TrackedClients != 24 {
		t.Fatalf("tracked clients = %d", st.TrackedClients)
	}
	if st.String() == "" {
		t.Fatal("empty rendering")
	}
}
