package core

import (
	"testing"

	"seve/internal/action"
	"seve/internal/wire"
	"seve/internal/world"
)

// TestFailureToleranceInstallsFromSurvivor: with FailureTolerant set,
// every client that evaluates an action sends a completion. If the
// origin client crashes before completing, a surviving client that
// received the action (via the closure) completes it, and the server
// still installs (Section III-C: "the only case in which the server does
// not receive a response to some action is when all clients that
// evaluate that action have failed").
func TestFailureToleranceInstallsFromSurvivor(t *testing.T) {
	init := initWorld(2)
	cfg := cfgFor(ModeIncomplete)
	cfg.FailureTolerant = true

	srv := NewServer(cfg, init)
	srv.RegisterClient(1, 0)
	srv.RegisterClient(2, 0)
	c1 := NewClient(1, cfg, init)
	c2 := NewClient(2, cfg, init)

	// Client 1 submits an action writing object 1 …
	a1 := &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 10}
	a1.id = c1.NextActionID()
	m1, _ := c1.Submit(a1)
	out1 := srv.HandleSubmit(1, m1, 0)
	// … and CRASHES before processing the reply: out1.Replies never
	// reaches c1, no completion is sent.
	_ = out1
	srv.UnregisterClient(1)

	// Client 2 submits a conflicting action; the closure delivers a1.
	a2 := &testAction{rs: world.NewIDSet(1, 2), ws: world.NewIDSet(2), delta: 100}
	a2.id = c2.NextActionID()
	m2, _ := c2.Submit(a2)
	out2 := srv.HandleSubmit(2, m2, 0)
	if len(out2.Replies) != 1 {
		t.Fatalf("replies = %d", len(out2.Replies))
	}
	co := c2.HandleMsg(out2.Replies[0].Msg)
	if len(co.Violations) > 0 {
		t.Fatalf("violations: %v", co.Violations)
	}

	// Client 2's output must include completions for BOTH a1 (failure
	// tolerance) and a2 (its own).
	var seqs []uint64
	for _, m := range co.ToServer {
		if comp, ok := m.(*wire.Completion); ok {
			seqs = append(seqs, comp.Seq)
			srv.HandleCompletion(2, comp)
		}
	}
	if len(seqs) != 2 {
		t.Fatalf("survivor sent %d completions, want 2 (got seqs %v)", len(seqs), seqs)
	}
	if srv.Installed() != 2 {
		t.Fatalf("installed = %d, want 2 despite origin failure", srv.Installed())
	}
	// ζS reflects both actions: obj1 = 1+10 = 11, obj2 = (11+2)+100 = 113.
	v, _ := srv.Authoritative().Get(1)
	if v[0] != 11 {
		t.Fatalf("ζS obj1 = %v, want 11", v)
	}
	v, _ = srv.Authoritative().Get(2)
	if v[0] != 113 {
		t.Fatalf("ζS obj2 = %v, want 113", v)
	}
}

// TestWithoutFailureToleranceOnlyOwnCompletions: the default protocol
// sends completions only for locally originated actions.
func TestWithoutFailureToleranceOnlyOwnCompletions(t *testing.T) {
	init := initWorld(2)
	lb := newLoopback(t, cfgFor(ModeIncomplete), init, 2)
	lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 10})
	for lb.stepServer() {
	}
	lb.submit(2, &testAction{rs: world.NewIDSet(1, 2), ws: world.NewIDSet(2), delta: 100})
	lb.drain()
	lb.requireNoViolations()
	// Exactly 2 actions installed via exactly 2 completions.
	if lb.srv.completionsTaken != 2 {
		t.Fatalf("completions taken = %d, want 2", lb.srv.completionsTaken)
	}
}

// TestUnregisterUnknownClientIsNoOp documents that unregistering twice is
// harmless (disconnect races).
func TestUnregisterUnknownClientIsNoOp(t *testing.T) {
	srv := NewServer(cfgFor(ModeIncomplete), initWorld(1))
	srv.RegisterClient(1, 0)
	srv.UnregisterClient(1)
	srv.UnregisterClient(1)
	srv.UnregisterClient(99)
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate RegisterClient did not panic")
		}
	}()
	srv := NewServer(cfgFor(ModeIncomplete), initWorld(1))
	srv.RegisterClient(1, 0)
	srv.RegisterClient(1, 0)
}

// TestDropForUnknownActionIsViolation: a drop notice for an action not
// in the queue is recorded, not silently ignored.
func TestDropForUnknownActionIsViolation(t *testing.T) {
	c := NewClient(1, cfgFor(ModeInfoBound), initWorld(1))
	out := c.HandleDrop(&wire.Drop{ActID: action.ID{Client: 1, Seq: 99}})
	if len(out.Violations) != 1 {
		t.Fatalf("violations = %v", out.Violations)
	}
}
