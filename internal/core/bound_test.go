package core

import (
	"testing"

	"seve/internal/action"
	"seve/internal/geom"
	"seve/internal/world"
)

// firstBoundConfig keeps the spheres small so reachability is easy to
// reason about: s=0 means Eq (1) degenerates to rA + rC.
func firstBoundConfig() Config {
	cfg := cfgFor(ModeFirstBound)
	cfg.MaxSpeed = 0
	cfg.DefaultRadius = 5
	return cfg
}

// TestFirstBoundPushesNearbyAction: a queued action within the influence
// bound of a client is pushed proactively at the next tick, without the
// client submitting anything.
func TestFirstBoundPushesNearbyAction(t *testing.T) {
	init := initWorld(4)
	lb := newLoopback(t, firstBoundConfig(), init, 2)

	// Client 2 announces its position by submitting a spatial action at
	// (0, 0) with radius 5.
	lb.submit(2, spatialAt(&testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 1}, 0, 0, 5))
	lb.drain()

	// Client 1 acts at distance 8 with radius 5: 8 ≤ 5+5, reachable.
	lb.nowMs += 10 // strictly inside the first push window
	lb.submit(1, spatialAt(&testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1}, 8, 0, 5))
	for lb.stepServer() {
	}
	before := lb.clients[2].AppliedRemote()
	lb.nowMs += 238 // one push interval (ω·RTT = 0.5·476)
	lb.tick()
	lb.drain()
	lb.requireNoViolations()
	if lb.clients[2].AppliedRemote() != before+1 {
		t.Fatalf("client 2 applied %d remote actions after push, want %d",
			lb.clients[2].AppliedRemote(), before+1)
	}
	lb.checkAgainstOracle(init)
}

// TestFirstBoundSkipsFarAction: an action outside the Equation (1)
// sphere is not pushed.
func TestFirstBoundSkipsFarAction(t *testing.T) {
	init := initWorld(4)
	lb := newLoopback(t, firstBoundConfig(), init, 2)
	lb.submit(2, spatialAt(&testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 1}, 0, 0, 5))
	lb.drain()

	// Distance 100 > 5+5: unreachable.
	lb.nowMs += 10
	lb.submit(1, spatialAt(&testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1}, 100, 0, 5))
	for lb.stepServer() {
	}
	lb.nowMs += 238
	lb.tick()
	lb.drain()
	lb.requireNoViolations()
	if lb.clients[2].AppliedRemote() != 0 {
		t.Fatalf("far action pushed: client 2 applied %d", lb.clients[2].AppliedRemote())
	}
}

// TestFirstBoundNoRepush: an action pushed once is not pushed again at
// the next tick (sent bookkeeping), and a later closure reply does not
// resend it either.
func TestFirstBoundNoRepush(t *testing.T) {
	init := initWorld(4)
	lb := newLoopback(t, firstBoundConfig(), init, 2)
	lb.submit(2, spatialAt(&testAction{rs: world.NewIDSet(1, 2), ws: world.NewIDSet(2), delta: 1}, 0, 0, 5))
	lb.drain()

	lb.nowMs += 10
	lb.submit(1, spatialAt(&testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1}, 3, 0, 5))
	for lb.stepServer() {
	}
	lb.nowMs += 238
	lb.tick()
	lb.drain()
	after1 := lb.clients[2].AppliedRemote()
	lb.nowMs += 238
	lb.tick()
	lb.drain()
	if lb.clients[2].AppliedRemote() != after1 {
		t.Fatal("action re-pushed at second tick")
	}
	// A closure reply for a conflicting submission must also skip it.
	lb.submit(2, spatialAt(&testAction{rs: world.NewIDSet(1, 2), ws: world.NewIDSet(2), delta: 2}, 0, 0, 5))
	lb.drain()
	lb.requireNoViolations()
	if lb.clients[2].AppliedRemote() != after1 {
		t.Fatal("already-pushed action resent in closure reply")
	}
	lb.checkAgainstOracle(init)
}

// TestFirstBoundWindow: only actions stamped within the push window are
// push candidates; older unsent ones are left for closures.
func TestFirstBoundWindow(t *testing.T) {
	init := initWorld(4)
	lb := newLoopback(t, firstBoundConfig(), init, 2)
	lb.submit(2, spatialAt(&testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 1}, 0, 0, 5))
	lb.drain()

	lb.nowMs = 1000
	lb.submit(1, spatialAt(&testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1}, 3, 0, 5))
	for lb.stepServer() {
	}
	// First tick consumes the window (pushes it).
	lb.nowMs = 1238
	lb.tick()
	lb.drain()
	got1 := lb.clients[2].AppliedRemote()
	if got1 != 1 {
		t.Fatalf("in-window action not pushed: %d", got1)
	}
	lb.requireNoViolations()
}

// TestInterestFilterSkipsClass: with InterestFilter enabled, pushes skip
// actions whose class the client did not subscribe to (Section IV-A) —
// the paper's humans-need-not-track-insects example. Closure replies are
// never filtered, so consistency of submissions is unaffected.
func TestInterestFilterSkipsClass(t *testing.T) {
	init := initWorld(4)
	cfg := firstBoundConfig()
	cfg.InterestFilter = true
	// Client 2 subscribes only to class 1 ("humans"); class 2 is
	// "insects".
	lb := newLoopbackMasks(t, cfg, init, map[int32]uint64{1: 0, 2: 1 << 1})

	lb.submit(2, spatialAt(&testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 1}, 0, 0, 5))
	lb.drain()

	// An insect-class action right next to client 2: spatially reachable
	// but filtered by interest.
	lb.nowMs += 10
	insect := spatialAt(&testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1}, 1, 0, 5)
	insect.class = 2
	lb.submit(1, insect)
	for lb.stepServer() {
	}
	lb.nowMs += 238
	lb.tick()
	lb.drain()
	if lb.clients[2].AppliedRemote() != 0 {
		t.Fatalf("insect action pushed to uninterested client: %d", lb.clients[2].AppliedRemote())
	}

	// A human-class action is pushed.
	lb.nowMs += 10
	human := spatialAt(&testAction{rs: world.NewIDSet(3), ws: world.NewIDSet(3), delta: 1}, 1, 0, 5)
	human.class = 1
	lb.submit(1, human)
	for lb.stepServer() {
	}
	lb.nowMs += 238
	lb.tick()
	lb.drain()
	lb.requireNoViolations()
	if lb.clients[2].AppliedRemote() != 1 {
		t.Fatalf("human action not pushed: %d", lb.clients[2].AppliedRemote())
	}
	lb.checkAgainstOracle(init)
}

// arrow is a directed test action for area culling: its influence point
// moves along a velocity vector (Section IV-B).
type arrow struct {
	testAction
	vel geom.Vec
}

func (a *arrow) Motion() geom.Vec { return a.vel }

// submitAction lets tests submit any action type through the harness.
func (lb *loopback) submitAction(cid action.ClientID, a action.Action, setID func(action.ID)) {
	c := lb.clients[cid]
	setID(c.NextActionID())
	msg, _ := c.Submit(a)
	lb.toServer = append(lb.toServer, fromMsg{from: cid, msg: msg})
	lb.submitted++
}

func TestAreaCullingDirectionFull(t *testing.T) {
	mk := func(velX float64) (int, int) {
		init := initWorld(4)
		cfg := firstBoundConfig()
		cfg.AreaCulling = true
		cfg.MaxSpeed = 0.001
		lb := newLoopback(t, cfg, init, 2)
		lb.submit(2, spatialAt(&testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 1}, 100, 0, 5))
		lb.drain()

		// Arrow released at (50, 0), 50 units from client 2: outside the
		// static bound (rC = 5 plus 2s(1+ω)RTT ≈ 1.4), so only the
		// velocity projection can bring it into reach.
		lb.nowMs += 10
		a := &arrow{vel: geom.Vec{X: velX, Y: 0}}
		a.testAction = *spatialAt(&testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1}, 50, 0, 5)
		lb.submitAction(1, a, func(id action.ID) { a.id = id })
		for lb.stepServer() {
		}
		lb.nowMs += 238
		lb.tick()
		lb.drain()
		lb.requireNoViolations()
		return lb.clients[2].AppliedRemote(), lb.srv.TotalSubmitted()
	}

	// The server projects the arrow over dt = stamp time − client
	// position time ≈ 10 ms. At 4.5 units/ms that is ±45 units: an
	// approaching arrow (+x, toward the client at (100,0)) projects to
	// (95,0), within reach; a receding one projects to (5,0), far out.
	recedingApplied, _ := mk(-4.5)
	approachingApplied, _ := mk(4.5)
	if recedingApplied != 0 {
		t.Fatalf("receding arrow was pushed: applied=%d", recedingApplied)
	}
	if approachingApplied != 1 {
		t.Fatalf("approaching arrow not pushed: applied=%d", approachingApplied)
	}
}
