package core

import (
	"testing"
	"testing/quick"

	"seve/internal/wire"
	"seve/internal/world"
)

func hybridConfig() Config {
	cfg := firstBoundConfig()
	cfg.HybridRelay = true
	return cfg
}

func TestHybridRequiresFirstBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeIncomplete
	cfg.HybridRelay = true
	if err := cfg.Validate(); err == nil {
		t.Fatal("hybrid relay accepted below ModeFirstBound")
	}
}

// TestHybridRelayDelegatesFanOut: two clients in the same neighbourhood
// cell receive a push as ONE server message — a Relay to the first,
// which forwards the inner batch to the second.
func TestHybridRelayDelegatesFanOut(t *testing.T) {
	init := initWorld(6)
	lb := newLoopback(t, hybridConfig(), init, 3)

	// Clients 2 and 3 stand together at (100, 0); client 1 acts nearby.
	lb.submit(2, spatialAt(&testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 1}, 100, 0, 5))
	lb.submit(3, spatialAt(&testAction{rs: world.NewIDSet(3), ws: world.NewIDSet(3), delta: 1}, 101, 0, 5))
	lb.drain()

	lb.nowMs += 10
	lb.submit(1, spatialAt(&testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1}, 98, 0, 5))
	for lb.stepServer() {
	}
	lb.nowMs += 238
	out := lb.srv.Tick(lb.nowMs)

	// One Relay covering both cell-mates, not two Batches.
	var relays, batches int
	for _, rep := range out.Replies {
		switch m := rep.Msg.(type) {
		case *wire.Relay:
			relays++
			if len(m.Targets) != 2 {
				t.Fatalf("relay targets = %v", m.Targets)
			}
		case *wire.Batch:
			batches++
		}
		lb.toClient[rep.To] = append(lb.toClient[rep.To], rep.Msg)
	}
	if relays != 1 {
		t.Fatalf("relays = %d, want 1 (batches %d)", relays, batches)
	}
	lb.drain()
	lb.requireNoViolations()
	// Both cell-mates applied client 1's action exactly once.
	if lb.clients[2].AppliedRemote() != 1 || lb.clients[3].AppliedRemote() != 1 {
		t.Fatalf("applied: c2=%d c3=%d, want 1/1",
			lb.clients[2].AppliedRemote(), lb.clients[3].AppliedRemote())
	}
	lb.checkAgainstOracle(init)
}

// TestHybridSharedBatchSkipsOwnAction: when a cell-mate's own submission
// rides in the shared push batch, that client ignores the pushed copy
// and commits via its closure reply, exactly once.
func TestHybridSharedBatchSkipsOwnAction(t *testing.T) {
	init := initWorld(6)
	lb := newLoopback(t, hybridConfig(), init, 2)
	// Both clients in one cell; establish positions.
	lb.submit(1, spatialAt(&testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1}, 50, 0, 5))
	lb.submit(2, spatialAt(&testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 1}, 52, 0, 5))
	lb.drain()
	commits0 := len(lb.commits)

	// Client 1 submits; the reply is IN FLIGHT when the push tick fires,
	// so the shared batch to the cell includes client 1's own action.
	lb.nowMs += 10
	lb.submit(1, spatialAt(&testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 2}, 50, 0, 5))
	for lb.stepServer() {
	}
	lb.nowMs += 238
	lb.tick()
	lb.drain()
	lb.requireNoViolations()
	if got := len(lb.commits) - commits0; got != 1 {
		t.Fatalf("client 1's action committed %d times, want exactly 1", got)
	}
	lb.checkAgainstOracle(init)
}

// TestTheorem1PropertyHybrid: the full randomized consistency check with
// hybrid relays on — relayed supersets and duplicate deliveries must not
// break serializability.
func TestTheorem1PropertyHybrid(t *testing.T) {
	f := func(seed int64) bool {
		randomRunWith(t, seed, func(cfg *Config) {
			cfg.Mode = ModeFirstBound
			cfg.HybridRelay = true
		})
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
