package core

import (
	"fmt"

	"seve/internal/action"
	"seve/internal/metrics"
	"seve/internal/wire"
	"seve/internal/world"
)

// DefaultMaxPendingBatches bounds the out-of-order batch buffer when
// Config.MaxPendingBatches is zero. Gaps under hybrid relay are a few
// batches deep; thousands means the missing predecessor is never coming.
const DefaultMaxPendingBatches = 4096

// Client is the client-side protocol engine: Algorithm 1 in ModeBasic and
// Algorithm 4 in the incomplete-world modes, with Algorithm 3 as the
// reconciliation procedure.
//
// The client maintains two versions of the world state (Section III-A):
// an optimistic version ζCO to which locally created actions are applied
// immediately, and a stable version ζCS to which actions are applied in
// the server-assigned serial order. ζCS is a multiversion store because
// under the Incomplete World Model the server may deliver an action older
// than ones the client has already applied (a later transitive closure
// can reach further back); replaying it exactly requires reading each
// object as of the action's serial position. See world.MVStore.
type Client struct {
	id  action.ClientID
	cfg Config

	co *world.State   // ζCO, optimistic
	cs *world.MVStore // ζCS, stable (multiversion)

	// queue is Q = [⟨a1,v1⟩, …, ⟨ak,vk⟩]: locally generated actions not
	// yet received back from the server, with their optimistic results.
	queue []pendingAction

	nextActSeq uint32

	// Batch-order restoration: batches from the server are numbered per
	// recipient; relayed copies take a two-hop path and can arrive out of
	// order relative to direct replies, which would violate the
	// closures' sent() assumptions. pendingBatches buffers gaps, capped
	// at the configured MaxPendingBatches.
	nextBatchSeq   uint64
	pendingBatches map[uint64]*wire.Batch

	// Incremental reconciliation state. intern maps the sparse ObjectIDs
	// this client has touched to dense indices; wsq maintains WS(Q) as a
	// multiset over them (each queued action Incs its declared write set
	// on enqueue, Decs on resolution); div is the divergence set — every
	// object where ζCO may differ from ζCS's latest version, maintained
	// as an undo log by the optimistic/stable write paths so Algorithm 3
	// rolls back only those objects instead of the full WS(Q) union.
	intern          *world.Interner
	wsq             world.CountedSet
	div             world.ScratchSet
	divScratch      []uint32
	resolvedScratch []uint32

	// scratchTx is the reusable transaction for the reconcile re-apply
	// loop. It must never back a Result that escapes the engine
	// (completions and commits alias their transaction's write log), so
	// only reconcile uses it.
	scratchTx *world.Tx

	// Session-resume state (Config.ResumeWindow > 0). sentCompletions
	// retains the completion messages for own committed actions until a
	// batch's InstalledUpTo acknowledges their installation — a
	// completion lost with the connection would otherwise stall the
	// server's install pipeline forever. ownRedeliverFloor is set by a
	// snapshot resume: own actions at or below it that are no longer
	// queued had already committed before the disconnect, and a
	// post-snapshot closure re-delivering them is applied silently as
	// remote instead of reported as an out-of-order violation.
	sentCompletions   []*wire.Completion
	ackedInstalled    uint64
	ownRedeliverFloor uint32
	// installPending retains each own committed action alongside its
	// completion until a batch's InstalledUpTo acknowledges the
	// installation. A commit is provisional until then: if the server
	// crashes before the epoch seals, the position is rolled back and
	// re-issued, and the boot fence re-queues the action from here —
	// without it the action would be lost (it left the queue at commit
	// time) while the client still counted it as committed.
	installPending []pendingInstall
	// boot is the server's recovery generation, learned from the Welcome
	// and updated by CatchUp verdicts. A CatchUp whose Boot differs means
	// the server restarted from its journal: serial positions above its
	// InstalledUpTo were lost and will be re-issued to different actions,
	// so completions retained for them are fenced (dropped, not re-sent)
	// rather than allowed to ack state the crash rolled back.
	boot uint64

	// Integrity verdict state (DESIGN.md §16). A wire.Quarantine latches
	// the flag; the engine stops submitting and the transport layer
	// treats the verdict as a permanent stop (no reconnect loop — the
	// server refuses resumes from a quarantined ledger anyway).
	quarantined bool
	quarReason  uint8

	// stats
	reconciliations int
	appliedRemote   int
	appliedBlind    int
	droppedBatches  int
	reconcileCopies int
	prunedBelow     uint64
	resumes         int
	resumesSnapshot int
	staleBatches    int
	ownRedelivered  int
	// Superseding delivery queue observables (DESIGN.md §13):
	// coalescedBatches counts merged batches applied; supersededSeqs
	// counts the batch sequence numbers whose individual frames never
	// arrived because a merge or snapshot covered them.
	coalescedBatches int
	supersededSeqs   int
}

type pendingAction struct {
	act        action.Action
	optimistic action.Result
	// wsd is the action's declared write set, interned at enqueue time,
	// backing the wsq multiset updates.
	wsd []uint32
}

// pendingInstall is one own action committed by a closure reply whose
// installation has not yet been acknowledged by a batch's
// InstalledUpTo — the window in which a server crash revokes the
// commit.
type pendingInstall struct {
	act action.Action
	seq uint64
	wsd []uint32
}

// NewClient returns a client engine whose both world versions start as
// init. The initial world is version 0 in the stable store, matching the
// server's convention that serial positions start at 1.
func NewClient(id action.ClientID, cfg Config, init *world.State) *Client {
	cs := world.NewMVStore()
	cs.Seed(init)
	c := &Client{
		id:             id,
		cfg:            cfg,
		co:             init.Clone(),
		cs:             cs,
		nextBatchSeq:   1,
		pendingBatches: make(map[uint64]*wire.Batch),
		intern:         world.NewInterner(),
	}
	c.div.Reset(0)
	c.scratchTx = world.NewTx(world.StateView{S: c.co})
	return c
}

// ID returns the client's identity.
func (c *Client) ID() action.ClientID { return c.id }

// NextActionID mints the identity for the client's next action.
func (c *Client) NextActionID() action.ID {
	c.nextActSeq++
	return action.ID{Client: c.id, Seq: c.nextActSeq}
}

// Optimistic returns the optimistic world version ζCO. Applications read
// it to decide their next action (it reflects local actions instantly,
// which is what makes the game feel responsive).
func (c *Client) Optimistic() *world.State { return c.co }

// Stable returns the stable world version ζCS.
func (c *Client) Stable() *world.MVStore { return c.cs }

// QueueLen reports |Q|, the number of in-flight local actions.
func (c *Client) QueueLen() int { return len(c.queue) }

// Reconciliations reports how many times Algorithm 3 ran.
func (c *Client) Reconciliations() int { return c.reconciliations }

// AppliedRemote reports how many other-client actions were evaluated
// against the stable state — the client-side compute load the Incomplete
// World Model exists to bound. Server blind writes are counted
// separately by AppliedBlind.
func (c *Client) AppliedRemote() int { return c.appliedRemote }

// AppliedBlind reports how many server-generated blind writes were
// applied to the stable state.
func (c *Client) AppliedBlind() int { return c.appliedBlind }

// Metrics snapshots the client engine's counters.
func (c *Client) Metrics() metrics.ClientStats {
	return metrics.ClientStats{
		Reconciliations: c.reconciliations,
		AppliedRemote:   c.appliedRemote,
		AppliedBlind:    c.appliedBlind,
		QueueLen:        len(c.queue),
		BufferedBatches: len(c.pendingBatches),
		DroppedBatches:  c.droppedBatches,
		ReconcileCopies: c.reconcileCopies,
		DivergedObjects: c.div.Len(),
		InternedObjects: c.intern.Len(),
		StableVersions:  c.cs.Versions(),
		PrunedBelow:     c.prunedBelow,
		Resumes:         c.resumes,
		ResumesSnapshot: c.resumesSnapshot,
		StaleBatches:    c.staleBatches,
		OwnRedelivered:  c.ownRedelivered,
		Coalesced:       c.coalescedBatches,
		Superseded:      c.supersededSeqs,
	}
}

// LastAppliedBatch returns the highest contiguously applied per-client
// batch sequence number — what a wire.Resume reports as LastBatchSeq.
func (c *Client) LastAppliedBatch() uint64 { return c.nextBatchSeq - 1 }

// markDiverged records that ζCO(id) may no longer equal the latest
// ζCS(id). Called on every optimistic write (co moved ahead) and every
// stable install (cs moved ahead); the remote-apply path removes ids it
// copies through to co.
func (c *Client) markDiverged(id world.ObjectID) {
	idx := c.intern.Intern(id)
	c.div.Grow(c.intern.Len())
	c.div.Add(idx)
}

// Submit performs step 2 of Algorithms 1/4: the action is executed on
// ζCO producing its optimistic evaluation v, the pair ⟨a,v⟩ is appended
// to Q, and a Submit message for the server is returned.
//
// The action must have been given an ID from NextActionID. The optimistic
// result is returned so the application can render the action's
// provisional effect immediately.
func (c *Client) Submit(a action.Action) (*wire.Submit, action.Result) {
	v := c.applyOptimistic(a)
	wsd := c.intern.InternSet(a.WriteSet(), nil)
	c.wsq.Grow(c.intern.Len())
	c.div.Grow(c.intern.Len())
	for _, o := range wsd {
		c.wsq.Inc(o)
	}
	c.queue = append(c.queue, pendingAction{act: a, optimistic: v.Clone(), wsd: wsd})
	return &wire.Submit{Env: action.Envelope{Origin: c.id, Act: a}}, v
}

// applyOptimistic evaluates a against ζCO and applies its writes.
func (c *Client) applyOptimistic(a action.Action) action.Result {
	res := action.Eval(a, world.StateView{S: c.co})
	c.applyOptimisticWrites(res)
	return res
}

// applyOptimisticWrites installs a result's writes into ζCO, marking
// each object diverged from the stable version. ζCO is owned outright by
// this engine and nothing retains Get results across calls, so the
// writes go through the in-place path.
func (c *Client) applyOptimisticWrites(res action.Result) {
	for _, w := range res.Writes {
		c.co.SetInPlace(w.ID, w.Val)
		c.markDiverged(w.ID)
	}
}

// unqueue removes entry i from Q, releasing its write set from the WS(Q)
// multiset and zeroing the vacated tail slot so the backing array does
// not pin the removed action and its cloned result (the same pinning bug
// the PR 1 server-queue compaction fixed).
func (c *Client) unqueue(i int) {
	for _, o := range c.queue[i].wsd {
		c.wsq.Dec(o)
	}
	copy(c.queue[i:], c.queue[i+1:])
	c.queue[len(c.queue)-1] = pendingAction{}
	c.queue = c.queue[:len(c.queue)-1]
}

// HandleBatch performs steps 4–5 of Algorithms 1/4 for every envelope in
// a server batch, restoring per-recipient batch order first: a sequenced
// batch ahead of its turn is buffered; processing resumes — possibly
// through several buffered batches — once the gap fills. Unsequenced
// batches (ClientSeq 0, from baseline servers) process immediately.
//
// A coalesced batch (CoversFrom > 0, DESIGN.md §13) stands in for the
// contiguous sequence range [CoversFrom, ClientSeq] the server's
// delivery queue merged while undelivered: it applies when the range
// contains the expected next sequence and advances past the whole range.
func (c *Client) HandleBatch(b *wire.Batch) ClientOutput {
	var out ClientOutput
	if b.ClientSeq == 0 {
		c.processBatch(b, &out)
		return out
	}
	start := b.ClientSeq
	if b.CoversFrom != 0 && b.CoversFrom < start {
		start = b.CoversFrom
	}
	if b.ClientSeq < c.nextBatchSeq {
		// Already applied: a resume's retained suffix can overlap batches
		// that arrived just before the connection died, and a relayed
		// copy can trail a direct redelivery. Buffering a stale batch
		// would pin it in pendingBatches forever.
		c.staleBatches++
		return out
	}
	if start > c.nextBatchSeq {
		max := c.cfg.MaxPendingBatches
		if max == 0 {
			max = DefaultMaxPendingBatches
		}
		// Buffered under the first sequence it covers, where the drain
		// loop below will look for it.
		if _, dup := c.pendingBatches[start]; !dup && max > 0 && len(c.pendingBatches) >= max {
			c.droppedBatches++
			out.Violations = append(out.Violations, fmt.Sprintf(
				"client %d: pending-batch buffer full (%d buffered, next expected %d); dropping batch %d",
				c.id, len(c.pendingBatches), c.nextBatchSeq, b.ClientSeq))
			return out
		}
		c.pendingBatches[start] = b
		return out
	}
	c.applySequenced(b, &out)
	for {
		next, ok := c.pendingBatches[c.nextBatchSeq]
		if !ok {
			return out
		}
		delete(c.pendingBatches, c.nextBatchSeq)
		c.applySequenced(next, &out)
	}
}

// applySequenced processes an in-order batch and advances the expected
// sequence past every number it covers, counting coalesced deliveries.
func (c *Client) applySequenced(b *wire.Batch, out *ClientOutput) {
	if b.CoversFrom != 0 && b.CoversFrom < b.ClientSeq {
		c.coalescedBatches++
		c.supersededSeqs += int(b.ClientSeq - b.CoversFrom)
	}
	c.processBatch(b, out)
	c.nextBatchSeq = b.ClientSeq + 1
}

// processBatch applies one batch in envelope order.
func (c *Client) processBatch(b *wire.Batch, out *ClientOutput) {
	for _, env := range b.Envs {
		if env.Origin == c.id {
			if b.Push {
				// A shared hybrid push batch can carry our own submission
				// (a cell-mate needed it). Install its stable writes — a
				// later action in this batch may read them — but do NOT
				// resolve it here: commit, reconciliation, and the
				// completion message belong to the closure reply, which
				// arrives in submission order. Re-evaluation there is
				// idempotent: same versions, same result.
				c.applyStable(env, out)
				continue
			}
			if c.ownRedeliverFloor > 0 && env.Act.ID().Seq <= c.ownRedeliverFloor && !c.inQueue(env.Act.ID()) {
				// A post-snapshot closure re-delivered an own action that
				// committed before the disconnect (the snapshot resume
				// cleared our sent() bits, so its dependents drag it back
				// in). Its writes are already ours; apply as remote.
				c.ownRedelivered++
				c.handleRemote(env, out)
				continue
			}
			c.handleOwn(env, out)
		} else {
			c.handleRemote(env, out)
		}
	}
	if c.cfg.ResumeWindow > 0 && b.InstalledUpTo > c.ackedInstalled {
		// The server has installed through InstalledUpTo: the retained
		// completions at or below it did their job, and the commits at or
		// below it are no longer provisional.
		c.ackedInstalled = b.InstalledUpTo
		i := 0
		for i < len(c.sentCompletions) && c.sentCompletions[i].Seq <= c.ackedInstalled {
			i++
		}
		if i > 0 {
			c.sentCompletions = append(c.sentCompletions[:0], c.sentCompletions[i:]...)
		}
		c.pruneInstallPending(c.ackedInstalled)
	}
	if b.InstalledUpTo > c.prunedBelow && !c.cfg.DisableGC {
		// Server-driven garbage collection (Section III-C): versions at
		// or below the installed point can never be read again by a
		// correctly formed batch, because blind writes are stamped at the
		// install point.
		c.cs.PruneBelow(b.InstalledUpTo)
		c.prunedBelow = b.InstalledUpTo
	}
}

// handleRemote is step 4: "action b originated at some other client, or
// is a blind write created by the server". The action is applied to ζCS;
// each of its writes is also performed on ζCO if and only if the object
// is not in WS(Q) (those objects are awaiting permanent values for the
// client's own in-flight actions).
func (c *Client) handleRemote(env action.Envelope, out *ClientOutput) {
	res := c.applyStable(env, out)
	if env.Origin == action.OriginServer {
		c.appliedBlind++
	} else {
		c.appliedRemote++
	}
	out.Applied = append(out.Applied, env.Act)

	for _, w := range res.Writes {
		// applyStable interned every written id.
		idx, _ := c.intern.Lookup(w.ID)
		if c.wsq.Contains(idx) {
			continue
		}
		c.co.SetInPlace(w.ID, w.Val)
		// The object leaves the divergence set only if this write is the
		// stable store's newest version for it — under the Incomplete
		// World Model a closure can deliver an envelope older than
		// already-applied ones, and then ζCO just took a non-latest
		// value, which stays diverged.
		if _, seq, ok := c.cs.Latest(w.ID); ok && seq == env.Seq {
			c.div.Remove(idx)
		}
	}

	if c.cfg.FailureTolerant && env.Origin != action.OriginServer {
		// Failure-tolerance extension: complete every applied action.
		out.ToServer = append(out.ToServer, &wire.Completion{
			Seq: env.Seq, By: c.id, Res: res,
		})
	}
}

// handleOwn is step 5: the returned action must be a1, the head of Q
// (server replies and pushes are FIFO per link, so a client's own actions
// come back in submission order). Its stable evaluation u is compared
// with the optimistic evaluation v1; on disagreement Algorithm 3
// reconciles ζCO with ζCS. In the incomplete-world modes a completion
// message ⟨a1, u⟩ is sent to the server either way.
func (c *Client) handleOwn(env action.Envelope, out *ClientOutput) {
	if len(c.queue) == 0 || c.queue[0].act.ID() != env.Act.ID() {
		out.Violations = append(out.Violations, fmt.Sprintf(
			"client %d: own action %v returned out of order (queue head %v)",
			c.id, env.Act.ID(), c.queueHeadID()))
		// Recover by treating it as remote so the stable state stays
		// correct even if the transport misbehaved.
		c.handleRemote(env, out)
		return
	}

	u := c.applyStable(env, out)
	head := c.queue[0]
	c.unqueue(0)

	reconciled := false
	if !u.Equal(head.optimistic) {
		c.reconcile(head.act.WriteSet())
		reconciled = true
	}

	out.Commits = append(out.Commits, Commit{
		ActID:      env.Act.ID(),
		Seq:        env.Seq,
		Res:        u.Clone(),
		Reconciled: reconciled,
	})

	if c.cfg.Mode >= ModeIncomplete {
		cm := &wire.Completion{Seq: env.Seq, By: c.id, Res: u}
		out.ToServer = append(out.ToServer, cm)
		if c.cfg.ResumeWindow > 0 {
			// Retain until a batch's InstalledUpTo covers it: if this
			// completion is lost with the connection, the resume re-sends
			// it (the server installs nothing past env.Seq-1 without it).
			// The action itself is retained alongside — if the server
			// crashes before installing, the boot fence re-queues it.
			c.sentCompletions = append(c.sentCompletions, cm)
			c.installPending = append(c.installPending, pendingInstall{act: head.act, seq: env.Seq, wsd: head.wsd})
		}
	}
}

// pruneInstallPending drops provisional-commit records at or below the
// acknowledged install point, zeroing vacated slots so the backing
// array does not pin resolved actions.
func (c *Client) pruneInstallPending(upTo uint64) {
	j := 0
	for j < len(c.installPending) && c.installPending[j].seq <= upTo {
		j++
	}
	if j == 0 {
		return
	}
	n := copy(c.installPending, c.installPending[j:])
	for k := n; k < len(c.installPending); k++ {
		c.installPending[k] = pendingInstall{}
	}
	c.installPending = c.installPending[:n]
}

// inQueue reports whether an own action is still pending in Q.
func (c *Client) inQueue(id action.ID) bool {
	for i := range c.queue {
		if c.queue[i].act.ID() == id {
			return true
		}
	}
	return false
}

// applyStable evaluates env against ζCS as of its serial position and
// installs its writes at that position. Each installed object is marked
// diverged: the stable version moved, so it may no longer match ζCO.
//
// The transaction is deliberately fresh per call — the returned Result
// aliases its write log and escapes in completion messages.
func (c *Client) applyStable(env action.Envelope, out *ClientOutput) action.Result {
	at := env.Seq
	if at > 0 {
		at-- // an action at position n reads the state after 1..n-1
	}
	view := world.AtView{M: c.cs, Seq: at}
	tx := world.NewTx(view)
	ok := env.Act.Apply(tx)

	if c.cfg.Strict {
		if err := action.CheckAccess(env.Act, tx); err != nil {
			out.Violations = append(out.Violations, err.Error())
		}
		// A read of an object with no version at or before env.Seq-1
		// means the closure failed to deliver a needed value — the
		// protocol bug Theorem 1 rules out.
		for _, id := range tx.Missed() {
			out.Violations = append(out.Violations, fmt.Sprintf(
				"client %d: action %v (seq %d) read object %d with no delivered version",
				c.id, env.Act.ID(), env.Seq, id))
		}
	}

	res := action.Result{OK: ok}
	if ok {
		res.Writes = tx.Writes()
		for _, w := range res.Writes {
			c.cs.WriteAt(w.ID, env.Seq, w.Val)
			c.markDiverged(w.ID)
		}
	}
	return res
}

// HandleRelay applies a hybrid push batch and schedules peer-to-peer
// forwards of the same batch to the other targets (Section VII hybrid
// mode). The forwarded copies share the inner batch's envelope slice —
// the encode-once fan-out case wire.EncodeCache serves — and differ only
// in the per-recipient sequence header. The relay client is always among
// the targets; it does not forward to itself.
func (c *Client) HandleRelay(m *wire.Relay) ClientOutput {
	// Forward first — peers must not wait on this client's own ordering.
	var out ClientOutput
	for i, t := range m.Targets {
		if t == c.id {
			continue
		}
		fwd := &wire.Batch{
			Envs:          m.Inner.Envs,
			Push:          true,
			InstalledUpTo: m.Inner.InstalledUpTo,
		}
		if i < len(m.TargetSeqs) {
			fwd.ClientSeq = m.TargetSeqs[i]
		}
		out.ToPeers = append(out.ToPeers, Reply{
			To: t, Msg: fwd,
			Deliver: Delivery{Class: DeliveryOrdered},
		})
	}
	inner := c.HandleBatch(m.Inner)
	out.ToServer = append(out.ToServer, inner.ToServer...)
	out.Applied = append(out.Applied, inner.Applied...)
	out.Commits = append(out.Commits, inner.Commits...)
	out.DroppedLocal = append(out.DroppedLocal, inner.DroppedLocal...)
	out.Violations = append(out.Violations, inner.Violations...)
	return out
}

// HandleDrop aborts a locally originated action that the Information
// Bound Model invalidated (Algorithm 7: isValid = false). The entry is
// removed from Q and, since its optimistic writes are now wrong,
// Algorithm 3 reconciles.
func (c *Client) HandleDrop(d *wire.Drop) ClientOutput {
	var out ClientOutput
	for i := range c.queue {
		if c.queue[i].act.ID() == d.ActID {
			ws := c.queue[i].act.WriteSet()
			c.unqueue(i)
			c.reconcile(ws)
			out.DroppedLocal = append(out.DroppedLocal, d.ActID)
			return out
		}
	}
	out.Violations = append(out.Violations, fmt.Sprintf(
		"client %d: drop notice for unknown action %v", c.id, d.ActID))
	return out
}

// HandleCatchUp resumes the session after a reconnect. The transport
// obtained m by presenting the session token; the verdict either
// confirms a suffix replay (the retained batches follow through the
// normal HandleBatch path) or carries the snapshot fallback, from
// which ζCS and ζCO are rebuilt at the server's install point. Either
// way, in-flight actions the server never saw are re-submitted and
// retained completions past the install point are re-sent.
func (c *Client) HandleCatchUp(m *wire.CatchUp) ClientOutput {
	var out ClientOutput
	if !m.OK {
		out.Violations = append(out.Violations, fmt.Sprintf(
			"client %d: resume rejected by server (token unknown or stale)", c.id))
		return out
	}
	c.resumes++

	// Actions invalidated while we were away: their Drop notices died
	// with the connection. Unknown ids are fine — the original Drop may
	// have been processed before the disconnect.
	for _, id := range m.DroppedActs {
		for i := range c.queue {
			if c.queue[i].act.ID() == id {
				ws := c.queue[i].act.WriteSet()
				c.unqueue(i)
				if !m.Snapshot {
					// The snapshot rebuild below re-derives ζCO wholesale;
					// reconciling against the pre-snapshot state first
					// would be wasted work.
					c.reconcile(ws)
				}
				out.DroppedLocal = append(out.DroppedLocal, id)
				break
			}
		}
	}

	if m.Boot != c.boot {
		// The server restarted from its journal: serial positions above
		// its recovery floor were rolled back and will be re-issued.
		// Everything the previous boot placed above the floor is void —
		// retained completions, provisional commits, stable versions.
		c.boot = m.Boot
		c.fenceBoot(m, &out)
	}

	if m.Snapshot {
		c.resumesSnapshot++
		c.rebuildFromSnapshot(m)
	}

	// Re-submit in-flight actions the server never accepted — their
	// uploads were lost, or the crash rolled their positions back. Queue
	// order is submission order (the boot fence re-queues revoked
	// actions at the front, where their action sequence numbers keep it
	// that way), so the server re-stamps them in the original relative
	// order.
	for i := range c.queue {
		if c.queue[i].act.ID().Seq > m.LastActSeq {
			out.ToServer = append(out.ToServer, &wire.Submit{
				Env: action.Envelope{Origin: c.id, Act: c.queue[i].act},
			})
		}
	}
	// Re-send completions the server has not installed past; duplicates
	// are idempotent on the server (pendingRes/installed checks).
	for _, cm := range c.sentCompletions {
		if cm.Seq > m.InstalledUpTo {
			out.ToServer = append(out.ToServer, cm)
		}
	}
	return out
}

// fenceBoot rolls the client back to the restarted server's recovery
// floor. Completions retained for rolled-back positions are dropped
// (re-sending them could poison the re-issued positions), own actions
// whose commits the crash revoked go back to the front of the queue —
// their commits are withdrawn through out.Revoked and they re-commit
// at their re-issued positions — and, on the suffix path, stable
// versions above the floor are truncated and the optimistic state is
// rebuilt over what survived (the snapshot path rebuilds wholesale in
// rebuildFromSnapshot instead).
func (c *Client) fenceBoot(m *wire.CatchUp, out *ClientOutput) {
	i := 0
	for i < len(c.sentCompletions) && c.sentCompletions[i].Seq <= m.BootFloor {
		i++
	}
	c.sentCompletions = c.sentCompletions[:i]

	j := 0
	for j < len(c.installPending) && c.installPending[j].seq <= m.BootFloor {
		j++
	}
	revoked := c.installPending[j:]
	if len(revoked) == 0 {
		return
	}
	// Re-queue in original submission order, ahead of everything still
	// queued (all of which was submitted later), restoring each write
	// set to the WS(Q) multiset.
	requeued := make([]pendingAction, 0, len(revoked)+len(c.queue))
	c.wsq.Grow(c.intern.Len())
	for _, p := range revoked {
		out.Revoked = append(out.Revoked, Commit{ActID: p.act.ID(), Seq: p.seq})
		for _, o := range p.wsd {
			c.wsq.Inc(o)
		}
		requeued = append(requeued, pendingAction{act: p.act, wsd: p.wsd})
	}
	c.queue = append(requeued, c.queue...)
	c.installPending = c.installPending[:j]

	if !m.Snapshot {
		// Suffix resume: the session numbering continues, but every
		// stable version above the floor — own, remote, or blind, all
		// delivered by the dead boot for positions that no longer exist —
		// must go. ζCO restarts from the surviving latest versions with
		// the (now extended) queue re-applied on top, mirroring the
		// rebuildFromSnapshot tail.
		c.cs.TruncateAbove(m.BootFloor)
		c.co = c.cs.LatestState()
		c.div.Reset(c.intern.Len())
		for i := range c.queue {
			res := c.applyOptimistic(c.queue[i].act)
			res.CloneInto(&c.queue[i].optimistic)
		}
	}
}

// SetBoot records the server's recovery generation from the handshake
// (Welcome.Boot, or the CatchUp of a resume against a restarted
// server); see the boot field for the fencing it arms.
func (c *Client) SetBoot(b uint64) { c.boot = b }

// rebuildFromSnapshot replaces both world versions with the CatchUp's
// blind-write snapshot: ζCS restarts as a fresh multiversion store
// seeded at the server's install point (NOT at version 0 — Theorem 1's
// per-version guarantee is against the serial replay as of each seq),
// and ζCO is the same state with the surviving queue re-applied
// optimistically on top.
func (c *Client) rebuildFromSnapshot(m *wire.CatchUp) {
	cs := world.NewMVStore()
	co := world.NewState()
	for _, w := range m.Writes {
		cs.WriteAt(w.ID, m.InstalledUpTo, w.Val)
		co.Set(w.ID, w.Val)
	}
	c.cs = cs
	c.co = co
	c.prunedBelow = m.InstalledUpTo
	c.ackedInstalled = m.InstalledUpTo
	// Both versions are identical now; divergence restarts from the
	// optimistic re-apply below. wsq is untouched — the queue (after
	// drop processing) still owns exactly its declared write sets.
	c.div.Reset(c.intern.Len())
	for i := range c.queue {
		res := c.applyOptimistic(c.queue[i].act)
		res.CloneInto(&c.queue[i].optimistic)
	}
	// Batch numbering restarts; anything buffered predates the snapshot.
	// A forward jump means the skipped numbers' frames were superseded
	// (mid-session catch-up) or lost past the window — either way they
	// were never individually delivered.
	if m.NextBatchSeq > c.nextBatchSeq {
		c.supersededSeqs += int(m.NextBatchSeq - c.nextBatchSeq)
	}
	c.nextBatchSeq = m.NextBatchSeq
	clear(c.pendingBatches)
	c.ownRedeliverFloor = m.LastActSeq
	// Retained completions and provisional commits at or below the
	// install point are obsolete (the pruning in processBatch may not
	// have seen the latest marker).
	i := 0
	for i < len(c.sentCompletions) && c.sentCompletions[i].Seq <= m.InstalledUpTo {
		i++
	}
	if i > 0 {
		c.sentCompletions = append(c.sentCompletions[:0], c.sentCompletions[i:]...)
	}
	c.pruneInstallPending(m.InstalledUpTo)
}

// HandleMsg dispatches any server message.
func (c *Client) HandleMsg(msg wire.Msg) ClientOutput {
	switch m := msg.(type) {
	case *wire.Batch:
		return c.HandleBatch(m)
	case *wire.Relay:
		return c.HandleRelay(m)
	case *wire.Drop:
		return c.HandleDrop(m)
	case *wire.CatchUp:
		return c.HandleCatchUp(m)
	case *wire.Quarantine:
		return c.HandleQuarantine(m)
	default:
		return ClientOutput{Violations: []string{
			fmt.Sprintf("client %d: unexpected message type %d", c.id, msg.Type()),
		}}
	}
}

// HandleQuarantine records a server integrity verdict (DESIGN.md §16).
// Not a protocol violation from the engine's point of view — the
// message is well-formed server control flow — but the session is over:
// the server silently ignores all further traffic from this ledger and
// refuses its resumes, so the transport layer stops permanently instead
// of reconnecting.
func (c *Client) HandleQuarantine(m *wire.Quarantine) ClientOutput {
	c.quarantined = true
	c.quarReason = m.Reason
	return ClientOutput{}
}

// Quarantined reports whether the server issued an integrity verdict
// against this client, and the violation reason code it carried.
func (c *Client) Quarantined() (reason uint8, ok bool) {
	return c.quarReason, c.quarantined
}

// reconcile is Algorithm 3: ζCO(WS(Q)) ← ζCS(WS(Q)), then the queued
// actions are re-applied to ζCO in order, refreshing their optimistic
// results.
//
// Two clarifications relative to the paper's pseudocode. First,
// Algorithm 3 as printed re-inserts a1 even when invoked from step 5,
// where a1 has just committed with its final stable result; re-queueing
// it would wait forever for a second return. The intent — and this
// implementation — is that the already-resolved head is removed before
// reconciliation and only the still-pending suffix is re-applied.
// Second, the rollback set must include the write set of the action that
// was just resolved (committed with a different result, or dropped):
// its optimistic writes are exactly the divergent ones, and they are no
// longer covered by WS(Q) once it leaves the queue. resolvedWS carries it.
//
// The default path rolls back only the members of the tracked
// divergence set that fall inside WS(Q) ∪ resolvedWS, then re-applies
// the queue through one scratch transaction, refreshing each optimistic
// result in place. The divergence invariant (DESIGN.md §8) makes this
// exactly equivalent to the full-union rollback: every object of the
// rollback set outside the divergence set already has ζCO = ζCS, so the
// copies skipped are precisely the no-ops. Config.
// DisableIncrementalReconcile selects the literal full-union rollback
// instead; TestReconcileEquivalence pins the two paths to identical
// observable behaviour.
func (c *Client) reconcile(resolvedWS world.IDSet) {
	c.reconciliations++
	if c.cfg.DisableIncrementalReconcile {
		ws := c.queueWriteSet().Union(resolvedWS)
		c.co.CopyFrom(c.cs, ws)
		for i := range c.queue {
			c.queue[i].optimistic = c.applyOptimistic(c.queue[i].act).Clone()
		}
		return
	}

	// Roll back exactly the objects tracked as diverged within the
	// rollback set WS(Q) ∪ resolvedWS: copy the stable version's latest
	// value over ζCO, deleting objects ζCS no longer has — CopyFrom
	// semantics, restricted to where a copy would change anything. The
	// rest of the rollback set is untouched because, by the divergence
	// invariant, ζCO already equals ζCS there; divergence outside the
	// rollback set stays tracked for a later reconciliation.
	c.resolvedScratch = c.intern.InternSet(resolvedWS, c.resolvedScratch[:0])
	c.div.Grow(c.intern.Len())
	c.wsq.Grow(c.intern.Len())
	c.divScratch = c.div.AppendMembers(c.divScratch[:0])
	for _, idx := range c.divScratch {
		inSet := c.wsq.Contains(idx)
		for _, r := range c.resolvedScratch {
			if inSet {
				break
			}
			inSet = r == idx
		}
		if !inSet {
			continue
		}
		id := c.intern.ID(idx)
		if v, ok := c.cs.Get(id); ok {
			c.co.SetInPlace(id, v)
		} else {
			c.co.Delete(id)
		}
		c.div.Remove(idx)
		c.reconcileCopies++
	}

	// Re-apply the still-pending queue through the scratch transaction,
	// refreshing each optimistic result into its existing buffers.
	for i := range c.queue {
		c.scratchTx.Reset(world.StateView{S: c.co})
		res := action.EvalTx(c.queue[i].act, c.scratchTx)
		c.applyOptimisticWrites(res)
		res.CloneInto(&c.queue[i].optimistic)
	}
}

// queueWriteSet returns WS(Q), the union of the declared write sets of
// the pending actions. Only the full-rollback reconcile path still needs
// it; membership tests use the wsq multiset.
func (c *Client) queueWriteSet() world.IDSet {
	var ws world.IDSet
	for _, p := range c.queue {
		ws = ws.Union(p.act.WriteSet())
	}
	return ws
}

func (c *Client) queueHeadID() action.ID {
	if len(c.queue) == 0 {
		return action.ID{}
	}
	return c.queue[0].act.ID()
}
