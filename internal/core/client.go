package core

import (
	"fmt"

	"seve/internal/action"
	"seve/internal/wire"
	"seve/internal/world"
)

// Client is the client-side protocol engine: Algorithm 1 in ModeBasic and
// Algorithm 4 in the incomplete-world modes, with Algorithm 3 as the
// reconciliation procedure.
//
// The client maintains two versions of the world state (Section III-A):
// an optimistic version ζCO to which locally created actions are applied
// immediately, and a stable version ζCS to which actions are applied in
// the server-assigned serial order. ζCS is a multiversion store because
// under the Incomplete World Model the server may deliver an action older
// than ones the client has already applied (a later transitive closure
// can reach further back); replaying it exactly requires reading each
// object as of the action's serial position. See world.MVStore.
type Client struct {
	id  action.ClientID
	cfg Config

	co *world.State   // ζCO, optimistic
	cs *world.MVStore // ζCS, stable (multiversion)

	// queue is Q = [⟨a1,v1⟩, …, ⟨ak,vk⟩]: locally generated actions not
	// yet received back from the server, with their optimistic results.
	queue []pendingAction

	nextActSeq uint32

	// Batch-order restoration: batches from the server are numbered per
	// recipient; relayed copies take a two-hop path and can arrive out of
	// order relative to direct replies, which would violate the
	// closures' sent() assumptions. pendingBatches buffers gaps.
	nextBatchSeq   uint64
	pendingBatches map[uint64]*wire.Batch

	// stats
	reconciliations int
	appliedRemote   int
	appliedBlind    int
	prunedBelow     uint64
}

type pendingAction struct {
	act        action.Action
	optimistic action.Result
}

// NewClient returns a client engine whose both world versions start as
// init. The initial world is version 0 in the stable store, matching the
// server's convention that serial positions start at 1.
func NewClient(id action.ClientID, cfg Config, init *world.State) *Client {
	cs := world.NewMVStore()
	cs.Seed(init)
	return &Client{
		id:             id,
		cfg:            cfg,
		co:             init.Clone(),
		cs:             cs,
		nextBatchSeq:   1,
		pendingBatches: make(map[uint64]*wire.Batch),
	}
}

// ID returns the client's identity.
func (c *Client) ID() action.ClientID { return c.id }

// NextActionID mints the identity for the client's next action.
func (c *Client) NextActionID() action.ID {
	c.nextActSeq++
	return action.ID{Client: c.id, Seq: c.nextActSeq}
}

// Optimistic returns the optimistic world version ζCO. Applications read
// it to decide their next action (it reflects local actions instantly,
// which is what makes the game feel responsive).
func (c *Client) Optimistic() *world.State { return c.co }

// Stable returns the stable world version ζCS.
func (c *Client) Stable() *world.MVStore { return c.cs }

// QueueLen reports |Q|, the number of in-flight local actions.
func (c *Client) QueueLen() int { return len(c.queue) }

// Reconciliations reports how many times Algorithm 3 ran.
func (c *Client) Reconciliations() int { return c.reconciliations }

// AppliedRemote reports how many other-client actions were evaluated
// against the stable state — the client-side compute load the Incomplete
// World Model exists to bound. Server blind writes are counted
// separately by AppliedBlind.
func (c *Client) AppliedRemote() int { return c.appliedRemote }

// AppliedBlind reports how many server-generated blind writes were
// applied to the stable state.
func (c *Client) AppliedBlind() int { return c.appliedBlind }

// Submit performs step 2 of Algorithms 1/4: the action is executed on
// ζCO producing its optimistic evaluation v, the pair ⟨a,v⟩ is appended
// to Q, and a Submit message for the server is returned.
//
// The action must have been given an ID from NextActionID. The optimistic
// result is returned so the application can render the action's
// provisional effect immediately.
func (c *Client) Submit(a action.Action) (*wire.Submit, action.Result) {
	v := c.applyOptimistic(a)
	c.queue = append(c.queue, pendingAction{act: a, optimistic: v.Clone()})
	return &wire.Submit{Env: action.Envelope{Origin: c.id, Act: a}}, v
}

// applyOptimistic evaluates a against ζCO and applies its writes.
func (c *Client) applyOptimistic(a action.Action) action.Result {
	res := action.Eval(a, world.StateView{S: c.co})
	for _, w := range res.Writes {
		c.co.Set(w.ID, w.Val)
	}
	return res
}

// HandleBatch performs steps 4–5 of Algorithms 1/4 for every envelope in
// a server batch, restoring per-recipient batch order first: a sequenced
// batch ahead of its turn is buffered; processing resumes — possibly
// through several buffered batches — once the gap fills. Unsequenced
// batches (ClientSeq 0, from baseline servers) process immediately.
func (c *Client) HandleBatch(b *wire.Batch) ClientOutput {
	var out ClientOutput
	if b.ClientSeq == 0 {
		c.processBatch(b, &out)
		return out
	}
	if b.ClientSeq != c.nextBatchSeq {
		c.pendingBatches[b.ClientSeq] = b
		return out
	}
	c.processBatch(b, &out)
	c.nextBatchSeq++
	for {
		next, ok := c.pendingBatches[c.nextBatchSeq]
		if !ok {
			return out
		}
		delete(c.pendingBatches, c.nextBatchSeq)
		c.processBatch(next, &out)
		c.nextBatchSeq++
	}
}

// processBatch applies one batch in envelope order.
func (c *Client) processBatch(b *wire.Batch, out *ClientOutput) {
	for _, env := range b.Envs {
		if env.Origin == c.id {
			if b.Push {
				// A shared hybrid push batch can carry our own submission
				// (a cell-mate needed it). Install its stable writes — a
				// later action in this batch may read them — but do NOT
				// resolve it here: commit, reconciliation, and the
				// completion message belong to the closure reply, which
				// arrives in submission order. Re-evaluation there is
				// idempotent: same versions, same result.
				c.applyStable(env, out)
				continue
			}
			c.handleOwn(env, out)
		} else {
			c.handleRemote(env, out)
		}
	}
	if b.InstalledUpTo > c.prunedBelow && !c.cfg.DisableGC {
		// Server-driven garbage collection (Section III-C): versions at
		// or below the installed point can never be read again by a
		// correctly formed batch, because blind writes are stamped at the
		// install point.
		c.cs.PruneBelow(b.InstalledUpTo)
		c.prunedBelow = b.InstalledUpTo
	}
}

// handleRemote is step 4: "action b originated at some other client, or
// is a blind write created by the server". The action is applied to ζCS;
// each of its writes is also performed on ζCO if and only if the object
// is not in WS(Q) (those objects are awaiting permanent values for the
// client's own in-flight actions).
func (c *Client) handleRemote(env action.Envelope, out *ClientOutput) {
	res := c.applyStable(env, out)
	if env.Origin == action.OriginServer {
		c.appliedBlind++
	} else {
		c.appliedRemote++
	}
	out.Applied = append(out.Applied, env.Act)

	wsQ := c.queueWriteSet()
	for _, w := range res.Writes {
		if !wsQ.Contains(w.ID) {
			c.co.Set(w.ID, w.Val)
		}
	}

	if c.cfg.FailureTolerant && env.Origin != action.OriginServer {
		// Failure-tolerance extension: complete every applied action.
		out.ToServer = append(out.ToServer, &wire.Completion{
			Seq: env.Seq, By: c.id, Res: res,
		})
	}
}

// handleOwn is step 5: the returned action must be a1, the head of Q
// (server replies and pushes are FIFO per link, so a client's own actions
// come back in submission order). Its stable evaluation u is compared
// with the optimistic evaluation v1; on disagreement Algorithm 3
// reconciles ζCO with ζCS. In the incomplete-world modes a completion
// message ⟨a1, u⟩ is sent to the server either way.
func (c *Client) handleOwn(env action.Envelope, out *ClientOutput) {
	if len(c.queue) == 0 || c.queue[0].act.ID() != env.Act.ID() {
		out.Violations = append(out.Violations, fmt.Sprintf(
			"client %d: own action %v returned out of order (queue head %v)",
			c.id, env.Act.ID(), c.queueHeadID()))
		// Recover by treating it as remote so the stable state stays
		// correct even if the transport misbehaved.
		c.handleRemote(env, out)
		return
	}

	u := c.applyStable(env, out)
	head := c.queue[0]
	c.queue = c.queue[1:]

	reconciled := false
	if !u.Equal(head.optimistic) {
		c.reconcile(head.act.WriteSet())
		reconciled = true
	}

	out.Commits = append(out.Commits, Commit{
		ActID:      env.Act.ID(),
		Seq:        env.Seq,
		Res:        u.Clone(),
		Reconciled: reconciled,
	})

	if c.cfg.Mode >= ModeIncomplete {
		out.ToServer = append(out.ToServer, &wire.Completion{
			Seq: env.Seq, By: c.id, Res: u,
		})
	}
}

// applyStable evaluates env against ζCS as of its serial position and
// installs its writes at that position.
func (c *Client) applyStable(env action.Envelope, out *ClientOutput) action.Result {
	at := env.Seq
	if at > 0 {
		at-- // an action at position n reads the state after 1..n-1
	}
	view := world.AtView{M: c.cs, Seq: at}
	tx := world.NewTx(view)
	ok := env.Act.Apply(tx)

	if c.cfg.Strict {
		if err := action.CheckAccess(env.Act, tx); err != nil {
			out.Violations = append(out.Violations, err.Error())
		}
		// A read of an object with no version at or before env.Seq-1
		// means the closure failed to deliver a needed value — the
		// protocol bug Theorem 1 rules out.
		for _, id := range tx.Missed() {
			out.Violations = append(out.Violations, fmt.Sprintf(
				"client %d: action %v (seq %d) read object %d with no delivered version",
				c.id, env.Act.ID(), env.Seq, id))
		}
	}

	res := action.Result{OK: ok}
	if ok {
		res.Writes = tx.Writes()
		for _, w := range res.Writes {
			c.cs.WriteAt(w.ID, env.Seq, w.Val)
		}
	}
	return res
}

// HandleRelay applies a hybrid push batch and schedules peer-to-peer
// forwards of the same batch to the other targets (Section VII hybrid
// mode). The relay client is always among the targets; it does not
// forward to itself.
func (c *Client) HandleRelay(m *wire.Relay) ClientOutput {
	// Forward first — peers must not wait on this client's own ordering.
	var out ClientOutput
	for i, t := range m.Targets {
		if t == c.id {
			continue
		}
		copy := &wire.Batch{
			Envs:          m.Inner.Envs,
			Push:          true,
			InstalledUpTo: m.Inner.InstalledUpTo,
		}
		if i < len(m.TargetSeqs) {
			copy.ClientSeq = m.TargetSeqs[i]
		}
		out.ToPeers = append(out.ToPeers, Reply{To: t, Msg: copy})
	}
	inner := c.HandleBatch(m.Inner)
	out.ToServer = append(out.ToServer, inner.ToServer...)
	out.Applied = append(out.Applied, inner.Applied...)
	out.Commits = append(out.Commits, inner.Commits...)
	out.DroppedLocal = append(out.DroppedLocal, inner.DroppedLocal...)
	out.Violations = append(out.Violations, inner.Violations...)
	return out
}

// HandleDrop aborts a locally originated action that the Information
// Bound Model invalidated (Algorithm 7: isValid = false). The entry is
// removed from Q and, since its optimistic writes are now wrong,
// Algorithm 3 reconciles.
func (c *Client) HandleDrop(d *wire.Drop) ClientOutput {
	var out ClientOutput
	for i := range c.queue {
		if c.queue[i].act.ID() == d.ActID {
			ws := c.queue[i].act.WriteSet()
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			c.reconcile(ws)
			out.DroppedLocal = append(out.DroppedLocal, d.ActID)
			return out
		}
	}
	out.Violations = append(out.Violations, fmt.Sprintf(
		"client %d: drop notice for unknown action %v", c.id, d.ActID))
	return out
}

// HandleMsg dispatches any server message.
func (c *Client) HandleMsg(msg wire.Msg) ClientOutput {
	switch m := msg.(type) {
	case *wire.Batch:
		return c.HandleBatch(m)
	case *wire.Relay:
		return c.HandleRelay(m)
	case *wire.Drop:
		return c.HandleDrop(m)
	default:
		return ClientOutput{Violations: []string{
			fmt.Sprintf("client %d: unexpected message type %d", c.id, msg.Type()),
		}}
	}
}

// reconcile is Algorithm 3: ζCO(WS(Q)) ← ζCS(WS(Q)), then the queued
// actions are re-applied to ζCO in order, refreshing their optimistic
// results.
//
// Two clarifications relative to the paper's pseudocode. First,
// Algorithm 3 as printed re-inserts a1 even when invoked from step 5,
// where a1 has just committed with its final stable result; re-queueing
// it would wait forever for a second return. The intent — and this
// implementation — is that the already-resolved head is removed before
// reconciliation and only the still-pending suffix is re-applied.
// Second, the rollback set must include the write set of the action that
// was just resolved (committed with a different result, or dropped):
// its optimistic writes are exactly the divergent ones, and they are no
// longer covered by WS(Q) once it leaves the queue. resolvedWS carries it.
func (c *Client) reconcile(resolvedWS world.IDSet) {
	c.reconciliations++
	ws := c.queueWriteSet().Union(resolvedWS)
	c.co.CopyFrom(c.cs, ws)
	for i := range c.queue {
		c.queue[i].optimistic = c.applyOptimistic(c.queue[i].act).Clone()
	}
}

// queueWriteSet returns WS(Q), the union of the declared write sets of
// the pending actions.
func (c *Client) queueWriteSet() world.IDSet {
	var ws world.IDSet
	for _, p := range c.queue {
		ws = ws.Union(p.act.WriteSet())
	}
	return ws
}

func (c *Client) queueHeadID() action.ID {
	if len(c.queue) == 0 {
		return action.ID{}
	}
	return c.queue[0].act.ID()
}
