package core

import (
	"runtime"
	"sort"
	"sync"

	"seve/internal/action"
	"seve/internal/geom"
	"seve/internal/wire"
	"seve/internal/world"
)

// Tick runs the First Bound push cycle (Section III-D): "at regular
// intervals of ω·RTT time, the server sends to each client C all actions
// submitted in the previous ω·RTT that could possibly affect any of C's
// future actions". The transport adapter calls Tick every
// Config.PushIntervalMs milliseconds in ModeFirstBound and above.
//
// Eligibility of action A for client C is Equation (1):
//
//	‖p̄A − p̄C‖ ≤ 2s·(1+ω)·RTT + rC + rA
//
// refined by area culling (Section IV-B) for actions that carry a
// velocity vector, and by interest-class elimination (Section IV-A) when
// enabled. Actions already sent to C — including everything C received
// in closure replies — are skipped via the sent(a) bookkeeping shared
// with Algorithm 6.
//
// The cycle is a plan/commit scheduler. Planning — the per-client
// eligibility scan over the window plus the Algorithm 6 closure walk —
// only reads engine state, so it fans out over a bounded worker pool
// (Config.PushWorkers). The commit phase then applies every plan in
// ascending client order: sent() marks, blind-write ids, per-client
// batch sequence numbers, replies, counters. Because plans for
// different clients are independent (sent() is per-client and nothing
// else mutates during planning), the output is byte-identical whatever
// the pool width — TestTickParallelDeterminism holds the scheduler to
// that.
func (s *Server) Tick(nowMs float64) ServerOutput {
	var out ServerOutput
	if s.cfg.Mode < ModeFirstBound {
		return out
	}
	if s.cfg.HybridRelay {
		s.hybridTick(nowMs, &out)
		return out
	}
	windowStart := s.lastPushMs
	s.lastPushMs = nowMs

	// Deterministic client order: map iteration order would randomize
	// reply ordering and, through link serialization, the whole
	// simulation timeline.
	cids := make([]action.ClientID, 0, len(s.clients))
	for cid := range s.clients {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })

	// The push window is shared by every client; collect it once
	// instead of once per client.
	window := s.tickWindow[:0]
	for i, e := range s.queue {
		if e.stampedMs > windowStart && e.stampedMs <= nowMs {
			window = append(window, i)
		}
	}
	s.tickWindow = window
	if len(window) == 0 || len(cids) == 0 {
		return out
	}

	s.pushTicks++
	plans := make([]ReplyPlan, len(cids))
	workers := s.pushWorkerCount(len(cids))
	if workers <= 1 {
		sc := s.scratchFor(0)
		for i, cid := range cids {
			plans[i] = s.planPush(cid, window, nowMs, sc)
		}
	} else {
		s.pushParallelTicks++
		// Grow the scratch pool before fan-out: scratchFor appends to
		// s.scratch, which must not happen concurrently.
		s.scratchFor(workers - 1)
		tasks := make([]func(), workers)
		for w := 0; w < workers; w++ {
			w := w
			tasks[w] = func() {
				sc := s.scratchFor(w)
				for i := w; i < len(cids); i += workers {
					plans[i] = s.planPush(cids[i], window, nowMs, sc)
				}
			}
		}
		s.runPlanTasks(tasks)
	}

	for i, cid := range cids {
		s.commitPush(cid, &plans[i], &out)
	}
	return out
}

// SetPlanExecutor registers a parallel executor for the engine's
// read-only planning fan-outs (the First Bound push). fn must run every
// task to completion — concurrently or not — before returning. The
// shard router injects its persistent lane workers here so a Tick
// reuses them instead of spawning a fresh goroutine pool per cycle
// (goroutine start-up was the measured overhead that made small-fleet
// sharded ticks slower than the single-lane engine). Pass nil to
// restore the internal pool.
func (s *Server) SetPlanExecutor(fn func(tasks []func())) { s.planExec = fn }

// runPlanTasks executes read-only planning tasks, through the injected
// executor when one is registered.
func (s *Server) runPlanTasks(tasks []func()) {
	if s.planExec != nil {
		s.planExec(tasks)
		return
	}
	var wg sync.WaitGroup
	for _, t := range tasks {
		wg.Add(1)
		go func(t func()) {
			defer wg.Done()
			t()
		}(t)
	}
	wg.Wait()
}

// ReplyPlan is the read-only result of planning one batch — a
// submission reply (PlanReply) or one client's First Bound push
// (planPush): the batch positions and blind-write payload computed by
// the closure walk. Plans hold no references into mutable engine state,
// which is what lets both schedulers compute them on worker goroutines
// and commit them sequentially.
type ReplyPlan struct {
	active    bool
	positions []int
	writes    []world.Write
	// envs is the pre-assembled envelope sequence (planEnvs): slot 0
	// reserved for the blind write, positions' envelopes after it.
	envs  []action.Envelope
	stats walkStats
	// footprint is the batch's covered-object set (planFootprint) — the
	// supersession metadata the transport's delivery queue uses for
	// per-client staleness accounting (DESIGN.md §13).
	footprint []world.ObjectID
}

// Positions returns the queue positions the planned batch will carry,
// in ascending serial order. The shard lanes feed them into their sent()
// overlays; callers must not mutate the slice.
func (p *ReplyPlan) Positions() []int { return p.positions }

// pushWorkerCount resolves the pool width for n clients. An explicit
// Config.PushWorkers is honored (capped at n); 0 selects up to
// GOMAXPROCS workers but stays sequential for small client sets where
// fan-out overhead would dominate.
func (s *Server) pushWorkerCount(n int) int {
	w := s.cfg.PushWorkers
	if w == 0 {
		if n < 16 {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// planPush scans the push window for entries eligible for cid and runs
// the closure walk over the seeds. Read-only apart from its private
// scratch, so it is safe on a worker goroutine: the queue, the conflict
// index, the interner, ζS, and the sent() bitmaps are all frozen for
// the duration of the planning phase.
func (s *Server) planPush(cid action.ClientID, window []int, nowMs float64, sc *closureScratch) ReplyPlan {
	ci := s.clients[cid]
	slot := ci.slot
	seeds := sc.seeds[:0]
	for _, i := range window {
		e := s.queue[i]
		if e.sent.has(slot) {
			continue
		}
		if !s.pushEligible(e, ci, nowMs) {
			continue
		}
		seeds = append(seeds, i)
	}
	sc.seeds = seeds
	if len(seeds) == 0 {
		return ReplyPlan{}
	}
	v := s.globalView()
	positions, writes, st := s.closureWalk(&v, seeds, sc,
		func(_ int, e *entry) bool { return e.sent.has(slot) })
	return ReplyPlan{active: true, positions: positions, writes: writes,
		envs: planEnvs(&v, positions), stats: st,
		footprint: s.planFootprint(&v, positions, writes)}
}

// commitPush applies one client's plan: marks the batch entries sent,
// mints the blind-write id, stamps the per-client batch sequence, and
// emits the reply. Runs on the engine goroutine in ascending client
// order, which is what makes the scheduler's output independent of the
// pool width.
func (s *Server) commitPush(cid action.ClientID, p *ReplyPlan, out *ServerOutput) {
	s.noteWalk(p.stats, out)
	if !p.active {
		return
	}
	v := s.globalView()
	batch := s.commitBatch(&v, s.slotOf(cid), p)
	b := s.sequence(cid, &wire.Batch{Envs: batch, Push: true, InstalledUpTo: s.installed})
	out.Replies = append(out.Replies, Reply{
		To:      cid,
		Msg:     b,
		Deliver: Delivery{Class: DeliveryBatch, Footprint: p.footprint, Epoch: b.ClientSeq},
	})
}

// pushEligible decides whether entry e could affect a future action of
// the client described by ci.
func (s *Server) pushEligible(e *entry, ci *clientInfo, nowMs float64) bool {
	// Inconsequential action elimination: skip classes the client did not
	// subscribe to. Class 0 and a zero mask mean "always interesting".
	if s.cfg.InterestFilter && e.class != 0 && ci.interest != 0 {
		if ci.interest&(1<<e.class) == 0 {
			return false
		}
	}
	if !e.hasPos || !ci.hasPos {
		// No spatial information: conservatively reachable.
		return true
	}
	rC := ci.radius
	if rC == 0 {
		rC = s.cfg.DefaultRadius
	}
	if s.cfg.AreaCulling && e.hasVel {
		dt := e.stampedMs - ci.posAtMs
		return geom.MovingInfluenceReachable(
			e.pos, e.vel, ci.pos, rC, s.cfg.MaxSpeed, s.cfg.Omega, s.cfg.RTTMs, dt)
	}
	return geom.InfluenceReachable(
		e.pos, ci.pos, e.radius, rC, s.cfg.MaxSpeed, s.cfg.Omega, s.cfg.RTTMs)
}
