package core

import (
	"sort"

	"seve/internal/action"
	"seve/internal/geom"
	"seve/internal/wire"
)

// Tick runs the First Bound push cycle (Section III-D): "at regular
// intervals of ω·RTT time, the server sends to each client C all actions
// submitted in the previous ω·RTT that could possibly affect any of C's
// future actions". The transport adapter calls Tick every
// Config.PushIntervalMs milliseconds in ModeFirstBound and above.
//
// Eligibility of action A for client C is Equation (1):
//
//	‖p̄A − p̄C‖ ≤ 2s·(1+ω)·RTT + rC + rA
//
// refined by area culling (Section IV-B) for actions that carry a
// velocity vector, and by interest-class elimination (Section IV-A) when
// enabled. Actions already sent to C — including everything C received
// in closure replies — are skipped via the sent(a) bookkeeping shared
// with Algorithm 6.
func (s *Server) Tick(nowMs float64) ServerOutput {
	var out ServerOutput
	if s.cfg.Mode < ModeFirstBound {
		return out
	}
	if s.cfg.HybridRelay {
		s.hybridTick(nowMs, &out)
		return out
	}
	windowStart := s.lastPushMs
	s.lastPushMs = nowMs

	// Deterministic client order: map iteration order would randomize
	// reply ordering and, through link serialization, the whole
	// simulation timeline.
	cids := make([]action.ClientID, 0, len(s.clients))
	for cid := range s.clients {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	for _, cid := range cids {
		ci := s.clients[cid]
		var seeds []int
		for i, e := range s.queue {
			if e.stampedMs <= windowStart || e.stampedMs > nowMs {
				continue
			}
			if _, already := e.sent[cid]; already {
				continue
			}
			if !s.pushEligible(e, ci, nowMs) {
				continue
			}
			seeds = append(seeds, i)
		}
		if len(seeds) == 0 {
			continue
		}
		batch := s.closureBatch(cid, seeds, &out)
		out.Replies = append(out.Replies, Reply{
			To:  cid,
			Msg: s.sequence(cid, &wire.Batch{Envs: batch, Push: true, InstalledUpTo: s.installed}),
		})
	}
	return out
}

// pushEligible decides whether entry e could affect a future action of
// the client described by ci.
func (s *Server) pushEligible(e *entry, ci *clientInfo, nowMs float64) bool {
	// Inconsequential action elimination: skip classes the client did not
	// subscribe to. Class 0 and a zero mask mean "always interesting".
	if s.cfg.InterestFilter && e.class != 0 && ci.interest != 0 {
		if ci.interest&(1<<e.class) == 0 {
			return false
		}
	}
	if !e.hasPos || !ci.hasPos {
		// No spatial information: conservatively reachable.
		return true
	}
	rC := ci.radius
	if rC == 0 {
		rC = s.cfg.DefaultRadius
	}
	if s.cfg.AreaCulling && e.hasVel {
		dt := e.stampedMs - ci.posAtMs
		return geom.MovingInfluenceReachable(
			e.pos, e.vel, ci.pos, rC, s.cfg.MaxSpeed, s.cfg.Omega, s.cfg.RTTMs, dt)
	}
	return geom.InfluenceReachable(
		e.pos, ci.pos, e.radius, rC, s.cfg.MaxSpeed, s.cfg.Omega, s.cfg.RTTMs)
}
