package core

import (
	"strings"
	"testing"

	"seve/internal/action"
	"seve/internal/wire"
	"seve/internal/world"
)

// Edge-path tests: malformed traffic, misconfigured engines, and the
// defensive recoveries that must not corrupt protocol state.

func TestNewServerPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	cfg := DefaultConfig()
	cfg.Omega = 2
	NewServer(cfg, world.NewState())
}

func TestServerIgnoresUnknownMessageType(t *testing.T) {
	srv := NewServer(cfgFor(ModeIncomplete), initWorld(1))
	srv.RegisterClient(1, 0)
	out := srv.HandleMsg(1, &wire.Hello{}, 0)
	if len(out.Replies) != 0 || out.Dropped {
		t.Fatalf("unknown message produced output: %+v", out)
	}
}

func TestClientRejectsUnexpectedMessage(t *testing.T) {
	c := NewClient(1, cfgFor(ModeIncomplete), initWorld(1))
	out := c.HandleMsg(&wire.Hello{})
	if len(out.Violations) != 1 || !strings.Contains(out.Violations[0], "unexpected message") {
		t.Fatalf("violations = %v", out.Violations)
	}
}

func TestClientIDAndAccessors(t *testing.T) {
	c := NewClient(7, cfgFor(ModeBasic), initWorld(1))
	if c.ID() != 7 {
		t.Fatalf("ID = %d", c.ID())
	}
	if c.QueueLen() != 0 || c.Reconciliations() != 0 || c.AppliedRemote() != 0 || c.AppliedBlind() != 0 {
		t.Fatal("fresh client has non-zero counters")
	}
}

func TestServerCounters(t *testing.T) {
	lb := newLoopback(t, cfgFor(ModeIncomplete), initWorld(2), 2)
	lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1})
	for lb.stepServer() {
	}
	lb.submit(2, &testAction{rs: world.NewIDSet(1, 2), ws: world.NewIDSet(2), delta: 1})
	lb.drain()
	if lb.srv.TotalSubmitted() != 2 {
		t.Fatalf("submitted = %d", lb.srv.TotalSubmitted())
	}
	if lb.srv.TotalQueueScans() == 0 {
		t.Fatal("no queue scans recorded despite a conflicting closure")
	}
	if len(lb.srv.DroppedByClient()) != 0 {
		t.Fatal("phantom drops")
	}
}

// TestOwnActionOutOfOrderRecovery: if the transport misdelivers a
// client's own action while its queue head is different, the client
// records a violation but still applies the action to the stable state,
// preserving convergence.
func TestOwnActionOutOfOrderRecovery(t *testing.T) {
	cfg := cfgFor(ModeBasic)
	c := NewClient(1, cfg, initWorld(1))
	// Forge an envelope that claims to be c's own action but was never
	// submitted.
	forged := &testAction{id: action.ID{Client: 1, Seq: 42}, rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 5}
	out := c.HandleBatch(&wire.Batch{Envs: []action.Envelope{{Seq: 1, Origin: 1, Act: forged}}})
	if len(out.Violations) == 0 {
		t.Fatal("out-of-order own action not flagged")
	}
	// The stable state still advanced (handled as remote).
	v, _ := c.Stable().Get(1)
	if v[0] != 6 {
		t.Fatalf("stable = %v, want 6", v)
	}
}

// TestStrictModeFlagsRogueAction: an action whose Apply touches objects
// outside its declared sets is reported, because undeclared accesses
// silently break the closure analysis.
func TestStrictModeFlagsRogueAction(t *testing.T) {
	lb := newLoopback(t, cfgFor(ModeIncomplete), initWorld(3), 1)
	rogue := &rogueAction{testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1}}
	lb.submit2(1, rogue, func(id action.ID) { rogue.id = id })
	lb.drain()
	if len(lb.violations) == 0 {
		t.Fatal("rogue access not flagged in strict mode")
	}
}

// rogueAction reads an undeclared object during Apply.
type rogueAction struct{ testAction }

func (a *rogueAction) Apply(tx *world.Tx) bool {
	//seve:vet-ignore rwset deliberate undeclared read; this fixture proves strict mode flags it
	tx.Read(3) // undeclared
	return a.testAction.Apply(tx)
}

// submit2 submits an arbitrary action type through the loopback.
func (lb *loopback) submit2(cid action.ClientID, a action.Action, setID func(action.ID)) {
	c := lb.clients[cid]
	setID(c.NextActionID())
	msg, _ := c.Submit(a)
	lb.toServer = append(lb.toServer, fromMsg{from: cid, msg: msg})
	lb.submitted++
}

// TestBasicModeIgnoresCompletions: Algorithm 2's server has no ζS; stray
// completions must be no-ops.
func TestBasicModeIgnoresCompletions(t *testing.T) {
	srv := NewServer(cfgFor(ModeBasic), initWorld(1))
	srv.RegisterClient(1, 0)
	out := srv.HandleCompletion(1, &wire.Completion{Seq: 1, By: 1, Res: action.Result{OK: true}})
	if len(out.Replies) != 0 {
		t.Fatal("basic-mode completion produced replies")
	}
	if srv.Installed() != 0 {
		t.Fatal("basic-mode server installed something")
	}
}

// TestCompletionBelowInstalledIgnored: duplicates of already-installed
// actions (failure-tolerant redundancy) are dropped.
func TestCompletionBelowInstalledIgnored(t *testing.T) {
	lb := newLoopback(t, cfgFor(ModeIncomplete), initWorld(1), 1)
	lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1})
	lb.drain()
	if lb.srv.Installed() != 1 {
		t.Fatalf("installed = %d", lb.srv.Installed())
	}
	digest := lb.srv.Authoritative().Digest()
	lb.srv.HandleCompletion(1, &wire.Completion{Seq: 1, By: 1, Res: action.Result{OK: true,
		Writes: []world.Write{{ID: 1, Val: world.Value{999}}}}})
	if lb.srv.Authoritative().Digest() != digest {
		t.Fatal("stale completion mutated ζS")
	}
}

// TestAbortedStableActionInstallsNothing: a committed-optimistically but
// stably-aborted action contributes no writes to ζS.
func TestAbortedStableActionInstallsNothing(t *testing.T) {
	cfg := cfgFor(ModeIncomplete)
	cfg.Strict = false // the abort path legitimately reads a missing object
	lb := newLoopback(t, cfg, initWorld(1), 2)
	// Client 1 deletes... there is no delete action; instead client 2
	// submits an action whose read set includes a nonexistent object so
	// both optimistic and stable evaluations abort.
	lb.submit(2, &testAction{rs: world.NewIDSet(99), ws: world.NewIDSet(99), delta: 1})
	lb.drain()
	if lb.srv.Installed() != 1 {
		t.Fatalf("installed = %d (aborts still occupy serial positions)", lb.srv.Installed())
	}
	if _, ok := lb.srv.Authoritative().Get(99); ok {
		t.Fatal("aborted action created an object")
	}
	if len(lb.commits) != 1 || lb.commits[0].Res.OK {
		t.Fatalf("commits = %+v", lb.commits)
	}
}

func TestPushIntervalMs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Omega, cfg.RTTMs = 0.5, 400
	if got := cfg.PushIntervalMs(); got != 200 {
		t.Fatalf("PushIntervalMs = %v", got)
	}
}
