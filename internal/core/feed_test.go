package core

import (
	"testing"

	"seve/internal/action"
	"seve/internal/wire"
	"seve/internal/world"
)

// These tests drive the durability seams from the engine side without
// package durable: a recording Journal pins the commit-feed contract
// (feed.go), and a hand-built RestoreState plays the role of a
// recovered directory so the crash-restart = resume path — Restore,
// the boot fence, provisional-commit revocation — runs entirely inside
// the loopback harness. The end-to-end twin with the real store is
// internal/netsim's kill-recover matrix.

// recordingJournal captures the feed verbatim. CommitGroup copies the
// records because the engine reuses its scratch slice across groups.
type recordingJournal struct {
	epochs   []uint64
	groups   [][]CommitRecord
	opens    []action.ClientID
	retained map[action.ClientID]int
}

func (j *recordingJournal) CommitGroup(epoch uint64, nextBlind uint32, recs []CommitRecord) {
	cp := make([]CommitRecord, len(recs))
	copy(cp, recs)
	j.epochs = append(j.epochs, epoch)
	j.groups = append(j.groups, cp)
}

func (j *recordingJournal) SessionOpen(id action.ClientID, token, mask, seqNo, stampFloor uint64) {
	j.opens = append(j.opens, id)
}

func (j *recordingJournal) BatchRetained(id action.ClientID, b *wire.Batch) {
	if j.retained == nil {
		j.retained = make(map[action.ClientID]int)
	}
	j.retained[id]++
}

// TestJournalFeedEmitsGroups pins the feed contract: one contiguous
// group per install pass in serial order, session mints journaled with
// the registration, retained batches mirrored, and a nil SetJournal
// detaching the feed cleanly.
func TestJournalFeedEmitsGroups(t *testing.T) {
	cfg := cfgFor(ModeIncomplete)
	cfg.ResumeWindow = 8
	init := initWorld(4)
	lb := newLoopback(t, cfg, init, 1)
	j := &recordingJournal{}
	lb.srv.SetJournal(j)
	lb.srv.RegisterClient(2, 0) // mint journaled: attached before this open

	lb.submit(1, &testAction{rs: world.IDSet{1, 2}, ws: world.IDSet{1}, delta: 1})
	lb.submit(1, &testAction{rs: world.IDSet{1, 3}, ws: world.IDSet{3}, delta: 2})
	lb.drain()
	lb.requireNoViolations()

	if len(j.opens) != 1 || j.opens[0] != 2 {
		t.Fatalf("session opens journaled: %v, want [2]", j.opens)
	}
	var seqs []uint64
	for gi, g := range j.groups {
		for _, r := range g {
			seqs = append(seqs, r.Seq)
			if r.Origin != 1 || r.Lane != -1 {
				t.Fatalf("group %d record %+v: want Origin 1, Lane -1 (unsharded)", gi, r)
			}
			if uint32(r.Seq) != r.ActSeq {
				t.Fatalf("record %+v: one client submitting serially must have ActSeq == Seq", r)
			}
		}
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("journaled serial positions %v, want [1 2]", seqs)
	}
	for i := 1; i < len(j.epochs); i++ {
		if j.epochs[i] <= j.epochs[i-1] {
			t.Fatalf("epoch counter not increasing: %v", j.epochs)
		}
	}
	if j.retained[1] == 0 {
		t.Fatal("no retained batches journaled for client 1")
	}

	lb.srv.SetJournal(nil)
	before := len(j.groups)
	lb.submit(1, &testAction{rs: world.IDSet{1}, ws: world.IDSet{1}, delta: 3})
	lb.drain()
	if len(j.groups) != before {
		t.Fatalf("detached journal still saw %d new groups", len(j.groups)-before)
	}
	if lb.srv.Installed() != 3 {
		t.Fatalf("installed %d, want 3", lb.srv.Installed())
	}
}

// restoreFrom builds the RestoreState a durable recovery at floor would
// return for lb's server: sessions keep their tokens and mint order,
// dedup floors are recomputed from the history prefix, and each
// session's retained window keeps only its clean prefix — batches whose
// every envelope and install marker is at or below the floor — exactly
// the keep-or-drop rule the shadow applies.
func restoreFrom(lb *loopback, floor uint64) RestoreState {
	rec := RestoreState{
		UpTo:       floor,
		NextBlind:  lb.srv.nextBlind,
		Boot:       lb.srv.boot + 1,
		SessionSeq: lb.srv.sessionSeq,
	}
	for _, cid := range lb.order {
		sess := lb.srv.sessions[cid]
		sr := SessionRecord{ID: cid, Token: sess.token, Mask: sess.mask, SeqNo: sess.seqNo}
		for _, env := range lb.srv.History()[:floor] {
			if env.Origin == cid && env.Act.ID().Seq > sr.LastActSeq {
				sr.LastActSeq = env.Act.ID().Seq
			}
		}
		for _, b := range sess.retained {
			clean := b.InstalledUpTo <= floor
			for _, env := range b.Envs {
				clean = clean && env.Seq <= floor
			}
			if !clean {
				break
			}
			sr.Retained = append(sr.Retained, b)
			sr.LastSeq = b.ClientSeq
		}
		rec.Sessions = append(rec.Sessions, sr)
	}
	return rec
}

// TestRestartBootFence is the crash window in miniature: client 1's
// last action commits provisionally on the client (ModeIncomplete
// closure reply) but its completion dies with the server, so the
// restarted boot recovers at a floor below the committed position.
// The resume's CatchUp must carry the new Boot and BootFloor, the
// client must revoke the orphaned commit and re-submit the action, and
// the re-issued position must converge to the serial oracle.
func TestRestartBootFence(t *testing.T) {
	cfg := cfgFor(ModeIncomplete)
	cfg.ResumeWindow = 8
	init := initWorld(6)
	lb := newLoopback(t, cfg, init, 2)

	// Warm-up: both clients commit one action over full connectivity.
	lb.submit(1, &testAction{rs: world.IDSet{1, 2}, ws: world.IDSet{1}, delta: 1})
	lb.submit(2, &testAction{rs: world.IDSet{2, 3}, ws: world.IDSet{2}, delta: 2})
	lb.drain()
	floor := lb.srv.Installed()

	// Client 1's next action is stamped and its closure reply applied —
	// a provisional commit — but the completion is still in flight when
	// the server dies.
	lb.submit(1, &testAction{rs: world.IDSet{1, 5}, ws: world.IDSet{5}, delta: 10})
	for lb.stepServer() {
	}
	for lb.stepClient(1) {
	}
	lost := floor + 1
	provisional := false
	for _, c := range lb.commitBy[1] {
		provisional = provisional || c.Seq == lost
	}
	if !provisional {
		t.Fatalf("client 1 absorbed no provisional commit at seq %d: %+v", lost, lb.commitBy[1])
	}
	lb.toServer = nil // the crash swallows the in-flight completion

	// Restart: a fresh engine over the replayed prefix, rewound by the
	// recovery record, one boot generation up.
	prefix, _ := oracleReplay(init, lb.srv.History()[:floor])
	rec := restoreFrom(lb, floor)
	history := append([]action.Envelope(nil), lb.srv.History()[:floor]...)
	srv2 := NewServer(cfg, prefix)
	srv2.Restore(rec)
	if srv2.Boot() != 1 {
		t.Fatalf("restored boot %d, want 1", srv2.Boot())
	}
	lb.srv = srv2

	// Both clients resume against the restarted server.
	for _, cid := range lb.order {
		tok := srv2.SessionToken(cid)
		if tok == 0 {
			t.Fatalf("client %d: no recovered session token", cid)
		}
		got, out := srv2.HandleResume(&wire.Resume{
			Token:        tok,
			LastBatchSeq: lb.clients[cid].LastAppliedBatch(),
		}, lb.nowMs)
		if got != cid {
			t.Fatalf("resume resolved to client %d, want %d", got, cid)
		}
		for _, r := range out.Replies {
			lb.toClient[r.To] = append(lb.toClient[r.To], r.Msg)
		}
	}
	lb.drain()
	lb.requireNoViolations()

	// The orphaned provisional commit was revoked (absorb withdrew it)
	// and the action re-committed exactly once at a re-issued position.
	var reissued []Commit
	for _, c := range lb.commitBy[1] {
		if c.Seq > floor {
			reissued = append(reissued, c)
		}
	}
	if len(reissued) != 1 || reissued[0].Seq < lost {
		t.Fatalf("re-issued commits for client 1: %+v, want exactly one at seq >= %d", reissued, lost)
	}
	if lb.clients[1].QueueLen() != 0 {
		t.Fatalf("client 1 still has %d in-flight actions", lb.clients[1].QueueLen())
	}

	// Theorem 1 against the stitched history: the recovered prefix plus
	// the re-issued suffix replayed serially must equal ζS, and every
	// surviving commit's stable result must match the oracle.
	history = append(history, srv2.History()...)
	oracleState, oracleRes := oracleReplay(init, history)
	if !srv2.Authoritative().Equal(oracleState) {
		t.Fatal("restarted authoritative state diverged from the stitched serial oracle")
	}
	for _, c := range lb.commits {
		want, ok := oracleRes[c.Seq]
		if !ok {
			t.Fatalf("commit at seq %d not in stitched history", c.Seq)
		}
		if !c.Res.Equal(want) {
			t.Fatalf("stable result at seq %d diverged from oracle", c.Seq)
		}
	}
}

// TestFenceBootSuffixRollsBackProvisional unit-tests the suffix branch
// of the fence — reachable when a boot change arrives on a non-snapshot
// verdict — directly: the provisional commit above the floor is
// revoked, ζCS is truncated back to the floor, and the action is
// re-queued with its optimistic result rebuilt on the rolled-back
// state.
func TestFenceBootSuffixRollsBackProvisional(t *testing.T) {
	cfg := cfgFor(ModeIncomplete)
	cfg.ResumeWindow = 4
	init := initWorld(3)
	lb := newLoopback(t, cfg, init, 1)

	lb.submit(1, &testAction{rs: world.IDSet{1}, ws: world.IDSet{1}, delta: 1})
	lb.drain()
	lb.submit(1, &testAction{rs: world.IDSet{1, 2}, ws: world.IDSet{2}, delta: 2})
	for lb.stepServer() {
	}
	for lb.stepClient(1) {
	}

	c := lb.clients[1]
	if len(c.installPending) != 1 || c.installPending[0].seq != 2 {
		t.Fatalf("installPending %+v, want the provisional commit at seq 2", c.installPending)
	}
	if _, seq, _ := c.cs.Latest(2); seq != 2 {
		t.Fatalf("ζCS object 2 latest version %d, want the provisional write at 2", seq)
	}

	var out ClientOutput
	c.fenceBoot(&wire.CatchUp{OK: true, Boot: 1, BootFloor: 1}, &out)

	if len(out.Revoked) != 1 || out.Revoked[0].Seq != 2 {
		t.Fatalf("revoked %+v, want the seq-2 commit withdrawn", out.Revoked)
	}
	if len(c.installPending) != 0 {
		t.Fatalf("installPending not cleared: %+v", c.installPending)
	}
	if c.QueueLen() != 1 {
		t.Fatalf("queue length %d, want the revoked action re-queued", c.QueueLen())
	}
	if v, seq, ok := c.cs.Latest(2); !ok || seq > 1 || v[0] != 2 {
		t.Fatalf("ζCS object 2 after truncation: v=%v seq=%d ok=%v, want the initial value at or below the floor", v, seq, ok)
	}
	if v, ok := c.Optimistic().Get(2); !ok || v[0] == 2 {
		t.Fatalf("ζCO object 2 = %v, want the re-queued action's optimistic write on top of the rollback", v)
	}
}
