package core

import "seve/internal/world"

// checkValidity implements the conflict-detection half of Algorithm 7
// (the Information Bound Model): walking the uncommitted queue from
// newest to oldest, it accumulates the transitive read set of the
// submitted action; if any conflicting uncommitted action lies farther
// than the threshold distance, the submission is invalid and will be
// dropped (aborted immediately at the server, Section III-E).
//
// Two mappings from the paper's pseudocode:
//
//   - Algorithm 7 batches validity decisions per tick (onNextTick). The
//     server processes submissions one at a time anyway — the decision to
//     drop "is sequential" (Section III-E) — so checking at submission
//     time examines exactly the same queue prefix the tick-based scan
//     would, minus only the sub-tick batching artifact.
//   - The chain set update is S ← (S − WS(Aj)) ∪ RS(Aj), per Algorithm 7
//     line 26 (note the subtraction, unlike Algorithm 6): once a_j is
//     accepted as the chain's writer of those objects, older writers of
//     them no longer extend this chain.
//
// Actions without spatial metadata never break a chain (distance zero):
// the bound is a spatial heuristic and non-spatial actions are assumed
// globally relevant.
func (s *Server) checkValidity(e *entry, out *ServerOutput) (invalid bool) {
	set := e.rs
	for j := len(s.queue) - 1; j >= 0; j-- {
		out.QueueScanned++
		s.totalQueueScans++
		prev := s.queue[j]
		if !prev.ws.Intersects(set) {
			continue
		}
		if e.hasPos && prev.hasPos {
			if e.pos.Dist(prev.pos) > s.cfg.Threshold {
				return true
			}
		}
		set = set.Subtract(prev.ws).Union(prev.rs)
	}
	return false
}

// ChainLength reports, for diagnostics and the Table II experiment, the
// number of uncommitted actions in the transitive conflict chain of a
// hypothetical action with the given read set and position — the quantity
// Algorithm 7 bounds.
func (s *Server) ChainLength(rs world.IDSet) int {
	set := rs
	n := 0
	for j := len(s.queue) - 1; j >= 0; j-- {
		prev := s.queue[j]
		if !prev.ws.Intersects(set) {
			continue
		}
		n++
		set = set.Subtract(prev.ws).Union(prev.rs)
	}
	return n
}
