package core

import (
	"math/bits"

	"seve/internal/geom"
	"seve/internal/world"
)

// checkValidity implements the conflict-detection half of Algorithm 7
// (the Information Bound Model): walking the uncommitted queue from
// newest to oldest, it accumulates the transitive read set of the
// submitted action; if any conflicting uncommitted action lies farther
// than the threshold distance, the submission is invalid and will be
// dropped (aborted immediately at the server, Section III-E).
//
// Two mappings from the paper's pseudocode:
//
//   - Algorithm 7 batches validity decisions per tick (onNextTick). The
//     server processes submissions one at a time anyway — the decision to
//     drop "is sequential" (Section III-E) — so checking at submission
//     time examines exactly the same queue prefix the tick-based scan
//     would, minus only the sub-tick batching artifact.
//   - The chain set update is S ← (S − WS(Aj)) ∪ RS(Aj), per Algorithm 7
//     line 26 (note the subtraction, unlike Algorithm 6): once a_j is
//     accepted as the chain's writer of those objects, older writers of
//     them no longer extend this chain.
//
// Actions without spatial metadata never break a chain (distance zero):
// the bound is a spatial heuristic and non-spatial actions are assumed
// globally relevant.
//
// Like the closure walk, the scan is driven by the reverse conflict
// index unless Config.DisableConflictIndex is set: only positions that
// write an object currently (or previously) in the chain set are
// examined, and each re-checks WS ∩ S against the live S.
func (s *Server) checkValidity(e *entry, out *ServerOutput) (invalid bool) {
	v := s.globalView()
	invalid, _, st := s.validityWalk(&v, e.rsd, e.hasPos, e.pos, s.cfg.Threshold, s.scratchFor(0))
	s.noteWalk(st, out)
	return invalid
}

// ChainLength reports, for diagnostics and the Table II experiment, the
// number of uncommitted actions in the transitive conflict chain of a
// hypothetical action with the given read set and position — the quantity
// Algorithm 7 bounds.
func (s *Server) ChainLength(rs world.IDSet) int {
	rsd := s.intern.InternSet(rs, nil)
	s.growWriters()
	v := s.globalView()
	_, chain, _ := s.validityWalk(&v, rsd, false, geom.Vec{}, -1, s.scratchFor(0))
	return chain
}

// validityWalk runs the Algorithm 7 chain walk over the view's whole
// uncommitted queue with S seeded from rsd. For every conflicting entry
// it applies S ← (S − WS) ∪ RS and counts the chain; when threshold is
// non-negative and a conflicting entry lies farther than threshold from
// pos, the walk stops and reports the submission invalid. Like the
// closure walk, it runs over either the global queue or one lane's
// segment — under the router's no-live-bridge precondition the chain
// never leaves the lane, so the two views visit the same conflicts.
func (s *Server) validityWalk(v *walkView, rsd []uint32, hasPos bool, pos geom.Vec, threshold float64, sc *closureScratch) (invalid bool, chain int, st walkStats) {
	sc.ensure(len(v.queue), s.intern.Len())
	useIndex := !s.cfg.DisableConflictIndex
	n := len(v.queue)
	st.baseline = n

	for _, o := range rsd {
		if sc.set.Add(o) && useIndex {
			addCandidates(v, sc, o, n, &st)
		}
	}

	if !useIndex {
		for j := n - 1; j >= 0; j-- {
			st.scanned++
			prev := v.queue[j]
			if !sc.set.ContainsAny(prev.wsd) {
				continue
			}
			chain++
			if threshold >= 0 && hasPos && prev.hasPos && pos.Dist(prev.pos) > threshold {
				return true, chain, st
			}
			sc.set.RemoveAll(prev.wsd)
			sc.set.AddAll(prev.rsd)
		}
		return false, chain, st
	}

	for w := (n - 1) >> 6; w >= 0; w-- {
		for sc.cand[w] != 0 {
			b := bits.Len64(sc.cand[w]) - 1
			sc.cand[w] &^= 1 << uint(b)
			j := w<<6 | b
			st.scanned++
			prev := v.queue[j]
			if !sc.set.ContainsAny(prev.wsd) {
				continue // stale candidate: its object left the chain set
			}
			chain++
			if threshold >= 0 && hasPos && prev.hasPos && pos.Dist(prev.pos) > threshold {
				// Early exit: restore the all-zero candidate-bitmap
				// invariant for the next walk.
				for ; w >= 0; w-- {
					sc.cand[w] = 0
				}
				return true, chain, st
			}
			sc.set.RemoveAll(prev.wsd)
			for _, o := range prev.rsd {
				if sc.set.Add(o) {
					addCandidates(v, sc, o, j, &st)
				}
			}
		}
	}
	return false, chain, st
}
