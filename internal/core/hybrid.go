package core

import (
	"math"
	"sort"

	"seve/internal/action"
	"seve/internal/wire"
)

// Hybrid P2P/client-server push delegation — the Section VII direction
// ("extensions to a hybrid architecture that strikes a balance between
// P2P and client-server are an interesting direction for future work"),
// implemented for the First Bound push path.
//
// Instead of unicasting a push batch per client, the server groups
// clients into neighbourhood cells the size of the Equation (1)
// influence reach, computes ONE shared closure batch per cell, and sends
// it to a single relay client that forwards it peer-to-peer to the
// others. The server remains the sole serializer and the authority for
// ζS — the properties Section II-B argues MMO operators cannot give up —
// while its push egress drops by roughly the cell population.
//
// The shared batch is a superset of each member's individual needs;
// supersets are harmless (batches are idempotent and multiversioned).
// Reliability of the relay hop is assumed, as in the simulator and the
// paper's sketch; production hardening (acks, re-push on relay failure)
// is intentionally out of scope.

// hybridTick runs one push cycle with relay delegation.
func (s *Server) hybridTick(nowMs float64, out *ServerOutput) {
	windowStart := s.lastPushMs
	s.lastPushMs = nowMs

	// Cell size: the reach of Equation (1) — two max-speed cones plus
	// both influence radii.
	cell := 2*s.cfg.MaxSpeed*(1+s.cfg.Omega)*s.cfg.RTTMs + 2*s.cfg.DefaultRadius
	if cell <= 0 {
		cell = 1
	}

	groups := make(map[[2]int32][]action.ClientID)
	var unplaced []action.ClientID
	for cid, ci := range s.clients {
		if !ci.hasPos {
			unplaced = append(unplaced, cid)
			continue
		}
		key := [2]int32{int32(math.Floor(ci.pos.X / cell)), int32(math.Floor(ci.pos.Y / cell))}
		groups[key] = append(groups[key], cid)
	}

	// Deterministic iteration: sort group keys and members.
	keys := make([][2]int32, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	for _, k := range keys {
		members := groups[k]
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		s.pushGroup(members, windowStart, nowMs, out)
	}
	// Clients with unknown positions are served individually (they are
	// conservatively interested in everything, and grouping strangers
	// under one relay would couple unrelated players).
	sort.Slice(unplaced, func(i, j int) bool { return unplaced[i] < unplaced[j] })
	for _, cid := range unplaced {
		s.pushGroup([]action.ClientID{cid}, windowStart, nowMs, out)
	}
}

// pushGroup computes the shared seed set and closure for one cell and
// emits either a direct Batch (single member) or a Relay.
func (s *Server) pushGroup(members []action.ClientID, windowStart, nowMs float64, out *ServerOutput) {
	var seeds []int
	for i, e := range s.queue {
		if e.stampedMs <= windowStart || e.stampedMs > nowMs {
			continue
		}
		wanted := false
		for _, cid := range members {
			ci := s.clients[cid]
			if e.sent.has(ci.slot) {
				continue
			}
			if s.pushEligible(e, ci, nowMs) {
				wanted = true
				break
			}
		}
		if wanted {
			seeds = append(seeds, i)
		}
	}
	if len(seeds) == 0 {
		return
	}
	batch := s.closureShared(members, seeds, out)
	inner := &wire.Batch{Envs: batch, Push: true, InstalledUpTo: s.installed}
	if len(members) == 1 {
		b := s.sequence(members[0], inner)
		out.Replies = append(out.Replies, Reply{
			To: members[0], Msg: b,
			Deliver: Delivery{Class: DeliveryBatch, Epoch: b.ClientSeq},
		})
		return
	}
	seqs := make([]uint64, len(members))
	for i, cid := range members {
		if ci := s.clients[cid]; ci != nil {
			ci.nextBatchSeq++
			seqs[i] = ci.nextBatchSeq
			// Retain the member's view of the shared batch — its own
			// ClientSeq over the shared envelope section — so a resume can
			// replay what the relay hop would have delivered.
			s.retainBatch(cid, &wire.Batch{
				Envs:          inner.Envs,
				Push:          true,
				InstalledUpTo: inner.InstalledUpTo,
				ClientSeq:     seqs[i],
			})
		}
	}
	inner.ClientSeq = seqs[0] // the relay's own copy
	out.Replies = append(out.Replies, Reply{
		To:  members[0],
		Msg: &wire.Relay{Targets: members, TargetSeqs: seqs, Inner: inner},
		// A relay fans out to peers the queue cannot see past the first
		// hop; it must arrive exactly once, in order.
		Deliver: Delivery{Class: DeliveryOrdered},
	})
}

// closureShared is Algorithm 6 generalized to a set of recipients: an
// already-sent writer's effects are subtracted only if EVERY member has
// them; otherwise the action is included for all (duplicates are
// idempotent under the multiversion stores).
func (s *Server) closureShared(members []action.ClientID, seeds []int, out *ServerOutput) []action.Envelope {
	slots := make([]int, len(members))
	for i, cid := range members {
		slots[i] = s.clients[cid].slot
	}
	v := s.globalView()
	positions, writes, st := s.closureWalk(&v, seeds, s.scratchFor(0), func(_ int, e *entry) bool {
		for _, slot := range slots {
			if !e.sent.has(slot) {
				return false
			}
		}
		return true
	})
	s.noteWalk(st, out)

	batch := make([]action.Envelope, 0, len(positions)+1)
	if len(writes) > 0 {
		bw := action.NewBlindWrite(s.nextBlindID(), writes)
		batch = append(batch, action.Envelope{
			Seq:    s.installed,
			Origin: action.OriginServer,
			Act:    bw,
		})
	}
	for _, j := range positions {
		e := s.queue[j]
		for _, slot := range slots {
			e.sent.set(slot)
		}
		batch = append(batch, e.env)
	}
	return batch
}
