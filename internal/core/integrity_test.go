package core

import (
	"testing"

	"seve/internal/action"
	"seve/internal/integrity"
	"seve/internal/wire"
	"seve/internal/world"
)

// The integrity tests drive the DESIGN.md §16 enforcement layer at the
// engine level: the cheap completion validator, the sampled re-execution
// auditor, and the per-client influence bounds. Honest traffic must sail
// through with zero verdicts even at full audit rate; each cheat class
// must be detected, attributed to the sending connection, and repaired
// so ζS never leaves the serial-oracle trajectory.

func integrityConfig(auditRate float64) Config {
	cfg := cfgFor(ModeIncomplete)
	cfg.AuditRate = auditRate
	return cfg
}

// submitOne pushes a single action through the stamp path and returns
// the client's own honest completion for it.
func submitOne(t *testing.T, srv *Server, c *Client, a *testAction) *wire.Completion {
	t.Helper()
	a.id = c.NextActionID()
	m, _ := c.Submit(a)
	out := srv.HandleSubmit(c.ID(), m, 0)
	if len(out.Replies) == 0 {
		t.Fatal("no reply batch for submission")
	}
	co := c.HandleMsg(out.Replies[0].Msg)
	if len(co.ToServer) == 0 {
		t.Fatal("client produced no completion")
	}
	return co.ToServer[0].(*wire.Completion)
}

func findQuarantine(t *testing.T, out ServerOutput, to action.ClientID) *wire.Quarantine {
	t.Helper()
	for _, r := range out.Replies {
		if q, ok := r.Msg.(*wire.Quarantine); ok {
			if r.To != to {
				t.Fatalf("quarantine verdict addressed to %d, want %d", r.To, to)
			}
			return q
		}
	}
	t.Fatal("no quarantine verdict in output")
	return nil
}

// TestIntegrityHonestOwnCommitsFullAudit: an honest ModeIncomplete fleet
// committing its own actions survives a 100% audit rate untouched — every
// completion is re-executed against ζS and none diverges (Theorem 1), so
// no counter but AuditsRun moves and the oracle invariants hold.
func TestIntegrityHonestOwnCommitsFullAudit(t *testing.T) {
	init := initWorld(4)
	lb := newLoopback(t, integrityConfig(1.0), init, 3)
	for round := 0; round < 5; round++ {
		lb.submit(1, &testAction{rs: world.NewIDSet(1, 2), ws: world.NewIDSet(1), delta: float64(round + 1)})
		lb.submit(2, &testAction{rs: world.NewIDSet(2, 3), ws: world.NewIDSet(2, 3), delta: float64(round + 2)})
		lb.submit(3, &testAction{rs: world.NewIDSet(1, 4), ws: world.NewIDSet(4), delta: float64(round + 3)})
		lb.drain()
	}
	lb.requireNoViolations()
	lb.checkAgainstOracle(init)

	st := lb.srv.Metrics()
	if st.AuditsRun != 15 {
		t.Fatalf("AuditsRun = %d, want 15 (every completion at rate 1.0)", st.AuditsRun)
	}
	if st.AuditDivergences != 0 || st.RepairedResults != 0 {
		t.Fatalf("honest fleet diverged: divergences=%d repaired=%d", st.AuditDivergences, st.RepairedResults)
	}
	if st.QuarantinedClients != 0 || st.ContractBreaches != 0 || st.ForgedCompletions != 0 {
		t.Fatalf("honest fleet quarantined: %+v", st)
	}
}

// TestIntegrityForgedWriteQuarantinesAndRepairs: a completion reporting a
// write outside the action's declared write set is caught by the cheap
// validator, the sender is quarantined with a footprint verdict, and the
// install-time repair audit replaces the forged report with the server's
// own evaluation — ζS stays on the serial trajectory and the honest
// submitter is left alone.
func TestIntegrityForgedWriteQuarantinesAndRepairs(t *testing.T) {
	init := initWorld(2)
	cfg := integrityConfig(0)
	srv := NewServer(cfg, init)
	srv.RegisterClient(1, 0)
	srv.RegisterClient(2, 0)
	c1 := NewClient(1, cfg, init)

	honest := submitOne(t, srv, c1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 5})

	// Connection 2 forges a completion for the pending position that
	// writes an object the action never declared.
	forged := &wire.Completion{Seq: honest.Seq, By: 2, Res: action.Result{OK: true,
		Writes: []world.Write{{ID: 2, Val: world.Value{999}}}}}
	out := srv.HandleCompletion(2, forged)

	q := findQuarantine(t, out, 2)
	if q.Reason != uint8(integrity.ViolationFootprint) {
		t.Fatalf("verdict reason = %d, want footprint (%d)", q.Reason, integrity.ViolationFootprint)
	}
	if q.Seq != honest.Seq || q.Detail != 2 {
		t.Fatalf("verdict names seq %d obj %d, want seq %d obj 2", q.Seq, q.Detail, honest.Seq)
	}
	if !srv.Quarantined(2) || srv.Quarantined(1) {
		t.Fatalf("quarantine latched wrong: q2=%v q1=%v", srv.Quarantined(2), srv.Quarantined(1))
	}

	// The position installed anyway — repaired, not wedged.
	if srv.Installed() != honest.Seq {
		t.Fatalf("installed = %d, want %d (forged report must not wedge the queue)", srv.Installed(), honest.Seq)
	}
	if v, _ := srv.Authoritative().Get(1); v[0] != 6 {
		t.Fatalf("object 1 = %v, want 6 (server's own evaluation)", v)
	}
	if v, _ := srv.Authoritative().Get(2); v[0] != 2 {
		t.Fatalf("object 2 = %v, want untouched 2", v)
	}

	st := srv.Metrics()
	if st.ForgedCompletions != 1 || st.QuarantinedClients != 1 {
		t.Fatalf("forged=%d quarantined=%d, want 1/1", st.ForgedCompletions, st.QuarantinedClients)
	}
	if st.AuditsRun != 1 || st.AuditDivergences != 1 || st.RepairedResults != 1 {
		t.Fatalf("repair audit: runs=%d div=%d repaired=%d, want 1/1/1", st.AuditsRun, st.AuditDivergences, st.RepairedResults)
	}

	// The honest submitter's late duplicate matches the repaired install
	// and changes nothing.
	srv.HandleCompletion(1, honest)
	if srv.Quarantined(1) {
		t.Fatal("honest late duplicate quarantined its sender")
	}
}

// TestIntegrityContractBreachQuarantines: a client-originated action
// whose declared sets break WS ⊆ RS is caught at completion intake —
// the conflict analysis ran on a lie — and the sender is quarantined
// with a contract verdict while the position still installs.
func TestIntegrityContractBreachQuarantines(t *testing.T) {
	init := initWorld(2)
	cfg := integrityConfig(0)
	srv := NewServer(cfg, init)
	srv.RegisterClient(1, 0)
	c1 := NewClient(1, cfg, init)

	// ws={2} not covered by rs={1}: the declared contract is broken even
	// though the evaluation itself is honest.
	comp := submitOne(t, srv, c1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(2), delta: 3})
	out := srv.HandleCompletion(1, comp)

	q := findQuarantine(t, out, 1)
	if q.Reason != uint8(integrity.ViolationContract) {
		t.Fatalf("verdict reason = %d, want contract (%d)", q.Reason, integrity.ViolationContract)
	}
	st := srv.Metrics()
	if st.ContractBreaches != 1 || st.QuarantinedClients != 1 {
		t.Fatalf("breaches=%d quarantined=%d, want 1/1", st.ContractBreaches, st.QuarantinedClients)
	}
	// Repair audit re-executed the action; the honest evaluation matches,
	// so nothing needed replacing and the install went through.
	if srv.Installed() != comp.Seq {
		t.Fatalf("installed = %d, want %d", srv.Installed(), comp.Seq)
	}
	if st.AuditsRun != 1 || st.RepairedResults != 0 {
		t.Fatalf("repair audit: runs=%d repaired=%d, want 1/0", st.AuditsRun, st.RepairedResults)
	}
}

// TestIntegrityReplayMismatchQuarantines: re-sending a completion for an
// already-installed position is honest redundancy when it matches the
// installed result — and a replayed forgery when it does not.
func TestIntegrityReplayMismatchQuarantines(t *testing.T) {
	init := initWorld(1)
	cfg := integrityConfig(0)
	srv := NewServer(cfg, init)
	srv.RegisterClient(1, 0)
	srv.RegisterClient(2, 0)
	c1 := NewClient(1, cfg, init)

	honest := submitOne(t, srv, c1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 10})
	srv.HandleCompletion(1, honest)
	if srv.Installed() != honest.Seq {
		t.Fatalf("setup: installed = %d", srv.Installed())
	}

	// An honest resume re-send of the retained completion: same bytes,
	// matches the installed result, nobody is quarantined.
	out := srv.HandleCompletion(1, honest)
	if len(out.Replies) != 0 || srv.Quarantined(1) {
		t.Fatalf("honest replay punished: replies=%d q=%v", len(out.Replies), srv.Quarantined(1))
	}

	// A tampered replay for the same installed position: inside the
	// declared write set, but the value disagrees with what installed.
	tampered := &wire.Completion{Seq: honest.Seq, By: 1, Res: action.Result{OK: true,
		Writes: []world.Write{{ID: 1, Val: world.Value{77777}}}}}
	out = srv.HandleCompletion(2, tampered)
	q := findQuarantine(t, out, 2)
	if q.Reason != uint8(integrity.ViolationReplay) {
		t.Fatalf("verdict reason = %d, want replay (%d)", q.Reason, integrity.ViolationReplay)
	}
	if v, _ := srv.Authoritative().Get(1); v[0] != 11 {
		t.Fatalf("replayed forgery moved ζS: %v", v)
	}
}

// TestIntegrityAuditCatchesValueTampering: a tampered result that stays
// inside the declared footprint passes the cheap validator but cannot
// survive the re-execution audit — at rate 1.0 detection happens at the
// very install that covers the position, the report is repaired before
// it touches ζS, and the sender is quarantined.
func TestIntegrityAuditCatchesValueTampering(t *testing.T) {
	init := initWorld(1)
	cfg := integrityConfig(1.0)
	srv := NewServer(cfg, init)
	srv.RegisterClient(1, 0)
	c1 := NewClient(1, cfg, init)

	honest := submitOne(t, srv, c1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 4})
	tampered := &wire.Completion{Seq: honest.Seq, By: 1, Res: action.Result{OK: true,
		Writes: []world.Write{{ID: 1, Val: world.Value{1_000_000}}}}}
	out := srv.HandleCompletion(1, tampered)

	q := findQuarantine(t, out, 1)
	if q.Reason != uint8(integrity.ViolationAudit) {
		t.Fatalf("verdict reason = %d, want audit (%d)", q.Reason, integrity.ViolationAudit)
	}
	if v, _ := srv.Authoritative().Get(1); v[0] != 5 {
		t.Fatalf("object 1 = %v, want repaired 5", v)
	}
	st := srv.Metrics()
	if st.AuditDivergences != 1 || st.RepairedResults != 1 || st.QuarantinedClients != 1 {
		t.Fatalf("divergences=%d repaired=%d quarantined=%d, want 1/1/1",
			st.AuditDivergences, st.RepairedResults, st.QuarantinedClients)
	}
}

// TestIntegrityOrphanSelfCompletion: a quarantined client's stamped but
// never-completed positions must not wedge the install queue — its
// reports are rejected from the verdict on, so the server completes the
// abandoned positions itself at their exact serial points.
func TestIntegrityOrphanSelfCompletion(t *testing.T) {
	init := initWorld(2)
	cfg := integrityConfig(0)
	srv := NewServer(cfg, init)
	srv.RegisterClient(1, 0)
	srv.RegisterClient(2, 0)
	c2 := NewClient(2, cfg, init)

	// Client 2 stamps two actions; the first is abandoned (no completion
	// will ever arrive for it), the second's completion is forged.
	first := submitOne(t, srv, c2, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1})
	second := submitOne(t, srv, c2, &testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 2})
	_ = first // the honest completion for seq 1 is never delivered

	forged := &wire.Completion{Seq: second.Seq, By: 2, Res: action.Result{OK: true,
		Writes: []world.Write{{ID: 1, Val: world.Value{666}}}}}
	out := srv.HandleCompletion(2, forged)
	findQuarantine(t, out, 2)

	// Both positions installed: seq 1 via server self-completion, seq 2
	// via the forced repair audit. ζS matches the serial oracle.
	if srv.Installed() != 2 {
		t.Fatalf("installed = %d, want 2 (abandoned position wedged the queue)", srv.Installed())
	}
	if v, _ := srv.Authoritative().Get(1); v[0] != 2 {
		t.Fatalf("object 1 = %v, want 2 (self-completed seq 1)", v)
	}
	if v, _ := srv.Authoritative().Get(2); v[0] != 4 {
		t.Fatalf("object 2 = %v, want 4 (repaired seq 2)", v)
	}
	st := srv.Metrics()
	if st.OrphanCompletions != 1 {
		t.Fatalf("OrphanCompletions = %d, want 1", st.OrphanCompletions)
	}
	if st.RepairedResults != 1 {
		t.Fatalf("RepairedResults = %d, want 1", st.RepairedResults)
	}
}

// TestIntegrityRateLimit: the token bucket drops the flood tail with
// Drop replies — the client aborts locally instead of waiting forever —
// but a rate violation alone never quarantines, and the bucket refills
// on the engine clock.
func TestIntegrityRateLimit(t *testing.T) {
	init := initWorld(1)
	cfg := integrityConfig(0)
	cfg.MaxSubmitRate = 1 // one per second...
	cfg.SubmitBurst = 2   // ...with two tokens of depth
	lb := newLoopback(t, cfg, init, 1)

	for i := 0; i < 5; i++ {
		lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1})
	}
	lb.drain()

	st := lb.srv.Metrics()
	if st.RateLimited != 3 {
		t.Fatalf("RateLimited = %d, want 3 (burst of 2 passes)", st.RateLimited)
	}
	if st.QuarantinedClients != 0 {
		t.Fatal("rate flood quarantined the client; bounds must only shed")
	}
	if len(lb.drops) != 3 {
		t.Fatalf("client aborted %d actions locally, want 3", len(lb.drops))
	}

	// A second elapses: the bucket refills and the client is welcome again.
	lb.nowMs = 1000
	lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 2})
	lb.drain()
	if st := lb.srv.Metrics(); st.RateLimited != 3 {
		t.Fatalf("refilled submit still limited: RateLimited = %d", st.RateLimited)
	}
	if lb.srv.Installed() != 3 {
		t.Fatalf("installed = %d, want 3 (2 burst + 1 refilled)", lb.srv.Installed())
	}
}

// TestIntegrityWriteSetCap: a declared write set above the per-client
// cap is shed with a Drop before stamping; compliant actions pass.
func TestIntegrityWriteSetCap(t *testing.T) {
	init := initWorld(3)
	cfg := integrityConfig(0)
	cfg.MaxWriteSet = 2
	lb := newLoopback(t, cfg, init, 1)

	lb.submit(1, &testAction{rs: world.NewIDSet(1, 2, 3), ws: world.NewIDSet(1, 2, 3), delta: 1})
	lb.submit(1, &testAction{rs: world.NewIDSet(1, 2), ws: world.NewIDSet(1, 2), delta: 2})
	lb.drain()

	st := lb.srv.Metrics()
	if st.WriteSetViolations != 1 {
		t.Fatalf("WriteSetViolations = %d, want 1", st.WriteSetViolations)
	}
	if st.QuarantinedClients != 0 {
		t.Fatal("write-set violation quarantined the client")
	}
	if lb.srv.Installed() != 1 {
		t.Fatalf("installed = %d, want 1 (only the compliant action)", lb.srv.Installed())
	}
}

// TestIntegrityRadiusCap: an influence sphere above the per-client
// radius cap is shed with a Drop before stamping.
func TestIntegrityRadiusCap(t *testing.T) {
	init := initWorld(2)
	cfg := integrityConfig(0)
	cfg.MaxInfluenceRadius = 10
	lb := newLoopback(t, cfg, init, 1)

	lb.submit(1, spatialAt(&testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1}, 0, 0, 50))
	lb.submit(1, spatialAt(&testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 2}, 0, 0, 5))
	lb.drain()

	st := lb.srv.Metrics()
	if st.RadiusViolations != 1 {
		t.Fatalf("RadiusViolations = %d, want 1", st.RadiusViolations)
	}
	if lb.srv.Installed() != 1 {
		t.Fatalf("installed = %d, want 1 (only the in-bounds action)", lb.srv.Installed())
	}
}

// TestIntegrityQuarantineSilences: once quarantined, a client's further
// submissions and completions are rejected without a single reply byte
// — the verdict already said everything, and silence keeps per-client
// reply streams replay-identical — and its resume attempt is refused
// with the verdict rather than a catch-up.
func TestIntegrityQuarantineSilences(t *testing.T) {
	init := initWorld(2)
	cfg := integrityConfig(0)
	cfg.ResumeWindow = 4
	lb := newLoopback(t, cfg, init, 2)

	lb.submit(1, &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1})
	lb.submit(2, &testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 2})
	lb.drain()

	// Client 2 replays client 1's installed position with a tampered
	// result and earns its verdict.
	out := lb.srv.HandleCompletion(2, &wire.Completion{Seq: 1, By: 2, Res: action.Result{OK: true,
		Writes: []world.Write{{ID: 1, Val: world.Value{5555}}}}})
	findQuarantine(t, out, 2)
	before := lb.srv.Metrics()

	// Further submissions: silently shed, not stamped, no replies.
	lb.submit(2, &testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 9})
	for lb.stepServer() {
	}
	if len(lb.toClient[2]) != 0 {
		t.Fatalf("quarantined client got %d reply frames, want silence", len(lb.toClient[2]))
	}
	// Further completions: same.
	lb.srv.TakeCompletion(2, &wire.Completion{Seq: 1, By: 2, Res: action.Result{OK: false}})

	st := lb.srv.Metrics()
	if n := len(lb.srv.History()); n != 2 {
		t.Fatalf("history has %d stamps, want 2 (quarantined submission must not stamp)", n)
	}
	if st.QuarantineRejected != before.QuarantineRejected+2 {
		t.Fatalf("QuarantineRejected = %d, want %d", st.QuarantineRejected, before.QuarantineRejected+2)
	}

	// Resume presents a valid token but gets the verdict back.
	tok := lb.srv.SessionToken(2)
	if tok == 0 {
		t.Fatal("no session token for client 2")
	}
	cid, rout := lb.srv.HandleResume(&wire.Resume{Token: tok}, lb.nowMs)
	if cid != 0 {
		t.Fatalf("quarantined resume resolved to client %d, want rejection", cid)
	}
	if len(rout.Replies) != 1 {
		t.Fatalf("quarantined resume produced %d replies, want 1 verdict", len(rout.Replies))
	}
	q, ok := rout.Replies[0].Msg.(*wire.Quarantine)
	if !ok {
		t.Fatalf("quarantined resume replied %T, want *wire.Quarantine", rout.Replies[0].Msg)
	}
	if q.Reason != uint8(integrity.ViolationQuarantined) {
		t.Fatalf("resume verdict reason = %d, want quarantined (%d)", q.Reason, integrity.ViolationQuarantined)
	}
}

// TestIntegrityResumeDedupNoQuarantine: the resume race — re-submissions
// of actions the session already stamped — is swallowed by the session
// dedup before any bound or validator sees it, so an honest reconnecting
// client cannot be punished for its own retransmissions.
func TestIntegrityResumeDedupNoQuarantine(t *testing.T) {
	init := initWorld(2)
	cfg := integrityConfig(1.0)
	cfg.ResumeWindow = 4  // sessions on: resume re-sends hit the dedup floor
	cfg.MaxSubmitRate = 2 // tight enough that counting retransmissions would trip it
	cfg.SubmitBurst = 2
	lb := newLoopback(t, cfg, init, 1)

	a1 := &testAction{rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 1}
	a2 := &testAction{rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 2}
	lb.submit(1, a1)
	lb.submit(1, a2)
	lb.drain()

	// The resume re-send: the same stamped actions arrive again on the
	// same session, with the rate bucket already empty. The session dedup
	// floor swallows them before any bound or validator can fire.
	lb.toServer = append(lb.toServer,
		fromMsg{from: 1, msg: &wire.Submit{Env: action.Envelope{Origin: 1, Act: a1}}},
		fromMsg{from: 1, msg: &wire.Submit{Env: action.Envelope{Origin: 1, Act: a2}}})
	lb.drain()

	st := lb.srv.Metrics()
	if st.DuplicateSubmits != 2 {
		t.Fatalf("DuplicateSubmits = %d, want 2", st.DuplicateSubmits)
	}
	if st.RateLimited != 0 || st.QuarantinedClients != 0 {
		t.Fatalf("resume retransmissions punished: rate=%d quarantined=%d", st.RateLimited, st.QuarantinedClients)
	}
	lb.requireNoViolations()
	lb.checkAgainstOracle(init)
}
