package core

import (
	"seve/internal/action"
	"seve/internal/wire"
	"seve/internal/world"
)

// DeliveryClass tells the transport's superseding delivery queue
// (DESIGN.md §13) how a reply may be replaced while it waits,
// undelivered, in a slow client's queue. The classes form the
// supersedable-vs-snapshot decision rule: the soundness argument for
// each is the sent-bit/idempotency analysis in §13, not the footprint —
// footprints feed staleness accounting only.
type DeliveryClass uint8

const (
	// DeliveryOrdered frames carry session-critical control flow
	// (Welcome, CatchUp verdicts, lock grants, relays) and are never
	// superseded, merged, or dropped by the queue. The zero value, so an
	// untagged reply is always handled conservatively.
	DeliveryOrdered DeliveryClass = iota
	// DeliveryBatch frames are sequenced state batches (closure replies
	// and First Bound pushes). Contiguous same-flag batches may be
	// coalesced in place (wire.CoalesceFrames); a later DeliverySnapshot
	// supersedes them entirely.
	DeliveryBatch
	// DeliveryCovered frames are drop notices — information a later
	// snapshot re-delivers through the CatchUp's DroppedActs replay, so a
	// snapshot supersedes them.
	DeliveryCovered
	// DeliverySnapshot frames are blind-write catch-ups (Algorithm 6 as a
	// delivery primitive): self-contained replacements for everything the
	// queue holds below them, and for any earlier queued snapshot — the
	// literal UQP replace-in-place case.
	DeliverySnapshot
)

// Delivery is the supersession metadata the engine's plan phase attaches
// to a reply: the class, the covered-object footprint (the write sets
// the reply communicates — staleness accounting), and the epoch (the
// batch sequence number the frame advances the client to).
type Delivery struct {
	Class     DeliveryClass
	Footprint []world.ObjectID
	Epoch     uint64
}

// Reply is a message the server wants delivered to a specific client.
type Reply struct {
	To  action.ClientID
	Msg wire.Msg
	// Deliver carries the supersession metadata for the transport's
	// delivery queue. The zero value (DeliveryOrdered) is always safe.
	Deliver Delivery
}

// ServerOutput is everything a server engine call produced. The engines
// are pure state machines; the transport adapter (simulator or TCP loop)
// delivers Replies and charges QueueScanned against the server's
// processor using its cost model.
type ServerOutput struct {
	// Replies to deliver, in order.
	Replies []Reply
	// QueueScanned counts uncommitted-queue entries examined by closure
	// and validity analysis during this call — the server-side compute
	// the paper measures at 0.04 ms per move (Section V-B1).
	QueueScanned int
	// Dropped is set when the Information Bound Model invalidated the
	// submitted action.
	Dropped bool
}

// Commit records the stable resolution of one locally originated action,
// reported by the client engine so the harness can measure response time
// (submission → stable commit, the paper's headline metric).
type Commit struct {
	ActID action.ID
	Seq   uint64
	Res   action.Result
	// Reconciled is true when the optimistic evaluation disagreed with
	// the stable one and Algorithm 3 ran.
	Reconciled bool
}

// ClientOutput is everything a client engine call produced.
type ClientOutput struct {
	// ToServer carries messages to send to the server, in order.
	ToServer []wire.Msg
	// Applied lists the actions evaluated against the stable state during
	// this call; the adapter charges their compute cost.
	Applied []action.Action
	// Commits lists locally originated actions resolved during this call.
	Commits []Commit
	// Revoked lists previously reported Commits withdrawn by a boot
	// fence: the server restarted and the committed serial position was
	// rolled back before it became durable. Each revoked action is
	// back in the queue and re-submitted in the same call; it will be
	// reported through Commits again at its re-issued position.
	Revoked []Commit
	// DroppedLocal lists locally originated actions the server dropped.
	DroppedLocal []action.ID
	// ToPeers carries hybrid-relay forwards: batches this client must
	// deliver directly to the named peers (Section VII hybrid mode).
	ToPeers []Reply
	// Violations records strict-mode protocol violations (reads of
	// never-delivered objects, undeclared accesses). Always empty when
	// the protocol machinery is sound — asserted by tests.
	Violations []string
}
