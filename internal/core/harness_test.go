package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"seve/internal/action"
	"seve/internal/geom"
	"seve/internal/wire"
	"seve/internal/world"
)

// testAction is a configurable action for protocol tests: it reads every
// object in rs, sums their first attributes, and writes sum+delta into
// the first attribute of every object in ws. Because the written value
// depends on the read values, concurrent writers make optimistic and
// stable evaluations disagree — exercising reconciliation — and the
// serial oracle detects any replay divergence.
type testAction struct {
	id     action.ID
	rs, ws world.IDSet
	delta  float64
	pos    geom.Vec
	radius float64
	hasPos bool
	class  uint8
}

const kindTestAction action.Kind = 1000

func (a *testAction) ID() action.ID         { return a.id }
func (a *testAction) Kind() action.Kind     { return kindTestAction }
func (a *testAction) ReadSet() world.IDSet  { return a.rs }
func (a *testAction) WriteSet() world.IDSet { return a.ws }

func (a *testAction) Apply(tx *world.Tx) bool {
	sum := 0.0
	for _, id := range a.rs {
		v, ok := tx.Read(id)
		if !ok {
			return false
		}
		if len(v) > 0 {
			sum += v[0]
		}
	}
	for _, id := range a.ws {
		tx.Write(id, world.Value{sum + a.delta})
	}
	return true
}

func (a *testAction) MarshalBody() []byte {
	// Only the delta matters for size purposes in these tests.
	return binary.LittleEndian.AppendUint64(nil, math.Float64bits(a.delta))
}

func (a *testAction) Influence() geom.Circle {
	if !a.hasPos {
		return geom.Circle{}
	}
	return geom.Circle{Center: a.pos, R: a.radius}
}

func (a *testAction) InterestClass() uint8 { return a.class }

// spatial wraps testAction construction with a position.
func spatialAt(a *testAction, x, y, r float64) *testAction {
	a.pos, a.radius, a.hasPos = geom.Vec{X: x, Y: y}, r, true
	return a
}

// loopback shuttles messages between one server and its clients with
// zero latency but strict per-link FIFO order, matching the ordering
// guarantees of the TCP deployment and the simulator.
type loopback struct {
	t       *testing.T
	srv     *Server
	clients map[action.ClientID]*Client
	order   []action.ClientID

	toServer []fromMsg
	toClient map[action.ClientID][]wire.Msg

	nowMs float64

	commits    []Commit
	commitBy   map[action.ClientID][]Commit
	drops      []action.ID
	violations []string
	submitted  int
}

type fromMsg struct {
	from action.ClientID
	msg  wire.Msg
}

func newLoopback(t *testing.T, cfg Config, init *world.State, nClients int) *loopback {
	t.Helper()
	masks := make(map[int32]uint64, nClients)
	for i := 1; i <= nClients; i++ {
		masks[int32(i)] = 0
	}
	return newLoopbackMasks(t, cfg, init, masks)
}

// newLoopbackMasks builds a loopback with per-client interest masks
// (0 = all classes). Client ids are the map keys.
func newLoopbackMasks(t *testing.T, cfg Config, init *world.State, masks map[int32]uint64) *loopback {
	t.Helper()
	lb := &loopback{
		t:        t,
		srv:      NewServer(cfg, init),
		clients:  make(map[action.ClientID]*Client),
		toClient: make(map[action.ClientID][]wire.Msg),
		commitBy: make(map[action.ClientID][]Commit),
	}
	ids := make([]int32, 0, len(masks))
	for id := range masks {
		ids = append(ids, id)
	}
	// Map iteration order is random; keep client order deterministic.
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, raw := range ids {
		id := action.ClientID(raw)
		lb.clients[id] = NewClient(id, cfg, init)
		lb.srv.RegisterClient(id, masks[raw])
		lb.order = append(lb.order, id)
	}
	return lb
}

// submit creates the client-side submission and queues it for the server.
func (lb *loopback) submit(cid action.ClientID, a *testAction) {
	c := lb.clients[cid]
	a.id = c.NextActionID()
	msg, _ := c.Submit(a)
	lb.toServer = append(lb.toServer, fromMsg{from: cid, msg: msg})
	lb.submitted++
}

// stepServer delivers the oldest pending message to the server.
func (lb *loopback) stepServer() bool {
	if len(lb.toServer) == 0 {
		return false
	}
	fm := lb.toServer[0]
	lb.toServer = lb.toServer[1:]
	out := lb.srv.HandleMsg(fm.from, fm.msg, lb.nowMs)
	for _, r := range out.Replies {
		lb.toClient[r.To] = append(lb.toClient[r.To], r.Msg)
	}
	return true
}

// stepClient delivers the oldest pending message to the given client.
func (lb *loopback) stepClient(cid action.ClientID) bool {
	q := lb.toClient[cid]
	if len(q) == 0 {
		return false
	}
	msg := q[0]
	lb.toClient[cid] = q[1:]
	out := lb.clients[cid].HandleMsg(msg)
	lb.absorb(cid, out)
	return true
}

func (lb *loopback) absorb(cid action.ClientID, out ClientOutput) {
	// A revoked provisional commit withdraws the Commit record absorbed
	// when its closure batch landed; the action re-commits at a
	// re-issued position within the same drain.
	for _, rv := range out.Revoked {
		lb.commits = removeCommit(lb.commits, rv)
		lb.commitBy[cid] = removeCommit(lb.commitBy[cid], rv)
	}
	for _, m := range out.ToServer {
		lb.toServer = append(lb.toServer, fromMsg{from: cid, msg: m})
	}
	for _, p := range out.ToPeers {
		lb.toClient[p.To] = append(lb.toClient[p.To], p.Msg)
	}
	lb.commits = append(lb.commits, out.Commits...)
	lb.commitBy[cid] = append(lb.commitBy[cid], out.Commits...)
	lb.drops = append(lb.drops, out.DroppedLocal...)
	lb.violations = append(lb.violations, out.Violations...)
}

func removeCommit(cs []Commit, rv Commit) []Commit {
	for i := len(cs) - 1; i >= 0; i-- {
		if cs[i].ActID == rv.ActID && cs[i].Seq == rv.Seq {
			return append(cs[:i], cs[i+1:]...)
		}
	}
	return cs
}

// tick runs the server's First Bound push cycle.
func (lb *loopback) tick() {
	out := lb.srv.Tick(lb.nowMs)
	for _, r := range out.Replies {
		lb.toClient[r.To] = append(lb.toClient[r.To], r.Msg)
	}
}

// drain pumps all queues until quiescent.
func (lb *loopback) drain() {
	for {
		progress := lb.stepServer()
		for _, cid := range lb.order {
			for lb.stepClient(cid) {
				progress = true
			}
		}
		if !progress && len(lb.toServer) == 0 {
			return
		}
	}
}

// drainRandom pumps queues in a randomized but FIFO-per-link order.
func (lb *loopback) drainRandom(rng *rand.Rand) {
	for {
		var choices []func() bool
		if len(lb.toServer) > 0 {
			choices = append(choices, lb.stepServer)
		}
		for _, cid := range lb.order {
			if len(lb.toClient[cid]) > 0 {
				cid := cid
				choices = append(choices, func() bool { return lb.stepClient(cid) })
			}
		}
		if len(choices) == 0 {
			return
		}
		choices[rng.Intn(len(choices))]()
	}
}

// requireNoViolations fails the test if any strict-mode violation was
// recorded anywhere.
func (lb *loopback) requireNoViolations() {
	lb.t.Helper()
	if len(lb.violations) > 0 {
		lb.t.Fatalf("protocol violations:\n%s", lb.violations[0])
	}
}

// oracleReplay applies the envelopes serially to init, returning the
// final state and the per-position results — the "omniscient serial
// executor" that Theorem 1's consistency guarantee is checked against.
func oracleReplay(init *world.State, hist []action.Envelope) (*world.State, map[uint64]action.Result) {
	st := init.Clone()
	results := make(map[uint64]action.Result, len(hist))
	for _, env := range hist {
		res := action.Eval(env.Act, world.StateView{S: st})
		for _, w := range res.Writes {
			st.Set(w.ID, w.Val)
		}
		results[env.Seq] = res
	}
	return st, results
}

// checkAgainstOracle verifies the Theorem 1 invariants after a drained
// run: the server's authoritative state equals the oracle state, and
// every commit's stable result equals the oracle result at its position.
func (lb *loopback) checkAgainstOracle(init *world.State) {
	lb.t.Helper()
	hist := lb.srv.History()
	oracleState, oracleRes := oracleReplay(init, hist)

	if lb.srv.cfg.Mode >= ModeIncomplete {
		if lb.srv.Installed() != uint64(len(hist)) {
			lb.t.Fatalf("installed %d of %d actions after drain", lb.srv.Installed(), len(hist))
		}
		if !lb.srv.Authoritative().Equal(oracleState) {
			lb.t.Fatal("authoritative state ζS diverged from serial oracle")
		}
	}
	for _, c := range lb.commits {
		want, ok := oracleRes[c.Seq]
		if !ok {
			lb.t.Fatalf("commit at seq %d not in history", c.Seq)
		}
		if !c.Res.Equal(want) {
			lb.t.Fatalf("stable result at seq %d (%v) diverged from oracle:\n got %+v\nwant %+v",
				c.Seq, c.ActID, c.Res, want)
		}
	}
}

// initWorld builds a state with n objects, object i having value {float(i)}.
func initWorld(n int) *world.State {
	s := world.NewState()
	for i := 1; i <= n; i++ {
		s.Set(world.ObjectID(i), world.Value{float64(i)})
	}
	return s
}

func cfgFor(mode Mode) Config {
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.Strict = true
	cfg.RecordHistory = true
	cfg.Threshold = 1e9 // effectively no drops unless a test lowers it
	return cfg
}

var _ = fmt.Sprintf // keep fmt imported for debug helpers
