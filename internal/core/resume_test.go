package core

import (
	"testing"

	"seve/internal/action"
	"seve/internal/wire"
	"seve/internal/world"
)

// The resume tests disconnect a loopback client mid-run (drop its
// pending deliveries and unregister it, as the transport's leave event
// would), then reconnect it through HandleResume and verify the Theorem
// 1 invariants still hold. Running the same scenario with a large and a
// tiny ResumeWindow exercises both strategies — suffix replay and
// snapshot fallback — and pins down that they are observably equivalent.

// drainDropping pumps all queues to quiescence while discarding anything
// addressed to the disconnected client.
func (lb *loopback) drainDropping(dead action.ClientID) {
	for {
		lb.toClient[dead] = nil
		progress := lb.stepServer()
		for _, other := range lb.order {
			if other == dead {
				continue
			}
			for lb.stepClient(other) {
				progress = true
			}
		}
		lb.toClient[dead] = nil
		if !progress && len(lb.toServer) == 0 {
			return
		}
	}
}

// runResumeScenario plays a fixed script: a warm-up round, then client 1
// submits missedBatches actions whose replies die with the connection,
// other clients keep writing overlapping objects, and client 1 resumes.
// Returns the drained loopback for inspection.
func runResumeScenario(t *testing.T, window int) (*loopback, *world.State) {
	t.Helper()
	cfg := cfgFor(ModeIncomplete)
	cfg.ResumeWindow = window
	init := initWorld(6)
	lb := newLoopback(t, cfg, init, 3)

	// Warm-up: everyone commits one action over full connectivity.
	lb.submit(1, &testAction{rs: world.IDSet{1, 2}, ws: world.IDSet{1}, delta: 1})
	lb.submit(2, &testAction{rs: world.IDSet{2, 3}, ws: world.IDSet{2}, delta: 2})
	lb.submit(3, &testAction{rs: world.IDSet{3, 4}, ws: world.IDSet{3}, delta: 3})
	lb.drain()

	// Client 1 submits a run of actions; the server processes them but
	// every reply batch is lost with the dying connection.
	const missedBatches = 4
	for i := 0; i < missedBatches; i++ {
		lb.submit(1, &testAction{rs: world.IDSet{1, 5}, ws: world.IDSet{5}, delta: float64(10 + i)})
	}
	for lb.stepServer() {
	}
	lb.toClient[1] = nil
	lb.srv.UnregisterClient(1) // the transport's leave event

	// The survivors keep playing against the objects client 1 touched.
	lb.submit(2, &testAction{rs: world.IDSet{2, 5}, ws: world.IDSet{2}, delta: 20})
	lb.submit(3, &testAction{rs: world.IDSet{4, 5}, ws: world.IDSet{4}, delta: 30})
	lb.drainDropping(1)

	// Reconnect: the client presents its token and last applied batch.
	tok := lb.srv.SessionToken(1)
	if tok == 0 {
		t.Fatal("no session token for client 1")
	}
	cid, out := lb.srv.HandleResume(&wire.Resume{
		Token:        tok,
		LastBatchSeq: lb.clients[1].LastAppliedBatch(),
	}, lb.nowMs)
	if cid != 1 {
		t.Fatalf("resume resolved to client %d, want 1", cid)
	}
	for _, r := range out.Replies {
		lb.toClient[r.To] = append(lb.toClient[r.To], r.Msg)
	}
	lb.drain()

	lb.requireNoViolations()
	lb.checkAgainstOracle(init)
	if n := lb.clients[1].QueueLen(); n != 0 {
		t.Fatalf("client 1 still has %d in-flight actions after resume+drain", n)
	}
	return lb, init
}

// TestResumeSuffixVsSnapshotEquivalence runs the identical disconnect
// script with a window that covers the gap (suffix replay) and a window
// of one (snapshot fallback), and requires the two resumed clients to
// converge to the same stable store — Theorem 1 does not care which
// repair path ran.
func TestResumeSuffixVsSnapshotEquivalence(t *testing.T) {
	suffix, _ := runResumeScenario(t, 8)
	snapshot, _ := runResumeScenario(t, 1)

	ss := suffix.srv.Metrics()
	if ss.ResumesSuffix != 1 || ss.ResumesSnapshot != 0 {
		t.Fatalf("wide window: suffix=%d snapshot=%d, want 1/0", ss.ResumesSuffix, ss.ResumesSnapshot)
	}
	sn := snapshot.srv.Metrics()
	if sn.ResumesSnapshot != 1 {
		t.Fatalf("narrow window: snapshot=%d, want 1", sn.ResumesSnapshot)
	}
	if cm := snapshot.clients[1].Metrics(); cm.Resumes != 1 || cm.ResumesSnapshot != 1 {
		t.Fatalf("narrow window client counters: %+v", cm)
	}
	if cm := suffix.clients[1].Metrics(); cm.Resumes != 1 || cm.ResumesSnapshot != 0 {
		t.Fatalf("wide window client counters: %+v", cm)
	}

	// Identical commits for the resumed client, in order.
	ca, cb := suffix.commitBy[1], snapshot.commitBy[1]
	if len(ca) != len(cb) {
		t.Fatalf("commit counts differ: suffix %d, snapshot %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i].ActID != cb[i].ActID || ca[i].Seq != cb[i].Seq || !ca[i].Res.Equal(cb[i].Res) {
			t.Fatalf("commit %d differs:\n suffix  %+v\n snapshot %+v", i, ca[i], cb[i])
		}
	}

	// Identical serializations: the same script must produce the same
	// history regardless of which repair path the resume took.
	ha, hb := suffix.srv.History(), snapshot.srv.History()
	if len(ha) != len(hb) {
		t.Fatalf("history lengths differ: suffix %d, snapshot %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i].Seq != hb[i].Seq || ha[i].Act.ID() != hb[i].Act.ID() {
			t.Fatalf("history diverges at %d: suffix %v@%d, snapshot %v@%d",
				i, ha[i].Act.ID(), ha[i].Seq, hb[i].Act.ID(), hb[i].Seq)
		}
	}
	if !suffix.srv.Authoritative().Equal(snapshot.srv.Authoritative()) {
		t.Fatal("authoritative states diverged between the two runs")
	}

	// Theorem 1 per version: every latest version either ζCS holds must
	// equal the serial-replay value as of that version. (The suffix
	// client may hold OLDER versions of objects it stopped needing — the
	// Incomplete World Model promises per-version consistency, not
	// freshness — so comparing raw latest values across runs would be
	// wrong.)
	suffixInit, snapInit := initWorld(6), initWorld(6)
	checkStableConsistent(t, "suffix", suffixInit, ha, suffix.clients[1].Stable())
	checkStableConsistent(t, "snapshot", snapInit, hb, snapshot.clients[1].Stable())

	// Objects the resumed client itself wrote must be current and equal
	// in both runs — and equal to ζS.
	za := suffix.srv.Authoritative()
	for _, id := range []world.ObjectID{1, 5} {
		va, sa, oka := suffix.clients[1].Stable().Latest(id)
		vb, sb, okb := snapshot.clients[1].Stable().Latest(id)
		if !oka || !okb {
			t.Fatalf("object %d missing from a resumed ζCS (suffix %v, snapshot %v)", id, oka, okb)
		}
		if !va.Equal(vb) || sa != sb {
			t.Fatalf("ζCS diverges at object %d: suffix %v@%d, snapshot %v@%d", id, va, sa, vb, sb)
		}
		if zv, ok := za.Get(id); !ok || !va.Equal(zv) {
			t.Fatalf("ζCS(%d)=%v diverges from ζS=%v", id, va, zv)
		}
	}
}

// checkStableConsistent asserts the Theorem 1 invariant over a stable
// store: each object's latest held version v at position s equals the
// omniscient serial replay's value for it as of s.
func checkStableConsistent(t *testing.T, label string, init *world.State, hist []action.Envelope, cs *world.MVStore) {
	t.Helper()
	for _, id := range cs.IDs() {
		val, seq, ok := cs.Latest(id)
		if !ok {
			continue
		}
		st := init.Clone()
		for _, env := range hist {
			if env.Seq > seq {
				break
			}
			res := action.Eval(env.Act, world.StateView{S: st})
			for _, w := range res.Writes {
				st.Set(w.ID, w.Val)
			}
		}
		want, _ := st.Get(id)
		if !val.Equal(want) {
			t.Fatalf("%s ζCS(%d)=%v at seq %d diverges from serial replay %v", label, id, val, seq, want)
		}
	}
}

// TestResumeRejectsUnknownToken: forged and stale-ahead resumes are
// refused with OK=false and counted, and mutate nothing.
func TestResumeRejectsUnknownToken(t *testing.T) {
	cfg := cfgFor(ModeIncomplete)
	cfg.ResumeWindow = 4
	lb := newLoopback(t, cfg, initWorld(3), 2)

	cid, out := lb.srv.HandleResume(&wire.Resume{Token: 0xdead}, 0)
	if cid != 0 {
		t.Fatalf("forged token resolved to client %d", cid)
	}
	if len(out.Replies) != 1 || out.Replies[0].To != 0 {
		t.Fatalf("rejection replies = %+v", out.Replies)
	}
	if cu, ok := out.Replies[0].Msg.(*wire.CatchUp); !ok || cu.OK {
		t.Fatalf("rejection message = %+v", out.Replies[0].Msg)
	}

	// A LastBatchSeq ahead of anything ever sent is equally refused.
	tok := lb.srv.SessionToken(1)
	cid, _ = lb.srv.HandleResume(&wire.Resume{Token: tok, LastBatchSeq: 99}, 0)
	if cid != 0 {
		t.Fatal("stale-ahead LastBatchSeq accepted")
	}
	if got := lb.srv.Metrics().ResumesRejected; got != 2 {
		t.Fatalf("ResumesRejected = %d, want 2", got)
	}
}

// TestResumeDedupSwallowsResubmits: a client that re-submits actions the
// server already accepted (the reconnect race) must not double-install
// them.
func TestResumeDedupSwallowsResubmits(t *testing.T) {
	cfg := cfgFor(ModeIncomplete)
	cfg.ResumeWindow = 4
	init := initWorld(3)
	lb := newLoopback(t, cfg, init, 2)

	a := &testAction{rs: world.IDSet{1}, ws: world.IDSet{1}, delta: 7}
	lb.submit(1, a)
	// Duplicate the submission on the wire, as a resume re-submit would.
	lb.toServer = append(lb.toServer, fromMsg{from: 1, msg: &wire.Submit{Env: action.Envelope{Origin: 1, Act: a}}})
	lb.drain()
	lb.requireNoViolations()
	lb.checkAgainstOracle(init)

	st := lb.srv.Metrics()
	if st.DuplicateSubmits != 1 {
		t.Fatalf("DuplicateSubmits = %d, want 1", st.DuplicateSubmits)
	}
	if got := lb.srv.Installed(); got != 1 {
		t.Fatalf("installed %d actions, want 1 (duplicate must not double-install)", got)
	}
}
