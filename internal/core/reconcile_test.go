package core

import (
	"fmt"
	"math/rand"
	"testing"

	"seve/internal/action"
	"seve/internal/wire"
	"seve/internal/world"
)

// runReconcileWorkload drives a seeded random workload — concurrent
// writers over overlapping sets (so optimistic and stable evaluations
// disagree and Algorithm 3 runs), a low Information Bound threshold (so
// actions get dropped mid-queue), First Bound push ticks, and a
// randomized delivery schedule — and records every observable client
// output: messages to the server, peer forwards, commits with their
// stable results, local drops, violations, and a digest of ζCO after
// every handled message. Two configurations that claim identical client
// behaviour must produce equal traces.
func runReconcileWorkload(t *testing.T, cfg Config, seed int64) ([]string, *loopback) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const nObjects, nClients, rounds = 40, 12, 8
	init := initWorld(nObjects)
	lb := newLoopback(t, cfg, init, nClients)

	var trace []string
	// stepClient with full output recording; mirrors loopback.stepClient.
	step := func(cid action.ClientID) bool {
		q := lb.toClient[cid]
		if len(q) == 0 {
			return false
		}
		msg := q[0]
		lb.toClient[cid] = q[1:]
		out := lb.clients[cid].HandleMsg(msg)
		for _, m := range out.ToServer {
			trace = append(trace, fmt.Sprintf("c%d>s:%x", cid, wire.Encode(m)))
		}
		for _, p := range out.ToPeers {
			trace = append(trace, fmt.Sprintf("c%d>p%d:%x", cid, p.To, wire.Encode(p.Msg)))
		}
		for _, cm := range out.Commits {
			trace = append(trace, fmt.Sprintf("c%d:commit:%v@%d:rec=%v:%+v",
				cid, cm.ActID, cm.Seq, cm.Reconciled, cm.Res))
		}
		for _, d := range out.DroppedLocal {
			trace = append(trace, fmt.Sprintf("c%d:dropped:%v", cid, d))
		}
		for _, v := range out.Violations {
			trace = append(trace, fmt.Sprintf("c%d:violation:%s", cid, v))
		}
		trace = append(trace, fmt.Sprintf("c%d:co:%x", cid, lb.clients[cid].Optimistic().Digest()))
		lb.absorb(cid, out)
		return true
	}
	// Randomized but FIFO-per-link pump; the rng schedule is a function
	// of the seed and of queue lengths, which match between equivalent
	// runs until the first (reported) divergence.
	pump := func() {
		for {
			var choices []func() bool
			if len(lb.toServer) > 0 {
				choices = append(choices, lb.stepServer)
			}
			for _, cid := range lb.order {
				if len(lb.toClient[cid]) > 0 {
					cid := cid
					choices = append(choices, func() bool { return step(cid) })
				}
			}
			if len(choices) == 0 {
				return
			}
			choices[rng.Intn(len(choices))]()
		}
	}

	for round := 0; round < rounds; round++ {
		lb.nowMs += cfg.PushIntervalMs()
		nSub := 3 + rng.Intn(4)
		for i := 0; i < nSub; i++ {
			cid := lb.order[rng.Intn(len(lb.order))]
			rs := []world.ObjectID{world.ObjectID(1 + rng.Intn(nObjects))}
			for rng.Intn(2) == 0 {
				rs = append(rs, world.ObjectID(1+rng.Intn(nObjects)))
			}
			ws := []world.ObjectID{rs[0]}
			if rng.Intn(2) == 0 {
				ws = append(ws, world.ObjectID(1+rng.Intn(nObjects)))
			}
			a := &testAction{
				rs:    world.NewIDSet(append(rs, ws...)...),
				ws:    world.NewIDSet(ws...),
				delta: float64(rng.Intn(100)),
			}
			spatialAt(a, rng.Float64()*120, rng.Float64()*120, 5)
			lb.submit(cid, a)
			// Half the time let the server stamp the backlog before the
			// next submission so queue depths (and drop chains) vary.
			if rng.Intn(2) == 0 {
				for lb.stepServer() {
				}
			}
		}
		for lb.stepServer() {
		}
		if cfg.Mode >= ModeFirstBound {
			lb.tick()
		}
		pump()
	}
	lb.requireNoViolations()
	lb.checkAgainstOracle(initWorld(nObjects))
	return trace, lb
}

// TestReconcileEquivalence holds the incremental divergence-set
// reconciliation to its contract: every observable client behaviour —
// completion and forward bytes, commit results, reconciliation flags,
// the optimistic state after every message, and the final stable store —
// is identical to the literal Algorithm 3 full-rollback implementation,
// across drops, pushes, and out-of-order delivery.
func TestReconcileEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		inc := cfgFor(ModeInfoBound)
		inc.Threshold = 60 // low enough that long conflict chains get dropped
		full := inc
		full.DisableIncrementalReconcile = true

		trInc, lbInc := runReconcileWorkload(t, inc, seed)
		trFull, lbFull := runReconcileWorkload(t, full, seed)
		diffTraces(t, fmt.Sprintf("seed=%d", seed), trInc, trFull)

		recs, copies := 0, 0
		for _, cid := range lbInc.order {
			ci, cf := lbInc.clients[cid], lbFull.clients[cid]
			if !ci.Optimistic().Equal(cf.Optimistic()) {
				t.Fatalf("seed=%d client %d: optimistic states diverged", seed, cid)
			}
			if !ci.Stable().LatestState().Equal(cf.Stable().LatestState()) {
				t.Fatalf("seed=%d client %d: stable states diverged", seed, cid)
			}
			if vi, vf := ci.Stable().Versions(), cf.Stable().Versions(); vi != vf {
				t.Fatalf("seed=%d client %d: stable versions %d vs %d", seed, cid, vi, vf)
			}
			if ri, rf := ci.Reconciliations(), cf.Reconciliations(); ri != rf {
				t.Fatalf("seed=%d client %d: reconciliations %d vs %d", seed, cid, ri, rf)
			}
			recs += ci.Reconciliations()
			copies += ci.Metrics().ReconcileCopies
		}
		// The workload must actually exercise the machinery under test,
		// or the equivalence proof is vacuous.
		if recs == 0 {
			t.Fatalf("seed=%d: no reconciliations ran", seed)
		}
		if copies == 0 {
			t.Fatalf("seed=%d: incremental path copied nothing back", seed)
		}
		if lbInc.srv.TotalDropped() == 0 {
			t.Fatalf("seed=%d: no Information Bound drops", seed)
		}
		if di, df := lbInc.srv.TotalDropped(), lbFull.srv.TotalDropped(); di != df {
			t.Fatalf("seed=%d: drops %d vs %d", seed, di, df)
		}
	}
}

// TestHandleDropReleasesQueueSlot verifies the queue-pinning fix: after
// an entry is removed from the middle of Q, the vacated tail slot of the
// backing array must be zeroed so the dropped action and its cloned
// optimistic result become collectible.
func TestHandleDropReleasesQueueSlot(t *testing.T) {
	c := NewClient(1, cfgFor(ModeInfoBound), initWorld(4))
	var ids []action.ID
	for i := 0; i < 3; i++ {
		a := &testAction{
			id:    c.NextActionID(),
			rs:    world.NewIDSet(world.ObjectID(1 + i)),
			ws:    world.NewIDSet(world.ObjectID(1 + i)),
			delta: 1,
		}
		ids = append(ids, a.id)
		c.Submit(a)
	}
	out := c.HandleDrop(&wire.Drop{ActID: ids[1]})
	if len(out.DroppedLocal) != 1 || out.DroppedLocal[0] != ids[1] {
		t.Fatalf("drop not acknowledged: %+v", out)
	}
	if len(out.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", out.Violations)
	}
	if len(c.queue) != 2 || c.queue[0].act.ID() != ids[0] || c.queue[1].act.ID() != ids[2] {
		t.Fatalf("queue after drop: %+v", c.queue)
	}
	// The slot the survivors shifted out of must not pin the old entry.
	if tail := c.queue[:cap(c.queue)][len(c.queue)]; tail.act != nil || tail.wsd != nil || tail.optimistic.Writes != nil {
		t.Fatalf("vacated queue slot still pins %+v", tail)
	}
}

// TestPendingBatchCap verifies the bounded out-of-order batch buffer:
// gaps buffer up to MaxPendingBatches, overflow drops the arriving batch
// with a violation and a counter bump, and filling the gap still drains
// everything that was buffered.
func TestPendingBatchCap(t *testing.T) {
	cfg := cfgFor(ModeInfoBound)
	cfg.MaxPendingBatches = 2
	c := NewClient(1, cfg, initWorld(8))

	batch := func(seq uint64) *wire.Batch {
		return &wire.Batch{
			ClientSeq: seq,
			Push:      true,
			Envs: []action.Envelope{{
				Seq:    seq,
				Origin: 99,
				Act: &testAction{
					id:    action.ID{Client: 99, Seq: uint32(seq)},
					rs:    world.NewIDSet(1),
					ws:    world.NewIDSet(1),
					delta: float64(seq),
				},
			}},
		}
	}

	// Batches 3 and 4 arrive ahead of their turn and are buffered.
	for _, seq := range []uint64{3, 4} {
		if out := c.HandleBatch(batch(seq)); len(out.Applied) != 0 || len(out.Violations) != 0 {
			t.Fatalf("batch %d not buffered cleanly: %+v", seq, out)
		}
	}
	if st := c.Metrics(); st.BufferedBatches != 2 || st.DroppedBatches != 0 {
		t.Fatalf("after buffering: %+v", st)
	}
	// Batch 5 overflows the cap.
	out := c.HandleBatch(batch(5))
	if len(out.Violations) != 1 {
		t.Fatalf("overflow not reported: %+v", out)
	}
	if st := c.Metrics(); st.BufferedBatches != 2 || st.DroppedBatches != 1 {
		t.Fatalf("after overflow: %+v", st)
	}
	// A duplicate of an already-buffered sequence is not an overflow.
	if out := c.HandleBatch(batch(4)); len(out.Violations) != 0 {
		t.Fatalf("duplicate buffered batch dropped: %+v", out)
	}
	// Filling the gap drains 1 through 4 in order.
	if out := c.HandleBatch(batch(1)); len(out.Applied) != 1 {
		t.Fatalf("batch 1: %+v", out)
	}
	if out := c.HandleBatch(batch(2)); len(out.Applied) != 3 {
		t.Fatalf("gap fill should drain 2,3,4: %+v", out)
	}
	st := c.Metrics()
	if st.BufferedBatches != 0 || st.AppliedRemote != 4 || st.DroppedBatches != 1 {
		t.Fatalf("after drain: %+v", st)
	}
	// Each batch writes read+delta: 1→2→4→7→11 across seqs 1..4.
	if v, ok := c.Optimistic().Get(1); !ok || v[0] != 11 {
		t.Fatalf("object 1 = %v after drain", v)
	}
	// Unbounded configuration buffers past any cap.
	cfgU := cfgFor(ModeInfoBound)
	cfgU.MaxPendingBatches = -1
	cu := NewClient(1, cfgU, initWorld(8))
	for seq := uint64(2); seq <= uint64(2*DefaultMaxPendingBatches); seq += 2 {
		cu.HandleBatch(batch(seq))
	}
	if st := cu.Metrics(); st.DroppedBatches != 0 || st.BufferedBatches != DefaultMaxPendingBatches {
		t.Fatalf("unbounded buffer dropped batches: %+v", st)
	}
}

// TestHandleRelayFanOutEncodeOnce pins the property the transport's
// encode-once fan-out relies on: the peer forwards a relay schedules all
// share the inner batch's envelope slice, so an EncodeCache serializes
// the envelope section exactly once across the fan-out and every cached
// frame is byte-identical to an independent encoding.
func TestHandleRelayFanOutEncodeOnce(t *testing.T) {
	c := NewClient(1, cfgFor(ModeFirstBound), initWorld(8))
	inner := &wire.Batch{
		ClientSeq: 1,
		Push:      true,
		Envs: []action.Envelope{
			{Seq: 1, Origin: 99, Act: &testAction{
				id: action.ID{Client: 99, Seq: 1},
				rs: world.NewIDSet(1), ws: world.NewIDSet(1), delta: 2,
			}},
			{Seq: 2, Origin: 99, Act: &testAction{
				id: action.ID{Client: 99, Seq: 2},
				rs: world.NewIDSet(2), ws: world.NewIDSet(2), delta: 3,
			}},
		},
	}
	m := &wire.Relay{
		Targets:    []action.ClientID{1, 2, 3, 4, 5},
		TargetSeqs: []uint64{1, 7, 8, 9, 10},
		Inner:      inner,
	}
	out := c.HandleRelay(m)
	if len(out.ToPeers) != 4 {
		t.Fatalf("forwards = %d, want 4", len(out.ToPeers))
	}

	var cache wire.EncodeCache
	defer cache.Reset()
	for _, p := range out.ToPeers {
		ref := wire.Encode(p.Msg)
		f := wire.NewFrameCached(&cache, p.Msg)
		if fb := f.Bytes(); fb[4] != byte(p.Msg.Type()) || string(fb[5:]) != string(ref) {
			t.Fatalf("cached frame to client %d diverges from reference encoding", p.To)
		}
		f.Release()
		fwd := p.Msg.(*wire.Batch)
		if &fwd.Envs[0] != &inner.Envs[0] || len(fwd.Envs) != len(inner.Envs) {
			t.Fatalf("forward to client %d does not share the inner envelope slice", p.To)
		}
	}
	if cache.Hits() != uint64(len(out.ToPeers)-1) {
		t.Fatalf("cache hits = %d, want %d", cache.Hits(), len(out.ToPeers)-1)
	}
}
