package core

import (
	"seve/internal/action"
	"seve/internal/metrics"
	"seve/internal/wire"
	"seve/internal/world"
)

// Engine is the server-side protocol engine contract: everything a
// transport adapter (the TCP loop in package transport, the simulator in
// package experiments, the test loopbacks) needs to drive a serializer.
// *Server is the canonical single-lane implementation; shard.Router
// implements the same contract over N spatially partitioned lanes with a
// deterministic cross-shard merge.
//
// Engines are sequential state machines: callers must serialize all
// calls (one engine goroutine, or an external mutex). Any internal
// parallelism — the First Bound push pool, the shard lane workers — is
// the engine's own business and never escapes a call.
type Engine interface {
	// RegisterClient announces a client; interestMask selects interest
	// classes for Section IV-A filtering (0 subscribes to all).
	RegisterClient(id action.ClientID, interestMask uint64)
	// UnregisterClient removes a client (failure or disconnect).
	UnregisterClient(id action.ClientID)
	// HandleMsg dispatches one client message and returns the replies it
	// produced. Engines that batch internally (the shard router) may
	// return the replies from a later call instead; transports must
	// dispatch every output they are handed, whenever they are handed it.
	HandleMsg(from action.ClientID, msg wire.Msg, nowMs float64) ServerOutput
	// Tick runs the First Bound push cycle (a no-op below ModeFirstBound).
	Tick(nowMs float64) ServerOutput
	// Installed returns the serial position up to which ζS is complete.
	Installed() uint64
	// Authoritative returns ζS.
	Authoritative() *world.State
	// History returns the stamped envelopes in serial order (requires
	// ModeBasic or Config.RecordHistory).
	History() []action.Envelope
	// QueueLen reports the number of uncommitted actions.
	QueueLen() int
	// Metrics snapshots the engine's cumulative counters.
	Metrics() metrics.ServerStats
	// SetJournal registers the durable commit feed (feed.go): grouped
	// install records at seal boundaries plus the session-layer records
	// the resume rebuild needs. Pass nil to remove.
	SetJournal(j Journal)
}

// Resumer is implemented by engines that retain client sessions
// (Config.ResumeWindow > 0) and can answer a reconnect.
type Resumer interface {
	// HandleResume answers a wire.Resume. On success it returns the
	// session's client id; the output carries the CatchUp verdict plus
	// either the retained batch suffix or the snapshot follow-up,
	// addressed to that id. On rejection the id is zero and the output
	// holds a single CatchUp{OK: false} Reply addressed To: 0 — the
	// transport routes it to the connection the Resume arrived on.
	HandleResume(m *wire.Resume, nowMs float64) (action.ClientID, ServerOutput)
	// SessionToken returns the resume token for a registered client, or 0
	// when sessions are disabled or the client is unknown.
	SessionToken(id action.ClientID) uint64
}

// Superseder is implemented by engines that can rebuild a connected
// client mid-session: SnapshotCatchUp issues the blind-write catch-up
// (Algorithm 6 / Theorem 1, the same primitive the resume path uses)
// whose replies replace everything queued, undelivered, for that
// client. The transport's superseding delivery queue (DESIGN.md §13)
// calls it when a slow client's queue overflows with frames that
// cannot be superseded in place. Requires Config.ResumeWindow > 0;
// without a live session the output is empty and the transport must
// fall back to dropping.
type Superseder interface {
	SnapshotCatchUp(id action.ClientID, nowMs float64) ServerOutput
}

// Flusher is implemented by engines that buffer submissions internally
// (the shard router's epoch batching). Transports should call Flush
// whenever their event queue drains so buffered replies are not held
// hostage to the next message or tick, and must dispatch the output.
type Flusher interface {
	Flush() ServerOutput
}

// Engine conformance is part of the package contract.
var (
	_ Engine     = (*Server)(nil)
	_ Resumer    = (*Server)(nil)
	_ Superseder = (*Server)(nil)
	_ Restorer   = (*Server)(nil)
)
