package core

import (
	"sort"

	"seve/internal/action"
	"seve/internal/world"
)

// closureBatch implements Algorithm 6, TransitiveClosure(A): given seed
// indexes into the uncommitted queue (the just-submitted action for a
// reply; the push-eligible actions for a First Bound push), it walks the
// queue from newest to oldest accumulating the transitive read set S.
// Every unsent action whose write set intersects S is prepended to the
// batch and marked sent(a) ∋ C; already-sent writers subtract their write
// sets from S (the client has their effects). Finally the blind write
// W(S, ζS(S)) is prepended, seeding the client with the authoritative
// values, as of the install point, of everything it must read.
//
// One generalization relative to the paper: Algorithm 6 is stated for a
// single seed (the submitted action a_{n+1}). First Bound pushes reuse it
// with multiple seeds — the union of their read sets starts S, and the
// walk skips the seed positions. Running the full closure for pushes (the
// paper pushes only the seed actions) guarantees that pushed actions are
// exactly replayable at the client; the extra entries cost only queue
// scans, which Section V-B1 measures at 0.04 ms per move.
func (s *Server) closureBatch(c action.ClientID, seeds []int, out *ServerOutput) []action.Envelope {
	isSeed := make(map[int]bool, len(seeds))
	maxSeed := -1
	var set world.IDSet
	var included []action.Envelope
	for _, i := range seeds {
		isSeed[i] = true
		if i > maxSeed {
			maxSeed = i
		}
		set = set.Union(s.queue[i].rs)
		s.queue[i].sent[c] = struct{}{}
		included = append(included, s.queue[i].env)
	}

	for j := maxSeed - 1; j >= 0; j-- {
		if isSeed[j] {
			continue
		}
		out.QueueScanned++
		s.totalQueueScans++
		e := s.queue[j]
		if !e.ws.Intersects(set) {
			continue
		}
		if _, already := e.sent[c]; already {
			// The client already has a_j's effects; its writes need not
			// be seeded by the blind write.
			set = set.Subtract(e.ws)
			continue
		}
		set = set.Union(e.rs)
		included = append(included, e.env)
		e.sent[c] = struct{}{}
	}

	// The client applies the batch in delivery order and an action at
	// position n reads versions ≤ n−1, so the batch must be in ascending
	// serial order. With a single seed the walk already yields that (it
	// is the paper's prepend); with multiple push seeds the walk-included
	// entries interleave between seeds and an explicit sort is required.
	sort.Slice(included, func(i, j int) bool { return included[i].Seq < included[j].Seq })

	// Prepend W(S, ζS(S)). Objects unknown to ζS are skipped — they do
	// not exist yet at the install point, and any queued creator of them
	// is in the batch.
	var writes []world.Write
	for _, id := range set {
		if v, ok := s.zs.Get(id); ok {
			writes = append(writes, world.Write{ID: id, Val: v.Clone()})
		}
	}
	batch := make([]action.Envelope, 0, len(included)+1)
	if len(writes) > 0 {
		bw := action.NewBlindWrite(s.nextBlindID(), writes)
		batch = append(batch, action.Envelope{
			Seq:    s.installed,
			Origin: action.OriginServer,
			Act:    bw,
		})
	}
	batch = append(batch, included...)
	return batch
}
