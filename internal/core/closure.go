package core

import (
	"math/bits"
	"slices"

	"seve/internal/world"
)

// closureWalk implements Algorithm 6, TransitiveClosure(A): given seed
// indexes into the uncommitted queue (the just-submitted action for a
// reply; the push-eligible actions for a First Bound push), S starts as
// the union of the seeds' read sets and the queue below the highest
// seed is visited newest-to-oldest. An entry whose write set intersects
// S either extends S with its read set and joins the batch, or — when
// already(e) reports the recipient holds its effects — subtracts its
// write set from S (the client has them; they need not be seeded by the
// blind write). It returns the batch's queue positions (seeds plus
// walk-included entries, in ascending serial order) and the blind-write
// payload W(S, ζS(S)), the authoritative values of everything the batch
// must read.
//
// One generalization relative to the paper: Algorithm 6 is stated for a
// single seed (the submitted action a_{n+1}). First Bound pushes reuse
// it with multiple seeds — the union of their read sets starts S, and
// the walk skips the seed positions.
//
// Two mechanisms replace the pre-index full-queue walk:
//
//   - S is an epoch-stamped dense set over interned object indices, so
//     the chain-set updates are O(|set|) array stamps with no per-step
//     allocation (the sorted-slice IDSet ops allocated a fresh slice
//     per union/subtract).
//   - Unless Config.DisableConflictIndex is set, the walk visits only
//     candidate positions drawn from the reverse conflict index: when
//     an object enters S at position p, every live uncommitted writer
//     of it below p becomes a candidate. Every popped candidate
//     re-checks WS ∩ S against the live S, so stale candidates (their
//     object since subtracted) drop out, and candidates are popped
//     highest-first by scanning the bitmap words top-down — the visit
//     sequence is exactly the subsequence of the full walk the full
//     walk would have acted on, and the outputs are byte-identical
//     (asserted by TestClosureIndexEquivalence).
//
// The walk only reads server state; mutations (sent marks, counters,
// blind-write ids) belong to the caller via commitBatch/noteWalk.
// That is what lets the First Bound push scheduler fan walks for
// different clients out over a worker pool (bound.go), and the shard
// router fan walks for different lanes over lane-segment views
// (lanes.go) — seeds and returned positions are indexes into v.queue.
func (s *Server) closureWalk(v *walkView, seeds []int, sc *closureScratch, already func(int, *entry) bool) (positions []int, writes []world.Write, st walkStats) {
	sc.ensure(len(v.queue), s.intern.Len())
	useIndex := !s.cfg.DisableConflictIndex

	maxSeed := -1
	positions = make([]int, 0, len(seeds)+4)
	for _, i := range seeds {
		if i > maxSeed {
			maxSeed = i
		}
		sc.seedPos.Add(uint32(i))
		positions = append(positions, i)
	}
	for _, i := range seeds {
		for _, o := range v.queue[i].rsd {
			if sc.set.Add(o) && useIndex {
				addCandidates(v, sc, o, maxSeed, &st)
			}
		}
	}
	st.baseline = maxSeed - (len(seeds) - 1)

	if useIndex {
		for w := (maxSeed - 1) >> 6; w >= 0; w-- {
			for sc.cand[w] != 0 {
				b := bits.Len64(sc.cand[w]) - 1
				sc.cand[w] &^= 1 << uint(b)
				j := w<<6 | b
				if sc.seedPos.Contains(uint32(j)) {
					continue
				}
				st.scanned++
				e := v.queue[j]
				if !sc.set.ContainsAny(e.wsd) {
					continue // stale candidate: its object left S
				}
				if already(j, e) {
					sc.set.RemoveAll(e.wsd)
					continue
				}
				for _, o := range e.rsd {
					if sc.set.Add(o) {
						addCandidates(v, sc, o, j, &st)
					}
				}
				positions = append(positions, j)
			}
		}
	} else {
		for j := maxSeed - 1; j >= 0; j-- {
			if sc.seedPos.Contains(uint32(j)) {
				continue
			}
			st.scanned++
			e := v.queue[j]
			if !sc.set.ContainsAny(e.wsd) {
				continue
			}
			if already(j, e) {
				sc.set.RemoveAll(e.wsd)
				continue
			}
			sc.set.AddAll(e.rsd)
			positions = append(positions, j)
		}
	}

	// The client applies the batch in delivery order and an action at
	// position n reads versions ≤ n−1, so the batch must be in
	// ascending serial order.
	slices.Sort(positions)
	writes = s.blindWrites(sc)
	return positions, writes, st
}

// blindWrites materializes W(S, ζS(S)): the authoritative values, as of
// the install point, of every object in the final chain set that exists
// in ζS. Objects unknown to ζS are skipped — they do not exist yet at
// the install point, and any queued creator of them is in the batch.
// Ids are emitted in ascending order, matching the sorted-IDSet
// iteration of the pre-index implementation.
func (s *Server) blindWrites(sc *closureScratch) []world.Write {
	sc.memb = sc.set.AppendMembers(sc.memb[:0])
	ids := sc.objs[:0]
	for _, m := range sc.memb {
		ids = append(ids, s.intern.ID(m))
	}
	sc.objs = ids
	slices.Sort(ids)
	var writes []world.Write
	for _, id := range ids {
		if v, ok := s.zs.Get(id); ok {
			if writes == nil {
				writes = make([]world.Write, 0, len(ids))
			}
			writes = append(writes, world.Write{ID: id, Val: v.Clone()})
		}
	}
	return writes
}
