package vet

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func testFindings() []Finding {
	return []Finding{
		{Pos: token.Position{Filename: "/mod/internal/a/a.go", Line: 10, Column: 3}, Checker: "lockscope", Message: "channel send while s.mu is held"},
		{Pos: token.Position{Filename: "/mod/internal/b/b.go", Line: 4, Column: 1}, Checker: "deliveryclass", Message: "bare reply"},
	}
}

// TestWriteJSONRoundTrip pins the artifact format: module-relative
// forward-slash paths, decodable as a baseline.
func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "/mod", testFindings()); err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("findings = %v", rep.Findings)
	}
	if got := rep.Findings[0]; got.File != "internal/a/a.go" || got.Line != 10 || got.Checker != "lockscope" {
		t.Errorf("first finding = %+v", got)
	}
}

// TestDiffBaseline pins both gate directions: fresh findings are
// regressions, vanished baseline entries are paid-off debt.
func TestDiffBaseline(t *testing.T) {
	fs := testFindings()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "/mod", fs); err != nil {
		t.Fatal(err)
	}
	var base JSONReport
	if err := json.Unmarshal(buf.Bytes(), &base); err != nil {
		t.Fatal(err)
	}

	// Identical run: clean in both directions.
	fresh, gone := DiffBaseline(&base, "/mod", fs)
	if len(fresh) != 0 || len(gone) != 0 {
		t.Fatalf("identical diff: fresh=%v gone=%v", fresh, gone)
	}

	// One finding fixed, one new one introduced.
	next := []Finding{
		fs[0],
		{Pos: token.Position{Filename: "/mod/internal/c/c.go", Line: 7, Column: 2}, Checker: "laneaffinity", Message: "cross-lane access"},
	}
	fresh, gone = DiffBaseline(&base, "/mod", next)
	if len(fresh) != 1 || fresh[0].File != "internal/c/c.go" {
		t.Errorf("fresh = %v", fresh)
	}
	if len(gone) != 1 || gone[0].File != "internal/b/b.go" {
		t.Errorf("gone = %v", gone)
	}
}

// TestWriteSARIF pins the envelope shape CI annotation surfaces need:
// version, one run, a rule per checker, results with physical locations.
func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/mod", testFindings()); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string            `json:"name"`
					Rules []json.RawMessage `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("envelope: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "seve-vet" || len(run.Tool.Driver.Rules) != len(AllCheckers()) {
		t.Errorf("driver = %s with %d rules", run.Tool.Driver.Name, len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "lockscope" || r.Locations[0].PhysicalLocation.ArtifactLocation.URI != "internal/a/a.go" ||
		r.Locations[0].PhysicalLocation.Region.StartLine != 10 {
		t.Errorf("first result = %+v", r)
	}
	if strings.Contains(buf.String(), "/mod/") {
		t.Error("SARIF output leaked absolute paths")
	}
}
