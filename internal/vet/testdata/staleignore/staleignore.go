// Corpus for the stale-suppression audit. The first directive
// suppresses a real lockscope finding and must survive the audit; the
// second excuses code that no longer exists and must be reported stale.
package staletest

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

// usedDirective suppresses a live finding.
func (b *box) usedDirective() {
	b.mu.Lock()
	//seve:vet-ignore lockscope corpus fixture: the send below is the suppressed finding
	b.ch <- 1
	b.mu.Unlock()
}

// staleDirective suppresses nothing: the blocking op it once excused
// was fixed, and the suppression is rotting in place.
func (b *box) staleDirective() {
	b.mu.Lock()
	//seve:vet-ignore lockscope nothing here blocks anymore
	b.mu.Unlock()
}
