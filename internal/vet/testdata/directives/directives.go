// Corpus for the //seve:vet-ignore directive machinery, exercised by
// TestDirectives rather than want comments: a valid directive
// suppresses, an unknown checker or missing reason is itself a finding,
// and the underlying finding then survives.
package dirtest

import "seve/internal/wire"

func suppressed() {
	//seve:vet-ignore pooldiscipline deliberate leak to prove suppression works
	wire.GetBuf(8)
}

func unknownChecker() {
	//seve:vet-ignore nosuchchecker some reason
	wire.GetBuf(8)
}

func missingReason() {
	//seve:vet-ignore pooldiscipline
	wire.GetBuf(8)
}
