// Corpus for the rwset checker. Lines with a `// want` comment must be
// flagged with a message matching the regexp; everything else must stay
// clean.
package rwtest

import "seve/internal/world"

// good confines every Tx access to its declared sets: reads range the
// declared read set, the write targets the declared write set, and the
// WS ⊆ RS convention makes the written id readable too.
type good struct {
	target world.ObjectID
	rs     world.IDSet
}

func (a *good) ReadSet() world.IDSet  { return a.rs }
func (a *good) WriteSet() world.IDSet { return world.NewIDSet(a.target) }

func (a *good) Apply(tx *world.Tx) bool {
	for _, id := range a.rs {
		if _, ok := tx.Read(id); !ok {
			return false
		}
	}
	v, _ := tx.Read(a.target)
	tx.Write(a.target, v)
	return true
}

// flow derives its target through locals, a conversion, and a loop —
// still traceable to the declared sets.
type flow struct {
	rs world.IDSet
}

func (f *flow) ReadSet() world.IDSet  { return f.rs }
func (f *flow) WriteSet() world.IDSet { return f.ReadSet() }

func (f *flow) Apply(tx *world.Tx) bool {
	worst := world.ObjectID(0)
	for _, id := range f.rs {
		worst = id
	}
	cur := worst
	if _, ok := tx.Read(cur); !ok {
		return false
	}
	tx.Write(cur, world.Value{1})
	return true
}

// evalOnly checks the Eval spelling of the entry point.
type evalOnly struct {
	src world.ObjectID
}

func (e *evalOnly) ReadSet() world.IDSet  { return world.NewIDSet(e.src) }
func (e *evalOnly) WriteSet() world.IDSet { return nil }

func (e *evalOnly) Eval(tx *world.Tx) bool {
	_, ok := tx.Read(e.src)
	return ok
}

// rogue escapes its declaration three ways: an undeclared field, id
// arithmetic, and arithmetic laundered through a local.
type rogue struct {
	target world.ObjectID
	other  world.ObjectID
}

func (r *rogue) ReadSet() world.IDSet  { return world.NewIDSet(r.target) }
func (r *rogue) WriteSet() world.IDSet { return world.NewIDSet(r.target) }

func (r *rogue) Apply(tx *world.Tx) bool {
	tx.Read(r.other)          // want `reads object id "·\.other" not traceable`
	tx.Write(r.target+1, nil) // want `writes object id "·\.target\+1" not traceable`
	shifted := r.target + 1000
	tx.Write(shifted, nil) // want `writes object id "shifted" not traceable`
	return true
}

// readonly declares no write set, so reading is fine and writing is not
// — even to an id the read set does declare.
type readonly struct {
	src world.ObjectID
}

func (r *readonly) ReadSet() world.IDSet  { return world.NewIDSet(r.src) }
func (r *readonly) WriteSet() world.IDSet { return nil }

func (r *readonly) Apply(tx *world.Tx) bool {
	if _, ok := tx.Read(r.src); !ok {
		return false
	}
	tx.Write(r.src, world.Value{0}) // want `writes object id "·\.src" not traceable`
	return true
}
