// Corpus for the laneaffinity checker. Lines with a `// want` comment
// must be flagged with a message matching the regexp; everything else
// must stay clean. The types mirror the engine's lane-partitioned state:
// a lanes []laneSeg field is the per-lane segment array the checker
// guards, laneWriters the lane-numbered conflict index.
package lanetest

type laneSeg struct {
	queue     []int
	installed uint64
}

type engine struct {
	lanes       []laneSeg
	laneWriters [][]uint64
}

type pending struct {
	lane     int
	viewLane int
}

// StampLane is implicitly lane-affine: an int parameter named "lane".
func (e *engine) StampLane(lane int, ps []*pending) {
	ls := &e.lanes[lane]
	ls.queue = append(ls.queue, lane)
}

// CommitLane reaches its own lane through the pending's owner field.
//
//seve:lane-affine
func (e *engine) CommitLane(p *pending) {
	ls := &e.lanes[p.viewLane]
	ls.installed++
	e.indexLane(&e.lanes[p.lane])
}

//seve:lane-affine
func (e *engine) indexLane(ls *laneSeg) {
	rows := e.laneWriters[0]
	_ = append(rows, ls.installed)
}

// SealInstall runs between phases and may range the whole array.
//
//seve:lane-seal
func (e *engine) SealInstall() {
	for i := range e.lanes {
		e.lanes[i].queue = nil
	}
	e.laneWriters = append(e.laneWriters, nil)
	e.CommitLane(&pending{}) // a seal pass may drive any lane
}

// touchUnannotated has no declared context at all.
func (e *engine) touchUnannotated(p *pending) {
	e.lanes[0].installed++                // want `lane segment e.lanes indexed outside a lane worker or seal pass`
	n := len(e.lanes)                     // want `lane segments e.lanes touched outside a lane worker or seal pass`
	e.laneWriters[0] = nil                // want `lane conflict index e.laneWriters touched outside a lane worker or seal pass`
	e.StampLane(0, nil)                   // want `lane-affine function StampLane called outside a lane worker or seal pass`
	e.CommitLane(p)                       // want `lane-affine function CommitLane called outside a lane worker or seal pass`
	_ = n
}

// crossLane indexes a neighbour's segment from an affine context.
func (e *engine) crossLane(lane int, p *pending) {
	e.lanes[lane].installed++
	e.lanes[lane+1].installed++ // want `cross-lane access: e.lanes\[<expr>\] from a lane-affine context`
	e.lanes[0].installed++      // want `cross-lane access: e.lanes\[0\] from a lane-affine context`
	e.StampLane(lane, nil)
	e.StampLane(p.lane, nil)
	e.StampLane(0, nil) // want `cross-lane call: StampLane given lane 0 from a lane-affine context`
	for range e.lanes { // want `whole-slice access to e.lanes from a lane-affine context`
	}
	e.SealInstall() // want `seal-pass function SealInstall called from a lane-affine context`
}

// phaseClosure is the router's fan-out shape: the literal's own lane
// parameter makes it affine, and the captured engine is indexed by it.
func (e *engine) phaseClosure(run func(fn func(lane int))) {
	run(func(lane int) {
		e.lanes[lane].installed++
		e.StampLane(lane, nil)
	})
	run(func(lane int) {
		e.lanes[lane-1].installed++ // want `cross-lane access: e.lanes\[<expr>\] from a lane-affine context`
	})
}

// otherLanes is a field also named lanes but not of []laneSeg; the
// type-based matcher must leave it alone.
type router struct {
	lanes [][]int
}

func (r *router) buffers() int {
	r.lanes[0] = nil
	return len(r.lanes)
}
