// Corpus for the pooldiscipline checker. Lines with a `// want` comment
// must be flagged with a message matching the regexp; everything else
// must stay clean.
package pooltest

import "seve/internal/wire"

// leakOnReturn acquires a buffer and returns without PutBuf.
func leakOnReturn() []byte {
	buf := wire.GetBuf(64) // want `not returned with PutBuf on every path`
	buf = append(buf, 1)
	out := make([]byte, len(buf))
	copy(out, buf)
	return out
}

// conditionalLeak releases on one branch only.
func conditionalLeak(flush bool) {
	buf := wire.GetBuf(16) // want `not returned with PutBuf on every path`
	buf = append(buf, 7)
	if flush {
		wire.PutBuf(buf)
	}
}

// balanced is the canonical clean shape.
func balanced() {
	buf := wire.GetBuf(16)
	buf = append(buf, 1, 2, 3)
	wire.PutBuf(buf)
}

// deferredClose releases through a deferred closure — clean.
func deferredClose() []int {
	buf := wire.GetBuf(32)
	defer func() { wire.PutBuf(buf) }()
	buf = append(buf, 9)
	return []int{len(buf)}
}

// derived tracks the buffer through an append-style call — the
// WriteFrame shape — and stays clean.
func derived(msg wire.Msg) int {
	buf := wire.AppendFrame(wire.GetBuf(64), msg)
	n := len(buf)
	wire.PutBuf(buf)
	return n
}

// useAfterPut touches the buffer after it went back to the pool.
func useAfterPut() byte {
	buf := wire.GetBuf(8)
	buf = append(buf, 42)
	wire.PutBuf(buf)
	return buf[0] // want `use of pooled buffer "buf" after PutBuf`
}

// doublePut returns the same buffer twice.
func doublePut() {
	buf := wire.GetBuf(8)
	wire.PutBuf(buf)
	wire.PutBuf(buf) // want `returned to the pool twice`
}

// discard drops the acquisition on the floor.
func discard() {
	wire.GetBuf(8) // want `result of GetBuf is discarded`
}

// handOff transfers ownership through a channel — clean; the receiver
// releases it.
func handOff(ch chan []byte) {
	buf := wire.GetBuf(16)
	ch <- buf
}

// frameLeak drops the creation reference.
func frameLeak() int {
	f := wire.NewFrame(&wire.Hello{InterestMask: 1}) // want `frame "f" is not released on every path`
	return f.Len()
}

// frameBalanced is the dispatch shape: retain for a channel hand-off,
// release on the full-queue branch, release the creation reference at
// the end. Clean.
func frameBalanced(ch chan *wire.Frame) {
	f := wire.NewFrame(&wire.Hello{})
	f.Retain()
	select {
	case ch <- f:
	default:
		f.Release()
	}
	f.Release()
}

// overRelease drops more references than it owns.
func overRelease() {
	f := wire.NewFrame(&wire.Hello{})
	f.Release()
	f.Release() // want `released after its final reference`
}

// retainAfterFree revives a frame the pool may already own.
func retainAfterFree() {
	f := wire.NewFrame(&wire.Hello{})
	f.Release()
	f.Retain() // want `retained after its final Release`
}

// perIteration leaks one frame per loop iteration.
func perIteration(msgs []wire.Msg) int {
	total := 0
	for _, m := range msgs {
		f := wire.NewFrame(m) // want `frame "f" is not released on every path`
		total += f.Len()
	}
	return total
}

// stash moves ownership into a struct — a later owner releases. Clean.
type stash struct {
	f *wire.Frame
}

func (s *stash) fill() {
	s.f = wire.NewFrame(&wire.Hello{})
}

// supersedeInPlace is the superseding enqueue shape (DESIGN.md §13):
// retain the fresh frame for the slot it takes over, release the
// displaced frame's slot reference, drop the creation reference. Clean.
func supersedeInPlace(slot []*wire.Frame, i int) {
	f := wire.NewFrame(&wire.Hello{})
	f.Retain()
	old := slot[i]
	slot[i] = f
	old.Release()
	f.Release()
}

// supersedePending replaces a locally pending frame: the displaced
// reference is released before the name is rebound, and the
// replacement's reference travels out on the channel. Clean.
func supersedePending(ch chan *wire.Frame) {
	pending := wire.NewFrame(&wire.Hello{})
	pending.Release()
	pending = wire.NewFrame(&wire.Hello{InterestMask: 1})
	ch <- pending
}

// supersedeLeak rebinds the pending frame without releasing the
// displaced reference — the classic replace-in-queue leak: the stale
// frame never returns to the pool.
func supersedeLeak(ch chan *wire.Frame) {
	pending := wire.NewFrame(&wire.Hello{}) // want `frame "pending" is not released on every path`
	pending = wire.NewFrame(&wire.Hello{InterestMask: 1})
	ch <- pending
}

// supersedeUseAfter reads the displaced frame after its reference went
// back to the pool — a drain racing a replacement.
func supersedeUseAfter() int {
	f := wire.NewFrame(&wire.Hello{})
	f.Release()
	return f.Len() // want `use of frame "f" after its final Release`
}

// walJob mirrors the durable committer's queue element: a framed
// record in a pooled buffer whose ownership travels with the job
// (DESIGN.md §15).
type walJob struct {
	lane int32
	buf  []byte
}

// walHandOff is the journal fast path: encode into a pooled buffer on
// the caller's goroutine, wrap it in the job, send. The committer
// releases it — ownership moved with the composite literal. Clean.
func walHandOff(jobs chan walJob) {
	buf := wire.GetBuf(64)
	buf = append(buf, 1)
	jobs <- walJob{lane: 0, buf: buf}
}

// walShedLeak is the degrade path gone wrong: when the queue is full
// the record is dropped, but the buffer never goes back to the pool —
// sustained overload starves the encoder.
func walShedLeak(jobs chan walJob, full bool) {
	buf := wire.GetBuf(64) // want `not returned with PutBuf on every path`
	buf = append(buf, 1)
	if full {
		return
	}
	jobs <- walJob{lane: 0, buf: buf}
}

// walPayloadReuse frames a record from a scratch payload, returns the
// scratch to the pool, then touches it again — the batch-retained
// encode shape with the release hoisted one line too early.
func walPayloadReuse(jobs chan walJob) int {
	payload := wire.GetBuf(32)
	payload = append(payload, 7)
	buf := wire.GetBuf(64)
	buf = append(buf, payload...)
	wire.PutBuf(payload)
	jobs <- walJob{lane: 1, buf: buf}
	return len(payload) // want `use of pooled buffer "payload" after PutBuf`
}
