// Corpus for the lockscope checker. Lines with a `// want` comment must
// be flagged with a message matching the regexp; everything else must
// stay clean.
package locktest

import (
	"net"
	"sync"
	"time"

	"seve/internal/wire"
)

type hub struct {
	mu    sync.Mutex
	smu   sync.RWMutex
	wg    sync.WaitGroup
	conn  net.Conn
	out   chan wire.Msg
	peers map[int]net.Conn
}

// dispatchClean is the PR 7 fix shape: snapshot under the lock, release
// it, then fan the frames out over the network.
func (h *hub) dispatchClean(msgs []wire.Msg) {
	h.mu.Lock()
	conn := h.conn
	h.mu.Unlock()
	for _, m := range msgs {
		wire.WriteFrame(conn, m)
	}
}

// dispatchRogue is the historical PR 7 dispatchReplies bug: the encode
// fan-out loop runs with the hub lock held, so one stalled peer convoys
// every connection behind the mutex.
func (h *hub) dispatchRogue(msgs []wire.Msg) {
	h.mu.Lock()
	for _, m := range msgs {
		wire.WriteFrame(h.conn, m) // want `wire.WriteFrame while h.mu is held`
	}
	h.mu.Unlock()
}

// sendUnderLock blocks on an unbuffered channel inside the region.
func (h *hub) sendUnderLock(m wire.Msg) {
	h.mu.Lock()
	h.out <- m // want `channel send while h.mu is held`
	h.mu.Unlock()
}

// sendAfterUnlock releases first.
func (h *hub) sendAfterUnlock(m wire.Msg) {
	h.mu.Lock()
	h.mu.Unlock()
	h.out <- m
}

// recvUnderLock blocks on a receive in value position.
func (h *hub) recvUnderLock() wire.Msg {
	h.mu.Lock()
	defer h.mu.Unlock()
	return <-h.out // want `channel receive while h.mu is held`
}

// deferredRegion: defer Unlock keeps the region open to function end,
// so the late conn write is still inside it.
func (h *hub) deferredRegion(b []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.conn.Write(b) // want `net\.Write while h.mu is held`
}

// rangeChanUnderLock parks on the channel between elements.
func (h *hub) rangeChanUnderLock() {
	h.mu.Lock()
	for range h.out { // want `range over channel while h.mu is held`
	}
	h.mu.Unlock()
}

// selectNoDefault parks the goroutine; selectDefault never does.
func (h *hub) selectNoDefault() {
	h.mu.Lock()
	select { // want `select without default while h.mu is held`
	case m := <-h.out:
		_ = m
	}
	h.mu.Unlock()
}

func (h *hub) selectDefault() {
	h.mu.Lock()
	select {
	case m := <-h.out:
		_ = m
	default:
	}
	h.mu.Unlock()
}

// selfDeadlock re-enters its own region.
func (h *hub) selfDeadlock() {
	h.mu.Lock()
	h.mu.Lock() // want `h\.mu\.Lock while h\.mu is already held on this path`
	h.mu.Unlock()
}

// readUnderWrite downgrades without releasing.
func (h *hub) readUnderWrite() {
	h.smu.Lock()
	h.smu.RLock() // want `h\.smu\.RLock while h\.smu is write-held on this path`
	h.smu.RUnlock()
	h.smu.Unlock()
}

// waitUnderLock holds the region across a rendezvous.
func (h *hub) waitUnderLock() {
	h.mu.Lock()
	h.wg.Wait() // want `sync Wait while h.mu is held`
	h.mu.Unlock()
}

// sleepUnderLock stalls every other goroutine contending for mu.
func (h *hub) sleepUnderLock() {
	h.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while h.mu is held`
	h.mu.Unlock()
}

// branchMerge: the lock is held on one arm of the if, so the merge is
// held-biased and the send after the join is flagged.
func (h *hub) branchMerge(cond bool, m wire.Msg) {
	if cond {
		h.mu.Lock()
	}
	h.out <- m // want `channel send while h.mu is held`
	if cond {
		h.mu.Unlock()
	}
}

// goroutineEscapes: spawning does not block, and the literal starts
// from an empty lock set — its send is on its own schedule.
func (h *hub) goroutineEscapes(m wire.Msg) {
	h.mu.Lock()
	go func() {
		h.out <- m
	}()
	h.mu.Unlock()
}

// literalOwnRegion: a lock taken inside a literal is the literal's own
// region, and sinks inside it are checked there.
func (h *hub) literalOwnRegion(m wire.Msg) func() {
	return func() {
		h.mu.Lock()
		h.out <- m // want `channel send while h.mu is held`
		h.mu.Unlock()
	}
}

// rlockBlocks: read regions convoy writers just the same.
func (h *hub) rlockBlocks() (wire.Msg, error) {
	h.smu.RLock()
	defer h.smu.RUnlock()
	return wire.ReadFrame(h.conn) // want `wire.ReadFrame while h.smu is held`
}

// walStore mirrors the durable committer queue: a bounded job channel
// fed by caller goroutines, with shed metrics guarded by mu
// (DESIGN.md §15).
type walStore struct {
	mu   sync.Mutex
	shed int
	jobs chan wire.Msg
	done chan error
}

// enqueueShed is the degrade-shed shape: inside the critical section
// the send is attempted non-blocking only, and a full queue bumps the
// shed counter instead of parking the caller. Clean.
func (ws *walStore) enqueueShed(m wire.Msg) {
	ws.mu.Lock()
	select {
	case ws.jobs <- m:
	default:
		ws.shed++
	}
	ws.mu.Unlock()
}

// enqueueBlocking parks on the bounded queue with the lock held: when
// the committer stalls on an fsync, every producer convoys behind mu.
func (ws *walStore) enqueueBlocking(m wire.Msg) {
	ws.mu.Lock()
	ws.jobs <- m // want `channel send while ws.mu is held`
	ws.mu.Unlock()
}

// barrierUnderLock holds the lock across the whole committer
// round-trip: the barrier job goes out and its ack is awaited inside
// the region, so the fsync latency is serialized under mu.
func (ws *walStore) barrierUnderLock(m wire.Msg) error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	ws.jobs <- m     // want `channel send while ws.mu is held`
	return <-ws.done // want `channel receive while ws.mu is held`
}
