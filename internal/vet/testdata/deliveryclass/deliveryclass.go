// Corpus for the deliveryclass checker. Lines with a `// want` comment
// must be flagged with a message matching the regexp; everything else
// must stay clean. The queue type mirrors transport.SendQueue's shapes:
// a frame/delivery struct pair, the supersession escalation ladder, and
// the replace-in-place loop.
package dctest

import (
	"seve/internal/core"
	"seve/internal/wire"
)

// bareReply omits the Deliver key, silently inheriting DeliveryOrdered.
func bareReply(m wire.Msg) core.Reply {
	return core.Reply{Msg: m} // want `core.Reply literal without Deliver metadata`
}

// taggedReply spells the class out.
func taggedReply(m wire.Msg) core.Reply {
	return core.Reply{Msg: m, Deliver: core.Delivery{Class: core.DeliveryBatch}}
}

// zeroReply is a zero-value sentinel, positionalReply spells out every
// field by construction; neither needs the key.
func zeroReply() core.Reply { return core.Reply{} }

func positionalReply(m wire.Msg) core.Reply {
	return core.Reply{0, m, core.Delivery{Class: core.DeliveryOrdered}}
}

type item struct {
	f *wire.Frame
	d core.Delivery
}

type queue struct {
	closed bool
	sup    bool
	limit  int
	items  []item
}

// replaceInPlace is the UQP snapshot shape: Ordered frames survive via
// the continue, so the release below it is proven non-ordered.
func (q *queue) replaceInPlace() {
	kept := q.items[:0]
	for _, it := range q.items {
		if it.d.Class == core.DeliveryOrdered {
			kept = append(kept, it)
			continue
		}
		it.f.Release()
	}
	q.items = kept
}

// dropAll sheds without looking at the class at all.
func (q *queue) dropAll() {
	for _, it := range q.items {
		it.f.Release() // want `frame it.f shed on a path where it.d.Class may be DeliveryOrdered`
	}
	q.items = nil
}

// closeAll may shed anything: the queue-closed fact is the one legal
// Ordered shed.
func (q *queue) closeAll() {
	q.closed = true
	for _, it := range q.items {
		it.f.Release()
	}
	q.items = nil
}

// guarded pairs a frame parameter with its delivery parameter.
func guarded(f *wire.Frame, d core.Delivery) {
	if d.Class != core.DeliveryOrdered {
		f.Release()
	}
}

func unguarded(f *wire.Frame, d core.Delivery) {
	f.Release() // want `frame f shed on a path where d.Class may be DeliveryOrdered`
}

// enqueue is the escalation ladder: the FIFO guard's negation plus the
// terminated !q.sup branch unit-propagate into a proof that the final
// shed never sees an Ordered frame. The shed inside !q.sup itself is
// the real pre-supersession drop and must be flagged.
func (q *queue) enqueue(f *wire.Frame, d core.Delivery) {
	if q.closed {
		f.Release()
		return
	}
	if len(q.items) < q.limit || (q.sup && d.Class == core.DeliveryOrdered) {
		q.items = append(q.items, item{f: f, d: d})
		return
	}
	if !q.sup {
		f.Release() // want `frame f shed on a path where d.Class may be DeliveryOrdered`
		return
	}
	f.Release()
}

// coalesce may only merge two provably-Batch frames.
func (q *queue) coalesce(f *wire.Frame, d core.Delivery) {
	tail := &q.items[len(q.items)-1]
	if d.Class == core.DeliveryBatch && tail.d.Class == core.DeliveryBatch {
		if merged, ok := wire.CoalesceFrames(tail.f, f); ok {
			tail.f = merged
		}
	}
	if merged, ok := wire.CoalesceFrames(tail.f, f); ok { // want `frame tail.f may reach wire.CoalesceFrames with class DeliveryOrdered` // want `frame f may reach wire.CoalesceFrames with class DeliveryOrdered`
		_ = merged
	}
}
