// Corpus for the detorder checker. Lines with a `// want` comment must
// be flagged with a message matching the regexp; everything else must
// stay clean.
package dettest

import (
	"sort"

	"seve/internal/core"
	"seve/internal/wire"
)

type outbox struct {
	Seq  uint64
	Envs []int
}

// encodeUnordered serializes straight out of map iteration — the byte
// stream differs run to run.
func encodeUnordered(m map[int]wire.Msg, buf []byte) []byte {
	for _, msg := range m { // want `map iteration order feeds wire encoding \(AppendFrame\)`
		buf = wire.AppendFrame(buf, msg)
	}
	return buf
}

// stampUnordered assigns serial order in map order.
func stampUnordered(m map[int]*outbox, next uint64) {
	for _, o := range m { // want `serial order assignment \(Seq\)`
		o.Seq = next
		next++
	}
}

// emitUnordered appends to an output stream in map order.
func emitUnordered(m map[int]int, o *outbox) {
	for k := range m { // want `output emission \(Envs\)`
		o.Envs = append(o.Envs, k)
	}
}

// lane models a shard lane's epoch buffer, as in the shard router's
// merge step.
type lane struct {
	Seq  uint64
	Envs []int
}

// mergeLanesUnordered merges per-lane epoch buffers keyed by lane id in
// map order: the global serial order then depends on map iteration.
func mergeLanesUnordered(lanes map[int]*lane, next uint64) uint64 {
	for _, l := range lanes { // want `serial order assignment \(Seq\)`
		l.Seq = next
		next += uint64(len(l.Envs))
	}
	return next
}

// emitLanesUnordered drains lane buffers into the client-visible stream
// in map order — the byte stream the clients see differs run to run.
func emitLanesUnordered(lanes map[int]*lane, out *outbox) {
	for _, l := range lanes { // want `output emission \(Envs\)`
		out.Envs = append(out.Envs, l.Envs...)
	}
}

// mergeLanesByIndex is the sanctioned shard-merge idiom: lanes live in a
// slice and the merge walks them in ascending lane index, so the global
// order (epoch, lane, localSeq) is deterministic. Clean.
func mergeLanesByIndex(lanes []*lane, out *outbox, next uint64) uint64 {
	for i := 0; i < len(lanes); i++ {
		lanes[i].Seq = next
		next += uint64(len(lanes[i].Envs))
		out.Envs = append(out.Envs, lanes[i].Envs...)
	}
	return next
}

// mergeLanesSortedKeys is the map-keyed variant of the sanctioned idiom:
// collect lane ids, sort, then stamp and emit in sorted order. Clean.
func mergeLanesSortedKeys(lanes map[int]*lane, out *outbox, next uint64) uint64 {
	ids := make([]int, 0, len(lanes))
	for id := range lanes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		l := lanes[id]
		l.Seq = next
		next += uint64(len(l.Envs))
		out.Envs = append(out.Envs, l.Envs...)
	}
	return next
}

// collectThenSort is the sanctioned idiom: the map range only collects,
// the ordered loop does the encoding. Clean.
func collectThenSort(m map[int]wire.Msg, buf []byte) []byte {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		buf = wire.AppendFrame(buf, m[k])
	}
	return buf
}

// countOnly ranges a map for an order-insensitive fold. Clean.
func countOnly(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sliceEncode ranges a slice, which iterates deterministically. Clean.
func sliceEncode(msgs []wire.Msg, buf []byte) []byte {
	for _, m := range msgs {
		buf = wire.AppendFrame(buf, m)
	}
	return buf
}

// sealUnordered drives the partitioned pipeline's sequential stamp seal
// out of map iteration: global Seqs, counters, and Drop replies land in
// map order instead of the merge order (epoch, lane, localSeq).
func sealUnordered(srv *core.Server, jobs map[int]*core.Pending, out *core.ServerOutput) {
	for _, p := range jobs { // want `epoch merge \(SealStamp\)`
		srv.SealStamp(p, out)
	}
}

// mintUnordered mints blind-write ids in map order — the ids are
// client-visible, so the reply bytes differ run to run.
func mintUnordered(srv *core.Server, jobs map[*core.Pending]*core.ReplyPlan) {
	for p, plan := range jobs { // want `epoch merge \(PreCommit\)`
		srv.PreCommit(p, plan)
	}
}

// emitSealUnordered emits the staged replies in map order.
func emitSealUnordered(srv *core.Server, jobs map[*core.Pending]*core.ReplyPlan, out *core.ServerOutput) {
	for p, plan := range jobs { // want `epoch merge \(SealCommit\)`
		srv.SealCommit(p, plan, out)
	}
}

// stampGlobalUnordered runs the global-path stamp out of map iteration:
// each call assigns the next serial position, so the total order
// depends on map order.
func stampGlobalUnordered(srv *core.Server, jobs map[int]*core.Pending, out *core.ServerOutput) {
	for _, p := range jobs { // want `epoch merge \(StampPrepared\)`
		srv.StampPrepared(p, out)
	}
}

// sealByJobOrder is the sanctioned idiom: jobs collected lane-major
// into a slice at flush start, every sequential seal pass walking it by
// ascending index — the merge order. Clean.
func sealByJobOrder(srv *core.Server, jobs []*core.Pending, plans []*core.ReplyPlan, out *core.ServerOutput) {
	for i := range jobs {
		if srv.SealStamp(jobs[i], out) {
			srv.PreCommit(jobs[i], plans[i])
			srv.SealCommit(jobs[i], plans[i], out)
		}
	}
}

// laneDispatchUnordered fans lane-affine stamping out of a map: the
// lanes touch disjoint state, so dispatch order is free. Clean.
func laneDispatchUnordered(srv *core.Server, lanes map[int][]*core.Pending) {
	for lane, ps := range lanes {
		srv.StampLane(lane, ps)
	}
}
