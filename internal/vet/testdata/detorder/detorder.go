// Corpus for the detorder checker. Lines with a `// want` comment must
// be flagged with a message matching the regexp; everything else must
// stay clean.
package dettest

import (
	"sort"

	"seve/internal/wire"
)

type outbox struct {
	Seq  uint64
	Envs []int
}

// encodeUnordered serializes straight out of map iteration — the byte
// stream differs run to run.
func encodeUnordered(m map[int]wire.Msg, buf []byte) []byte {
	for _, msg := range m { // want `map iteration order feeds wire encoding \(AppendFrame\)`
		buf = wire.AppendFrame(buf, msg)
	}
	return buf
}

// stampUnordered assigns serial order in map order.
func stampUnordered(m map[int]*outbox, next uint64) {
	for _, o := range m { // want `serial order assignment \(Seq\)`
		o.Seq = next
		next++
	}
}

// emitUnordered appends to an output stream in map order.
func emitUnordered(m map[int]int, o *outbox) {
	for k := range m { // want `output emission \(Envs\)`
		o.Envs = append(o.Envs, k)
	}
}

// collectThenSort is the sanctioned idiom: the map range only collects,
// the ordered loop does the encoding. Clean.
func collectThenSort(m map[int]wire.Msg, buf []byte) []byte {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		buf = wire.AppendFrame(buf, m[k])
	}
	return buf
}

// countOnly ranges a map for an order-insensitive fold. Clean.
func countOnly(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sliceEncode ranges a slice, which iterates deterministically. Clean.
func sliceEncode(msgs []wire.Msg, buf []byte) []byte {
	for _, m := range msgs {
		buf = wire.AppendFrame(buf, m)
	}
	return buf
}
