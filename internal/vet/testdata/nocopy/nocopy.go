// Corpus for the nocopy checker. Lines with a `// want` comment must be
// flagged with a message matching the regexp; everything else must stay
// clean.
package nctest

import (
	"sync"

	"seve/internal/world"
)

// guarded transitively contains a sync primitive.
type guarded struct {
	mu sync.Mutex
	n  int
}

// pair contains guarded one level deeper.
type pair struct {
	a guarded
	b int
}

//seve:nocopy
type handle struct {
	id uint64
}

func byValueParam(s world.ScratchSet) int { // want `parameter passes world\.ScratchSet`
	return 0
}

func pointerParam(s *world.ScratchSet) {} // clean

func byValueResult() world.CountedSet { // want `result passes world\.CountedSet`
	var c world.CountedSet // clean: zero-value declaration, not a copy
	return c
}

func copyAssign(a *world.CountedSet) {
	b := *a // want `assignment copies world\.CountedSet`
	_ = b
}

func copyStruct(w *pair) {
	g := w.a // want `assignment copies guarded containing sync\.Mutex`
	_ = g.n
}

func pointerCopy(w *pair) {
	p := &w.a // clean: pointer copy
	_ = p.n
}

func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range clause copies guarded containing sync\.Mutex`
		total += g.n
	}
	return total
}

func rangeIndex(gs []guarded) int {
	total := 0
	for i := range gs { // clean: iterate by index
		total += gs[i].n
	}
	return total
}

func consume(v any) {}

func passArg(g *guarded) {
	consume(*g) // want `argument copies guarded containing sync\.Mutex`
	consume(g)  // clean: pointer argument
}

func buildPair(g *guarded) pair { // want `result passes pair containing guarded containing sync\.Mutex`
	return pair{a: *g, b: 1} // want `composite literal copies guarded containing sync\.Mutex`
}

func copyMarked(h *handle) {
	dup := *h // want `assignment copies handle \(marked //seve:nocopy\)`
	_ = dup
}

func freshMarked() *handle {
	h := handle{id: 7} // clean: composite literal initialization
	return &h
}
