package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// rwsetChecker turns the strict-mode runtime access check
// (action.CheckAccess) into a compile-time gate: inside an action's
// Apply/Eval body, every object id passed to Tx.Read must be traceable
// to the receiver's declared ReadSet(), and every id passed to Tx.Write
// to its WriteSet().
//
// "Traceable" is a conservative intra-procedural dataflow:
//
//   - Source expressions are collected from the ReadSet/WriteSet method
//     bodies themselves: every sub-expression of object-id shape
//     (world.ObjectID, world.IDSet, []world.ObjectID, world.Write,
//     []world.Write), rendered with the receiver normalized, plus the
//     cross-references ReadSet→WriteSet and WriteSet→ReadSet (the
//     paper's convention WS(a) ⊆ RS(a) makes write-set sources valid
//     read sources).
//   - Inside Apply, a value is derived if it is a source expression, a
//     variable assigned from a derived value (any reaching assignment
//     counts — the analysis is optimistic, never flagging a value that
//     could be in-set), an element of a derived collection (range,
//     index, field selection), a call to the receiver's own
//     ReadSet/WriteSet, or world.NewIDSet over derived ids.
//   - Arithmetic is never derived: `a.Target+1000` names a different
//     object than the declared one, which is exactly the bug class
//     strict mode exists to catch.
//
// Audited escapes use `//seve:vet-ignore rwset <reason>`.
type rwsetChecker struct{}

func (rwsetChecker) Name() string { return "rwset" }

const (
	bitRS uint8 = 1 << iota
	bitWS
)

// worldPath matches the world package inside this module.
func isWorldType(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/world")
}

// isTxPtr reports whether t is *world.Tx.
func isTxPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && isWorldType(p.Elem(), "Tx")
}

// idShaped reports whether a value of type t carries object identity:
// an id, a set of ids, or write records (which embed ids).
func idShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	if isWorldType(t, "ObjectID") || isWorldType(t, "IDSet") || isWorldType(t, "Write") {
		return true
	}
	if s, ok := t.Underlying().(*types.Slice); ok {
		return isWorldType(s.Elem(), "ObjectID") || isWorldType(s.Elem(), "Write")
	}
	return false
}

// declSite locates a method's declaration and the type info covering it.
type declSite struct {
	fd   *ast.FuncDecl
	info *types.Info
}

// declIndex maps method name positions to their declarations across the
// unit and every loaded dependency package.
func buildDeclIndex(u *Unit) map[token.Pos]declSite {
	idx := make(map[token.Pos]declSite)
	add := func(files []*ast.File, info *types.Info) {
		for _, f := range files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					idx[fd.Name.Pos()] = declSite{fd: fd, info: info}
				}
			}
		}
	}
	add(u.Files, u.Info)
	u.Loader.EachLoaded(add)
	return idx
}

func (rwsetChecker) Check(u *Unit, report func(pos token.Pos, format string, args ...any)) {
	idx := buildDeclIndex(u)
	funcBodies(u, func(fd *ast.FuncDecl) {
		if fd.Recv == nil || (fd.Name.Name != "Apply" && fd.Name.Name != "Eval") {
			return
		}
		sig, ok := u.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		st := sig.Type().(*types.Signature)
		if st.Params().Len() != 1 || !isTxPtr(st.Params().At(0).Type()) {
			return
		}
		recvT := st.Recv().Type()
		if p, ok := recvT.(*types.Pointer); ok {
			recvT = p.Elem()
		}
		named, ok := recvT.(*types.Named)
		if !ok {
			return
		}
		sources := collectSetSources(named, idx)
		if sources == nil {
			return // set methods not analyzable (e.g. interface-backed)
		}
		checkApply(u, fd, st, sources, report)
	})
}

// setSources is the traceability root set: normalized expression strings
// with the set bits they grant.
type setSources map[string]uint8

// collectSetSources gathers source expressions from the declared
// ReadSet/WriteSet methods of *named. Returns nil when either method's
// body cannot be found (the type is not a concrete in-module action).
func collectSetSources(named *types.Named, idx map[token.Pos]declSite) setSources {
	ms := types.NewMethodSet(types.NewPointer(named))
	sources := make(setSources)
	var crossRS, crossWS bool // ReadSet()→WriteSet() / WriteSet()→ReadSet()
	var rsList, wsList []string
	for _, spec := range []struct {
		method string
		bit    uint8
	}{{"ReadSet", bitRS}, {"WriteSet", bitWS}} {
		sel := ms.Lookup(nil, spec.method)
		if sel == nil {
			return nil
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			return nil
		}
		site, ok := idx[fn.Pos()]
		if !ok {
			return nil
		}
		recvName := receiverName(site.fd)
		ast.Inspect(site.fd.Body, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if call, ok := e.(*ast.CallExpr); ok {
				if m, isRecv := receiverMethodName(call, recvName); isRecv {
					if spec.method == "ReadSet" && m == "WriteSet" {
						crossRS = true
					}
					if spec.method == "WriteSet" && m == "ReadSet" {
						crossWS = true
					}
				}
			}
			if idShaped(site.info.TypeOf(e)) {
				s := normExpr(e, recvName)
				sources[s] |= spec.bit
				if spec.bit == bitRS {
					rsList = append(rsList, s)
				} else {
					wsList = append(wsList, s)
				}
			}
			return true
		})
	}
	if crossRS {
		for _, s := range wsList {
			sources[s] |= bitRS
		}
	}
	if crossWS {
		for _, s := range rsList {
			sources[s] |= bitWS
		}
	}
	// WS(a) ⊆ RS(a): anything declared writable is readable.
	for s, b := range sources {
		if b&bitWS != 0 {
			sources[s] |= bitRS
		}
	}
	return sources
}

// receiverName returns the receiver ident of a method declaration, or "".
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// receiverMethodName unwraps calls of the form recv.M(...), returning M.
func receiverMethodName(call *ast.CallExpr, recvName string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != recvName || recvName == "" {
		return "", false
	}
	return sel.Sel.Name, true
}

// normExpr renders an expression with the receiver ident replaced by
// "·", so source expressions match across methods whose receivers are
// named differently.
func normExpr(e ast.Expr, recvName string) string {
	switch e := e.(type) {
	case *ast.Ident:
		if recvName != "" && e.Name == recvName {
			return "·"
		}
		return e.Name
	case *ast.SelectorExpr:
		return normExpr(e.X, recvName) + "." + e.Sel.Name
	case *ast.CallExpr:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = normExpr(a, recvName)
		}
		ell := ""
		if e.Ellipsis.IsValid() {
			ell = "..."
		}
		return normExpr(e.Fun, recvName) + "(" + strings.Join(parts, ",") + ell + ")"
	case *ast.BasicLit:
		return e.Value
	case *ast.IndexExpr:
		return normExpr(e.X, recvName) + "[" + normExpr(e.Index, recvName) + "]"
	case *ast.ParenExpr:
		return normExpr(e.X, recvName)
	case *ast.UnaryExpr:
		return e.Op.String() + normExpr(e.X, recvName)
	case *ast.BinaryExpr:
		return normExpr(e.X, recvName) + e.Op.String() + normExpr(e.Y, recvName)
	case *ast.StarExpr:
		return "*" + normExpr(e.X, recvName)
	default:
		return fmt.Sprintf("?%T", e)
	}
}

// applyScope is the per-Apply dataflow state.
type applyScope struct {
	u        *Unit
	recvName string
	sources  setSources
	txObj    types.Object
	flags    map[types.Object]uint8
}

// checkApply runs the derivation fixpoint over one Apply/Eval body and
// reports untraceable Tx accesses.
func checkApply(u *Unit, fd *ast.FuncDecl, sig *types.Signature, sources setSources, report func(pos token.Pos, format string, args ...any)) {
	sc := &applyScope{
		u:        u,
		recvName: receiverName(fd),
		sources:  sources,
		flags:    make(map[types.Object]uint8),
	}
	// The Tx parameter object: resolve via the declaration ident so
	// shadowing in nested scopes cannot confuse the access scan.
	if len(fd.Type.Params.List) > 0 && len(fd.Type.Params.List[0].Names) > 0 {
		sc.txObj = u.Info.Defs[fd.Type.Params.List[0].Names[0]]
	}
	if sc.txObj == nil {
		return
	}

	// Optimistic fixpoint: a variable is derived if any assignment into
	// it is derived. Bounded by the bit lattice (two bits per var).
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := sc.u.Info.Defs[id]
					if obj == nil {
						obj = sc.u.Info.Uses[id]
					}
					if obj == nil {
						continue
					}
					if b := sc.derive(n.Rhs[i]); b&^sc.flags[obj] != 0 {
						sc.flags[obj] |= b
						changed = true
					}
				}
			case *ast.RangeStmt:
				b := sc.derive(n.X)
				if b == 0 {
					return true
				}
				target := n.Value
				if t := sc.u.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						target = n.Key // ids as map keys
					}
				}
				if id, ok := target.(*ast.Ident); ok {
					if obj := sc.u.Info.Defs[id]; obj != nil && b&^sc.flags[obj] != 0 {
						sc.flags[obj] |= b
						changed = true
					}
				}
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || sc.u.Info.Uses[id] != sc.txObj {
			return true
		}
		switch sel.Sel.Name {
		case "Read":
			if len(call.Args) == 1 && sc.derive(call.Args[0])&bitRS == 0 {
				report(call.Args[0].Pos(),
					"%s reads object id %q not traceable to the declared ReadSet",
					fd.Name.Name, normExpr(call.Args[0], sc.recvName))
			}
		case "Write":
			if len(call.Args) >= 1 && sc.derive(call.Args[0])&bitWS == 0 {
				report(call.Args[0].Pos(),
					"%s writes object id %q not traceable to the declared WriteSet",
					fd.Name.Name, normExpr(call.Args[0], sc.recvName))
			}
		}
		return true
	})
}

// derive computes the RS/WS bits of an expression.
func (sc *applyScope) derive(e ast.Expr) uint8 {
	if b, ok := sc.sources[normExpr(e, sc.recvName)]; ok && b != 0 {
		return b
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := sc.u.Info.Uses[e]
		if obj == nil {
			obj = sc.u.Info.Defs[e]
		}
		return sc.flags[obj]
	case *ast.SelectorExpr:
		// A field of a derived record (w.ID with w ranging a derived
		// []world.Write) is derived.
		return sc.derive(e.X)
	case *ast.IndexExpr:
		return sc.derive(e.X)
	case *ast.SliceExpr:
		return sc.derive(e.X)
	case *ast.ParenExpr:
		return sc.derive(e.X)
	case *ast.StarExpr:
		return sc.derive(e.X)
	case *ast.UnaryExpr:
		return sc.derive(e.X)
	case *ast.CallExpr:
		// Conversions pass bits through: world.ObjectID(x) names the
		// same object as x.
		if tv, ok := sc.u.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return sc.derive(e.Args[0])
		}
		if m, isRecv := receiverMethodName(e, sc.recvName); isRecv {
			switch m {
			case "ReadSet":
				return bitRS
			case "WriteSet":
				return bitRS | bitWS
			}
		}
		// world.NewIDSet(derived ids...) stays derived: the set holds
		// exactly the ids passed in.
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "NewIDSet" {
			bits := bitRS | bitWS
			for _, a := range e.Args {
				bits &= sc.derive(a)
			}
			return bits
		}
		return 0
	default:
		return 0
	}
}
