package vet

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// One loader is shared across tests: the standard library is parsed and
// type-checked once, and module dependency packages are cached.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { loader, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return loader
}

// wantRx matches `// want `regexp`` expectations in corpus files.
var wantRx = regexp.MustCompile("// want `([^`]+)`")

type wantAt struct {
	rx       *regexp.Regexp
	file     string
	line     int
	fulfilled bool
}

// loadWants scans every .go file in dir for want comments.
func loadWants(t *testing.T, dir string) []*wantAt {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantAt
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRx.FindAllStringSubmatch(sc.Text(), -1) {
				rx, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, line, m[1], err)
				}
				wants = append(wants, &wantAt{rx: rx, file: path, line: line})
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return wants
}

// runCorpus checks a testdata package's findings against its want
// comments: every finding must be expected, every expectation met.
func runCorpus(t *testing.T, dir string, checker Checker) {
	t.Helper()
	findings, err := RunDirs(sharedLoader(t), []string{dir}, []Checker{checker})
	if err != nil {
		t.Fatal(err)
	}
	wants := loadWants(t, dir)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if sameFile(w.file, f.Pos.Filename) && w.line == f.Pos.Line && w.rx.MatchString(f.Message) {
				w.fulfilled = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.fulfilled {
			t.Errorf("%s:%d: want %q, got no matching finding", w.file, w.line, w.rx)
		}
	}
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

func TestRWSetCorpus(t *testing.T) {
	runCorpus(t, "testdata/rwset", rwsetChecker{})
}

func TestPoolDisciplineCorpus(t *testing.T) {
	runCorpus(t, "testdata/pooldiscipline", poolChecker{})
}

func TestNoCopyCorpus(t *testing.T) {
	runCorpus(t, "testdata/nocopy", nocopyChecker{})
}

func TestDetOrderCorpus(t *testing.T) {
	runCorpus(t, "testdata/detorder", detorderChecker{})
}

func TestLockScopeCorpus(t *testing.T) {
	runCorpus(t, "testdata/lockscope", lockscopeChecker{})
}

func TestLaneAffinityCorpus(t *testing.T) {
	runCorpus(t, "testdata/laneaffinity", laneAffinityChecker{})
}

func TestDeliveryClassCorpus(t *testing.T) {
	runCorpus(t, "testdata/deliveryclass", deliveryClassChecker{})
}

// TestDirectives locks in the suppression machinery: a valid directive
// silences its finding, an unknown checker or missing reason is itself
// reported, and an invalid directive suppresses nothing.
func TestDirectives(t *testing.T) {
	findings, err := RunDirs(sharedLoader(t), []string{"testdata/directives"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, fmt.Sprintf("%s@%d", f.Checker, f.Pos.Line))
	}
	// suppressed() produces nothing; unknownChecker and missingReason
	// each produce a directive finding plus the surviving discard
	// finding on the next line.
	want := []string{"directive@15", "pooldiscipline@16", "directive@20", "pooldiscipline@21"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("directive findings = %v, want %v\nfull: %v", got, want, findings)
	}
	for _, f := range findings {
		if f.Checker == "pooldiscipline" && !strings.Contains(f.Message, "discarded") {
			t.Errorf("surviving finding changed shape: %s", f)
		}
	}
}

// TestStaleIgnoreAudit locks in the stale-suppression audit: a
// directive that suppresses a live finding survives, one that
// suppresses nothing is reported.
func TestStaleIgnoreAudit(t *testing.T) {
	findings, stale, err := RunDirsAudit(sharedLoader(t), []string{"testdata/staleignore"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
	if len(stale) != 1 {
		t.Fatalf("stale ignores = %v, want exactly the staleDirective one", stale)
	}
	if got := stale[0]; got.Checker != "lockscope" || !strings.Contains(got.String(), "suppresses nothing") {
		t.Errorf("stale ignore = %v, want a lockscope suppresses-nothing report", got)
	}
}

// TestRepoClean asserts seve-vet exits clean on the real module — zero
// unsuppressed findings and zero stale suppressions, the same gates
// scripts/ci.sh enforces.
func TestRepoClean(t *testing.T) {
	l := sharedLoader(t)
	dirs, err := ListPackageDirs(l.ModRoot)
	if err != nil {
		t.Fatal(err)
	}
	findings, stale, err := RunDirsAudit(l, dirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repo not clean: %s", f)
	}
	for _, s := range stale {
		t.Errorf("repo not clean: %s", s)
	}
}
