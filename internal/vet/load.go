package vet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The loader turns a module tree into type-checked analysis units using
// nothing but the standard library: go/parser for syntax, go/types for
// semantics, and the source importer for the standard library. Module
// packages ("seve/...") are resolved by path inside the module tree, so
// the analyzer needs no module proxy, no export data and no network —
// the build environment is offline by design.
//
// Every directory yields up to two analysis units: the package together
// with its in-package _test.go files (test fixtures define actions and
// exercise the pooled delivery path, so they are first-class analysis
// targets), and the external "_test" package when one exists. Import
// resolution always uses the plain, test-free package, which is what the
// go tool does and what keeps the import graph acyclic.

// Unit is one type-checked body of code a checker runs over.
type Unit struct {
	// Path is the unit's import path; external test units carry the
	// "_test" suffix, testdata units a "testdata/"-rooted pseudo-path.
	Path  string
	Files []*ast.File
	Fset  *token.FileSet
	Pkg   *types.Package
	Info  *types.Info
	// Loader grants checkers access to the ASTs of dependency packages
	// inside the module (e.g. the declaring body of a promoted method).
	Loader *Loader
}

// Loader loads and caches module packages. It is safe for concurrent
// LoadDir calls: token.FileSet serializes internally, the standard
// library importer (which keeps an unguarded package cache) is wrapped
// in stdMu, and the module package cache single-flights concurrent
// loads of the same package — the first goroutine builds it, the rest
// wait on the entry's done channel.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std   types.Importer
	stdMu sync.Mutex

	mu   sync.Mutex
	base map[string]*basePkg
}

// basePkg is a cached dependency package: the directory's non-test
// files. Type info is retained so checkers can analyze method bodies
// promoted into analyzed types from dependency packages. done closes
// when the load completes; fields are immutable afterwards.
type basePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
	done  chan struct{}
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		base:    make(map[string]*basePkg),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and reads the
// module path from its module directive.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("vet: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("vet: no go.mod above %s", abs)
		}
	}
}

// Import implements types.Importer for sequential use; concurrent
// loads go through per-request importView chains that carry the cycle
// detection set.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.newView().Import(path)
}

// importView is one import-resolution chain: a view of the loader that
// remembers the packages this goroutine's recursion is already inside,
// so a module import cycle is reported instead of deadlocking on the
// in-flight cache entry.
type importView struct {
	l        *Loader
	visiting map[string]bool
}

func (l *Loader) newView() *importView {
	return &importView{l: l, visiting: make(map[string]bool)}
}

func (v *importView) Import(path string) (*types.Package, error) {
	if path == v.l.ModPath || strings.HasPrefix(path, v.l.ModPath+"/") {
		bp := v.l.loadBase(v, path)
		return bp.pkg, bp.err
	}
	return v.l.stdImport(path)
}

// stdImport guards the source importer, whose internal cache is not
// safe for concurrent use.
func (l *Loader) stdImport(path string) (*types.Package, error) {
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.ModRoot
	}
	return filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
}

// PathFor maps a directory inside the module to its import path.
func (l *Loader) PathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("vet: %s is outside module %s", dir, l.ModRoot)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// loadBase parses and type-checks the non-test files of a module
// package, caching the result for import resolution. Concurrent loads
// of the same package single-flight on the cache entry; a re-entrant
// load within one view's chain is an import cycle.
func (l *Loader) loadBase(v *importView, path string) *basePkg {
	l.mu.Lock()
	if bp, ok := l.base[path]; ok {
		l.mu.Unlock()
		if v.visiting[path] {
			// Waiting on our own in-flight entry would deadlock: the
			// chain re-entered the package it is building.
			return &basePkg{err: fmt.Errorf("vet: import cycle through %s", path)}
		}
		<-bp.done
		return bp
	}
	bp := &basePkg{done: make(chan struct{})}
	l.base[path] = bp
	l.mu.Unlock()
	defer close(bp.done)

	v.visiting[path] = true
	defer delete(v.visiting, path)

	files, _, err := l.parseDir(l.dirFor(path), false)
	if err != nil {
		bp.err = err
		return bp
	}
	bp.files = files
	bp.info = newInfo()
	bp.pkg, bp.err = l.checkWith(v, path, files, bp.info)
	return bp
}

// EachLoaded visits every completed dependency package's files with
// their type info, for cross-package declaration lookups. In-flight
// loads are skipped: a unit's own dependencies always completed before
// its checkers run, and other goroutines' half-built packages are not
// this unit's business.
func (l *Loader) EachLoaded(visit func(files []*ast.File, info *types.Info)) {
	l.mu.Lock()
	snap := make([]*basePkg, 0, len(l.base))
	for _, bp := range l.base {
		snap = append(snap, bp)
	}
	l.mu.Unlock()
	for _, bp := range snap {
		select {
		case <-bp.done:
			if bp.err == nil && len(bp.files) > 0 {
				visit(bp.files, bp.info)
			}
		default:
		}
	}
}

// parseDir parses a directory's .go files. withTests selects whether
// _test.go files are included; the external test package's files are
// returned separately.
func (l *Loader) parseDir(dir string, withTests bool) (files, xtest []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if !withTests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var pkgName string
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		name := f.Name.Name
		switch {
		case !strings.HasSuffix(n, "_test.go"):
			pkgName = name
			files = append(files, f)
		case strings.HasSuffix(name, "_test"):
			xtest = append(xtest, f)
		default:
			files = append(files, f)
		}
	}
	// A directory holding only external test files (package x_test) is
	// legal; files stays empty and the caller handles it.
	_ = pkgName
	return files, xtest, nil
}

// checkWith type-checks files as package path, resolving imports
// through the given view's chain. info may be nil for dependency loads
// where only the package scope matters.
func (l *Loader) checkWith(v *importView, path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	var firstErr error
	conf := types.Config{
		Importer: v,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if firstErr != nil {
		err = firstErr
	}
	return pkg, err
}

// newInfo allocates the types.Info maps the checkers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// LoadDir loads the analysis units of one directory: the package
// augmented with its in-package test files, plus the external test
// package when present. Directories under testdata get a pseudo import
// path so they can never collide with real packages.
func (l *Loader) LoadDir(dir string) ([]*Unit, error) {
	path, err := l.PathFor(dir)
	if err != nil {
		return nil, err
	}
	files, xtest, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	var units []*Unit
	if len(files) > 0 {
		info := newInfo()
		pkg, err := l.checkWith(l.newView(), path, files, info)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		units = append(units, &Unit{Path: path, Files: files, Fset: l.Fset, Pkg: pkg, Info: info, Loader: l})
	}
	if len(xtest) > 0 {
		// The external test package imports the base package; make sure
		// the cache holds the test-free variant before checking it.
		if len(files) > 0 && !underTestdata(dir) {
			l.loadBase(l.newView(), path)
		}
		info := newInfo()
		pkg, err := l.checkWith(l.newView(), path+"_test", xtest, info)
		if err != nil {
			return nil, fmt.Errorf("%s_test: %w", path, err)
		}
		units = append(units, &Unit{Path: path + "_test", Files: xtest, Fset: l.Fset, Pkg: pkg, Info: info, Loader: l})
	}
	return units, nil
}

func underTestdata(dir string) bool {
	for _, part := range strings.Split(filepath.ToSlash(dir), "/") {
		if part == "testdata" {
			return true
		}
	}
	return false
}

// ListPackageDirs returns every directory under root that the go tool
// would treat as a package: it skips testdata, vendor, hidden and
// underscore-prefixed directories, exactly the trees `go build ./...`
// ignores.
func ListPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if p != root && (n == "testdata" || n == "vendor" || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasPrefix(d.Name(), ".") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
