package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// detorderChecker guards the engine's byte-identity invariant: the
// output stream of a tick must be identical no matter how the work was
// scheduled (TestTickParallelDeterminism, TestEncodeCacheFanOut). Go
// randomizes map iteration order on purpose, so a `range` over a map
// whose body feeds an order-sensitive sink — wire encoding, serial
// order stamping, reply/envelope emission, or the push planner —
// produces a different byte stream on every run. Such loops must
// collect keys, sort, and iterate the sorted slice instead (the idiom
// used throughout internal/core; see bound.go's client snapshot).
//
// Map ranges whose bodies only collect into an intermediate (to be
// sorted later) touch no sink and stay clean.
type detorderChecker struct{}

func (detorderChecker) Name() string { return "detorder" }

// wireEncodeFuncs are internal/wire entry points that serialize bytes
// in call order.
var wireEncodeFuncs = map[string]bool{
	"Encode": true, "EncodeTo": true, "AppendMsg": true, "AppendFrame": true,
	"WriteFrame": true, "NewFrame": true, "NewFrameCached": true,
	"appendMsg": true, "appendMsgCached": true, "appendEnvelope": true,
}

// pushPlanFuncs are the internal/core planning and sequencing stages
// whose invocation order decides serial order and batch layout.
var pushPlanFuncs = map[string]bool{
	"sequence": true, "commitBatch": true, "planPush": true, "commitPush": true,
	"pushGroup": true, "closureShared": true, "closureWalk": true,
}

// mergeFuncs are the partitioned pipeline's sequential merge passes
// (core/lanes.go): each call stamps global Seqs, mints blind-write ids,
// or emits replies, so invocation order IS the merge order (epoch,
// lane, localSeq). Driving them out of map iteration reorders the
// serial stream run to run. The lane-parallel phases (StampLane,
// CommitLane, PlanReply) are deliberately absent: lanes are
// independent, so their dispatch order is free.
var mergeFuncs = map[string]bool{
	"SealStamp": true, "PreCommit": true, "SealCommit": true, "StampPrepared": true,
}

// orderFields are sequence counters: stamping them inside an unordered
// loop assigns serial order nondeterministically.
var orderFields = map[string]bool{
	"Seq": true, "ClientSeq": true, "InstalledUpTo": true,
	"nextBatchSeq": true, "nextActSeq": true, "installed": true,
}

// emitFields are output slices whose element order is the stream order
// seen by clients.
var emitFields = map[string]bool{
	"Replies": true, "Envs": true, "ToPeers": true, "ToServer": true,
}

func (detorderChecker) Check(u *Unit, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := u.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if what := findOrderSink(u, rs.Body); what != "" {
				report(rs.For, "map iteration order feeds %s; collect the keys, sort, then iterate", what)
			}
			return true
		})
	}
}

// findOrderSink scans a loop body for the first order-sensitive effect.
func findOrderSink(u *Unit, body *ast.BlockStmt) string {
	var what string
	ast.Inspect(body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, pkg := calleeIn(u.Info, n); name != "" {
				if strings.HasSuffix(pkg, "internal/wire") && wireEncodeFuncs[name] {
					what = "wire encoding (" + name + ")"
					return false
				}
				if strings.HasSuffix(pkg, "internal/core") && pushPlanFuncs[name] {
					what = "push planning (" + name + ")"
					return false
				}
				if strings.HasSuffix(pkg, "internal/core") && mergeFuncs[name] {
					what = "epoch merge (" + name + ")"
					return false
				}
			}
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if name := fieldName(l); orderFields[name] {
					what = "serial order assignment (" + name + ")"
					return false
				}
				if name := fieldName(l); emitFields[name] {
					what = "output emission (" + name + ")"
					return false
				}
			}
		case *ast.IncDecStmt:
			if name := fieldName(n.X); orderFields[name] {
				what = "serial order assignment (" + name + ")"
				return false
			}
		}
		return true
	})
	return what
}

// calleeIn resolves a call to its function name and defining package.
func calleeIn(info *types.Info, call *ast.CallExpr) (name, pkg string) {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return "", ""
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Name(), fn.Pkg().Path()
}

// fieldName names the field or variable an lvalue writes.
func fieldName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return fieldName(e.X)
	}
	return ""
}
