package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// laneAffinityChecker enforces the lane-partitioning contract of
// DESIGN.md §12: per-lane engine state — the laneSeg segments and the
// lane-numbered laneWriters conflict index — may only be touched from a
// lane's own worker context or from the sequential Seal*/PreCommit
// merge passes. A cross-lane read on a worker is a data race the
// -race detector only catches when two lanes actually collide in a
// test run; the contract is static, so the checker is too.
//
// Functions declare their context with a marker in the doc comment:
//
//	//seve:lane-affine   — runs on one lane's worker; may touch only
//	                       its own lane's state
//	//seve:lane-seal     — runs in the sequential merge order between
//	                       parallel phases; may touch any lane
//
// A function (or literal) with an int parameter named "lane" is
// implicitly lane-affine: that is the shape of the router's phase
// closures. Inside an affine context the index of a laneSeg access and
// every lane argument handed to another affine function must be the
// context's own lane — the "lane" or "w" parameter, or a selector
// ending in .lane or .viewLane (the entry and pending carry their owner
// lane). Whole-slice access (ranging, reallocation, nil checks) is a
// merge-pass operation and is flagged inside affine contexts.
//
// Rules, with ctx the enclosing function's declared context:
//
//   - lane state touched with ctx == none        → finding
//   - X.lanes[i] or X.lanes as a whole when ctx == affine
//     and i is not the context's own lane        → finding
//   - lane-affine callee invoked with ctx == none → finding
//   - lane-affine callee invoked from affine ctx
//     with a non-own-lane lane argument          → finding
//   - lane-seal callee invoked from affine ctx   → finding
//
// Test files are exempt: tests drive the pipeline phases sequentially
// by construction, which is the one context where cross-lane access is
// the point. ζS segment affinity is enforced dynamically by
// TestShardedEquivalence, not here — the segments are reached through
// interned dense indices the checker cannot resolve statically.
type laneAffinityChecker struct{}

func (laneAffinityChecker) Name() string { return "laneaffinity" }

type laneCtx int

const (
	laneCtxNone laneCtx = iota
	laneCtxAffine
	laneCtxSeal
)

const (
	laneAffineMarker = "//seve:lane-affine"
	laneSealMarker   = "//seve:lane-seal"
)

func (laneAffinityChecker) Check(u *Unit, report func(pos token.Pos, format string, args ...any)) {
	w := &laneWalker{u: u, report: report, marks: collectLaneMarks(u)}
	for _, f := range u.Files {
		if strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctx := laneCtxNone
			if obj := u.Info.Defs[fd.Name]; obj != nil {
				ctx = w.marks[obj]
			}
			own := laneParams(u.Info, fd.Type)
			if ctx == laneCtxNone && hasLaneParam(u.Info, fd.Type) {
				ctx = laneCtxAffine
			}
			w.walkBody(fd.Body, ctx, own)
		}
	}
}

// collectLaneMarks gathers //seve:lane-affine and //seve:lane-seal
// function annotations from the unit and every loaded dependency.
func collectLaneMarks(u *Unit) map[types.Object]laneCtx {
	marks := make(map[types.Object]laneCtx)
	scan := func(files []*ast.File, info *types.Info) {
		for _, f := range files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					var ctx laneCtx
					switch {
					case strings.HasPrefix(c.Text, laneAffineMarker):
						ctx = laneCtxAffine
					case strings.HasPrefix(c.Text, laneSealMarker):
						ctx = laneCtxSeal
					default:
						continue
					}
					if obj := info.Defs[fd.Name]; obj != nil {
						marks[obj] = ctx
					}
				}
			}
		}
	}
	scan(u.Files, u.Info)
	u.Loader.EachLoaded(scan)
	return marks
}

// laneParams returns the parameter objects named "lane" or "w" of
// integer kind — the identifiers an affine body may index lanes with.
func laneParams(info *types.Info, ft *ast.FuncType) map[types.Object]bool {
	own := make(map[types.Object]bool)
	if ft.Params == nil {
		return own
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if name.Name != "lane" && name.Name != "w" {
				continue
			}
			if obj := info.Defs[name]; obj != nil && isIntKind(obj.Type()) {
				own[obj] = true
			}
		}
	}
	return own
}

func hasLaneParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if name.Name == "lane" {
				if obj := info.Defs[name]; obj != nil && isIntKind(obj.Type()) {
					return true
				}
			}
		}
	}
	return false
}

func isIntKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

type laneWalker struct {
	u      *Unit
	report func(pos token.Pos, format string, args ...any)
	marks  map[types.Object]laneCtx
}

func ctxName(c laneCtx) string {
	switch c {
	case laneCtxAffine:
		return "lane-affine"
	case laneCtxSeal:
		return "lane-seal"
	}
	return "unannotated"
}

// walkBody traverses one function body under a fixed context. Nested
// literals with their own "lane int" parameter become affine scopes;
// other literals inherit the context and its own-lane identifiers
// (a closure capturing the worker's lane variable stays own-lane).
func (w *laneWalker) walkBody(body ast.Node, ctx laneCtx, own map[types.Object]bool) {
	consumed := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			nctx, nown := ctx, own
			if hasLaneParam(w.u.Info, n.Type) {
				nctx, nown = laneCtxAffine, laneParams(w.u.Info, n.Type)
			}
			w.walkBody(n.Body, nctx, nown)
			return false
		case *ast.IndexExpr:
			if sel, ok := unparen(n.X).(*ast.SelectorExpr); ok && w.isLaneSlice(sel) {
				consumed[sel] = true
				switch ctx {
				case laneCtxNone:
					w.report(n.Pos(), "lane segment %s indexed outside a lane worker or seal pass", laneStateName(sel))
				case laneCtxAffine:
					if !ownLaneExpr(w.u.Info, n.Index, own) {
						w.report(n.Pos(), "cross-lane access: %s[%s] from a lane-affine context; only the own lane may be touched",
							laneStateName(sel), exprText(n.Index))
					}
				}
			}
		case *ast.SelectorExpr:
			if consumed[n] {
				return true
			}
			switch {
			case w.isLaneSlice(n):
				switch ctx {
				case laneCtxNone:
					w.report(n.Pos(), "lane segments %s touched outside a lane worker or seal pass", laneStateName(n))
				case laneCtxAffine:
					w.report(n.Pos(), "whole-slice access to %s from a lane-affine context; ranging or reallocating lane segments is a seal-pass operation",
						laneStateName(n))
				}
			case n.Sel.Name == "laneWriters" && w.isLaneWriters(n):
				if ctx == laneCtxNone {
					w.report(n.Pos(), "lane conflict index %s touched outside a lane worker or seal pass", laneStateName(n))
				}
			}
		case *ast.CallExpr:
			w.checkCall(n, ctx, own)
		}
		return true
	})
}

// isLaneSlice reports whether sel denotes a field named "lanes" whose
// type is a slice of the named type laneSeg — the matcher that keeps
// the router's own []pendingSub buffers (also a field named lanes) out
// of scope.
func (w *laneWalker) isLaneSlice(sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "lanes" {
		return false
	}
	t := w.u.Info.TypeOf(sel)
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	n, ok := sl.Elem().(*types.Named)
	return ok && n.Obj().Name() == "laneSeg"
}

// isLaneWriters pins the laneWriters match to the [][]uint64 reverse
// index shape so an unrelated field of the same name elsewhere cannot
// trip the checker.
func (w *laneWalker) isLaneWriters(sel *ast.SelectorExpr) bool {
	t := w.u.Info.TypeOf(sel)
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	_, ok = sl.Elem().Underlying().(*types.Slice)
	return ok
}

// checkCall applies the context rules to calls of annotated functions.
func (w *laneWalker) checkCall(call *ast.CallExpr, ctx laneCtx, own map[types.Object]bool) {
	fn := calleeFunc(w.u.Info, call)
	if fn == nil {
		return
	}
	kind, marked := w.marks[fn]
	if !marked {
		if sigHasLaneParam(fn) {
			kind = laneCtxAffine
		} else {
			return
		}
	}
	switch kind {
	case laneCtxSeal:
		if ctx == laneCtxAffine {
			w.report(call.Pos(), "seal-pass function %s called from a lane-affine context; merge passes run sequentially between phases", fn.Name())
		}
	case laneCtxAffine:
		switch ctx {
		case laneCtxNone:
			w.report(call.Pos(), "lane-affine function %s called outside a lane worker or seal pass", fn.Name())
		case laneCtxAffine:
			w.checkLaneArgs(call, fn, own)
		}
	}
}

// checkLaneArgs verifies that every lane-valued argument handed from
// one affine context to another is the caller's own lane.
func (w *laneWalker) checkLaneArgs(call *ast.CallExpr, fn *types.Func, own map[types.Object]bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Variadic() && len(call.Args) != sig.Params().Len() {
		return
	}
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		p := sig.Params().At(i)
		if (p.Name() != "lane" && p.Name() != "w") || !isIntKind(p.Type()) {
			continue
		}
		if !ownLaneExpr(w.u.Info, call.Args[i], own) {
			w.report(call.Args[i].Pos(), "cross-lane call: %s given lane %s from a lane-affine context; only the own lane may be passed",
				fn.Name(), exprText(call.Args[i]))
		}
	}
}

// calleeFunc resolves a call to its *types.Func, for both plain and
// method calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// sigHasLaneParam applies the implicit-affine rule at the callee side:
// a function whose signature declares an int parameter named "lane" is
// affine even without a marker.
func sigHasLaneParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if p.Name() == "lane" && isIntKind(p.Type()) {
			return true
		}
	}
	return false
}

// ownLaneExpr reports whether e is the context's own lane: one of the
// context's lane/w parameters, or a selector ending in .lane or
// .viewLane (the owner-lane fields staged on entries and pendings).
func ownLaneExpr(info *types.Info, e ast.Expr, own map[types.Object]bool) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil && own[obj] {
			return true
		}
	case *ast.SelectorExpr:
		return e.Sel.Name == "lane" || e.Sel.Name == "viewLane"
	case *ast.CallExpr:
		// int(p.lane)-style conversions keep their own-lane quality.
		if len(e.Args) == 1 {
			if _, isConv := info.Types[e.Fun]; isConv && info.Types[e.Fun].IsType() {
				return ownLaneExpr(info, e.Args[0], own)
			}
		}
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// laneStateName renders the touched selector for the finding message.
func laneStateName(sel *ast.SelectorExpr) string {
	if base := lockPath(sel.X); base != "" {
		return base + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}

// exprText renders a short expression for a finding message.
func exprText(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return laneStateName(e)
	case *ast.BasicLit:
		return e.Value
	}
	return "<expr>"
}
