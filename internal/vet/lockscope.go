package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockscopeChecker flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held (DESIGN.md §14). The transport
// layer's locks guard in-memory maps and counters; holding one across a
// channel operation, a network write, or a pooled encode loop turns a
// per-connection stall into a server-wide convoy — PR 7 shipped exactly
// this bug in dispatchReplies, fanning out encodes under s.mu.
//
// The analysis is an intra-procedural abstract interpretation over the
// statement tree (the pooldiscipline machinery's sibling). The abstract
// domain maps lock expressions — identifier paths like s.mu or c.mu —
// to a held-state {locked, rlocked}. X.Lock()/RLock() enter the state,
// X.Unlock()/RUnlock() leave it, defer X.Unlock() pins it to function
// end. Branch merge is held-if-any-path: a lock held on either arm of
// an if is treated as held after the join, which biases toward
// reporting exactly the convoy-prone paths. Function literals start
// from an empty lock set (a goroutine or deferred closure does not
// inherit the caller's critical section); taking a lock inside a
// closure is analyzed as that closure's own region.
//
// Blocking sinks while any lock is held:
//   - channel send and receive (select with a default is non-blocking
//     and exempt; a select without one blocks as a whole)
//   - ranging over a channel
//   - sync.WaitGroup.Wait, sync.Cond.Wait, time.Sleep
//   - net.Conn Read/Write/Close and anything with a net package path
//   - wire.ReadFrame / wire.WriteFrame (frame I/O on a live conn)
//   - re-locking a mutex already held on this path (self-deadlock)
type lockscopeChecker struct{}

func (lockscopeChecker) Name() string { return "lockscope" }

func (lockscopeChecker) Check(u *Unit, report func(pos token.Pos, format string, args ...any)) {
	a := &lockAnalyzer{u: u, report: report}
	funcBodies(u, func(fd *ast.FuncDecl) { a.run(fd.Body) })
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				a.run(fl.Body)
			}
			return true
		})
	}
}

// lockMode is the abstract held-state of one mutex path.
type lockMode int

const (
	lockHeld lockMode = iota + 1
	lockRHeld
)

// lockState maps a mutex's identifier path (e.g. "s.mu") to its mode.
// Paths, not objects: the receiver s and the field mu are distinct
// objects per function, but the path is stable within one body, which
// is all an intra-procedural region needs.
type lockState struct {
	held map[string]lockMode
}

func newLockState() *lockState { return &lockState{held: make(map[string]lockMode)} }

func (st *lockState) clone() *lockState {
	c := &lockState{held: make(map[string]lockMode, len(st.held))}
	for k, v := range st.held {
		c.held[k] = v
	}
	return c
}

// mergeLockStates joins surviving branches held-biased: a lock held on
// either path stays held after the join.
func mergeLockStates(a, b *lockState) *lockState {
	out := a.clone()
	for k, v := range b.held {
		if cur, ok := out.held[k]; !ok || v == lockHeld && cur == lockRHeld {
			out.held[k] = v
		}
	}
	return out
}

type lockAnalyzer struct {
	u      *Unit
	report func(pos token.Pos, format string, args ...any)
}

func (a *lockAnalyzer) run(body *ast.BlockStmt) {
	a.block(newLockState(), body.List)
}

// lockPath renders the mutex receiver of a Lock/Unlock call as a stable
// identifier path, or "" when the receiver is not a plain ident chain.
func lockPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := lockPath(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return lockPath(e.X)
	}
	return ""
}

// syncLockCall matches X.M() where M is a sync.Mutex/RWMutex lock
// method, returning the method name and X's path.
func syncLockCall(info *types.Info, call *ast.CallExpr) (method, path string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			return "", ""
		}
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		n, ok := rt.(*types.Named)
		if !ok {
			return "", ""
		}
		switch n.Obj().Name() {
		case "Mutex", "RWMutex":
			return fn.Name(), lockPath(sel.X)
		}
	}
	return "", ""
}

// anyHeld returns a held lock's path for the finding message, or "".
// Deterministic: the lexically smallest path wins so repeated runs
// produce identical messages.
func (st *lockState) anyHeld() string {
	best := ""
	for k := range st.held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// blockingCall classifies a call that can block indefinitely: frame I/O,
// net.Conn methods, and the sync/time waiting family. Pure in-memory
// work (map access, append, encode-into-buffer) is not here — holding a
// lock for CPU work is a throughput question, not a convoy.
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	switch wireFunc(info, call) {
	case "ReadFrame":
		return "wire.ReadFrame"
	case "WriteFrame":
		return "wire.WriteFrame"
	}
	name, pkg := calleeIn(info, call)
	switch pkg {
	case "net":
		return "net." + name
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		if name == "Wait" {
			return "sync " + name
		}
	}
	// Read/Write/Close on a net.Conn-typed receiver (the interface
	// methods resolve to package net at the call site only for concrete
	// types; the interface case lands here).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if t := info.TypeOf(sel.X); t != nil && isNetConn(t) {
			switch sel.Sel.Name {
			case "Read", "Write", "Close", "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
				return "net.Conn." + sel.Sel.Name
			}
		}
	}
	return ""
}

// isNetConn reports whether t is net.Conn or a type from package net.
func isNetConn(t types.Type) bool {
	if n, ok := t.(*types.Named); ok {
		if obj := n.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "net" {
			return true
		}
	}
	if p, ok := t.(*types.Pointer); ok {
		return isNetConn(p.Elem())
	}
	return false
}

func (a *lockAnalyzer) reportBlocked(st *lockState, pos token.Pos, what string) {
	if held := st.anyHeld(); held != "" {
		a.report(pos, "%s while %s is held; release the lock before blocking", what, held)
	}
}

func (a *lockAnalyzer) block(st *lockState, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if a.stmt(st, s) {
			return true
		}
	}
	return false
}

func (a *lockAnalyzer) stmt(st *lockState, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return a.stmtExpr(st, s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			a.expr(st, r)
		}
		for _, l := range s.Lhs {
			a.expr(st, l)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						a.expr(st, val)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			a.expr(st, r)
		}
		return true
	case *ast.DeferStmt:
		// defer X.Unlock() keeps the region open to function end — the
		// canonical pattern; everything after it runs under the lock.
		// Any other deferred call runs after the region closes.
		if m, path := syncLockCall(a.u.Info, s.Call); path != "" {
			switch m {
			case "Unlock", "RUnlock":
				return false // region persists; sinks below still report
			case "Lock", "RLock":
				return false // deferred lock: outside any region we model
			}
		}
		a.expr(st, s.Call.Fun)
		for _, arg := range s.Call.Args {
			a.expr(st, arg)
		}
	case *ast.GoStmt:
		// The goroutine body runs on its own schedule with no inherited
		// locks; spawning it does not block.
		a.expr(st, s.Call.Fun)
		for _, arg := range s.Call.Args {
			a.expr(st, arg)
		}
	case *ast.SendStmt:
		a.expr(st, s.Chan)
		a.expr(st, s.Value)
		a.reportBlocked(st, s.Arrow, "channel send")
	case *ast.IncDecStmt:
		a.expr(st, s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			a.stmt(st, s.Init)
		}
		a.expr(st, s.Cond)
		thenSt := st.clone()
		thenTerm := a.block(thenSt, s.Body.List)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = a.stmt(elseSt, s.Else)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			*st = *mergeLockStates(thenSt, elseSt)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			a.stmt(st, s.Init)
		}
		if s.Cond != nil {
			a.expr(st, s.Cond)
		}
		bodySt := st.clone()
		if !a.block(bodySt, s.Body.List) {
			if s.Post != nil {
				a.stmt(bodySt, s.Post)
			}
			*st = *mergeLockStates(st, bodySt)
		}
	case *ast.RangeStmt:
		if t := a.u.Info.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				a.reportBlocked(st, s.For, "range over channel")
			}
		}
		a.expr(st, s.X)
		bodySt := st.clone()
		if !a.block(bodySt, s.Body.List) {
			*st = *mergeLockStates(st, bodySt)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.stmt(st, s.Init)
		}
		if s.Tag != nil {
			a.expr(st, s.Tag)
		}
		return a.clauses(st, s, s.Body.List)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			a.stmt(st, s.Init)
		}
		return a.clauses(st, s, s.Body.List)
	case *ast.SelectStmt:
		// A select with a default never blocks; without one it parks the
		// goroutine until some case is ready, which is the blocking event
		// — individual comm ops inside the clauses are not re-flagged.
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			a.reportBlocked(st, s.Select, "select without default")
		}
		return a.clauses(st, s, s.Body.List)
	case *ast.BlockStmt:
		return a.block(st, s.List)
	case *ast.LabeledStmt:
		return a.stmt(st, s.Stmt)
	case *ast.BranchStmt:
		return true
	}
	return false
}

// clauses mirrors the pooldiscipline walk: clone per clause, merge
// survivors. Comm-clause channel ops are evaluated for nested
// expressions only — the enclosing select already reported the block.
func (a *lockAnalyzer) clauses(st *lockState, parent ast.Node, list []ast.Stmt) bool {
	var survivors []*lockState
	hasDefault := false
	for _, c := range list {
		cs := st.clone()
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				a.expr(cs, e)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			body = c.Body
		default:
			continue
		}
		if !a.block(cs, body) {
			survivors = append(survivors, cs)
		}
	}
	if !hasDefault {
		if _, isSelect := parent.(*ast.SelectStmt); !isSelect {
			survivors = append(survivors, st.clone())
		} else if len(list) == 0 {
			survivors = append(survivors, st.clone())
		}
	}
	if len(survivors) == 0 {
		return true
	}
	merged := survivors[0]
	for _, s := range survivors[1:] {
		merged = mergeLockStates(merged, s)
	}
	*st = *merged
	return false
}

// stmtExpr handles expression statements, where Lock/Unlock calls
// mutate the region state and blocking calls are sinks.
func (a *lockAnalyzer) stmtExpr(st *lockState, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		a.expr(st, e)
		return false
	}
	if isTerminalCall(a.u.Info, call) {
		for _, arg := range call.Args {
			a.expr(st, arg)
		}
		return true
	}
	if m, path := syncLockCall(a.u.Info, call); path != "" {
		switch m {
		case "Lock":
			if st.held[path] != 0 {
				a.report(call.Pos(), "%s.Lock while %s is already held on this path (self-deadlock)", path, path)
			}
			st.held[path] = lockHeld
		case "RLock":
			if st.held[path] == lockHeld {
				a.report(call.Pos(), "%s.RLock while %s is write-held on this path (self-deadlock)", path, path)
			}
			st.held[path] = lockRHeld
		case "Unlock", "RUnlock":
			delete(st.held, path)
		}
		return false
	}
	a.expr(st, e)
	return false
}

// expr reports blocking sub-expressions: channel receives and blocking
// calls in value position.
func (a *lockAnalyzer) expr(st *lockState, e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			a.reportBlocked(st, e.OpPos, "channel receive")
		}
		a.expr(st, e.X)
	case *ast.FuncLit:
		// Analyzed separately with an empty lock set by Check.
	case *ast.CallExpr:
		if what := blockingCall(a.u.Info, e); what != "" {
			a.reportBlocked(st, e.Pos(), what)
		}
		// TryLock in condition position still opens a region on the
		// true path; modeled conservatively as not held (the checker
		// has no value tracking for the bool), noted in DESIGN.md §14.
		a.expr(st, e.Fun)
		for _, arg := range e.Args {
			a.expr(st, arg)
		}
	case *ast.SelectorExpr:
		a.expr(st, e.X)
	case *ast.IndexExpr:
		a.expr(st, e.X)
		a.expr(st, e.Index)
	case *ast.SliceExpr:
		a.expr(st, e.X)
		a.expr(st, e.Low)
		a.expr(st, e.High)
		a.expr(st, e.Max)
	case *ast.StarExpr:
		a.expr(st, e.X)
	case *ast.BinaryExpr:
		a.expr(st, e.X)
		a.expr(st, e.Y)
	case *ast.ParenExpr:
		a.expr(st, e.X)
	case *ast.TypeAssertExpr:
		a.expr(st, e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			a.expr(st, el)
		}
	case *ast.KeyValueExpr:
		a.expr(st, e.Value)
	}
}
