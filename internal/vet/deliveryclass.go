package vet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// deliveryClassChecker enforces the supersession contract of the PR 7
// delivery queue (DESIGN.md §13): every reply headed for
// transport.SendQueue must carry explicit core.Delivery metadata, and a
// DeliveryOrdered frame — session control flow — must be provably
// unreachable from any shed or coalesce path. The zero value of
// core.Delivery is DeliveryOrdered, so an untagged Reply silently opts
// its frame out of supersession and into the unbounded control-flow
// queue; the contract is that the choice is always written down.
//
// Three rules:
//
//  1. A keyed core.Reply composite literal with elements but no Deliver
//     key is a finding. Positional literals necessarily spell out every
//     field and empty literals are zero-value sentinels; both pass.
//
//  2. wire.CoalesceFrames may only be handed frames whose delivery
//     class is provably DeliveryBatch — coalescing a Covered or
//     Snapshot frame would merge bytes the client must not replay.
//
//  3. Frame.Release on a frame with supersession metadata in scope is a
//     shed; the path must prove the class is not DeliveryOrdered, or
//     hold a queue-closed fact (releasing everything at Close is the
//     one legal Ordered shed).
//
// Rules 2 and 3 run a path-constraint interpreter over the statement
// tree. Conditions of enclosing ifs accumulate as constraints (with the
// negation kept on the fall-through of a terminated branch — the
// `if c { continue }` shape), boolean assignments like q.closed = true
// become facts, and loop bodies first havoc every fact a body
// assignment could change across iterations. A sink asks "is class C
// feasible here?": single-literal constraints unit-propagate into
// facts, then every constraint is evaluated three-valued with the
// candidate class plugged in; one definitely-false constraint makes C
// infeasible. The metadata companion of a frame expression is resolved
// structurally: a lone *wire.Frame parameter pairs with the lone
// core.Delivery parameter, and a struct field pairs with its sibling
// Delivery field (the queuedFrame shape). Frames without a resolvable
// companion are out of scope here — pooldiscipline owns their
// refcounts.
//
// Test files are exempt: tests construct bare replies for assertions
// and shed Ordered frames deliberately to pin the FIFO semantics.
type deliveryClassChecker struct{}

func (deliveryClassChecker) Name() string { return "deliveryclass" }

func (deliveryClassChecker) Check(u *Unit, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range u.Files {
		if strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		checkReplyLiterals(u, f, report)
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				a := &dcAnalyzer{u: u, report: report, fnType: fd.Type}
				a.run(fd.Body)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				a := &dcAnalyzer{u: u, report: report, fnType: fl.Type}
				a.run(fl.Body)
			}
			return true
		})
	}
}

// checkReplyLiterals applies rule 1 to one file.
func checkReplyLiterals(u *Unit, f *ast.File, report func(pos token.Pos, format string, args ...any)) {
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := u.Info.TypeOf(lit)
		if t == nil || !isModType(t, "internal/core", "Reply") || len(lit.Elts) == 0 {
			return true
		}
		keyed := false
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				return true // positional: every field, Deliver included
			}
			keyed = true
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Deliver" {
				return true
			}
		}
		if keyed {
			report(lit.Pos(), "core.Reply literal without Deliver metadata; the zero class is DeliveryOrdered — spell the delivery class out")
		}
		return true
	})
}

// dcCond is one accumulated path constraint: expr held true (or, with
// neg, false) on every execution reaching the current point.
type dcCond struct {
	expr ast.Expr
	neg  bool
}

type dcState struct {
	conds []dcCond
	facts map[string]bool
}

func newDCState() *dcState { return &dcState{facts: make(map[string]bool)} }

func (st *dcState) clone() *dcState {
	c := &dcState{
		conds: append([]dcCond(nil), st.conds...),
		facts: make(map[string]bool, len(st.facts)),
	}
	for k, v := range st.facts {
		c.facts[k] = v
	}
	return c
}

// mergeDCStates intersects two surviving paths: only constraints and
// facts established on both remain. Cond slices from clones share a
// structural prefix, so the intersection is the longest common prefix.
func mergeDCStates(a, b *dcState) *dcState {
	n := 0
	for n < len(a.conds) && n < len(b.conds) && a.conds[n] == b.conds[n] {
		n++
	}
	out := &dcState{conds: append([]dcCond(nil), a.conds[:n]...), facts: make(map[string]bool)}
	for k, v := range a.facts {
		if bv, ok := b.facts[k]; ok && bv == v {
			out.facts[k] = v
		}
	}
	return out
}

type dcAnalyzer struct {
	u      *Unit
	report func(pos token.Pos, format string, args ...any)
	fnType *ast.FuncType
}

func (a *dcAnalyzer) run(body *ast.BlockStmt) {
	a.block(newDCState(), body.List)
}

func (a *dcAnalyzer) block(st *dcState, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if a.stmt(st, s) {
			return true
		}
	}
	return false
}

func (a *dcAnalyzer) stmt(st *dcState, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		a.scanSinks(st, s.X)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminalCall(a.u.Info, call) {
			return true
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			a.scanSinks(st, r)
		}
		a.applyAssign(st, s)
	case *ast.DeclStmt:
		a.scanSinks(st, s)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			a.scanSinks(st, r)
		}
		return true
	case *ast.DeferStmt:
		a.scanSinks(st, s.Call)
	case *ast.GoStmt:
		a.scanSinks(st, s.Call)
	case *ast.SendStmt:
		a.scanSinks(st, s.Chan)
		a.scanSinks(st, s.Value)
	case *ast.IncDecStmt:
		a.scanSinks(st, s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			a.stmt(st, s.Init)
		}
		a.scanSinks(st, s.Cond)
		thenSt := st.clone()
		thenSt.conds = append(thenSt.conds, dcCond{expr: s.Cond})
		thenTerm := a.block(thenSt, s.Body.List)
		elseSt := st.clone()
		elseSt.conds = append(elseSt.conds, dcCond{expr: s.Cond, neg: true})
		elseTerm := false
		if s.Else != nil {
			elseTerm = a.stmt(elseSt, s.Else)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			*st = *mergeDCStates(thenSt, elseSt)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			a.stmt(st, s.Init)
		}
		if s.Cond != nil {
			a.scanSinks(st, s.Cond)
		}
		a.havocLoop(st, s.Body)
		bodySt := st.clone()
		if s.Cond != nil {
			bodySt.conds = append(bodySt.conds, dcCond{expr: s.Cond})
		}
		if !a.block(bodySt, s.Body.List) {
			if s.Post != nil {
				a.stmt(bodySt, s.Post)
			}
			*st = *mergeDCStates(st, bodySt)
		}
	case *ast.RangeStmt:
		a.scanSinks(st, s.X)
		a.havocLoop(st, s.Body)
		bodySt := st.clone()
		if !a.block(bodySt, s.Body.List) {
			*st = *mergeDCStates(st, bodySt)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.stmt(st, s.Init)
		}
		if s.Tag != nil {
			a.scanSinks(st, s.Tag)
		}
		return a.clauses(st, s, s.Body.List)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			a.stmt(st, s.Init)
		}
		return a.clauses(st, s, s.Body.List)
	case *ast.SelectStmt:
		return a.clauses(st, s, s.Body.List)
	case *ast.BlockStmt:
		return a.block(st, s.List)
	case *ast.LabeledStmt:
		return a.stmt(st, s.Stmt)
	case *ast.BranchStmt:
		// continue/break leave the enclosing structure; dropping the
		// path keeps the `if cond { continue }` negation alive on the
		// fall-through, which is what the replace-in-place loop relies
		// on to prove Ordered frames survive.
		return true
	}
	return false
}

// clauses clones per clause and intersects the survivors.
func (a *dcAnalyzer) clauses(st *dcState, parent ast.Node, list []ast.Stmt) bool {
	var survivors []*dcState
	hasDefault := false
	for _, c := range list {
		cs := st.clone()
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				a.scanSinks(cs, e)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				a.stmt(cs, c.Comm)
			}
			body = c.Body
		default:
			continue
		}
		if !a.block(cs, body) {
			survivors = append(survivors, cs)
		}
	}
	if !hasDefault {
		if _, isSelect := parent.(*ast.SelectStmt); !isSelect || len(list) == 0 {
			survivors = append(survivors, st.clone())
		}
	}
	if len(survivors) == 0 {
		return true
	}
	merged := survivors[0]
	for _, s := range survivors[1:] {
		merged = mergeDCStates(merged, s)
	}
	*st = *merged
	return false
}

// applyAssign records boolean facts (q.closed = true) and havocs
// constraints and facts that mention a reassigned path.
func (a *dcAnalyzer) applyAssign(st *dcState, s *ast.AssignStmt) {
	for i, l := range s.Lhs {
		path := lockPath(l)
		if path == "" {
			continue
		}
		a.havocPath(st, path)
		if len(s.Lhs) == len(s.Rhs) && s.Tok != token.DEFINE {
			if id, ok := unparen(s.Rhs[i]).(*ast.Ident); ok {
				switch id.Name {
				case "true":
					st.facts[path] = true
				case "false":
					st.facts[path] = false
				}
			}
		}
	}
}

// havocPath drops every fact and constraint whose atoms a write to path
// may invalidate.
func (a *dcAnalyzer) havocPath(st *dcState, path string) {
	delete(st.facts, path)
	kept := st.conds[:0]
	for _, c := range st.conds {
		if !mentionsPath(c.expr, path) {
			kept = append(kept, c)
		}
	}
	st.conds = kept
}

// havocLoop invalidates state any assignment inside a loop body could
// change on a later iteration, before the body is interpreted once.
func (a *dcAnalyzer) havocLoop(st *dcState, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if p := lockPath(l); p != "" {
					a.havocPath(st, p)
				}
			}
		case *ast.IncDecStmt:
			if p := lockPath(n.X); p != "" {
				a.havocPath(st, p)
			}
		}
		return true
	})
}

// mentionsPath reports whether expr contains path or a prefix of it as
// an identifier chain (writing q invalidates knowledge about q.closed).
func mentionsPath(e ast.Expr, path string) bool {
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		if hit {
			return false
		}
		ne, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		p := lockPath(ne)
		if p == "" {
			return true
		}
		if p == path || strings.HasPrefix(p, path+".") || strings.HasPrefix(path, p+".") {
			hit = true
		}
		// A nonempty p is a maximal identifier chain; its sub-chains are
		// narrower reads of the same base and must not re-match as bare
		// prefixes (q inside q.sup is not invalidated by q.wantSnap = x).
		return false
	})
	return hit
}

// scanSinks walks an expression (or declaration) for rule 2/3 sinks
// under the current path state. Function literals are skipped — they
// run on their own schedule and are analyzed as their own scopes.
func (a *dcAnalyzer) scanSinks(st *dcState, n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if wireFunc(a.u.Info, call) == "CoalesceFrames" {
			for _, arg := range call.Args {
				comp, dt := a.companionOf(arg)
				if comp == "" {
					continue
				}
				for _, cl := range a.classesOf(dt) {
					if cl.name == "DeliveryBatch" {
						continue
					}
					if a.feasible(st, comp, cl.value) {
						a.report(arg.Pos(), "frame %s may reach wire.CoalesceFrames with class %s; only DeliveryBatch frames may coalesce",
							exprText(arg), cl.name)
						break
					}
				}
			}
			return true
		}
		if recv := frameReleaseRecv(a.u.Info, call); recv != nil {
			comp, dt := a.companionOf(recv)
			if comp == "" {
				return true
			}
			ordered, ok := a.classValue(dt, "DeliveryOrdered")
			if !ok {
				return true
			}
			if a.closedFact(st) {
				return true
			}
			if a.feasible(st, comp, ordered) {
				a.report(call.Pos(), "frame %s shed on a path where %s.Class may be DeliveryOrdered; ordered frames carry session control flow and must never be dropped",
					exprText(recv), comp)
			}
		}
		return true
	})
}

// frameReleaseRecv matches recv.Release() on a *wire.Frame receiver of
// any expression shape (frameMethod only resolves ident receivers).
func frameReleaseRecv(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if !isModType(rt, "internal/wire", "Frame") {
		return nil
	}
	return sel.X
}

// companionOf resolves a frame expression's supersession metadata: the
// lone core.Delivery parameter beside a lone *wire.Frame parameter, or
// the lone Delivery field beside a lone Frame field of the same struct.
// Returns the companion's identifier path and its Delivery type.
func (a *dcAnalyzer) companionOf(e ast.Expr) (string, types.Type) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := a.u.Info.Uses[e]
		if obj == nil || !isFramePtr(obj.Type()) {
			return "", nil
		}
		return a.paramCompanion(obj)
	case *ast.SelectorExpr:
		base := lockPath(e.X)
		if base == "" {
			return "", nil
		}
		bt := a.u.Info.TypeOf(e.X)
		if bt == nil {
			return "", nil
		}
		if p, ok := bt.Underlying().(*types.Pointer); ok {
			bt = p.Elem()
		}
		str, ok := bt.Underlying().(*types.Struct)
		if !ok {
			return "", nil
		}
		frames, deliveries := 0, ""
		var dt types.Type
		for i := 0; i < str.NumFields(); i++ {
			f := str.Field(i)
			switch {
			case isFramePtr(f.Type()):
				frames++
			case isModType(f.Type(), "internal/core", "Delivery"):
				if deliveries != "" {
					return "", nil
				}
				deliveries, dt = f.Name(), f.Type()
			}
		}
		if frames != 1 || deliveries == "" {
			return "", nil
		}
		return base + "." + deliveries, dt
	}
	return "", nil
}

// paramCompanion pairs a *wire.Frame parameter with the enclosing
// function's lone core.Delivery parameter.
func (a *dcAnalyzer) paramCompanion(frameObj types.Object) (string, types.Type) {
	if a.fnType == nil || a.fnType.Params == nil {
		return "", nil
	}
	frameParams, deliveryName := 0, ""
	var dt types.Type
	isParam := false
	for _, field := range a.fnType.Params.List {
		for _, name := range field.Names {
			obj := a.u.Info.Defs[name]
			if obj == nil {
				continue
			}
			switch {
			case isFramePtr(obj.Type()):
				frameParams++
				if obj == frameObj {
					isParam = true
				}
			case isModType(obj.Type(), "internal/core", "Delivery"):
				if deliveryName != "" {
					return "", nil
				}
				deliveryName, dt = name.Name, obj.Type()
			}
		}
	}
	if !isParam || frameParams != 1 || deliveryName == "" {
		return "", nil
	}
	return deliveryName, dt
}

func isFramePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && isModType(p.Elem(), "internal/wire", "Frame")
}

// dcClass is one delivery class constant of the companion's type.
type dcClass struct {
	name  string
	value int64
}

// classesOf enumerates the constants of the Delivery type's Class
// field type from its declaring package, sorted by value so findings
// are deterministic.
func (a *dcAnalyzer) classesOf(deliveryType types.Type) []dcClass {
	ct := classFieldType(deliveryType)
	if ct == nil {
		return nil
	}
	pkg := ct.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	var out []dcClass
	for _, name := range pkg.Scope().Names() {
		c, ok := pkg.Scope().Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), ct) {
			continue
		}
		if v, ok := constant.Int64Val(constant.ToInt(c.Val())); ok {
			out = append(out, dcClass{name: name, value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}

func (a *dcAnalyzer) classValue(deliveryType types.Type, name string) (int64, bool) {
	for _, c := range a.classesOf(deliveryType) {
		if c.name == name {
			return c.value, true
		}
	}
	return 0, false
}

func classFieldType(deliveryType types.Type) *types.Named {
	if deliveryType == nil {
		return nil
	}
	str, ok := deliveryType.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < str.NumFields(); i++ {
		if str.Field(i).Name() == "Class" {
			n, _ := str.Field(i).Type().(*types.Named)
			return n
		}
	}
	return nil
}

// closedFact reports a proven queue-closed fact on the path — the one
// condition under which shedding Ordered frames is the contract.
func (a *dcAnalyzer) closedFact(st *dcState) bool {
	for k, v := range a.effectiveFacts(st) {
		if v && (k == "closed" || strings.HasSuffix(k, ".closed")) {
			return true
		}
	}
	return false
}

// effectiveFacts is the assignment facts plus one round of unit
// propagation over single-literal constraints: a constraint that is a
// bare boolean path (possibly negated) pins that path's value.
func (a *dcAnalyzer) effectiveFacts(st *dcState) map[string]bool {
	facts := make(map[string]bool, len(st.facts))
	for k, v := range st.facts {
		facts[k] = v
	}
	for _, c := range st.conds {
		e, val := unparen(c.expr), !c.neg
		for {
			u, ok := e.(*ast.UnaryExpr)
			if !ok || u.Op != token.NOT {
				break
			}
			e, val = unparen(u.X), !val
		}
		if p := lockPath(e); p != "" {
			if t := a.u.Info.TypeOf(e); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsBoolean != 0 {
					facts[p] = val
				}
			}
		}
	}
	return facts
}

// tri is a three-valued truth value.
type tri int

const (
	triUnknown tri = iota
	triTrue
	triFalse
)

func triOf(b bool) tri {
	if b {
		return triTrue
	}
	return triFalse
}

func (t tri) not() tri {
	switch t {
	case triTrue:
		return triFalse
	case triFalse:
		return triTrue
	}
	return triUnknown
}

// feasible reports whether the companion's class can be classVal under
// the accumulated constraints: false only when some constraint is
// definitely violated.
func (a *dcAnalyzer) feasible(st *dcState, companion string, classVal int64) bool {
	facts := a.effectiveFacts(st)
	classPath := companion + ".Class"
	for _, c := range st.conds {
		v := a.eval3(c.expr, classPath, classVal, facts)
		if c.neg {
			v = v.not()
		}
		if v == triFalse {
			return false
		}
	}
	return true
}

// eval3 evaluates a constraint three-valued with the candidate class
// plugged in for the companion's Class selector and boolean paths read
// from the fact table.
func (a *dcAnalyzer) eval3(e ast.Expr, classPath string, classVal int64, facts map[string]bool) tri {
	switch e := unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return a.eval3(e.X, classPath, classVal, facts).not()
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			x, y := a.eval3(e.X, classPath, classVal, facts), a.eval3(e.Y, classPath, classVal, facts)
			if x == triFalse || y == triFalse {
				return triFalse
			}
			if x == triTrue && y == triTrue {
				return triTrue
			}
			return triUnknown
		case token.LOR:
			x, y := a.eval3(e.X, classPath, classVal, facts), a.eval3(e.Y, classPath, classVal, facts)
			if x == triTrue || y == triTrue {
				return triTrue
			}
			if x == triFalse && y == triFalse {
				return triFalse
			}
			return triUnknown
		case token.EQL, token.NEQ:
			if v, ok := a.classCompare(e.X, e.Y, classPath, classVal); ok {
				if e.Op == token.NEQ {
					return v.not()
				}
				return v
			}
		}
	case *ast.Ident, *ast.SelectorExpr:
		if p := lockPath(e); p != "" {
			if v, ok := facts[p]; ok {
				return triOf(v)
			}
		}
	}
	return triUnknown
}

// classCompare resolves `companion.Class ==/!= <constant>` atoms (in
// either operand order) against the candidate class value.
func (a *dcAnalyzer) classCompare(x, y ast.Expr, classPath string, classVal int64) (tri, bool) {
	for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
		if lockPath(unparen(pair[0])) != classPath {
			continue
		}
		tv, ok := a.u.Info.Types[pair[1]]
		if !ok || tv.Value == nil {
			continue
		}
		if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
			return triOf(v == classVal), true
		}
	}
	return triUnknown, false
}
