package vet

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Machine-readable reporting: a stable JSON finding format that doubles
// as the checked-in baseline, and a minimal SARIF 2.1.0 envelope for CI
// annotation surfaces. File paths are module-relative with forward
// slashes so a baseline written on one machine gates every other.

// JSONFinding is one finding in the interchange format.
type JSONFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Checker string `json:"checker"`
	Message string `json:"message"`
}

// JSONReport is the artifact format seve-vet -json emits and -baseline
// consumes.
type JSONReport struct {
	Findings []JSONFinding `json:"findings"`
}

// relPath renders a finding path module-relative with forward slashes.
func relPath(modRoot, file string) string {
	if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// ToJSONFindings converts findings to the interchange shape.
func ToJSONFindings(modRoot string, findings []Finding) []JSONFinding {
	out := make([]JSONFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, JSONFinding{
			File:    relPath(modRoot, f.Pos.Filename),
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Checker: f.Checker,
			Message: f.Message,
		})
	}
	return out
}

// WriteJSON writes the findings artifact.
func WriteJSON(w io.Writer, modRoot string, findings []Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(JSONReport{Findings: ToJSONFindings(modRoot, findings)})
}

// WriteSARIF writes a minimal SARIF 2.1.0 log: one run, one rule per
// checker, one result per finding.
func WriteSARIF(w io.Writer, modRoot string, findings []Finding) error {
	type sarifRule struct {
		ID string `json:"id"`
	}
	type sarifMessage struct {
		Text string `json:"text"`
	}
	type sarifArtifact struct {
		URI string `json:"uri"`
	}
	type sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
	}
	type sarifPhysical struct {
		ArtifactLocation sarifArtifact `json:"artifactLocation"`
		Region           sarifRegion   `json:"region"`
	}
	type sarifLocation struct {
		PhysicalLocation sarifPhysical `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID    string          `json:"ruleId"`
		Level     string          `json:"level"`
		Message   sarifMessage    `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}
	type sarifDriver struct {
		Name           string      `json:"name"`
		InformationURI string      `json:"informationUri,omitempty"`
		Rules          []sarifRule `json:"rules"`
	}
	type sarifTool struct {
		Driver sarifDriver `json:"driver"`
	}
	type sarifRun struct {
		Tool    sarifTool     `json:"tool"`
		Results []sarifResult `json:"results"`
	}
	type sarifLog struct {
		Schema  string     `json:"$schema"`
		Version string     `json:"version"`
		Runs    []sarifRun `json:"runs"`
	}

	seen := make(map[string]bool)
	var rules []sarifRule
	for _, c := range AllCheckers() {
		rules = append(rules, sarifRule{ID: c.Name()})
		seen[c.Name()] = true
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		if !seen[f.Checker] { // the "directive" pseudo-checker
			rules = append(rules, sarifRule{ID: f.Checker})
			seen[f.Checker] = true
		}
		results = append(results, sarifResult{
			RuleID:  f.Checker,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relPath(modRoot, f.Pos.Filename)},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "seve-vet", Rules: rules}}, Results: results}},
	})
}

// ReadBaseline loads a findings baseline written by WriteJSON.
func ReadBaseline(path string) (*JSONReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep JSONReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("vet: baseline %s: %w", path, err)
	}
	return &rep, nil
}

// DiffBaseline compares current findings against the baseline. Both
// directions fail CI: fresh findings are regressions, and baseline
// entries the code no longer produces are paid-off debt that must be
// deleted from the baseline rather than silently kept as headroom.
func DiffBaseline(base *JSONReport, modRoot string, findings []Finding) (fresh, gone []JSONFinding) {
	key := func(f JSONFinding) string {
		return fmt.Sprintf("%s:%d:%s:%s", f.File, f.Line, f.Checker, f.Message)
	}
	inBase := make(map[string]int)
	for _, f := range base.Findings {
		inBase[key(f)]++
	}
	for _, f := range ToJSONFindings(modRoot, findings) {
		k := key(f)
		if inBase[k] > 0 {
			inBase[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	left := make(map[string]int, len(inBase))
	for k, n := range inBase {
		left[k] = n
	}
	for _, f := range base.Findings {
		k := key(f)
		if left[k] > 0 {
			left[k]--
			gone = append(gone, f)
		}
	}
	sortJSON := func(fs []JSONFinding) {
		sort.Slice(fs, func(i, j int) bool {
			a, b := fs[i], fs[j]
			if a.File != b.File {
				return a.File < b.File
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return a.Checker < b.Checker
		})
	}
	sortJSON(fresh)
	sortJSON(gone)
	return fresh, gone
}
