// Package vet implements seve-vet, the engine's domain-specific static
// analyzer. Four checkers turn the engine's informal contracts into
// compile-time gates:
//
//   - rwset: an action's Apply/Eval body must confine its Tx accesses to
//     object ids traceable to the declared ReadSet()/WriteSet(). The
//     runtime enforces this only in strict mode (action.CheckAccess);
//     undeclared accesses silently break the Algorithm 6/7 closure
//     analysis, so in-tree actions are gated statically.
//   - pooldiscipline: wire.GetBuf must be balanced by PutBuf on every
//     return path, Frame references must be released or handed off, and
//     a pooled buffer must not be touched after it is Put. Violations
//     are use-after-free bugs that only surface under load.
//   - nocopy: epoch-stamped scratch sets (world.ScratchSet), the
//     world.CountedSet multiset and any struct carrying a sync primitive
//     must not be copied by value — a copy silently forks the epoch or
//     refcount state beyond what go vet's copylocks catches.
//   - detorder: ranging over a map while feeding wire encoding, serial
//     order assignment or push planning injects map-iteration
//     nondeterminism into paths whose byte-identity the engine proves
//     (TestTickParallelDeterminism, TestEncodeCacheFanOut).
//
// Audited exceptions are allowed with a directive on the offending line
// or the line above it:
//
//	//seve:vet-ignore <checker> <reason>
//
// The reason is mandatory: an unexplained suppression is itself flagged.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic.
type Finding struct {
	Pos     token.Position
	Checker string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Checker, f.Message)
}

// Checker is one domain rule run over every analysis unit.
type Checker interface {
	Name() string
	Check(u *Unit, report func(pos token.Pos, format string, args ...any))
}

// AllCheckers returns the four production checkers.
func AllCheckers() []Checker {
	return []Checker{rwsetChecker{}, poolChecker{}, nocopyChecker{}, detorderChecker{}}
}

// CheckerNames lists the valid checker names.
func CheckerNames() []string {
	var names []string
	for _, c := range AllCheckers() {
		names = append(names, c.Name())
	}
	return names
}

// ignoreDirective is one parsed //seve:vet-ignore comment.
type ignoreDirective struct {
	checker string
	file    string
	line    int
}

const directivePrefix = "//seve:vet-ignore"

// parseDirectives scans a unit's comments for ignore directives.
// Malformed directives (missing checker or reason, unknown checker) are
// reported as findings of the pseudo-checker "directive" so they cannot
// rot silently.
func parseDirectives(u *Unit, known map[string]bool, report func(pos token.Pos, format string, args ...any)) []ignoreDirective {
	var dirs []ignoreDirective
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(c.Pos(), "malformed directive: want //seve:vet-ignore <checker> <reason>")
					continue
				}
				if !known[fields[0]] {
					report(c.Pos(), "directive names unknown checker %q (known: %s)",
						fields[0], strings.Join(CheckerNames(), ", "))
					continue
				}
				pos := u.Fset.Position(c.Pos())
				dirs = append(dirs, ignoreDirective{checker: fields[0], file: pos.Filename, line: pos.Line})
			}
		}
	}
	return dirs
}

// suppressed reports whether a finding is covered by a directive: same
// checker, same file, and the directive sits on the finding's line or
// the line directly above it.
func suppressed(f Finding, dirs []ignoreDirective) bool {
	for _, d := range dirs {
		if d.checker == f.Checker && d.file == f.Pos.Filename &&
			(d.line == f.Pos.Line || d.line == f.Pos.Line-1) {
			return true
		}
	}
	return false
}

// RunDirs loads every directory and runs the given checkers, returning
// surviving findings sorted by position. A nil checker list runs all of
// them.
func RunDirs(l *Loader, dirs []string, checkers []Checker) ([]Finding, error) {
	if checkers == nil {
		checkers = AllCheckers()
	}
	known := make(map[string]bool)
	for _, c := range AllCheckers() {
		known[c.Name()] = true
	}
	var findings []Finding
	for _, dir := range dirs {
		units, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, u := range units {
			findings = append(findings, checkUnit(u, checkers, known)...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Checker < b.Checker
	})
	return findings, nil
}

// checkUnit runs checkers over one unit and filters out suppressed
// findings.
func checkUnit(u *Unit, checkers []Checker, known map[string]bool) []Finding {
	var raw []Finding
	collect := func(name string) func(pos token.Pos, format string, args ...any) {
		return func(pos token.Pos, format string, args ...any) {
			raw = append(raw, Finding{
				Pos:     u.Fset.Position(pos),
				Checker: name,
				Message: fmt.Sprintf(format, args...),
			})
		}
	}
	dirs := parseDirectives(u, known, collect("directive"))
	for _, c := range checkers {
		c.Check(u, collect(c.Name()))
	}
	var out []Finding
	for _, f := range raw {
		if f.Checker != "directive" && suppressed(f, dirs) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// funcBodies visits every function or method body in the unit, handing
// the visitor the declaration for receiver/name context.
func funcBodies(u *Unit, visit func(fd *ast.FuncDecl)) {
	for _, f := range u.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd)
			}
		}
	}
}
