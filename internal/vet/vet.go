// Package vet implements seve-vet, the engine's domain-specific static
// analyzer. Seven checkers turn the engine's informal contracts into
// compile-time gates:
//
//   - rwset: an action's Apply/Eval body must confine its Tx accesses to
//     object ids traceable to the declared ReadSet()/WriteSet(). The
//     runtime enforces this only in strict mode (action.CheckAccess);
//     undeclared accesses silently break the Algorithm 6/7 closure
//     analysis, so in-tree actions are gated statically.
//   - pooldiscipline: wire.GetBuf must be balanced by PutBuf on every
//     return path, Frame references must be released or handed off, and
//     a pooled buffer must not be touched after it is Put. Violations
//     are use-after-free bugs that only surface under load.
//   - nocopy: epoch-stamped scratch sets (world.ScratchSet), the
//     world.CountedSet multiset and any struct carrying a sync primitive
//     must not be copied by value — a copy silently forks the epoch or
//     refcount state beyond what go vet's copylocks catches.
//   - detorder: ranging over a map while feeding wire encoding, serial
//     order assignment or push planning injects map-iteration
//     nondeterminism into paths whose byte-identity the engine proves
//     (TestTickParallelDeterminism, TestEncodeCacheFanOut).
//   - lockscope: no blocking operation (channel ops, frame/net I/O,
//     sync waits) inside a sync.Mutex/RWMutex region — an abstract
//     interpretation of lock regions over the statement tree.
//   - laneaffinity: per-lane engine state is only touched from its
//     lane's worker (//seve:lane-affine, or an int "lane" parameter)
//     or the sequential seal passes (//seve:lane-seal).
//   - deliveryclass: transport-bound replies carry explicit
//     core.Delivery metadata, and DeliveryOrdered frames are provably
//     unreachable from shed/coalesce paths (a path-constraint
//     interpreter over the delivery escalation ladder).
//
// Audited exceptions are allowed with a directive on the offending line
// or the line above it:
//
//	//seve:vet-ignore <checker> <reason>
//
// The reason is mandatory: an unexplained suppression is itself
// flagged, and RunDirsAudit reports directives that no longer suppress
// anything so suppressions cannot outlive the code they excused.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Finding is one diagnostic.
type Finding struct {
	Pos     token.Position
	Checker string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Checker, f.Message)
}

// Checker is one domain rule run over every analysis unit.
type Checker interface {
	Name() string
	Check(u *Unit, report func(pos token.Pos, format string, args ...any))
}

// AllCheckers returns the production checkers.
func AllCheckers() []Checker {
	return []Checker{
		rwsetChecker{}, poolChecker{}, nocopyChecker{}, detorderChecker{},
		lockscopeChecker{}, laneAffinityChecker{}, deliveryClassChecker{},
	}
}

// CheckerNames lists the valid checker names.
func CheckerNames() []string {
	var names []string
	for _, c := range AllCheckers() {
		names = append(names, c.Name())
	}
	return names
}

// ignoreDirective is one parsed //seve:vet-ignore comment. used is set
// when the directive suppresses at least one raw finding, the input to
// the stale-suppression audit.
type ignoreDirective struct {
	checker string
	file    string
	line    int
	col     int
	used    bool
}

// StaleIgnore is a //seve:vet-ignore directive that no longer
// suppresses anything: the code it excused was fixed or moved, and the
// suppression is rotting in place.
type StaleIgnore struct {
	Pos     token.Position
	Checker string
}

func (s StaleIgnore) String() string {
	return fmt.Sprintf("%s: stale //seve:vet-ignore %s suppresses nothing; delete it", s.Pos, s.Checker)
}

const directivePrefix = "//seve:vet-ignore"

// parseDirectives scans a unit's comments for ignore directives.
// Malformed directives (missing checker or reason, unknown checker) are
// reported as findings of the pseudo-checker "directive" so they cannot
// rot silently.
func parseDirectives(u *Unit, known map[string]bool, report func(pos token.Pos, format string, args ...any)) []*ignoreDirective {
	var dirs []*ignoreDirective
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(c.Pos(), "malformed directive: want //seve:vet-ignore <checker> <reason>")
					continue
				}
				if !known[fields[0]] {
					report(c.Pos(), "directive names unknown checker %q (known: %s)",
						fields[0], strings.Join(CheckerNames(), ", "))
					continue
				}
				pos := u.Fset.Position(c.Pos())
				dirs = append(dirs, &ignoreDirective{checker: fields[0], file: pos.Filename, line: pos.Line, col: pos.Column})
			}
		}
	}
	return dirs
}

// suppressed reports whether a finding is covered by a directive: same
// checker, same file, and the directive sits on the finding's line or
// the line directly above it. Matching directives are marked used for
// the stale audit.
func suppressed(f Finding, dirs []*ignoreDirective) bool {
	hit := false
	for _, d := range dirs {
		if d.checker == f.Checker && d.file == f.Pos.Filename &&
			(d.line == f.Pos.Line || d.line == f.Pos.Line-1) {
			d.used = true
			hit = true
		}
	}
	return hit
}

// RunDirs loads every directory and runs the given checkers, returning
// surviving findings sorted by position. A nil checker list runs all of
// them.
func RunDirs(l *Loader, dirs []string, checkers []Checker) ([]Finding, error) {
	findings, _, err := runDirs(l, dirs, checkers, false)
	return findings, err
}

// RunDirsAudit runs every checker and additionally returns the stale
// //seve:vet-ignore directives — those that no longer suppress any raw
// finding of their named checker. The audit is only meaningful with the
// full checker set, so the checker list is not a parameter.
func RunDirsAudit(l *Loader, dirs []string) ([]Finding, []StaleIgnore, error) {
	return runDirs(l, dirs, nil, true)
}

// dirResult is one directory's outcome, kept per-index so the parallel
// run reassembles deterministic output.
type dirResult struct {
	findings []Finding
	stale    []StaleIgnore
	err      error
}

// runDirs fans the directories over GOMAXPROCS workers: package loading
// dominates the wall time and the loader is safe for concurrent loads
// (see load.go), so directories check independently and the findings
// are reassembled in a deterministic order.
func runDirs(l *Loader, dirs []string, checkers []Checker, audit bool) ([]Finding, []StaleIgnore, error) {
	if checkers == nil {
		checkers = AllCheckers()
	}
	known := make(map[string]bool)
	for _, c := range AllCheckers() {
		known[c.Name()] = true
	}

	results := make([]dirResult, len(dirs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(dirs) {
		workers = len(dirs)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(dirs) {
					return
				}
				units, err := l.LoadDir(dirs[i])
				if err != nil {
					results[i].err = err
					continue
				}
				for _, u := range units {
					fs, st := checkUnit(u, checkers, known, audit)
					results[i].findings = append(results[i].findings, fs...)
					results[i].stale = append(results[i].stale, st...)
				}
			}
		}()
	}
	wg.Wait()

	var findings []Finding
	var stale []StaleIgnore
	for _, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		findings = append(findings, r.findings...)
		stale = append(stale, r.stale...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Checker < b.Checker
	})
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i], stale[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return findings, stale, nil
}

// checkUnit runs checkers over one unit, filters out suppressed
// findings, and (when auditing) reports directives that suppressed
// nothing.
func checkUnit(u *Unit, checkers []Checker, known map[string]bool, audit bool) ([]Finding, []StaleIgnore) {
	var raw []Finding
	collect := func(name string) func(pos token.Pos, format string, args ...any) {
		return func(pos token.Pos, format string, args ...any) {
			raw = append(raw, Finding{
				Pos:     u.Fset.Position(pos),
				Checker: name,
				Message: fmt.Sprintf(format, args...),
			})
		}
	}
	dirs := parseDirectives(u, known, collect("directive"))
	for _, c := range checkers {
		c.Check(u, collect(c.Name()))
	}
	var out []Finding
	for _, f := range raw {
		if f.Checker != "directive" && suppressed(f, dirs) {
			continue
		}
		out = append(out, f)
	}
	var stale []StaleIgnore
	if audit {
		for _, d := range dirs {
			if !d.used {
				stale = append(stale, StaleIgnore{
					Pos:     token.Position{Filename: d.file, Line: d.line, Column: d.col},
					Checker: d.checker,
				})
			}
		}
	}
	return out, stale
}

// funcBodies visits every function or method body in the unit, handing
// the visitor the declaration for receiver/name context.
func funcBodies(u *Unit, visit func(fd *ast.FuncDecl)) {
	for _, f := range u.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd)
			}
		}
	}
}
