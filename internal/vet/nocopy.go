package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// nocopyChecker flags by-value copies of types whose identity is their
// address: world.ScratchSet (a copy forks the epoch stamp, silently
// resurrecting stale membership), world.CountedSet (a copy forks the
// multiset counts the incremental reconciler depends on), any struct
// transitively containing a sync or sync/atomic primitive, and any
// type whose declaration carries a //seve:nocopy marker comment.
//
// go vet's copylocks only sees types with a Lock method; the engine's
// scratch state has no locks — copying it is legal Go that corrupts
// the epoch-stamp invariant — so the domain list here is what actually
// protects Algorithm 6/7's scratch reuse.
//
// Copies are flagged where they happen: by-value parameters, results
// and receivers; assignments from an existing value (composite
// literals, including zero values, are initialization and stay legal);
// range-clause element copies; call arguments; and composite-literal
// elements built from existing values.
type nocopyChecker struct{}

func (nocopyChecker) Name() string { return "nocopy" }

const nocopyMarker = "//seve:nocopy"

type nocopyScan struct {
	u      *Unit
	memo   map[types.Type]string
	marked map[types.Object]bool
}

func (nocopyChecker) Check(u *Unit, report func(pos token.Pos, format string, args ...any)) {
	sc := &nocopyScan{u: u, memo: make(map[types.Type]string), marked: collectNocopyMarks(u)}
	for _, f := range u.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				sc.checkSignature(fd, report)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sc.checkNode(n, report)
			return true
		})
	}
}

// collectNocopyMarks gathers type declarations annotated //seve:nocopy
// in the unit and every loaded dependency package.
func collectNocopyMarks(u *Unit) map[types.Object]bool {
	marked := make(map[types.Object]bool)
	scan := func(files []*ast.File, info *types.Info) {
		for _, f := range files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if hasMarker(gd.Doc) || hasMarker(ts.Doc) || hasMarker(ts.Comment) {
						if obj := info.Defs[ts.Name]; obj != nil {
							marked[obj] = true
						}
					}
				}
			}
		}
	}
	scan(u.Files, u.Info)
	u.Loader.EachLoaded(scan)
	return marked
}

func hasMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, nocopyMarker) {
			return true
		}
	}
	return false
}

// reason returns why t must not be copied, or "" when it is copyable.
// Memoized with an in-progress sentinel so recursive types terminate.
func (sc *nocopyScan) reason(t types.Type) string {
	if t == nil {
		return ""
	}
	if r, ok := sc.memo[t]; ok {
		return r
	}
	sc.memo[t] = ""
	r := sc.reasonUncached(t)
	sc.memo[t] = r
	return r
}

func (sc *nocopyScan) reasonUncached(t types.Type) string {
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if isWorldType(t, "ScratchSet") {
			return "world.ScratchSet (epoch-stamped scratch state)"
		}
		if isWorldType(t, "CountedSet") {
			return "world.CountedSet (refcounted multiset)"
		}
		if pkg := obj.Pkg(); pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic") {
			if _, isStruct := t.Underlying().(*types.Struct); isStruct {
				return pkg.Path() + "." + obj.Name()
			}
		}
		if sc.marked[obj] {
			return obj.Name() + " (marked //seve:nocopy)"
		}
		if r := sc.reason(t.Underlying()); r != "" {
			return obj.Name() + " containing " + r
		}
		return ""
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if r := sc.reason(t.Field(i).Type()); r != "" {
				return r
			}
		}
	case *types.Array:
		return sc.reason(t.Elem())
	}
	return ""
}

// checkSignature flags by-value parameters, results and receivers.
func (sc *nocopyScan) checkSignature(fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := sc.u.Info.TypeOf(field.Type)
			if r := sc.reason(t); r != "" {
				report(field.Type.Pos(), "%s passes %s by value; use a pointer", kind, r)
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
}

// copySource reports whether e reads an existing value (whose copy
// forks live state), as opposed to a literal or freshly built value.
func copySource(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name != "_"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copySource(e.X)
	}
	return false
}

func (sc *nocopyScan) checkNode(n ast.Node, report func(pos token.Pos, format string, args ...any)) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		for i, r := range n.Rhs {
			if !copySource(r) {
				continue
			}
			if lid, ok := n.Lhs[i].(*ast.Ident); ok && lid.Name == "_" {
				continue
			}
			if reason := sc.reason(sc.u.Info.TypeOf(r)); reason != "" {
				report(r.Pos(), "assignment copies %s by value", reason)
			}
		}
	case *ast.RangeStmt:
		if n.Value != nil {
			if reason := sc.reason(sc.u.Info.TypeOf(n.Value)); reason != "" {
				report(n.Value.Pos(), "range clause copies %s by value per iteration; iterate by index or pointer", reason)
			}
		}
	case *ast.CallExpr:
		if tv, ok := sc.u.Info.Types[n.Fun]; ok && tv.IsType() {
			return // conversion, not a call
		}
		for _, arg := range n.Args {
			if !copySource(arg) {
				continue
			}
			if tv, ok := sc.u.Info.Types[arg]; ok && tv.IsType() {
				continue // new(T)/make: the type argument is not a value
			}
			if reason := sc.reason(sc.u.Info.TypeOf(arg)); reason != "" {
				report(arg.Pos(), "argument copies %s by value", reason)
			}
		}
	case *ast.CompositeLit:
		for _, el := range n.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if !copySource(v) {
				continue
			}
			if reason := sc.reason(sc.u.Info.TypeOf(v)); reason != "" {
				report(v.Pos(), "composite literal copies %s by value", reason)
			}
		}
	}
}
