package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// poolChecker enforces the ownership contract of the pooled delivery
// path (DESIGN.md §8): every wire.GetBuf must reach PutBuf on every
// path out of the acquiring function, every Frame reference created by
// NewFrame/NewFrameCached/Retain must be Released or handed off exactly
// once, and a pooled value must not be touched after it goes back to
// the pool. Violations are use-after-free or pool-starvation bugs that
// only surface under load, never in small tests.
//
// The analysis is an intra-procedural abstract interpretation over the
// statement tree: branch states are cloned and merged (a buffer counts
// as released only when every surviving branch released it; frame
// refcounts merge to the worst case), loops are evaluated for one
// abstract iteration, and ownership transfers — returning the value,
// sending it on a channel, storing it into a field or a composite
// literal, or handing it to a deferred cleanup — end tracking. Lending a buffer to an ordinary call
// (conn.Write(buf), append(buf, ...)) does not: the caller still owns
// it. Each function literal is analyzed as its own ownership scope,
// since writer pumps and deferred cleanups run on their own schedule.
type poolChecker struct{}

func (poolChecker) Name() string { return "pooldiscipline" }

func (poolChecker) Check(u *Unit, report func(pos token.Pos, format string, args ...any)) {
	a := &poolAnalyzer{u: u, report: report}
	funcBodies(u, func(fd *ast.FuncDecl) { a.run(fd.Body) })
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				a.run(fl.Body)
			}
			return true
		})
	}
}

// isModType reports whether t is the named type pkgSuffix.name inside
// this module (or the real stdlib package when pkgSuffix has no slash).
func isModType(t types.Type, pkgSuffix, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// poolAcq is one acquisition site, shared by all branch clones so a
// leak is reported once no matter how many paths miss the release.
type poolAcq struct {
	pos       token.Pos
	name      string
	frame     bool
	deferRel  bool // a defer PutBufs the buffer on every exit
	deferRefs int  // frame references released by defers
	reported  bool
}

// poolVar is the per-path state of one tracked variable.
type poolVar struct {
	acq      *poolAcq
	released bool // buffers: PutBuf has run on this path
	refs     int  // frames: references this function still owns
	escaped  bool // ownership transferred; stop tracking
}

type poolState struct {
	vars map[types.Object]*poolVar
}

func newPoolState() *poolState { return &poolState{vars: make(map[types.Object]*poolVar)} }

func (st *poolState) clone() *poolState {
	c := &poolState{vars: make(map[types.Object]*poolVar, len(st.vars))}
	for k, v := range st.vars {
		cv := *v
		c.vars[k] = &cv
	}
	return c
}

// mergeStates joins two surviving branches leak-biased: released only
// if released on both, escaped if escaped on either, refcount the
// maximum still owed.
func mergeStates(a, b *poolState) *poolState {
	out := &poolState{vars: make(map[types.Object]*poolVar, len(a.vars))}
	for k, va := range a.vars {
		cv := *va
		if vb, ok := b.vars[k]; ok {
			cv.released = va.released && vb.released
			cv.escaped = va.escaped || vb.escaped
			if vb.refs > cv.refs {
				cv.refs = vb.refs
			}
		}
		out.vars[k] = &cv
	}
	for k, vb := range b.vars {
		if _, ok := a.vars[k]; !ok {
			cv := *vb
			out.vars[k] = &cv
		}
	}
	return out
}

type poolAnalyzer struct {
	u      *Unit
	report func(pos token.Pos, format string, args ...any)
}

func (a *poolAnalyzer) run(body *ast.BlockStmt) {
	st := newPoolState()
	if !a.block(st, body.List) {
		a.exitCheck(st)
	}
}

func (a *poolAnalyzer) obj(id *ast.Ident) types.Object {
	if o := a.u.Info.Uses[id]; o != nil {
		return o
	}
	return a.u.Info.Defs[id]
}

// wireFunc resolves a call to a package-level function of internal/wire
// and returns its name.
func wireFunc(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return ""
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/wire") {
		return ""
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return ""
	}
	return fn.Name()
}

// frameMethod matches x.M(...) where x is an identifier of type
// *wire.Frame, returning the method name and receiver.
func frameMethod(info *types.Info, call *ast.CallExpr) (string, *ast.Ident) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", nil
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return "", nil
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if !isModType(rt, "internal/wire", "Frame") {
		return "", nil
	}
	id, _ := sel.X.(*ast.Ident)
	return fn.Name(), id
}

// findAcquisition returns the first GetBuf / NewFrame / NewFrameCached
// call anywhere inside e. Searching call arguments lets derived
// acquisitions (buf := AppendFrame(GetBuf(n), msg)) track the variable
// that ends up owning the pooled backing array.
func (a *poolAnalyzer) findAcquisition(e ast.Expr) (call *ast.CallExpr, frame, found bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch wireFunc(a.u.Info, c) {
		case "GetBuf":
			call, frame, found = c, false, true
			return false
		case "NewFrame", "NewFrameCached":
			call, frame, found = c, true, true
			return false
		}
		return true
	})
	return
}

// mentionsObj reports whether e references obj — the self-derivation
// test that keeps buf = append(buf, ...) tracked.
func (a *poolAnalyzer) mentionsObj(e ast.Expr, obj types.Object) bool {
	var hit bool
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && a.obj(id) == obj {
			hit = true
		}
		return !hit
	})
	return hit
}

// isTerminalCall recognizes calls that never return: panic, os.Exit,
// runtime.Goexit, and the testing.TB Fatal/Skip family (matched by
// name; a live buffer on a crashing path is not a pool leak).
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := info.Uses[f].(*types.Builtin); ok && f.Name == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		switch f.Sel.Name {
		case "Fatal", "Fatalf", "Fatalln", "FailNow", "Skip", "Skipf", "SkipNow", "Goexit", "Exit":
			return true
		}
	}
	return false
}

// leakIfLive reports a variable that still owns pooled state.
func (a *poolAnalyzer) leakIfLive(v *poolVar) {
	if v.escaped || v.acq.reported {
		return
	}
	if v.acq.frame {
		if v.refs-v.acq.deferRefs > 0 {
			v.acq.reported = true
			a.report(v.acq.pos, "frame %q is not released on every path", v.acq.name)
		}
		return
	}
	if !v.released && !v.acq.deferRel {
		v.acq.reported = true
		a.report(v.acq.pos, "wire.GetBuf buffer %q is not returned with PutBuf on every path", v.acq.name)
	}
}

func (a *poolAnalyzer) exitCheck(st *poolState) {
	for _, v := range st.vars {
		a.leakIfLive(v)
	}
}

// scopeDeath checks and drops variables whose declaration lies inside
// n: they go out of scope when n ends, so whatever they still own
// leaks right here (the loop-body and if-init cases).
func (a *poolAnalyzer) scopeDeath(st *poolState, n ast.Node) {
	for obj, v := range st.vars {
		if obj.Pos() >= n.Pos() && obj.Pos() <= n.End() {
			a.leakIfLive(v)
			delete(st.vars, obj)
		}
	}
}

// block walks a statement list, reporting whether control cannot fall
// off its end.
func (a *poolAnalyzer) block(st *poolState, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if a.stmt(st, s) {
			return true
		}
	}
	return false
}

func (a *poolAnalyzer) stmt(st *poolState, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return a.stmtExpr(st, s.X)
	case *ast.AssignStmt:
		a.assign(st, s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, val := range vs.Values {
					a.expr(st, val)
					if i < len(vs.Names) {
						a.bind(st, vs.Names[i], val, true)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			a.expr(st, r)
			if id, ok := r.(*ast.Ident); ok {
				if v := st.vars[a.obj(id)]; v != nil {
					v.escaped = true
				}
			}
		}
		a.exitCheck(st)
		return true
	case *ast.DeferStmt:
		a.deferStmt(st, s.Call)
	case *ast.GoStmt:
		a.callEscapes(st, s.Call)
	case *ast.SendStmt:
		a.expr(st, s.Chan)
		a.expr(st, s.Value)
		if id, ok := s.Value.(*ast.Ident); ok {
			if v := st.vars[a.obj(id)]; v != nil && !v.escaped {
				if v.acq.frame {
					v.refs-- // one reference travels with the frame
				} else {
					v.escaped = true
				}
			}
		}
	case *ast.IncDecStmt:
		a.expr(st, s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			a.stmt(st, s.Init)
		}
		a.expr(st, s.Cond)
		thenSt := st.clone()
		thenTerm := a.block(thenSt, s.Body.List)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = a.stmt(elseSt, s.Else)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			*st = *mergeStates(thenSt, elseSt)
		}
		a.scopeDeath(st, s)
	case *ast.ForStmt:
		if s.Init != nil {
			a.stmt(st, s.Init)
		}
		if s.Cond != nil {
			a.expr(st, s.Cond)
		}
		bodySt := st.clone()
		if !a.block(bodySt, s.Body.List) {
			if s.Post != nil {
				a.stmt(bodySt, s.Post)
			}
			*st = *mergeStates(st, bodySt)
		}
		a.scopeDeath(st, s)
	case *ast.RangeStmt:
		a.expr(st, s.X)
		bodySt := st.clone()
		if !a.block(bodySt, s.Body.List) {
			*st = *mergeStates(st, bodySt)
		}
		a.scopeDeath(st, s)
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.stmt(st, s.Init)
		}
		if s.Tag != nil {
			a.expr(st, s.Tag)
		}
		return a.clauses(st, s, s.Body.List)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			a.stmt(st, s.Init)
		}
		return a.clauses(st, s, s.Body.List)
	case *ast.SelectStmt:
		return a.clauses(st, s, s.Body.List)
	case *ast.BlockStmt:
		term := a.block(st, s.List)
		a.scopeDeath(st, s)
		return term
	case *ast.LabeledStmt:
		return a.stmt(st, s.Stmt)
	case *ast.BranchStmt:
		// break/continue/goto: control leaves this branch without
		// exiting the function; its state rejoins elsewhere, which the
		// merge approximates by dropping it.
		return true
	}
	return false
}

// clauses walks switch/select bodies: each clause starts from a clone
// of the entry state and surviving clauses merge. A missing default
// keeps the entry state as a surviving path.
func (a *poolAnalyzer) clauses(st *poolState, parent ast.Node, list []ast.Stmt) bool {
	var survivors []*poolState
	hasDefault := false
	for _, c := range list {
		cs := st.clone()
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				a.expr(cs, e)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				a.stmt(cs, c.Comm)
			}
			body = c.Body
		default:
			continue
		}
		if !a.block(cs, body) {
			survivors = append(survivors, cs)
		}
	}
	if !hasDefault {
		if _, isSelect := parent.(*ast.SelectStmt); !isSelect {
			survivors = append(survivors, st.clone())
		} else if len(list) == 0 {
			survivors = append(survivors, st.clone())
		}
	}
	if len(survivors) == 0 {
		return true
	}
	merged := survivors[0]
	for _, s := range survivors[1:] {
		merged = mergeStates(merged, s)
	}
	*st = *merged
	a.scopeDeath(st, parent)
	return false
}

// stmtExpr handles an expression statement, where PutBuf / Retain /
// Release calls mutate ownership state.
func (a *poolAnalyzer) stmtExpr(st *poolState, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		a.expr(st, e)
		return false
	}
	if isTerminalCall(a.u.Info, call) {
		for _, arg := range call.Args {
			a.expr(st, arg)
		}
		return true
	}
	switch wireFunc(a.u.Info, call) {
	case "GetBuf", "NewFrame", "NewFrameCached":
		a.report(call.Pos(), "result of %s is discarded; the pooled buffer can never be returned",
			wireFunc(a.u.Info, call))
		for _, arg := range call.Args {
			a.expr(st, arg)
		}
		return false
	case "PutBuf":
		if len(call.Args) == 1 {
			if id, ok := call.Args[0].(*ast.Ident); ok {
				if v := st.vars[a.obj(id)]; v != nil && !v.acq.frame && !v.escaped {
					if v.released {
						a.report(call.Pos(), "buffer %q returned to the pool twice", id.Name)
					}
					v.released = true
					return false
				}
			}
			a.expr(st, call.Args[0])
		}
		return false
	}
	if m, id := frameMethod(a.u.Info, call); id != nil {
		if v := st.vars[a.obj(id)]; v != nil && v.acq.frame && !v.escaped {
			switch m {
			case "Retain":
				if v.refs <= 0 {
					a.report(call.Pos(), "frame %q retained after its final Release", id.Name)
					v.escaped = true // ownership is already broken; don't cascade
					return false
				}
				v.refs++
				return false
			case "Release":
				if v.refs <= 0 {
					a.report(call.Pos(), "frame %q released after its final reference", id.Name)
				} else {
					v.refs--
				}
				return false
			}
		}
	}
	a.expr(st, e)
	return false
}

// assign tracks acquisitions bound to identifiers and ownership lost
// through rebinding or stores into the heap.
func (a *poolAnalyzer) assign(st *poolState, s *ast.AssignStmt) {
	for _, r := range s.Rhs {
		a.expr(st, r)
	}
	if len(s.Lhs) != len(s.Rhs) {
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				if obj := a.obj(id); obj != nil {
					delete(st.vars, obj)
				}
			} else {
				a.expr(st, l)
			}
		}
		return
	}
	for i, l := range s.Lhs {
		r := s.Rhs[i]
		id, isIdent := l.(*ast.Ident)
		if !isIdent {
			// Store into a field, index or global: ownership moves to
			// the heap and a later owner releases it.
			a.expr(st, l)
			if rid, ok := r.(*ast.Ident); ok {
				if v := st.vars[a.obj(rid)]; v != nil {
					v.escaped = true
				}
			}
			continue
		}
		a.bind(st, id, r, s.Tok == token.DEFINE)
	}
}

// bind updates tracking for one ident = expr pair.
func (a *poolAnalyzer) bind(st *poolState, id *ast.Ident, r ast.Expr, define bool) {
	var obj types.Object
	if define {
		obj = a.u.Info.Defs[id]
	}
	if obj == nil {
		obj = a.obj(id)
	}
	if obj == nil {
		return
	}
	acqCall, frame, found := a.findAcquisition(r)
	if found {
		if old := st.vars[obj]; old != nil && !a.mentionsObj(r, obj) {
			a.leakIfLive(old) // rebound before release: the old value leaks
		}
		st.vars[obj] = &poolVar{
			acq:  &poolAcq{pos: acqCall.Pos(), name: id.Name, frame: frame},
			refs: 1,
		}
		return
	}
	if v := st.vars[obj]; v != nil {
		if a.mentionsObj(r, obj) {
			return // self-derived: buf = append(buf, ...), buf = buf[:0]
		}
		a.leakIfLive(v)
		delete(st.vars, obj)
	}
	// Aliasing hands the release duty to the new name; stop tracking
	// the source rather than demand both be released.
	if rid, ok := r.(*ast.Ident); ok {
		if v := st.vars[a.obj(rid)]; v != nil {
			v.escaped = true
		}
	}
}

// deferStmt credits deferred releases and escapes everything else a
// deferred call captures.
func (a *poolAnalyzer) deferStmt(st *poolState, call *ast.CallExpr) {
	if wireFunc(a.u.Info, call) == "PutBuf" && len(call.Args) == 1 {
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if v := st.vars[a.obj(id)]; v != nil {
				v.acq.deferRel = true
				return
			}
		}
	}
	if m, id := frameMethod(a.u.Info, call); id != nil && m == "Release" {
		if v := st.vars[a.obj(id)]; v != nil {
			v.acq.deferRefs++
			return
		}
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if wireFunc(a.u.Info, c) == "PutBuf" && len(c.Args) == 1 {
				if id, ok := c.Args[0].(*ast.Ident); ok {
					if v := st.vars[a.obj(id)]; v != nil {
						v.acq.deferRel = true
					}
				}
			}
			if m, id := frameMethod(a.u.Info, c); id != nil && m == "Release" {
				if v := st.vars[a.obj(id)]; v != nil {
					v.acq.deferRefs++
				}
			}
			return true
		})
		a.escapeCaptured(st, fl.Body)
		return
	}
	a.callEscapes(st, call)
}

// callEscapes hands ownership of tracked arguments to a call whose
// timing we cannot see (go statements, unfamiliar deferred calls).
func (a *poolAnalyzer) callEscapes(st *poolState, call *ast.CallExpr) {
	a.expr(st, call.Fun)
	for _, arg := range call.Args {
		a.expr(st, arg)
		if id, ok := arg.(*ast.Ident); ok {
			if v := st.vars[a.obj(id)]; v != nil {
				v.escaped = true
			}
		}
	}
}

// escapeCaptured escapes every tracked variable a closure body captures.
func (a *poolAnalyzer) escapeCaptured(st *poolState, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := st.vars[a.obj(id)]; v != nil {
				v.escaped = true
			}
		}
		return true
	})
}

// expr walks an expression for pooled-value uses: any read of a buffer
// after PutBuf or of a frame past its final Release is a use-after-free.
func (a *poolAnalyzer) expr(st *poolState, e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		v := st.vars[a.obj(e)]
		if v == nil || v.escaped {
			return
		}
		if !v.acq.frame && v.released {
			a.report(e.Pos(), "use of pooled buffer %q after PutBuf", e.Name)
		}
		if v.acq.frame && v.refs-v.acq.deferRefs <= 0 {
			a.report(e.Pos(), "use of frame %q after its final Release", e.Name)
		}
	case *ast.FuncLit:
		a.escapeCaptured(st, e.Body)
	case *ast.CallExpr:
		if m, id := frameMethod(a.u.Info, e); id != nil && m == "Retain" {
			// Retain in value position: the new reference travels with
			// the expression; ownership is no longer locally countable.
			if v := st.vars[a.obj(id)]; v != nil {
				v.escaped = true
			}
			return
		}
		a.expr(st, e.Fun)
		for _, arg := range e.Args {
			a.expr(st, arg)
			if id, ok := arg.(*ast.Ident); ok {
				if v := st.vars[a.obj(id)]; v != nil && v.acq.frame {
					v.escaped = true // frame handed to another function
				}
			}
		}
	case *ast.SelectorExpr:
		a.expr(st, e.X)
	case *ast.IndexExpr:
		a.expr(st, e.X)
		a.expr(st, e.Index)
	case *ast.SliceExpr:
		a.expr(st, e.X)
		a.expr(st, e.Low)
		a.expr(st, e.High)
		a.expr(st, e.Max)
	case *ast.StarExpr:
		a.expr(st, e.X)
	case *ast.UnaryExpr:
		a.expr(st, e.X)
	case *ast.BinaryExpr:
		a.expr(st, e.X)
		a.expr(st, e.Y)
	case *ast.ParenExpr:
		a.expr(st, e.X)
	case *ast.TypeAssertExpr:
		a.expr(st, e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			val := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			a.expr(st, val)
			// A pooled buffer written into a composite literal travels
			// with the value — the job{buf: buf} handoff that feeds the
			// durable committer queue. The composite's consumer (channel
			// send, struct store) owns the release from here.
			if id, ok := val.(*ast.Ident); ok {
				if v := st.vars[a.obj(id)]; v != nil && !v.acq.frame {
					v.escaped = true
				}
			}
		}
	case *ast.KeyValueExpr:
		a.expr(st, e.Value)
	}
}
