package shard

import "seve/internal/core"

// Replay drives eng through a recorded effective order and returns the
// concatenated outputs, one per log entry. Replaying a router's
// EffectiveLog through a single-lane core.Server must reproduce, byte
// for byte, the router's installed history and every reply it emitted —
// the differential contract TestShardedEquivalence pins. Exported so
// external harnesses (benchmarks, fuzzing drivers) can reuse it.
func Replay(eng core.Engine, log []LogEntry) []core.ServerOutput {
	outs := make([]core.ServerOutput, 0, len(log))
	for _, le := range log {
		switch {
		case le.Join:
			eng.RegisterClient(le.From, le.Mask)
			outs = append(outs, core.ServerOutput{})
		case le.Leave:
			eng.UnregisterClient(le.From)
			outs = append(outs, core.ServerOutput{})
		case le.Tick:
			outs = append(outs, eng.Tick(le.NowMs))
		case le.Snap:
			outs = append(outs, eng.(core.Superseder).SnapshotCatchUp(le.From, le.NowMs))
		default:
			outs = append(outs, eng.HandleMsg(le.From, le.Msg, le.NowMs))
		}
	}
	return outs
}
