package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/geom"
	"seve/internal/wire"
	"seve/internal/world"
)

// testAction mirrors the core harness action: it reads every object in
// rs, sums their first attributes, and writes sum+delta into every
// object in ws (ws ⊆ rs). The written value depends on the read values,
// so any serial-order divergence between engines changes bytes.
type testAction struct {
	id     action.ID
	rs, ws world.IDSet
	delta  float64
	pos    geom.Vec
	radius float64
	hasPos bool
}

const kindTestAction action.Kind = 2000

func (a *testAction) ID() action.ID         { return a.id }
func (a *testAction) Kind() action.Kind     { return kindTestAction }
func (a *testAction) ReadSet() world.IDSet  { return a.rs }
func (a *testAction) WriteSet() world.IDSet { return a.ws }

func (a *testAction) Apply(tx *world.Tx) bool {
	sum := 0.0
	for _, id := range a.rs {
		v, ok := tx.Read(id)
		if !ok {
			return false
		}
		if len(v) > 0 {
			sum += v[0]
		}
	}
	for _, id := range a.ws {
		tx.Write(id, world.Value{sum + a.delta})
	}
	return true
}

func (a *testAction) MarshalBody() []byte {
	buf := binary.LittleEndian.AppendUint64(nil, math.Float64bits(a.delta))
	for _, id := range a.rs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
	}
	return buf
}

func (a *testAction) Influence() geom.Circle {
	if !a.hasPos {
		return geom.Circle{}
	}
	return geom.Circle{Center: a.pos, R: a.radius}
}

// --- workload generation ---

const objsPerGroup = 8

// groupCenter places each object group in its own spatial-partition
// cell (centres 300 apart, cell size 100), so every group maps to one
// lane and distinct groups usually map to distinct lanes.
func groupCenter(g int) geom.Vec {
	return geom.Vec{X: float64(g)*300 + 50, Y: float64(g)*300 + 50}
}

func groupObject(g, i int) world.ObjectID {
	return world.ObjectID(g*objsPerGroup + i + 1)
}

// genWorld builds the initial state: nGroups groups of objects, object
// id as its first attribute.
func genWorld(nGroups int) *world.State {
	s := world.NewState()
	for g := 0; g < nGroups; g++ {
		for i := 0; i < objsPerGroup; i++ {
			id := groupObject(g, i)
			s.Set(id, world.Value{float64(id)})
		}
	}
	return s
}

// genAction builds one action for client cid: usually local to the
// client's home group, sometimes (crossFrac) spanning a second group —
// the cross-shard case.
func genAction(rng *rand.Rand, cid action.ClientID, nGroups int, crossFrac float64) *testAction {
	g := int(cid) % nGroups
	c := groupCenter(g)
	pick := func(g int) world.ObjectID { return groupObject(g, rng.Intn(objsPerGroup)) }
	a := &testAction{
		delta:  float64(rng.Intn(1000)) / 8,
		pos:    geom.Vec{X: c.X + rng.Float64()*40 - 20, Y: c.Y + rng.Float64()*40 - 20},
		radius: 5,
		hasPos: true,
	}
	o1, o2 := pick(g), pick(g)
	if rng.Float64() < crossFrac && nGroups > 1 {
		g2 := (g + 1 + rng.Intn(nGroups-1)) % nGroups
		o2 = pick(g2)
	}
	if o1 == o2 {
		a.rs = world.IDSet{o1}
	} else if o1 < o2 {
		a.rs = world.IDSet{o1, o2}
	} else {
		a.rs = world.IDSet{o2, o1}
	}
	a.ws = world.IDSet{o1}
	return a
}

// --- generic engine loopback ---

// loopback shuttles messages between one engine and its clients with
// per-link FIFO order and an rng-chosen global interleaving, flushing
// the router's epochs at random points like an idle transport would.
type loopback struct {
	t       *testing.T
	eng     core.Engine
	clients map[action.ClientID]*core.Client
	order   []action.ClientID

	toServer []srvMsg
	toClient map[action.ClientID][]wire.Msg

	// script holds the not-yet-submitted actions, per client.
	script map[action.ClientID][]*testAction

	// bytes accumulates every reply delivered to each client, encoded.
	bytes map[action.ClientID][]byte

	nowMs      float64
	commits    []core.Commit
	drops      []action.ID
	violations []string
	submitted  int
}

type srvMsg struct {
	from action.ClientID
	msg  wire.Msg
}

func newLoopback(t *testing.T, eng core.Engine, cfg core.Config, init *world.State, nClients int) *loopback {
	t.Helper()
	lb := &loopback{
		t:        t,
		eng:      eng,
		clients:  make(map[action.ClientID]*core.Client),
		toClient: make(map[action.ClientID][]wire.Msg),
		script:   make(map[action.ClientID][]*testAction),
		bytes:    make(map[action.ClientID][]byte),
	}
	for i := 1; i <= nClients; i++ {
		id := action.ClientID(i)
		lb.clients[id] = core.NewClient(id, cfg, init)
		lb.eng.RegisterClient(id, 0)
		lb.order = append(lb.order, id)
	}
	return lb
}

func (lb *loopback) deliverOut(out core.ServerOutput) {
	for _, r := range out.Replies {
		lb.bytes[r.To] = wire.AppendFrame(lb.bytes[r.To], r.Msg)
		lb.toClient[r.To] = append(lb.toClient[r.To], r.Msg)
	}
}

func (lb *loopback) submitNext(cid action.ClientID) bool {
	s := lb.script[cid]
	if len(s) == 0 {
		return false
	}
	a := s[0]
	lb.script[cid] = s[1:]
	c := lb.clients[cid]
	a.id = c.NextActionID()
	msg, _ := c.Submit(a)
	lb.toServer = append(lb.toServer, srvMsg{from: cid, msg: msg})
	lb.submitted++
	return true
}

func (lb *loopback) stepServer() bool {
	if len(lb.toServer) == 0 {
		return false
	}
	fm := lb.toServer[0]
	lb.toServer = lb.toServer[1:]
	lb.nowMs += 0.25
	lb.deliverOut(lb.eng.HandleMsg(fm.from, fm.msg, lb.nowMs))
	return true
}

func (lb *loopback) flush() {
	if f, ok := lb.eng.(core.Flusher); ok {
		lb.deliverOut(f.Flush())
	}
}

func (lb *loopback) tick() {
	lb.nowMs += 1
	lb.deliverOut(lb.eng.Tick(lb.nowMs))
}

func (lb *loopback) stepClient(cid action.ClientID) bool {
	q := lb.toClient[cid]
	if len(q) == 0 {
		return false
	}
	msg := q[0]
	lb.toClient[cid] = q[1:]
	out := lb.clients[cid].HandleMsg(msg)
	for _, m := range out.ToServer {
		lb.toServer = append(lb.toServer, srvMsg{from: cid, msg: m})
	}
	for _, p := range out.ToPeers {
		lb.toClient[p.To] = append(lb.toClient[p.To], p.Msg)
	}
	lb.commits = append(lb.commits, out.Commits...)
	lb.drops = append(lb.drops, out.DroppedLocal...)
	lb.violations = append(lb.violations, out.Violations...)
	return true
}

// drive pumps the whole workload with an rng-chosen interleaving:
// submissions, server deliveries, client deliveries, epoch flushes, and
// (in the push modes) ticks. Terminates when every queue is quiescent.
func (lb *loopback) drive(rng *rand.Rand, withTicks bool) {
	for {
		type choice func() bool
		var choices []choice
		for _, cid := range lb.order {
			if len(lb.script[cid]) > 0 {
				cid := cid
				choices = append(choices, func() bool { return lb.submitNext(cid) })
			}
			if len(lb.toClient[cid]) > 0 {
				cid := cid
				choices = append(choices, func() bool { return lb.stepClient(cid) })
			}
		}
		if len(lb.toServer) > 0 {
			// Weight server deliveries so epochs actually batch several
			// submissions before a flush interleaves.
			for i := 0; i < 3; i++ {
				choices = append(choices, lb.stepServer)
			}
		}
		if len(choices) == 0 {
			// Nothing deliverable: flush any buffered epoch (and push
			// the window, in tick modes); if that surfaces nothing new,
			// the run is quiescent.
			lb.flush()
			if withTicks {
				lb.tick()
			}
			quiet := len(lb.toServer) == 0
			for _, cid := range lb.order {
				quiet = quiet && len(lb.toClient[cid]) == 0
			}
			if quiet {
				return
			}
			continue
		}
		// Occasionally flush or tick mid-stream to vary epoch shapes.
		r := rng.Float64()
		if r < 0.03 {
			lb.flush()
			continue
		}
		if withTicks && r < 0.05 {
			lb.tick()
			continue
		}
		choices[rng.Intn(len(choices))]()
	}
}

func (lb *loopback) requireNoViolations() {
	lb.t.Helper()
	if len(lb.violations) > 0 {
		lb.t.Fatalf("protocol violations:\n%s", lb.violations[0])
	}
}

// historyBytes encodes an engine's installed history as one frame.
func historyBytes(t *testing.T, eng core.Engine) []byte {
	t.Helper()
	return wire.AppendFrame(nil, &wire.Batch{Envs: eng.History()})
}

// --- the differential harness ---

func shardedCfg(mode core.Mode, shards int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = mode
	cfg.Strict = true
	cfg.RecordHistory = true
	cfg.Threshold = 1e9
	cfg.ShardCellSize = 100
	cfg.Shards = shards
	return cfg
}

// runSharded runs one randomized workload through a sharded router and
// returns the router plus the loopback (for its reply bytes).
func runSharded(t *testing.T, cfg core.Config, nClients, nGroups, acts int, crossFrac float64, seed int64) (*Router, *loopback) {
	t.Helper()
	init := genWorld(nGroups)
	r := New(cfg, init)
	t.Cleanup(r.Close)
	lb := newLoopback(t, r, cfg, init, nClients)
	rng := rand.New(rand.NewSource(seed))
	for _, cid := range lb.order {
		for k := 0; k < acts; k++ {
			lb.script[cid] = append(lb.script[cid], genAction(rng, cid, nGroups, crossFrac))
		}
	}
	lb.drive(rng, cfg.Mode >= core.ModeFirstBound)
	lb.requireNoViolations()
	return r, lb
}

// TestShardedEquivalence is the differential determinism harness of the
// sharded serializer: for randomized workloads × shard counts ×
// delivery orders, replaying the router's effective order through the
// single-lane engine (DisableSharding) must reproduce the installed
// history and every client-visible batch byte for byte.
func TestShardedEquivalence(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeIncomplete, core.ModeInfoBound} {
		for _, shards := range []int{2, 4, 8} {
			for seed := int64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("mode=%v/shards=%d/seed=%d", mode, shards, seed)
				t.Run(name, func(t *testing.T) {
					cfg := shardedCfg(mode, shards)
					r, lb := runSharded(t, cfg, 12, 6, 20, 0.15, seed)

					// Replay the effective order through the single lane.
					single := shardedCfg(mode, shards)
					single.DisableSharding = true
					eng := NewEngine(single, genWorld(6))
					if _, isRouter := eng.(*Router); isRouter {
						t.Fatal("DisableSharding still built a router")
					}
					outs := Replay(eng, r.EffectiveLog())
					singleBytes := make(map[action.ClientID][]byte)
					for _, out := range outs {
						for _, rep := range out.Replies {
							singleBytes[rep.To] = wire.AppendFrame(singleBytes[rep.To], rep.Msg)
						}
					}

					// Installed history, byte for byte.
					if got, want := historyBytes(t, r), historyBytes(t, eng); string(got) != string(want) {
						t.Fatalf("installed history diverged: %d vs %d bytes", len(got), len(want))
					}
					// Every client-visible batch, byte for byte.
					for _, cid := range lb.order {
						if string(lb.bytes[cid]) != string(singleBytes[cid]) {
							t.Fatalf("client %d reply stream diverged: %d vs %d bytes",
								cid, len(lb.bytes[cid]), len(singleBytes[cid]))
						}
					}
					// Authoritative state and install point.
					if r.Installed() != eng.Installed() {
						t.Fatalf("installed %d vs %d", r.Installed(), eng.Installed())
					}
					if !r.Authoritative().Equal(eng.Authoritative()) {
						t.Fatal("authoritative state ζS diverged")
					}
					sm, rm := eng.Metrics(), r.Metrics()
					if sm.TotalSubmitted != rm.TotalSubmitted || sm.TotalDropped != rm.TotalDropped {
						t.Fatalf("protocol totals diverged: single %d/%d sharded %d/%d",
							sm.TotalSubmitted, sm.TotalDropped, rm.TotalSubmitted, rm.TotalDropped)
					}
				})
			}
		}
	}
}

// TestShardedEquivalenceWithDrops exercises the Algorithm 7 drop path
// through the sharded stamp phase: a tight threshold must drop exactly
// the same submissions in both engines.
func TestShardedEquivalenceWithDrops(t *testing.T) {
	cfg := shardedCfg(core.ModeInfoBound, 4)
	cfg.Threshold = 40 // groups are 300 apart: cross-group chains break
	r, lb := runSharded(t, cfg, 12, 6, 20, 0.35, 7)

	single := cfg
	single.DisableSharding = true
	eng := NewEngine(single, genWorld(6))
	outs := Replay(eng, r.EffectiveLog())
	singleBytes := make(map[action.ClientID][]byte)
	for _, out := range outs {
		for _, rep := range out.Replies {
			singleBytes[rep.To] = wire.AppendFrame(singleBytes[rep.To], rep.Msg)
		}
	}
	if got, want := historyBytes(t, r), historyBytes(t, eng); string(got) != string(want) {
		t.Fatalf("installed history diverged: %d vs %d bytes", len(got), len(want))
	}
	for _, cid := range lb.order {
		if string(lb.bytes[cid]) != string(singleBytes[cid]) {
			t.Fatalf("client %d reply stream diverged", cid)
		}
	}
	if r.Metrics().TotalDropped == 0 {
		t.Fatal("drop workload produced no drops; threshold not exercised")
	}
	if r.Metrics().TotalDropped != eng.Metrics().TotalDropped {
		t.Fatalf("drops diverged: sharded %d single %d",
			r.Metrics().TotalDropped, eng.Metrics().TotalDropped)
	}
}

// TestShardedDeterminism pins the reproducible-merge claim: the same
// workload and delivery schedule must produce identical bytes whatever
// GOMAXPROCS is — the lane workers' scheduling must never show through.
func TestShardedDeterminism(t *testing.T) {
	digest := func() [32]byte {
		cfg := shardedCfg(core.ModeInfoBound, 4)
		r, lb := runSharded(t, cfg, 12, 6, 20, 0.15, 42)
		h := sha256.New()
		h.Write(historyBytes(t, r))
		for _, cid := range lb.order {
			h.Write(lb.bytes[cid])
		}
		var d [32]byte
		copy(d[:], h.Sum(nil))
		return d
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	want := digest()
	for _, procs := range []int{1, 2, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		if got := digest(); got != want {
			t.Fatalf("GOMAXPROCS=%d changed the output bytes", procs)
		}
	}
}

// TestShardedOracle checks Theorem 1 end to end on the sharded engine:
// serially replaying the merged history from the initial state must
// land exactly on ζS.
func TestShardedOracle(t *testing.T) {
	cfg := shardedCfg(core.ModeInfoBound, 4)
	r, _ := runSharded(t, cfg, 12, 6, 20, 0.15, 9)
	hist := r.History()
	if r.Installed() != uint64(len(hist)) {
		t.Fatalf("installed %d of %d actions after drain", r.Installed(), len(hist))
	}
	st := genWorld(6)
	for _, env := range hist {
		res := action.Eval(env.Act, world.StateView{S: st})
		for _, w := range res.Writes {
			st.Set(w.ID, w.Val)
		}
	}
	if !r.Authoritative().Equal(st) {
		t.Fatal("authoritative state ζS diverged from serial oracle")
	}
}

// TestRouterStats sanity-checks the router's own accounting: lanes get
// used, epochs flush for the advertised reasons, cross-shard actions
// ride the global lane, and planning actually fans out.
func TestRouterStats(t *testing.T) {
	cfg := shardedCfg(core.ModeIncomplete, 4)
	r, _ := runSharded(t, cfg, 12, 6, 30, 0.2, 11)
	st := r.RouterMetrics()
	if st.Shards != 4 || len(st.PerLane) != 4 {
		t.Fatalf("stats report %d shards / %d lanes", st.Shards, len(st.PerLane))
	}
	if st.Epochs == 0 || st.LocalActions == 0 {
		t.Fatalf("no routed work recorded: %+v", st)
	}
	if st.CrossShardActions == 0 {
		t.Fatal("workload with 20% cross actions routed none to the global lane")
	}
	if st.ParallelPlans == 0 {
		t.Fatal("no epoch planned on the lane workers")
	}
	if st.PartitionedEpochs == 0 {
		t.Fatal("no epoch ran the partitioned per-lane pipeline")
	}
	if st.SpanningActions == 0 {
		t.Fatal("workload with 20% cross actions recorded no spanning footprints")
	}
	if st.FallbackEpochs == 0 {
		t.Fatal("live spanning bridges never forced a fallback epoch")
	}
	if st.PartitionedEpochs+st.FallbackEpochs != st.Epochs {
		t.Fatalf("epoch split %d+%d != %d", st.PartitionedEpochs, st.FallbackEpochs, st.Epochs)
	}
	if st.LaneImbalance < 1 {
		t.Fatalf("lane imbalance %.2f below the balanced floor of 1", st.LaneImbalance)
	}
	lanes := 0
	owned := 0
	for _, ls := range st.PerLane {
		if ls.Actions > 0 {
			lanes++
		}
		owned += ls.OwnedObjects
	}
	if lanes < 2 {
		t.Fatalf("partition collapsed onto %d lane(s)", lanes)
	}
	if owned == 0 {
		t.Fatal("ownership table assigned no objects")
	}
	if st.Table() == nil || st.String() == "" {
		t.Fatal("stats table rendering failed")
	}
}

// TestNewEngineFallbacks pins the factory: single lane for Shards ≤ 1,
// DisableSharding, and ModeBasic; router otherwise.
func TestNewEngineFallbacks(t *testing.T) {
	init := genWorld(2)
	cfg := shardedCfg(core.ModeInfoBound, 4)
	if _, ok := NewEngine(cfg, init).(*Router); !ok {
		t.Fatal("Shards=4 did not build a router")
	}
	cfg.DisableSharding = true
	if _, ok := NewEngine(cfg, init).(*Router); ok {
		t.Fatal("DisableSharding built a router")
	}
	cfg.DisableSharding = false
	cfg.Shards = 1
	if _, ok := NewEngine(cfg, init).(*Router); ok {
		t.Fatal("Shards=1 built a router")
	}
	cfg.Shards = 4
	cfg.Mode = core.ModeBasic
	cfg.Threshold = 0
	if _, ok := NewEngine(cfg, init).(*Router); ok {
		t.Fatal("ModeBasic built a router")
	}
}

var _ = sort.Ints // reserved for debug helpers
