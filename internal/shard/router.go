package shard

import (
	"runtime"
	"sync"
	"time"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/metrics"
	"seve/internal/spatial"
	"seve/internal/wire"
	"seve/internal/world"
)

// maxEpochSubs caps how many submissions one epoch buffers before the
// router flushes on its own. Larger epochs amortize the fan-out better;
// smaller ones bound reply latency when the transport never goes idle.
const maxEpochSubs = 128

// maxEpochComps caps buffered completions the same way: installs only
// shrink the queue, so they can wait for the epoch boundary, but an
// unbounded backlog would let the uncommitted queue — and every walk
// over it — grow without bound.
const maxEpochComps = 256

// Router is the sharded serializer engine. It fronts a single
// partitioned core.Server — the shared queue, authoritative state ζS,
// and conflict index, mirrored into per-lane segments — and shards the
// per-submission pipeline across N lanes as described in the package
// comment. All entry points must be called from one goroutine (the
// core.Engine contract); the lane workers are internal and synchronize
// through the flush fan-outs only.
type Router struct {
	cfg   core.Config
	inner *core.Server
	own   *ownership
	n     int
	// serial short-circuits every fan-out to inline execution when the
	// process runs one scheduler thread: channel handoffs cannot buy
	// wall-clock there, only pay context switches. Snapshotted at
	// construction; the pipeline's outputs are identical either way
	// (TestShardedDeterminism).
	serial bool

	// Current epoch: per-lane buffers of prepared submissions, the total
	// buffered count, each client's lane affinity within the epoch, and
	// the buffered completions awaiting the next install pass.
	lanes  [][]pendingSub
	bufN   int
	laneOf map[action.ClientID]int
	comps  []pendingComp

	// spanning holds the global Seqs of live cross-lane entries — the
	// "bridges" whose presence in the uncommitted queue makes lane-
	// segment walks incomplete. While any is live, epochs flush through
	// the global fallback path; installs pop the settled prefix.
	spanning []uint64

	// Lane workers: one persistent goroutine per shard, fed closures per
	// flush phase (and per Tick, via the engine's plan executor).
	// Stopped by Close.
	reqs []chan laneTask
	wg   sync.WaitGroup

	// Flush scratch, reused across epochs.
	jobs     []job
	lanePs   [][]*core.Pending
	laneIdxs [][]int
	active   []int
	planNs   []int64
	laneNs   []int64

	// pendingOut holds replies produced by flushes inside Register/
	// Unregister, whose interface signatures cannot return output; the
	// next output-bearing call delivers them first, preserving order.
	pendingOut core.ServerOutput

	stats metrics.RouterStats

	// effLog records the effective order (Config.RecordHistory only):
	// the exact sequence of registrations, stamps, completions, and
	// ticks as applied to the shared engine. Replaying it through a
	// single-lane engine must reproduce every byte the router emitted —
	// the differential harness's ground truth.
	effLog []LogEntry
}

type pendingSub struct {
	from  action.ClientID
	msg   *wire.Submit
	nowMs float64
	p     *core.Pending
}

type pendingComp struct {
	from  action.ClientID
	m     *wire.Completion
	nowMs float64
}

// job is one epoch submission moving through the flush phases. Outputs
// accumulate per job so the final reply stream concatenates in merge
// order regardless of which phase produced which message.
type job struct {
	lane int
	p    *core.Pending
	plan core.ReplyPlan
	out  core.ServerOutput
}

// laneTask is one closure dispatched to a lane worker.
type laneTask struct {
	fn func()
	wg *sync.WaitGroup
}

// LogEntry is one step of the router's effective order.
type LogEntry struct {
	From  action.ClientID
	Msg   wire.Msg // nil for registrations, unregistrations, and ticks
	NowMs float64
	Join  bool
	Mask  uint64
	Leave bool
	Tick  bool
	// Snap marks a mid-session SnapshotCatchUp barrier for From.
	Snap bool
}

// New returns a sharded router over cfg.Shards lanes. The configuration
// must be valid, with Shards > 1 and Mode ≥ ModeIncomplete (use
// NewEngine for the general fallback).
func New(cfg core.Config, init *world.State) *Router {
	if cfg.Shards <= 1 {
		panic("shard: router requires Shards > 1")
	}
	if cfg.Mode == core.ModeBasic {
		panic("shard: ModeBasic has no analysis to shard")
	}
	cell := cfg.ShardCellSize
	if cell <= 0 {
		// Default to the Equation (1) influence reach, like the hybrid
		// relay's neighbourhood cells: crowds closer than this conflict
		// anyway and belong on one lane.
		cell = 2*cfg.MaxSpeed*(1+cfg.Omega)*cfg.RTTMs + 2*cfg.DefaultRadius
	}
	r := &Router{
		cfg:      cfg,
		inner:    core.NewServer(cfg, init),
		own:      newOwnership(spatial.NewLaneMap(spatial.NewPartitioner(cell, cfg.Shards))),
		n:        cfg.Shards,
		serial:   runtime.GOMAXPROCS(0) == 1,
		lanes:    make([][]pendingSub, cfg.Shards),
		laneOf:   make(map[action.ClientID]int),
		reqs:     make([]chan laneTask, cfg.Shards),
		lanePs:   make([][]*core.Pending, cfg.Shards),
		laneIdxs: make([][]int, cfg.Shards),
		planNs:   make([]int64, cfg.Shards),
		laneNs:   make([]int64, cfg.Shards),
	}
	r.stats.Shards = cfg.Shards
	r.stats.PerLane = make([]metrics.LaneStats, cfg.Shards)
	r.inner.GrowScratch(cfg.Shards)
	r.inner.EnablePartition(cfg.Shards)
	r.inner.SetPlanExecutor(r.execTasks)
	for w := 0; w < cfg.Shards; w++ {
		r.reqs[w] = make(chan laneTask, 8)
		r.wg.Add(1)
		go r.laneWorker(w)
	}
	return r
}

// Close stops the lane workers. The router must not be used afterwards.
func (r *Router) Close() {
	for _, ch := range r.reqs {
		close(ch)
	}
	r.wg.Wait()
}

// laneWorker is one shard's engine goroutine: it runs the closures its
// lane is fed, in order, for every flush phase and plan fan-out.
func (r *Router) laneWorker(w int) {
	defer r.wg.Done()
	for t := range r.reqs[w] {
		t.fn()
		t.wg.Done()
	}
}

// runPhase runs fn(lane) for every active lane and stores each lane's
// duration in durs[lane]. One active lane — or a single-threaded
// process — runs inline; otherwise each lane runs on its own worker.
// Either way the phase completes before runPhase returns, and lanes
// touch disjoint state, so the schedule never shows in the outputs.
func (r *Router) runPhase(active []int, durs []int64, fn func(lane int)) {
	if len(active) == 1 || r.serial {
		for _, lane := range active {
			start := time.Now()
			fn(lane)
			durs[lane] = time.Since(start).Nanoseconds()
		}
		return
	}
	var wg sync.WaitGroup
	for _, lane := range active {
		lane := lane
		wg.Add(1)
		r.reqs[lane] <- laneTask{fn: func() {
			start := time.Now()
			fn(lane)
			durs[lane] = time.Since(start).Nanoseconds()
		}, wg: &wg}
	}
	wg.Wait()
}

// execTasks runs independent closures to completion, round-robin over
// the lane workers — the executor injected into the engine's Tick
// scheduler (core.SetPlanExecutor) and the parallel install pass.
func (r *Router) execTasks(tasks []func()) {
	if r.serial || len(tasks) == 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	for i, t := range tasks {
		wg.Add(1)
		r.reqs[i%r.n] <- laneTask{fn: t, wg: &wg}
	}
	wg.Wait()
}

// planLane plans jobs[idxs] in order with the lane-local sent overlay:
// positions already planned into a batch for the same client earlier in
// this epoch count as sent even though their bits are only applied at
// commit. Clients never span lanes within an epoch, so the overlay —
// and therefore every plan — is independent of the other lanes.
//
// The overlay only matters between two plans for the same client, which
// is rare (a client resubmitting within one epoch), so its map traffic
// is gated on a same-client pre-scan: the common all-distinct-clients
// epoch plans with no overlay reads or writes at all.
//seve:lane-affine
func (r *Router) planLane(w int, jobs []job, idxs []int) {
	type ovKey struct {
		cid action.ClientID
		pos int
	}
	var ov map[ovKey]struct{}
	for k, i := range idxs {
		p := jobs[i].p
		cid := p.From()
		var overlay func(pos int) bool
		if ov != nil {
			overlay = func(pos int) bool {
				_, ok := ov[ovKey{cid, pos}]
				return ok
			}
		}
		jobs[i].plan = r.inner.PlanReply(p, w, overlay)
		laterSame := false
		for _, j := range idxs[k+1:] {
			if jobs[j].p.From() == cid {
				laterSame = true
				break
			}
		}
		if laterSame {
			if ov == nil {
				ov = make(map[ovKey]struct{})
			}
			for _, pos := range jobs[i].plan.Positions() {
				ov[ovKey{cid, pos}] = struct{}{}
			}
		}
	}
}

// record appends one effective-order step (RecordHistory only).
func (r *Router) record(le LogEntry) {
	if r.cfg.RecordHistory {
		r.effLog = append(r.effLog, le)
	}
}

// EffectiveLog returns the recorded effective order. Requires
// Config.RecordHistory; the slice is owned by the router.
func (r *Router) EffectiveLog() []LogEntry { return r.effLog }

// RegisterClient announces a client. Registrations are barriers: slot
// and cursor assignment must interleave with stamping in a reproducible
// order, so the pending epoch flushes first. The flushed replies are
// delivered with the next output (transports dispatch every output).
func (r *Router) RegisterClient(id action.ClientID, interestMask uint64) {
	r.pendingOut = r.flushInto(r.pendingOut, &r.stats.BarrierFlushes)
	r.record(LogEntry{From: id, Join: true, Mask: interestMask})
	r.inner.RegisterClient(id, interestMask)
}

// UnregisterClient removes a client, flushing the pending epoch first
// (its buffered submissions may be the client's own).
func (r *Router) UnregisterClient(id action.ClientID) {
	r.pendingOut = r.flushInto(r.pendingOut, &r.stats.BarrierFlushes)
	r.record(LogEntry{From: id, Leave: true})
	r.inner.UnregisterClient(id)
}

// HandleMsg dispatches one client message. Submissions are routed and
// buffered (or flushed through, for cross-shard footprints);
// completions are buffered for the next flush's install pass;
// everything else is a barrier that flushes the epoch and then runs
// against the settled shared state.
func (r *Router) HandleMsg(from action.ClientID, msg wire.Msg, nowMs float64) core.ServerOutput {
	switch m := msg.(type) {
	case *wire.Submit:
		return r.handleSubmit(from, m, nowMs)
	case *wire.Completion:
		return r.handleCompletion(from, m, nowMs)
	}
	out := r.takePending()
	out = r.flushInto(out, &r.stats.BarrierFlushes)
	r.record(LogEntry{From: from, Msg: msg, NowMs: nowMs})
	return mergeOut(out, r.inner.HandleMsg(from, msg, nowMs))
}

// handleCompletion buffers a completion for the next flush's install
// pass. Completions produce no replies and their effects — installs —
// are applied at the head of every flush, so the effective order the
// router records (and the differential harness replays) is completions
// first, then the epoch's stamps. Batching them turns per-message
// install cascades into one contiguous pass and keeps epochs from
// being broken up by result traffic.
func (r *Router) handleCompletion(from action.ClientID, m *wire.Completion, nowMs float64) core.ServerOutput {
	out := r.takePending()
	r.comps = append(r.comps, pendingComp{from: from, m: m, nowMs: nowMs})
	if len(r.comps) >= maxEpochComps {
		out = r.flushInto(out, &r.stats.SizeFlushes)
	}
	return out
}

//seve:lane-seal
func (r *Router) handleSubmit(from action.ClientID, m *wire.Submit, nowMs float64) core.ServerOutput {
	out := r.takePending()
	p := r.inner.PrepareSubmit(from, m, nowMs)
	lane, spanning := r.routePending(p)
	p.SetLane(lane)
	if spanning {
		r.stats.SpanningActions++
	}
	if lane < 0 {
		// Cross-shard (or footprint-free) submission: close the epoch,
		// then stamp on the global sequencer lane — the fully sequential
		// path every shard observes, since it runs between epochs on the
		// shared engine. A genuinely spanning entry becomes a bridge: its
		// Seq joins the FIFO that forces fallback flushes until it
		// installs.
		out = r.flushInto(out, &r.stats.CrossShardFlushes)
		r.stats.CrossShardActions++
		r.record(LogEntry{From: from, Msg: m, NowMs: nowMs})
		var so core.ServerOutput
		if r.inner.StampPrepared(p, &so) {
			plan := r.inner.PlanReply(p, 0, nil)
			r.inner.CommitReply(p, &plan, &so)
			if spanning {
				r.spanning = append(r.spanning, p.Seq())
			}
		}
		return mergeOut(out, so)
	}
	if prev, ok := r.laneOf[from]; ok && prev != lane {
		// A client switching lanes mid-epoch would let its reply state
		// cross lanes; close the epoch instead.
		out = r.flushInto(out, &r.stats.LaneSwitchFlushes)
	}
	r.laneOf[from] = lane
	r.lanes[lane] = append(r.lanes[lane], pendingSub{from: from, msg: m, nowMs: nowMs, p: p})
	r.bufN++
	r.stats.LocalActions++
	r.stats.PerLane[lane].Actions++
	if r.bufN >= maxEpochSubs {
		out = r.flushInto(out, &r.stats.SizeFlushes)
	}
	return out
}

// routePending resolves the owner of the prepared submission's
// interned RS ∪ WS footprint: the owning lane when a single shard owns
// everything, -1 otherwise — with spanning reporting whether the
// footprint genuinely touched two lanes (an empty footprint rides the
// global lane too, but conflicts with nothing and is no bridge).
func (r *Router) routePending(p *core.Pending) (lane int, spanning bool) {
	r.own.grow(r.inner.InternedObjects())
	rsd, wsd := p.Footprint()
	pos, hasPos := p.Influence()
	lane = -1
	for _, o := range wsd {
		l := r.own.ownerOf(o, r.inner.ObjectIDOf(o), hasPos, pos)
		if lane < 0 {
			lane = l
		} else if l != lane {
			return -1, true
		}
	}
	for _, o := range rsd {
		l := r.own.ownerOf(o, r.inner.ObjectIDOf(o), hasPos, pos)
		if lane < 0 {
			lane = l
		} else if l != lane {
			return -1, true
		}
	}
	return lane, false
}

// HandleResume answers a reconnecting client (core.Resumer). Resumes
// are barriers like every non-Submit message: the pending epoch
// flushes first, so the inner engine's CatchUp — and in particular the
// snapshot's install-point cut — is computed over settled state at an
// epoch boundary, and the recorded log replays it at exactly the same
// point (the single-lane engine handles the logged wire.Resume through
// its own HandleMsg case).
func (r *Router) HandleResume(m *wire.Resume, nowMs float64) (action.ClientID, core.ServerOutput) {
	out := r.takePending()
	out = r.flushInto(out, &r.stats.BarrierFlushes)
	r.record(LogEntry{Msg: m, NowMs: nowMs})
	cid, so := r.inner.HandleResume(m, nowMs)
	return cid, mergeOut(out, so)
}

// SessionToken returns the resume token for a registered client (see
// core.Server.SessionToken).
func (r *Router) SessionToken(id action.ClientID) uint64 { return r.inner.SessionToken(id) }

// SnapshotCatchUp issues a mid-session blind-write catch-up
// (core.Superseder). Like a resume, it is an epoch barrier: the pending
// epoch flushes first so the snapshot cuts settled state, and the
// recorded Snap entry replays the call at exactly the same point.
func (r *Router) SnapshotCatchUp(id action.ClientID, nowMs float64) core.ServerOutput {
	out := r.takePending()
	out = r.flushInto(out, &r.stats.BarrierFlushes)
	r.record(LogEntry{From: id, NowMs: nowMs, Snap: true})
	return mergeOut(out, r.inner.SnapshotCatchUp(id, nowMs))
}

// Quarantined reports whether the inner engine holds an integrity
// quarantine verdict against the client.
func (r *Router) Quarantined(id action.ClientID) bool { return r.inner.Quarantined(id) }

// Tick runs the First Bound push cycle over settled state: the epoch
// flushes first (its actions belong to the push window), then the
// inner scheduler takes over — its plan fan-out runs on the router's
// lane workers through the injected executor.
func (r *Router) Tick(nowMs float64) core.ServerOutput {
	out := r.takePending()
	out = r.flushInto(out, &r.stats.BarrierFlushes)
	r.record(LogEntry{Tick: true, NowMs: nowMs})
	return mergeOut(out, r.inner.Tick(nowMs))
}

// Flush closes the current epoch and returns its replies. Transports
// call this whenever their event queue drains, so buffered replies are
// not held hostage to the next message or tick.
func (r *Router) Flush() core.ServerOutput {
	out := r.takePending()
	return r.flushInto(out, &r.stats.ExternalFlushes)
}

// takePending claims any replies owed from interface calls that could
// not return them.
func (r *Router) takePending() core.ServerOutput {
	out := r.pendingOut
	r.pendingOut = core.ServerOutput{}
	return out
}

// flushInto closes the current epoch, if non-empty, appending its
// replies to out in merge order and crediting the flush to cause. The
// buffered completions install first; the buffered submissions then
// run the partitioned per-lane pipeline when every live queue entry is
// lane-owned, or the global fallback path while a spanning bridge is
// live (or the conflict index — which the lane views are built on — is
// disabled).
func (r *Router) flushInto(out core.ServerOutput, cause *int) core.ServerOutput {
	if r.bufN == 0 && len(r.comps) == 0 {
		return out
	}
	*cause++
	r.installComps()
	// Quarantine verdicts drain right after the install pass, before
	// any stamp replies — completions are recorded in the effective log
	// ahead of the epoch's stamps, so a single-lane replay of the log
	// emits the verdicts in the same per-client order.
	r.inner.DrainQuarantines(&out)
	if r.bufN == 0 {
		return out
	}
	r.stats.Epochs++
	if r.inner.Partitioned() && len(r.spanning) == 0 && !r.cfg.DisableConflictIndex {
		r.stats.PartitionedEpochs++
		return r.flushPartitioned(out)
	}
	r.stats.FallbackEpochs++
	return r.flushFallback(out)
}

// installComps applies the buffered completions — recorded in the
// effective order ahead of the epoch's stamps — and installs the
// contiguous prefix, with the write application fanned out per ζS
// segment. The segment tasks are individually timed — each writes a
// distinct slot, so the worker-side stores race with nothing — and the
// overlap a parallel run reclaims (summed task time minus the slowest
// task) is deducted from the critical-path charge, keeping
// InstallCritNs an honest projection even when the executor inlines.
// Bridges whose entries settled pop off the spanning FIFO.
func (r *Router) installComps() {
	if len(r.comps) == 0 {
		return
	}
	start := time.Now()
	for _, c := range r.comps {
		r.record(LogEntry{From: c.from, Msg: c.m, NowMs: c.nowMs})
		r.inner.TakeCompletion(c.from, c.m)
	}
	r.comps = r.comps[:0]
	var taskNs []int64
	r.inner.InstallContiguous(func(tasks []func()) {
		taskNs = make([]int64, len(tasks))
		timed := make([]func(), len(tasks))
		for i, t := range tasks {
			i, t := i, t
			timed[i] = func() {
				t0 := time.Now()
				t()
				taskNs[i] = time.Since(t0).Nanoseconds()
			}
		}
		r.execTasks(timed)
	})
	for len(r.spanning) > 0 && r.spanning[0] <= r.inner.Installed() {
		r.spanning = r.spanning[1:]
	}
	elapsed := time.Since(start).Nanoseconds()
	var sum, max int64
	for _, d := range taskNs {
		sum += d
		if d > max {
			max = d
		}
	}
	crit := elapsed - (sum - max)
	if crit < 0 {
		crit = 0
	}
	r.stats.InstallNs += elapsed
	r.stats.InstallCritNs += crit
}

// flushPartitioned is the six-pass epoch pipeline over per-lane
// engine state:
//
//	StampLane*  — lane-affine stamping: dedup, validity over the lane
//	              view, lane enqueue+index              (parallel)
//	SealStamp   — global Seqs, queue/index/history, counters, Drop
//	              replies, in merge order               (sequential)
//	PlanReply*  — Algorithm 6 closure walks per lane    (parallel)
//	PreCommit   — blind-write ids in merge order        (sequential)
//	CommitLane* — sent() marks, batch assembly, per-client sequencing
//	                                                    (parallel)
//	SealCommit  — reply emission in merge order         (sequential)
//
// The parallel passes touch only lane-affine state; every output whose
// cross-lane order is observable is fixed by the sequential merges, so
// the bytes are identical to the fallback path and the single lane.
//
//seve:lane-seal
func (r *Router) flushPartitioned(out core.ServerOutput) core.ServerOutput {
	jobs := r.jobs[:0]
	stampActive := r.active[:0]
	maxLane := 0
	for lane := 0; lane < r.n; lane++ {
		buf := r.lanes[lane]
		if len(buf) == 0 {
			continue
		}
		stampActive = append(stampActive, lane)
		if len(buf) > maxLane {
			maxLane = len(buf)
		}
		for _, ps := range buf {
			r.record(LogEntry{From: ps.from, Msg: ps.msg, NowMs: ps.nowMs})
			r.lanePs[lane] = append(r.lanePs[lane], ps.p)
			jobs = append(jobs, job{lane: lane, p: ps.p})
		}
		r.lanes[lane] = r.lanes[lane][:0]
	}
	imb := float64(maxLane) * float64(r.n) / float64(len(jobs))
	r.stats.LaneImbalance += (imb - r.stats.LaneImbalance) / float64(r.stats.PartitionedEpochs)

	durs := r.laneNs
	for lane := range durs {
		durs[lane] = 0
	}
	r.runPhase(stampActive, durs, func(lane int) {
		r.inner.StampLane(lane, r.lanePs[lane])
	})
	addPhase(&r.stats.StampNs, &r.stats.StampCritNs, durs)

	start := time.Now()
	for i := range jobs {
		if !r.inner.SealStamp(jobs[i].p, &jobs[i].out) {
			jobs[i].p = nil
		}
	}
	r.stats.MergeNs += time.Since(start).Nanoseconds()

	r.planJobs(jobs)

	start = time.Now()
	for i := range jobs {
		if jobs[i].p != nil {
			r.inner.PreCommit(jobs[i].p, &jobs[i].plan)
		}
	}
	r.stats.MergeNs += time.Since(start).Nanoseconds()

	for lane := range durs {
		durs[lane] = 0
	}
	r.runPhase(r.active, durs, func(lane int) {
		for _, i := range r.laneIdxs[lane] {
			r.inner.CommitLane(jobs[i].p, &jobs[i].plan)
		}
	})
	addPhase(&r.stats.CommitNs, &r.stats.CommitCritNs, durs)

	start = time.Now()
	for i := range jobs {
		if jobs[i].p != nil {
			r.inner.SealCommit(jobs[i].p, &jobs[i].plan, &jobs[i].out)
		}
		out = mergeOut(out, jobs[i].out)
		jobs[i] = job{}
	}
	r.stats.MergeNs += time.Since(start).Nanoseconds()

	for _, lane := range stampActive {
		r.lanePs[lane] = r.lanePs[lane][:0]
	}
	r.jobs = jobs[:0]
	r.bufN = 0
	clear(r.laneOf)
	return out
}

// flushFallback is the global-sequencer pipeline: sequential stamp in
// merge order, parallel plan, sequential commit — the path that stays
// correct with spanning entries live in the queue, because every walk
// runs over the global view. The sequential phases charge both the
// totals and the critical path: nothing about them parallelizes.
//
//seve:lane-seal
func (r *Router) flushFallback(out core.ServerOutput) core.ServerOutput {
	start := time.Now()
	jobs := r.jobs[:0]
	for lane := 0; lane < r.n; lane++ {
		for _, ps := range r.lanes[lane] {
			j := job{lane: lane, p: ps.p}
			r.record(LogEntry{From: ps.from, Msg: ps.msg, NowMs: ps.nowMs})
			if !r.inner.StampPrepared(ps.p, &j.out) {
				j.p = nil
			}
			jobs = append(jobs, j)
		}
		r.lanes[lane] = r.lanes[lane][:0]
	}
	ns := time.Since(start).Nanoseconds()
	r.stats.StampNs += ns
	r.stats.StampCritNs += ns

	r.planJobs(jobs)

	start = time.Now()
	for i := range jobs {
		if jobs[i].p != nil {
			r.inner.CommitReply(jobs[i].p, &jobs[i].plan, &jobs[i].out)
		}
		out = mergeOut(out, jobs[i].out)
		jobs[i] = job{}
	}
	ns = time.Since(start).Nanoseconds()
	r.stats.CommitNs += ns
	r.stats.CommitCritNs += ns
	r.jobs = jobs[:0]
	r.bufN = 0
	clear(r.laneOf)
	return out
}

// planJobs fans the accepted jobs' reply planning out by lane, leaving
// the accepted per-lane index lists in r.laneIdxs and the accepted
// lanes in r.active for the commit fan-out to reuse.
func (r *Router) planJobs(jobs []job) {
	for lane := range r.laneIdxs {
		r.laneIdxs[lane] = r.laneIdxs[lane][:0]
	}
	active := r.active[:0]
	for i := range jobs {
		if jobs[i].p == nil {
			continue // dropped, duplicate, or answered inline
		}
		lane := jobs[i].lane
		if len(r.laneIdxs[lane]) == 0 {
			active = append(active, lane)
		}
		r.laneIdxs[lane] = append(r.laneIdxs[lane], i)
	}
	r.active = active
	if len(active) > 1 {
		for _, lane := range active {
			r.stats.ParallelPlans += len(r.laneIdxs[lane])
		}
	}
	durs := r.planNs
	for lane := range durs {
		durs[lane] = 0
	}
	r.runPhase(active, durs, func(lane int) {
		r.planLane(lane, jobs, r.laneIdxs[lane])
	})
	addPhase(&r.stats.PlanNs, &r.stats.PlanCritNs, durs)
}

// addPhase credits one phase's per-lane durations: every lane's time to
// the total, the slowest lane's to the critical path.
func addPhase(total, crit *int64, durs []int64) {
	var slowest int64
	for _, d := range durs {
		*total += d
		if d > slowest {
			slowest = d
		}
	}
	*crit += slowest
}

// mergeOut appends b's replies and counters to a, preserving order.
func mergeOut(a, b core.ServerOutput) core.ServerOutput {
	if len(a.Replies) == 0 && a.QueueScanned == 0 && !a.Dropped {
		return b
	}
	a.Replies = append(a.Replies, b.Replies...)
	a.QueueScanned += b.QueueScanned
	a.Dropped = a.Dropped || b.Dropped
	return a
}

// Installed returns the serial position up to which ζS is complete
// (buffered completions not yet installed are excluded; Flush first to
// settle).
func (r *Router) Installed() uint64 { return r.inner.Installed() }

// Authoritative returns ζS.
func (r *Router) Authoritative() *world.State { return r.inner.Authoritative() }

// History returns the stamped envelopes in merge order (requires
// Config.RecordHistory). Flush first for a settled view.
func (r *Router) History() []action.Envelope { return r.inner.History() }

// QueueLen reports the number of uncommitted actions (buffered
// submissions not yet stamped are excluded; Flush first to settle).
func (r *Router) QueueLen() int { return r.inner.QueueLen() }

// Metrics snapshots the shared engine's cumulative counters.
func (r *Router) Metrics() metrics.ServerStats { return r.inner.Metrics() }

// RouterMetrics snapshots the router's own counters: routing, epochs,
// flush causes, pipeline phase timings, and per-lane load.
func (r *Router) RouterMetrics() metrics.RouterStats {
	st := r.stats
	st.PerLane = make([]metrics.LaneStats, r.n)
	copy(st.PerLane, r.stats.PerLane)
	for lane := range st.PerLane {
		st.PerLane[lane].OwnedObjects = r.own.perLane[lane]
	}
	return st
}

// SetJournal registers the durable commit feed on the shared engine.
// Install passes flushed by the router produce one CommitGroup each,
// carrying the owner lane of every record; BatchRetained records are
// emitted from the router's lane workers (see core.Journal).
func (r *Router) SetJournal(j core.Journal) { r.inner.SetJournal(j) }

// Restore rewinds the router's shared engine to a recovered durable
// point. Must be called before any client traffic.
func (r *Router) Restore(rec core.RestoreState) { r.inner.Restore(rec) }

// Boot reports the recovery generation of the shared engine.
func (r *Router) Boot() uint64 { return r.inner.Boot() }

// Suspects reports per-client completion-report mismatch counts (see
// core.Server.Suspects).
func (r *Router) Suspects() map[action.ClientID]int { return r.inner.Suspects() }

// Engine conformance (plus the Flusher, Resumer, and Superseder
// extensions).
var (
	_ core.Engine     = (*Router)(nil)
	_ core.Flusher    = (*Router)(nil)
	_ core.Resumer    = (*Router)(nil)
	_ core.Superseder = (*Router)(nil)
	_ core.Restorer   = (*Router)(nil)
)
