package shard

import (
	"sync"
	"time"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/metrics"
	"seve/internal/spatial"
	"seve/internal/wire"
	"seve/internal/world"
)

// maxEpochSubs caps how many submissions one epoch buffers before the
// router flushes on its own. Larger epochs amortize the fan-out better;
// smaller ones bound reply latency when the transport never goes idle.
const maxEpochSubs = 128

// Router is the sharded serializer engine. It fronts a single
// core.Server — the shared queue, authoritative state ζS, and conflict
// index — and shards the per-submission pipeline across N lanes as
// described in the package comment. All entry points must be called from
// one goroutine (the core.Engine contract); the lane workers are
// internal and synchronize through the flush fan-out only.
type Router struct {
	cfg   core.Config
	inner *core.Server
	own   *ownership
	n     int

	// Current epoch: per-lane submission buffers, the total buffered
	// count, and each client's lane affinity within the epoch.
	lanes  [][]pendingSub
	bufN   int
	laneOf map[action.ClientID]int

	// Lane workers: one persistent goroutine per shard, fed a planReq
	// per flush. Stopped by Close.
	reqs []chan planReq
	wg   sync.WaitGroup

	// jobs is the flush scratch, reused across epochs.
	jobs []job

	// planNs is the per-lane plan-duration scratch for one flush;
	// workers write distinct slots, joined by the flush WaitGroup.
	planNs []int64

	// pendingOut holds replies produced by flushes inside Register/
	// Unregister, whose interface signatures cannot return output; the
	// next output-bearing call delivers them first, preserving order.
	pendingOut core.ServerOutput

	stats metrics.RouterStats

	// effLog records the effective order (Config.RecordHistory only):
	// the exact sequence of registrations, stamps, completions, and
	// ticks as applied to the shared engine. Replaying it through a
	// single-lane engine must reproduce every byte the router emitted —
	// the differential harness's ground truth.
	effLog []LogEntry
}

type pendingSub struct {
	from  action.ClientID
	msg   *wire.Submit
	nowMs float64
}

// job is one epoch submission moving through the flush phases: stamped
// sequentially (phase A), planned on its lane's worker (phase B),
// committed sequentially (phase C). Outputs accumulate per job so the
// final reply stream concatenates in merge order regardless of which
// phase produced which message.
type job struct {
	lane int
	p    *core.Pending
	plan core.ReplyPlan
	out  core.ServerOutput
}

type planReq struct {
	jobs []job
	idxs []int
	// durs receives the lane's planning duration at the lane's index.
	durs []int64
	wg   *sync.WaitGroup
}

// LogEntry is one step of the router's effective order.
type LogEntry struct {
	From  action.ClientID
	Msg   wire.Msg // nil for registrations, unregistrations, and ticks
	NowMs float64
	Join  bool
	Mask  uint64
	Leave bool
	Tick  bool
}

// New returns a sharded router over cfg.Shards lanes. The configuration
// must be valid, with Shards > 1 and Mode ≥ ModeIncomplete (use
// NewEngine for the general fallback).
func New(cfg core.Config, init *world.State) *Router {
	if cfg.Shards <= 1 {
		panic("shard: router requires Shards > 1")
	}
	if cfg.Mode == core.ModeBasic {
		panic("shard: ModeBasic has no analysis to shard")
	}
	cell := cfg.ShardCellSize
	if cell <= 0 {
		// Default to the Equation (1) influence reach, like the hybrid
		// relay's neighbourhood cells: crowds closer than this conflict
		// anyway and belong on one lane.
		cell = 2*cfg.MaxSpeed*(1+cfg.Omega)*cfg.RTTMs + 2*cfg.DefaultRadius
	}
	r := &Router{
		cfg:    cfg,
		inner:  core.NewServer(cfg, init),
		own:    newOwnership(spatial.NewPartitioner(cell, cfg.Shards)),
		n:      cfg.Shards,
		lanes:  make([][]pendingSub, cfg.Shards),
		laneOf: make(map[action.ClientID]int),
		reqs:   make([]chan planReq, cfg.Shards),
		planNs: make([]int64, cfg.Shards),
	}
	r.stats.Shards = cfg.Shards
	r.stats.PerLane = make([]metrics.LaneStats, cfg.Shards)
	r.inner.GrowScratch(cfg.Shards)
	for w := 0; w < cfg.Shards; w++ {
		r.reqs[w] = make(chan planReq)
		r.wg.Add(1)
		go r.laneWorker(w)
	}
	return r
}

// Close stops the lane workers. The router must not be used afterwards.
func (r *Router) Close() {
	for _, ch := range r.reqs {
		close(ch)
	}
	r.wg.Wait()
}

// laneWorker is one shard's engine goroutine: it plans its lane's slice
// of each epoch, in lane order, on scratch w.
func (r *Router) laneWorker(w int) {
	defer r.wg.Done()
	for req := range r.reqs[w] {
		start := time.Now()
		r.planLane(w, req.jobs, req.idxs)
		req.durs[w] = time.Since(start).Nanoseconds()
		req.wg.Done()
	}
}

// planLane plans jobs[idxs] in order with the lane-local sent overlay:
// positions already planned into a batch for the same client earlier in
// this epoch count as sent even though their bits are only applied at
// commit. Clients never span lanes within an epoch, so the overlay —
// and therefore every plan — is independent of the other lanes.
//
// The overlay only matters between two plans for the same client, which
// is rare (a client resubmitting within one epoch), so its map traffic
// is gated on a same-client pre-scan: the common all-distinct-clients
// epoch plans with no overlay reads or writes at all.
func (r *Router) planLane(w int, jobs []job, idxs []int) {
	type ovKey struct {
		cid action.ClientID
		pos int
	}
	var ov map[ovKey]struct{}
	for k, i := range idxs {
		p := jobs[i].p
		cid := p.From()
		var overlay func(pos int) bool
		if ov != nil {
			overlay = func(pos int) bool {
				_, ok := ov[ovKey{cid, pos}]
				return ok
			}
		}
		jobs[i].plan = r.inner.PlanReply(p, w, overlay)
		laterSame := false
		for _, j := range idxs[k+1:] {
			if jobs[j].p.From() == cid {
				laterSame = true
				break
			}
		}
		if laterSame {
			if ov == nil {
				ov = make(map[ovKey]struct{})
			}
			for _, pos := range jobs[i].plan.Positions() {
				ov[ovKey{cid, pos}] = struct{}{}
			}
		}
	}
}

// record appends one effective-order step (RecordHistory only).
func (r *Router) record(le LogEntry) {
	if r.cfg.RecordHistory {
		r.effLog = append(r.effLog, le)
	}
}

// EffectiveLog returns the recorded effective order. Requires
// Config.RecordHistory; the slice is owned by the router.
func (r *Router) EffectiveLog() []LogEntry { return r.effLog }

// RegisterClient announces a client. Registrations are barriers: slot
// and cursor assignment must interleave with stamping in a reproducible
// order, so the pending epoch flushes first. The flushed replies are
// delivered with the next output (transports dispatch every output).
func (r *Router) RegisterClient(id action.ClientID, interestMask uint64) {
	r.pendingOut = r.flushInto(r.pendingOut, &r.stats.BarrierFlushes)
	r.record(LogEntry{From: id, Join: true, Mask: interestMask})
	r.inner.RegisterClient(id, interestMask)
}

// UnregisterClient removes a client, flushing the pending epoch first
// (its buffered submissions may be the client's own).
func (r *Router) UnregisterClient(id action.ClientID) {
	r.pendingOut = r.flushInto(r.pendingOut, &r.stats.BarrierFlushes)
	r.record(LogEntry{From: id, Leave: true})
	r.inner.UnregisterClient(id)
}

// HandleMsg dispatches one client message. Submissions are routed and
// buffered (or flushed through, for cross-shard footprints); everything
// else is a barrier that flushes the epoch and then runs against the
// settled shared state.
func (r *Router) HandleMsg(from action.ClientID, msg wire.Msg, nowMs float64) core.ServerOutput {
	sub, ok := msg.(*wire.Submit)
	if !ok {
		out := r.takePending()
		out = r.flushInto(out, &r.stats.BarrierFlushes)
		r.record(LogEntry{From: from, Msg: msg, NowMs: nowMs})
		return mergeOut(out, r.inner.HandleMsg(from, msg, nowMs))
	}
	return r.handleSubmit(from, sub, nowMs)
}

func (r *Router) handleSubmit(from action.ClientID, m *wire.Submit, nowMs float64) core.ServerOutput {
	out := r.takePending()
	lane := r.routeLane(m.Env.Act)
	if lane < 0 {
		// Cross-shard footprint: close the epoch, then stamp on the
		// global sequencer lane — the fully sequential path every shard
		// observes, since it runs between epochs on the shared engine.
		out = r.flushInto(out, &r.stats.CrossShardFlushes)
		r.stats.CrossShardActions++
		r.record(LogEntry{From: from, Msg: m, NowMs: nowMs})
		var so core.ServerOutput
		if p := r.inner.StampSubmit(from, m, nowMs, &so); p != nil {
			plan := r.inner.PlanReply(p, 0, nil)
			r.inner.CommitReply(p, &plan, &so)
		}
		return mergeOut(out, so)
	}
	if prev, ok := r.laneOf[from]; ok && prev != lane {
		// A client switching lanes mid-epoch would let its reply state
		// cross lanes; close the epoch instead.
		out = r.flushInto(out, &r.stats.LaneSwitchFlushes)
	}
	r.laneOf[from] = lane
	r.lanes[lane] = append(r.lanes[lane], pendingSub{from: from, msg: m, nowMs: nowMs})
	r.bufN++
	r.stats.LocalActions++
	r.stats.PerLane[lane].Actions++
	if r.bufN >= maxEpochSubs {
		out = r.flushInto(out, &r.stats.SizeFlushes)
	}
	return out
}

// routeLane resolves the owner of the action's RS ∪ WS footprint:
// the owning lane when a single shard owns everything, -1 for a
// cross-shard footprint. Actions with an empty footprint ride the
// global lane too — they cost nothing to serialize.
func (r *Router) routeLane(act action.Action) int {
	lane := -1
	for _, id := range act.WriteSet() {
		o := r.own.ownerOf(id, act)
		if lane < 0 {
			lane = o
		} else if o != lane {
			return -1
		}
	}
	for _, id := range act.ReadSet() {
		o := r.own.ownerOf(id, act)
		if lane < 0 {
			lane = o
		} else if o != lane {
			return -1
		}
	}
	return lane
}

// HandleResume answers a reconnecting client (core.Resumer). Resumes
// are barriers like every non-Submit message: the pending epoch
// flushes first, so the inner engine's CatchUp — and in particular the
// snapshot's install-point cut — is computed over settled state at an
// epoch boundary, and the recorded log replays it at exactly the same
// point (the single-lane engine handles the logged wire.Resume through
// its own HandleMsg case).
func (r *Router) HandleResume(m *wire.Resume, nowMs float64) (action.ClientID, core.ServerOutput) {
	out := r.takePending()
	out = r.flushInto(out, &r.stats.BarrierFlushes)
	r.record(LogEntry{Msg: m, NowMs: nowMs})
	cid, so := r.inner.HandleResume(m, nowMs)
	return cid, mergeOut(out, so)
}

// SessionToken returns the resume token for a registered client (see
// core.Server.SessionToken).
func (r *Router) SessionToken(id action.ClientID) uint64 { return r.inner.SessionToken(id) }

// Tick runs the First Bound push cycle over settled state: the epoch
// flushes first (its actions belong to the push window), then the
// inner scheduler — already plan/commit parallel over Config.PushWorkers
// — takes over.
func (r *Router) Tick(nowMs float64) core.ServerOutput {
	out := r.takePending()
	out = r.flushInto(out, &r.stats.BarrierFlushes)
	r.record(LogEntry{Tick: true, NowMs: nowMs})
	return mergeOut(out, r.inner.Tick(nowMs))
}

// Flush closes the current epoch and returns its replies. Transports
// call this whenever their event queue drains, so buffered replies are
// not held hostage to the next message or tick.
func (r *Router) Flush() core.ServerOutput {
	out := r.takePending()
	return r.flushInto(out, &r.stats.ExternalFlushes)
}

// takePending claims any replies owed from interface calls that could
// not return them.
func (r *Router) takePending() core.ServerOutput {
	out := r.pendingOut
	r.pendingOut = core.ServerOutput{}
	return out
}

// flushInto closes the current epoch, if non-empty, appending its
// replies to out in merge order and crediting the flush to cause.
func (r *Router) flushInto(out core.ServerOutput, cause *int) core.ServerOutput {
	if r.bufN == 0 {
		return out
	}
	*cause++
	r.stats.Epochs++

	// Phase A — stamp sequentially in merge order (epoch, lane,
	// localSeq): lanes ascending, arrival order within a lane. This
	// assigns the global serial positions; everything after is
	// scheduling.
	start := time.Now()
	jobs := r.jobs[:0]
	for lane := 0; lane < r.n; lane++ {
		for _, ps := range r.lanes[lane] {
			j := job{lane: lane}
			r.record(LogEntry{From: ps.from, Msg: ps.msg, NowMs: ps.nowMs})
			j.p = r.inner.StampSubmit(ps.from, ps.msg, ps.nowMs, &j.out)
			jobs = append(jobs, j)
		}
		r.lanes[lane] = r.lanes[lane][:0]
	}
	r.stats.StampNs += time.Since(start).Nanoseconds()

	// Phase B — plan each lane's replies on its worker, against the
	// frozen queue and sent() state. Single-lane epochs plan inline:
	// the fan-out would only buy a handoff.
	laneIdxs := make([][]int, r.n)
	active := 0
	for i := range jobs {
		if jobs[i].p == nil {
			continue // dropped, or answered inline by the stamp
		}
		lane := jobs[i].lane
		if len(laneIdxs[lane]) == 0 {
			active++
		}
		laneIdxs[lane] = append(laneIdxs[lane], i)
	}
	durs := r.planNs
	for lane := range durs {
		durs[lane] = 0
	}
	if active == 1 {
		for lane, idxs := range laneIdxs {
			if len(idxs) > 0 {
				start = time.Now()
				r.planLane(lane, jobs, idxs)
				durs[lane] = time.Since(start).Nanoseconds()
			}
		}
	} else if active > 1 {
		var wg sync.WaitGroup
		for lane, idxs := range laneIdxs {
			if len(idxs) == 0 {
				continue
			}
			wg.Add(1)
			r.stats.ParallelPlans += len(idxs)
			r.reqs[lane] <- planReq{jobs: jobs, idxs: idxs, durs: durs, wg: &wg}
		}
		wg.Wait()
	}
	var planCrit int64
	for _, d := range durs {
		r.stats.PlanNs += d
		if d > planCrit {
			planCrit = d
		}
	}
	r.stats.PlanCritNs += planCrit

	// Phase C — commit sequentially in merge order: sent() marks,
	// blind-write ids, per-client batch sequence numbers, replies.
	start = time.Now()
	for i := range jobs {
		if jobs[i].p != nil {
			r.inner.CommitReply(jobs[i].p, &jobs[i].plan, &jobs[i].out)
		}
		out = mergeOut(out, jobs[i].out)
		jobs[i] = job{} // release the pending and its plan
	}
	r.stats.CommitNs += time.Since(start).Nanoseconds()
	r.jobs = jobs[:0]
	r.bufN = 0
	clear(r.laneOf)
	return out
}

// mergeOut appends b's replies and counters to a, preserving order.
func mergeOut(a, b core.ServerOutput) core.ServerOutput {
	if len(a.Replies) == 0 && a.QueueScanned == 0 && !a.Dropped {
		return b
	}
	a.Replies = append(a.Replies, b.Replies...)
	a.QueueScanned += b.QueueScanned
	a.Dropped = a.Dropped || b.Dropped
	return a
}

// Installed returns the serial position up to which ζS is complete.
func (r *Router) Installed() uint64 { return r.inner.Installed() }

// Authoritative returns ζS.
func (r *Router) Authoritative() *world.State { return r.inner.Authoritative() }

// History returns the stamped envelopes in merge order (requires
// Config.RecordHistory). Flush first for a settled view.
func (r *Router) History() []action.Envelope { return r.inner.History() }

// QueueLen reports the number of uncommitted actions (buffered
// submissions not yet stamped are excluded; Flush first to settle).
func (r *Router) QueueLen() int { return r.inner.QueueLen() }

// Metrics snapshots the shared engine's cumulative counters.
func (r *Router) Metrics() metrics.ServerStats { return r.inner.Metrics() }

// RouterMetrics snapshots the router's own counters: routing, epochs,
// flush causes, and per-lane load.
func (r *Router) RouterMetrics() metrics.RouterStats {
	st := r.stats
	st.PerLane = make([]metrics.LaneStats, r.n)
	copy(st.PerLane, r.stats.PerLane)
	for lane := range st.PerLane {
		st.PerLane[lane].OwnedObjects = r.own.perLane[lane]
	}
	return st
}

// SetInstallHook registers fn to observe every installation into ζS in
// serial order.
func (r *Router) SetInstallHook(fn func(seq uint64, res action.Result)) {
	r.inner.SetInstallHook(fn)
}

// Suspects reports per-client completion-report mismatch counts (see
// core.Server.Suspects).
func (r *Router) Suspects() map[action.ClientID]int { return r.inner.Suspects() }

// Engine conformance (plus the Flusher and Resumer extensions).
var (
	_ core.Engine  = (*Router)(nil)
	_ core.Flusher = (*Router)(nil)
	_ core.Resumer = (*Router)(nil)
)
