// Package shard is the spatially partitioned sharded serializer: a
// core.Engine that routes each submitted action to the shard lane owning
// its read/write-set footprint, fans the expensive per-action analysis
// (the Algorithm 6 closure walks) out over one goroutine per shard, and
// merges the shard-local streams into one reproducible total order.
//
// The paper's thin server is a single sequential state machine; PR 1–3
// made each of its operations cheap, but one lane is still the ceiling
// on "millions of users". The observation that unlocks sharding without
// giving up Theorem 1 is the paper's own: actions declare their read and
// write sets up front, so whether two actions can conflict is statically
// checkable per action. The router partitions object ownership over a
// spatial grid (spatial.Partitioner) and keeps three invariants:
//
//   - Actions whose RS ∪ WS footprint is owned by a single lane are
//     buffered on that lane within the current epoch.
//   - Actions whose footprint spans partitions are stamped by the global
//     sequencer lane: they close the epoch, pass through the sequential
//     path every shard observes, and so act as cross-shard barriers.
//   - A client stays on one lane per epoch (a lane switch closes the
//     epoch), so per-recipient reply state never crosses lanes inside an
//     epoch.
//
// An epoch flushes in three phases. Stamping — Algorithm 7 validity,
// serial positions, enqueue, conflict indexing — runs sequentially in
// the merge order (epoch, shardLane, localSeq). Reply planning — the
// closure walks, the dominant per-submission cost — fans out over the
// persistent lane workers, each processing its own lane in order against
// the frozen queue with a lane-local sent() overlay. Commit then applies
// every plan sequentially in merge order: sent() marks, blind-write ids,
// per-client batch sequence numbers, replies. Because stamping and
// commit are sequential and planning is read-only, the serial order and
// every emitted byte are a pure function of the submission streams —
// independent of GOMAXPROCS and goroutine scheduling — and identical to
// what the single-lane engine produces when driven through the same
// effective order (TestShardedEquivalence).
package shard

import (
	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/geom"
	"seve/internal/spatial"
	"seve/internal/world"
)

// NewEngine returns the engine for cfg: the sharded router when
// cfg.Shards > 1 and sharding is enabled, otherwise the single-lane
// core.Server. ModeBasic has no per-action analysis worth sharding (the
// server only appends to a log) and always gets the single lane.
func NewEngine(cfg core.Config, init *world.State) core.Engine {
	if cfg.Shards <= 1 || cfg.DisableSharding || cfg.Mode == core.ModeBasic {
		return core.NewServer(cfg, init)
	}
	return New(cfg, init)
}

// ownership is the sticky object→lane assignment. An object is placed
// when first seen in a footprint: spatial actions pin it to the lane
// owning their influence centre's grid region; non-spatial actions fall
// back to a hash of the object id. Assignment happens on the sequential
// routing path, so the table is deterministic given the submission
// stream — a requirement for the reproducible merge order.
type ownership struct {
	part    *spatial.Partitioner
	owner   map[world.ObjectID]int
	perLane []int
}

func newOwnership(part *spatial.Partitioner) *ownership {
	return &ownership{
		part:    part,
		owner:   make(map[world.ObjectID]int),
		perLane: make([]int, part.Shards()),
	}
}

// ownerOf returns the owning lane of id, assigning one on first sight.
func (t *ownership) ownerOf(id world.ObjectID, act action.Action) int {
	if lane, ok := t.owner[id]; ok {
		return lane
	}
	lane := -1
	if sp, ok := act.(action.Spatial); ok {
		if c := sp.Influence(); c.R > 0 || c.Center != (geom.Vec{}) {
			lane = t.part.Region(c.Center)
		}
	}
	if lane < 0 {
		lane = int(mix64(uint64(id)) % uint64(t.part.Shards()))
	}
	t.owner[id] = lane
	t.perLane[lane]++
	return lane
}

// mix64 is a splitmix64 finalizer: cheap, stateless, and well spread
// even for the dense small ObjectIDs the worlds mint.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
