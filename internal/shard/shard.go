// Package shard is the spatially partitioned sharded serializer: a
// core.Engine that routes each submitted action to the shard lane owning
// its read/write-set footprint, runs the per-action pipeline — stamping,
// the Algorithm 6/7 analysis walks, and reply commit — on one persistent
// worker per lane over that lane's own partition of engine state, and
// merges the lane-local streams into one reproducible total order.
//
// The paper's thin server is a single sequential state machine; PR 1–3
// made each of its operations cheap, but one lane is still the ceiling
// on "millions of users". The observation that unlocks sharding without
// giving up Theorem 1 is the paper's own: actions declare their read and
// write sets up front, so whether two actions can conflict is statically
// checkable per action. The router partitions object ownership over a
// spatial grid (spatial.Partitioner behind a sticky spatial.LaneMap) and
// keeps three invariants:
//
//   - Actions whose RS ∪ WS footprint is owned by a single lane are
//     buffered on that lane within the current epoch.
//   - Actions whose footprint spans partitions are stamped by the global
//     sequencer lane: they close the epoch, pass through the sequential
//     path every shard observes, and so act as cross-shard barriers.
//   - A client stays on one lane per epoch (a lane switch closes the
//     epoch), so per-recipient reply state never crosses lanes inside an
//     epoch.
//
// The engine's authoritative state is itself partitioned (see
// core/lanes.go): each lane owns a segment of the uncommitted queue and
// a lane-numbered reverse conflict index covering exactly its own
// entries, and ζS is hash-segmented for parallel installs. An epoch
// flushes in six passes — buffered completions install first, then
//
//	StampLane*  → SealStamp → PlanReply* → PreCommit → CommitLane* → SealCommit
//
// where the starred passes run one task per lane on the persistent lane
// workers and the others are short sequential merges in the order
// (epoch, shardLane, localSeq). Lane-local analysis is sound because of
// lane closure: while no spanning entry is live in the queue, a
// conflict chain seeded in lane L cannot leave L's segment, so the
// lane-view walks visit exactly the entries the global walk would have
// acted on. Whenever a spanning "bridge" IS live, the router flushes
// through the global fallback pipeline (sequential stamp and commit,
// parallel plan over the global view) until the bridge installs. Either
// way, everything whose cross-lane order is observable — global Seqs,
// blind-write ids, per-client batch sequences, reply emission — is
// fixed by the sequential merge passes, so the serial order and every
// emitted byte are a pure function of the submission streams —
// independent of GOMAXPROCS and goroutine scheduling — and identical to
// what the single-lane engine produces when driven through the same
// effective order (TestShardedEquivalence).
package shard

import (
	"seve/internal/core"
	"seve/internal/geom"
	"seve/internal/spatial"
	"seve/internal/world"
)

// NewEngine returns the engine for cfg: the sharded router when
// cfg.Shards > 1 and sharding is enabled, otherwise the single-lane
// core.Server. ModeBasic has no per-action analysis worth sharding (the
// server only appends to a log) and always gets the single lane.
func NewEngine(cfg core.Config, init *world.State) core.Engine {
	if cfg.Shards <= 1 || cfg.DisableSharding || cfg.Mode == core.ModeBasic {
		return core.NewServer(cfg, init)
	}
	return New(cfg, init)
}

// ownership is the sticky object→lane assignment, keyed by the engine
// interner's dense object indices (the same indices Pending.Footprint
// yields, so routing a buffered submission is pure array reads). An
// object is placed when first seen in a footprint: spatial actions pin
// it to the lane owning their influence centre's grid cell (through the
// LaneMap, so a rebalanced cell keeps already-pinned objects put);
// non-spatial actions fall back to a hash of the sparse object id.
// Assignment happens on the sequential routing path, so the table is
// deterministic given the submission stream — a requirement for the
// reproducible merge order.
type ownership struct {
	lanes   *spatial.LaneMap
	byDense []int32
	perLane []int
}

func newOwnership(lanes *spatial.LaneMap) *ownership {
	return &ownership{
		lanes:   lanes,
		perLane: make([]int, lanes.Shards()),
	}
}

// grow keeps the dense table in step with the engine's interner.
func (t *ownership) grow(n int) {
	for len(t.byDense) < n {
		t.byDense = append(t.byDense, -1)
	}
}

// ownerOf returns the owning lane of dense index o (sparse id `id`),
// assigning one on first sight from the submission's influence centre
// when it declares a meaningful one.
func (t *ownership) ownerOf(o uint32, id world.ObjectID, hasPos bool, pos geom.Vec) int {
	if lane := t.byDense[o]; lane >= 0 {
		return int(lane)
	}
	lane := -1
	if hasPos {
		lane = t.lanes.LaneOf(pos)
	}
	if lane < 0 {
		lane = int(mix64(uint64(id)) % uint64(t.lanes.Shards()))
	}
	t.byDense[o] = int32(lane)
	t.perLane[lane]++
	return lane
}

// mix64 is a splitmix64 finalizer: cheap, stateless, and well spread
// even for the dense small ObjectIDs the worlds mint.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
